// Per-rank virtual clock for PDES-lite timing simulation.
//
// Every rank (thread) owns a clock measured in simulated seconds. Local
// compute advances it with `advance`; communication completions move it
// forward with `bump_to` (an atomic max, because a matching receive on a
// peer thread may need to push a rendezvous sender's clock forward).
// Clocks only ever move forward.
#pragma once

#include <atomic>

namespace dlscale::mpi {

class VirtualClock {
 public:
  VirtualClock() : now_(0.0) {}

  [[nodiscard]] double now() const noexcept { return now_.load(std::memory_order_acquire); }

  /// Advance by `dt` seconds of local activity (dt >= 0).
  void advance(double dt) noexcept {
    double cur = now_.load(std::memory_order_relaxed);
    while (!now_.compare_exchange_weak(cur, cur + dt, std::memory_order_acq_rel)) {
    }
  }

  /// Move the clock forward to at least `t` (no-op if already past).
  void bump_to(double t) noexcept {
    double cur = now_.load(std::memory_order_relaxed);
    while (cur < t && !now_.compare_exchange_weak(cur, t, std::memory_order_acq_rel)) {
    }
  }

  void reset() noexcept { now_.store(0.0, std::memory_order_release); }

 private:
  std::atomic<double> now_;
};

}  // namespace dlscale::mpi
