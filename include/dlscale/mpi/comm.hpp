// simmpi: a message-passing runtime with MPI semantics over threads.
//
// Ranks are threads inside one process; `run_world` launches them and
// each receives a `Communicator` for its view of the world. All data
// movement is REAL (bytes are copied between rank-private buffers through
// mailboxes), and — when timing is enabled — every message also advances
// per-rank virtual clocks according to the net::CostModel (link class,
// eager/rendezvous protocol, GPUDirect vs host staging, NIC rail
// contention). Collectives are implemented as genuine algorithms over
// point-to-point messages (binomial trees, rings, recursive doubling,
// Rabenseifner, hierarchical two-level), so collective cost *emerges*
// from the algorithm rather than being a closed-form estimate. This is
// what makes the paper's knob ablations meaningful.
//
// Timing model notes (PDES-lite):
//  * sends are buffered in execution (never deadlock) but rendezvous
//    timing couples sender/receiver clocks via an atomic clock bump;
//  * NIC rail reservations happen in thread-execution order, a documented
//    approximation that is tight for the near-synchronous collective
//    patterns this library is used for.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "dlscale/mpi/clock.hpp"
#include "dlscale/net/cost_model.hpp"
#include "dlscale/net/profile.hpp"
#include "dlscale/net/topology.hpp"

namespace dlscale::mpi {

using net::AllreduceAlgo;
using net::MemSpace;

/// Elementwise reduction operator for reduce/allreduce.
enum class ReduceOp { kSum, kMax, kMin };

/// Fault-injection plan for a world (WorldOptions::faults). The failure
/// model is fail-stop: a killed rank stops executing at a well-defined
/// point (its own step counter reaching `at_step`, or its virtual clock
/// passing `at_time_s`) and never communicates again. Message
/// perturbations model a flaky link rather than a dead one: a "dropped"
/// message is lost on the wire and retransmitted after a timeout (so
/// receivers never hang), a "delayed" message simply lands late. Both are
/// decided by a deterministic per-message hash of `seed`, so a plan
/// replays identically across runs and thread interleavings.
struct FaultPlan {
  struct Kill {
    int global_rank = -1;
    /// Die when this rank's fault_tick() count reaches at_step (steps are
    /// whatever the application ticks: optimisation steps in train::,
    /// iterations in perf::simulate). Negative disables.
    long at_step = -1;
    /// Die at the first communication attempt with the rank's virtual
    /// clock at or past this time (timing worlds only). Negative disables.
    double at_time_s = -1.0;
  };
  std::vector<Kill> kills;

  /// Per-message probability the payload is lost and retransmitted after
  /// `retransmit_s` virtual seconds (timing worlds; in functional worlds
  /// the loss is counted but delivery is immediate).
  double drop_prob = 0.0;
  double retransmit_s = 1e-3;
  /// Per-message probability of an extra `delay_s` of latency.
  double delay_prob = 0.0;
  double delay_s = 0.0;
  std::uint64_t seed = 0x5EEDF417ull;
  /// Restrict drop/delay to messages SENT by this global rank (negative =
  /// any sender) inside the virtual-time window [window_from_s,
  /// window_until_s) (negative bounds = unbounded). This is the node-flap
  /// shape: one node's NIC goes bad for a while, then recovers.
  int flaky_rank = -1;
  double window_from_s = -1.0;
  double window_until_s = -1.0;

  [[nodiscard]] bool any_kills() const noexcept { return !kills.empty(); }
  [[nodiscard]] bool any_link_faults() const noexcept {
    return drop_prob > 0.0 || delay_prob > 0.0;
  }
};

/// Configuration for a world of ranks.
struct WorldOptions {
  net::Topology topology{net::Topology::single_node(1)};
  net::MpiProfile profile{net::MpiProfile::ideal()};
  bool timing = true;  ///< advance virtual clocks through the cost model
  FaultPlan faults{};  ///< rank kills and link perturbations to inject
};

/// Per-rank communication counters (virtual-time based when timing is on).
struct CommStats {
  double comm_time_s = 0.0;     ///< virtual seconds the rank's clock advanced inside comm ops
  std::uint64_t messages = 0;   ///< point-to-point messages received
  std::uint64_t bytes = 0;      ///< logical payload bytes received
  std::uint64_t messages_dropped = 0;  ///< sends lost+retransmitted by the FaultPlan
  std::uint64_t messages_delayed = 0;  ///< sends delayed by the FaultPlan
};

/// The single error channel of the failure-aware comm API: thrown by any
/// blocking operation on a communicator one of whose members has died.
/// Carries the first dead member (death order), the operation that
/// detected it, and the tag in flight (-1 for collectives detected at
/// entry). After catching it, survivors stop using this communicator and
/// collectively call shrink() to rebuild; see DESIGN.md §11.
class RankFailed : public std::runtime_error {
 public:
  RankFailed(int failed_global_rank_, std::string op_, int tag_);

  int failed_global_rank;  ///< global (world) rank of the dead peer
  std::string op;          ///< entry point that detected the failure
  int tag;                 ///< message tag in flight, or -1
};

/// Thrown on the DYING rank's own thread when its FaultPlan trigger
/// fires; run_world treats it as a clean (non-error) rank exit.
/// Deliberately NOT derived from std::exception so application-level
/// `catch (const std::exception&)` blocks cannot swallow a death.
struct RankKilled {
  int global_rank;
};

class World;

/// A rank's handle to a communicator (a subset of world ranks). Cheap to
/// copy; all copies refer to the same group. Not thread-safe within a
/// rank (each rank is single-threaded by construction).
class Communicator {
 public:
  [[nodiscard]] int rank() const noexcept { return my_index_; }
  [[nodiscard]] int size() const noexcept { return static_cast<int>(members_.size()); }
  [[nodiscard]] bool is_root() const noexcept { return my_index_ == 0; }
  /// This rank's id in the world communicator (for topology queries).
  [[nodiscard]] int global_rank() const noexcept { return members_[my_index_]; }
  /// Global rank of communicator-member `r`.
  [[nodiscard]] int global_rank_of(int r) const { return members_.at(r); }

  // ---- point-to-point ----
  // `logical_bytes` overrides the priced message size; pass it with an
  // empty span for timing-only traffic (perf-simulation mode). Defaults
  // to the span size.
  //
  // Failure semantics (applies to every p2p call below): once any member
  // of this communicator has died, the communicator is REVOKED — send,
  // recv, sendrecv, isend, irecv-wait, send_value, recv_value,
  // recv_dynamic, send_blob, and recv_blob all raise mpi::RankFailed, and
  // a recv already blocked when the death happens is woken and raises
  // too. Revoking on *any* member death (not just the direct peer) is
  // what lets survivors that never talk to the dead rank still escape
  // from the middle of a collective call chain instead of hanging.
  static constexpr std::size_t kAuto = ~std::size_t{0};

  void send(int dst, int tag, std::span<const std::byte> data, MemSpace space = MemSpace::kHost,
            std::size_t logical_bytes = kAuto);
  void recv(int src, int tag, std::span<std::byte> out, MemSpace space = MemSpace::kHost,
            std::size_t logical_bytes = kAuto);

  /// Nonblocking handle returned by isend/irecv. Completion happens in
  /// wait(): sends are buffered (already complete at post time); receives
  /// match and account their virtual-clock cost when waited on — the
  /// moment a real MPI implementation would progress them. wait() on a
  /// receive whose sender died before matching raises RankFailed instead
  /// of hanging; a throwing wait consumes the request.
  class Request {
   public:
    Request() = default;

    /// Complete the operation (no-op if already completed).
    void wait() {
      if (complete_) {
        auto fn = std::move(complete_);
        complete_ = nullptr;
        fn();
      }
    }
    [[nodiscard]] bool completed() const noexcept { return !complete_; }

   private:
    friend class Communicator;
    explicit Request(std::function<void()> complete) : complete_(std::move(complete)) {}
    std::function<void()> complete_;
  };

  /// Nonblocking send: posts immediately (sends are buffered), returns a
  /// completed request for API symmetry with MPI_Isend.
  Request isend(int dst, int tag, std::span<const std::byte> data,
                MemSpace space = MemSpace::kHost, std::size_t logical_bytes = kAuto);

  /// Nonblocking receive: matching is deferred to wait().
  [[nodiscard]] Request irecv(int src, int tag, std::span<std::byte> out,
                              MemSpace space = MemSpace::kHost,
                              std::size_t logical_bytes = kAuto);

  /// Complete a set of requests in order (MPI_Waitall).
  static void wait_all(std::span<Request> requests) {
    for (Request& request : requests) request.wait();
  }

  /// Posts the send before blocking on the receive (safe ring step).
  void sendrecv(int dst, int send_tag, std::span<const std::byte> send_data, int src, int recv_tag,
                std::span<std::byte> recv_data, MemSpace space = MemSpace::kHost,
                std::size_t send_logical = kAuto, std::size_t recv_logical = kAuto);

  /// Send/receive a trivially-copyable value.
  template <typename T>
  void send_value(int dst, int tag, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    send(dst, tag, std::as_bytes(std::span<const T, 1>(&value, 1)));
  }
  template <typename T>
  [[nodiscard]] T recv_value(int src, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    T value{};
    recv(src, tag, std::as_writable_bytes(std::span<T, 1>(&value, 1)));
    return value;
  }

  /// Receive a message of unknown size (the mailbox carries the payload
  /// length, like MPI_Probe + MPI_Recv in one step).
  [[nodiscard]] std::vector<std::byte> recv_dynamic(int src, int tag,
                                                    MemSpace space = MemSpace::kHost);

  /// Variable-length payload helpers (single message each way).
  void send_blob(int dst, int tag, std::span<const std::byte> blob);
  [[nodiscard]] std::vector<std::byte> recv_blob(int src, int tag);

  /// Type-erased elementwise reduction used by the byte-level engines
  /// (public so the typed wrappers in detail:: can build instances, and
  /// so allreduce_custom callers can supply their own, e.g. fp16 sum).
  struct Reducer;

  // ---- collectives (every member must call, in the same order) ----
  //
  // Failure semantics (applies to every collective below): each call
  // checks for dead members at entry and raises mpi::RankFailed (tag -1)
  // if the communicator is revoked; a death in the middle of a collective
  // surfaces through the underlying p2p ops on every live member, so no
  // survivor completes with partial data silently and none hangs. After
  // catching RankFailed all survivors must stop using this communicator
  // and collectively call shrink().

  /// Dissemination barrier (log2(N) message rounds).
  void barrier();

  /// Binomial-tree broadcast of a fixed-size buffer.
  void bcast(std::span<std::byte> data, int root, MemSpace space = MemSpace::kHost,
             std::size_t logical_bytes = kAuto);

  /// Broadcast a variable-length blob from root; returns the blob on all
  /// ranks (root passes its payload, others' argument is ignored).
  [[nodiscard]] std::vector<std::byte> bcast_blob(std::span<const std::byte> blob, int root);

  /// Gather variable-length blobs at root (rank order). Non-roots get {}.
  [[nodiscard]] std::vector<std::vector<std::byte>> gather_blobs(std::span<const std::byte> mine,
                                                                 int root);

  /// Fixed-size allgather (ring algorithm): `out` has size()*mine.size().
  void allgather(std::span<const std::byte> mine, std::span<std::byte> out,
                 MemSpace space = MemSpace::kHost);

  /// Fixed-size scatter: root's `blocks` (size()*block bytes) are split so
  /// member r receives block r into `mine`. Non-roots pass blocks = {}.
  void scatter(std::span<const std::byte> blocks, std::span<std::byte> mine, int root,
               MemSpace space = MemSpace::kHost);

  /// Fixed-size gather: member r's `mine` lands in root's `blocks` at
  /// offset r*mine.size(). Non-roots pass blocks = {}.
  void gather(std::span<const std::byte> mine, std::span<std::byte> blocks, int root,
              MemSpace space = MemSpace::kHost);

  /// Fixed-size all-to-all (pairwise exchange): `send` and `recv` both
  /// hold size() blocks; block r of `send` goes to member r, whose block
  /// my-rank lands in `recv` block r.
  void alltoall(std::span<const std::byte> send, std::span<std::byte> recv,
                MemSpace space = MemSpace::kHost);

  /// In-place allreduce of typed data. Algorithm defaults to the library
  /// profile's size-based selection; pass one explicitly to ablate.
  template <typename T>
  void allreduce(std::span<T> data, ReduceOp op, MemSpace space = MemSpace::kDevice,
                 std::optional<AllreduceAlgo> algo = std::nullopt);

  /// Two-level allreduce: intra-node reduce to the node leader, leader
  /// allreduce across nodes, intra-node broadcast. This is the
  /// HOROVOD_HIERARCHICAL_ALLREDUCE data path.
  template <typename T>
  void hierarchical_allreduce(std::span<T> data, ReduceOp op, MemSpace space = MemSpace::kDevice,
                              std::optional<AllreduceAlgo> leader_algo = std::nullopt);

  /// In-place reduce to root (binomial tree).
  template <typename T>
  void reduce(std::span<T> data, ReduceOp op, int root, MemSpace space = MemSpace::kDevice);

  /// Ring reduce-scatter: every rank contributes `data` (size()*block
  /// elements); member r ends with the fully reduced block r in `out`.
  template <typename T>
  void reduce_scatter(std::span<T> data, std::span<T> out, ReduceOp op,
                      MemSpace space = MemSpace::kDevice);

  /// In-place allreduce with a caller-supplied elementwise reducer over
  /// raw elements (e.g. fp16 sum for compressed gradients). `reducer`
  /// must outlive the call; its elem_size must equal `elem_size`.
  void allreduce_custom(std::byte* data, std::size_t elem_size, std::size_t count,
                        const Reducer& reducer, MemSpace space = MemSpace::kDevice,
                        std::optional<AllreduceAlgo> algo = std::nullopt);

  /// Timing-only allreduce: prices an allreduce of `bytes` (float
  /// elements) without moving payload. Used by the performance simulator
  /// where 132-rank gradient buffers would not fit in memory.
  void allreduce_sim(std::size_t bytes, MemSpace space = MemSpace::kDevice,
                     std::optional<AllreduceAlgo> algo = std::nullopt);
  void hierarchical_allreduce_sim(std::size_t bytes, MemSpace space = MemSpace::kDevice,
                                  std::optional<AllreduceAlgo> leader_algo = std::nullopt);

  /// Collective split by color: ranks with equal color form a new
  /// communicator ordered by parent rank. Every member must call; pass a
  /// negative color to opt out (the returned communicator is not valid()).
  [[nodiscard]] Communicator split(int color);

  /// False for the null communicator returned by split with color < 0.
  [[nodiscard]] bool valid() const noexcept { return my_index_ >= 0; }

  // ---- fault awareness ----

  /// Advance this rank's application step counter and fire any FaultPlan
  /// trigger that matches (step- or time-based kill for this rank). The
  /// dying rank's thread exits via RankKilled; nothing happens for ranks
  /// the plan leaves alone. Call once per training step / simulation
  /// iteration, from the rank's own thread.
  void fault_tick();

  /// Communicator-member indices (NOT global ranks) of members currently
  /// alive, in member order. Equals 0..size()-1 until a member dies.
  [[nodiscard]] std::vector<int> alive() const;

  /// Monotone epoch of the world's membership: starts at 1, incremented
  /// by every rank death. Survivors compare epochs to agree they are
  /// reacting to the same failure generation.
  [[nodiscard]] std::uint64_t world_epoch() const;

  /// True if any member of THIS communicator has died (the communicator
  /// is revoked and every blocking op raises RankFailed).
  [[nodiscard]] bool revoked() const;

  /// Collective over the SURVIVORS of a revoked (or intact) communicator:
  /// every live member must call; dead members are excluded. Returns a new
  /// communicator containing exactly the live members in their old
  /// relative order, with ranks re-densified to 0..k-1. Unlike the other
  /// collectives, shrink works on a revoked communicator — it is the
  /// escape hatch. The rendezvous completes even if further members die
  /// while it is in progress (they are dropped from the result).
  [[nodiscard]] Communicator shrink();

  // ---- time & introspection ----

  /// Advance this rank's virtual clock by `seconds` of modeled compute.
  void compute(double seconds);
  [[nodiscard]] double now() const;
  [[nodiscard]] VirtualClock& clock();
  [[nodiscard]] const net::Topology& topology() const;
  [[nodiscard]] const net::MpiProfile& profile() const;
  [[nodiscard]] bool timing_enabled() const;
  [[nodiscard]] CommStats stats() const;

 private:
  friend class World;
  friend void run_world(const WorldOptions&, const std::function<void(Communicator&)>&);

  Communicator(World* world, std::uint64_t comm_id, std::vector<int> members, int my_index)
      : world_(world), comm_id_(comm_id), members_(std::move(members)), my_index_(my_index) {}

  // Byte-level engine shared by all typed allreduce entry points.
  void allreduce_bytes(std::byte* data, std::size_t elem_size, std::size_t count,
                       const Reducer* reducer, MemSpace space, AllreduceAlgo algo);
  void hierarchical_bytes(std::byte* data, std::size_t elem_size, std::size_t count,
                          const Reducer* reducer, MemSpace space,
                          std::optional<AllreduceAlgo> leader_algo);
  void reduce_bytes(std::byte* data, std::size_t elem_size, std::size_t count,
                    const Reducer* reducer, int root, MemSpace space);
  void ring_allreduce(std::byte* data, std::size_t elem_size, std::size_t count,
                      const Reducer* reducer, MemSpace space);
  void ring_reduce_scatter_phase(std::byte* data, std::size_t elem_size, std::size_t count,
                                 const Reducer* reducer, MemSpace space);
  // Pipelined intra-node phases for hierarchical allreduce (NCCL-style):
  // ring reduce-scatter + segment gather to root / segment scatter from
  // root + ring allgather.
  void ring_reduce_to_root(std::byte* data, std::size_t elem_size, std::size_t count,
                           const Reducer* reducer, MemSpace space);
  void scatter_allgather_bcast(std::byte* data, std::size_t elem_size, std::size_t count,
                               MemSpace space);
  void recursive_doubling_allreduce(std::byte* data, std::size_t elem_size, std::size_t count,
                                    const Reducer* reducer, MemSpace space);
  void rabenseifner_allreduce(std::byte* data, std::size_t elem_size, std::size_t count,
                              const Reducer* reducer, MemSpace space);
  void binomial_bcast(std::byte* data, std::size_t bytes, int root, MemSpace space,
                      std::size_t logical_bytes);
  // Prices the elementwise reduction of `bytes` received from member
  // `src`; reduction runs on the host when the incoming message itself
  // took the host-staged path (Spectrum-style), on the GPU otherwise.
  void reduce_compute(std::size_t bytes, MemSpace space, int src);

  // Raise RankFailed if any member of this communicator is dead, and fire
  // any time-triggered kill for this rank first. `expected_src` (member
  // index) names the peer a recv is waiting on so the exception blames
  // the awaited sender when IT is the dead one.
  void ensure_live(const char* op, int tag, int expected_src = -1);
  [[noreturn]] void raise_failed(int first_dead_global, const char* op, int tag, int expected_src);
  void maybe_die_on_time();
  [[noreturn]] void die();

  World* world_;
  std::uint64_t comm_id_;
  std::vector<int> members_;
  int my_index_;
  std::uint64_t split_seq_ = 0;
  // Cached sub-communicators for hierarchical allreduce (built lazily on
  // first use; shared so copies of this handle reuse them).
  bool hier_built_ = false;
  std::shared_ptr<Communicator> node_comm_;
  std::shared_ptr<Communicator> leader_comm_;
};

/// Launch `options.topology.world_size()` rank threads, run `body` on
/// each, join, and propagate the first exception thrown by any rank.
void run_world(const WorldOptions& options, const std::function<void(Communicator&)>& body);

/// Convenience: ideal profile, single-node topology of `world_size` ranks,
/// timing disabled — for functional tests.
void run_world(int world_size, const std::function<void(Communicator&)>& body);

// ---- template definitions ----

struct Communicator::Reducer {
  std::size_t elem_size;
  void (*apply)(std::byte* acc, const std::byte* in, std::size_t n);
};

namespace detail {

template <typename T, ReduceOp Op>
void apply_op(std::byte* acc_raw, const std::byte* in_raw, std::size_t n) {
  T* acc = reinterpret_cast<T*>(acc_raw);
  const T* in = reinterpret_cast<const T*>(in_raw);
  for (std::size_t i = 0; i < n; ++i) {
    if constexpr (Op == ReduceOp::kSum) {
      acc[i] += in[i];
    } else if constexpr (Op == ReduceOp::kMax) {
      acc[i] = acc[i] < in[i] ? in[i] : acc[i];
    } else {
      acc[i] = in[i] < acc[i] ? in[i] : acc[i];
    }
  }
}

template <typename T>
Communicator::Reducer make_reducer(ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum: return {sizeof(T), &apply_op<T, ReduceOp::kSum>};
    case ReduceOp::kMax: return {sizeof(T), &apply_op<T, ReduceOp::kMax>};
    case ReduceOp::kMin: return {sizeof(T), &apply_op<T, ReduceOp::kMin>};
  }
  return {sizeof(T), &apply_op<T, ReduceOp::kSum>};
}

}  // namespace detail

template <typename T>
void Communicator::allreduce(std::span<T> data, ReduceOp op, MemSpace space,
                             std::optional<AllreduceAlgo> algo) {
  static_assert(std::is_trivially_copyable_v<T>);
  const Reducer reducer = detail::make_reducer<T>(op);
  const AllreduceAlgo chosen = algo.value_or(
      profile().allreduce_algo(data.size_bytes(), space == MemSpace::kDevice, size()));
  allreduce_bytes(reinterpret_cast<std::byte*>(data.data()), sizeof(T), data.size(), &reducer,
                  space, chosen);
}

template <typename T>
void Communicator::hierarchical_allreduce(std::span<T> data, ReduceOp op, MemSpace space,
                                          std::optional<AllreduceAlgo> leader_algo) {
  static_assert(std::is_trivially_copyable_v<T>);
  const Reducer reducer = detail::make_reducer<T>(op);
  hierarchical_bytes(reinterpret_cast<std::byte*>(data.data()), sizeof(T), data.size(), &reducer,
                     space, leader_algo);
}

template <typename T>
void Communicator::reduce_scatter(std::span<T> data, std::span<T> out, ReduceOp op,
                                  MemSpace space) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto n = static_cast<std::size_t>(size());
  if (data.size() != out.size() * n) {
    throw std::invalid_argument("reduce_scatter: data must hold size() blocks of out's size");
  }
  const Reducer reducer = detail::make_reducer<T>(op);
  ring_reduce_scatter_phase(reinterpret_cast<std::byte*>(data.data()), sizeof(T), data.size(),
                            &reducer, space);
  // After the ring phase, rank r owns block (r+1) mod size() fully reduced.
  const std::size_t block = out.size();
  const auto owned = static_cast<std::size_t>((rank() + 1) % size());
  std::copy(data.begin() + static_cast<std::ptrdiff_t>(owned * block),
            data.begin() + static_cast<std::ptrdiff_t>((owned + 1) * block), out.begin());
  // Rotate ownership so member r holds block r (one extra hop, like MPICH's
  // ring reduce_scatter with final alignment).
  const int right = (rank() + 1) % size();
  const int left = (rank() - 1 + size()) % size();
  sendrecv(right, 0x4D000000, std::as_bytes(out), left, 0x4D000000, std::as_writable_bytes(out),
           space);
}

template <typename T>
void Communicator::reduce(std::span<T> data, ReduceOp op, int root, MemSpace space) {
  static_assert(std::is_trivially_copyable_v<T>);
  const Reducer reducer = detail::make_reducer<T>(op);
  reduce_bytes(reinterpret_cast<std::byte*>(data.data()), sizeof(T), data.size(), &reducer, root,
               space);
}

}  // namespace dlscale::mpi
