// Synthetic semantic-segmentation dataset + distributed sampling.
//
// The paper trains on PASCAL VOC-style data we cannot ship, so the
// accuracy-parity experiment (E6) uses a generated substitute: images of
// geometric shapes (disks, rectangles, crosses, rings, stripes) over a
// textured background, each shape class with its own colour statistics,
// labelled per pixel. The task is learnable but not trivial (shapes
// overlap, colours are noisy), which is what E6 needs: a dataset where
// single-rank and data-parallel training measurably converge to the same
// mIOU. Sample generation is a pure function of (seed, index), so every
// rank can materialise exactly its shard without any data files.
#pragma once

#include <cstdint>
#include <vector>

#include "dlscale/tensor/tensor.hpp"
#include "dlscale/util/rng.hpp"

namespace dlscale::data {

using tensor::Tensor;

/// One image with per-pixel labels.
struct Sample {
  Tensor image;             ///< (1, 3, size, size)
  std::vector<int> labels;  ///< size*size class ids (0 = background)
};

/// Deterministic generator of shape-segmentation samples.
class SyntheticShapes {
 public:
  struct Config {
    int image_size = 48;
    int num_classes = 6;   ///< background + 5 shape classes
    int max_shapes = 4;    ///< shapes per image in [1, max_shapes]
    float noise = 0.15f;   ///< pixel colour noise stddev
    std::uint64_t seed = 2020;
  };

  explicit SyntheticShapes(Config config);

  /// Materialise sample `index` (same result on every rank/platform).
  [[nodiscard]] Sample make(std::uint64_t index) const;

  /// Stack `indices` into one batch: image (B,3,S,S), labels B*S*S.
  [[nodiscard]] Sample make_batch(const std::vector<std::uint64_t>& indices) const;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  void draw_shape(Tensor& image, std::vector<int>& labels, int shape_class, util::Rng& rng) const;

  Config config_;
};

/// Training-time augmentation in the DeepLab recipe's spirit: random
/// horizontal flip and random translation (crop-with-padding). Labels
/// move with their pixels; pixels shifted in from outside get background
/// class 0 and background colour. Deterministic from `rng`.
void augment(Sample& sample, util::Rng& rng, int max_shift = 4);

/// Horizontal flip of every image row and its labels (exposed for tests).
void flip_horizontal(Sample& sample);

/// Translate image and labels by (dy, dx), filling vacated pixels with
/// background (exposed for tests).
void translate(Sample& sample, int dy, int dx);

/// Deterministic shard-by-rank sampler with per-epoch shuffling — the
/// same contract as Horovod's DistributedSampler: every rank sees a
/// disjoint 1/world_size slice of each epoch's permutation.
class DistributedSampler {
 public:
  DistributedSampler(std::uint64_t dataset_size, int world_size, int rank, std::uint64_t seed);

  /// Sample indices of this rank's shard for `epoch`, already shuffled.
  [[nodiscard]] std::vector<std::uint64_t> epoch_indices(std::uint64_t epoch) const;

  /// Samples per rank per epoch (dataset_size / world_size, floored so
  /// every rank sees the same count).
  [[nodiscard]] std::uint64_t shard_size() const noexcept { return shard_size_; }

 private:
  std::uint64_t dataset_size_;
  int world_size_;
  int rank_;
  std::uint64_t seed_;
  std::uint64_t shard_size_;
};

/// Streaming confusion matrix with mean intersection-over-union, the
/// paper's reported metric (80.8% mIOU).
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(int num_classes);

  /// Accumulate predictions vs ground truth; `ignore_label` pixels skipped.
  void update(const std::vector<int>& prediction, const std::vector<int>& truth,
              int ignore_label = 255);

  /// IOU of one class; 0 when the class never appears.
  [[nodiscard]] double iou(int cls) const;

  /// Mean IOU over classes that appear in truth or prediction.
  [[nodiscard]] double miou() const;

  /// Overall pixel accuracy.
  [[nodiscard]] double pixel_accuracy() const;

  /// Raw counts for merging across ranks (row-major truth x prediction).
  [[nodiscard]] std::vector<std::uint64_t>& counts() noexcept { return counts_; }
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const noexcept { return counts_; }
  [[nodiscard]] int num_classes() const noexcept { return num_classes_; }

  void reset();

 private:
  int num_classes_;
  std::vector<std::uint64_t> counts_;
};

}  // namespace dlscale::data
