// Post-training model conversion to reduced precision (DESIGN.md §9).
//
// Three serving precisions: kFp32 (trainable, the default), kBf16 (u16
// weight storage, widened to fp32 per forward — halves weights-at-rest,
// arithmetic unchanged), and kInt8 (symmetric per-output-channel s8
// weights + calibrated asymmetric u8 activations through the
// micro-kernel integer GEMM). Conversion is one-way and inference-only:
// a converted layer throws on forward(train=true).
//
// Int8 needs static activation ranges. Those come from a calibration
// pass: open a CalibrationSession over a CalibrationTable, run eval
// forwards on a representative batch (Conv2d records its input range
// under its layer name), close the session, then convert with the table.
#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <string>

#include "dlscale/tensor/quantize.hpp"

namespace dlscale::nn {

class Layer;

/// Serving precision of a layer or model.
enum class Precision { kFp32 = 0, kBf16 = 1, kInt8 = 2 };

/// "fp32" / "bf16" / "int8" — stats tags, logs, error messages.
const char* precision_name(Precision p) noexcept;

/// Which observer the calibration pass feeds.
enum class ObserverKind { kMinMax = 0, kPercentile = 1 };

struct CalibrationConfig {
  ObserverKind observer = ObserverKind::kMinMax;
  /// Only read when observer == kPercentile.
  double percentile = 99.9;
};

/// Per-layer activation-range accumulator. record() is mutex-guarded so
/// a calibration pass may span threads; qparams() snapshots the observed
/// range into static activation parameters.
class CalibrationTable {
 public:
  explicit CalibrationTable(CalibrationConfig config = {});

  /// Fold `n` activation values into layer `name`'s observer.
  void record(const std::string& name, const float* values, std::size_t n);

  [[nodiscard]] bool has(const std::string& name) const;

  /// Activation parameters for `name`; throws std::invalid_argument
  /// naming the layer when it was never calibrated.
  [[nodiscard]] tensor::quant::QuantParams qparams(const std::string& name) const;

  /// Number of layers with recorded ranges.
  [[nodiscard]] std::size_t size() const;

  [[nodiscard]] const CalibrationConfig& config() const noexcept {
    return config_;
  }

 private:
  struct Slot {
    explicit Slot(double pct_value) : percentile(pct_value) {}
    tensor::quant::MinMaxObserver minmax;
    tensor::quant::PercentileObserver percentile;
  };

  CalibrationConfig config_;
  mutable std::mutex mutex_;
  std::map<std::string, Slot> slots_;
};

/// RAII activation-recording scope: while alive, every Conv2d eval
/// forward records its input range into `table`. Sessions nest (inner
/// shadows outer); the active table is process-global, matching how a
/// calibration pass is actually run — single-purpose, before serving.
class CalibrationSession {
 public:
  explicit CalibrationSession(CalibrationTable& table);
  ~CalibrationSession();
  CalibrationSession(const CalibrationSession&) = delete;
  CalibrationSession& operator=(const CalibrationSession&) = delete;

  /// The innermost live session's table, or nullptr outside any session.
  static CalibrationTable* active() noexcept;

 private:
  CalibrationTable* previous_;
};

/// Convert a layer tree in place: Conv2d layers take the target precision
/// (int8 requires `table`; throws std::invalid_argument without one or
/// when a layer has no recorded range); DepthwiseConv2d stores bf16 under
/// either reduced target (it has no im2col/GEMM form, so its arithmetic
/// stays fp32); everything else recurses through children().
void convert_layer_tree(Layer& root, Precision target,
                        const CalibrationTable* table);

}  // namespace dlscale::nn
