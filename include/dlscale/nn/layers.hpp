// Layer abstraction with explicit forward/backward and named parameters.
//
// Layers cache whatever their backward pass needs during forward; the
// model owner calls backward in exact reverse order. Backward optionally
// streams into a GradSink: every layer reports the roofline cost of its
// backward kernels and notifies the sink the moment each parameter's
// gradient is finalized. Across a full model backward the notifications
// arrive in the EXACT REVERSE of the model's parameters() order — the
// staggered, backprop-ordered gradient stream Horovod's fusion machinery
// sees in real frameworks (the trainer stamps each notification with a
// virtual ready time and submits it to the Horovod runtime immediately,
// so negotiation/fusion cycles overlap the remaining backward compute).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dlscale/nn/quantized.hpp"
#include "dlscale/tensor/ops.hpp"
#include "dlscale/tensor/quantize.hpp"
#include "dlscale/tensor/tensor.hpp"
#include "dlscale/util/rng.hpp"

namespace dlscale::nn {

using tensor::Conv2dSpec;
using tensor::Tensor;

/// A learnable tensor with its gradient accumulator. The accumulator is
/// allocated lazily: a model that only ever runs inference (the serving
/// replicas) never materialises gradient storage at all. Anything that
/// writes grads — layer backward passes, the optimizer, tests poking
/// grads directly — goes through ensure_grad()/zero_grad() first.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;

  Parameter() = default;
  Parameter(std::string param_name, Tensor initial)
      : name(std::move(param_name)), value(std::move(initial)) {}

  [[nodiscard]] std::size_t numel() const noexcept { return value.numel(); }
  /// Allocates grad (zero-filled) on first call; no-op afterwards.
  void ensure_grad() {
    if (grad.empty()) grad = Tensor(value.shape());
  }
  void zero_grad() {
    ensure_grad();
    grad.zero();
  }
};

/// A named non-learnable tensor (e.g. BatchNorm running statistics):
/// belongs in checkpoints, never in gradient traffic.
struct NamedTensor {
  std::string name;
  Tensor* tensor = nullptr;
};

/// Observer of a backward pass. Layers drive it in backprop order:
/// `backward_cost` once per primitive layer as its backward kernels
/// retire (roofline inputs for a virtual timeline), then `grad_ready`
/// for each parameter whose gradient is final and may be consumed (e.g.
/// submitted for allreduce). Within one layer parameters are notified in
/// reverse parameters() order, so a whole-model backward emits the exact
/// reverse of the model's parameters() sequence.
class GradSink {
 public:
  virtual ~GradSink() = default;

  /// A layer's backward kernels retired: `flops` of arithmetic over
  /// `bytes_touched` of memory traffic.
  virtual void backward_cost(double flops, double bytes_touched) = 0;

  /// `param.grad` holds this step's final accumulated gradient.
  virtual void grad_ready(Parameter& param) = 0;
};

/// Base class for stateful layers.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Compute output; caches activations needed by backward when `train`.
  virtual Tensor forward(const Tensor& input, bool train) = 0;

  /// Propagate gradient; accumulates into parameter grads. When `sink`
  /// is non-null, reports backward cost and finalized parameter
  /// gradients in backprop order (see GradSink).
  Tensor backward(const Tensor& grad_out, GradSink* sink = nullptr) {
    return do_backward(grad_out, sink);
  }

  /// Learnable parameters (possibly empty). Pointers remain valid for the
  /// layer's lifetime.
  virtual std::vector<Parameter*> parameters() { return {}; }

  /// Non-learnable state to checkpoint (possibly empty). Pointers remain
  /// valid for the layer's lifetime.
  virtual std::vector<NamedTensor> buffers() { return {}; }

  /// Bytes currently held by activation caches for backward (composites
  /// sum their children). An inference-only forward (`train == false`)
  /// must leave this at 0 — the memory invariant serving replicas rely
  /// on, enforced by tests/serve/test_inference_mode.cpp.
  [[nodiscard]] virtual std::size_t cache_bytes() const { return 0; }

  /// Direct sub-layers of a composite (empty for primitives). Pointers
  /// remain valid for the layer's lifetime; used by precision conversion
  /// (nn/quantized.hpp) to walk a model without knowing its topology.
  virtual std::vector<Layer*> children() { return {}; }

  [[nodiscard]] virtual std::string name() const = 0;

 protected:
  virtual Tensor do_backward(const Tensor& grad_out, GradSink* sink) = 0;
};

/// 2D convolution (optionally dilated/atrous), He-initialised.
class Conv2d final : public Layer {
 public:
  Conv2d(std::string layer_name, int in_channels, int out_channels, int kernel, Conv2dSpec spec,
         bool bias, util::Rng& rng);

  Tensor forward(const Tensor& input, bool train) override;
  std::vector<Parameter*> parameters() override;
  [[nodiscard]] std::size_t cache_bytes() const override;
  [[nodiscard]] std::string name() const override { return name_; }

  [[nodiscard]] const Conv2dSpec& spec() const noexcept { return spec_; }

  /// Post-training conversion (nn/quantized.hpp). One-way: the fp32
  /// weight storage is released and the layer becomes inference-only
  /// (forward(train=true) and backward throw). Int8 needs this layer's
  /// calibrated activation range from `table` (recorded under name()).
  void convert_to_int8(const CalibrationTable& table);
  void convert_to_bf16();
  [[nodiscard]] Precision precision() const noexcept { return precision_; }

 protected:
  Tensor do_backward(const Tensor& grad_out, GradSink* sink) override;

 private:
  std::string name_;
  Conv2dSpec spec_;
  bool has_bias_;
  Parameter weight_;
  Parameter bias_;
  Tensor cached_input_;

  // Reduced-precision state; weight_shape_ outlives the released fp32
  // weight so forwards still know the filter geometry.
  Precision precision_ = Precision::kFp32;
  tensor::Shape weight_shape_;
  tensor::quant::QuantizedMatrix qweight_;
  tensor::quant::QuantParams act_params_{};
  std::vector<std::uint16_t> bf16_weight_;
};

/// Batch normalisation over (N,H,W) per channel.
class BatchNorm2d final : public Layer {
 public:
  BatchNorm2d(std::string layer_name, int channels, float momentum = 0.1f, float eps = 1e-5f);

  Tensor forward(const Tensor& input, bool train) override;
  std::vector<Parameter*> parameters() override;
  std::vector<NamedTensor> buffers() override;
  [[nodiscard]] std::size_t cache_bytes() const override;
  [[nodiscard]] std::string name() const override { return name_; }

  [[nodiscard]] const Tensor& running_mean() const noexcept { return running_mean_; }
  [[nodiscard]] const Tensor& running_var() const noexcept { return running_var_; }

 protected:
  Tensor do_backward(const Tensor& grad_out, GradSink* sink) override;

 private:
  std::string name_;
  float momentum_;
  float eps_;
  Parameter gamma_;
  Parameter beta_;
  Tensor running_mean_;
  Tensor running_var_;
  tensor::BatchNormCache cache_;
};

/// ReLU activation.
class ReLU final : public Layer {
 public:
  explicit ReLU(std::string layer_name) : name_(std::move(layer_name)) {}
  Tensor forward(const Tensor& input, bool train) override;
  [[nodiscard]] std::size_t cache_bytes() const override;
  [[nodiscard]] std::string name() const override { return name_; }

 protected:
  Tensor do_backward(const Tensor& grad_out, GradSink* sink) override;

 private:
  std::string name_;
  Tensor cached_input_;
};

/// Max pooling.
class MaxPool2d final : public Layer {
 public:
  MaxPool2d(std::string layer_name, int kernel, int stride)
      : name_(std::move(layer_name)), kernel_(kernel), stride_(stride) {}
  Tensor forward(const Tensor& input, bool train) override;
  [[nodiscard]] std::size_t cache_bytes() const override;
  [[nodiscard]] std::string name() const override { return name_; }

 protected:
  Tensor do_backward(const Tensor& grad_out, GradSink* sink) override;

 private:
  std::string name_;
  int kernel_;
  int stride_;
  Tensor cached_input_;
  std::vector<int> argmax_;
};

/// Bilinear resize to a fixed output size (decoder upsampling).
class BilinearResize final : public Layer {
 public:
  BilinearResize(std::string layer_name, int out_h, int out_w)
      : name_(std::move(layer_name)), out_h_(out_h), out_w_(out_w) {}
  Tensor forward(const Tensor& input, bool train) override;
  [[nodiscard]] std::size_t cache_bytes() const override;
  [[nodiscard]] std::string name() const override { return name_; }

  void set_output_size(int out_h, int out_w) {
    out_h_ = out_h;
    out_w_ = out_w;
  }

 protected:
  Tensor do_backward(const Tensor& grad_out, GradSink* sink) override;

 private:
  std::string name_;
  int out_h_;
  int out_w_;
  Tensor cached_input_;
};

/// Depthwise 3x3 convolution layer (one filter per channel).
class DepthwiseConv2d final : public Layer {
 public:
  DepthwiseConv2d(std::string layer_name, int channels, int kernel, Conv2dSpec spec,
                  util::Rng& rng);
  Tensor forward(const Tensor& input, bool train) override;
  std::vector<Parameter*> parameters() override;
  [[nodiscard]] std::size_t cache_bytes() const override;
  [[nodiscard]] std::string name() const override { return name_; }

  /// bf16 weight storage (arithmetic stays fp32 — depthwise has no
  /// im2col/GEMM form for the int8 kernel). One-way, inference-only.
  void convert_to_bf16();
  [[nodiscard]] Precision precision() const noexcept { return precision_; }

 protected:
  Tensor do_backward(const Tensor& grad_out, GradSink* sink) override;

 private:
  std::string name_;
  Conv2dSpec spec_;
  Parameter weight_;
  Tensor cached_input_;

  Precision precision_ = Precision::kFp32;
  tensor::Shape weight_shape_;
  std::vector<std::uint16_t> bf16_weight_;
};

/// Xception-style separable convolution: depthwise 3x3 -> BN -> pointwise
/// 1x1 -> BN -> ReLU. The unit the paper's DeepLab-v3+ backbone
/// (Xception-65) is built from.
class SeparableConvBnRelu final : public Layer {
 public:
  SeparableConvBnRelu(std::string layer_name, int in_channels, int out_channels,
                      Conv2dSpec depthwise_spec, util::Rng& rng);
  Tensor forward(const Tensor& input, bool train) override;
  std::vector<Parameter*> parameters() override;
  std::vector<NamedTensor> buffers() override;
  [[nodiscard]] std::size_t cache_bytes() const override;
  std::vector<Layer*> children() override {
    return {&depthwise_, &bn_dw_, &pointwise_, &bn_pw_, &relu_};
  }
  [[nodiscard]] std::string name() const override { return name_; }

 protected:
  Tensor do_backward(const Tensor& grad_out, GradSink* sink) override;

 private:
  std::string name_;
  DepthwiseConv2d depthwise_;
  BatchNorm2d bn_dw_;
  Conv2d pointwise_;
  BatchNorm2d bn_pw_;
  ReLU relu_;
};

/// Conv -> BN -> ReLU block, the workhorse unit of both backbones.
class ConvBnRelu final : public Layer {
 public:
  ConvBnRelu(std::string layer_name, int in_channels, int out_channels, int kernel,
             Conv2dSpec spec, util::Rng& rng);
  Tensor forward(const Tensor& input, bool train) override;
  std::vector<Parameter*> parameters() override;
  std::vector<NamedTensor> buffers() override;
  [[nodiscard]] std::size_t cache_bytes() const override;
  std::vector<Layer*> children() override { return {&conv_, &bn_, &relu_}; }
  [[nodiscard]] std::string name() const override { return name_; }

 protected:
  Tensor do_backward(const Tensor& grad_out, GradSink* sink) override;

 private:
  std::string name_;
  Conv2d conv_;
  BatchNorm2d bn_;
  ReLU relu_;
};

/// Ordered container running layers front-to-back / back-to-front.
class Sequential final : public Layer {
 public:
  explicit Sequential(std::string layer_name) : name_(std::move(layer_name)) {}

  /// Appends a layer; returns a reference to the added layer.
  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  Tensor forward(const Tensor& input, bool train) override;
  std::vector<Parameter*> parameters() override;
  std::vector<NamedTensor> buffers() override;
  [[nodiscard]] std::size_t cache_bytes() const override;
  std::vector<Layer*> children() override {
    std::vector<Layer*> out;
    out.reserve(layers_.size());
    for (auto& layer : layers_) out.push_back(layer.get());
    return out;
  }
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] std::size_t size() const noexcept { return layers_.size(); }

 protected:
  Tensor do_backward(const Tensor& grad_out, GradSink* sink) override;

 private:
  std::string name_;
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace dlscale::nn
