// SGD with momentum + weight decay and the "poly" learning-rate schedule
// used by the DeepLab family: lr = base * (1 - iter/max_iter)^power.
#pragma once

#include <vector>

#include "dlscale/nn/layers.hpp"

namespace dlscale::nn {

/// Poly learning-rate schedule (DeepLab convention: power 0.9).
struct PolySchedule {
  double base_lr = 0.007;
  double power = 0.9;
  long max_iters = 30000;

  [[nodiscard]] double lr_at(long iter) const;
};

/// SGD with momentum and decoupled-from-schedule weight decay, matching
/// the DeepLab-v3+ training recipe (momentum 0.9, wd 4e-5).
class SgdMomentum {
 public:
  struct Config {
    double momentum = 0.9;
    double weight_decay = 4e-5;
    /// Clip the global gradient norm to this value before the update
    /// (0 disables). Applied across ALL parameters jointly.
    double clip_grad_norm = 0.0;
  };

  SgdMomentum(std::vector<Parameter*> params, Config config);

  /// Apply one update at learning rate `lr`, then leave grads untouched
  /// (callers zero them explicitly at the start of the next step).
  void step(double lr);

  /// Zero every parameter gradient.
  void zero_grad();

  /// Global L2 norm of all gradients (what clipping measures).
  [[nodiscard]] double grad_norm() const;

  [[nodiscard]] const std::vector<Parameter*>& parameters() const noexcept { return params_; }
  [[nodiscard]] std::size_t total_parameters() const noexcept;

  /// Momentum buffers, parallel to parameters(); mutable so checkpoints
  /// can restore optimizer state.
  [[nodiscard]] std::vector<Tensor>& velocity() noexcept { return velocity_; }

 private:
  std::vector<Parameter*> params_;
  Config config_;
  std::vector<Tensor> velocity_;
};

}  // namespace dlscale::nn
