// Horovod core reimplementation: negotiation, tensor fusion, cycles.
//
// The paper's contribution is tuning Horovod/MPI runtime knobs — fusion
// threshold (HOROVOD_FUSION_THRESHOLD), cycle time (HOROVOD_CYCLE_TIME),
// hierarchical allreduce (HOROVOD_HIERARCHICAL_ALLREDUCE), response cache
// — without touching framework code. For those knobs to mean anything,
// the machinery they control has to exist, so this module reimplements
// Horovod's background-coordinator design over simmpi:
//
//  * every rank submits gradient tensors as they become ready (backprop
//    emits them in reverse layer order);
//  * once per cycle, ranks report ready tensors to the coordinator
//    (rank 0); when every rank has reported a tensor, the coordinator
//    emits a response, preserving arrival order;
//  * responses are greedily fused into batches up to the fusion
//    threshold, packed into a fusion buffer, allreduced once per batch
//    (flat or hierarchical), unpacked, and averaged;
//  * after the first iteration the response cache replaces name-list
//    gathers with a fixed-size bitvector allgather.
//
// All coordination traffic is real simmpi messages, so negotiation cost
// scales with world size and cycle count exactly as it does in Horovod.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "dlscale/gpu/device.hpp"
#include "dlscale/hvd/compress.hpp"
#include "dlscale/mpi/comm.hpp"

namespace dlscale::hvd {

/// The runtime knobs under study (paper Table "tuned parameters").
struct Knobs {
  std::size_t fusion_threshold = 64 << 20;  ///< HOROVOD_FUSION_THRESHOLD (bytes)
  double cycle_time_s = 5e-3;               ///< HOROVOD_CYCLE_TIME (seconds)
  bool hierarchical_allreduce = false;      ///< HOROVOD_HIERARCHICAL_ALLREDUCE
  bool response_cache = true;               ///< HOROVOD_CACHE_CAPACITY > 0
  std::optional<mpi::AllreduceAlgo> algo;   ///< force a collective algorithm
  /// Warn (once per tensor) when a tensor has been announced by some
  /// ranks but not all for this many cycles — Horovod's stall check
  /// (HOROVOD_STALL_CHECK). 0 disables.
  std::uint64_t stall_warning_cycles = 500;
  /// Compress gradients to IEEE half before the allreduce and expand the
  /// averaged result (HOROVOD_FP16_ALLREDUCE): halves wire bytes at
  /// ~1e-3 relative precision cost.
  bool fp16_allreduce = false;
  /// Record negotiation/allreduce events for the Chrome-tracing timeline
  /// from construction on (HOROVOD_TIMELINE: any non-empty value).
  bool timeline = false;
  /// Gradient wire codec (DESIGN.md §12). kNone falls back to
  /// fp16_allreduce above, so the legacy knob keeps working; any other
  /// value wins over it (effective_compression() resolves the pair).
  CompressionAlgo compression = CompressionAlgo::kNone;
  /// Fraction of each tensor's elements kTopK keeps, in (0, 1].
  float topk_ratio = 0.01f;
  /// Error-feedback residual accumulation for int8/top-k. On by default:
  /// without it the compression bias is permanent and convergence
  /// degrades (the mIOU gate's no-EF control shows exactly that).
  bool error_feedback = true;

  /// The codec actually in force once the legacy fp16 flag is folded in.
  [[nodiscard]] CompressionAlgo effective_compression() const noexcept {
    if (compression != CompressionAlgo::kNone) return compression;
    return fp16_allreduce ? CompressionAlgo::kFp16 : CompressionAlgo::kNone;
  }

  /// Read HOROVOD_FUSION_THRESHOLD / HOROVOD_CYCLE_TIME (ms) /
  /// HOROVOD_HIERARCHICAL_ALLREDUCE / HOROVOD_CACHE_CAPACITY /
  /// HOROVOD_FP16_ALLREDUCE / HOROVOD_STALL_CHECK (cycles, 0 disables) /
  /// HOROVOD_TIMELINE / DLSCALE_ALLREDUCE_ALGO
  /// (ring|rabenseifner|recursive_doubling|auto) /
  /// DLSCALE_GRAD_COMPRESSION (none|fp16|int8|topk) / DLSCALE_TOPK_RATIO
  /// ((0,1]) / DLSCALE_ERROR_FEEDBACK from the environment, falling back
  /// to the given defaults. Unknown DLSCALE_ALLREDUCE_ALGO or
  /// DLSCALE_GRAD_COMPRESSION values and out-of-range DLSCALE_TOPK_RATIO
  /// throw std::invalid_argument naming the valid set — a typo'd codec
  /// silently falling back to fp32 would invalidate a whole run.
  static Knobs from_env(Knobs defaults);
  static Knobs from_env();

  /// Horovod defaults as deployed on Summit when the paper was written
  /// (0.15.x era): 64 MiB fusion, 5 ms cycle, flat allreduce, and NO
  /// response cache (the cache shipped later, in 0.16/0.18).
  static Knobs horovod_defaults() {
    Knobs knobs;
    knobs.response_cache = false;
    return knobs;
  }

  /// The paper's tuned configuration: larger effective fusion window,
  /// shorter cycle, hierarchical allreduce on.
  static Knobs paper_tuned();
};

/// Counters for the fusion/negotiation ablation (experiment E9). All
/// counters are monotonic, so two snapshots subtract into the activity of
/// the interval between them — the basis for per-epoch reporting and the
/// autotuner's per-window scoring.
struct RuntimeStats {
  std::uint64_t cycles = 0;            ///< negotiation rounds executed
  std::uint64_t tensors_negotiated = 0;
  std::uint64_t fused_batches = 0;     ///< collective launches
  std::uint64_t cache_hit_cycles = 0;  ///< cycles served by the bitvector path
  std::uint64_t bytes_reduced = 0;
  /// Payload bytes actually travelling per collective launch after the
  /// wire codec (== bytes_reduced uncompressed; /2 fp16; header+payload
  /// blob size for int8/top-k). The autotuner's surrogate prices THIS.
  std::uint64_t bytes_on_wire = 0;
  std::uint64_t control_bytes = 0;     ///< negotiation wire traffic
  std::uint64_t stall_warnings = 0;    ///< tensors flagged by the stall check
  double compress_pack_s = 0.0;        ///< wall seconds spent encoding (fp16/int8/topk)
  double compress_unpack_s = 0.0;      ///< wall seconds spent decoding/averaging

  RuntimeStats& operator-=(const RuntimeStats& earlier) noexcept {
    cycles -= earlier.cycles;
    tensors_negotiated -= earlier.tensors_negotiated;
    fused_batches -= earlier.fused_batches;
    cache_hit_cycles -= earlier.cache_hit_cycles;
    bytes_reduced -= earlier.bytes_reduced;
    bytes_on_wire -= earlier.bytes_on_wire;
    control_bytes -= earlier.control_bytes;
    stall_warnings -= earlier.stall_warnings;
    compress_pack_s -= earlier.compress_pack_s;
    compress_unpack_s -= earlier.compress_unpack_s;
    return *this;
  }
  friend RuntimeStats operator-(RuntimeStats later, const RuntimeStats& earlier) noexcept {
    later -= earlier;
    return later;
  }
};

/// One gradient tensor registered for allreduce.
struct TensorRequest {
  std::string name;        ///< stable identity across iterations
  std::span<float> data;   ///< payload; empty in timing-only mode
  std::size_t bytes = 0;   ///< logical size (defaults to data size)
  double ready_at = 0.0;   ///< virtual time the gradient became available
};

/// Per-rank Horovod runtime. Every rank constructs one over the same
/// communicator and drives it SPMD-style: submit(...) x N, synchronize().
class HorovodRuntime {
 public:
  HorovodRuntime(mpi::Communicator& comm, Knobs knobs,
                 gpu::ComputeModel copy_model = gpu::ComputeModel(
                     gpu::DeviceSpec::v100_summit(), 0.5));

  /// Register a tensor for averaging (hvd.allreduce_async_ equivalent).
  /// All ranks must submit the same named set between synchronize calls.
  void submit(TensorRequest request);

  /// Run negotiation/execution cycles until every submitted tensor has
  /// been reduced on all ranks (hvd.synchronize equivalent). Collective.
  void synchronize();

  /// Broadcast `data` from `root` to all ranks (hvd.broadcast). Used to
  /// distribute rank-0's initial model state so replicas start identical
  /// regardless of per-rank initialisation. Collective.
  void broadcast(std::span<float> data, int root = 0);

  /// Record negotiation/allreduce events for the Horovod-timeline-style
  /// trace (HOROVOD_TIMELINE equivalent). Call before the first cycle.
  void enable_timeline() { timeline_enabled_ = true; }

  /// Write the recorded trace as Chrome tracing JSON (load in
  /// chrome://tracing or Perfetto). Timestamps are virtual microseconds.
  void write_timeline(std::ostream& out) const;

  /// Stage a knob change. It is applied atomically at the start of the
  /// NEXT negotiation cycle, never mid-cycle — a fused batch is always
  /// built and executed under one consistent knob set. Collective
  /// discipline: every rank must stage the same values at the same point
  /// in its submit/synchronize stream (the Autotuner guarantees this by
  /// broadcasting rank 0's decision before any rank calls set_knobs).
  void set_knobs(const Knobs& knobs) { pending_knobs_ = knobs; }

  /// True while a set_knobs value is staged but no cycle has run yet.
  [[nodiscard]] bool knob_change_pending() const noexcept { return pending_knobs_.has_value(); }

  [[nodiscard]] const RuntimeStats& stats() const noexcept { return stats_; }
  /// The per-rank compression engine (residual state lives here). Elastic
  /// recovery resets it via HorovodHook::on_world_change; tests inspect it.
  [[nodiscard]] GradientCompressor& compressor() noexcept { return compressor_; }
  [[nodiscard]] const GradientCompressor& compressor() const noexcept { return compressor_; }
  /// The knobs currently in force (staged changes appear only after the
  /// next cycle applies them).
  [[nodiscard]] const Knobs& knobs() const noexcept { return knobs_; }
  [[nodiscard]] mpi::Communicator& comm() noexcept { return comm_; }
  void reset_stats() { stats_ = RuntimeStats{}; }

 private:
  struct Pending {
    TensorRequest request;
    bool announced = false;  ///< already reported to the coordinator
  };

  /// One negotiation + execution round. Returns true while any rank has
  /// work left (coordinator-decided, broadcast to all).
  bool cycle();

  /// Execute one fused batch of tensor names (same list on all ranks).
  void execute_batch(const std::vector<std::string>& names);

  std::vector<std::string> collect_ready(double cycle_start);
  void note_cached(const std::string& name);

  mpi::Communicator& comm_;
  Knobs knobs_;
  std::optional<Knobs> pending_knobs_;  ///< staged by set_knobs, applied by cycle()
  gpu::ComputeModel copy_model_;
  RuntimeStats stats_;

  std::unordered_map<std::string, Pending> pending_;
  std::deque<std::string> submit_order_;

  // Coordinator state (rank 0 only): per-tensor readiness counts and the
  // arrival-ordered response queue.
  struct ReadyState {
    int count = 0;
    std::uint64_t first_seen_cycle = 0;
    bool stall_warned = false;
  };
  std::unordered_map<std::string, ReadyState> ready_counts_;
  std::vector<std::string> response_order_;

  // Response cache: name -> slot id, mirrored on every rank because slot
  // assignment happens in broadcast response order.
  std::unordered_map<std::string, std::uint32_t> cache_ids_;
  std::vector<std::string> cache_names_;

  double last_cycle_start_ = -1e9;
  gpu::DeviceBuffer fusion_buffer_;
  GradientCompressor compressor_;
  std::vector<std::byte> gathered_;  ///< allgather landing buffer (int8/top-k)

  // Timeline trace (virtual-time events).
  struct TimelineEvent {
    double start_s;
    double end_s;
    std::string name;
    const char* phase;  // "negotiation" | "allreduce"
  };
  bool timeline_enabled_ = false;
  std::vector<TimelineEvent> timeline_;
};

}  // namespace dlscale::hvd
