// Online knob autotuning: the paper's manual sweep, run by the runtime.
//
// The paper reaches 92% efficiency at 132 GPUs by hand-tuning
// HOROVOD_FUSION_THRESHOLD, HOROVOD_CYCLE_TIME and hierarchical
// allreduce offline. Horovod later shipped an online autotuner for the
// same knobs; this module reproduces that idea over the reimplemented
// runtime:
//
//  * training steps are partitioned into fixed-size measurement windows;
//  * each window is scored by virtual step time from the communicator
//    clock (or, in functional timing-off worlds, a deterministic cost
//    surrogate over the RuntimeStats deltas);
//  * a TuningPolicy explores the (fusion_threshold x cycle_time x
//    hierarchical) space — coordinate descent by default;
//  * rank 0 owns scoring and the policy; its decision is broadcast, so
//    every rank stages the same knobs at the same step boundary and the
//    runtime flips them atomically at the next cycle;
//  * on convergence the tuner freezes on the best knobs seen.
//
// Knob changes are semantics-preserving: fusion/cycle/hierarchical only
// reshape WHEN and HOW gradients are averaged, never what is summed (see
// DESIGN.md section 7 for the bitwise argument), so tuning can run
// against live training without perturbing it.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dlscale/hvd/horovod.hpp"

namespace dlscale::hvd {

/// Candidate values per tunable coordinate. By default only knobs that
/// are observation-only (they never change the floating-point result
/// under a fixed collective algorithm) are tunable; the forced algorithm
/// stays whatever the base Knobs say. `compressions` is the opt-in
/// exception: populating it lets the policy explore the gradient wire
/// codec (none/fp16/int8/topk — DESIGN.md §12), which IS
/// numerics-changing, so it stays empty (inert) unless the caller
/// explicitly accepts lossy averaging. A compression candidate fully
/// determines the codec: it overrides both Knobs::compression and the
/// legacy fp16_allreduce flag.
struct TuningSpace {
  std::vector<std::size_t> fusion_thresholds{1 << 20, 8 << 20, 64 << 20};
  std::vector<double> cycle_times_s{1e-3, 3.5e-3, 10e-3, 25e-3};
  std::vector<bool> hierarchical{false, true};
  std::vector<CompressionAlgo> compressions{};  ///< empty = codec not tuned

  [[nodiscard]] std::size_t combinations() const noexcept {
    return fusion_thresholds.size() * cycle_times_s.size() * hierarchical.size() *
           std::max<std::size_t>(1, compressions.size());
  }
};

/// Autotuner configuration (TrainConfig::autotune / ScalingConfig::autotune).
struct AutotuneOptions {
  bool enabled = false;
  int window_steps = 4;     ///< optimisation steps per measurement window
  int warmup_windows = 1;   ///< unscored windows under the initial knobs (>= 1)
  /// A candidate must beat the incumbent by this relative margin to
  /// replace it; a full coordinate pass with no replacement converges.
  double min_relative_gain = 0.02;
  int max_windows = 64;     ///< hard cap: freeze on best-so-far regardless
  TuningSpace space;
};

/// One scored measurement window (rank 0's view).
struct WindowMeasurement {
  Knobs knobs;              ///< knobs the window ran under
  double score = 0.0;       ///< virtual seconds per step; lower is better
  double window_time_s = 0.0;
  int steps = 0;
  RuntimeStats stats;       ///< runtime-counter delta over the window
};

/// Search strategy over the tuning space. Lives on rank 0 only; the
/// protocol is strictly alternating: each propose() is answered by one
/// observe() of a window measured under the proposed knobs, until
/// propose() returns nullopt (converged — freeze on best()).
class TuningPolicy {
 public:
  virtual ~TuningPolicy() = default;

  /// Next candidate to measure, or nullopt when the search is done.
  virtual std::optional<Knobs> propose() = 0;

  /// Score for the most recent proposal.
  virtual void observe(const WindowMeasurement& measurement) = 0;

  /// Best knobs seen so far (the initial knobs until something beats them).
  [[nodiscard]] virtual Knobs best() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Deterministic coordinate descent: measure the baseline, then sweep one
/// coordinate at a time (fusion threshold, cycle time, hierarchical,
/// compression codec when TuningSpace::compressions is non-empty),
/// keeping a candidate only if it beats the incumbent by
/// min_relative_gain. Passes repeat while any coordinate improved, up to
/// max_passes; a pass with no improvement converges.
class CoordinateDescentPolicy final : public TuningPolicy {
 public:
  CoordinateDescentPolicy(Knobs base, TuningSpace space, double min_relative_gain = 0.02,
                          int max_passes = 3);

  std::optional<Knobs> propose() override;
  void observe(const WindowMeasurement& measurement) override;
  [[nodiscard]] Knobs best() const override { return best_; }
  [[nodiscard]] std::string name() const override { return "coordinate-descent"; }

  [[nodiscard]] double best_score() const noexcept { return best_score_; }

 private:
  [[nodiscard]] std::size_t axis_size(int axis) const;
  [[nodiscard]] Knobs with_candidate(int axis, std::size_t index) const;
  [[nodiscard]] bool matches_best(int axis, std::size_t index) const;

  TuningSpace space_;
  Knobs best_;
  double best_score_ = 0.0;
  double min_gain_;
  int max_passes_;
  bool baseline_measured_ = false;
  bool done_ = false;
  int pass_ = 0;
  int axis_ = 0;
  std::size_t candidate_ = 0;
  bool pass_improved_ = false;
};

/// Exhaustive sweep in deterministic grid order — the online equivalent
/// of bench_tuning_sweep. Mostly a reference policy: it proves the
/// TuningPolicy seam is real and gives tests a ground-truth optimum.
class GridSearchPolicy final : public TuningPolicy {
 public:
  GridSearchPolicy(Knobs base, TuningSpace space);

  std::optional<Knobs> propose() override;
  void observe(const WindowMeasurement& measurement) override;
  [[nodiscard]] Knobs best() const override { return best_; }
  [[nodiscard]] std::string name() const override { return "grid-search"; }

 private:
  TuningSpace space_;
  Knobs base_;
  Knobs best_;
  double best_score_ = 0.0;
  bool any_observed_ = false;
  std::size_t next_ = 0;
};

/// The online tuning loop. Construct one per rank over the rank's
/// runtime (same options everywhere) and call step_end() after every
/// optimisation step — it is collective at window boundaries, where
/// rank 0 scores the window, consults the policy, and broadcasts the
/// decision; every rank then stages identical knobs for the next cycle.
class Autotuner {
 public:
  /// `policy` is consulted on rank 0 only (pass nullptr for the default
  /// CoordinateDescentPolicy over options.space).
  Autotuner(HorovodRuntime& runtime, AutotuneOptions options,
            std::unique_ptr<TuningPolicy> policy = nullptr);

  Autotuner(const Autotuner&) = delete;
  Autotuner& operator=(const Autotuner&) = delete;

  /// Count one finished optimisation step; closes the window (collective:
  /// broadcast from rank 0) every options.window_steps calls. No-op once
  /// frozen, so it can stay in the training loop forever.
  void step_end();

  /// Stop tuning now and switch every rank to the policy's best knobs.
  /// Collective unless already frozen.
  void freeze();

  /// Point the tuner at a rebuilt runtime (elastic recovery constructs a
  /// fresh HorovodRuntime over the shrunken communicator). The old
  /// runtime may be destroyed after this returns. Follow with
  /// on_world_change() to restart measurement.
  void rebind(HorovodRuntime& runtime) { runtime_ = &runtime; }

  /// Discard the partially-measured window so pre- and post-failure
  /// samples are never mixed into one score: step times from a 4-rank
  /// world would poison the first 3-rank window. Completed history is
  /// kept; the in-flight window restarts against the current runtime.
  ///
  /// Collective over the rebuilt communicator: rank 0 re-broadcasts its
  /// {frozen, knobs} state, because a failure can interrupt a
  /// window-finishing broadcast with only some ranks having applied the
  /// decision. If the policy owner (old rank 0) died, the new rank 0
  /// restarts the search from the incumbent knobs.
  void on_world_change();

  [[nodiscard]] bool frozen() const noexcept { return frozen_; }
  /// The knobs all ranks currently run under (identical everywhere).
  [[nodiscard]] const Knobs& active() const noexcept { return active_; }
  [[nodiscard]] int windows_completed() const noexcept { return windows_completed_; }
  /// Scored windows in measurement order. Populated on rank 0 only.
  [[nodiscard]] const std::vector<WindowMeasurement>& history() const noexcept {
    return history_;
  }

  /// The timing-off scoring fallback: a fixed, deterministic cost model
  /// over the window's counter deltas (collective launches pay a launch
  /// alpha, wire/control bytes a bandwidth beta, negotiation rounds a
  /// coordinator round-trip, cache-served rounds half of one). Exposed
  /// for tests and for documentation honesty — scores in functional
  /// worlds rank knob settings by this model, not by measured time.
  [[nodiscard]] static double surrogate_step_cost(const RuntimeStats& delta, int steps);

 private:
  void begin_window();
  void finish_window(bool force_freeze);
  [[nodiscard]] double score_window(double window_s, const RuntimeStats& delta,
                                    int steps) const;

  HorovodRuntime* runtime_;  ///< pointer, not reference: retargeted by rebind()
  AutotuneOptions options_;
  std::unique_ptr<TuningPolicy> policy_;
  Knobs active_;
  RuntimeStats window_start_stats_;
  double window_start_time_ = 0.0;
  int steps_in_window_ = 0;
  int windows_completed_ = 0;
  bool frozen_ = false;
  std::vector<WindowMeasurement> history_;
};

}  // namespace dlscale::hvd
