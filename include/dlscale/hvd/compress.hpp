// Gradient compression codecs for the allreduce (DESIGN.md §12).
//
// The paper's scaling story is communication-bound, and the fp16 fusion
// path (HOROVOD_FP16_ALLREDUCE) already halves wire bytes. This module
// goes further with the two classic lossy codecs from the sync-SGD
// compression literature (Das et al., FireCaffe — see PAPERS.md):
//
//  * int8 — per-fused-chunk affine quantization (scale / zero-point over
//    the chunk's min..max), 4x smaller than fp32 on the wire;
//  * top-k — per-tensor magnitude selection, only k = ceil(ratio * n)
//    (index, value) pairs travel, ~1/ratio x smaller;
//
// both with ERROR FEEDBACK: each rank keeps a per-parameter residual,
// adds it to the gradient before compressing, and stores the compression
// error back. The quantization/sparsification error is therefore not
// lost but re-applied on later steps, which is what preserves
// convergence (EF-SGD). Residuals are per-rank local state — they never
// enter checkpoints (checkpoints stay bitwise identical across ranks)
// and are rebuilt empty on elastic recovery / restore.
//
// Unlike fp16 (whose half-sum reducer still rides a real allreduce),
// int8 and top-k are NOT reducible on the wire: summing two affine-coded
// chunks needs both scales, summing two sparse sets changes k. The
// exchange is therefore allgather-style — every rank broadcasts its
// compressed blob, and every rank dequantizes and averages all world
// contributions locally (deterministically, in rank order, so replicas
// stay bitwise identical to each other).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace dlscale::hvd {

/// Wire codec for gradient payloads. kNone/kFp16 reduce on the wire (sum
/// of halves is a half); kInt8/kTopK exchange per-rank blobs via
/// allgather and average after local dequantization.
enum class CompressionAlgo : std::uint8_t {
  kNone = 0,  ///< fp32 allreduce (baseline)
  kFp16 = 1,  ///< IEEE half pack + half-sum allreduce (2x)
  kInt8 = 2,  ///< affine u8 quantization + allgather exchange (~4x)
  kTopK = 3,  ///< magnitude top-k (index, value) pairs (~1/ratio x)
};

[[nodiscard]] const char* to_string(CompressionAlgo algo) noexcept;

/// Case-insensitive parse of "none|fp16|int8|topk" (also "top-k"/"top_k").
/// nullopt on anything else — callers own the error policy.
[[nodiscard]] std::optional<CompressionAlgo> parse_compression(std::string_view text);

/// Per-rank compression engine: owns the wire buffer, the accumulate
/// workspace, and the error-feedback residual per tensor name. One lives
/// inside each HorovodRuntime; it is NOT thread-safe (the runtime drives
/// it from the rank thread only).
class GradientCompressor {
 public:
  /// One tensor of a fused batch. `name` keys the residual buffer and
  /// must outlive the encode/decode pair (the runtime's batch name list
  /// does); `data` is the in-place gradient payload.
  struct Chunk {
    const std::string* name = nullptr;
    std::span<float> data;
  };

  /// Compress `chunks` into the internal wire buffer and return it.
  /// With error_feedback, each chunk is accumulated with its residual
  /// first and the residual is updated to the compression error
  /// (acc - dequant(encoded)) before returning; the caller then exchanges
  /// the identical-layout blobs via allgather. Deterministic: same input
  /// -> same bytes, at every SIMD dispatch level (quantize_u8 contract).
  [[nodiscard]] std::span<const std::byte> encode(CompressionAlgo algo,
                                                  std::span<const Chunk> chunks,
                                                  float topk_ratio, bool error_feedback);

  /// Decode `world` concatenated blobs (allgather order, each the size
  /// encode returned) and overwrite every chunk's data with the average
  /// of all ranks' dequantized contributions. Accumulation runs in rank
  /// order 0..world-1, so every rank computes bitwise-identical averages.
  void decode_average(CompressionAlgo algo, std::span<const Chunk> chunks,
                      std::span<const std::byte> gathered, int world, float topk_ratio);

  /// Drop all residual state. Called on elastic world rebuilds and
  /// checkpoint restore: residuals are scaled to the OLD world's
  /// averaging and the old parameter trajectory, so carrying them across
  /// would inject stale error into the first post-recovery steps.
  void reset_residuals() noexcept { residuals_.clear(); }

  /// Residual buffers currently held (one per tensor seen with error
  /// feedback on). Introspection for tests and stats.
  [[nodiscard]] std::size_t residual_tensor_count() const noexcept {
    return residuals_.size();
  }
  [[nodiscard]] const std::vector<float>* residual(const std::string& name) const {
    const auto it = residuals_.find(name);
    return it == residuals_.end() ? nullptr : &it->second;
  }

  /// k for a tensor of n elements at `ratio`: ceil(ratio * n), clamped
  /// to [1, n]. All ranks compute the same k, which keeps the allgather
  /// blobs fixed-size.
  [[nodiscard]] static std::size_t topk_k(std::size_t n, float ratio);

  /// Wire size of one rank's blob for tensors of `counts` elements —
  /// used by the timing-only path to price compressed exchanges without
  /// touching payloads. int8: 8-byte {scale, offset} header + n bytes per
  /// tensor. top-k: 4-byte count + k * 8-byte (index, value) per tensor.
  [[nodiscard]] static std::size_t int8_wire_bytes(std::span<const std::size_t> counts);
  [[nodiscard]] static std::size_t topk_wire_bytes(std::span<const std::size_t> counts,
                                                   float ratio);

 private:
  [[nodiscard]] std::vector<float>& residual_for(const std::string& name, std::size_t n);

  void encode_int8(std::span<const Chunk> chunks, bool error_feedback);
  void encode_topk(std::span<const Chunk> chunks, float topk_ratio, bool error_feedback);

  std::unordered_map<std::string, std::vector<float>> residuals_;
  std::vector<float> acc_;                   ///< grad + residual workspace
  std::vector<std::byte> wire_;              ///< encode output
  std::vector<std::uint32_t> index_scratch_; ///< top-k selection
  std::vector<float> mag_scratch_;           ///< |acc| keys for selection
};

}  // namespace dlscale::hvd
