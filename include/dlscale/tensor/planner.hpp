// Liveness-based memory planner for arena-backed Tensor storage.
//
// A training step (and a serve batch) makes the same allocation sequence
// every iteration: the forward+backward graph is static. Tracing one step
// through util::Arena yields {size, first-use, last-use} per allocation;
// this planner packs those intervals into a single arena so allocations
// whose lifetimes never overlap share the same bytes (DESIGN.md §10).
//
// Packing is greedy interval packing: place allocations in decreasing
// size order (ties broken by allocation order), each at the lowest
// 64-byte-aligned offset that does not collide with an already-placed
// allocation whose live interval overlaps. O(n²) in the number of
// allocations — a few hundred per DeepLab step — and within a few
// percent of optimal on these traces.
#pragma once

#include <vector>

#include "dlscale/util/arena.hpp"

namespace dlscale::tensor {

class MemoryPlanner {
 public:
  /// Packs a trace (from Arena::take_trace) into a MemoryPlan. Events
  /// with release_tick == 0 are treated as live to the end of the trace
  /// (layer caches read during backward fall out naturally).
  [[nodiscard]] static util::MemoryPlan pack(
      const std::vector<util::ArenaTraceEvent>& trace);
};

}  // namespace dlscale::tensor
