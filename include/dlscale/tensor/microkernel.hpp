// SIMD micro-kernels under the blocked GEMM wrappers (DESIGN.md §6,
// "SIMD dispatch").
//
// Every entry point has two implementations selected at runtime via
// util::simd_level(): a portable scalar twin (the seed kernels, verbatim)
// and an AVX2 path that is **bitwise identical** to it. Identity holds
// because the AVX2 kernels
//   - vectorize across output *columns*, so each c[i][j] accumulator
//     still sees its product terms in the exact serial k-order, and
//   - use separate mul/add intrinsics (never FMA contraction), so each
//     term is rounded exactly like the scalar expression.
// The GEMMs stream B through kNR-wide panels packed into reusable
// per-thread scratch, register-blocked over kMR rows of A.
//
// Callers (src/tensor/ops.cpp, src/nn/optimizer.cpp) keep owning the
// thread-pool partitioning; these kernels are the serial per-chunk inner
// loops, so the thread-count-determinism invariant is untouched.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dlscale::tensor::micro {

// ---- GEMM family (k-blocked; semantics match the seed kernels) ------------

/// c(rows x n) += a(rows x k) * b(k x n); zeros in A are skipped.
void gemm_nn(const float* a, const float* b, float* c, int rows, int k, int n);

/// Rows [i0, i1) of A^T * B for a(k x m), b(k x n), written to
/// c((i1-i0) x n); zeros in A are skipped.
void gemm_tn(const float* a, const float* b, float* c, int i0, int i1, int m,
             int k, int n);

/// c(rows x n) += a(rows x k) * b(n x k)^T — dot-product form, each
/// c[i][j] accumulated locally over k then added once.
void gemm_nt_acc(const float* a, const float* b, float* c, int rows, int k,
                 int n);

// ---- int8 quantized GEMM (DESIGN.md §9, "Reduced-precision serving") ------
//
// u8 activations (asymmetric: scale + zero-point) times s8 weights
// (symmetric, per-output-channel scales), accumulated in i32. The kernel
// models `_mm256_maddubs_epi16`: products are taken over *pairs* of
// adjacent k positions and each pair sum saturates to i16 before joining
// the i32 accumulator. Both dispatch paths implement that exact integer
// recurrence —
//
//   c[i][j] = sum over quads q of
//             sat16(a[i][4q]*b[4q][j]   + a[i][4q+1]*b[4q+1][j]) +
//             sat16(a[i][4q+2]*b[4q+2][j] + a[i][4q+3]*b[4q+3][j])
//
// — so scalar/AVX2 bitwise identity is automatic (integer math has no
// rounding freedom). Model conversion sidesteps the saturation entirely
// by quantizing weights to [-63, 63]: max |pair| = 2*255*63 = 32130 <
// 32767, so for converted models the sat16 is the identity and the GEMM
// is an exact integer dot product. The kernel-level semantics still
// define (and tests still exercise) the saturating case for direct
// callers.
//
// Accumulator overflow guard: each quad contributes at most 2*32767 in
// magnitude, so k must satisfy ceil(k/4) * 65534 < 2^31 — enforced as
// k <= kGemmS8U8MaxK. Serve-time im2col depths are orders of magnitude
// below this.

/// Largest k gemm_s8u8 accepts without risking i32 accumulator overflow.
inline constexpr int kGemmS8U8MaxK = 1 << 16;

/// Bytes required by gemm_s8u8_pack_b for a (k x n) weight matrix.
std::size_t gemm_s8u8_packed_size(int k, int n);

/// Pack row-major b(k x n, s8) into the panel layout gemm_s8u8 consumes:
/// ceil(n/8) panels of 8 columns, each panel ceil(k/4) quads of 4 k-steps,
/// 32 bytes per quad laid out column-major within the quad
/// (byte[j*4 + t] = b[4q + t][8p + j]). Out-of-range k/n positions are
/// zero-padded, which keeps the pad inert under the pair-saturation
/// semantics above.
void gemm_s8u8_pack_b(const std::int8_t* b, int k, int n, std::int8_t* packed);

/// c(rows x n, i32) = a * b using the packed B from gemm_s8u8_pack_b.
/// A is row-major u8 with row stride `lda`, which must be at least
/// round_up(k, 4); bytes in [k, lda) may hold anything (B's zero pad
/// nullifies them). Plain store, not accumulate. Requires k <=
/// kGemmS8U8MaxK.
void gemm_s8u8(const std::uint8_t* a, int lda, const std::int8_t* packed_b,
               std::int32_t* c, int rows, int k, int n);

/// Asymmetric u8 quantization sweep:
///   dst[i] = clamp(rne(src[i] * inv_scale) + zero_point, 0, 255)
/// with CVTPS2DQ semantics for the float->i32 step (round to nearest
/// even; NaN and out-of-range round results become INT32_MIN, which the
/// clamp maps to 0). The scalar twin replicates those semantics exactly,
/// so both paths are bitwise identical on every input.
void quantize_u8(const float* src, std::uint8_t* dst, std::int64_t n,
                 float inv_scale, std::int32_t zero_point);

/// Byte-matrix transpose: dst[c * dst_stride + r] = src[r * cols + c] for
/// r < rows, c < cols. Requires dst_stride >= rows; dst bytes in
/// [rows, dst_stride) of each row are left untouched. This is how the
/// quantized conv forward turns the k-major im2col image into the
/// pixel-major u8 rows gemm_s8u8 consumes — a flat scalar loop touches
/// one cache line per k step per column and dominates the int8 GEMM
/// itself, so the AVX2 path moves 16x16 blocks through SSE byte
/// unpacks. Pure data movement: bitwise identity across paths is
/// trivial.
void transpose_u8(const std::uint8_t* src, int rows, int cols,
                  std::uint8_t* dst, int dst_stride);

// ---- elementwise sweeps (lane-parallel, trivially order-preserving) -------

/// a[i] += b[i]
void add_inplace(float* a, const float* b, std::int64_t n);

/// p[i] += v
void add_scalar_inplace(float* p, float v, std::int64_t n);

/// p[i] *= s
void scale_inplace(float* p, float s, std::int64_t n);

/// p[i] = max(0, p[i]) with std::max(0.0f, x) semantics (NaN and -0.0
/// both map to +0.0, matching the scalar seed kernel).
void relu_inplace(float* p, std::int64_t n);

/// g[i] = 0 where x[i] <= 0 (relu backward mask; NaN x keeps g).
void relu_zero_where_nonpositive(const float* x, float* g, std::int64_t n);

/// SGD-with-momentum update, matching nn::SgdMomentum::step's inner loop:
///   g        = clip_scale * grad[i] + weight_decay * value[i]
///   velocity = momentum * velocity[i] + g
///   value   -= lr * velocity
void sgd_momentum_update(float* value, float* velocity, const float* grad,
                         float clip_scale, float weight_decay, float momentum,
                         float lr, std::int64_t n);

/// Name of the path the dispatcher currently selects ("avx2"/"scalar") —
/// for bench tables and run_all.sh logging.
const char* active_path();

}  // namespace dlscale::tensor::micro
