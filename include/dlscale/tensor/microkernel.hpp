// SIMD micro-kernels under the blocked GEMM wrappers (DESIGN.md §6,
// "SIMD dispatch").
//
// Every entry point has two implementations selected at runtime via
// util::simd_level(): a portable scalar twin (the seed kernels, verbatim)
// and an AVX2 path that is **bitwise identical** to it. Identity holds
// because the AVX2 kernels
//   - vectorize across output *columns*, so each c[i][j] accumulator
//     still sees its product terms in the exact serial k-order, and
//   - use separate mul/add intrinsics (never FMA contraction), so each
//     term is rounded exactly like the scalar expression.
// The GEMMs stream B through kNR-wide panels packed into reusable
// per-thread scratch, register-blocked over kMR rows of A.
//
// Callers (src/tensor/ops.cpp, src/nn/optimizer.cpp) keep owning the
// thread-pool partitioning; these kernels are the serial per-chunk inner
// loops, so the thread-count-determinism invariant is untouched.
#pragma once

#include <cstdint>

namespace dlscale::tensor::micro {

// ---- GEMM family (k-blocked; semantics match the seed kernels) ------------

/// c(rows x n) += a(rows x k) * b(k x n); zeros in A are skipped.
void gemm_nn(const float* a, const float* b, float* c, int rows, int k, int n);

/// Rows [i0, i1) of A^T * B for a(k x m), b(k x n), written to
/// c((i1-i0) x n); zeros in A are skipped.
void gemm_tn(const float* a, const float* b, float* c, int i0, int i1, int m,
             int k, int n);

/// c(rows x n) += a(rows x k) * b(n x k)^T — dot-product form, each
/// c[i][j] accumulated locally over k then added once.
void gemm_nt_acc(const float* a, const float* b, float* c, int rows, int k,
                 int n);

// ---- elementwise sweeps (lane-parallel, trivially order-preserving) -------

/// a[i] += b[i]
void add_inplace(float* a, const float* b, std::int64_t n);

/// p[i] += v
void add_scalar_inplace(float* p, float v, std::int64_t n);

/// p[i] *= s
void scale_inplace(float* p, float s, std::int64_t n);

/// p[i] = max(0, p[i]) with std::max(0.0f, x) semantics (NaN and -0.0
/// both map to +0.0, matching the scalar seed kernel).
void relu_inplace(float* p, std::int64_t n);

/// g[i] = 0 where x[i] <= 0 (relu backward mask; NaN x keeps g).
void relu_zero_where_nonpositive(const float* x, float* g, std::int64_t n);

/// SGD-with-momentum update, matching nn::SgdMomentum::step's inner loop:
///   g        = clip_scale * grad[i] + weight_decay * value[i]
///   velocity = momentum * velocity[i] + g
///   value   -= lr * velocity
void sgd_momentum_update(float* value, float* velocity, const float* grad,
                         float clip_scale, float weight_decay, float momentum,
                         float lr, std::int64_t n);

/// Name of the path the dispatcher currently selects ("avx2"/"scalar") —
/// for bench tables and run_all.sh logging.
const char* active_path();

}  // namespace dlscale::tensor::micro
