// Post-training int8 quantization on top of the micro-kernel GEMM
// (DESIGN.md §9, "Reduced-precision serving").
//
// Scheme: asymmetric u8 activations (fp = scale * (q - zero_point), with
// the zero point inside [0, 255] so im2col's zero padding quantizes
// exactly), symmetric s8 weights with one scale per output channel
// (fp = scale[oc] * q, no zero point — symmetric weights keep the GEMM's
// cross term linear in a single per-channel correction). Weights quantize
// to [-63, 63]: the micro-kernel's pair-saturation ceiling is
// 2*255*63 = 32130 < 32767, so converted models can never saturate and
// the integer GEMM is exact. The dequantization identity is
//
//   out[i][oc] = (acc[i][oc] - act_zp * col_sum[oc])
//                  * (act_scale * w_scale[oc]) + bias[oc]
//
// where col_sum[oc] = sum_k q_w[k][oc] is precomputed at conversion time.
//
// Everything here is shared C++ around the dispatched micro-kernels: the
// only SIMD-level-dependent steps are micro::quantize_u8 and
// micro::gemm_s8u8, both bitwise identical across paths, so quantized
// outputs are too — and batch-composition invariance (the serving
// batcher's contract) holds for free because the integer GEMM treats
// every output column independently and exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dlscale/tensor/ops.hpp"
#include "dlscale/tensor/tensor.hpp"

namespace dlscale::tensor::quant {

/// Closed value interval observed on an activation tensor.
struct Range {
  float lo = 0.0f;
  float hi = 0.0f;
};

/// Asymmetric u8 activation parameters: fp = scale * (q - zero_point).
struct QuantParams {
  float scale = 1.0f;
  std::int32_t zero_point = 0;  // in [0, 255]
};

/// Parameters covering `r` (extended to include 0 so the padding value is
/// exactly representable). Degenerate ranges get scale 1.
QuantParams choose_qparams_u8(Range r);

// ---- calibration observers ------------------------------------------------
//
// Fed every calibration-batch activation tensor for one layer; afterwards
// range() yields the interval choose_qparams_u8 turns into that layer's
// static activation parameters. Non-finite values are ignored (they carry
// no usable range information). Both observers are deterministic
// functions of the observation sequence.

/// Plain running min/max — tight on well-behaved activations, but a
/// single outlier stretches the scale for everyone.
class MinMaxObserver {
 public:
  void observe(const float* values, std::size_t n);
  [[nodiscard]] bool empty() const { return !seen_; }
  [[nodiscard]] Range range() const;

 private:
  float lo_ = 0.0f;
  float hi_ = 0.0f;
  bool seen_ = false;
};

/// Clips the top/bottom (100 - percentile)% of observed values, trading a
/// little saturation on outliers for finer resolution on the bulk. Keeps
/// a capped, stride-subsampled sample buffer: when the cap is hit the
/// stride doubles and the buffer is thinned to every other element, so
/// memory stays bounded and the result is still deterministic.
class PercentileObserver {
 public:
  explicit PercentileObserver(double percentile = 99.9);
  void observe(const float* values, std::size_t n);
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] Range range() const;

 private:
  double percentile_;
  std::vector<float> samples_;
  std::size_t stride_ = 1;   // keep every stride_-th finite value
  std::size_t phase_ = 0;    // position within the current stride window
};

// ---- quantized weights ----------------------------------------------------

/// Symmetric per-output-channel s8 weights, stored pre-packed in the
/// micro::gemm_s8u8 panel layout as the B operand (k x n with n = output
/// channels), alongside the per-channel scales and column sums the
/// dequantization identity needs.
struct QuantizedMatrix {
  int k = 0;  // inner depth (e.g. in_c * kh * kw for a convolution)
  int n = 0;  // output channels
  std::vector<std::int8_t> packed;
  std::vector<float> scales;          // size n: fp = scales[oc] * q
  std::vector<std::int32_t> col_sums;  // size n: sum_k q[k][oc]

  /// Quantize row-major w(rows x k) — row r becomes output channel r.
  /// Per-row scale is absmax/63; an all-zero row gets scale 1.
  static QuantizedMatrix from_rows(const float* w, int rows, int k);

  [[nodiscard]] std::size_t bytes() const {
    return packed.size() + scales.size() * sizeof(float) +
           col_sums.size() * sizeof(std::int32_t);
  }
};

// ---- quantized forwards ---------------------------------------------------

/// out(m x n) = a(m x k, fp32) times the quantized weights (as W^T), plus
/// optional bias (size n). `act` must cover a's value range (values
/// outside clamp to the u8 rail, like any static-quantization runtime).
Tensor quantized_matmul(const Tensor& a, const QuantizedMatrix& w,
                        QuantParams act, const Tensor* bias);

/// Quantized twin of tensor::conv2d: input (N,C,H,W), weights from
/// from_rows on the (out_c x C*kh*kw) reshaped filter, optional bias
/// (out_c). Reuses the fp32 path's batched im2col and sample-grouping
/// structure; only the GEMM runs in int8.
Tensor quantized_conv2d(const Tensor& input, const QuantizedMatrix& weight,
                        const Tensor* bias, const Conv2dSpec& spec, int kh,
                        int kw, QuantParams act);

}  // namespace dlscale::tensor::quant
