// Dense float32 tensor with NCHW conventions.
//
// This is the numeric substrate for the *real trainable* mini DeepLab-v3+
// (experiment E6: accuracy parity of distributed vs single-rank
// training). Value semantics, contiguous row-major storage, explicit
// shapes. Ops live in ops.hpp as free functions with hand-written
// backward passes.
//
// Storage is dual-mode (DESIGN.md §10): owning (heap-backed
// std::vector, the default) or *borrowed* from a util::Arena when the
// constructing thread has an ArenaScope active. Borrowed tensors keep
// full value semantics — copies allocate fresh arena storage, moves
// transfer the borrow — but their bytes belong to the arena: they stay
// valid until the arena owner resets, and are never freed individually
// (the Tensor destructor only reports the release to a tracing arena so
// the memory planner learns liveness intervals).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "dlscale/util/rng.hpp"

namespace dlscale::util {
class Arena;
}  // namespace dlscale::util

namespace dlscale::tensor {

/// Up-to-4D shape, stored inline (no heap) so Tensor construction in the
/// steady state touches only arena bytes. Converts implicitly from the
/// brace lists and std::vector<int> the call sites already use.
class Shape {
 public:
  static constexpr std::size_t kMaxDims = 4;

  Shape() = default;
  Shape(std::initializer_list<int> dims) { assign(dims.begin(), dims.size()); }
  Shape(const std::vector<int>& dims) { assign(dims.data(), dims.size()); }  // NOLINT(google-explicit-constructor)

  [[nodiscard]] std::size_t size() const noexcept { return ndim_; }
  [[nodiscard]] bool empty() const noexcept { return ndim_ == 0; }
  [[nodiscard]] int operator[](std::size_t i) const noexcept { return dims_[i]; }
  [[nodiscard]] int at(std::size_t i) const;
  [[nodiscard]] const int* begin() const noexcept { return dims_.data(); }
  [[nodiscard]] const int* end() const noexcept { return dims_.data() + ndim_; }

  friend bool operator==(const Shape& a, const Shape& b) noexcept {
    if (a.ndim_ != b.ndim_) return false;
    for (std::size_t i = 0; i < a.ndim_; ++i) {
      if (a.dims_[i] != b.dims_[i]) return false;
    }
    return true;
  }

 private:
  void assign(const int* dims, std::size_t n);

  std::array<int, kMaxDims> dims_{};
  std::uint8_t ndim_ = 0;
};

/// Up-to-4D float tensor, row-major, value semantics.
class Tensor {
 public:
  Tensor() = default;

  /// Allocates a zero-filled tensor of the given shape. Borrows from the
  /// thread's current arena when an ArenaScope is active.
  explicit Tensor(const Shape& shape);

  Tensor(const Tensor& other);
  Tensor& operator=(const Tensor& other);
  Tensor(Tensor&& other) noexcept;
  Tensor& operator=(Tensor&& other) noexcept;
  ~Tensor();

  /// Shape helpers ------------------------------------------------------
  [[nodiscard]] const Shape& shape() const noexcept { return shape_; }
  [[nodiscard]] int dim(std::size_t axis) const { return shape_.at(axis); }
  [[nodiscard]] std::size_t ndim() const noexcept { return shape_.size(); }
  [[nodiscard]] std::size_t numel() const noexcept { return numel_; }
  [[nodiscard]] bool empty() const noexcept { return numel_ == 0; }
  /// True when storage is arena-backed (valid until the arena resets).
  [[nodiscard]] bool borrowed() const noexcept { return arena_ != nullptr; }
  [[nodiscard]] std::string shape_str() const;

  /// Returns a reshaped copy view (same data, new shape; element counts
  /// must match).
  [[nodiscard]] Tensor reshaped(const Shape& shape) const;

  /// Data access ---------------------------------------------------------
  [[nodiscard]] std::span<float> data() noexcept { return {ptr_, numel_}; }
  [[nodiscard]] std::span<const float> data() const noexcept { return {ptr_, numel_}; }
  [[nodiscard]] float* ptr() noexcept { return ptr_; }
  [[nodiscard]] const float* ptr() const noexcept { return ptr_; }

  /// 4D accessors (N, C, H, W); bounds unchecked in release builds.
  [[nodiscard]] float& at(int n, int c, int h, int w) {
    return ptr_[index4(n, c, h, w)];
  }
  [[nodiscard]] float at(int n, int c, int h, int w) const {
    return ptr_[index4(n, c, h, w)];
  }
  /// 2D accessor (rows, cols).
  [[nodiscard]] float& at(int r, int c) {
    return ptr_[static_cast<std::size_t>(r) * shape_[1] + c];
  }
  [[nodiscard]] float at(int r, int c) const {
    return ptr_[static_cast<std::size_t>(r) * shape_[1] + c];
  }
  [[nodiscard]] float& operator[](std::size_t i) { return ptr_[i]; }
  [[nodiscard]] float operator[](std::size_t i) const { return ptr_[i]; }

  /// Mutation ------------------------------------------------------------
  void fill(float value);
  void zero() { fill(0.0f); }
  /// In-place elementwise: this += other (same shape).
  void add_(const Tensor& other);
  /// In-place scale: this *= s.
  void scale_(float s);

  /// Reductions ----------------------------------------------------------
  [[nodiscard]] float sum() const;
  [[nodiscard]] float abs_max() const;

  /// Factories -----------------------------------------------------------
  static Tensor zeros(const Shape& shape) { return Tensor(shape); }
  static Tensor full(const Shape& shape, float value);
  /// Gaussian init, N(0, stddev^2), deterministic from rng.
  static Tensor randn(const Shape& shape, util::Rng& rng, float stddev = 1.0f);
  /// Kaiming/He initialisation for a conv weight (O, C, kh, kw).
  static Tensor he_init(const Shape& shape, util::Rng& rng);

 private:
  [[nodiscard]] std::size_t index4(int n, int c, int h, int w) const noexcept {
    return ((static_cast<std::size_t>(n) * shape_[1] + c) * shape_[2] + h) * shape_[3] + w;
  }

  void init_storage(bool zero_fill);
  void release_storage() noexcept;

  Shape shape_;
  std::size_t numel_ = 0;
  float* ptr_ = nullptr;
  std::vector<float> owned_;       ///< backing store in owning mode
  util::Arena* arena_ = nullptr;   ///< non-null when borrowed
};

/// True when shapes match exactly.
bool same_shape(const Tensor& a, const Tensor& b) noexcept;

}  // namespace dlscale::tensor
