// Dense float32 tensor with NCHW conventions.
//
// This is the numeric substrate for the *real trainable* mini DeepLab-v3+
// (experiment E6: accuracy parity of distributed vs single-rank
// training). Value semantics, contiguous row-major storage, explicit
// shapes. Ops live in ops.hpp as free functions with hand-written
// backward passes.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "dlscale/util/rng.hpp"

namespace dlscale::tensor {

/// Up-to-4D float tensor, row-major, value semantics.
class Tensor {
 public:
  Tensor() = default;

  /// Allocates a zero-filled tensor of the given shape.
  explicit Tensor(std::vector<int> shape);

  /// Shape helpers ------------------------------------------------------
  [[nodiscard]] const std::vector<int>& shape() const noexcept { return shape_; }
  [[nodiscard]] int dim(std::size_t axis) const { return shape_.at(axis); }
  [[nodiscard]] std::size_t ndim() const noexcept { return shape_.size(); }
  [[nodiscard]] std::size_t numel() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }
  [[nodiscard]] std::string shape_str() const;

  /// Returns a reshaped copy view (same data, new shape; element counts
  /// must match).
  [[nodiscard]] Tensor reshaped(std::vector<int> shape) const;

  /// Data access ---------------------------------------------------------
  [[nodiscard]] std::span<float> data() noexcept { return data_; }
  [[nodiscard]] std::span<const float> data() const noexcept { return data_; }
  [[nodiscard]] float* ptr() noexcept { return data_.data(); }
  [[nodiscard]] const float* ptr() const noexcept { return data_.data(); }

  /// 4D accessors (N, C, H, W); bounds unchecked in release builds.
  [[nodiscard]] float& at(int n, int c, int h, int w) {
    return data_[index4(n, c, h, w)];
  }
  [[nodiscard]] float at(int n, int c, int h, int w) const {
    return data_[index4(n, c, h, w)];
  }
  /// 2D accessor (rows, cols).
  [[nodiscard]] float& at(int r, int c) { return data_[static_cast<std::size_t>(r) * shape_[1] + c]; }
  [[nodiscard]] float at(int r, int c) const {
    return data_[static_cast<std::size_t>(r) * shape_[1] + c];
  }
  [[nodiscard]] float& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] float operator[](std::size_t i) const { return data_[i]; }

  /// Mutation ------------------------------------------------------------
  void fill(float value);
  void zero() { fill(0.0f); }
  /// In-place elementwise: this += other (same shape).
  void add_(const Tensor& other);
  /// In-place scale: this *= s.
  void scale_(float s);

  /// Reductions ----------------------------------------------------------
  [[nodiscard]] float sum() const;
  [[nodiscard]] float abs_max() const;

  /// Factories -----------------------------------------------------------
  static Tensor zeros(std::vector<int> shape) { return Tensor(std::move(shape)); }
  static Tensor full(std::vector<int> shape, float value);
  /// Gaussian init, N(0, stddev^2), deterministic from rng.
  static Tensor randn(std::vector<int> shape, util::Rng& rng, float stddev = 1.0f);
  /// Kaiming/He initialisation for a conv weight (O, C, kh, kw).
  static Tensor he_init(std::vector<int> shape, util::Rng& rng);

 private:
  [[nodiscard]] std::size_t index4(int n, int c, int h, int w) const noexcept {
    return ((static_cast<std::size_t>(n) * shape_[1] + c) * shape_[2] + h) * shape_[3] + w;
  }

  std::vector<int> shape_;
  std::vector<float> data_;
};

/// True when shapes match exactly.
bool same_shape(const Tensor& a, const Tensor& b) noexcept;

}  // namespace dlscale::tensor
