// Neural-network kernels with hand-written backward passes.
//
// Everything a miniature DeepLab-v3+ needs: dilated (atrous) convolution
// via im2col/col2im, batch normalisation, ReLU, max/avg pooling, global
// average pooling, bilinear resize (ASPP image pooling + decoder
// upsampling), channel concat, and per-pixel softmax cross-entropy with
// an ignore label. Layout is NCHW throughout; conv weights are
// (O, C, kh, kw).
//
// Threading: hot kernels parallelise over the shared util::ThreadPool
// (DLSCALE_NUM_THREADS, see util/thread_pool.hpp). Partitioning preserves
// each output element's serial accumulation order, so results are bitwise
// identical at any thread count — the property the E6 gradient-parity
// experiment depends on. Nested calls (a kernel invoked from inside a
// pool worker) run inline and serial.
#pragma once

#include <optional>
#include <vector>

#include "dlscale/tensor/tensor.hpp"

namespace dlscale::tensor {

/// Hyper-parameters of a 2D convolution.
struct Conv2dSpec {
  int stride = 1;
  int pad = 0;
  int dilation = 1;

  /// Output spatial size for an input extent and kernel extent.
  [[nodiscard]] int out_extent(int in, int kernel) const noexcept {
    const int effective = dilation * (kernel - 1) + 1;
    return (in + 2 * pad - effective) / stride + 1;
  }
};

// ---- dense linear algebra ----

/// C = A(MxK) * B(KxN). Shapes validated.
Tensor matmul(const Tensor& a, const Tensor& b);
/// C = A^T(KxM -> MxK? no:) -- convenience transposed products used by
/// conv backward: matmul_tn computes A^T * B for A(KxM), B(KxN) -> (MxN);
/// matmul_nt computes A * B^T for A(MxK), B(NxK) -> (MxN).
Tensor matmul_tn(const Tensor& a, const Tensor& b);
Tensor matmul_nt(const Tensor& a, const Tensor& b);

// ---- convolution ----

/// Unfold input (C,H,W window grid) into a (C*kh*kw) x (outH*outW) matrix
/// for one sample. Exposed for testing.
Tensor im2col(const Tensor& input, int sample, int kh, int kw, const Conv2dSpec& spec);
/// Raw-buffer variant writing into caller-owned storage of
/// (C*kh*kw) * (outH*outW) floats — the conv kernels use this with a
/// reusable scratch arena to avoid per-sample allocation.
void im2col(const Tensor& input, int sample, int kh, int kw, const Conv2dSpec& spec,
            float* cols);
/// Strided variant: row r of the column matrix lands at cols + r*row_stride
/// (row_stride >= outH*outW). Lets every sample of a batch write its
/// columns side by side into one shared (C*kh*kw) x (N*outH*outW) matrix so
/// the forward convolution can run a single batched GEMM over all samples.
void im2col(const Tensor& input, int sample, int kh, int kw, const Conv2dSpec& spec,
            float* cols, std::size_t row_stride);
/// Fold a (C*kh*kw) x (outH*outW) matrix back, accumulating into
/// `grad_input` at `sample`. Inverse-adjoint of im2col.
void col2im(const Tensor& cols, Tensor& grad_input, int sample, int kh, int kw,
            const Conv2dSpec& spec);
/// Raw-buffer variant of col2im (shape implied by grad_input and spec).
void col2im(const float* cols, Tensor& grad_input, int sample, int kh, int kw,
            const Conv2dSpec& spec);

/// Forward convolution: input (N,C,H,W), weight (O,C,kh,kw), optional
/// bias (O). Returns (N,O,outH,outW).
Tensor conv2d(const Tensor& input, const Tensor& weight, const Tensor* bias,
              const Conv2dSpec& spec);

/// Backward convolution. Accumulates into grad_weight/grad_bias (callers
/// zero them at step start); returns grad_input.
Tensor conv2d_backward(const Tensor& input, const Tensor& weight, const Tensor& grad_out,
                       const Conv2dSpec& spec, Tensor& grad_weight, Tensor* grad_bias);

/// Depthwise convolution: one kh x kw filter per channel. Input
/// (N,C,H,W), weight (C,1,kh,kw). The building block of the Xception
/// backbone's separable convolutions.
Tensor depthwise_conv2d(const Tensor& input, const Tensor& weight, const Conv2dSpec& spec);

/// Backward pass of depthwise_conv2d; accumulates into grad_weight.
Tensor depthwise_conv2d_backward(const Tensor& input, const Tensor& weight,
                                 const Tensor& grad_out, const Conv2dSpec& spec,
                                 Tensor& grad_weight);

// ---- activations / normalisation ----

Tensor relu(const Tensor& x);
Tensor relu_backward(const Tensor& x, const Tensor& grad_out);

/// Batch-norm training-mode forward. Saves mean/inv_std for backward and
/// updates running statistics with `momentum`.
struct BatchNormCache {
  Tensor x_hat;     // normalised input
  std::vector<float> mean;
  std::vector<float> inv_std;
};
Tensor batchnorm2d(const Tensor& x, const Tensor& gamma, const Tensor& beta, Tensor& running_mean,
                   Tensor& running_var, bool train, float momentum, float eps,
                   BatchNormCache* cache);
Tensor batchnorm2d_backward(const Tensor& grad_out, const BatchNormCache& cache,
                            const Tensor& gamma, Tensor& grad_gamma, Tensor& grad_beta);

// ---- pooling / resize ----

/// 2x2-style max pooling with stride; returns output and records argmax
/// indices in `argmax` (same numel as output) for the backward pass.
Tensor maxpool2d(const Tensor& x, int kernel, int stride, std::vector<int>& argmax);
/// Inference variant: no argmax recording, no backward possible. Output
/// is bitwise identical to the recording variant.
Tensor maxpool2d(const Tensor& x, int kernel, int stride);
Tensor maxpool2d_backward(const Tensor& x, const Tensor& grad_out, int kernel, int stride,
                          const std::vector<int>& argmax);

/// Global average pooling to (N,C,1,1).
Tensor global_avg_pool(const Tensor& x);
Tensor global_avg_pool_backward(const Tensor& x, const Tensor& grad_out);

/// Bilinear resize to (outH, outW) with align_corners=true semantics
/// (matching the DeepLab TensorFlow implementation).
Tensor bilinear_resize(const Tensor& x, int out_h, int out_w);
Tensor bilinear_resize_backward(const Tensor& x, const Tensor& grad_out);

// ---- structure ----

/// Concatenate along the channel axis.
Tensor concat_channels(const Tensor& a, const Tensor& b);
/// Split a channel-concat gradient back into the two inputs' gradients.
void split_channels(const Tensor& grad_out, int channels_a, Tensor& grad_a, Tensor& grad_b);

/// Elementwise sum (residual connections).
Tensor add(const Tensor& a, const Tensor& b);

// ---- loss ----

/// Per-pixel softmax cross-entropy. `logits` (N,K,H,W), `labels` (N*H*W)
/// of class ids; label == ignore_label contributes nothing. Returns mean
/// loss over counted pixels and writes d(loss)/d(logits) into grad.
float softmax_cross_entropy(const Tensor& logits, const std::vector<int>& labels,
                            int ignore_label, Tensor& grad);

/// Per-pixel argmax over the class axis: (N,K,H,W) -> N*H*W class ids.
std::vector<int> argmax_channels(const Tensor& logits);

/// Allocation-free variant: resizes `out` to N*H*W and fills it in place,
/// so eval loops can reuse one buffer across batches.
void argmax_channels(const Tensor& logits, std::vector<int>& out);

}  // namespace dlscale::tensor
