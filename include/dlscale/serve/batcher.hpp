// Dynamic batching: coalesce queued single-image requests into one
// multi-sample forward.
//
// Policy: take the first request as soon as it exists, then wait at most
// `max_wait` (counted from the FIRST request's admission, so a straggler
// can never stretch the window) for up to `max_batch - 1` more. Under
// load the queue is never empty and batches fill instantly with zero
// added latency; at low traffic a request waits at most max_wait before
// running alone.
//
// Correctness contract — batch invariance: stacking K images into one
// (K,C,H,W) forward produces, for every sample, bitwise the same logits
// as running that image alone. This holds because every kernel in the
// model treats samples independently and the batched-GEMM grouping in
// tensor::conv2d keeps each output column's accumulation order fixed
// regardless of how many columns ride in the GEMM (see src/tensor/ops.cpp).
// tests/serve/test_batch_invariance.cpp enforces it bit-for-bit, across
// SIMD dispatch levels. Co-batched traffic can therefore never change
// anyone's answer — only their latency.
#pragma once

#include <chrono>
#include <vector>

#include "dlscale/serve/queue.hpp"
#include "dlscale/serve/types.hpp"

namespace dlscale::serve {

/// A formed batch: the requests plus their images stacked along N.
struct Batch {
  std::vector<Request> requests;
  tensor::Tensor images;  ///< (requests.size(), C, H, W)

  [[nodiscard]] bool empty() const noexcept { return requests.empty(); }
  [[nodiscard]] int size() const noexcept { return static_cast<int>(requests.size()); }
};

class DynamicBatcher {
 public:
  DynamicBatcher(RequestQueue& queue, int max_batch, std::chrono::microseconds max_wait);

  /// Blocks for the next batch. An empty batch means the queue is closed
  /// and fully drained — the worker's exit signal.
  [[nodiscard]] Batch next_batch();

  /// Stacks (1,C,H,W) request images into one (K,C,H,W) tensor. Exposed
  /// for the invariance tests.
  static tensor::Tensor stack_images(const std::vector<Request>& requests);

 private:
  RequestQueue& queue_;
  int max_batch_;
  std::chrono::microseconds max_wait_;
};

}  // namespace dlscale::serve
