// Request/response types shared across the serving layer.
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <vector>

#include "dlscale/nn/quantized.hpp"
#include "dlscale/tensor/tensor.hpp"

namespace dlscale::serve {

using Clock = std::chrono::steady_clock;

/// What a client gets back for one submitted image.
struct Response {
  tensor::Tensor logits;     ///< (1, num_classes, S, S)
  std::vector<int> labels;   ///< per-pixel argmax class ids, S*S entries
  int batch_size = 0;        ///< size of the dynamic batch this request rode in
  int model_version = 0;     ///< registry version that produced the result
  nn::Precision precision = nn::Precision::kFp32;  ///< serving precision of that version
  double queue_us = 0.0;     ///< admission -> batch formation
  double total_us = 0.0;     ///< admission -> response ready
};

/// An admitted request travelling queue -> batcher -> worker.
struct Request {
  tensor::Tensor image;  ///< (1, in_channels, S, S)
  std::promise<Response> promise;
  Clock::time_point enqueued_at;
};

}  // namespace dlscale::serve
