// Bounded admission queue for the serving layer.
//
// Single policy decision lives here: when the queue is full, new work is
// REJECTED immediately (try_push returns kFull) rather than blocking the
// client — bounded queues with load shedding keep tail latency flat under
// overload, where an unbounded queue would grow without limit and every
// request would eventually time out. The server counts rejections and
// surfaces them in ServerStats so operators see shed load, not silence —
// split by cause (kFull = overload shedding, kClosed = shutdown drain),
// because the operator response differs: add capacity vs expected.
//
// Plain mutex + condition_variable; no lock-free tricks. Batches are a
// handful of requests and the per-batch model forward dwarfs any queue
// overhead, so clarity (and ThreadSanitizer-provable correctness) wins.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <mutex>
#include <optional>

#include "dlscale/serve/types.hpp"

namespace dlscale::serve {

/// Outcome of an admission attempt, in stats-attribution detail.
enum class PushResult {
  kAccepted,  ///< enqueued; the queue owns the request now
  kFull,      ///< shed: at capacity (rejected_full in ServerStats)
  kClosed,    ///< shed: shutting down (rejected_closed in ServerStats)
};

/// True when the request was admitted.
constexpr bool accepted(PushResult r) noexcept { return r == PushResult::kAccepted; }

class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity);

  /// Admission control: enqueue `request` unless the queue is at capacity
  /// or closed. On kFull/kClosed the request is untouched by the queue
  /// and the promise is still owned by the caller.
  [[nodiscard]] PushResult try_push(Request&& request);

  /// Blocks until a request is available, then moves it out. Returns
  /// nullopt only when the queue is closed AND drained — the worker's
  /// signal to exit.
  [[nodiscard]] std::optional<Request> pop();

  /// Non-blocking variant that waits at most until `deadline` for a
  /// request; nullopt on timeout or closed-and-drained. The batcher uses
  /// this to gather stragglers after the head-of-batch request arrives.
  [[nodiscard]] std::optional<Request> pop_until(std::chrono::steady_clock::time_point deadline);

  /// Stops admissions and wakes all waiters. Requests already queued stay
  /// poppable — shutdown drains, it does not drop.
  void close();

  [[nodiscard]] std::size_t depth() const;
  [[nodiscard]] bool closed() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable nonempty_;
  std::deque<Request> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace dlscale::serve
