// Per-worker inference runner: one arena, reset per batch.
//
// Each serving worker owns one InferenceRunner. run() resets the arena,
// opens an ArenaScope, and executes the eval forward so every
// intermediate activation Tensor borrows arena bytes instead of hitting
// the heap. After the warmup batch grows the arena to its watermark, a
// steady-state batch performs zero heap allocations inside the forward
// (proved by the alloc-hook tests; DESIGN.md §10).
//
// Outputs are borrowed: the returned logits reference arena storage and
// the labels live in a reused member buffer. Both stay valid only until
// the next run() on the same runner — callers that need to hand data
// across threads (Server::run_batch fulfilling promises) must copy out
// before the next batch starts, which they already do.
#pragma once

#include <cstddef>
#include <vector>

#include "dlscale/models/deeplab.hpp"
#include "dlscale/tensor/tensor.hpp"
#include "dlscale/util/arena.hpp"

namespace dlscale::serve {

class InferenceRunner {
 public:
  InferenceRunner() = default;

  InferenceRunner(const InferenceRunner&) = delete;
  InferenceRunner& operator=(const InferenceRunner&) = delete;

  /// One eval forward of `model` on `images` with all activations
  /// arena-backed, plus the per-pixel argmax into labels(). The returned
  /// tensor is borrowed — valid until the next run().
  const tensor::Tensor& run(models::MiniDeepLabV3Plus& model, const tensor::Tensor& images);

  /// Per-pixel class ids from the last run(), length N*H*W.
  [[nodiscard]] const std::vector<int>& labels() const noexcept { return labels_; }

  /// High-water mark of arena bytes across all runs so far.
  [[nodiscard]] std::size_t arena_watermark() const noexcept { return arena_.watermark(); }

 private:
  util::Arena arena_;
  tensor::Tensor logits_;   ///< borrowed from arena_; kept so run() can return a reference
  std::vector<int> labels_;
};

}  // namespace dlscale::serve
