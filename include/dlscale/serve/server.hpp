// In-process model server: bounded queue -> dynamic batcher -> worker
// pool over checkpoint-backed replicas, with hot-reload and latency
// percentiles.
//
//   clients --submit()--> RequestQueue --(coalesce)--> DynamicBatcher
//        --> worker threads --forward(batch, train=false)--> promises
//
// Each worker owns one model replica (no shared mutable model state) and
// runs whole batches; tensor kernels inside the forward still fan out
// over the global util::ThreadPool, so worker count controls concurrent
// BATCHES while DLSCALE_NUM_THREADS controls per-kernel parallelism —
// two independent axes, same as inter-/intra-op parallelism in real
// serving stacks. Dynamic batching is the throughput lever: the batched
// conv GEMM path makes an 8-image forward far cheaper than 8 singles
// (bench/bench_serve.cpp measures it), and batch invariance guarantees
// co-batching is invisible in the results.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "dlscale/serve/batcher.hpp"
#include "dlscale/serve/queue.hpp"
#include "dlscale/serve/registry.hpp"
#include "dlscale/serve/types.hpp"
#include "dlscale/util/stats.hpp"

namespace dlscale::serve {

struct ServeConfig {
  models::MiniDeepLabV3Plus::Config model;
  std::string name = "default";  ///< names the model in errors and /stats
  int workers = 1;           ///< concurrent batches (one replica each)
  int max_batch = 8;         ///< dynamic-batch ceiling
  std::int64_t max_wait_us = 200;  ///< straggler window after first request
  std::size_t queue_capacity = 64;  ///< admission bound; overflow rejects
  QuantizeSpec quantize{};   ///< serving precision of loaded replicas
};

/// Rejected submit(): the image does not fit the model. Carries the
/// structured pieces (which model, expected vs got shape) so callers —
/// the HTTP 400 handler above all — can report without re-parsing the
/// what() text. Raised at admission, never inside a worker forward.
class ShapeError : public std::invalid_argument {
 public:
  ShapeError(std::string model, tensor::Shape expected, tensor::Shape got);

  [[nodiscard]] const std::string& model() const noexcept { return model_; }
  [[nodiscard]] const tensor::Shape& expected() const noexcept { return expected_; }
  [[nodiscard]] const tensor::Shape& got() const noexcept { return got_; }

 private:
  std::string model_;
  tensor::Shape expected_;
  tensor::Shape got_;
};

/// Why submit() returned nullopt (for callers that need to answer 429
/// vs 503 rather than just "rejected").
enum class RejectReason {
  kNone,       ///< accepted
  kQueueFull,  ///< load shed — retry later
  kClosed,     ///< shutting down — drain in progress
};

/// Point-in-time counters + latency percentiles (microseconds).
struct ServerStats {
  std::uint64_t accepted = 0;
  /// Shed at admission: `rejected` stays the total for compatibility and
  /// always equals rejected_full + rejected_closed; the split is what
  /// operators act on (full = add capacity, closed = expected drain).
  std::uint64_t rejected = 0;
  std::uint64_t rejected_full = 0;    ///< queue overflow (load shedding)
  std::uint64_t rejected_closed = 0;  ///< admissions after shutdown began
  std::uint64_t completed = 0;
  std::uint64_t batches = 0;
  std::uint64_t reloads = 0;
  std::size_t queue_depth = 0;
  int model_version = 0;
  const char* precision = "fp32";  ///< current replica set's precision tag
  /// Completed-request split by the precision that served them; a
  /// hot-reload that flips precision moves subsequent traffic between
  /// these (fp32_requests + quantized_requests == completed).
  std::uint64_t fp32_requests = 0;
  std::uint64_t quantized_requests = 0;
  double mean_batch_size = 0.0;

  double queue_p50_us = 0.0, queue_p95_us = 0.0, queue_p99_us = 0.0;
  double total_p50_us = 0.0, total_p95_us = 0.0, total_p99_us = 0.0;
  double total_mean_us = 0.0, total_max_us = 0.0;
};

class Server {
 public:
  /// Spins up workers serving the checkpoint at `checkpoint_path`.
  Server(ServeConfig config, const std::string& checkpoint_path);
  /// Graceful: stops admissions, drains every queued request, joins.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Submit one (1,C,S,S) image — or (C,S,S), auto-unsqueezed. Returns
  /// nullopt when shedding load (queue full) or shutting down; otherwise
  /// a future the worker pool fulfils. Throws ShapeError — naming the
  /// model and the expected vs got shape — when the image does not fit,
  /// so a bad request never reaches a worker forward. When `why` is
  /// non-null it reports the rejection cause (kNone on acceptance).
  [[nodiscard]] std::optional<std::future<Response>> submit(tensor::Tensor image,
                                                            RejectReason* why = nullptr);

  /// Hot-swap weights from a new checkpoint. Throws on a bad file, in
  /// which case the old weights keep serving (strong guarantee).
  void reload(const std::string& checkpoint_path);

  /// Hot-swap weights AND serving precision in one atomic swap — e.g.
  /// re-serve the current fp32 checkpoint as int8. Same strong guarantee;
  /// the spec sticks for subsequent reloads.
  void reload(const std::string& checkpoint_path, QuantizeSpec quantize);

  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] int model_version() const { return registry_.version(); }
  [[nodiscard]] const ServeConfig& config() const noexcept { return config_; }
  /// The model name used in errors and /stats (ServeConfig::name).
  [[nodiscard]] const std::string& name() const noexcept { return config_.name; }

  /// Idempotent; called by the destructor. After shutdown() returns all
  /// admitted requests have been answered and workers have exited.
  void shutdown();

 private:
  void worker_loop(int worker_id);
  void run_batch(Batch&& batch, int worker_id);

  ServeConfig config_;
  ReplicaRegistry registry_;
  RequestQueue queue_;
  DynamicBatcher batcher_;
  std::vector<std::thread> workers_;
  bool shut_down_ = false;  ///< guarded by stats_mutex_

  mutable std::mutex stats_mutex_;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_full_ = 0;
  std::uint64_t rejected_closed_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t reloads_ = 0;
  std::uint64_t fp32_requests_ = 0;
  std::uint64_t quantized_requests_ = 0;
  util::Histogram queue_latency_us_;
  util::Histogram total_latency_us_;
};

}  // namespace dlscale::serve
