// Multi-model registry: many NAMED models, each with its own serving
// engine (DESIGN.md §13).
//
// The millions-of-users shape is multi-tenant: one process serves many
// named models, each with its own ServeConfig — worker pool, dynamic
// batch ceiling, admission bound, serving precision — and its own
// counters, queue depth, and latency histograms. The registry is a
// name -> Server map; everything per-model (queue, batcher, workers,
// replica hot-reload via ReplicaRegistry) lives in the Server, so model
// isolation is total: one model's overload sheds ITS queue, one model's
// reload swaps ITS replicas, and /stats reports them separately.
//
// Concurrency: the map is guarded by a mutex; Servers are held by
// shared_ptr so a connection thread that resolved a model keeps it
// alive for the whole request even if the registry shuts down
// meanwhile. Models can be added while serving; there is deliberately
// no remove — production registries drain models by closing their
// admissions (shutdown_model), and dropping the map entry would turn
// lookups into lifetime puzzles for no operational win.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "dlscale/serve/server.hpp"

namespace dlscale::serve {

/// Lookup of a model name that is not registered. Carries the name plus
/// the registered set so the HTTP 404 body can list what IS servable.
class UnknownModelError : public std::invalid_argument {
 public:
  UnknownModelError(std::string model, std::vector<std::string> known);
  [[nodiscard]] const std::string& model() const noexcept { return model_; }
  [[nodiscard]] const std::vector<std::string>& known() const noexcept { return known_; }

 private:
  std::string model_;
  std::vector<std::string> known_;
};

class ModelRegistry {
 public:
  ModelRegistry() = default;
  /// Shuts every model down (drain semantics — see Server::shutdown).
  ~ModelRegistry();

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Registers `name` serving the checkpoint at `checkpoint_path` under
  /// `config` (config.name is overwritten with `name` so errors and
  /// stats agree with the registry key). Spins the model's workers up
  /// immediately. Throws std::invalid_argument on a duplicate name and
  /// whatever Server's constructor throws on a bad checkpoint.
  Server& add_model(const std::string& name, ServeConfig config,
                    const std::string& checkpoint_path);

  /// The model's serving engine, or nullptr when unknown. The returned
  /// shared_ptr pins the Server across the caller's request lifetime.
  [[nodiscard]] std::shared_ptr<Server> find(const std::string& name) const;

  /// Like find() but throws UnknownModelError naming the known set.
  [[nodiscard]] Server& at(const std::string& name) const;

  /// Registered names in registration order.
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] std::size_t size() const;

  /// Per-model hot-reload (Server::reload semantics: atomic swap, strong
  /// guarantee on throw). Throws UnknownModelError for a bad name.
  void reload(const std::string& name, const std::string& checkpoint_path);
  void reload(const std::string& name, const std::string& checkpoint_path,
              QuantizeSpec quantize);

  /// Point-in-time stats of one model / of every model (registration
  /// order) — the /stats payload.
  [[nodiscard]] ServerStats stats(const std::string& name) const;
  [[nodiscard]] std::vector<std::pair<std::string, ServerStats>> stats_all() const;

  /// Stops admissions on one model and drains it (its entry stays, so
  /// /stats keeps reporting the drained counters).
  void shutdown_model(const std::string& name);

  /// Drains every model. Idempotent; called by the destructor.
  void shutdown();

 private:
  mutable std::mutex mutex_;
  std::vector<std::pair<std::string, std::shared_ptr<Server>>> models_;  ///< guarded by mutex_
};

}  // namespace dlscale::serve
