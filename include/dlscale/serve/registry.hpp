// Checkpoint-backed model replicas with atomic hot-reload.
//
// One replica per worker: workers index their own replica, so forward
// passes never share mutable model state and need no per-inference lock.
// reload() builds a complete STANDBY replica set, loads the checkpoint
// into it (any failure throws with the old set untouched — the strong
// guarantee the corrupt-reload test exercises), then swaps one
// shared_ptr under a mutex. Workers acquire() the set once per batch;
// in-flight batches keep the superseded set alive until their forward
// finishes, so a reload drains naturally instead of yanking weights
// mid-inference.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dlscale/models/deeplab.hpp"

namespace dlscale::serve {

/// An immutable-by-convention generation of model replicas. `version`
/// increments per successful load so responses can report which weights
/// produced them.
struct ReplicaSet {
  std::vector<std::unique_ptr<models::MiniDeepLabV3Plus>> replicas;
  int version = 0;
};

class ModelRegistry {
 public:
  /// Builds `replica_count` fresh replicas of `config` and loads the
  /// checkpoint at `path` into them (save_model format: parameters then
  /// buffers). Throws on any load error.
  ModelRegistry(models::MiniDeepLabV3Plus::Config config, int replica_count,
                const std::string& path);

  /// Atomic hot-reload: standby set, load, swap. Strong guarantee — on
  /// throw the current set is untouched and keeps serving.
  void reload(const std::string& path);

  /// Current replica set. The returned shared_ptr pins the generation for
  /// the caller's batch; workers must use exactly replicas[worker_id].
  [[nodiscard]] std::shared_ptr<ReplicaSet> acquire() const;

  [[nodiscard]] int version() const;
  [[nodiscard]] int replica_count() const noexcept { return replica_count_; }
  [[nodiscard]] const models::MiniDeepLabV3Plus::Config& config() const noexcept {
    return config_;
  }

 private:
  [[nodiscard]] std::shared_ptr<ReplicaSet> build_loaded_set(const std::string& path,
                                                             int version) const;

  models::MiniDeepLabV3Plus::Config config_;
  int replica_count_;
  mutable std::mutex mutex_;
  std::shared_ptr<ReplicaSet> current_;
};

}  // namespace dlscale::serve
