// Checkpoint-backed model replicas with atomic hot-reload.
//
// (This class was named ModelRegistry before the multi-model registry
// landed; serve::ModelRegistry in model_registry.hpp is now the NAMED
// many-model map, and ReplicaRegistry is the per-model replica-set
// holder each of its Servers owns.)
//
// One replica per worker: workers index their own replica, so forward
// passes never share mutable model state and need no per-inference lock.
// reload() builds a complete STANDBY replica set, loads the checkpoint
// into it (any failure throws with the old set untouched — the strong
// guarantee the corrupt-reload test exercises), then swaps one
// shared_ptr under a mutex. Workers acquire() the set once per batch;
// in-flight batches keep the superseded set alive until their forward
// finishes, so a reload drains naturally instead of yanking weights
// mid-inference.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dlscale/models/deeplab.hpp"

namespace dlscale::serve {

/// Serving-precision policy applied to every freshly loaded replica set
/// (DESIGN.md §9). kFp32 serves the checkpoint as-is; kBf16 halves
/// weights-at-rest; kInt8 routes conv GEMMs through the integer
/// micro-kernels and needs a calibration pass, which the registry runs on
/// the primary replica right after loading (replicas share weights, so
/// one table covers them all).
struct QuantizeSpec {
  nn::Precision precision = nn::Precision::kFp32;
  /// Int8 only: observer the calibration forwards feed.
  nn::CalibrationConfig calibration{};
  /// Int8 only: images for the calibration forwards, (B,C,S,S) matching
  /// the model config. Empty → `calibration_batch` deterministic uniform
  /// [0,1) images generated from `calibration_seed`.
  tensor::Tensor calibration_images;
  int calibration_batch = 4;
  std::uint64_t calibration_seed = 0x5EEDCA11;
};

/// An immutable-by-convention generation of model replicas. `version`
/// increments per successful load so responses can report which weights
/// produced them; `precision` is what every replica in the set was
/// converted to (uniform across the set).
struct ReplicaSet {
  std::vector<std::unique_ptr<models::MiniDeepLabV3Plus>> replicas;
  int version = 0;
  nn::Precision precision = nn::Precision::kFp32;
};

class ReplicaRegistry {
 public:
  /// Builds `replica_count` fresh replicas of `config`, loads the
  /// checkpoint at `path` into them (save_model format: parameters then
  /// buffers), then applies `quantize`. Throws on any load or
  /// calibration/conversion error.
  ReplicaRegistry(models::MiniDeepLabV3Plus::Config config, int replica_count,
                const std::string& path, QuantizeSpec quantize = {});

  /// Atomic hot-reload: standby set, load, calibrate/convert, swap.
  /// Strong guarantee — on throw the current set is untouched and keeps
  /// serving. Reuses the registry's current QuantizeSpec.
  void reload(const std::string& path);

  /// Hot-reload AND switch serving precision in one swap (e.g. load an
  /// fp32 checkpoint, serve it int8). The spec becomes the registry's
  /// policy for subsequent reloads.
  void reload(const std::string& path, QuantizeSpec quantize);

  /// Current replica set. The returned shared_ptr pins the generation for
  /// the caller's batch; workers must use exactly replicas[worker_id].
  [[nodiscard]] std::shared_ptr<ReplicaSet> acquire() const;

  [[nodiscard]] int version() const;
  /// Serving precision of the current replica set.
  [[nodiscard]] nn::Precision precision() const;
  [[nodiscard]] int replica_count() const noexcept { return replica_count_; }
  [[nodiscard]] const models::MiniDeepLabV3Plus::Config& config() const noexcept {
    return config_;
  }

 private:
  [[nodiscard]] std::shared_ptr<ReplicaSet> build_loaded_set(const std::string& path,
                                                             int version) const;

  models::MiniDeepLabV3Plus::Config config_;
  int replica_count_;
  mutable std::mutex mutex_;
  QuantizeSpec quantize_;  ///< guarded by mutex_ (reload may replace it)
  std::shared_ptr<ReplicaSet> current_;
};

}  // namespace dlscale::serve
