// Environment-knob parsing in the style of Horovod/MVAPICH2 runtime tuning.
//
// The paper's whole contribution is setting knobs like
// HOROVOD_FUSION_THRESHOLD / HOROVOD_CYCLE_TIME / MV2_USE_CUDA without
// touching the framework. This module gives every dlscale component the
// same ability: typed getters with defaults, plus size suffix parsing
// ("64MB") matching Horovod's conventions.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dlscale::util {

/// Raw environment lookup. Returns nullopt when unset.
std::optional<std::string> env_string(const std::string& name);

/// Integer knob; returns `fallback` when unset or unparsable.
std::int64_t env_int(const std::string& name, std::int64_t fallback);

/// Floating-point knob; returns `fallback` when unset or unparsable.
double env_double(const std::string& name, double fallback);

/// Boolean knob; accepts 1/0, true/false, yes/no, on/off (case-insensitive).
bool env_bool(const std::string& name, bool fallback);

/// Byte-size knob; accepts plain integers plus K/KB/M/MB/G/GB suffixes
/// (binary multiples, matching Horovod's fusion-threshold convention).
/// Returns `fallback` when unset or unparsable.
std::uint64_t env_bytes(const std::string& name, std::uint64_t fallback);

/// Parse a byte-size literal like "64MB", "8k", "1048576".
/// Returns nullopt if the text is not a valid size.
std::optional<std::uint64_t> parse_bytes(std::string_view text);

/// Pretty-print a byte count ("64 MiB", "1.5 GiB", "512 B").
std::string format_bytes(std::uint64_t bytes);

/// The effective value of one environment knob, as most recently read by
/// a typed getter above. Every env_* call records what it returned, so a
/// run can print exactly the configuration it is using — set, defaulted,
/// or set-but-unparsable (which falls back and reports `from_env=false`).
struct EnvRecord {
  std::string name;
  std::string value;     ///< effective value, formatted by the typed getter
  bool from_env = false; ///< true when the variable was set AND parsed
};

/// Snapshot of every knob read so far, sorted by name. Thread-safe.
std::vector<EnvRecord> env_effective();

/// Render env_effective() as an aligned human-readable block, one line
/// per knob: `NAME = value (env|default)`. Examples print this at
/// startup so a log always shows the knobs the run actually used.
std::string env_dump();

}  // namespace dlscale::util
