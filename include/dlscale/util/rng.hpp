// Deterministic, splittable random number generation.
//
// Distributed training reproducibility requires that every rank derive
// independent-but-deterministic streams from a single experiment seed
// (e.g. rank-local data augmentation vs globally-shared weight init).
// SplitMix64 seeds a xoshiro256** core; `child(tag)` derives decorrelated
// substreams so modules never share state accidentally.
#pragma once

#include <cstdint>
#include <random>

namespace dlscale::util {

/// xoshiro256** engine seeded via SplitMix64. Satisfies
/// UniformRandomBitGenerator so it plugs into <random> distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  result_type operator()() noexcept;

  /// Derive a decorrelated child stream; identical (seed, tag) pairs give
  /// identical children on every rank and platform.
  [[nodiscard]] Rng child(std::uint64_t tag) const noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n) for n > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Standard normal via Box-Muller (deterministic across platforms,
  /// unlike std::normal_distribution).
  double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

 private:
  std::uint64_t state_[4];
};

}  // namespace dlscale::util
