// Small descriptive-statistics helpers used by benchmarks and the
// performance simulator (mean / stddev / min / max / percentiles over
// per-iteration timings).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dlscale::util {

/// Accumulates a stream of samples; O(1) memory for moments, retains the
/// sample vector only when percentiles are requested.
class RunningStats {
 public:
  void add(double sample);

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept;
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample set using linear interpolation between closest
/// ranks; `q` in [0, 100]. The input need not be sorted.
double percentile(std::span<const double> samples, double q);

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> samples);

/// Geometric mean of positive samples; 0 if any sample is <= 0 or empty.
double geomean(std::span<const double> samples);

}  // namespace dlscale::util
