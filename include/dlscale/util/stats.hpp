// Small descriptive-statistics helpers used by benchmarks and the
// performance simulator (mean / stddev / min / max / percentiles over
// per-iteration timings), plus a fixed-memory log-bucketed histogram for
// long-running percentile tracking (the serving layer's latency stats).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace dlscale::util {

/// Accumulates a stream of samples; O(1) memory for moments, retains the
/// sample vector only when percentiles are requested.
class RunningStats {
 public:
  void add(double sample);

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept;
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Log-bucketed histogram with fixed memory and O(1) insertion, for
/// percentile tracking over unbounded streams (per-request serving
/// latencies) where retaining every sample is not an option.
///
/// Buckets are geometric: `buckets_per_decade` buckets per factor of 10,
/// spanning [1, 1e9) with an underflow bucket below 1 and an overflow
/// bucket above. percentile() interpolates linearly inside the winning
/// bucket, so the relative error of a reported quantile is bounded by the
/// bucket width (~15% at the default 16 buckets/decade — plenty for
/// latency reporting, where p99 jitter dwarfs that).
class Histogram {
 public:
  explicit Histogram(int buckets_per_decade = 16);

  void add(double value);
  /// Sums another histogram into this one. Both must share the same
  /// bucket layout (same buckets_per_decade).
  void merge(const Histogram& other);
  void reset();

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  /// Quantile estimate, `q` in [0, 100]. 0 when empty. Exact at the
  /// recorded min/max; otherwise within one bucket width.
  [[nodiscard]] double percentile(double q) const;

 private:
  [[nodiscard]] std::size_t bucket_index(double value) const;
  [[nodiscard]] double bucket_lower(std::size_t index) const;

  int buckets_per_decade_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample set using linear interpolation between closest
/// ranks; `q` in [0, 100]. The input need not be sorted.
double percentile(std::span<const double> samples, double q);

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> samples);

/// Geometric mean of positive samples; 0 if any sample is <= 0 or empty.
double geomean(std::span<const double> samples);

}  // namespace dlscale::util
