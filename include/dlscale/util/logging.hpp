// Minimal thread-safe logging for dlscale.
//
// Severity-filtered, timestamped, rank-tagged log lines on stderr. The
// level is initialised once from the DLSCALE_LOG_LEVEL environment knob
// (trace|debug|info|warn|error, default info) and may be overridden
// programmatically for tests.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>

namespace dlscale::util {

enum class LogLevel : std::uint8_t { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global minimum severity; messages below it are discarded cheaply.
LogLevel log_level() noexcept;

/// Override the global log level (e.g. in tests). Thread-safe.
void set_log_level(LogLevel level) noexcept;

/// Parse "trace"/"debug"/"info"/"warn"/"error"/"off" (case-insensitive).
/// Returns kInfo for unrecognised input.
LogLevel parse_log_level(std::string_view text) noexcept;

/// Tag subsequent log lines emitted from the calling thread with a rank id
/// (printed as "[rank N]"). Pass a negative value to clear the tag.
void set_thread_log_rank(int rank) noexcept;

namespace detail {
void emit(LogLevel level, std::string_view message);
}  // namespace detail

/// Log `message` at `level` if the global filter admits it.
inline void log(LogLevel level, std::string_view message) {
  if (level >= log_level() && log_level() != LogLevel::kOff) detail::emit(level, message);
}

}  // namespace dlscale::util

// Stream-style convenience macros. The stream expression is not evaluated
// when the level is filtered out.
#define DLSCALE_LOG_AT(lvl, expr)                                          \
  do {                                                                     \
    if ((lvl) >= ::dlscale::util::log_level()) {                           \
      std::ostringstream dlscale_log_oss;                                  \
      dlscale_log_oss << expr;                                             \
      ::dlscale::util::log((lvl), dlscale_log_oss.str());                  \
    }                                                                      \
  } while (0)

#define DLSCALE_TRACE(expr) DLSCALE_LOG_AT(::dlscale::util::LogLevel::kTrace, expr)
#define DLSCALE_DEBUG(expr) DLSCALE_LOG_AT(::dlscale::util::LogLevel::kDebug, expr)
#define DLSCALE_INFO(expr) DLSCALE_LOG_AT(::dlscale::util::LogLevel::kInfo, expr)
#define DLSCALE_WARN(expr) DLSCALE_LOG_AT(::dlscale::util::LogLevel::kWarn, expr)
#define DLSCALE_ERROR(expr) DLSCALE_LOG_AT(::dlscale::util::LogLevel::kError, expr)
