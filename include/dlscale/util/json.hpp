// Reflection-style JSON for the serving front-end (DESIGN.md §13).
//
// Two layers, modelled on the getml engine's json/Writer.hpp +
// rfl/parsing/Parser.hpp split referenced in ROADMAP:
//
//  1. A dynamic `Value` (null/bool/number/string/array/object) with a
//     strict recursive-descent parser and a writer whose number
//     formatting uses std::to_chars shortest round-trip form — a float
//     written here and parsed back is BITWISE the same float, which is
//     what lets the HTTP loopback tests demand bit-equality with
//     in-process serving.
//
//  2. A compile-time field-binding layer: a struct opts in by declaring
//
//       static constexpr auto json_fields() {
//         return std::make_tuple(util::json::field("workers", &Cfg::workers),
//                                util::json::field("max_batch", &Cfg::max_batch));
//       }
//
//     and the generic to_value<T>() / from_value<T>() walk that tuple —
//     one field list per struct powers BOTH directions, so there is no
//     hand-rolled per-struct serialize or parse code to drift apart.
//     from_value is strict: an unknown key or a wrong-typed value throws
//     SchemaError naming the offending field; a missing key keeps the
//     member's default (configs stay forward-compatible).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

namespace dlscale::util::json {

class Value;

/// Base of all errors this module throws.
struct Error : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Malformed JSON text. `offset` is the byte position of the failure.
struct ParseError : Error {
  ParseError(const std::string& what, std::size_t offset_in)
      : Error(what + " (at byte " + std::to_string(offset_in) + ")"), offset(offset_in) {}
  std::size_t offset = 0;
};

/// Structurally valid JSON that does not fit the target struct: unknown
/// field, wrong type, non-integral value for an integer member.
struct SchemaError : Error {
  using Error::Error;
};

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  using Array = std::vector<Value>;

  Value() noexcept : kind_(Kind::kNull) {}
  Value(std::nullptr_t) noexcept : kind_(Kind::kNull) {}  // NOLINT
  Value(bool b) noexcept : kind_(Kind::kBool), bool_(b) {}  // NOLINT
  Value(double d) noexcept : kind_(Kind::kNumber), number_(d) {}  // NOLINT
  Value(int i) noexcept : Value(static_cast<double>(i)) {}  // NOLINT
  Value(std::int64_t i) noexcept : Value(static_cast<double>(i)) {}  // NOLINT
  Value(std::uint64_t i) noexcept : Value(static_cast<double>(i)) {}  // NOLINT
  Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}  // NOLINT
  Value(const char* s) : Value(std::string(s)) {}  // NOLINT
  Value(Array a) : kind_(Kind::kArray), array_(std::move(a)) {}  // NOLINT

  Value(const Value& other) { copy_from(other); }
  Value(Value&& other) noexcept = default;
  Value& operator=(const Value& other) {
    if (this != &other) { Value tmp(other); *this = std::move(tmp); }
    return *this;
  }
  Value& operator=(Value&& other) noexcept = default;
  ~Value() = default;

  [[nodiscard]] static Value object() {
    Value v;
    v.kind_ = Kind::kObject;
    return v;
  }
  [[nodiscard]] static Value array() {
    Value v;
    v.kind_ = Kind::kArray;
    return v;
  }

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const noexcept { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const noexcept { return kind_ == Kind::kObject; }

  /// Typed accessors; throw SchemaError on kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] Array& as_array();

  // --- object interface (throws SchemaError unless is_object()) ---
  /// Keys in insertion order.
  [[nodiscard]] const std::vector<std::string>& keys() const;
  /// Value for `key`, or nullptr when absent.
  [[nodiscard]] const Value* find(std::string_view key) const;
  /// Insert or replace `key`.
  void set(std::string key, Value value);
  [[nodiscard]] std::size_t member_count() const;
  [[nodiscard]] const Value& member(std::size_t i) const { return object_values_[i]; }

  /// Array append (throws SchemaError unless is_array()).
  void push_back(Value value);

 private:
  void copy_from(const Value& other);

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  std::vector<std::string> object_keys_;
  Array object_values_;
};

/// Strict parse of a complete JSON document: the whole input must be one
/// value plus optional trailing whitespace. Throws ParseError on
/// malformed or truncated text, nesting deeper than 64 levels, or
/// non-finite numbers.
[[nodiscard]] Value parse(std::string_view text);

/// Compact single-line serialization. Numbers use std::to_chars shortest
/// round-trip form; non-finite numbers throw Error (not representable in
/// JSON).
[[nodiscard]] std::string write(const Value& value);

/// Indented serialization for config files and human-read payloads.
[[nodiscard]] std::string write_pretty(const Value& value, int indent = 2);

// ---------------------------------------------------------------------------
// Field-binding layer.
// ---------------------------------------------------------------------------

template <class T, class M>
struct Field {
  const char* name;
  M T::*member;
};

/// Binds one member to its JSON key. Collect these in json_fields().
template <class T, class M>
constexpr Field<T, M> field(const char* name, M T::*member) {
  return Field<T, M>{name, member};
}

template <class T>
concept Reflected = requires { T::json_fields(); };

template <Reflected T>
[[nodiscard]] Value to_value(const T& obj);
template <class T>
[[nodiscard]] T from_value(const Value& value);

namespace detail {

// encode(x) -> Value for every supported member type.
inline Value encode(bool b) { return Value(b); }
inline Value encode(const std::string& s) { return Value(s); }
template <class T>
  requires std::is_arithmetic_v<T> && (!std::is_same_v<T, bool>)
Value encode(T n) {
  return Value(static_cast<double>(n));
}
template <Reflected T>
Value encode(const T& obj) {
  return to_value(obj);
}
template <class E>
Value encode(const std::vector<E>& items) {
  Value v = Value::array();
  for (const E& item : items) v.push_back(encode(item));
  return v;
}

// decode(value, out, context): strict kind/type checking; `context`
// names the field for error messages.
void expect_kind(const Value& value, Value::Kind kind, const std::string& context);
double checked_integer(const Value& value, const std::string& context);

inline void decode(const Value& value, bool& out, const std::string& context) {
  expect_kind(value, Value::Kind::kBool, context);
  out = value.as_bool();
}
inline void decode(const Value& value, std::string& out, const std::string& context) {
  expect_kind(value, Value::Kind::kString, context);
  out = value.as_string();
}
template <class T>
  requires std::is_floating_point_v<T>
void decode(const Value& value, T& out, const std::string& context) {
  expect_kind(value, Value::Kind::kNumber, context);
  out = static_cast<T>(value.as_number());
}
template <class T>
  requires std::is_integral_v<T> && (!std::is_same_v<T, bool>)
void decode(const Value& value, T& out, const std::string& context) {
  out = static_cast<T>(checked_integer(value, context));
}
template <Reflected T>
void decode(const Value& value, T& out, const std::string& context);
template <class E>
void decode(const Value& value, std::vector<E>& out, const std::string& context) {
  expect_kind(value, Value::Kind::kArray, context);
  const auto& items = value.as_array();
  out.clear();
  out.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    E element{};
    decode(items[i], element, context + "[" + std::to_string(i) + "]");
    out.push_back(std::move(element));
  }
}

[[noreturn]] void throw_unknown_field(const std::string& context, const std::string& key);

template <Reflected T>
void decode(const Value& value, T& out, const std::string& context) {
  expect_kind(value, Value::Kind::kObject, context);
  constexpr auto fields = T::json_fields();
  const auto& keys = value.keys();
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const std::string& key = keys[i];
    bool known = false;
    std::apply(
        [&](const auto&... f) {
          (([&] {
             if (!known && key == f.name) {
               known = true;
               decode(value.member(i), out.*(f.member), context + "." + f.name);
             }
           }()),
           ...);
        },
        fields);
    if (!known) throw_unknown_field(context, key);
  }
}

}  // namespace detail

template <Reflected T>
Value to_value(const T& obj) {
  Value v = Value::object();
  std::apply([&](const auto&... f) { (v.set(f.name, detail::encode(obj.*(f.member))), ...); },
             T::json_fields());
  return v;
}

/// Decodes a default-constructed T from `value`. Strict: unknown keys
/// and wrong-typed values throw SchemaError; absent keys keep defaults.
template <class T>
T from_value(const Value& value) {
  T out{};
  detail::decode(value, out, "$");
  return out;
}

/// Convenience: serialize a reflected struct straight to JSON text.
template <Reflected T>
[[nodiscard]] std::string to_json(const T& obj, bool pretty = false) {
  return pretty ? write_pretty(to_value(obj)) : write(to_value(obj));
}

/// Convenience: parse text and decode a reflected struct. Throws
/// ParseError on bad text, SchemaError on a shape mismatch.
template <class T>
[[nodiscard]] T from_json(std::string_view text) {
  return from_value<T>(parse(text));
}

}  // namespace dlscale::util::json
