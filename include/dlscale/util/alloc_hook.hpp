// Test-only global allocation counter.
//
// Link dlscale::alloc_hook (built with DLSCALE_ALLOC_HOOK) to replace the
// process-wide operator new/delete with counting versions. The
// zero-allocation tests snapshot alloc_count() around a steady-state
// train step / serve batch and assert the delta is zero — the proof
// behind the arena refactor (DESIGN.md §10), in the spirit of the
// serving path's cache_bytes() == 0 invariant.
//
// These symbols live only in the hook library: a binary that calls them
// without linking dlscale::alloc_hook fails to link, which keeps the
// hooked allocator out of every production target by construction.
#pragma once

#include <cstdint>

namespace dlscale::util {

/// Global operator new invocations since process start.
[[nodiscard]] std::uint64_t alloc_count() noexcept;

/// Global operator delete invocations since process start.
[[nodiscard]] std::uint64_t free_count() noexcept;

}  // namespace dlscale::util
