// Minimal loopback TCP helpers for the HTTP serving front-end
// (DESIGN.md §13).
//
// Deliberately small: blocking sockets, IPv4 loopback only, RAII fds.
// The serving stack is thread-per-connection (a connection thread can
// block in recv without starving anything), so no epoll/readiness
// machinery is needed — what IS needed is a clean cross-thread shutdown
// story, and that is the one subtle part here:
//
//   * close(fd) while another thread is blocked on it is a fd-reuse
//     race (the number can be recycled under the blocked thread), so
//     shutdown paths call ::shutdown(fd, SHUT_RDWR) — which atomically
//     unblocks accept()/recv() on every thread — and leave the close()
//     to the fd's owning RAII wrapper.
//   * send uses MSG_NOSIGNAL so a client hanging up mid-response is an
//     error return, not a process-wide SIGPIPE.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace dlscale::util {

/// RAII wrapper of one connected TCP socket. Move-only; the destructor
/// closes the fd.
class Socket {
 public:
  Socket() noexcept = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket();
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Gives up ownership: returns the fd and leaves the wrapper invalid
  /// (destructor becomes a no-op). For borrow patterns where another
  /// owner is responsible for the close.
  int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Blocking connect to 127.0.0.1:port. Throws std::runtime_error with
  /// errno text on failure.
  [[nodiscard]] static Socket connect_loopback(std::uint16_t port);

  /// Writes all `n` bytes (looping over partial sends, EINTR-safe).
  /// Returns false if the peer is gone (EPIPE/ECONNRESET) or on error.
  bool send_all(const void* data, std::size_t n) noexcept;
  bool send_all(const std::string& data) noexcept {
    return send_all(data.data(), data.size());
  }

  /// One blocking recv: >0 bytes read, 0 orderly EOF, -1 error. EINTR is
  /// retried internally.
  [[nodiscard]] long recv_some(void* buf, std::size_t n) noexcept;

  /// Half-close both directions without closing the fd — safe to call
  /// from a different thread than the one blocked in recv_some (which
  /// wakes with EOF). The fd itself dies with the wrapper.
  void shutdown_both() noexcept;

  /// Bounds how long recv_some may block (0 = forever). Lets connection
  /// threads shed clients that stop talking mid-request.
  void set_recv_timeout_ms(int ms) noexcept;

 private:
  int fd_ = -1;
};

/// Listening socket bound to 127.0.0.1. Port 0 asks the kernel for an
/// ephemeral port; port() reports the actual one.
class ListenSocket {
 public:
  /// Binds and listens. Throws std::runtime_error with errno text.
  explicit ListenSocket(std::uint16_t port, int backlog = 64);
  ~ListenSocket();
  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Blocks for the next connection. Returns nullopt once unblock() has
  /// been called (or on a non-transient accept error) — the accept
  /// loop's signal to exit.
  [[nodiscard]] std::optional<Socket> accept();

  /// Cross-thread: makes the blocked (and every future) accept() return
  /// nullopt. Idempotent. The fd is closed by the destructor only, so
  /// there is no fd-reuse race with a concurrently blocked accept.
  void unblock() noexcept;

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace dlscale::util
