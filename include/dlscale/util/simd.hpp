// Runtime SIMD dispatch for the CPU kernel layer.
//
// The tensor micro-kernels (src/tensor/microkernel.cpp) and the fp16
// conversion sweeps (src/util/fp16.cpp) each ship two implementations: a
// portable scalar twin and a vector path (AVX2 / F16C). Both compute the
// *bitwise identical* result — the vector path keeps each output
// element's serial accumulation order and excludes FMA contraction — so
// selecting between them is purely a performance decision (DESIGN.md §6,
// "SIMD dispatch").
//
// Selection happens once, lazily, at first use: CPUID detection clamped
// by the DLSCALE_SIMD env knob (0/false forces the scalar twins; default
// on), recorded through util::env so runs log the path they used. Tests
// and benches may re-select at runtime with set_simd_level(), which is
// clamped to what the hardware can execute.
#pragma once

// x86-64 with GNU-style per-function target attributes: the only
// configuration that compiles the vector kernels. DLSCALE_FORCE_SCALAR
// (CMake option of the same name) removes them entirely, so even an AVX2
// host runs — and CI exercises — the scalar twins.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__)) && \
    !defined(DLSCALE_FORCE_SCALAR)
#define DLSCALE_SIMD_X86 1
#else
#define DLSCALE_SIMD_X86 0
#endif

namespace dlscale::util {

/// Kernel instruction-set tiers, ordered by capability.
enum class SimdLevel { kScalar = 0, kAvx2 = 1 };

/// Highest level this host (and build configuration) can execute.
/// Hardware CPUID, independent of DLSCALE_SIMD; kScalar when the build
/// was configured with -DDLSCALE_FORCE_SCALAR=ON or targets non-x86.
SimdLevel detected_simd_level() noexcept;

/// True when the host can execute F16C half<->float conversions (only
/// ever true when detected_simd_level() is kAvx2).
bool detected_f16c() noexcept;

/// The active dispatch level. First call reads DLSCALE_SIMD (recorded
/// via util::env) and clamps to detected_simd_level().
SimdLevel simd_level();

/// The level chosen at startup from env + CPUID — unaffected by later
/// set_simd_level() calls (asserted by the DLSCALE_SIMD=0 ctest rerun).
SimdLevel simd_startup_level();

/// Re-selects the dispatch level (tests and bench sweeps). Clamped to
/// detected_simd_level(); returns the level actually applied. Must not
/// be called while kernels are in flight on other threads.
SimdLevel set_simd_level(SimdLevel level);

/// True when the active path may use F16C conversions.
bool simd_f16c();

/// "scalar" / "avx2" — for logs, bench tables, and test names.
const char* simd_level_name(SimdLevel level) noexcept;

}  // namespace dlscale::util
