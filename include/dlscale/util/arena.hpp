// 64-byte-aligned bump arena with liveness tracing and planned replay.
//
// Three modes, one allocator (DESIGN.md §10):
//
//  * **Bump** (default): pointer-bump allocation out of chained blocks;
//    `reset()` rewinds to empty and coalesces the chain into one block
//    sized at the high-water mark, so a steady-state user that resets
//    between iterations stops touching the heap after warmup.
//  * **Trace**: bump allocation that additionally records a
//    {size, first-use, last-use} event per allocation. `Tensor` reports
//    releases via `note_release`, giving the planner exact liveness
//    intervals for one forward+backward (or serve) step.
//  * **Planned**: replays a `MemoryPlan` produced by
//    `tensor::MemoryPlanner` from a trace — allocation k of the step is
//    served at `plan.offsets[k]` in a single block of `plan.peak_bytes`.
//    Liveness-disjoint buffers share storage, which is how the packed
//    peak lands well under the naive sum of all allocations.
//
// Frames give kernels LIFO scratch: `Arena::Frame f(a); a.alloc<float>(n);`
// rewinds on scope exit. The per-thread `thread_scratch_arena()` replaces
// the old ad-hoc `thread_local std::vector` scratch caches in
// tensor/ops.cpp and tensor/quantize.cpp.
//
// Guard canaries (runtime opt-in, test-only): each bump allocation gets a
// 64-byte 0xAB band after the payload, checked by `check_guards()` /
// `reset()`; freed regions are poisoned with 0xCD so stale reads are
// loud. These are plain in-arena bytes — ASan cannot see an overrun into
// arena slack, the canary check is what catches it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dlscale::util {

/// Offsets for one iteration's allocation sequence, in allocation order.
/// Produced by tensor::MemoryPlanner, consumed by Arena::set_plan.
struct MemoryPlan {
  std::vector<std::size_t> offsets;  ///< byte offset per allocation index
  std::vector<std::size_t> sizes;    ///< aligned payload bytes, same order
  std::size_t peak_bytes = 0;        ///< packed arena capacity
  std::size_t naive_bytes = 0;       ///< sum of all aligned sizes
  [[nodiscard]] bool empty() const noexcept { return sizes.empty(); }
};

/// One allocation observed while tracing. Ticks are a shared event
/// counter over allocations and releases; release_tick == 0 means the
/// buffer was never released and is live to the end of the trace.
struct ArenaTraceEvent {
  std::size_t bytes = 0;  ///< aligned payload size
  std::uint64_t alloc_tick = 0;
  std::uint64_t release_tick = 0;
};

/// Bump allocator with reset/watermark, optional guard canaries,
/// liveness tracing, and planned replay.
class Arena {
 public:
  static constexpr std::size_t kAlignment = 64;
  static constexpr unsigned char kGuardByte = 0xAB;
  static constexpr unsigned char kPoisonByte = 0xCD;

  struct Options {
    bool guard = false;  ///< canary bands + poison-on-reset (tests)
  };

  Arena();
  explicit Arena(Options options);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of 64-byte-aligned storage (contents unspecified).
  /// Bump/trace mode: bumps, growing the block chain on miss (heap —
  /// warmup only). Planned mode: returns the preassigned offset for this
  /// allocation index; throws std::logic_error if the request count or
  /// size diverges from the plan.
  void* allocate(std::size_t bytes);

  template <typename T>
  [[nodiscard]] T* alloc(std::size_t count) {
    return static_cast<T*>(allocate(count * sizeof(T)));
  }

  /// Rewinds to empty. Bump/trace: checks guards, poisons the used
  /// region (guard option), and coalesces a multi-block chain into one
  /// block at the high-water mark so the next cycle is heap-free.
  /// Planned: restarts the replay index (no heap work at all).
  void reset();

  /// High-water mark of reserved bytes (aligned payloads + guard bands).
  [[nodiscard]] std::size_t watermark() const noexcept { return watermark_; }
  /// Total block capacity currently held.
  [[nodiscard]] std::size_t capacity() const noexcept;
  /// Bytes reserved since the last reset (or frame base).
  [[nodiscard]] std::size_t used() const noexcept { return used_; }

  /// Verifies every live guard band; throws std::logic_error on a tripped
  /// canary. No-op unless constructed with Options::guard.
  void check_guards() const;

  /// LIFO scratch region: rewinds the arena to its construction point on
  /// scope exit. Kernels nest these freely (per-call, per-worker).
  class Frame {
   public:
    explicit Frame(Arena& arena) noexcept;
    ~Frame();
    Frame(const Frame&) = delete;
    Frame& operator=(const Frame&) = delete;

   private:
    Arena& arena_;
    std::size_t block_;
    std::size_t offset_;
    std::size_t used_;
    std::size_t guards_;
  };

  /// Tracing ------------------------------------------------------------
  /// Starts recording allocation/release events (resets first). Not
  /// compatible with frames: tracing captures whole-step Tensor liveness,
  /// frame scratch lives in separate per-thread arenas.
  void begin_trace();
  [[nodiscard]] bool tracing() const noexcept { return tracing_; }
  /// Records the release of a traced allocation (Tensor destructor).
  void note_release(const void* p) noexcept;
  /// Stops tracing and returns the recorded events in allocation order.
  [[nodiscard]] std::vector<ArenaTraceEvent> take_trace();

  /// Planned replay ------------------------------------------------------
  /// Switches to planned mode backed by one block of plan.peak_bytes.
  /// Guard bands are not emitted in planned mode (offsets are packed).
  void set_plan(MemoryPlan plan);
  /// Back to bump mode; the planned block is kept as bump capacity.
  void clear_plan();
  [[nodiscard]] bool planned() const noexcept { return planned_; }
  [[nodiscard]] const MemoryPlan& plan() const noexcept { return plan_; }

 private:
  struct Block {
    std::byte* data = nullptr;
    std::size_t size = 0;
  };
  struct Guard {
    const std::byte* band = nullptr;  ///< first byte of the 64B canary
  };

  void* bump(std::size_t stride);
  void release_blocks() noexcept;
  void ensure_single_block(std::size_t bytes);

  std::vector<Block> blocks_;
  std::size_t block_ = 0;       ///< block currently bumped
  std::size_t offset_ = 0;      ///< bump offset within blocks_[block_]
  std::size_t used_ = 0;        ///< reserved bytes since reset
  std::size_t watermark_ = 0;   ///< max of used_ ever seen
  bool guard_ = false;
  std::vector<Guard> guards_;   ///< live canary bands (guard option)

  bool tracing_ = false;
  std::uint64_t tick_ = 0;
  std::vector<ArenaTraceEvent> trace_;
  std::vector<std::pair<const void*, std::size_t>> live_;  ///< ptr -> event

  bool planned_ = false;
  MemoryPlan plan_;
  std::size_t replay_ = 0;  ///< next allocation index in planned mode
};

/// Installs `arena` as the borrow target for Tensor storage on this
/// thread for the scope's lifetime (restores the previous target on
/// exit; scopes nest). Does NOT reset on exit — borrowed outputs stay
/// readable until the owner resets at the start of the next iteration.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena) noexcept;
  ~ArenaScope();
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena* prev_;
};

/// The arena Tensors on this thread borrow from (nullptr = owning mode).
[[nodiscard]] Arena* current_arena() noexcept;

/// Per-thread bump arena for kernel scratch (im2col panels, int8 panels,
/// softmax partials). Always bump mode; kernels carve LIFO Frames out of
/// it. Lives until thread exit, so steady-state reuse is heap-free.
[[nodiscard]] Arena& thread_scratch_arena();

}  // namespace dlscale::util
