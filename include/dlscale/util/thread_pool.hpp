// Shared worker pool for the tensor kernels.
//
// The mini DeepLab-v3+ that backs the accuracy-parity experiment runs on
// real CPU kernels (src/tensor/ops.cpp); this pool lets those kernels use
// every core while staying composable with simmpi's ranks-as-threads
// runtime. Design constraints, in order:
//
//  1. **Bounded parallelism.** One lazy global pool, sized by
//     DLSCALE_NUM_THREADS (default: hardware_concurrency). N rank threads
//     calling kernels concurrently share the same workers — an 8-rank
//     training test never spawns 8 pools.
//  2. **No deadlock on nesting.** A parallel_for issued from inside a pool
//     worker (a kernel calling another kernel) runs inline and serial.
//     Rank threads are *callers*, not workers, so they still fan out.
//  3. **Caller always makes progress.** The submitting thread participates
//     in its own job, claiming chunks alongside the workers. If every
//     worker is busy with other callers' jobs, the caller simply executes
//     all chunks itself — saturation degrades to serial, never blocks.
//  4. **Determinism.** Chunk boundaries are a pure function of
//     (begin, end, grain) — never of the thread count — so a kernel that
//     accumulates per-chunk partials in chunk order produces bitwise
//     identical results at any DLSCALE_NUM_THREADS setting.
//  5. **Zero steady-state allocation.** parallel_for is a template over
//     the callable, dispatched through a plain function pointer +
//     context, with the job record on the caller's stack and a ring
//     queue that keeps its capacity — no std::function boxing, no
//     shared_ptr control blocks, no per-call heap traffic (the
//     zero-allocation train/serve proof in tests/ counts on this).
#pragma once

#include <cstdint>
#include <memory>
#include <thread>
#include <type_traits>

namespace dlscale::util {

/// Fixed-size worker pool with a chunked parallel-for primitive.
class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the caller of parallel_for is the
  /// remaining participant). `threads <= 1` means fully serial.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Configured parallelism (workers + caller); >= 1.
  [[nodiscard]] int size() const noexcept { return threads_; }

  /// Runs fn(lo, hi) over disjoint chunks covering [begin, end), each at
  /// most `grain` long. Chunk c covers
  ///   [begin + c*grain, min(begin + (c+1)*grain, end))
  /// regardless of pool size. Blocks until every chunk has run; the first
  /// exception thrown by fn is rethrown on the calling thread (remaining
  /// chunks still execute). Empty ranges return immediately. Calls from a
  /// pool worker run inline as a single chunked serial loop.
  template <typename F>
  void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain, F&& fn) {
    run_chunked(
        begin, end, grain,
        [](void* ctx, std::int64_t lo, std::int64_t hi) {
          (*static_cast<std::remove_reference_t<F>*>(ctx))(lo, hi);
        },
        std::addressof(fn));
  }

  /// True when the current thread is one of this pool's workers.
  [[nodiscard]] static bool in_worker() noexcept;

 private:
  /// Type-erased chunk callback: fn(ctx, lo, hi). A bare function
  /// pointer + void* so capturing lambdas never round-trip through
  /// std::function's allocating small-buffer fallback.
  using ChunkFn = void (*)(void*, std::int64_t, std::int64_t);

  void run_chunked(std::int64_t begin, std::int64_t end, std::int64_t grain, ChunkFn fn,
                   void* ctx);

  struct Impl;
  Impl* impl_;
  int threads_;
};

/// The process-wide pool, created on first use and sized by
/// DLSCALE_NUM_THREADS (default: std::thread::hardware_concurrency).
ThreadPool& global_pool();

/// Parallelism of the global pool without forcing its creation when a
/// serial answer suffices.
int global_thread_count();

/// Re-sizes the global pool (tests and bench thread sweeps). Must not be
/// called while any parallel_for is in flight.
void set_global_thread_count(int threads);

/// Convenience: global_pool().parallel_for(...).
template <typename F>
inline void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain, F&& fn) {
  global_pool().parallel_for(begin, end, grain, std::forward<F>(fn));
}

}  // namespace dlscale::util
