// Reusable thread barrier (sense-reversing), used by the simmpi runtime.
//
// std::barrier exists in C++20 but its completion-function template
// parameter makes it awkward to store by value in runtime structs whose
// participant count is chosen dynamically; this small class matches the
// exact need and is trivially testable.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>

namespace dlscale::util {

/// Cyclic barrier for a fixed number of participants.
class Barrier {
 public:
  explicit Barrier(std::size_t participants)
      : participants_(participants), waiting_(0), generation_(0) {}

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Block until all participants have arrived; reusable across rounds.
  void arrive_and_wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    const std::size_t my_generation = generation_;
    if (++waiting_ == participants_) {
      waiting_ = 0;
      ++generation_;
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [&] { return generation_ != my_generation; });
  }

  [[nodiscard]] std::size_t participants() const noexcept { return participants_; }

 private:
  const std::size_t participants_;
  std::size_t waiting_;
  std::size_t generation_;
  std::mutex mutex_;
  std::condition_variable cv_;
};

}  // namespace dlscale::util
