// ASCII table and CSV emission for paper-style result tables.
//
// Every bench binary prints its table/figure series through this so the
// output format is uniform and machine-parsable (the CSV twin of each
// table can be redirected for plotting).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace dlscale::util {

/// Column-aligned ASCII table with an optional title; also serialisable
/// as CSV. Cells are strings; numeric helpers format consistently.
class Table {
 public:
  explicit Table(std::string title = {});

  /// Set the header row. Must be called before any `add_row`.
  void set_header(std::vector<std::string> header);

  /// Append a data row; its size must match the header (checked).
  void add_row(std::vector<std::string> row);

  /// Format a double with `digits` decimal places.
  static std::string num(double value, int digits = 2);

  /// Format an integer.
  static std::string num(long long value);

  /// Format a percentage ("92.0%").
  static std::string pct(double fraction01, int digits = 1);

  /// Render as an aligned ASCII table.
  [[nodiscard]] std::string to_ascii() const;

  /// Render as CSV (header + rows; RFC-4180 quoting for commas/quotes).
  [[nodiscard]] std::string to_csv() const;

  /// Print the ASCII rendering to `stream` (default stdout).
  void print(std::FILE* stream = stdout) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::string& title() const noexcept { return title_; }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dlscale::util
