// Process memory statistics for the benches (peak RSS next to the
// planner's packed-arena bytes, DESIGN.md §10).
#pragma once

#include <cstddef>

namespace dlscale::util {

/// Peak resident set size of this process in bytes (getrusage); 0 when
/// the platform doesn't report it.
[[nodiscard]] std::size_t peak_rss_bytes();

}  // namespace dlscale::util
