// IEEE 754 binary16 conversion (software, round-to-nearest-even).
//
// Backs the HOROVOD_FP16_ALLREDUCE-style gradient compression path:
// gradients are packed to half precision before the allreduce (halving
// wire bytes) and expanded after. Handles subnormals, infinities, NaN,
// and overflow-to-infinity the way hardware converters do.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dlscale::util {

/// Convert a float to IEEE half (round-to-nearest-even).
std::uint16_t float_to_half(float value) noexcept;

/// Convert an IEEE half to float (exact).
float half_to_float(std::uint16_t half) noexcept;

/// Sum two halves in float precision, returning a half.
inline std::uint16_t half_add(std::uint16_t a, std::uint16_t b) noexcept {
  return float_to_half(half_to_float(a) + half_to_float(b));
}

// ---- array sweeps ---------------------------------------------------------
//
// The bulk forms below are what the fusion-buffer pack/unpack in
// hvd::HorovodRuntime calls. When the host has F16C (and util::simd_level()
// allows it) they run 8 lanes at a time; the results are bitwise identical
// to the per-element functions above on every input — vector blocks that
// contain a maximum-exponent lane (inf/NaN, where hardware NaN handling
// differs from the software converter) drop to the scalar twin.

/// dst[i] = float_to_half(src[i])
void floats_to_halves(const float* src, std::uint16_t* dst, std::size_t n);

/// dst[i] = half_to_float(src[i])
void halves_to_floats(const std::uint16_t* src, float* dst, std::size_t n);

/// dst[i] = half_to_float(src[i]) / divisor — the decompress-and-average
/// step of the fp16 allreduce path, fused to avoid a second sweep.
void halves_to_floats_div(const std::uint16_t* src, float* dst, std::size_t n,
                          float divisor);

/// acc[i] = half_add(acc[i], in[i]) — the fp16 allreduce sum reducer.
void halves_add_inplace(std::uint16_t* acc, const std::uint16_t* in,
                        std::size_t n);

}  // namespace dlscale::util
