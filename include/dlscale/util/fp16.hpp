// IEEE 754 binary16 conversion (software, round-to-nearest-even).
//
// Backs the HOROVOD_FP16_ALLREDUCE-style gradient compression path:
// gradients are packed to half precision before the allreduce (halving
// wire bytes) and expanded after. Handles subnormals, infinities, NaN,
// and overflow-to-infinity the way hardware converters do.
#pragma once

#include <cstdint>

namespace dlscale::util {

/// Convert a float to IEEE half (round-to-nearest-even).
std::uint16_t float_to_half(float value) noexcept;

/// Convert an IEEE half to float (exact).
float half_to_float(std::uint16_t half) noexcept;

/// Sum two halves in float precision, returning a half.
inline std::uint16_t half_add(std::uint16_t a, std::uint16_t b) noexcept {
  return float_to_half(half_to_float(a) + half_to_float(b));
}

}  // namespace dlscale::util
