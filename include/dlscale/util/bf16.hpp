// Brain-float16 (bf16) conversion: the truncated-mantissa reduced
// precision used for weight *storage* on the serving path.
//
// bf16 keeps float32's 8-bit exponent and cuts the mantissa to 7 bits, so
// widening is exact (a 16-bit left shift) and narrowing is a single
// round-to-nearest-even of the low 16 mantissa bits. Unlike fp16 there is
// no range change: every float magnitude survives, only precision drops.
// That makes bf16 the natural format for halving model-registry RSS —
// weights are stored as bf16 and widened on load into the fp32 GEMM
// scratch (DESIGN.md §9, "Reduced-precision serving").
//
// Round-trip contract (enforced exhaustively by tests/util/test_bf16.cpp):
// for every 16-bit pattern h, float_to_bf16(bf16_to_float(h)) == h —
// including inf, every NaN payload, subnormals, and both zeros.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dlscale::util {

/// Narrow a float to bf16, round-to-nearest-even. Overflow cannot happen
/// (same exponent range); NaNs truncate with the payload forced nonzero
/// so they stay NaNs.
std::uint16_t float_to_bf16(float value) noexcept;

/// Widen a bf16 to float. Exact for every pattern.
float bf16_to_float(std::uint16_t bf16) noexcept;

// ---- array sweeps ---------------------------------------------------------
//
// Bulk forms used by the checkpoint bf16 writer and the widen-on-load
// path in quantized conv forwards. When the active dispatch level is AVX2
// they run 8 lanes at a time; results are bitwise identical to the
// per-element functions on every input (asserted by the exhaustive
// pattern sweep under both ctest dispatch settings).

/// dst[i] = float_to_bf16(src[i])
void floats_to_bf16s(const float* src, std::uint16_t* dst, std::size_t n);

/// dst[i] = bf16_to_float(src[i])
void bf16s_to_floats(const std::uint16_t* src, float* dst, std::size_t n);

}  // namespace dlscale::util
