// Full-scale workload specifications for the performance simulator.
//
// The paper trains DeepLab-v3+ (Xception-65 backbone, output stride 16,
// 513x513 crops) and cites ResNet-50 (224x224) as the classification
// reference. We describe both as per-layer cost specs: FLOPs forward and
// backward, parameter bytes (= the gradient tensor Horovod must
// allreduce), and activation traffic for the roofline model. Specs are
// generated from the architectures' layer geometry, so parameter counts
// and FLOP totals land on the published numbers (~41M params / ~355
// GFLOPs fwd for DLv3+@513; 25.6M / ~4.1 GFLOPs for RN50@224).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dlscale::models {

/// One gradient-producing layer of a workload.
struct LayerSpec {
  std::string name;
  double fwd_flops = 0.0;        ///< forward FLOPs for the whole per-GPU batch
  double bwd_flops = 0.0;        ///< backward FLOPs (usually ~2x forward)
  std::size_t param_bytes = 0;   ///< gradient size Horovod sees (fp32 bytes)
  double activation_bytes = 0.0; ///< memory traffic proxy for the roofline
};

/// A trainable network described for timing purposes only.
struct WorkloadSpec {
  std::string name;
  int batch_per_gpu = 1;
  int crop = 0;  ///< input resolution (square)
  std::vector<LayerSpec> layers;  ///< in forward order

  [[nodiscard]] double total_fwd_flops() const;
  [[nodiscard]] double total_bwd_flops() const;
  [[nodiscard]] std::size_t total_param_bytes() const;
  [[nodiscard]] std::size_t num_tensors() const noexcept { return layers.size(); }

  /// DeepLab-v3+ with Xception-65 backbone, OS16, 513x513 crops.
  static WorkloadSpec deeplab_v3plus(int batch_per_gpu);

  /// ResNet-50 classification at 224x224.
  static WorkloadSpec resnet50(int batch_per_gpu);
};

}  // namespace dlscale::models
