// Trainable miniature DeepLab-v3+.
//
// Architecturally faithful to the paper's model — encoder with strided +
// atrous convolutions, an ASPP head (1x1 branch, multiple dilated 3x3
// branches, global image pooling), and a decoder that upsamples and fuses
// a low-level skip feature — but sized so a CPU can actually train it on
// the synthetic segmentation dataset (experiment E6, accuracy parity of
// distributed vs serial training).
#pragma once

#include <memory>
#include <vector>

#include "dlscale/nn/layers.hpp"

namespace dlscale::models {

using nn::Parameter;
using tensor::Tensor;

class MiniDeepLabV3Plus {
 public:
  struct Config {
    int in_channels = 3;
    int num_classes = 6;
    int input_size = 48;  ///< square inputs; must be divisible by 8
    int width = 16;       ///< base channel width
    /// Use Xception-style depthwise-separable encoder blocks (the
    /// paper's actual backbone family) instead of plain convolutions.
    bool separable_backbone = false;
  };

  MiniDeepLabV3Plus(Config config, util::Rng& rng);

  /// Logits of shape (N, num_classes, input_size, input_size).
  Tensor forward(const Tensor& images, bool train);

  /// Backprop from d(loss)/d(logits); accumulates parameter gradients and
  /// returns the (unused) input gradient. When `sink` is non-null, streams
  /// backward costs and finalized gradients in exact reverse parameters()
  /// order (see nn::GradSink).
  Tensor backward(const Tensor& grad_logits, nn::GradSink* sink = nullptr);

  /// All learnable parameters in a stable order (same on every rank).
  [[nodiscard]] std::vector<Parameter*> parameters();

  /// Non-learnable state (BatchNorm running stats) for checkpointing.
  [[nodiscard]] std::vector<nn::NamedTensor> buffers();

  [[nodiscard]] std::size_t parameter_count();
  [[nodiscard]] const Config& config() const noexcept { return config_; }

  /// Convert every layer to the target serving precision in place
  /// (nn/quantized.hpp): one-way, inference-only afterwards. Int8
  /// requires a calibration table populated by eval forwards of THIS
  /// model's weights (layer names key the table). Throws without mutating
  /// any layer when preconditions fail before the first conversion;
  /// kFp32 targets and double conversions throw std::logic_error.
  void convert_precision(nn::Precision target,
                         const nn::CalibrationTable* table = nullptr);
  [[nodiscard]] nn::Precision precision() const noexcept { return precision_; }

  /// Total bytes of backward-pass activation caches currently held, across
  /// every sub-layer plus the model-level skip/branch caches. 0 after an
  /// inference-only forward — the invariant serving replicas depend on.
  [[nodiscard]] std::size_t cache_bytes() const;

 private:
  Config config_;
  nn::Precision precision_ = nn::Precision::kFp32;

  // Encoder. Blocks are plain Conv-BN-ReLU or Xception-style separable
  // units depending on config.separable_backbone.
  nn::ConvBnRelu stem_;                  // /2
  std::unique_ptr<nn::Layer> block1_;    // /4  (low-level feature for the decoder)
  std::unique_ptr<nn::Layer> block2_;    // /8
  std::unique_ptr<nn::Layer> block3_;    // /8, dilation 2 (atrous in lieu of stride)

  // ASPP branches.
  nn::ConvBnRelu aspp_1x1_;
  nn::ConvBnRelu aspp_r2_;
  nn::ConvBnRelu aspp_r4_;
  nn::ConvBnRelu aspp_pool_proj_;
  nn::ConvBnRelu aspp_project_;

  // Decoder.
  nn::ConvBnRelu low_level_proj_;
  nn::ConvBnRelu decoder_conv_;
  nn::Conv2d classifier_;

  // Forward caches for the hand-written skip/branch topology (resize and
  // global-pool backwards need their forward inputs).
  Tensor cache_block3_out_;       // ASPP trunk input (global-pool backward)
  Tensor cache_pool_small_;       // pooled+projected 1x1 feature (resize bwd)
  Tensor cache_aspp_out_;         // projected ASPP output (resize backward)
  Tensor cache_logits_small_;     // pre-upsample logits (final resize bwd)
};

}  // namespace dlscale::models
