// Trainable miniature ResNet classifier.
//
// The paper contrasts DeepLab-v3+'s cost with ResNet-50 image
// classification (6.7 vs 300 img/s on one V100). This mini version
// exercises residual connections and global pooling in the real training
// stack, and serves as the classification workload in examples/tests.
#pragma once

#include <vector>

#include "dlscale/nn/layers.hpp"

namespace dlscale::models {

using nn::Parameter;
using tensor::Tensor;

class MiniResNet {
 public:
  struct Config {
    int in_channels = 3;
    int num_classes = 10;
    int input_size = 32;  ///< must be divisible by 4
    int width = 16;
    int blocks_per_stage = 2;
  };

  MiniResNet(Config config, util::Rng& rng);

  /// Class logits of shape (N, num_classes, 1, 1).
  Tensor forward(const Tensor& images, bool train);
  /// Backprop; with a non-null `sink`, streams backward costs and
  /// finalized gradients in exact reverse parameters() order.
  Tensor backward(const Tensor& grad_logits, nn::GradSink* sink = nullptr);
  [[nodiscard]] std::vector<Parameter*> parameters();
  /// Non-learnable state (BatchNorm running stats) for checkpointing.
  [[nodiscard]] std::vector<nn::NamedTensor> buffers();
  [[nodiscard]] std::size_t parameter_count();
  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  /// Basic residual block: out = relu(bn2(conv2(relu_bn_conv1(x))) + skip),
  /// with a projection on the skip when shape changes.
  struct Block {
    nn::ConvBnRelu conv1;
    nn::Conv2d conv2;
    nn::BatchNorm2d bn2;
    nn::ReLU relu_out;
    std::unique_ptr<nn::Conv2d> proj;
    std::unique_ptr<nn::BatchNorm2d> proj_bn;

    Block(const std::string& name, int in_c, int out_c, int stride, util::Rng& rng);
    Tensor forward(const Tensor& x, bool train);
    Tensor backward(const Tensor& grad_out, nn::GradSink* sink);
    std::vector<Parameter*> parameters();
    std::vector<nn::NamedTensor> buffers();
  };

  Config config_;
  nn::ConvBnRelu stem_;
  std::vector<Block> blocks_;
  nn::Conv2d head_;  // 1x1 conv on the pooled feature acts as the FC layer
  Tensor cache_pool_in_;
};

}  // namespace dlscale::models
