// Minimal HTTP/1.1 subset for the serving front-end (DESIGN.md §13).
//
// Exactly what the protocol needs and nothing more: request line +
// headers + Content-Length-framed bodies, keep-alive connection reuse,
// and both directions (the server parses requests and writes responses;
// the tests/bench client writes requests and parses responses with the
// SAME code, so framing bugs cannot hide behind an asymmetric peer).
// No chunked transfer encoding, no pipelining guarantees beyond
// strictly sequential request/response, no TLS.
//
// Parsing is split in two layers: pure functions over complete buffers
// (unit-testable without sockets) and a blocking `Connection` that
// frames messages off a util::Socket using those functions.
#pragma once

#include <cstddef>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "dlscale/util/socket.hpp"

namespace dlscale::http {

/// Thrown by the parsing layer on malformed messages. `status` is the
/// HTTP status the server should answer with (400 bad syntax, 413 body
/// too large, 505 wrong version).
struct HttpError : std::runtime_error {
  HttpError(int status_in, const std::string& what) : std::runtime_error(what), status(status_in) {}
  int status = 400;
};

struct Header {
  std::string name;   ///< as received; compared case-insensitively
  std::string value;  ///< leading/trailing whitespace stripped
};

struct Request {
  std::string method;   ///< "GET", "POST", ...
  std::string target;   ///< origin-form, e.g. "/v1/models/seg:predict"
  std::string version;  ///< "HTTP/1.1"
  std::vector<Header> headers;
  std::string body;

  /// Case-insensitive header lookup; nullptr when absent.
  [[nodiscard]] const std::string* header(std::string_view name) const;
  /// HTTP/1.1 defaults to keep-alive unless "Connection: close".
  [[nodiscard]] bool keep_alive() const;
};

struct Response {
  int status = 200;
  std::string reason;  ///< filled from status when empty
  std::vector<Header> headers;
  std::string body;

  [[nodiscard]] const std::string* header(std::string_view name) const;
};

/// Standard reason phrase for the subset of statuses the server uses.
[[nodiscard]] const char* status_reason(int status);

/// Case-insensitive ASCII comparison (header names, token values).
[[nodiscard]] bool iequals(std::string_view a, std::string_view b);

/// Serializes with Content-Length set from the body. The request form
/// adds "Host: localhost" when absent (clients must send one in 1.1).
[[nodiscard]] std::string serialize(const Request& request);
[[nodiscard]] std::string serialize(const Response& response);

/// Parses a complete head (everything up to but excluding the blank
/// line). Pure; throws HttpError. `head` must not contain "\r\n\r\n".
[[nodiscard]] Request parse_request_head(std::string_view head);
[[nodiscard]] Response parse_response_head(std::string_view head);

/// Content-Length of a parsed head: 0 when absent, throws HttpError on
/// an unparsable value or one above `max_body`.
[[nodiscard]] std::size_t content_length(const std::vector<Header>& headers,
                                         std::size_t max_body);

/// Frames HTTP messages over one socket, buffering leftover bytes
/// between keep-alive messages. Used by server connection threads
/// (read_request/write) and by loopback clients (write/read_response).
class Connection {
 public:
  explicit Connection(util::Socket socket) : socket_(std::move(socket)) {}

  /// Blocks until one full request is framed. Returns nullopt on clean
  /// EOF between messages (client done with keep-alive) and on
  /// recv timeouts/resets; throws HttpError on malformed input.
  [[nodiscard]] std::optional<Request> read_request(std::size_t max_body);
  [[nodiscard]] std::optional<Response> read_response(std::size_t max_body);

  /// Serializes and sends. False when the peer hung up.
  [[nodiscard]] bool write(const Request& request);
  [[nodiscard]] bool write(const Response& response);

  [[nodiscard]] util::Socket& socket() noexcept { return socket_; }

 private:
  /// Reads until `buffer_` holds a full head + body; nullopt on EOF at a
  /// message boundary. Returns {head, body} views materialized.
  [[nodiscard]] std::optional<std::pair<std::string, std::string>> read_message(
      std::size_t max_body);

  util::Socket socket_;
  std::string buffer_;  ///< bytes past the previous message
};

}  // namespace dlscale::http
