// Wire/config DTOs of the HTTP serving protocol (DESIGN.md §13).
//
// Every request body, response body, server config file, and the /stats
// payload is one of these structs, bound to JSON through the field
// lists below (util/json.hpp) — the ONLY per-struct code is the field
// list itself, and it powers read and write both, so the protocol
// cannot skew between directions. from_json is strict: unknown fields
// and wrong-typed values are 400s, not silent drops.
//
// Images and logits travel as a flat float array plus an explicit NCHW
// shape. Floats are written in std::to_chars shortest round-trip form,
// so a logit parsed back out of a response is BITWISE the float the
// worker produced — the loopback tests assert exactly that.
#pragma once

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "dlscale/http/http1.hpp"
#include "dlscale/serve/model_registry.hpp"
#include "dlscale/util/json.hpp"

namespace dlscale::http {

namespace json = util::json;

// ---------------------------------------------------------------------------
// Server + model configuration (the --config file format).
// ---------------------------------------------------------------------------

/// Front-end knobs of HttpServer.
struct HttpConfig {
  int port = 0;          ///< 0 = kernel-assigned ephemeral port
  int backlog = 64;      ///< listen(2) backlog
  std::uint64_t max_body_bytes = 8ull * 1024 * 1024;  ///< 413 above this
  int recv_timeout_ms = 30000;  ///< idle keep-alive cutoff; 0 = forever

  static constexpr auto json_fields() {
    return std::make_tuple(json::field("port", &HttpConfig::port),
                           json::field("backlog", &HttpConfig::backlog),
                           json::field("max_body_bytes", &HttpConfig::max_body_bytes),
                           json::field("recv_timeout_ms", &HttpConfig::recv_timeout_ms));
  }
};

/// Mirror of models::MiniDeepLabV3Plus::Config.
struct ModelArch {
  int in_channels = 3;
  int num_classes = 6;
  int input_size = 48;
  int width = 16;
  bool separable_backbone = false;

  static constexpr auto json_fields() {
    return std::make_tuple(json::field("in_channels", &ModelArch::in_channels),
                           json::field("num_classes", &ModelArch::num_classes),
                           json::field("input_size", &ModelArch::input_size),
                           json::field("width", &ModelArch::width),
                           json::field("separable_backbone", &ModelArch::separable_backbone));
  }
};

/// One registry entry of the config file: a named model, its
/// architecture, its checkpoint, and its serving knobs.
struct ModelSpec {
  std::string name;
  std::string checkpoint;
  int workers = 1;
  int max_batch = 8;
  std::int64_t max_wait_us = 200;
  std::uint64_t queue_capacity = 64;
  std::string precision = "fp32";  ///< fp32 | bf16 | int8
  ModelArch model;

  static constexpr auto json_fields() {
    return std::make_tuple(json::field("name", &ModelSpec::name),
                           json::field("checkpoint", &ModelSpec::checkpoint),
                           json::field("workers", &ModelSpec::workers),
                           json::field("max_batch", &ModelSpec::max_batch),
                           json::field("max_wait_us", &ModelSpec::max_wait_us),
                           json::field("queue_capacity", &ModelSpec::queue_capacity),
                           json::field("precision", &ModelSpec::precision),
                           json::field("model", &ModelSpec::model));
  }
};

/// Root of the server config file: front-end knobs + the model set.
struct ServerSpec {
  HttpConfig http;
  std::vector<ModelSpec> models;

  static constexpr auto json_fields() {
    return std::make_tuple(json::field("http", &ServerSpec::http),
                           json::field("models", &ServerSpec::models));
  }
};

/// "fp32"/"bf16"/"int8" -> Precision; throws std::invalid_argument
/// naming the valid set otherwise.
[[nodiscard]] nn::Precision parse_precision(const std::string& text);

[[nodiscard]] models::MiniDeepLabV3Plus::Config to_model_config(const ModelArch& arch);
[[nodiscard]] ModelArch to_model_arch(const models::MiniDeepLabV3Plus::Config& config);

/// ModelSpec -> the ServeConfig Server wants (validates precision).
[[nodiscard]] serve::ServeConfig to_serve_config(const ModelSpec& spec);
/// Inverse, for round-trip tests and /stats-adjacent introspection.
[[nodiscard]] ModelSpec to_model_spec(const serve::ServeConfig& config,
                                      const std::string& checkpoint);

/// Parses the JSON config file at `path` (throws std::runtime_error on
/// I/O failure, json::Error on bad content).
[[nodiscard]] ServerSpec load_server_spec(const std::string& path);

/// Registers every model of `spec` into `registry` (add_model each).
void register_models(const ServerSpec& spec, serve::ModelRegistry& registry);

// ---------------------------------------------------------------------------
// Wire bodies.
// ---------------------------------------------------------------------------

/// POST /v1/models/{name}:predict request body.
struct PredictRequest {
  std::vector<int> shape;    ///< (C,S,S) or (1,C,S,S)
  std::vector<float> image;  ///< flat NCHW floats, product(shape) entries

  static constexpr auto json_fields() {
    return std::make_tuple(json::field("shape", &PredictRequest::shape),
                           json::field("image", &PredictRequest::image));
  }
};

/// Predict success body (HTTP 200).
struct PredictResponse {
  std::string model;
  int model_version = 0;
  std::string precision = "fp32";
  int batch_size = 0;
  std::vector<int> shape;      ///< logits shape (1, num_classes, S, S)
  std::vector<float> logits;   ///< flat, bitwise round-trip floats
  std::vector<int> labels;     ///< per-pixel argmax, S*S entries
  double queue_us = 0.0;
  double total_us = 0.0;

  static constexpr auto json_fields() {
    return std::make_tuple(json::field("model", &PredictResponse::model),
                           json::field("model_version", &PredictResponse::model_version),
                           json::field("precision", &PredictResponse::precision),
                           json::field("batch_size", &PredictResponse::batch_size),
                           json::field("shape", &PredictResponse::shape),
                           json::field("logits", &PredictResponse::logits),
                           json::field("labels", &PredictResponse::labels),
                           json::field("queue_us", &PredictResponse::queue_us),
                           json::field("total_us", &PredictResponse::total_us));
  }
};

/// POST /v1/models/{name}:reload request body.
struct ReloadRequest {
  std::string checkpoint;
  std::string precision;  ///< "" keeps the model's current QuantizeSpec

  static constexpr auto json_fields() {
    return std::make_tuple(json::field("checkpoint", &ReloadRequest::checkpoint),
                           json::field("precision", &ReloadRequest::precision));
  }
};

/// Reload success body (HTTP 200).
struct ReloadResponse {
  std::string model;
  int model_version = 0;
  std::string precision = "fp32";

  static constexpr auto json_fields() {
    return std::make_tuple(json::field("model", &ReloadResponse::model),
                           json::field("model_version", &ReloadResponse::model_version),
                           json::field("precision", &ReloadResponse::precision));
  }
};

/// Every non-2xx body. `expected_shape`/`got_shape` are filled for
/// shape rejections (serve::ShapeError), `known_models` for 404s.
struct ErrorResponse {
  std::string error;
  std::string model;
  std::vector<int> expected_shape;
  std::vector<int> got_shape;
  std::vector<std::string> known_models;

  static constexpr auto json_fields() {
    return std::make_tuple(json::field("error", &ErrorResponse::error),
                           json::field("model", &ErrorResponse::model),
                           json::field("expected_shape", &ErrorResponse::expected_shape),
                           json::field("got_shape", &ErrorResponse::got_shape),
                           json::field("known_models", &ErrorResponse::known_models));
  }
};

/// GET /healthz body. `status` is "ok" while serving and "draining"
/// from the moment shutdown begins — the load balancer's signal to
/// stop routing here while admitted work finishes.
struct HealthzResponse {
  std::string status = "ok";
  bool accepting = true;
  std::uint64_t models = 0;

  static constexpr auto json_fields() {
    return std::make_tuple(json::field("status", &HealthzResponse::status),
                           json::field("accepting", &HealthzResponse::accepting),
                           json::field("models", &HealthzResponse::models));
  }
};

/// Per-model block of /stats: serve::ServerStats plus the name.
struct ModelStatsJson {
  std::string name;
  std::string precision = "fp32";
  int model_version = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t rejected_full = 0;
  std::uint64_t rejected_closed = 0;
  std::uint64_t completed = 0;
  std::uint64_t batches = 0;
  std::uint64_t reloads = 0;
  std::uint64_t queue_depth = 0;
  std::uint64_t fp32_requests = 0;
  std::uint64_t quantized_requests = 0;
  double mean_batch_size = 0.0;
  double queue_p50_us = 0.0, queue_p95_us = 0.0, queue_p99_us = 0.0;
  double total_p50_us = 0.0, total_p95_us = 0.0, total_p99_us = 0.0;
  double total_mean_us = 0.0, total_max_us = 0.0;

  static constexpr auto json_fields() {
    return std::make_tuple(
        json::field("name", &ModelStatsJson::name),
        json::field("precision", &ModelStatsJson::precision),
        json::field("model_version", &ModelStatsJson::model_version),
        json::field("accepted", &ModelStatsJson::accepted),
        json::field("rejected", &ModelStatsJson::rejected),
        json::field("rejected_full", &ModelStatsJson::rejected_full),
        json::field("rejected_closed", &ModelStatsJson::rejected_closed),
        json::field("completed", &ModelStatsJson::completed),
        json::field("batches", &ModelStatsJson::batches),
        json::field("reloads", &ModelStatsJson::reloads),
        json::field("queue_depth", &ModelStatsJson::queue_depth),
        json::field("fp32_requests", &ModelStatsJson::fp32_requests),
        json::field("quantized_requests", &ModelStatsJson::quantized_requests),
        json::field("mean_batch_size", &ModelStatsJson::mean_batch_size),
        json::field("queue_p50_us", &ModelStatsJson::queue_p50_us),
        json::field("queue_p95_us", &ModelStatsJson::queue_p95_us),
        json::field("queue_p99_us", &ModelStatsJson::queue_p99_us),
        json::field("total_p50_us", &ModelStatsJson::total_p50_us),
        json::field("total_p95_us", &ModelStatsJson::total_p95_us),
        json::field("total_p99_us", &ModelStatsJson::total_p99_us),
        json::field("total_mean_us", &ModelStatsJson::total_mean_us),
        json::field("total_max_us", &ModelStatsJson::total_max_us));
  }
};

/// Front-end block of /stats.
struct FrontendStatsJson {
  int port = 0;
  bool draining = false;
  std::uint64_t connections = 0;
  std::uint64_t requests = 0;
  std::uint64_t http_errors = 0;  ///< 4xx/5xx responses written

  static constexpr auto json_fields() {
    return std::make_tuple(json::field("port", &FrontendStatsJson::port),
                           json::field("draining", &FrontendStatsJson::draining),
                           json::field("connections", &FrontendStatsJson::connections),
                           json::field("requests", &FrontendStatsJson::requests),
                           json::field("http_errors", &FrontendStatsJson::http_errors));
  }
};

/// GET /stats body: the front-end plus one block per model.
struct StatsResponse {
  FrontendStatsJson server;
  std::vector<ModelStatsJson> models;

  static constexpr auto json_fields() {
    return std::make_tuple(json::field("server", &StatsResponse::server),
                           json::field("models", &StatsResponse::models));
  }
};

/// serve::ServerStats -> the /stats per-model block.
[[nodiscard]] ModelStatsJson to_stats_json(const std::string& name,
                                           const serve::ServerStats& stats);

}  // namespace dlscale::http
