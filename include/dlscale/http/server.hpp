// Socket front-end over the multi-model registry (DESIGN.md §13).
//
//   clients --TCP--> accept loop --> connection threads --> route
//        POST /v1/models/{name}:predict  -> registry.find(name)->submit()
//        POST /v1/models/{name}:reload   -> per-model hot-reload
//        GET  /healthz                   -> ok | draining
//        GET  /stats                     -> front-end + per-model JSON
//
// Threading model: one acceptor thread plus one thread per live
// connection (keep-alive: a connection thread serves many sequential
// requests). Thread-per-connection is the right shape here because a
// predict blocks on the model future anyway — parked threads are cheap,
// and the real concurrency limit is the per-model worker pool, not the
// front-end. Connection threads never share mutable state except
// through the counters mutex and the serve-layer's own locks; the whole
// suite runs under the ThreadSanitizer preset (ctest -L http).
//
// Shutdown is drain-shaped, mirroring the serve layer: begin_drain()
// flips /healthz to "draining" (load balancers stop routing), model
// queues close and answer their backlog, and only then does the
// listener die and the connection threads join — so every admitted
// request gets its bytes back before the process goes quiet.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dlscale/http/http1.hpp"
#include "dlscale/http/protocol.hpp"
#include "dlscale/serve/model_registry.hpp"
#include "dlscale/util/socket.hpp"

namespace dlscale::http {

class HttpServer {
 public:
  /// Binds and starts accepting immediately. The registry outlives the
  /// server; models may be added to it while serving. Throws
  /// std::runtime_error when the port cannot be bound.
  explicit HttpServer(serve::ModelRegistry& registry, HttpConfig config = {});
  /// Full shutdown (drain included).
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Actual bound port (the ephemeral one when config.port was 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return listener_.port(); }

  /// True once begin_drain()/shutdown() has started.
  [[nodiscard]] bool draining() const;

  /// Flips /healthz to "draining" without touching the models — phase
  /// one of shutdown, separated out so operators (and tests) can
  /// observe the drain window. Idempotent.
  void begin_drain();

  /// begin_drain + drain every model (admitted requests are answered),
  /// then stop the acceptor, unblock and join every connection thread.
  /// Idempotent. `drain_models=false` leaves the registry running (for
  /// callers that own its lifecycle separately).
  void shutdown(bool drain_models = true);

  /// Front-end counters (the "server" block of /stats).
  [[nodiscard]] FrontendStatsJson frontend_stats() const;

  /// Routes one parsed request to a response — the pure core of the
  /// connection loop, public so routing is unit-testable without
  /// sockets. Does not touch the front-end counters.
  [[nodiscard]] Response handle(const Request& request);

 private:
  struct Conn {
    util::Socket socket;  ///< owned here so shutdown() can unblock it;
                          ///< the thread borrows it via Connection
    std::thread thread;
    bool done = false;  ///< guarded by mutex_
  };

  void accept_loop();
  void connection_loop(Conn* conn);
  void reap_finished_locked();

  Response handle_predict(const std::string& name, const Request& request);
  Response handle_reload(const std::string& name, const Request& request);
  Response handle_healthz();
  Response handle_stats();

  serve::ModelRegistry& registry_;
  HttpConfig config_;
  util::ListenSocket listener_;
  std::thread acceptor_;

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Conn>> conns_;
  bool draining_ = false;
  bool shut_down_ = false;
  std::uint64_t connections_ = 0;
  std::uint64_t requests_ = 0;
  std::uint64_t http_errors_ = 0;
};

/// JSON response helper: serializes `body` with Content-Type set.
template <util::json::Reflected T>
[[nodiscard]] Response json_response(int status, const T& body) {
  Response response;
  response.status = status;
  response.headers.push_back({"Content-Type", "application/json"});
  response.body = util::json::to_json(body);
  return response;
}

}  // namespace dlscale::http
