// Elastic fault-tolerant training (DESIGN.md §11).
//
// ElasticTrainer wraps the Trainer/CommHook stack so a rank failure is a
// recoverable event instead of a crash. The recovery protocol, run by
// every survivor when mpi::RankFailed escapes the epoch loop:
//
//   1. shrink      — survivors collectively rebuild a smaller
//                    communicator (mpi::Communicator::shrink re-densifies
//                    ranks, old relative order preserved);
//   2. agree       — a coordinator round on the NEW communicator: rank 0
//                    gathers every survivor's view (global rank, world
//                    epoch, local progress), decides whether the shared
//                    checkpoint is usable, and broadcasts the decision so
//                    all survivors restore — or restart — in lockstep;
//   3. rebuild     — HorovodHook::rebind constructs a fresh
//                    HorovodRuntime over the shrunken communicator
//                    (current knobs carried over), the Autotuner rebinds
//                    and resets its measurement window, and every
//                    CommHook observes on_world_change(WorldInfo);
//   4. restore     — a fresh Trainer at the new world size loads the last
//                    Trainer::save_state checkpoint (bitwise-identical to
//                    a clean (N-1)-rank load of the same file; progress
//                    counters resume at the checkpointed step), with the
//                    learning rate rescaled linearly to the shrunken
//                    effective batch;
//   5. continue    — the epoch loop re-enters; replayed epochs overwrite
//                    their earlier (pre-failure) reports.
//
// Fail-stop only: a dead rank never comes back; recovery always shrinks.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dlscale/train/trainer.hpp"

namespace dlscale::train {

/// Configuration of an elastic run (wraps the plain TrainConfig).
struct ElasticConfig {
  TrainConfig train;
  /// Checkpoint file rank 0 writes after every `checkpoint_every_epochs`
  /// completed epochs, and every survivor restores from after a failure.
  /// Empty disables checkpointing: recovery then restarts from scratch at
  /// the shrunken world size.
  std::string checkpoint_path;
  int checkpoint_every_epochs = 1;
  /// Rescale the base learning rate linearly with the effective batch
  /// (new_world / initial_world) after a shrink — the standard linear
  /// scaling rule applied in reverse.
  bool rescale_lr = true;
  /// Give up (rethrow RankFailed) after this many recoveries.
  int max_recoveries = 4;
};

/// One recovery, as observed by this rank.
struct RecoveryEvent {
  std::uint64_t world_epoch = 0;   ///< membership epoch after the rebuild
  int failed_global_rank = -1;     ///< from the RankFailed that triggered recovery
  int old_size = 0;
  int new_size = 0;
  long step_at_failure = 0;        ///< this rank's global_step when the failure surfaced
  long resumed_step = 0;           ///< global_step after restore (0 on restart)
  int resumed_epoch = 0;           ///< next_epoch after restore
  bool restored_from_checkpoint = false;
  long steps_replayed = 0;         ///< step_at_failure - resumed_step (work lost)
  double virtual_time_s = 0.0;     ///< communicator clock at recovery completion
  double wall_recovery_s = 0.0;    ///< host wall time spent in the recovery path
};

/// Failure-aware training driver. Collective: every rank of `world`
/// constructs one with the same config and calls run(). Ranks killed by
/// the world's FaultPlan exit cleanly inside run_world; survivors recover
/// and finish the run at the shrunken world size.
class ElasticTrainer {
 public:
  ElasticTrainer(mpi::Communicator& world, ElasticConfig config);

  /// Train to completion through any injected failures (up to
  /// max_recoveries). The returned report holds the final per-epoch
  /// metrics — replayed epochs overwrite pre-failure entries — and is
  /// identical on every surviving rank.
  TrainReport run();

  /// Recoveries this rank performed, in order.
  [[nodiscard]] const std::vector<RecoveryEvent>& recoveries() const noexcept {
    return recoveries_;
  }

  /// The communicator currently underneath the stack (shrinks over time).
  [[nodiscard]] mpi::Communicator& comm() noexcept { return comm_; }
  [[nodiscard]] Trainer& trainer() noexcept { return *trainer_; }

  /// The world-size rescaling rule, exposed so tests and tools can build
  /// the exact config an elastic run uses after shrinking to `new_size`
  /// from `reference_size` ranks: base LR is scaled by new/reference when
  /// rescale_lr is on; everything else is unchanged. Deterministic — the
  /// bitwise checkpoint-restore parity between an elastic run and a fresh
  /// small-world run depends on both sides using this exact config.
  [[nodiscard]] static TrainConfig rescale_for_world(const TrainConfig& config, int new_size,
                                                     int reference_size, bool rescale_lr = true);

 private:
  void build_stack();                 ///< (re)build hook / tuner / trainer over comm_
  [[nodiscard]] CommHook& active_hook();
  void maybe_checkpoint();
  void recover(const mpi::RankFailed& failure);

  ElasticConfig config_;
  int initial_size_;
  mpi::Communicator comm_;            ///< value copy; reassigned by shrink
  std::optional<HorovodHook> hook_;
  std::optional<hvd::Autotuner> tuner_;
  std::optional<AutotuneHook> tuned_;
  std::optional<Trainer> trainer_;
  TrainConfig active_config_;         ///< config_.train rescaled to comm_.size()
  std::map<int, EpochReport> epochs_; ///< by epoch; replays overwrite
  std::vector<RecoveryEvent> recoveries_;
  bool have_checkpoint_ = false;
};

}  // namespace dlscale::train
