// Distributed training driver: the Horovod-style data-parallel loop.
//
// Each rank holds a full model replica (identically initialised from a
// shared seed, exactly like Horovod's broadcast of initial state), draws
// its shard of every epoch through the DistributedSampler, runs
// forward/backward on the real mini DeepLab-v3+, registers every
// parameter gradient with the Horovod runtime, synchronizes (gradient
// averaging), and applies SGD with the poly schedule. Metrics (loss,
// confusion matrix) are reduced across ranks through the same simmpi
// collectives the gradients use.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "dlscale/data/dataset.hpp"
#include "dlscale/hvd/horovod.hpp"
#include "dlscale/models/deeplab.hpp"
#include "dlscale/mpi/comm.hpp"
#include "dlscale/nn/optimizer.hpp"

namespace dlscale::train {

/// Configuration of one training run.
struct TrainConfig {
  models::MiniDeepLabV3Plus::Config model;
  data::SyntheticShapes::Config dataset;
  std::uint64_t train_samples = 256;  ///< dataset size (index space)
  std::uint64_t eval_samples = 64;    ///< held-out indices appended after train
  int batch_per_rank = 4;
  int epochs = 4;
  nn::PolySchedule schedule{0.05, 0.9, 0};  ///< max_iters 0 -> derived from run length
  nn::SgdMomentum::Config optimizer{};
  std::uint64_t seed = 7;  ///< weight init seed
  hvd::Knobs knobs{};
  /// Initialise each rank's replica from a rank-dependent seed, then
  /// broadcast rank-0's parameters through the Horovod core before the
  /// first step — hvd.broadcast_parameters semantics. When false, all
  /// ranks share `seed` directly.
  bool broadcast_initial_state = true;
  /// Apply random flip/translation augmentation to training batches
  /// (DeepLab-recipe style). Deterministic per (rank, epoch, step).
  bool augment = false;
};

/// Per-epoch results (rank-0 view after metric reduction).
struct EpochReport {
  int epoch = 0;
  double train_loss = 0.0;
  double eval_miou = 0.0;
  double eval_pixel_accuracy = 0.0;
};

/// Result of a full run.
struct TrainReport {
  std::vector<EpochReport> epochs;
  std::size_t parameter_count = 0;
  long steps = 0;
  hvd::RuntimeStats hvd_stats;

  [[nodiscard]] double final_miou() const {
    return epochs.empty() ? 0.0 : epochs.back().eval_miou;
  }
};

/// Runs data-parallel training of the mini DeepLab-v3+ on this rank.
/// Collective: every rank of `comm` must call with the same config.
/// The returned report is metric-reduced and identical on all ranks.
TrainReport train_distributed(mpi::Communicator& comm, const TrainConfig& config);

/// Serial reference: equivalent single-process training with global batch
/// = batch_per_rank * world_size (for the parity experiment E6).
TrainReport train_serial(const TrainConfig& config, int equivalent_world);

/// Evaluate a model on the held-out slice; returns (miou, pixel_acc).
std::pair<double, double> evaluate(models::MiniDeepLabV3Plus& model,
                                   const data::SyntheticShapes& dataset,
                                   std::uint64_t first_index, std::uint64_t count,
                                   int batch_size);

}  // namespace dlscale::train
