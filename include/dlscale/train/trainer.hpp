// Unified training driver: one Trainer, pluggable communication.
//
// Each rank holds a full model replica (identically initialised from a
// shared seed, exactly like Horovod's broadcast of initial state), draws
// its shard of every epoch through the DistributedSampler, runs
// forward/backward on the real mini DeepLab-v3+, and applies SGD with the
// poly schedule. Communication is a CommHook strategy: HorovodHook
// streams every finalized gradient out of `model.backward` into the
// Horovod runtime the moment it is ready — in reverse layer order, each
// stamped with a virtual ready time accumulated from per-layer roofline
// backward costs (mirroring perf::profile_iteration) — so negotiation
// and fusion cycles overlap the remaining backward compute in virtual
// time. NoComm is the serial reference: same loop, no communication.
// Metrics (loss, confusion matrix) are reduced through the same simmpi
// collectives the gradients use.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "dlscale/data/dataset.hpp"
#include "dlscale/gpu/device.hpp"
#include "dlscale/hvd/autotune.hpp"
#include "dlscale/hvd/horovod.hpp"
#include "dlscale/models/deeplab.hpp"
#include "dlscale/mpi/comm.hpp"
#include "dlscale/nn/optimizer.hpp"
#include "dlscale/util/arena.hpp"

namespace dlscale::train {

/// Storage strategy for step activations (DESIGN.md §10).
enum class MemoryMode {
  kOwning,   ///< every Tensor owns heap storage (pre-arena behaviour)
  kArena,    ///< activations borrow from a per-trainer bump arena, reset per step
  kPlanned,  ///< kArena + liveness plan: step 1 is traced, packed, and replayed
};

/// Configuration of one training run.
struct TrainConfig {
  models::MiniDeepLabV3Plus::Config model;
  data::SyntheticShapes::Config dataset;
  std::uint64_t train_samples = 256;  ///< dataset size (index space)
  std::uint64_t eval_samples = 64;    ///< held-out indices appended after train
  int batch_per_rank = 4;
  int epochs = 4;
  nn::PolySchedule schedule{0.05, 0.9, 0};  ///< max_iters 0 -> derived from run length
  nn::SgdMomentum::Config optimizer{};
  std::uint64_t seed = 7;  ///< weight init seed
  hvd::Knobs knobs{};
  /// Initialise each rank's replica from a rank-dependent seed, then
  /// broadcast rank-0's parameters through the Horovod core before the
  /// first step — hvd.broadcast_parameters semantics. When false, all
  /// ranks share `seed` directly.
  bool broadcast_initial_state = true;
  /// Apply random flip/translation augmentation to training batches
  /// (DeepLab-recipe style). Deterministic per (rank, epoch, step).
  bool augment = false;
  /// Fraction of V100 peak the backward kernels sustain in the roofline
  /// model that stamps virtual gradient ready times during backward.
  double virtual_flop_efficiency = 0.25;
  /// Online knob autotuning (hvd::Autotuner). When enabled,
  /// train_distributed wraps its HorovodHook in an AutotuneHook; `knobs`
  /// above is the starting point the tuner explores from.
  hvd::AutotuneOptions autotune{};
  /// Activation storage strategy. kPlanned traces the first step, packs a
  /// liveness plan (tensor::MemoryPlanner), and replays it every
  /// subsequent step — zero heap allocations in the steady state. A
  /// changed input shape re-traces automatically. kOwning restores the
  /// pre-arena heap-per-Tensor behaviour (the bitwise-identity baseline).
  MemoryMode memory = MemoryMode::kPlanned;
};

/// Per-epoch results (rank-0 view after metric reduction).
struct EpochReport {
  int epoch = 0;
  double train_loss = 0.0;
  double eval_miou = 0.0;
  double eval_pixel_accuracy = 0.0;
  /// Communication activity of THIS epoch (runtime-counter delta between
  /// the epoch's start and end; TrainReport.hvd_stats stays the lifetime
  /// total). All-zero under NoComm.
  hvd::RuntimeStats comm_stats;
};

/// Result of a full run.
struct TrainReport {
  std::vector<EpochReport> epochs;
  std::size_t parameter_count = 0;
  long steps = 0;
  hvd::RuntimeStats hvd_stats;

  [[nodiscard]] double final_miou() const {
    return epochs.empty() ? 0.0 : epochs.back().eval_miou;
  }
};

/// GradSink that accumulates a virtual backward timeline from per-layer
/// roofline costs and forwards each finalized gradient — stamped with its
/// ready time — to a submit callback. This is what turns `backward` into
/// the staggered, backprop-ordered gradient stream Horovod negotiates
/// over (the real-training analogue of perf::profile_iteration).
class TimedGradStream final : public nn::GradSink {
 public:
  using SubmitFn = std::function<void(nn::Parameter&, double ready_at)>;

  TimedGradStream(gpu::ComputeModel gpu, SubmitFn submit)
      : gpu_(gpu), submit_(std::move(submit)) {}

  /// Rewind the timeline to `start_s` (virtual seconds, typically the
  /// communicator clock) before each backward pass.
  void begin_step(double start_s) {
    start_ = start_s;
    elapsed_ = 0.0;
  }

  void backward_cost(double flops, double bytes_touched) override {
    elapsed_ += gpu_.kernel_time(flops, bytes_touched);
  }

  void grad_ready(nn::Parameter& param) override { submit_(param, start_ + elapsed_); }

  /// Virtual seconds of backward compute accumulated since begin_step.
  [[nodiscard]] double elapsed() const noexcept { return elapsed_; }

 private:
  gpu::ComputeModel gpu_;
  SubmitFn submit_;
  double start_ = 0.0;
  double elapsed_ = 0.0;
};

/// What a communicator rebuild looked like, delivered to every CommHook
/// via on_world_change after an elastic recovery (train::ElasticTrainer)
/// replaces the communicator underneath the hook chain.
struct WorldInfo {
  int old_size = 0;   ///< ranks before the failure
  int new_size = 0;   ///< ranks after shrink
  int my_rank = 0;    ///< this rank's id in the rebuilt communicator
  std::uint64_t world_epoch = 0;  ///< mpi::Communicator::world_epoch() after the rebuild
};

/// Communication strategy plugged into the Trainer — the public extension
/// point for anything that needs to observe or act on the training step
/// stream. The Trainer drives exactly this per-step lifecycle:
///
///   1. on_step_begin() — before model.backward. Returns the GradSink the
///      backward pass streams into, or nullptr when no streaming is
///      wanted (serial training).
///   2. on_gradient(param, ready_at) — once per finalized parameter
///      gradient, in backprop (reverse-parameters()) order, stamped with
///      the virtual time the gradient became available. Delivered by the
///      sink the hook returned from on_step_begin.
///   3. on_step_end() — after backward returns. Drains outstanding
///      communication; on return every param.grad holds the
///      world-averaged value.
///
/// Implementations: HorovodHook (data-parallel gradient averaging),
/// NoComm (serial reference), AutotuneHook (decorator adding online knob
/// tuning at step boundaries). Decorators forward all callbacks to the
/// wrapped hook; note the inner hook's own sink delivers gradients to the
/// inner hook directly, so a decorator that must see every gradient
/// should wrap the sink returned by the inner on_step_begin as well.
class CommHook {
 public:
  virtual ~CommHook() = default;

  [[nodiscard]] virtual int rank() const = 0;
  [[nodiscard]] virtual int size() const = 0;

  /// Distribute rank-0's parameter values to all ranks (hvd.broadcast).
  virtual void broadcast_parameters(const std::vector<nn::Parameter*>& params) = 0;

  /// Sink for the upcoming backward pass, or nullptr when gradients need
  /// no streaming. Called once per step, before model.backward.
  virtual nn::GradSink* on_step_begin() = 0;

  /// One finalized parameter gradient, ready at virtual time `ready_at`.
  virtual void on_gradient(nn::Parameter& param, double ready_at) = 0;

  /// Drain outstanding gradient traffic (hvd.synchronize); after this the
  /// parameter grads hold the world-averaged values.
  virtual void on_step_end() = 0;

  virtual void allreduce_sum(std::span<double> values) = 0;
  virtual void allreduce_sum(std::span<std::int64_t> values) = 0;

  [[nodiscard]] virtual hvd::RuntimeStats stats() const = 0;

  /// The world was rebuilt (elastic recovery after a rank failure).
  /// Default no-op so existing hooks compile unchanged; decorators must
  /// forward it down the chain. Any state keyed to the old world size or
  /// clock — measurement windows, cached rank/size, per-rank buffers —
  /// must be reset here. Collective: every survivor must call it, in the
  /// same order relative to other collectives, because implementations
  /// may resynchronise state over the new communicator (AutotuneHook
  /// re-broadcasts the tuner's knobs from rank 0).
  virtual void on_world_change(const WorldInfo& /*info*/) {}
};

/// Serial (no communication) hook: world of one, everything a no-op.
class NoComm final : public CommHook {
 public:
  [[nodiscard]] int rank() const override { return 0; }
  [[nodiscard]] int size() const override { return 1; }
  void broadcast_parameters(const std::vector<nn::Parameter*>&) override {}
  nn::GradSink* on_step_begin() override { return nullptr; }
  void on_gradient(nn::Parameter&, double) override {}
  void on_step_end() override {}
  void allreduce_sum(std::span<double>) override {}
  void allreduce_sum(std::span<std::int64_t>) override {}
  [[nodiscard]] hvd::RuntimeStats stats() const override { return {}; }
};

/// Data-parallel hook over the Horovod runtime: on_step_begin rewinds a
/// TimedGradStream to the communicator clock; the stream delivers each
/// finalized gradient to on_gradient, which submits {name, grad, bytes,
/// staggered ready_at} to the runtime; on_step_end synchronizes
/// (gradient averaging).
class HorovodHook final : public CommHook {
 public:
  HorovodHook(mpi::Communicator& comm, const TrainConfig& config);

  [[nodiscard]] int rank() const override;
  [[nodiscard]] int size() const override;
  void broadcast_parameters(const std::vector<nn::Parameter*>& params) override;
  nn::GradSink* on_step_begin() override;
  void on_gradient(nn::Parameter& param, double ready_at) override;
  void on_step_end() override;
  void allreduce_sum(std::span<double> values) override;
  void allreduce_sum(std::span<std::int64_t> values) override;
  [[nodiscard]] hvd::RuntimeStats stats() const override;

  /// Re-point the hook at a rebuilt (shrunken) communicator: constructs a
  /// fresh HorovodRuntime over it, carrying the current knobs forward
  /// (so autotuned settings survive the failure). The caller owns firing
  /// on_world_change afterwards; anything holding a reference to
  /// runtime() must rebind too (hvd::Autotuner::rebind).
  void rebind(mpi::Communicator& comm);

  /// Drop the gradient-compression residuals (DESIGN.md §12): they carry
  /// error scaled to the OLD world's averaging weights and the pre-restore
  /// parameter trajectory, so replaying them after an elastic shrink or a
  /// checkpoint restore would bias the first post-recovery steps. rebind()
  /// already starts from a fresh runtime (empty residuals); this makes the
  /// reset explicit for world changes that reuse the runtime.
  void on_world_change(const WorldInfo& info) override;

  [[nodiscard]] hvd::HorovodRuntime& runtime() noexcept { return *runtime_; }
  [[nodiscard]] mpi::Communicator& comm() noexcept { return *comm_; }

 private:
  // Pointer + optional (not reference + value) so rebind() can retarget
  // both after an elastic shrink.
  mpi::Communicator* comm_;
  std::optional<hvd::HorovodRuntime> runtime_;
  TimedGradStream stream_;
};

/// Decorator adding online knob tuning to any CommHook: forwards every
/// callback to the wrapped hook, then feeds each completed step to the
/// Autotuner, which re-tunes the underlying runtime at measurement-window
/// boundaries. Composes rather than specializes — the Trainer sees one
/// CommHook either way.
class AutotuneHook final : public CommHook {
 public:
  AutotuneHook(CommHook& inner, hvd::Autotuner& tuner) : inner_(inner), tuner_(tuner) {}

  [[nodiscard]] int rank() const override { return inner_.rank(); }
  [[nodiscard]] int size() const override { return inner_.size(); }
  void broadcast_parameters(const std::vector<nn::Parameter*>& params) override {
    inner_.broadcast_parameters(params);
  }
  nn::GradSink* on_step_begin() override { return inner_.on_step_begin(); }
  void on_gradient(nn::Parameter& param, double ready_at) override {
    inner_.on_gradient(param, ready_at);
  }
  void on_step_end() override {
    inner_.on_step_end();
    tuner_.step_end();
  }
  void allreduce_sum(std::span<double> values) override { inner_.allreduce_sum(values); }
  void allreduce_sum(std::span<std::int64_t> values) override { inner_.allreduce_sum(values); }
  [[nodiscard]] hvd::RuntimeStats stats() const override { return inner_.stats(); }
  void on_world_change(const WorldInfo& info) override {
    // Order matters: the inner hook rebuilds its runtime state first, then
    // the tuner restarts its measurement window against the new runtime
    // (the caller has already called tuner().rebind()).
    inner_.on_world_change(info);
    tuner_.on_world_change();
  }

  [[nodiscard]] hvd::Autotuner& tuner() noexcept { return tuner_; }

 private:
  CommHook& inner_;
  hvd::Autotuner& tuner_;
};

/// One data-parallel training run on this rank. Collective when driven by
/// a HorovodHook: every rank constructs a Trainer over the same config
/// and calls the same methods in the same order.
class Trainer {
 public:
  Trainer(const TrainConfig& config, CommHook& hook);

  /// One optimisation step (forward, streamed backward, gradient
  /// averaging, SGD update) at learning rate `lr`; returns the loss.
  float train_step(const data::Sample& batch, double lr);

  /// One epoch: the rank's train shard, metric reduction, distributed
  /// evaluation of the held-out slice. Appends to the report.
  EpochReport train_epoch();

  /// Train the remaining epochs (all of them on a fresh Trainer; the
  /// leftover after load_state on a restored one) and return the report.
  TrainReport run();

  /// Checkpoint the full training state — parameters, BatchNorm running
  /// stats, SGD momentum, step/epoch counters — so a restored Trainer
  /// continues bitwise-identically to an uninterrupted run.
  void save_state(const std::string& path);
  void load_state(const std::string& path);

  [[nodiscard]] models::MiniDeepLabV3Plus& model() noexcept { return model_; }
  [[nodiscard]] const TrainReport& report() const noexcept { return report_; }
  [[nodiscard]] long global_step() const noexcept { return global_step_; }
  [[nodiscard]] long steps_per_epoch() const noexcept { return steps_per_epoch_; }
  [[nodiscard]] int next_epoch() const noexcept { return next_epoch_; }

  /// Arena backing the step activations (kArena/kPlanned modes). Under
  /// kPlanned, step_arena().plan() exposes the installed liveness plan —
  /// packed peak vs naive sum — once a step has been traced.
  [[nodiscard]] const util::Arena& step_arena() const noexcept { return step_arena_; }

 private:
  [[nodiscard]] std::vector<nn::NamedTensor> state_tensors();
  /// Forward + loss + streamed backward + comm drain for one batch. All
  /// Tensor locals die inside, so a traced run records their releases.
  float step_body(const data::Sample& batch);

  TrainConfig config_;
  CommHook& hook_;
  models::MiniDeepLabV3Plus model_;
  nn::SgdMomentum optimizer_;
  data::SyntheticShapes dataset_;
  data::DistributedSampler sampler_;
  nn::PolySchedule schedule_;
  long steps_per_epoch_ = 0;
  long global_step_ = 0;
  int next_epoch_ = 0;
  tensor::Tensor progress_;  ///< {global_step, next_epoch} for checkpoints
  TrainReport report_;
  util::Arena step_arena_;    ///< activation storage for train_step
  util::Arena eval_arena_;    ///< bump arena for eval forwards, reset per batch
  tensor::Shape traced_shape_;  ///< batch shape the installed plan covers
};

/// DEPRECATED compatibility shim — prefer composing a Trainer with a
/// CommHook directly (HorovodHook, optionally wrapped in AutotuneHook);
/// see README "Training API". Kept as a thin wrapper because existing
/// benches/tests call it; behaviour is unchanged. Runs data-parallel
/// training of the mini DeepLab-v3+ on this rank (honouring
/// config.autotune). Collective: every rank of `comm` must call with the
/// same config. The returned report is metric-reduced and identical on
/// all ranks.
TrainReport train_distributed(mpi::Communicator& comm, const TrainConfig& config);

/// DEPRECATED compatibility shim — prefer `Trainer` over a `NoComm` hook
/// (see README "Training API"). Serial reference: equivalent
/// single-process training with global batch = batch_per_rank *
/// world_size (for the parity experiment E6).
TrainReport train_serial(const TrainConfig& config, int equivalent_world);

/// Evaluate a model on the held-out slice; returns (miou, pixel_acc).
std::pair<double, double> evaluate(models::MiniDeepLabV3Plus& model,
                                   const data::SyntheticShapes& dataset,
                                   std::uint64_t first_index, std::uint64_t count,
                                   int batch_size);

}  // namespace dlscale::train
