// Checkpoint serialisation for named tensors (model parameters, BatchNorm
// running stats, optimizer state, trainer progress).
//
// Simple self-describing binary format: magic, tensor count, then per
// tensor {name, shape, float data}. Loading validates names and shapes
// against the live tensors so a mismatched architecture fails loudly.
#pragma once

#include <string>
#include <vector>

#include "dlscale/nn/layers.hpp"

namespace dlscale::train {

/// Write all tensors to `path` in list order. Throws std::runtime_error on
/// I/O error.
void save_tensors(const std::vector<nn::NamedTensor>& tensors, const std::string& path);

/// Load tensors from `path` into the live storage (names, order and shapes
/// must match exactly). Throws on mismatch or I/O error.
void load_tensors(const std::vector<nn::NamedTensor>& tensors, const std::string& path);

/// Parameter-only convenience wrappers over save_tensors/load_tensors
/// (identical on-disk format).
void save_checkpoint(const std::vector<nn::Parameter*>& params, const std::string& path);
void load_checkpoint(const std::vector<nn::Parameter*>& params, const std::string& path);

/// Inference-state wrappers: parameters followed by buffers (BatchNorm
/// running stats), no optimizer state. What a trained model hands to the
/// serving layer, and what serve::ModelRegistry loads into its replicas.
/// Loading mutates tensors in file order before a mismatch is detected —
/// callers wanting atomicity load into standby storage and swap.
void save_model(const std::vector<nn::Parameter*>& params,
                const std::vector<nn::NamedTensor>& buffers, const std::string& path);
void load_model(const std::vector<nn::Parameter*>& params,
                const std::vector<nn::NamedTensor>& buffers, const std::string& path);

}  // namespace dlscale::train
