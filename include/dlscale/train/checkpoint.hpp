// Checkpoint serialisation for named tensors (model parameters, BatchNorm
// running stats, optimizer state, trainer progress).
//
// Simple self-describing binary format: magic, tensor count, then per
// tensor {name, shape, float data}. Loading validates names and shapes
// against the live tensors so a mismatched architecture fails loudly.
//
// Two on-disk formats, distinguished by a versioned header:
//   v1 (fp32)  [magic][count]...            — the original layout; every
//              file ever written by fp32 saves, byte-identical today.
//   v2 (bf16)  [magic][0xFFFFFFFF][version=2][dtype][count]... — tensor
//              payloads stored as bf16 (round-to-nearest-even), half the
//              bytes. The 0xFFFFFFFF sentinel can never be a real v1
//              tensor count, so old files load unchanged and loaders
//              auto-detect. Loading a bf16 file widens exactly
//              (bf16 -> fp32 is lossless); format errors name the
//              expected vs found format/version.
#pragma once

#include <string>
#include <vector>

#include "dlscale/nn/layers.hpp"

namespace dlscale::train {

/// On-disk tensor storage format.
enum class CheckpointFormat { kFp32 = 0, kBf16 = 1 };

/// "fp32" / "bf16" — for logs and error messages.
const char* checkpoint_format_name(CheckpointFormat format) noexcept;

/// Storage format of the file at `path`, from its header alone. Throws on
/// I/O error, bad magic, or an unsupported version.
CheckpointFormat peek_checkpoint_format(const std::string& path);

/// Write all tensors to `path` in list order. Throws std::runtime_error on
/// I/O error. kFp32 writes the legacy v1 layout byte-for-byte; kBf16
/// writes the v2 header and narrows every value round-to-nearest-even.
void save_tensors(const std::vector<nn::NamedTensor>& tensors, const std::string& path,
                  CheckpointFormat format = CheckpointFormat::kFp32);

/// Load tensors from `path` into the live storage (names, order and shapes
/// must match exactly), auto-detecting the storage format from the
/// header. Throws on mismatch or I/O error.
void load_tensors(const std::vector<nn::NamedTensor>& tensors, const std::string& path);

/// Parameter-only convenience wrappers over save_tensors/load_tensors
/// (identical on-disk format).
void save_checkpoint(const std::vector<nn::Parameter*>& params, const std::string& path);
void load_checkpoint(const std::vector<nn::Parameter*>& params, const std::string& path);

/// Inference-state wrappers: parameters followed by buffers (BatchNorm
/// running stats), no optimizer state. What a trained model hands to the
/// serving layer, and what serve::ReplicaRegistry loads into its replicas.
/// Loading mutates tensors in file order before a mismatch is detected —
/// callers wanting atomicity load into standby storage and swap.
void save_model(const std::vector<nn::Parameter*>& params,
                const std::vector<nn::NamedTensor>& buffers, const std::string& path,
                CheckpointFormat format = CheckpointFormat::kFp32);
void load_model(const std::vector<nn::Parameter*>& params,
                const std::vector<nn::NamedTensor>& buffers, const std::string& path);

}  // namespace dlscale::train
