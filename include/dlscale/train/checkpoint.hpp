// Checkpoint serialisation for model parameters.
//
// Simple self-describing binary format: magic, parameter count, then per
// parameter {name, shape, float data}. Loading validates names and shapes
// against the live model so a mismatched architecture fails loudly.
#pragma once

#include <string>
#include <vector>

#include "dlscale/nn/layers.hpp"

namespace dlscale::train {

/// Write all parameters to `path`. Throws std::runtime_error on I/O error.
void save_checkpoint(const std::vector<nn::Parameter*>& params, const std::string& path);

/// Load parameters from `path` into the live model (names and shapes must
/// match exactly). Throws on mismatch or I/O error.
void load_checkpoint(const std::vector<nn::Parameter*>& params, const std::string& path);

}  // namespace dlscale::train
