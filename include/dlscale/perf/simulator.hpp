// Performance simulator: distributed training iterations at paper scale.
//
// Combines (a) a per-layer compute timeline derived from a WorkloadSpec
// and the V100 roofline model with (b) the real Horovod negotiation /
// fusion / collective machinery running in timing mode over simmpi. The
// compute and communication timelines overlap exactly the way Horovod's
// background thread overlaps them: gradients enter negotiation at their
// backprop-order ready times, and an iteration ends when both the
// compute stream and the last fused allreduce have finished.
//
// Calibration (DESIGN.md section 5) is confined to one constant per
// workload family: the sustained fraction of V100 fp32 peak. These are
// fitted to the paper's single-GPU anchors (6.7 img/s for DLv3+, 300
// img/s for ResNet-50); everything else — scaling curves, efficiency
// deltas, knob sensitivity — is *derived*, never fitted.
#pragma once

#include <string>
#include <vector>

#include "dlscale/gpu/device.hpp"
#include "dlscale/hvd/autotune.hpp"
#include "dlscale/hvd/horovod.hpp"
#include "dlscale/models/workload.hpp"
#include "dlscale/mpi/comm.hpp"
#include "dlscale/net/profile.hpp"

namespace dlscale::perf {

/// Workload-family calibration constants (fraction of fp32 peak).
struct Calibration {
  double deeplab_efficiency;
  double resnet_efficiency;

  /// Constants fitted to the paper's single-GPU throughput anchors.
  static Calibration paper_defaults();
};

/// Compute timeline of one training iteration on one GPU.
struct IterationProfile {
  double fwd_s = 0.0;
  double bwd_s = 0.0;
  double optimizer_s = 0.0;
  /// Per gradient tensor, in backprop emission order (last layer first):
  std::vector<std::string> grad_names;
  std::vector<std::size_t> grad_bytes;
  std::vector<double> grad_ready_s;  ///< offset from iteration start

  [[nodiscard]] double compute_total_s() const { return fwd_s + bwd_s + optimizer_s; }
};

/// Derive the compute timeline from a workload spec. Gradients are
/// emitted in reverse layer order as their layers' backward kernels
/// retire.
IterationProfile profile_iteration(const models::WorkloadSpec& workload,
                                   const gpu::ComputeModel& gpu);

/// Single-GPU training throughput (img/s) — no communication at all.
double single_gpu_throughput(const models::WorkloadSpec& workload, double flop_efficiency);

/// Degraded-cluster scenario injected into a simulation. All scenarios
/// are seed-deterministic: the same config simulates the same run.
enum class ScenarioMode {
  kNone,        ///< healthy steady state (the default)
  kPreemption,  ///< `scenario_rank` is killed mid-run; survivors shrink
                ///< the communicator, rebuild the runtime, and continue
  kStraggler,   ///< `scenario_rank` computes `straggler_factor` slower;
                ///< synchronous training pays the max over ranks
  kNodeFlap,    ///< `scenario_rank`'s links drop (and retransmit) inside
                ///< a virtual-time window — a flapping NIC, not a death
};

/// One distributed-training simulation configuration.
struct ScalingConfig {
  models::WorkloadSpec workload;
  net::MpiProfile mpi_profile;
  hvd::Knobs knobs;
  int nodes = 1;              ///< Summit topology: 6 GPUs per node
  double flop_efficiency = 0.2;
  int warmup_iterations = 1;  ///< cache-warming iterations (excluded)
  int iterations = 3;         ///< measured steady-state iterations
  /// Per-rank, per-iteration multiplicative compute noise (stddev as a
  /// fraction of compute time). Real GPUs jitter 1-3% from clocks, ECC,
  /// input pipeline; synchronous data-parallel training pays the MAX over
  /// ranks each iteration, a loss that grows with scale. 0 disables.
  double compute_jitter = 0.02;
  std::uint64_t jitter_seed = 2020;
  /// Online knob tuning before measurement: after warmup, an
  /// hvd::Autotuner explores from `knobs` until it freezes (or
  /// max_tuning_iterations is hit, at which point it is frozen on the
  /// best seen); the measured iterations then run on the converged knobs.
  hvd::AutotuneOptions autotune{};
  int max_tuning_iterations = 256;
  /// Fault scenario (see ScenarioMode). The victim is `scenario_rank`.
  ScenarioMode scenario = ScenarioMode::kNone;
  int scenario_rank = 1;
  /// kPreemption: the victim dies at this iteration attempt, counted
  /// across warmup, tuning, and measurement (each attempt is one
  /// FaultPlan tick).
  int preempt_at_iteration = 2;
  /// kStraggler: multiplier on the victim's per-iteration compute time.
  double straggler_factor = 2.0;
  /// kNodeFlap: per-message drop probability on the victim's links, and
  /// the virtual-time window the flap is active in (negative bounds mean
  /// unbounded on that side). Drops are lost-and-retransmitted — latency,
  /// never data loss.
  double flap_drop_prob = 0.3;
  double flap_from_s = -1.0;
  double flap_until_s = -1.0;
  std::uint64_t scenario_seed = 0xF1A6ull;
};

/// Result of one simulated configuration.
struct ScalingResult {
  int gpus = 0;
  double iteration_s = 0.0;       ///< mean steady-state iteration time
  double images_per_s = 0.0;      ///< aggregate throughput
  double per_gpu_images_s = 0.0;
  double scaling_efficiency = 0.0;  ///< vs the same workload on 1 GPU
  double comm_overhead_s = 0.0;     ///< iteration_s - pure compute time
  hvd::RuntimeStats hvd_stats;      ///< rank 0's runtime counters
  bool autotuned = false;           ///< config.autotune.enabled
  hvd::Knobs tuned_knobs;           ///< knobs the measured iterations ran on
  int tuning_iterations = 0;        ///< iterations spent tuning (unmeasured)
  int final_gpus = 0;               ///< world size at the end (shrinks under kPreemption)
  int failures = 0;                 ///< rank failures recovered from
  int recovery_iterations = 0;      ///< iteration attempts lost to failures
  double recovery_virtual_s = 0.0;  ///< virtual time burned by failed attempts + rebuilds
};

/// Simulate `config.iterations` steady-state training iterations on a
/// Summit-shaped cluster and report throughput/efficiency.
ScalingResult simulate(const ScalingConfig& config);

}  // namespace dlscale::perf
