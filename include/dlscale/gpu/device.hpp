// Simulated GPU device: performance envelope + device-memory buffers.
//
// The repository has no CUDA; "device memory" is host memory tagged with
// MemSpace::kDevice so the communication stack exercises its GPU-buffer
// code paths (GDR vs staging), and kernel/copy *times* come from a
// roofline-style model of the V100 as deployed in Summit AC922 nodes
// (NVLink2-attached CPUs, so host<->device copies run far above PCIe3).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace dlscale::gpu {

/// Static performance envelope of one GPU.
struct DeviceSpec {
  std::string name;
  double peak_fp32_flops = 1.0;      ///< FLOP/s
  double mem_bandwidth_Bps = 1.0;    ///< HBM2 sustained bandwidth
  double kernel_launch_s = 0.0;      ///< per-kernel launch + driver overhead
  double h2d_bandwidth_Bps = 1.0;    ///< host->device copy bandwidth
  double d2h_bandwidth_Bps = 1.0;    ///< device->host copy bandwidth
  double d2d_bandwidth_Bps = 1.0;    ///< on-device memcpy bandwidth
  double copy_latency_s = 0.0;       ///< per-copy setup cost
  std::size_t memory_bytes = 0;      ///< device memory capacity

  /// V100-SXM3 16 GB as integrated in Summit (NVLink2 CPU attach).
  static DeviceSpec v100_summit();
};

enum class CopyKind { kHostToDevice, kDeviceToHost, kDeviceToDevice };

/// Prices kernels and copies against a DeviceSpec. `flop_efficiency` is
/// the fraction of peak a workload's kernels sustain (cuDNN conv kernels
/// land in 0.3-0.6 on V100 depending on layer geometry); it is the single
/// calibration constant per workload family (DESIGN.md section 5).
class ComputeModel {
 public:
  ComputeModel(DeviceSpec spec, double flop_efficiency);

  /// Roofline time for a kernel doing `flops` arithmetic over
  /// `bytes_touched` of memory traffic, plus launch overhead.
  [[nodiscard]] double kernel_time(double flops, double bytes_touched) const noexcept;

  /// Time for an explicit copy of `bytes`.
  [[nodiscard]] double copy_time(std::size_t bytes, CopyKind kind) const noexcept;

  [[nodiscard]] const DeviceSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] double flop_efficiency() const noexcept { return flop_efficiency_; }

 private:
  DeviceSpec spec_;
  double flop_efficiency_;
};

/// A simulated device allocation: byte storage tagged as device memory.
/// Typed access is via spans; element type is the caller's contract.
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  explicit DeviceBuffer(std::size_t bytes) : storage_(bytes) {}

  [[nodiscard]] std::size_t size_bytes() const noexcept { return storage_.size(); }
  [[nodiscard]] bool empty() const noexcept { return storage_.empty(); }

  [[nodiscard]] std::span<std::byte> bytes() noexcept { return storage_; }
  [[nodiscard]] std::span<const std::byte> bytes() const noexcept { return storage_; }

  /// View the buffer as `T`s; `size_bytes()` must be a multiple of sizeof(T).
  template <typename T>
  [[nodiscard]] std::span<T> as() noexcept {
    return {reinterpret_cast<T*>(storage_.data()), storage_.size() / sizeof(T)};
  }
  template <typename T>
  [[nodiscard]] std::span<const T> as() const noexcept {
    return {reinterpret_cast<const T*>(storage_.data()), storage_.size() / sizeof(T)};
  }

  void resize(std::size_t bytes) { storage_.resize(bytes); }

 private:
  std::vector<std::byte> storage_;
};

}  // namespace dlscale::gpu
