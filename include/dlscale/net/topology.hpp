// Cluster topology description in the shape of ORNL Summit.
//
// Summit nodes (IBM AC922) carry 6 NVIDIA V100 GPUs, 3 per POWER9 socket,
// connected intra-socket by NVLink2 and cross-socket by the X-bus; nodes
// are joined by dual-rail EDR InfiniBand. Rank placement is block order
// (ranks 0..G-1 on node 0, etc.), matching how jsrun lays out one rank
// per GPU. The paper scales to 132 GPUs = 22 nodes x 6.
#pragma once

#include <stdexcept>
#include <string>

namespace dlscale::net {

/// Classification of the path between two ranks; each class has its own
/// latency/bandwidth in the MPI profile.
enum class HopClass {
  kSelf,         ///< same rank (loopback memcpy)
  kIntraSocket,  ///< same node, same socket: NVLink2 peer path
  kInterSocket,  ///< same node, across sockets: X-bus path
  kInterNode,    ///< different nodes: InfiniBand
};

/// Returns a printable name for a hop class.
const char* to_string(HopClass hop) noexcept;

/// Immutable cluster shape: `nodes` x `gpus_per_node` ranks, block placement.
class Topology {
 public:
  Topology(int nodes, int gpus_per_node, int gpus_per_socket);

  /// Summit-shaped topology: 6 GPUs per node, 3 per socket.
  static Topology summit(int nodes) { return Topology(nodes, 6, 3); }

  /// Single-node topology with `gpus` ranks all on one socket (useful for
  /// tests exercising pure NVLink behaviour).
  static Topology single_node(int gpus) { return Topology(1, gpus, gpus); }

  [[nodiscard]] int nodes() const noexcept { return nodes_; }
  [[nodiscard]] int gpus_per_node() const noexcept { return gpus_per_node_; }
  [[nodiscard]] int gpus_per_socket() const noexcept { return gpus_per_socket_; }
  [[nodiscard]] int world_size() const noexcept { return nodes_ * gpus_per_node_; }

  /// Node index hosting `rank`.
  [[nodiscard]] int node_of(int rank) const {
    check_rank(rank);
    return rank / gpus_per_node_;
  }

  /// Rank's index within its node (the "local rank" in Horovod terms).
  [[nodiscard]] int local_rank(int rank) const {
    check_rank(rank);
    return rank % gpus_per_node_;
  }

  /// Socket index (within the node) of a local rank.
  [[nodiscard]] int socket_of_local(int local) const { return local / gpus_per_socket_; }

  /// Classify the path between two ranks.
  [[nodiscard]] HopClass hop(int a, int b) const;

  /// True when both ranks share a node.
  [[nodiscard]] bool same_node(int a, int b) const { return node_of(a) == node_of(b); }

  [[nodiscard]] std::string describe() const;

 private:
  void check_rank(int rank) const {
    if (rank < 0 || rank >= world_size()) {
      throw std::out_of_range("Topology: rank " + std::to_string(rank) + " outside world of " +
                              std::to_string(world_size()));
    }
  }

  int nodes_;
  int gpus_per_node_;
  int gpus_per_socket_;
};

}  // namespace dlscale::net
