// Point-to-point transfer pricing and NIC contention.
//
// The cost model prices a single message between two ranks given a
// topology and an MPI profile; the contention tracker serialises
// concurrent inter-node transfers on each node's finite set of IB rails.
// Collective times are NOT priced here — collectives are executed as real
// algorithms over point-to-point messages in dlscale::mpi, so their cost
// emerges from these primitives (which is what makes algorithm/knob
// ablations meaningful).
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "dlscale/net/profile.hpp"
#include "dlscale/net/topology.hpp"

namespace dlscale::net {

/// Memory space of a communication buffer. Device buffers route through
/// the profile's GPU path (GDR or staging); host buffers take plain links.
enum class MemSpace { kHost, kDevice };

/// Breakdown of one priced transfer.
struct TransferCost {
  double setup_s = 0.0;     ///< alpha-type costs (latency + per-op overheads)
  double wire_s = 0.0;      ///< NIC/link occupancy time
  /// Additional end-to-end pipeline delay beyond the wire: a host-staged
  /// device transfer is rate-limited by the staging pipeline, but the NIC
  /// itself is only busy for the wire portion (other processes' staged
  /// copies overlap).
  double pipeline_extra_s = 0.0;
  bool inter_node = false;  ///< true when the transfer occupies IB rails
  bool striped = false;     ///< true when it stripes across all rails

  [[nodiscard]] double total() const noexcept { return setup_s + wire_s + pipeline_extra_s; }
};

/// Prices transfers; immutable and shareable between ranks.
class CostModel {
 public:
  CostModel(Topology topology, MpiProfile profile);

  /// Full price of moving `bytes` from `src` to `dst` buffers in `space`.
  [[nodiscard]] TransferCost message(int src, int dst, std::size_t bytes, MemSpace space) const;

  /// Alpha-only price (used for zero-byte control messages, handshakes).
  [[nodiscard]] double control_latency(int src, int dst) const;

  /// True when the profile's rendezvous protocol applies at this size.
  [[nodiscard]] bool is_rendezvous(std::size_t bytes, MemSpace space) const noexcept;

  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }
  [[nodiscard]] const MpiProfile& profile() const noexcept { return profile_; }

 private:
  Topology topology_;
  MpiProfile profile_;
};

/// Tracks when each node's IB rails are busy so that concurrent inter-node
/// transfers from/to the same node queue behind each other. This is the
/// mechanism that makes flat allreduce across 6 ranks/node slower than
/// hierarchical allreduce with one leader per node.
///
/// Rails hold sorted busy-interval lists so that reservations can
/// *backfill* earlier gaps: ranks are threads that reach their sends in
/// arbitrary real-time order, and without backfill a late-scheduled
/// thread would queue behind bookings that happen later in virtual time.
/// Zero-duration (control) messages never consume rail capacity.
/// Intervals older than a sliding window behind the latest booking are
/// pruned. Thread-safe.
class NicContention {
 public:
  NicContention(int nodes, int rails);

  /// Reserve rail time on both endpoints' NICs for a transfer that becomes
  /// ready at `ready_s` and serialises for `wire_s` seconds. When `striped`
  /// the transfer occupies every rail on both nodes. Returns completion
  /// time. Intra-node transfers must not call this.
  double reserve(int src_node, int dst_node, double ready_s, double wire_s, bool striped);

  /// Forget all reservations (between benchmark repetitions).
  void reset();

 private:
  struct Rail {
    // Sorted, non-overlapping [start, end) busy intervals.
    std::vector<std::pair<double, double>> busy;
  };

  /// Earliest start >= `ready` at which `rail` has a free gap of `wire`.
  static double earliest_gap(const Rail& rail, double ready, double wire);
  /// Earliest start >= `ready` free on every rail in `rails` for `wire`.
  static double earliest_common_gap(const std::vector<const Rail*>& rails, double ready,
                                    double wire);
  static void insert(Rail& rail, double start, double wire);
  void prune(double horizon);

  int rails_;
  std::vector<std::vector<Rail>> rail_state_;  // [node][rail]
  double max_end_ = 0.0;
  std::mutex mutex_;
};

}  // namespace dlscale::net
