// MPI library performance profiles.
//
// The paper compares IBM Spectrum MPI (Summit's default) against
// MVAPICH2-GDR for GPU-buffer communication. We model each library as a
// profile: per-hop-class alpha-beta link parameters, protocol thresholds
// (eager/rendezvous), and the GPU-buffer path (GPUDirect-RDMA direct to
// the NIC vs a pipelined staging copy through host bounce buffers). The
// numbers are calibrated to public OSU micro-benchmark results for the
// two libraries on Summit-class hardware (see DESIGN.md section 2); what
// matters for reproduction is their *relationship*, which drives every
// crossover in the paper's figures.
#pragma once

#include <cstddef>
#include <string>

#include "dlscale/net/topology.hpp"

namespace dlscale::net {

/// Alpha-beta parameters of one link class.
struct LinkParams {
  double latency_s = 0.0;       ///< per-message latency (alpha)
  double bandwidth_Bps = 1.0;   ///< sustained bandwidth (1/beta)

  /// Time to move `bytes` over this link, excluding protocol overheads.
  [[nodiscard]] double time(std::size_t bytes) const noexcept {
    return latency_s + static_cast<double>(bytes) / bandwidth_Bps;
  }
};

/// Which allreduce algorithm a library picks for a message size.
enum class AllreduceAlgo { kRecursiveDoubling, kRabenseifner, kRing };

/// A complete library model. Two factory instances are provided; tests and
/// ablation benches mutate copies to isolate individual effects.
struct MpiProfile {
  std::string name;

  // --- point-to-point protocol ---
  std::size_t eager_threshold_host = 64 << 10;    ///< below: eager, above: rendezvous
  std::size_t eager_threshold_device = 8 << 10;   ///< same, for GPU buffers
  double per_op_overhead_s = 1.5e-6;              ///< software cost per MPI call
  double rendezvous_handshake_s = 2.0e-6;         ///< extra RTS/CTS round for rendezvous

  // --- GPU-buffer path ---
  bool cuda_aware = true;              ///< can pass device pointers at all
  double device_op_overhead_s = 5e-6;  ///< extra per-op cost for device buffers
  std::size_t gdr_limit = 32 << 10;    ///< GPUDirect RDMA used up to this size
  double staging_bandwidth_Bps = 2.5e9;  ///< pipelined D2H->wire->H2D effective bw
  double staging_overhead_s = 20e-6;     ///< per-message staging setup cost

  // --- links ---
  LinkParams self{3e-7, 300e9};     ///< local copy (device memcpy class)
  LinkParams nvlink{3e-6, 45e9};    ///< intra-socket NVLink2 peer path
  LinkParams xbus{5e-6, 26e9};      ///< inter-socket path
  LinkParams ib{1.8e-6, 12.0e9};    ///< inter-node, per EDR rail
  int rails = 1;                    ///< usable IB rails per node
  std::size_t rail_stripe_min = 1 << 20;  ///< stripe across rails at/above this size

  // --- reduction arithmetic ---
  double reduce_bw_device_Bps = 150e9;  ///< on-GPU elementwise-reduce throughput
  double reduce_bw_host_Bps = 8e9;      ///< host (CPU) elementwise-reduce throughput
  bool staged_reduce_on_host = true;    ///< staged device path reduces on the host

  // --- collective algorithm selection ---
  std::size_t small_allreduce_max = 16 << 10;  ///< <=: recursive doubling
  std::size_t ring_allreduce_min = 512 << 10;  ///< >=: ring; between: Rabenseifner
  /// Libraries whose GPU-buffer collectives were not bandwidth-optimal
  /// (Spectrum circa 2019) never pick the pipelined ring for device
  /// buffers and fall back to Rabenseifner-style exchanges.
  bool device_ring_allreduce = true;

  /// Algorithm the library would select for an allreduce of `bytes`.
  [[nodiscard]] AllreduceAlgo allreduce_algo(std::size_t bytes) const noexcept {
    if (bytes <= small_allreduce_max) return AllreduceAlgo::kRecursiveDoubling;
    if (bytes >= ring_allreduce_min) return AllreduceAlgo::kRing;
    return AllreduceAlgo::kRabenseifner;
  }

  /// Minimum per-rank ring segment; below it the ring's 2(P-1) alpha
  /// terms dominate and real libraries' rank-aware tuning tables switch
  /// away from it.
  std::size_t min_ring_chunk = 8 << 10;

  /// Space-aware selection: device buffers may be barred from the ring.
  [[nodiscard]] AllreduceAlgo allreduce_algo(std::size_t bytes, bool device) const noexcept {
    return allreduce_algo(bytes, device, 1);
  }

  /// Space- and scale-aware selection (what the tuning tables do).
  [[nodiscard]] AllreduceAlgo allreduce_algo(std::size_t bytes, bool device,
                                             int world) const noexcept {
    AllreduceAlgo algo = allreduce_algo(bytes);
    if (algo == AllreduceAlgo::kRing && world > 1 &&
        bytes / static_cast<std::size_t>(world) < min_ring_chunk) {
      algo = AllreduceAlgo::kRabenseifner;
    }
    if (device && !device_ring_allreduce && algo == AllreduceAlgo::kRing) {
      // The library's GPU path never reaches the pipelined topology-aware
      // ring; large device buffers take halving/doubling exchanges, the
      // pattern behind the large-message gap observed between Spectrum
      // and MVAPICH2-GDR on GPU-buffer allreduce.
      algo = AllreduceAlgo::kRabenseifner;
    }
    return algo;
  }

  /// IBM Spectrum MPI as shipped on Summit circa 2019: CUDA-aware, but the
  /// GPU path stages through host bounce buffers beyond small messages and
  /// uses one rail per transfer.
  static MpiProfile spectrum_like();

  /// MVAPICH2-GDR 2.3.x: aggressive GPUDirect-RDMA with pipelined large-
  /// message path near wire speed, lower device-op overheads, dual-rail
  /// striping.
  static MpiProfile mvapich2_gdr_like();

  /// An idealised zero-cost network (useful for isolating compute time and
  /// for functional tests that should not depend on timing).
  static MpiProfile ideal();
};

}  // namespace dlscale::net
