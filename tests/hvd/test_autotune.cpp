// Online autotuner mechanics: RuntimeStats window arithmetic, staged
// knob application at cycle boundaries, deterministic tuning policies,
// and the collective decision protocol — every rank always runs the same
// knobs, however skewed their gradient ready times are.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "dlscale/hvd/autotune.hpp"
#include "dlscale/net/topology.hpp"
#include "dlscale/util/rng.hpp"

namespace dh = dlscale::hvd;
namespace dm = dlscale::mpi;
namespace dn = dlscale::net;

namespace {

dm::WorldOptions summit(int nodes, bool timing = true) {
  dm::WorldOptions options;
  options.topology = dn::Topology::summit(nodes);
  options.profile = dn::MpiProfile::mvapich2_gdr_like();
  options.timing = timing;
  return options;
}

struct ScopedEnv {
  std::string name;
  ScopedEnv(const std::string& n, const std::string& value) : name(n) {
    ::setenv(n.c_str(), value.c_str(), 1);
  }
  ~ScopedEnv() { ::unsetenv(name.c_str()); }
};

}  // namespace

TEST(RuntimeStats, SnapshotsSubtractIntoWindowDeltas) {
  dh::RuntimeStats later;
  later.cycles = 10;
  later.tensors_negotiated = 40;
  later.fused_batches = 8;
  later.cache_hit_cycles = 3;
  later.bytes_reduced = 1 << 20;
  later.control_bytes = 2048;
  later.stall_warnings = 1;
  dh::RuntimeStats earlier;
  earlier.cycles = 4;
  earlier.tensors_negotiated = 16;
  earlier.fused_batches = 3;
  earlier.cache_hit_cycles = 1;
  earlier.bytes_reduced = 1 << 18;
  earlier.control_bytes = 512;

  const dh::RuntimeStats delta = later - earlier;
  EXPECT_EQ(delta.cycles, 6u);
  EXPECT_EQ(delta.tensors_negotiated, 24u);
  EXPECT_EQ(delta.fused_batches, 5u);
  EXPECT_EQ(delta.cache_hit_cycles, 2u);
  EXPECT_EQ(delta.bytes_reduced, (1u << 20) - (1u << 18));
  EXPECT_EQ(delta.control_bytes, 1536u);
  EXPECT_EQ(delta.stall_warnings, 1u);

  dh::RuntimeStats in_place = later;
  in_place -= earlier;
  EXPECT_EQ(in_place.cycles, delta.cycles);
  EXPECT_EQ(in_place.bytes_reduced, delta.bytes_reduced);
}

TEST(Knobs, FromEnvReadsStallCheckTimelineAndForcedAlgo) {
  ScopedEnv stall("HOROVOD_STALL_CHECK", "42");
  ScopedEnv timeline("HOROVOD_TIMELINE", "/tmp/trace.json");
  ScopedEnv algo("DLSCALE_ALLREDUCE_ALGO", "recursive_doubling");
  const auto knobs = dh::Knobs::from_env();
  EXPECT_EQ(knobs.stall_warning_cycles, 42u);
  EXPECT_TRUE(knobs.timeline);
  ASSERT_TRUE(knobs.algo.has_value());
  EXPECT_EQ(*knobs.algo, dm::AllreduceAlgo::kRecursiveDoubling);
}

TEST(Knobs, FromEnvAutoAlgoKeepsSizeBasedSelection) {
  ScopedEnv algo("DLSCALE_ALLREDUCE_ALGO", "auto");
  dh::Knobs defaults;
  defaults.algo = dm::AllreduceAlgo::kRing;
  const auto knobs = dh::Knobs::from_env(defaults);
  EXPECT_FALSE(knobs.algo.has_value());
}

TEST(Knobs, FromEnvStallCheckZeroDisables) {
  ScopedEnv stall("HOROVOD_STALL_CHECK", "0");
  const auto knobs = dh::Knobs::from_env();
  EXPECT_EQ(knobs.stall_warning_cycles, 0u);
}

TEST(HorovodRuntime, SetKnobsAppliesAtNextCycleBoundary) {
  dm::run_world(1, [](dm::Communicator& comm) {
    dh::Knobs narrow;
    narrow.fusion_threshold = 1;  // every tensor launches alone
    narrow.cycle_time_s = 1e-4;
    narrow.response_cache = false;
    dh::HorovodRuntime runtime(comm, narrow);

    std::array<std::vector<float>, 3> grads;
    auto submit_all = [&] {
      for (int t = 0; t < 3; ++t) {
        grads[static_cast<std::size_t>(t)].assign(8, static_cast<float>(t + 1));
        runtime.submit({"grad." + std::to_string(t), grads[static_cast<std::size_t>(t)]});
      }
    };
    submit_all();
    runtime.synchronize();
    EXPECT_EQ(runtime.stats().fused_batches, 3u);

    dh::Knobs wide = narrow;
    wide.fusion_threshold = 64 << 20;
    runtime.set_knobs(wide);
    // Staged, not applied: no cycle has run since.
    EXPECT_TRUE(runtime.knob_change_pending());
    EXPECT_EQ(runtime.knobs().fusion_threshold, 1u);

    runtime.reset_stats();
    submit_all();
    runtime.synchronize();
    // The first cycle of the new step applied the staged knobs; all three
    // tensors now fuse into one launch.
    EXPECT_FALSE(runtime.knob_change_pending());
    EXPECT_EQ(runtime.knobs().fusion_threshold, std::size_t{64} << 20);
    EXPECT_EQ(runtime.stats().fused_batches, 1u);
  });
}

namespace {

// Separable synthetic cost surface with its optimum inside the default
// tuning space: 8 MiB fusion, 3.5 ms cycle, hierarchical on.
double synthetic_score(const dh::Knobs& knobs) {
  double score = 1.0;
  score += 0.1 * std::abs(std::log2(static_cast<double>(knobs.fusion_threshold) /
                                    static_cast<double>(std::size_t{8} << 20)));
  score += 100.0 * std::abs(knobs.cycle_time_s - 3.5e-3);
  score += knobs.hierarchical_allreduce ? 0.0 : 0.15;
  return score;
}

dh::WindowMeasurement measure(const dh::Knobs& knobs) {
  dh::WindowMeasurement measurement;
  measurement.knobs = knobs;
  measurement.score = synthetic_score(knobs);
  measurement.steps = 1;
  return measurement;
}

}  // namespace

TEST(CoordinateDescentPolicy, FindsOptimumOfSeparableSurface) {
  dh::CoordinateDescentPolicy policy(dh::Knobs::horovod_defaults(), dh::TuningSpace{}, 0.02);
  int proposals = 0;
  while (const auto candidate = policy.propose()) {
    ASSERT_LT(++proposals, 100) << "policy does not terminate";
    policy.observe(measure(*candidate));
  }
  EXPECT_EQ(policy.best().fusion_threshold, std::size_t{8} << 20);
  EXPECT_NEAR(policy.best().cycle_time_s, 3.5e-3, 1e-12);
  EXPECT_TRUE(policy.best().hierarchical_allreduce);
  // Converged: stays done.
  EXPECT_FALSE(policy.propose().has_value());
}

TEST(CoordinateDescentPolicy, ProposalSequenceIsDeterministic) {
  dh::CoordinateDescentPolicy a(dh::Knobs::horovod_defaults(), dh::TuningSpace{}, 0.02);
  dh::CoordinateDescentPolicy b(dh::Knobs::horovod_defaults(), dh::TuningSpace{}, 0.02);
  for (int i = 0; i < 50; ++i) {
    const auto ca = a.propose();
    const auto cb = b.propose();
    ASSERT_EQ(ca.has_value(), cb.has_value()) << "proposal " << i;
    if (!ca) break;
    EXPECT_EQ(ca->fusion_threshold, cb->fusion_threshold);
    EXPECT_DOUBLE_EQ(ca->cycle_time_s, cb->cycle_time_s);
    EXPECT_EQ(ca->hierarchical_allreduce, cb->hierarchical_allreduce);
    a.observe(measure(*ca));
    b.observe(measure(*cb));
  }
}

TEST(CoordinateDescentPolicy, TuningNeverTouchesDataAffectingKnobs) {
  dh::Knobs base;
  base.fp16_allreduce = true;
  base.algo = dm::AllreduceAlgo::kRecursiveDoubling;
  base.response_cache = false;
  dh::CoordinateDescentPolicy policy(base, dh::TuningSpace{}, 0.02);
  while (const auto candidate = policy.propose()) {
    // Candidates explore fusion/cycle/hierarchical only; fp16, the forced
    // algorithm, and the cache setting ride along unchanged.
    EXPECT_TRUE(candidate->fp16_allreduce);
    ASSERT_TRUE(candidate->algo.has_value());
    EXPECT_EQ(*candidate->algo, dm::AllreduceAlgo::kRecursiveDoubling);
    EXPECT_FALSE(candidate->response_cache);
    policy.observe(measure(*candidate));
  }
}

TEST(GridSearchPolicy, SweepsTheWholeGridAndPicksTheArgmin) {
  dh::TuningSpace space;
  dh::GridSearchPolicy policy(dh::Knobs::horovod_defaults(), space);
  std::size_t proposals = 0;
  while (const auto candidate = policy.propose()) {
    ++proposals;
    policy.observe(measure(*candidate));
  }
  EXPECT_EQ(proposals, space.combinations());
  EXPECT_EQ(policy.best().fusion_threshold, std::size_t{8} << 20);
  EXPECT_NEAR(policy.best().cycle_time_s, 3.5e-3, 1e-12);
  EXPECT_TRUE(policy.best().hierarchical_allreduce);
}

TEST(Autotuner, SurrogateCostRewardsFusionAndCaching) {
  dh::RuntimeStats many_launches;
  many_launches.fused_batches = 283;
  many_launches.cycles = 300;
  many_launches.bytes_reduced = 200 << 20;
  many_launches.control_bytes = 400 << 10;
  dh::RuntimeStats few_launches = many_launches;
  few_launches.fused_batches = 5;
  few_launches.control_bytes = 40 << 10;
  few_launches.cache_hit_cycles = 250;
  EXPECT_LT(dh::Autotuner::surrogate_step_cost(few_launches, 4),
            dh::Autotuner::surrogate_step_cost(many_launches, 4));
}

TEST(Autotuner, AllRanksAgreeOnActiveKnobsUnderSkewedReadyTimes) {
  dm::run_world(summit(1), [](dm::Communicator& comm) {  // 6 ranks, timing on
    dh::Knobs base;
    base.cycle_time_s = 5e-4;
    dh::HorovodRuntime runtime(comm, base);

    dh::AutotuneOptions options;
    options.enabled = true;
    options.window_steps = 2;
    options.space.fusion_thresholds = {1 << 20, 8 << 20};
    options.space.cycle_times_s = {5e-4, 2e-3};
    options.space.hierarchical = {false, true};
    dh::Autotuner tuner(runtime, options);

    constexpr int kTensors = 4;
    std::array<std::vector<float>, kTensors> grads;
    dlscale::util::Rng rng(2020 + static_cast<std::uint64_t>(comm.rank()));

    auto run_step = [&] {
      const double t0 = comm.now();
      // Heavily rank-skewed ready times: each rank's gradients become
      // available at very different virtual moments, so ranks would pick
      // different knobs if any of them tuned locally.
      const double skew = 3e-4 * static_cast<double>(comm.rank());
      for (int t = 0; t < kTensors; ++t) {
        auto& grad = grads[static_cast<std::size_t>(t)];
        grad.assign(256, static_cast<float>(rng.uniform(-1.0, 1.0)));
        runtime.submit({"grad." + std::to_string(t), grad, 0, t0 + skew + 1e-4 * t});
      }
      runtime.synchronize();
      tuner.step_end();
    };

    auto check_agreement = [&] {
      const std::array<double, 3> mine{static_cast<double>(tuner.active().fusion_threshold),
                                       tuner.active().cycle_time_s,
                                       tuner.active().hierarchical_allreduce ? 1.0 : 0.0};
      std::vector<std::byte> all(sizeof(mine) * static_cast<std::size_t>(comm.size()));
      comm.allgather(std::as_bytes(std::span<const double>(mine)), all);
      const auto* fingerprints = reinterpret_cast<const double*>(all.data());
      for (int r = 0; r < comm.size(); ++r) {
        for (int k = 0; k < 3; ++k) {
          ASSERT_EQ(fingerprints[k], fingerprints[3 * r + k])
              << "rank " << r << " disagrees on knob " << k;
        }
      }
    };

    int steps = 0;
    while (!tuner.frozen() && steps < 60) {
      run_step();
      ++steps;
      check_agreement();
    }
    EXPECT_TRUE(tuner.frozen()) << "small space must converge within 60 steps";

    // Frozen means frozen: more steps never change the active knobs.
    const dh::Knobs frozen_knobs = tuner.active();
    for (int i = 0; i < 3; ++i) run_step();
    EXPECT_EQ(tuner.active().fusion_threshold, frozen_knobs.fusion_threshold);
    EXPECT_DOUBLE_EQ(tuner.active().cycle_time_s, frozen_knobs.cycle_time_s);
    EXPECT_EQ(tuner.active().hierarchical_allreduce, frozen_knobs.hierarchical_allreduce);
    check_agreement();
  });
}

TEST(Autotuner, FreezeSwitchesEveryRankToTheBestKnobs) {
  dm::run_world(summit(1), [](dm::Communicator& comm) {
    dh::Knobs base;
    base.cycle_time_s = 1e-3;
    dh::HorovodRuntime runtime(comm, base);
    dh::AutotuneOptions options;
    options.enabled = true;
    options.window_steps = 1;
    dh::Autotuner tuner(runtime, options);

    std::vector<float> grad(64, 1.0f);
    // A handful of tuning steps, then an external freeze mid-search (the
    // simulator does this when its tuning budget runs out).
    for (int step = 0; step < 4; ++step) {
      runtime.submit({"grad", grad});
      runtime.synchronize();
      tuner.step_end();
    }
    EXPECT_FALSE(tuner.frozen());
    tuner.freeze();
    EXPECT_TRUE(tuner.frozen());
    tuner.freeze();  // idempotent
    EXPECT_TRUE(tuner.frozen());
  });
}

// ---- compression as a fourth tuning axis (opt-in, DESIGN.md §12) ----

namespace {

// Codec-aware synthetic surface: the optimum keeps the separable
// fusion/cycle/hierarchy optimum above and prefers int8 on the wire.
double codec_score(const dh::Knobs& knobs) {
  double score = synthetic_score(knobs);
  switch (knobs.effective_compression()) {
    case dh::CompressionAlgo::kInt8: break;  // cheapest
    case dh::CompressionAlgo::kFp16: score += 0.05; break;
    case dh::CompressionAlgo::kNone: score += 0.2; break;
    case dh::CompressionAlgo::kTopK: score += 0.4; break;  // EF lag hurts
  }
  return score;
}

dh::WindowMeasurement measure_codec(const dh::Knobs& knobs) {
  dh::WindowMeasurement measurement;
  measurement.knobs = knobs;
  measurement.score = codec_score(knobs);
  measurement.steps = 1;
  return measurement;
}

dh::TuningSpace codec_space() {
  dh::TuningSpace space;
  space.compressions = {dh::CompressionAlgo::kNone, dh::CompressionAlgo::kFp16,
                        dh::CompressionAlgo::kInt8, dh::CompressionAlgo::kTopK};
  return space;
}

}  // namespace

TEST(CoordinateDescentPolicy, ExploresCompressionAxisWhenOptedIn) {
  dh::CoordinateDescentPolicy policy(dh::Knobs::horovod_defaults(), codec_space(), 0.02);
  int proposals = 0;
  while (const auto candidate = policy.propose()) {
    ASSERT_LT(++proposals, 200) << "policy does not terminate";
    policy.observe(measure_codec(*candidate));
  }
  EXPECT_EQ(policy.best().effective_compression(), dh::CompressionAlgo::kInt8);
  // The codec candidate owns the wire format outright: the legacy fp16
  // flag must be cleared, not layered under the chosen codec.
  EXPECT_FALSE(policy.best().fp16_allreduce);
  // The other axes still find the separable optimum.
  EXPECT_EQ(policy.best().fusion_threshold, std::size_t{8} << 20);
  EXPECT_TRUE(policy.best().hierarchical_allreduce);
}

TEST(CoordinateDescentPolicy, EmptyCompressionAxisNeverProposesCodecs) {
  // Default TuningSpace: tuning stays bitwise-invariant — no candidate
  // may flip the wire codec or the fp16 flag.
  dh::Knobs base = dh::Knobs::horovod_defaults();
  dh::CoordinateDescentPolicy policy(base, dh::TuningSpace{}, 0.02);
  while (const auto candidate = policy.propose()) {
    EXPECT_EQ(candidate->compression, dh::CompressionAlgo::kNone);
    EXPECT_FALSE(candidate->fp16_allreduce);
    policy.observe(measure(*candidate));
  }
}

TEST(GridSearchPolicy, GridCoversCompressionAxis) {
  const dh::TuningSpace space = codec_space();
  dh::GridSearchPolicy policy(dh::Knobs::horovod_defaults(), space);
  std::size_t proposals = 0;
  std::size_t int8_candidates = 0;
  while (const auto candidate = policy.propose()) {
    ++proposals;
    if (candidate->compression == dh::CompressionAlgo::kInt8) ++int8_candidates;
    policy.observe(measure_codec(*candidate));
  }
  EXPECT_EQ(proposals, space.combinations());
  // Every (fusion, cycle, hierarchy) cell is visited once per codec.
  EXPECT_EQ(int8_candidates, space.combinations() / space.compressions.size());
  EXPECT_EQ(policy.best().effective_compression(), dh::CompressionAlgo::kInt8);
}

TEST(Autotuner, SurrogateCostPricesWireBytesNotLogicalBytes) {
  // Two windows reduce the SAME logical gradient volume; the compressed
  // one moved 4x fewer bytes on the wire and must cost less.
  dh::RuntimeStats fp32;
  fp32.fused_batches = 10;
  fp32.cycles = 20;
  fp32.bytes_reduced = 64 << 20;
  fp32.bytes_on_wire = 64 << 20;
  dh::RuntimeStats int8 = fp32;
  int8.bytes_on_wire = 16 << 20;
  EXPECT_LT(dh::Autotuner::surrogate_step_cost(int8, 4),
            dh::Autotuner::surrogate_step_cost(fp32, 4));
}
