// Functional behaviour of the Horovod core: submitted tensors are
// averaged across ranks regardless of fusion/caching/hierarchy settings,
// out-of-order submission is negotiated correctly, and the knobs map
// from HOROVOD_* environment variables.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <vector>

#include "dlscale/hvd/horovod.hpp"
#include "dlscale/util/rng.hpp"

namespace dh = dlscale::hvd;
namespace dm = dlscale::mpi;
namespace dn = dlscale::net;

namespace {

dm::WorldOptions summit(int nodes, bool timing = true) {
  dm::WorldOptions options;
  options.topology = dn::Topology::summit(nodes);
  options.profile = dn::MpiProfile::mvapich2_gdr_like();
  options.timing = timing;
  return options;
}

std::vector<float> rank_values(int rank, std::size_t n, std::uint64_t seed) {
  dlscale::util::Rng rng(seed + static_cast<std::uint64_t>(rank));
  std::vector<float> data(n);
  for (auto& x : data) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return data;
}

std::vector<float> averaged(int world, std::size_t n, std::uint64_t seed) {
  std::vector<float> acc(n, 0.0f);
  for (int r = 0; r < world; ++r) {
    const auto v = rank_values(r, n, seed);
    for (std::size_t i = 0; i < n; ++i) acc[i] += v[i];
  }
  for (auto& x : acc) x /= static_cast<float>(world);
  return acc;
}

struct ScopedEnv {
  std::string name;
  ScopedEnv(const std::string& n, const std::string& value) : name(n) {
    ::setenv(n.c_str(), value.c_str(), 1);
  }
  ~ScopedEnv() { ::unsetenv(name.c_str()); }
};

}  // namespace

TEST(Knobs, DefaultsMatchPaperEraHorovod) {
  const auto knobs = dh::Knobs::horovod_defaults();
  EXPECT_EQ(knobs.fusion_threshold, std::size_t{64} << 20);
  EXPECT_NEAR(knobs.cycle_time_s, 5e-3, 1e-9);
  EXPECT_FALSE(knobs.hierarchical_allreduce);
  // The response cache did not exist in the Horovod Summit deployed.
  EXPECT_FALSE(knobs.response_cache);
}

TEST(Knobs, PaperTunedEnablesHierarchy) {
  const auto knobs = dh::Knobs::paper_tuned();
  EXPECT_TRUE(knobs.hierarchical_allreduce);
  EXPECT_LT(knobs.cycle_time_s, 5e-3);
}

TEST(Knobs, FromEnvReadsHorovodVariables) {
  ScopedEnv fusion("HOROVOD_FUSION_THRESHOLD", "8388608");
  ScopedEnv cycle("HOROVOD_CYCLE_TIME", "2.5");
  ScopedEnv hier("HOROVOD_HIERARCHICAL_ALLREDUCE", "1");
  ScopedEnv cache("HOROVOD_CACHE_CAPACITY", "0");
  const auto knobs = dh::Knobs::from_env();
  EXPECT_EQ(knobs.fusion_threshold, std::size_t{8} << 20);
  EXPECT_NEAR(knobs.cycle_time_s, 2.5e-3, 1e-9);
  EXPECT_TRUE(knobs.hierarchical_allreduce);
  EXPECT_FALSE(knobs.response_cache);
}

TEST(Knobs, FromEnvFallsBackToDefaults) {
  const auto knobs = dh::Knobs::from_env(dh::Knobs::paper_tuned());
  EXPECT_TRUE(knobs.hierarchical_allreduce);
}

class HvdConfigs : public ::testing::TestWithParam<std::tuple<bool, bool, std::size_t>> {};

TEST_P(HvdConfigs, AveragesAcrossRanks) {
  const auto [hierarchical, cache, fusion] = GetParam();
  dh::Knobs knobs;
  knobs.hierarchical_allreduce = hierarchical;
  knobs.response_cache = cache;
  knobs.fusion_threshold = fusion;
  knobs.cycle_time_s = 1e-4;

  dm::run_world(summit(2), [&, knobs](dm::Communicator& comm) {
    dh::HorovodRuntime runtime(comm, knobs);
    // Three iterations so the response cache engages.
    for (int iter = 0; iter < 3; ++iter) {
      const std::uint64_t seed = 100 * (iter + 1);
      auto g1 = rank_values(comm.rank(), 300, seed);
      auto g2 = rank_values(comm.rank(), 50, seed + 7);
      auto g3 = rank_values(comm.rank(), 1000, seed + 13);
      runtime.submit({"grad/conv1", std::span<float>(g1), 0, 0.0});
      runtime.submit({"grad/bn1", std::span<float>(g2), 0, 0.0});
      runtime.submit({"grad/conv2", std::span<float>(g3), 0, 0.0});
      runtime.synchronize();
      const auto want1 = averaged(comm.size(), 300, seed);
      const auto want2 = averaged(comm.size(), 50, seed + 7);
      const auto want3 = averaged(comm.size(), 1000, seed + 13);
      for (std::size_t i = 0; i < want1.size(); ++i) ASSERT_NEAR(g1[i], want1[i], 1e-5);
      for (std::size_t i = 0; i < want2.size(); ++i) ASSERT_NEAR(g2[i], want2[i], 1e-5);
      for (std::size_t i = 0; i < want3.size(); ++i) ASSERT_NEAR(g3[i], want3[i], 1e-5);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, HvdConfigs,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                       ::testing::Values(std::size_t{1},          // per-tensor launches
                                         std::size_t{600},        // partial fusion
                                         std::size_t{64} << 20)),  // everything fuses
    [](const auto& param_info) {
      return std::string(std::get<0>(param_info.param) ? "Hier" : "Flat") +
             (std::get<1>(param_info.param) ? "Cache" : "NoCache") + "_f" +
             std::to_string(std::get<2>(param_info.param));
    });

TEST(Horovod, OutOfOrderSubmissionAcrossRanks) {
  // Ranks submit the same tensors in different orders; the coordinator
  // must still produce one consistent execution order.
  dm::run_world(summit(1, /*timing=*/false), [](dm::Communicator& comm) {
    dh::Knobs knobs;
    knobs.cycle_time_s = 1e-4;
    dh::HorovodRuntime runtime(comm, knobs);
    auto a = rank_values(comm.rank(), 64, 1);
    auto b = rank_values(comm.rank(), 64, 2);
    if (comm.rank() % 2 == 0) {
      runtime.submit({"t/a", std::span<float>(a), 0, 0.0});
      runtime.submit({"t/b", std::span<float>(b), 0, 0.0});
    } else {
      runtime.submit({"t/b", std::span<float>(b), 0, 0.0});
      runtime.submit({"t/a", std::span<float>(a), 0, 0.0});
    }
    runtime.synchronize();
    const auto want_a = averaged(comm.size(), 64, 1);
    const auto want_b = averaged(comm.size(), 64, 2);
    for (std::size_t i = 0; i < 64; ++i) {
      ASSERT_NEAR(a[i], want_a[i], 1e-5);
      ASSERT_NEAR(b[i], want_b[i], 1e-5);
    }
  });
}

TEST(Horovod, StaggeredReadinessNegotiatesEventually) {
  // One rank's gradient becomes ready much later (straggler); the
  // coordinator must wait for it and still average correctly.
  dm::run_world(summit(1), [](dm::Communicator& comm) {
    dh::Knobs knobs;
    knobs.cycle_time_s = 1e-3;
    dh::HorovodRuntime runtime(comm, knobs);
    auto g = rank_values(comm.rank(), 128, 5);
    const double ready = comm.rank() == 3 ? 0.05 : 0.0;
    runtime.submit({"t/straggler", std::span<float>(g), 0, ready});
    runtime.synchronize();
    const auto want = averaged(comm.size(), 128, 5);
    for (std::size_t i = 0; i < 128; ++i) ASSERT_NEAR(g[i], want[i], 1e-5);
    // Virtual time must have reached the straggler's readiness.
    EXPECT_GE(comm.now(), 0.05);
  });
}

TEST(Horovod, DuplicateSubmitThrows) {
  dm::run_world(1, [](dm::Communicator& comm) {
    dh::HorovodRuntime runtime(comm, dh::Knobs{});
    std::vector<float> g(4, 1.0f);
    runtime.submit({"x", std::span<float>(g), 0, 0.0});
    EXPECT_THROW(runtime.submit({"x", std::span<float>(g), 0, 0.0}), std::logic_error);
  });
}

TEST(Horovod, UnnamedOrEmptyTensorThrows) {
  dm::run_world(1, [](dm::Communicator& comm) {
    dh::HorovodRuntime runtime(comm, dh::Knobs{});
    std::vector<float> g(4, 1.0f);
    EXPECT_THROW(runtime.submit({"", std::span<float>(g), 0, 0.0}), std::invalid_argument);
    EXPECT_THROW(runtime.submit({"y", {}, 0, 0.0}), std::invalid_argument);
  });
}

TEST(Horovod, StatsCountBatchesAndBytes) {
  dm::run_world(summit(1, /*timing=*/false), [](dm::Communicator& comm) {
    dh::Knobs knobs;
    knobs.fusion_threshold = 64 << 20;  // everything fuses into one batch
    knobs.cycle_time_s = 1e-4;
    dh::HorovodRuntime runtime(comm, knobs);
    auto a = rank_values(comm.rank(), 256, 1);
    auto b = rank_values(comm.rank(), 256, 2);
    runtime.submit({"s/a", std::span<float>(a), 0, 0.0});
    runtime.submit({"s/b", std::span<float>(b), 0, 0.0});
    runtime.synchronize();
    const auto& stats = runtime.stats();
    EXPECT_EQ(stats.fused_batches, 1u);
    EXPECT_EQ(stats.tensors_negotiated, 2u);
    EXPECT_EQ(stats.bytes_reduced, 2u * 256 * 4);
    EXPECT_GT(stats.control_bytes, 0u);
  });
}

TEST(Horovod, FusionThresholdControlsBatchCount) {
  dm::run_world(summit(1, /*timing=*/false), [](dm::Communicator& comm) {
    dh::Knobs knobs;
    knobs.fusion_threshold = 1;  // no fusion: one launch per tensor
    knobs.cycle_time_s = 1e-4;
    dh::HorovodRuntime runtime(comm, knobs);
    std::vector<std::vector<float>> grads;
    for (int i = 0; i < 5; ++i) grads.push_back(rank_values(comm.rank(), 64, 10 + i));
    for (int i = 0; i < 5; ++i) {
      runtime.submit({"f/t" + std::to_string(i), std::span<float>(grads[i]), 0, 0.0});
    }
    runtime.synchronize();
    EXPECT_EQ(runtime.stats().fused_batches, 5u);
  });
}

TEST(Horovod, ResponseCacheEngagesAfterFirstIteration) {
  dm::run_world(summit(1, /*timing=*/false), [](dm::Communicator& comm) {
    dh::Knobs knobs;
    knobs.cycle_time_s = 1e-4;
    dh::HorovodRuntime runtime(comm, knobs);
    for (int iter = 0; iter < 4; ++iter) {
      auto g = rank_values(comm.rank(), 64, 3);
      runtime.submit({"c/t", std::span<float>(g), 0, 0.0});
      runtime.synchronize();
    }
    if (comm.rank() == 0) {
      // Iterations 2..4 should be served by the bitvector path.
      EXPECT_GE(runtime.stats().cache_hit_cycles, 3u);
    }
  });
}

TEST(Horovod, CacheDisabledNeverHits) {
  dm::run_world(summit(1, /*timing=*/false), [](dm::Communicator& comm) {
    dh::Knobs knobs;
    knobs.response_cache = false;
    knobs.cycle_time_s = 1e-4;
    dh::HorovodRuntime runtime(comm, knobs);
    for (int iter = 0; iter < 3; ++iter) {
      auto g = rank_values(comm.rank(), 64, 3);
      runtime.submit({"nc/t", std::span<float>(g), 0, 0.0});
      runtime.synchronize();
    }
    if (comm.rank() == 0) {
      EXPECT_EQ(runtime.stats().cache_hit_cycles, 0u);
    }
  });
}

TEST(Horovod, TimingOnlyModeAdvancesClock) {
  dm::run_world(summit(2), [](dm::Communicator& comm) {
    dh::Knobs knobs;
    knobs.cycle_time_s = 1e-3;
    dh::HorovodRuntime runtime(comm, knobs);
    runtime.submit({"sim/grad", {}, 32 << 20, 0.0});
    runtime.synchronize();
    // 32 MiB across 2 nodes takes milliseconds; plus at least one cycle.
    EXPECT_GT(comm.now(), 1e-3);
    EXPECT_EQ(runtime.stats().bytes_reduced, std::size_t{32} << 20);
  });
}

TEST(Horovod, SynchronizeWithNothingPendingReturnsQuickly) {
  dm::run_world(summit(1, /*timing=*/false), [](dm::Communicator& comm) {
    dh::HorovodRuntime runtime(comm, dh::Knobs{});
    runtime.synchronize();
    SUCCEED();
  });
}

TEST(Horovod, ResetStatsClearsCounters) {
  dm::run_world(1, [](dm::Communicator& comm) {
    dh::HorovodRuntime runtime(comm, dh::Knobs{});
    std::vector<float> g(4, 1.0f);
    runtime.submit({"r/x", std::span<float>(g), 0, 0.0});
    runtime.synchronize();
    EXPECT_GT(runtime.stats().cycles, 0u);
    runtime.reset_stats();
    EXPECT_EQ(runtime.stats().cycles, 0u);
  });
}

TEST(Horovod, BroadcastDistributesRootValues) {
  dm::run_world(summit(1, /*timing=*/false), [](dm::Communicator& comm) {
    dh::HorovodRuntime runtime(comm, dh::Knobs{});
    std::vector<float> weights(300, static_cast<float>(comm.rank() * 100));
    runtime.broadcast(std::span<float>(weights), 0);
    for (float w : weights) ASSERT_FLOAT_EQ(w, 0.0f);  // rank 0's values
  });
}

TEST(Horovod, BroadcastFromNonZeroRoot) {
  dm::run_world(summit(1, /*timing=*/false), [](dm::Communicator& comm) {
    dh::HorovodRuntime runtime(comm, dh::Knobs{});
    std::vector<float> weights(16, static_cast<float>(comm.rank()));
    runtime.broadcast(std::span<float>(weights), 3);
    for (float w : weights) ASSERT_FLOAT_EQ(w, 3.0f);
  });
}

TEST(Horovod, TimelineRecordsNegotiationAndAllreduce) {
  dm::run_world(summit(1), [](dm::Communicator& comm) {
    dh::Knobs knobs;
    knobs.cycle_time_s = 1e-4;
    dh::HorovodRuntime runtime(comm, knobs);
    runtime.enable_timeline();
    std::vector<float> g(4096, 1.0f);
    runtime.submit({"tl/grad", std::span<float>(g)});
    runtime.synchronize();
    if (comm.rank() == 0) {
      std::ostringstream out;
      runtime.write_timeline(out);
      const std::string json = out.str();
      EXPECT_NE(json.find("\"cat\": \"negotiation\""), std::string::npos);
      EXPECT_NE(json.find("\"cat\": \"allreduce\""), std::string::npos);
      EXPECT_NE(json.find("tl/grad"), std::string::npos);
      EXPECT_EQ(json.front(), '[');
    }
  });
}

TEST(Horovod, StallCheckFlagsSlowRank) {
  dm::run_world(summit(1), [](dm::Communicator& comm) {
    dh::Knobs knobs;
    knobs.cycle_time_s = 1e-3;
    knobs.stall_warning_cycles = 20;
    dh::HorovodRuntime runtime(comm, knobs);
    auto g = rank_values(comm.rank(), 64, 9);
    // Rank 5's gradient appears ~100 cycles after everyone else's.
    const double ready = comm.rank() == 5 ? 0.1 : 0.0;
    runtime.submit({"stall/slow", std::span<float>(g), 0, ready});
    runtime.synchronize();
    if (comm.rank() == 0) {
      EXPECT_EQ(runtime.stats().stall_warnings, 1u);
    }
    // Despite the warning, the tensor still averages correctly.
    const auto want = averaged(comm.size(), 64, 9);
    for (std::size_t i = 0; i < 64; ++i) ASSERT_NEAR(g[i], want[i], 1e-5);
  });
}

TEST(Horovod, StallCheckDisabledByZero) {
  dm::run_world(summit(1), [](dm::Communicator& comm) {
    dh::Knobs knobs;
    knobs.cycle_time_s = 1e-3;
    knobs.stall_warning_cycles = 0;
    dh::HorovodRuntime runtime(comm, knobs);
    auto g = rank_values(comm.rank(), 64, 9);
    const double ready = comm.rank() == 5 ? 0.1 : 0.0;
    runtime.submit({"stall/quiet", std::span<float>(g), 0, ready});
    runtime.synchronize();
    if (comm.rank() == 0) {
      EXPECT_EQ(runtime.stats().stall_warnings, 0u);
    }
  });
}

TEST(Horovod, Fp16AllreduceAveragesWithinHalfPrecision) {
  dm::run_world(summit(1, /*timing=*/false), [](dm::Communicator& comm) {
    dh::Knobs knobs;
    knobs.fp16_allreduce = true;
    knobs.cycle_time_s = 1e-4;
    dh::HorovodRuntime runtime(comm, knobs);
    auto g1 = rank_values(comm.rank(), 500, 21);
    auto g2 = rank_values(comm.rank(), 100, 22);
    runtime.submit({"fp16/a", std::span<float>(g1), 0, 0.0});
    runtime.submit({"fp16/b", std::span<float>(g2), 0, 0.0});
    runtime.synchronize();
    const auto want1 = averaged(comm.size(), 500, 21);
    const auto want2 = averaged(comm.size(), 100, 22);
    for (std::size_t i = 0; i < want1.size(); ++i) {
      ASSERT_NEAR(g1[i], want1[i], 5e-3) << i;  // half precision tolerance
    }
    for (std::size_t i = 0; i < want2.size(); ++i) {
      ASSERT_NEAR(g2[i], want2[i], 5e-3) << i;
    }
  });
}

TEST(Horovod, Fp16HalvesSimulatedWireTime) {
  auto elapsed_for = [](bool fp16) {
    double t = 0.0;
    dm::run_world(summit(2), [&](dm::Communicator& comm) {
      dh::Knobs knobs;
      knobs.fp16_allreduce = fp16;
      knobs.cycle_time_s = 1e-4;
      dh::HorovodRuntime runtime(comm, knobs);
      runtime.submit({"fp16/sim", {}, 64 << 20, 0.0});
      runtime.synchronize();
      comm.barrier();
      if (comm.rank() == 0) t = comm.now();
    });
    return t;
  };
  const double full = elapsed_for(false);
  const double half = elapsed_for(true);
  EXPECT_LT(half, 0.75 * full);
}

TEST(Knobs, Fp16FromEnv) {
  ScopedEnv fp16("HOROVOD_FP16_ALLREDUCE", "1");
  EXPECT_TRUE(dh::Knobs::from_env().fp16_allreduce);
}

TEST(Horovod, MismatchedSubmissionsFailLoudly) {
  // Failure injection: rank 3 "forgets" one tensor — real Horovod hangs
  // and then stalls-checks; our runtime aborts after the (test-shrunk)
  // cycle budget with a diagnostic instead of deadlocking the job.
  ScopedEnv budget("DLSCALE_HVD_MAX_CYCLES", "50");
  EXPECT_THROW(
      dm::run_world(summit(1, /*timing=*/false),
                    [](dm::Communicator& comm) {
                      dh::Knobs knobs;
                      knobs.cycle_time_s = 1e-4;
                      knobs.stall_warning_cycles = 10;
                      dh::HorovodRuntime runtime(comm, knobs);
                      std::vector<float> g(16, 1.0f);
                      if (comm.rank() != 3) {
                        runtime.submit({"missing/tensor", std::span<float>(g)});
                      }
                      runtime.synchronize();
                    }),
      std::runtime_error);
}
