// Gradient compression codecs (DESIGN.md §12): int8 affine quantization
// and top-k sparsification with error-feedback residuals. Covers codec
// round-trips and residual semantics at the GradientCompressor level,
// cross-rank averaging through the full HorovodRuntime negotiation, the
// wire-bytes reduction the issue promises (>=3x int8, >=10x top-k @ 1%),
// virtual step-time improvement in a timed world, the strict
// DLSCALE_GRAD_COMPRESSION / DLSCALE_ALLREDUCE_ALGO env validation, and
// scalar/AVX2 bitwise agreement of the encoded blobs.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "dlscale/hvd/horovod.hpp"
#include "dlscale/util/rng.hpp"
#include "../support/simd_param.hpp"

namespace dh = dlscale::hvd;
namespace dm = dlscale::mpi;
namespace dn = dlscale::net;
using dlscale::testing::ScopedSimdLevel;

namespace {

dm::WorldOptions functional_world(int ranks) {
  dm::WorldOptions options;
  options.topology = dn::Topology::single_node(ranks);
  options.profile = dn::MpiProfile::ideal();
  options.timing = false;
  return options;
}

dm::WorldOptions timed_world(int ranks) {
  dm::WorldOptions options;
  options.topology = dn::Topology::single_node(ranks);
  options.profile = dn::MpiProfile::mvapich2_gdr_like();
  options.timing = true;
  return options;
}

std::vector<float> rank_values(int rank, std::size_t n, std::uint64_t seed) {
  dlscale::util::Rng rng(seed + static_cast<std::uint64_t>(rank));
  std::vector<float> data(n);
  for (auto& x : data) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return data;
}

std::vector<float> averaged(int world, std::size_t n, std::uint64_t seed) {
  std::vector<float> acc(n, 0.0f);
  for (int r = 0; r < world; ++r) {
    const auto v = rank_values(r, n, seed);
    for (std::size_t i = 0; i < n; ++i) acc[i] += v[i];
  }
  for (auto& x : acc) x /= static_cast<float>(world);
  return acc;
}

struct ScopedEnv {
  std::string name;
  ScopedEnv(const std::string& n, const std::string& value) : name(n) {
    ::setenv(n.c_str(), value.c_str(), 1);
  }
  ~ScopedEnv() { ::unsetenv(name.c_str()); }
};

/// Encode+decode one tensor at world=1 (the decoded value is exactly
/// what this rank's compressed contribution reconstructs to).
std::vector<float> round_trip(dh::GradientCompressor& compressor, dh::CompressionAlgo algo,
                              const std::string& name, std::vector<float> grad,
                              float topk_ratio, bool error_feedback) {
  const dh::GradientCompressor::Chunk chunk{&name, grad};
  const auto wire = compressor.encode(algo, {&chunk, 1}, topk_ratio, error_feedback);
  compressor.decode_average(algo, {&chunk, 1}, wire, /*world=*/1, topk_ratio);
  return grad;
}

}  // namespace

// ---- codec name parsing / env validation ----

TEST(CompressParse, NamesRoundTrip) {
  EXPECT_EQ(dh::parse_compression("none"), dh::CompressionAlgo::kNone);
  EXPECT_EQ(dh::parse_compression("FP16"), dh::CompressionAlgo::kFp16);
  EXPECT_EQ(dh::parse_compression("Int8"), dh::CompressionAlgo::kInt8);
  EXPECT_EQ(dh::parse_compression("topk"), dh::CompressionAlgo::kTopK);
  EXPECT_EQ(dh::parse_compression("top-k"), dh::CompressionAlgo::kTopK);
  EXPECT_EQ(dh::parse_compression("gzip"), std::nullopt);
  EXPECT_STREQ(dh::to_string(dh::CompressionAlgo::kInt8), "int8");
  EXPECT_STREQ(dh::to_string(dh::CompressionAlgo::kTopK), "topk");
}

TEST(CompressEnv, FromEnvReadsCompressionKnobs) {
  ScopedEnv codec("DLSCALE_GRAD_COMPRESSION", "int8");
  ScopedEnv ratio("DLSCALE_TOPK_RATIO", "0.05");
  ScopedEnv ef("DLSCALE_ERROR_FEEDBACK", "0");
  const auto knobs = dh::Knobs::from_env();
  EXPECT_EQ(knobs.compression, dh::CompressionAlgo::kInt8);
  EXPECT_EQ(knobs.effective_compression(), dh::CompressionAlgo::kInt8);
  EXPECT_NEAR(knobs.topk_ratio, 0.05f, 1e-6f);
  EXPECT_FALSE(knobs.error_feedback);
}

TEST(CompressEnv, UnknownCompressionThrowsNamingValidSet) {
  ScopedEnv codec("DLSCALE_GRAD_COMPRESSION", "gzip");
  try {
    (void)dh::Knobs::from_env();
    FAIL() << "unknown codec accepted";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("gzip"), std::string::npos) << message;
    EXPECT_NE(message.find("none|fp16|int8|topk"), std::string::npos) << message;
  }
}

TEST(CompressEnv, UnknownAllreduceAlgoThrowsNamingValidSet) {
  ScopedEnv algo("DLSCALE_ALLREDUCE_ALGO", "butterfly");
  try {
    (void)dh::Knobs::from_env();
    FAIL() << "unknown algorithm accepted";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("butterfly"), std::string::npos) << message;
    EXPECT_NE(message.find("ring|rabenseifner|recursive_doubling|auto"), std::string::npos)
        << message;
  }
}

TEST(CompressEnv, AutoAlgoStaysValidCaseInsensitively) {
  ScopedEnv algo("DLSCALE_ALLREDUCE_ALGO", "AUTO");
  const auto knobs = dh::Knobs::from_env();
  EXPECT_FALSE(knobs.algo.has_value());
}

TEST(CompressEnv, TopkRatioOutOfRangeThrows) {
  {
    ScopedEnv ratio("DLSCALE_TOPK_RATIO", "0");
    EXPECT_THROW((void)dh::Knobs::from_env(), std::invalid_argument);
  }
  {
    ScopedEnv ratio("DLSCALE_TOPK_RATIO", "1.5");
    EXPECT_THROW((void)dh::Knobs::from_env(), std::invalid_argument);
  }
}

TEST(CompressKnobs, LegacyFp16FlagFoldsIntoEffectiveCodec) {
  dh::Knobs knobs;
  EXPECT_EQ(knobs.effective_compression(), dh::CompressionAlgo::kNone);
  knobs.fp16_allreduce = true;
  EXPECT_EQ(knobs.effective_compression(), dh::CompressionAlgo::kFp16);
  knobs.compression = dh::CompressionAlgo::kTopK;  // explicit codec wins
  EXPECT_EQ(knobs.effective_compression(), dh::CompressionAlgo::kTopK);
}

// ---- GradientCompressor round trips ----

TEST(CompressInt8, RoundTripWithinOneQuantum) {
  dh::GradientCompressor compressor;
  const auto grad = rank_values(0, 1000, 11);
  const auto decoded =
      round_trip(compressor, dh::CompressionAlgo::kInt8, "g", grad, 0.01f, true);
  float lo = grad[0], hi = grad[0];
  for (float v : grad) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const float quantum = (hi - lo) / 255.0f;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    EXPECT_NEAR(decoded[i], grad[i], quantum) << "element " << i;
  }
  // With error feedback the residual is exactly the reconstruction error.
  const auto* residual = compressor.residual("g");
  ASSERT_NE(residual, nullptr);
  for (std::size_t i = 0; i < grad.size(); ++i) {
    EXPECT_FLOAT_EQ((*residual)[i], grad[i] - decoded[i]) << "element " << i;
  }
}

TEST(CompressInt8, ConstantChunkIsExact) {
  dh::GradientCompressor compressor;
  const std::vector<float> grad(64, 3.25f);
  const auto decoded =
      round_trip(compressor, dh::CompressionAlgo::kInt8, "c", grad, 0.01f, true);
  for (float v : decoded) EXPECT_EQ(v, 3.25f);
  const auto* residual = compressor.residual("c");
  ASSERT_NE(residual, nullptr);
  for (float v : *residual) EXPECT_EQ(v, 0.0f);
}

TEST(CompressTopK, KeepsLargestMagnitudesExactly) {
  dh::GradientCompressor compressor;
  std::vector<float> grad(12, 0.01f);
  grad[2] = -5.0f;
  grad[7] = 4.0f;
  grad[9] = 3.0f;
  // ratio 0.25 (exact in binary — ceil stays honest) of 12 -> k = 3:
  // exactly the three spikes.
  const auto decoded =
      round_trip(compressor, dh::CompressionAlgo::kTopK, "t", grad, 0.25f, true);
  for (std::size_t i = 0; i < grad.size(); ++i) {
    if (i == 2 || i == 7 || i == 9) {
      EXPECT_EQ(decoded[i], grad[i]) << "selected element " << i;
    } else {
      EXPECT_EQ(decoded[i], 0.0f) << "unselected element " << i;
    }
  }
  // Unselected mass moved into the residual; selected entries owe nothing.
  const auto* residual = compressor.residual("t");
  ASSERT_NE(residual, nullptr);
  for (std::size_t i = 0; i < grad.size(); ++i) {
    EXPECT_EQ((*residual)[i], i == 2 || i == 7 || i == 9 ? 0.0f : grad[i]);
  }
}

TEST(CompressTopK, KIsCeilOfRatioClampedToValidRange) {
  EXPECT_EQ(dh::GradientCompressor::topk_k(1000, 0.01f), 10u);
  EXPECT_EQ(dh::GradientCompressor::topk_k(1001, 0.01f), 11u);  // ceil
  EXPECT_EQ(dh::GradientCompressor::topk_k(10, 0.001f), 1u);    // floor of 1
  EXPECT_EQ(dh::GradientCompressor::topk_k(10, 1.0f), 10u);
  EXPECT_EQ(dh::GradientCompressor::topk_k(0, 0.5f), 0u);
}

TEST(CompressResiduals, ResetDropsAllState) {
  dh::GradientCompressor compressor;
  (void)round_trip(compressor, dh::CompressionAlgo::kInt8, "a", rank_values(0, 32, 3), 0.5f,
                   true);
  (void)round_trip(compressor, dh::CompressionAlgo::kTopK, "b", rank_values(1, 32, 4), 0.5f,
                   true);
  EXPECT_EQ(compressor.residual_tensor_count(), 2u);
  compressor.reset_residuals();
  EXPECT_EQ(compressor.residual_tensor_count(), 0u);
  EXPECT_EQ(compressor.residual("a"), nullptr);
}

TEST(CompressResiduals, NoErrorFeedbackKeepsNoState) {
  dh::GradientCompressor compressor;
  (void)round_trip(compressor, dh::CompressionAlgo::kInt8, "a", rank_values(0, 32, 3), 0.5f,
                   false);
  EXPECT_EQ(compressor.residual_tensor_count(), 0u);
}

// ---- error feedback closes the compression bias over repeated steps ----

namespace {

/// Applies the same gradient T times through the codec and returns the
/// max | mean(applied) - grad | over elements. With error feedback the
/// bias telescopes away (mean error ~ residual_bound / T); without it
/// the per-element quantization/selection bias is permanent.
float mean_apply_error(dh::CompressionAlgo algo, float ratio, bool error_feedback, int steps) {
  dh::GradientCompressor compressor;
  const std::string name = "g";
  const auto grad = rank_values(0, 1000, 23);
  std::vector<double> applied(grad.size(), 0.0);
  for (int t = 0; t < steps; ++t) {
    auto step_grad = grad;  // the runtime hands the compressor a fresh gradient each step
    const auto decoded = round_trip(compressor, algo, name, step_grad, ratio, error_feedback);
    for (std::size_t i = 0; i < decoded.size(); ++i) applied[i] += decoded[i];
  }
  float max_error = 0.0f;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    const auto mean = static_cast<float>(applied[i] / steps);
    max_error = std::max(max_error, std::fabs(mean - grad[i]));
  }
  return max_error;
}

}  // namespace

TEST(CompressErrorFeedback, Int8ResidualCancelsQuantizationBias) {
  const float with_ef = mean_apply_error(dh::CompressionAlgo::kInt8, 0.0f, true, 64);
  const float without_ef = mean_apply_error(dh::CompressionAlgo::kInt8, 0.0f, false, 64);
  // Without EF the worst element keeps its full quantization bias (up to
  // half a quantum ~= 0.004 on a [-1,1] chunk); with EF the residual
  // telescopes it down to ~quantum/steps.
  EXPECT_GT(without_ef, 1e-4f);
  EXPECT_LT(with_ef, 0.25f * without_ef);
}

TEST(CompressErrorFeedback, TopKResidualDeliversUnselectedMass) {
  const float with_ef = mean_apply_error(dh::CompressionAlgo::kTopK, 0.1f, true, 100);
  const float without_ef = mean_apply_error(dh::CompressionAlgo::kTopK, 0.1f, false, 100);
  // Without EF, 90% of elements are NEVER applied: their error is their
  // own magnitude. With EF every element's residual grows until selected.
  EXPECT_GT(without_ef, 0.1f);
  EXPECT_LT(with_ef, 0.2f * without_ef);
}

// ---- bitwise scalar/AVX2 agreement of encoded blobs ----

TEST(CompressSimd, EncodedBlobsBitwiseIdenticalAcrossLevels) {
  const auto levels = dlscale::testing::simd_levels_under_test();
  const auto grad = rank_values(0, 4097, 31);  // odd size: exercises SIMD tails
  const std::string name = "g";
  std::vector<std::vector<std::byte>> blobs;
  for (const auto level : levels) {
    ScopedSimdLevel scoped(level);
    dh::GradientCompressor compressor;  // fresh residuals per level
    auto step_grad = grad;
    const dh::GradientCompressor::Chunk chunk{&name, step_grad};
    const auto wire = compressor.encode(dh::CompressionAlgo::kInt8, {&chunk, 1}, 0.01f, true);
    blobs.emplace_back(wire.begin(), wire.end());
  }
  for (std::size_t i = 1; i < blobs.size(); ++i) {
    EXPECT_EQ(blobs[i], blobs[0]) << "level " << i << " diverged from scalar";
  }
}

// ---- cross-rank averaging through the full runtime ----

namespace {

dh::Knobs compressed_knobs(dh::CompressionAlgo algo, float ratio = 0.01f,
                           bool error_feedback = true) {
  dh::Knobs knobs;
  knobs.cycle_time_s = 1e-4;
  knobs.compression = algo;
  knobs.topk_ratio = ratio;
  knobs.error_feedback = error_feedback;
  return knobs;
}

}  // namespace

TEST(CompressRuntime, Int8AveragesWithinQuantumAcrossRanks) {
  constexpr std::size_t kN = 600;
  constexpr std::uint64_t kSeed = 41;
  dm::run_world(functional_world(4), [&](dm::Communicator& comm) {
    dh::HorovodRuntime runtime(comm, compressed_knobs(dh::CompressionAlgo::kInt8));
    auto g1 = rank_values(comm.rank(), kN, kSeed);
    auto g2 = rank_values(comm.rank(), kN / 3, kSeed + 5);
    runtime.submit({"conv1", g1});
    runtime.submit({"conv2", g2});
    runtime.synchronize();
    // Each rank's contribution is off by at most one quantum of ITS
    // chunk range (~2/255 here); the average of 4 such errors stays
    // below one quantum.
    const auto want1 = averaged(comm.size(), kN, kSeed);
    const auto want2 = averaged(comm.size(), kN / 3, kSeed + 5);
    for (std::size_t i = 0; i < want1.size(); ++i) EXPECT_NEAR(g1[i], want1[i], 2.0f / 255.0f);
    for (std::size_t i = 0; i < want2.size(); ++i) EXPECT_NEAR(g2[i], want2[i], 2.0f / 255.0f);
    // Residual state exists on every rank (error feedback on).
    EXPECT_EQ(runtime.compressor().residual_tensor_count(), 2u);
  });
}

TEST(CompressRuntime, TopKWithFullRatioMatchesExactAverage) {
  // ratio = 1.0 sends every (index, value) pair as exact fp32, and both
  // the decode and the reference average accumulate in rank order with a
  // power-of-two divisor — so the result is bitwise the fp32 average.
  constexpr std::size_t kN = 257;
  constexpr std::uint64_t kSeed = 47;
  dm::run_world(functional_world(4), [&](dm::Communicator& comm) {
    dh::HorovodRuntime runtime(comm, compressed_knobs(dh::CompressionAlgo::kTopK, 1.0f));
    auto grad = rank_values(comm.rank(), kN, kSeed);
    runtime.submit({"g", grad});
    runtime.synchronize();
    const auto want = averaged(comm.size(), kN, kSeed);
    for (std::size_t i = 0; i < want.size(); ++i) EXPECT_FLOAT_EQ(grad[i], want[i]);
  });
}

TEST(CompressRuntime, ReplicasStayBitwiseIdentical) {
  // The decode averages in rank order on every rank, so all replicas
  // compute the same floats — the property distributed training relies
  // on to keep parameters synchronized without re-broadcasting.
  constexpr std::size_t kN = 301;
  std::vector<std::vector<float>> per_rank(3);
  dm::run_world(functional_world(3), [&](dm::Communicator& comm) {
    dh::HorovodRuntime runtime(comm, compressed_knobs(dh::CompressionAlgo::kInt8));
    auto grad = rank_values(comm.rank(), kN, 53);
    runtime.submit({"g", grad});
    runtime.synchronize();
    per_rank[static_cast<std::size_t>(comm.rank())] = grad;
  });
  EXPECT_EQ(per_rank[1], per_rank[0]);
  EXPECT_EQ(per_rank[2], per_rank[0]);
}

TEST(CompressRuntime, WireBytesMeetReductionTargets) {
  // The issue's acceptance numbers: >=3x fewer bytes on the wire for
  // int8 (4x payload minus per-tensor headers), >=10x for top-k @ 1%.
  constexpr std::size_t kN = 1 << 18;  // 1 MiB fp32 per tensor
  for (const auto algo : {dh::CompressionAlgo::kInt8, dh::CompressionAlgo::kTopK}) {
    dm::run_world(functional_world(2), [&](dm::Communicator& comm) {
      dh::HorovodRuntime runtime(comm, compressed_knobs(algo));
      auto g1 = rank_values(comm.rank(), kN, 61);
      auto g2 = rank_values(comm.rank(), kN, 67);
      runtime.submit({"g1", g1});
      runtime.submit({"g2", g2});
      runtime.synchronize();
      const auto& stats = runtime.stats();
      EXPECT_EQ(stats.bytes_reduced, 2 * kN * sizeof(float));
      ASSERT_GT(stats.bytes_on_wire, 0u);
      const double reduction = static_cast<double>(stats.bytes_reduced) /
                               static_cast<double>(stats.bytes_on_wire);
      if (algo == dh::CompressionAlgo::kInt8) {
        EXPECT_GE(reduction, 3.0) << "int8 wire reduction";
      } else {
        EXPECT_GE(reduction, 10.0) << "top-k wire reduction";
      }
    });
  }
}

TEST(CompressRuntime, UncompressedPathsAccountWireBytesToo) {
  dm::run_world(functional_world(2), [&](dm::Communicator& comm) {
    dh::Knobs knobs;
    knobs.cycle_time_s = 1e-4;
    dh::HorovodRuntime runtime(comm, knobs);
    auto grad = rank_values(comm.rank(), 512, 71);
    runtime.submit({"g", grad});
    runtime.synchronize();
    EXPECT_EQ(runtime.stats().bytes_on_wire, runtime.stats().bytes_reduced);
  });
}

TEST(CompressRuntime, CompressedStepsBeatFp32InTimedWorld) {
  // Timing-only submits at a DLv3+-sized fused gradient: the virtual
  // clock should show int8 beating fp32 and top-k beating int8 at 4
  // ranks (where the allgather exchange is cheaper than the fp32 ring).
  constexpr std::size_t kBytes = 96 << 20;  // ~DLv3+ total gradient size
  auto virtual_step_time = [&](dh::Knobs knobs) {
    double elapsed = 0.0;
    dm::run_world(timed_world(4), [&](dm::Communicator& comm) {
      dh::HorovodRuntime runtime(comm, knobs);
      runtime.submit({"grads", {}, kBytes, comm.now()});
      runtime.synchronize();
      if (comm.rank() == 0) elapsed = comm.now();
    });
    return elapsed;
  };
  dh::Knobs fp32;
  fp32.cycle_time_s = 1e-4;
  const double t_fp32 = virtual_step_time(fp32);
  const double t_int8 = virtual_step_time(compressed_knobs(dh::CompressionAlgo::kInt8));
  const double t_topk = virtual_step_time(compressed_knobs(dh::CompressionAlgo::kTopK, 0.01f));
  EXPECT_LT(t_int8, t_fp32);
  EXPECT_LT(t_topk, t_int8);
}

TEST(CompressRuntime, PackUnpackWallTimeIsRecorded) {
  dm::run_world(functional_world(2), [&](dm::Communicator& comm) {
    dh::HorovodRuntime runtime(comm, compressed_knobs(dh::CompressionAlgo::kInt8));
    auto grad = rank_values(comm.rank(), 1 << 16, 73);
    runtime.submit({"g", grad});
    runtime.synchronize();
    EXPECT_GT(runtime.stats().compress_pack_s, 0.0);
    EXPECT_GT(runtime.stats().compress_unpack_s, 0.0);
  });
}
