// Timing-level properties of the Horovod core — the effects the paper's
// tuning relies on: fusion amortises per-launch alpha costs, hierarchical
// allreduce wins at scale on Summit-shaped nodes, cycle time trades
// negotiation overhead against gradient latency.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dlscale/hvd/horovod.hpp"

namespace dh = dlscale::hvd;
namespace dm = dlscale::mpi;
namespace dn = dlscale::net;

namespace {

/// Simulated iteration: submit `tensors` gradient tensors of `bytes` each
/// (timing-only) at ready times spread over `spread_s`, synchronize, and
/// return rank 0's final virtual time.
double run_iteration(int nodes, const dn::MpiProfile& profile, dh::Knobs knobs, int tensors,
                     std::size_t bytes, double spread_s) {
  double elapsed = 0.0;
  dm::WorldOptions options;
  options.topology = dn::Topology::summit(nodes);
  options.profile = profile;
  options.timing = true;
  dm::run_world(options, [&](dm::Communicator& comm) {
    dh::HorovodRuntime runtime(comm, knobs);
    for (int i = 0; i < tensors; ++i) {
      const double ready = spread_s * static_cast<double>(i) / std::max(1, tensors - 1);
      runtime.submit({"grad/t" + std::to_string(i), {}, bytes, ready});
    }
    runtime.synchronize();
    comm.barrier();
    if (comm.rank() == 0) elapsed = comm.now();
  });
  return elapsed;
}

}  // namespace

TEST(HvdTiming, FusionBeatsPerTensorLaunches) {
  // 100 x 1 MiB gradients, all ready immediately. Fusing into 64 MiB
  // batches must beat per-tensor allreduce launches.
  const auto profile = dn::MpiProfile::mvapich2_gdr_like();
  dh::Knobs fused;
  fused.cycle_time_s = 1e-3;
  dh::Knobs unfused = fused;
  unfused.fusion_threshold = 1;
  const double t_fused = run_iteration(2, profile, fused, 100, 1 << 20, 0.0);
  const double t_unfused = run_iteration(2, profile, unfused, 100, 1 << 20, 0.0);
  EXPECT_LT(t_fused, t_unfused);
}

TEST(HvdTiming, HierarchicalWinsOnMultiNodeLargeTensors) {
  // Spectrum-like profile (single rail, staged): flat ring across 6
  // ranks/node floods the NIC; hierarchical reduces intra-node first.
  const auto profile = dn::MpiProfile::spectrum_like();
  dh::Knobs flat;
  flat.cycle_time_s = 1e-3;
  dh::Knobs hier = flat;
  hier.hierarchical_allreduce = true;
  const double t_flat = run_iteration(4, profile, flat, 10, 16 << 20, 0.0);
  const double t_hier = run_iteration(4, profile, hier, 10, 16 << 20, 0.0);
  EXPECT_LT(t_hier, t_flat);
}

TEST(HvdTiming, MvapichProfileBeatsSpectrumOnGpuGradients) {
  // The paper's headline: same model, same Horovod, different MPI library.
  dh::Knobs knobs;
  knobs.cycle_time_s = 1e-3;
  const double t_spectrum =
      run_iteration(4, dn::MpiProfile::spectrum_like(), knobs, 50, 4 << 20, 0.0);
  const double t_mvapich =
      run_iteration(4, dn::MpiProfile::mvapich2_gdr_like(), knobs, 50, 4 << 20, 0.0);
  EXPECT_GT(t_spectrum, 1.5 * t_mvapich);
}

TEST(HvdTiming, HugeCycleTimeDelaysCompletion) {
  // With gradients spread over 10 ms, a 50 ms cycle forces everything to
  // wait for the second wakeup; a 1 ms cycle tracks readiness closely.
  const auto profile = dn::MpiProfile::mvapich2_gdr_like();
  dh::Knobs fast;
  fast.cycle_time_s = 1e-3;
  dh::Knobs slow = fast;
  slow.cycle_time_s = 50e-3;
  const double t_fast = run_iteration(2, profile, fast, 50, 256 << 10, 10e-3);
  const double t_slow = run_iteration(2, profile, slow, 50, 256 << 10, 10e-3);
  EXPECT_LT(t_fast, t_slow);
}

TEST(HvdTiming, TinyCycleTimeCostsMoreCyclesThanModerate) {
  // A 0.1 ms cycle wakes up ~100x during a 10 ms backward pass; count the
  // negotiation rounds to show the overhead the paper tunes away.
  const auto profile = dn::MpiProfile::mvapich2_gdr_like();
  auto cycles_for = [&](double cycle_time) {
    std::uint64_t cycles = 0;
    dm::WorldOptions options;
    options.topology = dn::Topology::summit(2);
    options.profile = profile;
    options.timing = true;
    dm::run_world(options, [&](dm::Communicator& comm) {
      dh::Knobs knobs;
      knobs.cycle_time_s = cycle_time;
      dh::HorovodRuntime runtime(comm, knobs);
      for (int i = 0; i < 50; ++i) {
        const double ready = 10e-3 * static_cast<double>(i) / 49.0;
        runtime.submit({"grad/t" + std::to_string(i), {}, 64 << 10, ready});
      }
      runtime.synchronize();
      if (comm.rank() == 0) cycles = runtime.stats().cycles;
    });
    return cycles;
  };
  const auto fast_cycles = cycles_for(0.1e-3);
  const auto slow_cycles = cycles_for(5e-3);
  EXPECT_GT(fast_cycles, 3 * slow_cycles);
}

TEST(HvdTiming, CacheReducesControlTraffic) {
  const auto profile = dn::MpiProfile::mvapich2_gdr_like();
  auto control_bytes_for = [&](bool cache) {
    std::uint64_t bytes = 0;
    dm::WorldOptions options;
    options.topology = dn::Topology::summit(1);
    options.profile = profile;
    options.timing = true;
    dm::run_world(options, [&](dm::Communicator& comm) {
      dh::Knobs knobs;
      knobs.response_cache = cache;
      knobs.cycle_time_s = 1e-3;
      dh::HorovodRuntime runtime(comm, knobs);
      for (int iter = 0; iter < 5; ++iter) {
        for (int i = 0; i < 40; ++i) {
          runtime.submit({"grad/some_rather_long_layer_name/branch/tensor_" + std::to_string(i),
                          {}, 64 << 10, 0.0});
        }
        runtime.synchronize();
      }
      if (comm.rank() == 0) bytes = runtime.stats().control_bytes;
    });
    return bytes;
  };
  // Name payloads dominate without the cache; the bitvector path sends a
  // fixed small block.
  EXPECT_LT(control_bytes_for(true), control_bytes_for(false));
}

TEST(HvdTiming, OverlapHidesCommunicationBehindBackward) {
  // Gradients arriving over a long backward pass should mostly overlap
  // with communication: total time ~ backward duration + tail, far below
  // backward + full serialised comm.
  const auto profile = dn::MpiProfile::mvapich2_gdr_like();
  dh::Knobs knobs;
  knobs.cycle_time_s = 1e-3;
  const double spread = 0.5;  // backward takes 500 ms
  const double t_overlap = run_iteration(2, profile, knobs, 50, 4 << 20, spread);
  // Communication alone (everything ready at t=0):
  const double t_comm = run_iteration(2, profile, knobs, 50, 4 << 20, 0.0);
  EXPECT_LT(t_overlap, spread + t_comm * 0.6);
  EXPECT_GE(t_overlap, spread);
}
