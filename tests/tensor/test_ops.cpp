#include "dlscale/tensor/ops.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dt = dlscale::tensor;
namespace du = dlscale::util;

TEST(Matmul, KnownProduct) {
  dt::Tensor a({2, 3}), b({3, 2});
  // a = [[1,2,3],[4,5,6]], b = [[7,8],[9,10],[11,12]]
  for (int i = 0; i < 6; ++i) a[static_cast<std::size_t>(i)] = static_cast<float>(i + 1);
  for (int i = 0; i < 6; ++i) b[static_cast<std::size_t>(i)] = static_cast<float>(i + 7);
  const auto c = dt::matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(Matmul, TransposedVariantsAgree) {
  du::Rng rng(3);
  const auto a = dt::Tensor::randn({4, 5}, rng);
  const auto b = dt::Tensor::randn({4, 6}, rng);
  // matmul_tn(a, b) == a^T b. Build a^T explicitly and compare.
  dt::Tensor at({5, 4});
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 5; ++j) at.at(j, i) = a.at(i, j);
  const auto direct = dt::matmul(at, b);
  const auto fused = dt::matmul_tn(a, b);
  for (std::size_t i = 0; i < direct.numel(); ++i) EXPECT_NEAR(direct[i], fused[i], 1e-5);

  // matmul_nt(a, c) == a c^T.
  const auto c = dt::Tensor::randn({7, 5}, rng);
  dt::Tensor ct({5, 7});
  for (int i = 0; i < 7; ++i)
    for (int j = 0; j < 5; ++j) ct.at(j, i) = c.at(i, j);
  const auto direct2 = dt::matmul(a, ct);
  const auto fused2 = dt::matmul_nt(a, c);
  for (std::size_t i = 0; i < direct2.numel(); ++i) EXPECT_NEAR(direct2[i], fused2[i], 1e-5);
}

TEST(Matmul, ShapeMismatchThrows) {
  EXPECT_THROW(dt::matmul(dt::Tensor({2, 3}), dt::Tensor({4, 2})), std::invalid_argument);
}

TEST(Conv2d, IdentityKernel) {
  // 1x1 kernel with weight 1 reproduces the input.
  du::Rng rng(5);
  const auto x = dt::Tensor::randn({1, 1, 4, 4}, rng);
  auto w = dt::Tensor::full({1, 1, 1, 1}, 1.0f);
  const auto y = dt::conv2d(x, w, nullptr, {1, 0, 1});
  for (std::size_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Conv2d, KnownSum3x3) {
  // All-ones input and all-ones 3x3 kernel with pad 1: interior outputs 9.
  const auto x = dt::Tensor::full({1, 1, 5, 5}, 1.0f);
  const auto w = dt::Tensor::full({1, 1, 3, 3}, 1.0f);
  const auto y = dt::conv2d(x, w, nullptr, {1, 1, 1});
  EXPECT_EQ(y.dim(2), 5);
  EXPECT_FLOAT_EQ(y.at(0, 0, 2, 2), 9.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 4.0f);  // corner sees 2x2 window
}

TEST(Conv2d, StrideAndOutputShape) {
  const auto x = dt::Tensor::full({2, 3, 8, 8}, 1.0f);
  du::Rng rng(1);
  const auto w = dt::Tensor::randn({4, 3, 3, 3}, rng);
  const auto y = dt::conv2d(x, w, nullptr, {2, 1, 1});
  EXPECT_EQ(y.dim(0), 2);
  EXPECT_EQ(y.dim(1), 4);
  EXPECT_EQ(y.dim(2), 4);
  EXPECT_EQ(y.dim(3), 4);
}

TEST(Conv2d, DilationMatchesManual) {
  // Dilated 3x3 (rate 2) samples every other pixel: effective 5x5 window.
  dt::Tensor x({1, 1, 5, 5});
  for (std::size_t i = 0; i < x.numel(); ++i) x[i] = static_cast<float>(i);
  const auto w = dt::Tensor::full({1, 1, 3, 3}, 1.0f);
  const auto y = dt::conv2d(x, w, nullptr, {1, 2, 2});
  EXPECT_EQ(y.dim(2), 5);
  // Centre output = sum of x at positions (0,0),(0,2),(0,4),(2,0)... = corners+centre grid
  float want = 0.0f;
  for (int iy : {0, 2, 4})
    for (int ix : {0, 2, 4}) want += x.at(0, 0, iy, ix);
  EXPECT_FLOAT_EQ(y.at(0, 0, 2, 2), want);
}

TEST(Conv2d, BiasIsAdded) {
  const auto x = dt::Tensor::full({1, 1, 2, 2}, 0.0f);
  const auto w = dt::Tensor::full({2, 1, 1, 1}, 1.0f);
  dt::Tensor bias({2});
  bias[0] = 0.5f;
  bias[1] = -1.5f;
  const auto y = dt::conv2d(x, w, &bias, {1, 0, 1});
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 0.5f);
  EXPECT_FLOAT_EQ(y.at(0, 1, 1, 1), -1.5f);
}

// --- numerical gradient checks ---

namespace {

// Central-difference derivative of a scalar loss wrt one element.
template <typename LossFn>
double numeric_grad(dt::Tensor& param, std::size_t index, const LossFn& loss, float eps = 1e-3f) {
  const float saved = param[index];
  param[index] = saved + eps;
  const double up = loss();
  param[index] = saved - eps;
  const double down = loss();
  param[index] = saved;
  return (up - down) / (2.0 * eps);
}

double sum_all(const dt::Tensor& t) {
  double s = 0.0;
  for (std::size_t i = 0; i < t.numel(); ++i) s += t[i];
  return s;
}

}  // namespace

TEST(Conv2dBackward, GradInputMatchesNumeric) {
  du::Rng rng(11);
  auto x = dt::Tensor::randn({1, 2, 5, 5}, rng);
  const auto w = dt::Tensor::randn({3, 2, 3, 3}, rng);
  const dt::Conv2dSpec spec{1, 1, 1};
  // Loss = sum(conv(x, w)) -> upstream grad is all ones.
  const auto y = dt::conv2d(x, w, nullptr, spec);
  const auto grad_out = dt::Tensor::full(y.shape(), 1.0f);
  dt::Tensor grad_w(w.shape());
  const auto grad_x = dt::conv2d_backward(x, w, grad_out, spec, grad_w, nullptr);
  auto loss = [&] { return sum_all(dt::conv2d(x, w, nullptr, spec)); };
  for (std::size_t i : {std::size_t{0}, std::size_t{12}, std::size_t{24}, std::size_t{49}}) {
    EXPECT_NEAR(grad_x[i], numeric_grad(x, i, loss), 2e-2) << "input index " << i;
  }
}

TEST(Conv2dBackward, GradWeightMatchesNumeric) {
  du::Rng rng(13);
  const auto x = dt::Tensor::randn({2, 2, 5, 5}, rng);
  auto w = dt::Tensor::randn({3, 2, 3, 3}, rng);
  const dt::Conv2dSpec spec{2, 1, 1};
  const auto y = dt::conv2d(x, w, nullptr, spec);
  const auto grad_out = dt::Tensor::full(y.shape(), 1.0f);
  dt::Tensor grad_w(w.shape());
  (void)dt::conv2d_backward(x, w, grad_out, spec, grad_w, nullptr);
  auto loss = [&] { return sum_all(dt::conv2d(x, w, nullptr, spec)); };
  for (std::size_t i : {std::size_t{0}, std::size_t{17}, std::size_t{53}}) {
    EXPECT_NEAR(grad_w[i], numeric_grad(w, i, loss), 2e-2) << "weight index " << i;
  }
}

TEST(Conv2dBackward, DilatedGradMatchesNumeric) {
  du::Rng rng(17);
  auto x = dt::Tensor::randn({1, 1, 6, 6}, rng);
  const auto w = dt::Tensor::randn({2, 1, 3, 3}, rng);
  const dt::Conv2dSpec spec{1, 2, 2};  // atrous
  const auto y = dt::conv2d(x, w, nullptr, spec);
  const auto grad_out = dt::Tensor::full(y.shape(), 1.0f);
  dt::Tensor grad_w(w.shape());
  const auto grad_x = dt::conv2d_backward(x, w, grad_out, spec, grad_w, nullptr);
  auto loss = [&] { return sum_all(dt::conv2d(x, w, nullptr, spec)); };
  for (std::size_t i : {std::size_t{0}, std::size_t{18}, std::size_t{35}}) {
    EXPECT_NEAR(grad_x[i], numeric_grad(x, i, loss), 2e-2);
  }
}

TEST(Conv2dBackward, GradBiasIsSumOfGradOut) {
  du::Rng rng(19);
  const auto x = dt::Tensor::randn({2, 1, 4, 4}, rng);
  const auto w = dt::Tensor::randn({2, 1, 3, 3}, rng);
  dt::Tensor bias({2});
  const dt::Conv2dSpec spec{1, 1, 1};
  const auto y = dt::conv2d(x, w, &bias, spec);
  const auto grad_out = dt::Tensor::full(y.shape(), 1.0f);
  dt::Tensor grad_w(w.shape()), grad_b({2});
  (void)dt::conv2d_backward(x, w, grad_out, spec, grad_w, &grad_b);
  // Each output channel has 2*4*4 positions of grad 1.
  EXPECT_FLOAT_EQ(grad_b[0], 32.0f);
  EXPECT_FLOAT_EQ(grad_b[1], 32.0f);
}

TEST(Relu, ForwardAndBackward) {
  dt::Tensor x({4});
  x[0] = -1.0f;
  x[1] = 0.0f;
  x[2] = 2.0f;
  x[3] = -0.5f;
  const auto y = dt::relu(x);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
  const auto g = dt::relu_backward(x, dt::Tensor::full({4}, 1.0f));
  EXPECT_FLOAT_EQ(g[0], 0.0f);
  EXPECT_FLOAT_EQ(g[1], 0.0f);  // subgradient at 0 taken as 0
  EXPECT_FLOAT_EQ(g[2], 1.0f);
}

TEST(BatchNorm, NormalisesPerChannel) {
  du::Rng rng(23);
  const auto x = dt::Tensor::randn({4, 2, 3, 3}, rng);
  const auto gamma = dt::Tensor::full({2}, 1.0f);
  const auto beta = dt::Tensor::zeros({2});
  auto running_mean = dt::Tensor::zeros({2});
  auto running_var = dt::Tensor::full({2}, 1.0f);
  dt::BatchNormCache cache;
  const auto y = dt::batchnorm2d(x, gamma, beta, running_mean, running_var, true, 0.1f, 1e-5f,
                                 &cache);
  // Output per channel: mean ~0, var ~1.
  for (int c = 0; c < 2; ++c) {
    double m = 0.0, v = 0.0;
    for (int n = 0; n < 4; ++n)
      for (int h = 0; h < 3; ++h)
        for (int w = 0; w < 3; ++w) m += y.at(n, c, h, w);
    m /= 36.0;
    for (int n = 0; n < 4; ++n)
      for (int h = 0; h < 3; ++h)
        for (int w = 0; w < 3; ++w) {
          const double d = y.at(n, c, h, w) - m;
          v += d * d;
        }
    v /= 36.0;
    EXPECT_NEAR(m, 0.0, 1e-5);
    EXPECT_NEAR(v, 1.0, 1e-3);
  }
}

TEST(BatchNorm, EvalModeUsesRunningStats) {
  const auto x = dt::Tensor::full({1, 1, 2, 2}, 4.0f);
  const auto gamma = dt::Tensor::full({1}, 1.0f);
  const auto beta = dt::Tensor::zeros({1});
  auto running_mean = dt::Tensor::full({1}, 2.0f);
  auto running_var = dt::Tensor::full({1}, 4.0f);
  const auto y =
      dt::batchnorm2d(x, gamma, beta, running_mean, running_var, false, 0.1f, 0.0f, nullptr);
  // (4 - 2) / sqrt(4) = 1.
  EXPECT_NEAR(y.at(0, 0, 0, 0), 1.0f, 1e-5);
  // Running stats untouched in eval mode.
  EXPECT_FLOAT_EQ(running_mean[0], 2.0f);
}

TEST(BatchNormBackward, MatchesNumeric) {
  du::Rng rng(29);
  auto x = dt::Tensor::randn({3, 2, 2, 2}, rng);
  auto gamma = dt::Tensor::full({2}, 1.3f);
  const auto beta = dt::Tensor::zeros({2});
  auto rm = dt::Tensor::zeros({2});
  auto rv = dt::Tensor::full({2}, 1.0f);

  // Loss = weighted sum so the gradient is non-uniform across elements.
  auto weighted = [](const dt::Tensor& t) {
    double s = 0.0;
    for (std::size_t i = 0; i < t.numel(); ++i) s += (static_cast<double>(i % 5) - 2.0) * t[i];
    return s;
  };
  auto loss = [&] {
    auto rm2 = rm, rv2 = rv;
    return weighted(dt::batchnorm2d(x, gamma, beta, rm2, rv2, true, 0.1f, 1e-5f, nullptr));
  };

  dt::BatchNormCache cache;
  auto rm3 = rm, rv3 = rv;
  const auto y = dt::batchnorm2d(x, gamma, beta, rm3, rv3, true, 0.1f, 1e-5f, &cache);
  dt::Tensor grad_out(y.shape());
  for (std::size_t i = 0; i < grad_out.numel(); ++i)
    grad_out[i] = static_cast<float>(static_cast<double>(i % 5) - 2.0);
  dt::Tensor grad_gamma({2}), grad_beta({2});
  const auto grad_x = dt::batchnorm2d_backward(grad_out, cache, gamma, grad_gamma, grad_beta);

  for (std::size_t i : {std::size_t{0}, std::size_t{7}, std::size_t{15}, std::size_t{23}}) {
    EXPECT_NEAR(grad_x[i], numeric_grad(x, i, loss), 3e-2) << "x index " << i;
  }
  for (std::size_t i : {std::size_t{0}, std::size_t{1}}) {
    EXPECT_NEAR(grad_gamma[i], numeric_grad(gamma, i, loss), 3e-2) << "gamma index " << i;
  }
}

TEST(MaxPool, ForwardAndBackwardRouting) {
  dt::Tensor x({1, 1, 4, 4});
  for (std::size_t i = 0; i < 16; ++i) x[i] = static_cast<float>(i);
  std::vector<int> argmax;
  const auto y = dt::maxpool2d(x, 2, 2, argmax);
  EXPECT_EQ(y.dim(2), 2);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 5.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), 15.0f);
  const auto g = dt::maxpool2d_backward(x, dt::Tensor::full(y.shape(), 1.0f), 2, 2, argmax);
  EXPECT_FLOAT_EQ(g[5], 1.0f);
  EXPECT_FLOAT_EQ(g[0], 0.0f);
  EXPECT_FLOAT_EQ(g[15], 1.0f);
}

TEST(GlobalAvgPool, ForwardBackward) {
  dt::Tensor x({1, 2, 2, 2});
  for (std::size_t i = 0; i < 8; ++i) x[i] = static_cast<float>(i);
  const auto y = dt::global_avg_pool(x);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 1.5f);
  EXPECT_FLOAT_EQ(y.at(0, 1, 0, 0), 5.5f);
  dt::Tensor grad_out({1, 2, 1, 1});
  grad_out[0] = 4.0f;
  grad_out[1] = 8.0f;
  const auto g = dt::global_avg_pool_backward(x, grad_out);
  EXPECT_FLOAT_EQ(g.at(0, 0, 1, 1), 1.0f);
  EXPECT_FLOAT_EQ(g.at(0, 1, 0, 0), 2.0f);
}

TEST(BilinearResize, UpsampleCorners) {
  dt::Tensor x({1, 1, 2, 2});
  x.at(0, 0, 0, 0) = 0.0f;
  x.at(0, 0, 0, 1) = 1.0f;
  x.at(0, 0, 1, 0) = 2.0f;
  x.at(0, 0, 1, 1) = 3.0f;
  const auto y = dt::bilinear_resize(x, 3, 3);
  // align_corners=true keeps corner values fixed and puts exact midpoints
  // in between.
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 2, 2), 3.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), 1.5f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 1), 0.5f);
}

TEST(BilinearResize, DownsampleAndBackwardConservesMass) {
  du::Rng rng(31);
  const auto x = dt::Tensor::randn({1, 1, 5, 5}, rng);
  const auto y = dt::bilinear_resize(x, 3, 3);
  const auto grad = dt::bilinear_resize_backward(x, dt::Tensor::full(y.shape(), 1.0f));
  // The adjoint distributes each output's unit gradient over its source
  // taps with weights summing to 1 -> total mass equals #outputs.
  EXPECT_NEAR(grad.sum(), 9.0f, 1e-4);
}

TEST(BilinearResize, IdentityWhenSameSize) {
  du::Rng rng(37);
  const auto x = dt::Tensor::randn({1, 2, 4, 4}, rng);
  const auto y = dt::bilinear_resize(x, 4, 4);
  for (std::size_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(ConcatSplit, RoundTrip) {
  du::Rng rng(41);
  const auto a = dt::Tensor::randn({2, 3, 4, 4}, rng);
  const auto b = dt::Tensor::randn({2, 5, 4, 4}, rng);
  const auto cat = dt::concat_channels(a, b);
  EXPECT_EQ(cat.dim(1), 8);
  EXPECT_FLOAT_EQ(cat.at(1, 2, 3, 3), a.at(1, 2, 3, 3));
  EXPECT_FLOAT_EQ(cat.at(1, 4, 0, 0), b.at(1, 1, 0, 0));
  dt::Tensor ga, gb;
  dt::split_channels(cat, 3, ga, gb);
  for (std::size_t i = 0; i < a.numel(); ++i) EXPECT_FLOAT_EQ(ga[i], a[i]);
  for (std::size_t i = 0; i < b.numel(); ++i) EXPECT_FLOAT_EQ(gb[i], b[i]);
}

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogK) {
  const auto logits = dt::Tensor::zeros({1, 4, 2, 2});
  const std::vector<int> labels(4, 1);
  dt::Tensor grad;
  const float loss = dt::softmax_cross_entropy(logits, labels, 255, grad);
  EXPECT_NEAR(loss, std::log(4.0f), 1e-5);
  // Gradient: p - one_hot = 0.25 everywhere except 0.25-1 at the label.
  EXPECT_NEAR(grad.at(0, 1, 0, 0), (0.25f - 1.0f) / 4.0f, 1e-6);
  EXPECT_NEAR(grad.at(0, 0, 0, 0), 0.25f / 4.0f, 1e-6);
}

TEST(SoftmaxCrossEntropy, IgnoreLabelSkipsPixels) {
  const auto logits = dt::Tensor::zeros({1, 2, 1, 2});
  dt::Tensor grad;
  const float loss = dt::softmax_cross_entropy(logits, {0, 255}, 255, grad);
  EXPECT_NEAR(loss, std::log(2.0f), 1e-5);
  EXPECT_FLOAT_EQ(grad.at(0, 0, 0, 1), 0.0f);
  EXPECT_FLOAT_EQ(grad.at(0, 1, 0, 1), 0.0f);
}

TEST(SoftmaxCrossEntropy, GradMatchesNumeric) {
  du::Rng rng(43);
  auto logits = dt::Tensor::randn({1, 3, 2, 2}, rng);
  const std::vector<int> labels{0, 2, 1, 255};
  dt::Tensor grad;
  (void)dt::softmax_cross_entropy(logits, labels, 255, grad);
  auto loss = [&] {
    dt::Tensor g;
    return static_cast<double>(dt::softmax_cross_entropy(logits, labels, 255, g));
  };
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    EXPECT_NEAR(grad[i], numeric_grad(logits, i, loss), 2e-3) << "logit " << i;
  }
}

TEST(ArgmaxChannels, PicksLargest) {
  dt::Tensor logits({1, 3, 1, 2});
  logits.at(0, 0, 0, 0) = 1.0f;
  logits.at(0, 1, 0, 0) = 5.0f;
  logits.at(0, 2, 0, 0) = 3.0f;
  logits.at(0, 2, 0, 1) = 9.0f;
  const auto pred = dt::argmax_channels(logits);
  EXPECT_EQ(pred[0], 1);
  EXPECT_EQ(pred[1], 2);
}

TEST(Im2Col, RoundTripAdjoint) {
  // <im2col(x), y> == <x, col2im(y)> — the defining adjoint property used
  // by the conv backward pass.
  du::Rng rng(47);
  const auto x = dt::Tensor::randn({1, 2, 4, 4}, rng);
  const dt::Conv2dSpec spec{1, 1, 1};
  const auto cols = dt::im2col(x, 0, 3, 3, spec);
  const auto y = dt::Tensor::randn(cols.shape(), rng);
  double lhs = 0.0;
  for (std::size_t i = 0; i < cols.numel(); ++i) lhs += static_cast<double>(cols[i]) * y[i];
  dt::Tensor back({1, 2, 4, 4});
  dt::col2im(y, back, 0, 3, 3, spec);
  double rhs = 0.0;
  for (std::size_t i = 0; i < x.numel(); ++i) rhs += static_cast<double>(x[i]) * back[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(DepthwiseConv, MatchesGroupedFullConv) {
  // A depthwise conv equals a full conv whose weight is zero outside the
  // diagonal channel blocks.
  du::Rng rng(51);
  const auto x = dt::Tensor::randn({2, 3, 6, 6}, rng);
  const auto dw = dt::Tensor::randn({3, 1, 3, 3}, rng);
  dt::Tensor full({3, 3, 3, 3});
  for (int c = 0; c < 3; ++c)
    for (int ky = 0; ky < 3; ++ky)
      for (int kx = 0; kx < 3; ++kx) full.at(c, c, ky, kx) = dw.at(c, 0, ky, kx);
  const dt::Conv2dSpec spec{1, 1, 1};
  const auto a = dt::depthwise_conv2d(x, dw, spec);
  const auto b = dt::conv2d(x, full, nullptr, spec);
  ASSERT_TRUE(dt::same_shape(a, b));
  for (std::size_t i = 0; i < a.numel(); ++i) EXPECT_NEAR(a[i], b[i], 1e-5);
}

TEST(DepthwiseConv, StrideAndDilation) {
  du::Rng rng(53);
  const auto x = dt::Tensor::randn({1, 2, 8, 8}, rng);
  const auto w = dt::Tensor::randn({2, 1, 3, 3}, rng);
  const auto strided = dt::depthwise_conv2d(x, w, {2, 1, 1});
  EXPECT_EQ(strided.dim(2), 4);
  const auto dilated = dt::depthwise_conv2d(x, w, {1, 2, 2});
  EXPECT_EQ(dilated.dim(2), 8);
}

TEST(DepthwiseConvBackward, MatchesNumeric) {
  du::Rng rng(57);
  auto x = dt::Tensor::randn({1, 2, 5, 5}, rng);
  auto w = dt::Tensor::randn({2, 1, 3, 3}, rng);
  const dt::Conv2dSpec spec{1, 1, 1};
  const auto y = dt::depthwise_conv2d(x, w, spec);
  const auto grad_out = dt::Tensor::full(y.shape(), 1.0f);
  dt::Tensor grad_w(w.shape());
  const auto grad_x = dt::depthwise_conv2d_backward(x, w, grad_out, spec, grad_w);
  auto loss = [&] { return sum_all(dt::depthwise_conv2d(x, w, spec)); };
  for (std::size_t i : {std::size_t{0}, std::size_t{13}, std::size_t{31}, std::size_t{49}}) {
    EXPECT_NEAR(grad_x[i], numeric_grad(x, i, loss), 2e-2) << "x index " << i;
  }
  for (std::size_t i : {std::size_t{0}, std::size_t{9}, std::size_t{17}}) {
    EXPECT_NEAR(grad_w[i], numeric_grad(w, i, loss), 2e-2) << "w index " << i;
  }
}

TEST(DepthwiseConv, RejectsBadWeightShape) {
  const auto x = dt::Tensor::full({1, 2, 4, 4}, 1.0f);
  const auto bad = dt::Tensor::full({2, 2, 3, 3}, 1.0f);
  EXPECT_THROW(dt::depthwise_conv2d(x, bad, {1, 1, 1}), std::invalid_argument);
}
