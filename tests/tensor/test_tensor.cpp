#include "dlscale/tensor/tensor.hpp"

#include <gtest/gtest.h>

namespace dt = dlscale::tensor;
namespace du = dlscale::util;

TEST(Tensor, ConstructionZeroFilled) {
  dt::Tensor t({2, 3, 4, 5});
  EXPECT_EQ(t.numel(), 120u);
  EXPECT_EQ(t.ndim(), 4u);
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_FLOAT_EQ(t[i], 0.0f);
}

TEST(Tensor, InvalidShapeThrows) {
  EXPECT_THROW(dt::Tensor({2, 0}), std::invalid_argument);
  EXPECT_THROW(dt::Tensor({-1}), std::invalid_argument);
}

TEST(Tensor, Indexing4D) {
  dt::Tensor t({2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 7.5f;
  EXPECT_FLOAT_EQ(t[t.numel() - 1], 7.5f);
  t.at(0, 0, 0, 0) = 1.0f;
  EXPECT_FLOAT_EQ(t[0], 1.0f);
}

TEST(Tensor, ReshapePreservesData) {
  dt::Tensor t({2, 6});
  t.at(1, 3) = 9.0f;
  const auto r = t.reshaped({3, 4});
  EXPECT_EQ(r.dim(0), 3);
  EXPECT_FLOAT_EQ(r[9], 9.0f);
  EXPECT_THROW(t.reshaped({5, 5}), std::invalid_argument);
}

TEST(Tensor, FillAndScale) {
  dt::Tensor t({4});
  t.fill(2.0f);
  t.scale_(3.0f);
  EXPECT_FLOAT_EQ(t.sum(), 24.0f);
}

TEST(Tensor, AddInPlace) {
  dt::Tensor a = dt::Tensor::full({3}, 1.0f);
  const dt::Tensor b = dt::Tensor::full({3}, 2.0f);
  a.add_(b);
  EXPECT_FLOAT_EQ(a[0], 3.0f);
  dt::Tensor wrong({4});
  EXPECT_THROW(a.add_(wrong), std::invalid_argument);
}

TEST(Tensor, AbsMax) {
  dt::Tensor t({3});
  t[0] = -5.0f;
  t[1] = 2.0f;
  EXPECT_FLOAT_EQ(t.abs_max(), 5.0f);
}

TEST(Tensor, RandnDeterministic) {
  du::Rng rng1(7), rng2(7);
  const auto a = dt::Tensor::randn({100}, rng1);
  const auto b = dt::Tensor::randn({100}, rng2);
  for (std::size_t i = 0; i < a.numel(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

TEST(Tensor, HeInitVariance) {
  du::Rng rng(7);
  // fan_in = 64*3*3 = 576 -> stddev = sqrt(2/576) ~ 0.0589
  const auto w = dt::Tensor::he_init({128, 64, 3, 3}, rng);
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < w.numel(); ++i) sum_sq += static_cast<double>(w[i]) * w[i];
  const double stddev = std::sqrt(sum_sq / static_cast<double>(w.numel()));
  EXPECT_NEAR(stddev, std::sqrt(2.0 / 576.0), 0.002);
}

TEST(Tensor, ShapeStr) {
  EXPECT_EQ(dt::Tensor({2, 3}).shape_str(), "[2x3]");
}

TEST(Tensor, SameShape) {
  EXPECT_TRUE(dt::same_shape(dt::Tensor({2, 3}), dt::Tensor({2, 3})));
  EXPECT_FALSE(dt::same_shape(dt::Tensor({2, 3}), dt::Tensor({3, 2})));
}
