// SIMD/scalar bitwise-identity contract for the micro-kernel layer
// (DESIGN.md §6, "SIMD dispatch"): every entry point must produce the
// exact same bits under every dispatch level the host can execute. The
// GEMM sweeps deliberately hit the awkward shapes — column counts that
// are not a multiple of the vector width, k = 0 and k = 1, single-row A —
// where panel/tail handling is easiest to get wrong.
#include "dlscale/tensor/microkernel.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "dlscale/tensor/ops.hpp"
#include "dlscale/tensor/tensor.hpp"
#include "dlscale/util/env.hpp"
#include "dlscale/util/rng.hpp"
#include "dlscale/util/simd.hpp"
#include "../support/simd_param.hpp"

namespace dt = dlscale::tensor;
namespace du = dlscale::util;
namespace micro = dlscale::tensor::micro;
using dlscale::testing::ScopedSimdLevel;
using dlscale::testing::simd_levels_under_test;
using dlscale::testing::simd_param_name;

namespace {

/// Random values with a sprinkling of exact zeros so the GEMM zero-skip
/// branch takes both sides.
std::vector<float> random_with_zeros(std::size_t n, std::uint64_t seed) {
  du::Rng rng(seed);
  std::vector<float> out(n);
  for (float& v : out) {
    v = rng.uniform_index(4) == 0 ? 0.0f
                                  : static_cast<float>(rng.normal(0.0, 1.0));
  }
  return out;
}

void expect_bitwise_equal(const std::vector<float>& a,
                          const std::vector<float>& b, const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint32_t>(a[i]),
              std::bit_cast<std::uint32_t>(b[i]))
        << what << " at index " << i << " (" << a[i] << " vs " << b[i] << ")";
  }
}

struct GemmShape {
  int rows, k, n;
};

// Odd shapes by design: n not a multiple of the 8-lane width (1, 3, 7, 9,
// 13), k at the degenerate ends (0, 1) and past the kc=128 block edge
// (129, 200), single-row A, and one comfortably blocked case.
const GemmShape kGemmShapes[] = {
    {1, 1, 1},  {1, 0, 5},   {3, 1, 7},    {2, 5, 3},    {1, 129, 13},
    {5, 37, 9}, {4, 128, 8}, {7, 200, 31}, {12, 64, 40}, {9, 130, 17},
};

/// Runs `body` under every level and returns one output vector per level.
template <typename Body>
std::vector<std::vector<float>> run_under_all_levels(Body&& body) {
  std::vector<std::vector<float>> outputs;
  for (du::SimdLevel level : simd_levels_under_test()) {
    ScopedSimdLevel scoped(level);
    outputs.push_back(body());
  }
  return outputs;
}

template <typename Body>
void expect_identical_under_all_levels(Body&& body, const std::string& what) {
  const auto outputs = run_under_all_levels(body);
  for (std::size_t i = 1; i < outputs.size(); ++i) {
    expect_bitwise_equal(outputs[0], outputs[i], what);
  }
}

}  // namespace

// ---- raw GEMM parity ------------------------------------------------------

TEST(MicrokernelGemm, GemmNnBitwiseParityAcrossLevels) {
  for (const GemmShape& s : kGemmShapes) {
    const auto a = random_with_zeros(static_cast<std::size_t>(s.rows) * s.k, 11);
    const auto b = random_with_zeros(static_cast<std::size_t>(s.k) * s.n, 12);
    const auto c0 = random_with_zeros(static_cast<std::size_t>(s.rows) * s.n, 13);
    expect_identical_under_all_levels(
        [&] {
          std::vector<float> c = c0;  // accumulates into existing contents
          micro::gemm_nn(a.data(), b.data(), c.data(), s.rows, s.k, s.n);
          return c;
        },
        "gemm_nn " + std::to_string(s.rows) + "x" + std::to_string(s.k) + "x" +
            std::to_string(s.n));
  }
}

TEST(MicrokernelGemm, GemmTnBitwiseParityAcrossLevels) {
  for (const GemmShape& s : kGemmShapes) {
    const int m = s.rows;  // A is (k x m); compute rows [i0, i1) of A^T B
    const auto a = random_with_zeros(static_cast<std::size_t>(s.k) * m, 21);
    const auto b = random_with_zeros(static_cast<std::size_t>(s.k) * s.n, 22);
    // Cover full range and a strict sub-range of rows.
    const int splits[][2] = {{0, m}, {m / 3, m - m / 4}};
    for (const auto& split : splits) {
      const int i0 = split[0], i1 = split[1];
      if (i0 >= i1) continue;
      expect_identical_under_all_levels(
          [&] {
            std::vector<float> c(static_cast<std::size_t>(i1 - i0) * s.n, 0.0f);
            micro::gemm_tn(a.data(), b.data(), c.data(), i0, i1, m, s.k, s.n);
            return c;
          },
          "gemm_tn rows [" + std::to_string(i0) + "," + std::to_string(i1) +
              ") of " + std::to_string(m) + "x" + std::to_string(s.k) + "x" +
              std::to_string(s.n));
    }
  }
}

TEST(MicrokernelGemm, GemmNtAccBitwiseParityAcrossLevels) {
  for (const GemmShape& s : kGemmShapes) {
    const auto a = random_with_zeros(static_cast<std::size_t>(s.rows) * s.k, 31);
    const auto b = random_with_zeros(static_cast<std::size_t>(s.n) * s.k, 32);
    const auto c0 = random_with_zeros(static_cast<std::size_t>(s.rows) * s.n, 33);
    expect_identical_under_all_levels(
        [&] {
          std::vector<float> c = c0;
          micro::gemm_nt_acc(a.data(), b.data(), c.data(), s.rows, s.k, s.n);
          return c;
        },
        "gemm_nt_acc " + std::to_string(s.rows) + "x" + std::to_string(s.k) +
            "x" + std::to_string(s.n));
  }
}

// ---- elementwise parity ---------------------------------------------------

TEST(MicrokernelElementwise, AddScaleSweepsBitwiseParityAcrossLevels) {
  for (std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{8},
                        std::size_t{9}, std::size_t{1000}}) {
    const auto x = random_with_zeros(n, 41);
    const auto y = random_with_zeros(n, 42);
    expect_identical_under_all_levels(
        [&] {
          std::vector<float> a = x;
          micro::add_inplace(a.data(), y.data(),
                             static_cast<std::int64_t>(n));
          return a;
        },
        "add_inplace n=" + std::to_string(n));
    expect_identical_under_all_levels(
        [&] {
          std::vector<float> a = x;
          micro::add_scalar_inplace(a.data(), 0.3125f,
                                    static_cast<std::int64_t>(n));
          return a;
        },
        "add_scalar_inplace n=" + std::to_string(n));
    expect_identical_under_all_levels(
        [&] {
          std::vector<float> a = x;
          micro::scale_inplace(a.data(), 1.0f / 3.0f,
                               static_cast<std::int64_t>(n));
          return a;
        },
        "scale_inplace n=" + std::to_string(n));
  }
}

TEST(MicrokernelElementwise, ReluHandlesNanNegativeZeroAndInfIdentically) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  // std::max(0.0f, x) maps NaN and -0.0f to +0.0f; the vector path must
  // reproduce that, not IEEE maxps-with-swapped-operands behavior.
  std::vector<float> x = {nan, -nan, -0.0f, 0.0f, inf,  -inf, -1.0f, 2.0f,
                          nan, 3.5f, -7.0f, 0.0f, -0.0f, inf,  -2.5f, 4.0f, 1.0f};
  expect_identical_under_all_levels(
      [&] {
        std::vector<float> a = x;
        micro::relu_inplace(a.data(), static_cast<std::int64_t>(a.size()));
        return a;
      },
      "relu_inplace special values");
  // Spot-check absolute semantics, not just cross-level agreement.
  {
    ScopedSimdLevel scoped(simd_levels_under_test().back());
    std::vector<float> a = x;
    micro::relu_inplace(a.data(), static_cast<std::int64_t>(a.size()));
    EXPECT_EQ(std::bit_cast<std::uint32_t>(a[0]), 0u);  // NaN -> +0.0f
    EXPECT_EQ(std::bit_cast<std::uint32_t>(a[2]), 0u);  // -0.0f -> +0.0f
    EXPECT_EQ(a[4], inf);
    EXPECT_EQ(a[5], 0.0f);
  }

  const auto g0 = random_with_zeros(x.size(), 51);
  expect_identical_under_all_levels(
      [&] {
        std::vector<float> g = g0;
        micro::relu_zero_where_nonpositive(x.data(), g.data(),
                                           static_cast<std::int64_t>(x.size()));
        return g;
      },
      "relu_zero_where_nonpositive special values");
  {
    // NaN x is not <= 0, so the gradient must survive.
    ScopedSimdLevel scoped(simd_levels_under_test().back());
    std::vector<float> g = g0;
    micro::relu_zero_where_nonpositive(x.data(), g.data(),
                                       static_cast<std::int64_t>(x.size()));
    EXPECT_EQ(std::bit_cast<std::uint32_t>(g[0]),
              std::bit_cast<std::uint32_t>(g0[0]));
    EXPECT_EQ(g[5], 0.0f);   // -inf masks
    EXPECT_EQ(g[11], 0.0f);  // 0.0f masks (x <= 0)
  }
}

TEST(MicrokernelElementwise, SgdMomentumUpdateBitwiseParityAcrossLevels) {
  for (std::size_t n : {std::size_t{1}, std::size_t{9}, std::size_t{1027}}) {
    const auto value0 = random_with_zeros(n, 61);
    const auto vel0 = random_with_zeros(n, 62);
    const auto grad = random_with_zeros(n, 63);
    expect_identical_under_all_levels(
        [&] {
          std::vector<float> value = value0, vel = vel0;
          micro::sgd_momentum_update(value.data(), vel.data(), grad.data(),
                                     0.75f, 1e-4f, 0.9f, 0.05f,
                                     static_cast<std::int64_t>(n));
          std::vector<float> both = value;
          both.insert(both.end(), vel.begin(), vel.end());
          return both;
        },
        "sgd_momentum_update n=" + std::to_string(n));
  }
}

// ---- ops-level parity (the micro-kernels as driven by real operators) -----

TEST(MicrokernelOps, MatmulFamilyBitwiseParityAcrossLevels) {
  du::Rng rng(71);
  const dt::Tensor a = dt::Tensor::randn({5, 37}, rng);
  const dt::Tensor b = dt::Tensor::randn({37, 9}, rng);
  const dt::Tensor at = dt::Tensor::randn({37, 5}, rng);
  const dt::Tensor bt = dt::Tensor::randn({9, 37}, rng);
  expect_identical_under_all_levels(
      [&] {
        const dt::Tensor c = dt::matmul(a, b);
        return std::vector<float>(c.data().begin(), c.data().end());
      },
      "matmul");
  expect_identical_under_all_levels(
      [&] {
        const dt::Tensor c = dt::matmul_tn(at, b);
        return std::vector<float>(c.data().begin(), c.data().end());
      },
      "matmul_tn");
  expect_identical_under_all_levels(
      [&] {
        const dt::Tensor c = dt::matmul_nt(a, bt);
        return std::vector<float>(c.data().begin(), c.data().end());
      },
      "matmul_nt");
}

TEST(MicrokernelOps, Conv2dForwardBackwardBitwiseParityAcrossLevels) {
  du::Rng rng(81);
  const dt::Tensor input = dt::Tensor::randn({2, 3, 9, 9}, rng);
  const dt::Tensor weight = dt::Tensor::randn({5, 3, 3, 3}, rng);
  const dt::Tensor bias = dt::Tensor::randn({5}, rng);
  const dt::Conv2dSpec spec{.stride = 1, .pad = 1, .dilation = 1};
  const dt::Tensor out_ref = dt::conv2d(input, weight, &bias, spec);
  const dt::Tensor grad_out = dt::Tensor::randn(out_ref.shape(), rng);

  expect_identical_under_all_levels(
      [&] {
        const dt::Tensor out = dt::conv2d(input, weight, &bias, spec);
        return std::vector<float>(out.data().begin(), out.data().end());
      },
      "conv2d forward");
  expect_identical_under_all_levels(
      [&] {
        dt::Tensor grad_weight = dt::Tensor::zeros(weight.shape());
        dt::Tensor grad_bias = dt::Tensor::zeros({5});
        const dt::Tensor grad_input =
            dt::conv2d_backward(input, weight, grad_out, spec, grad_weight,
                                &grad_bias);
        std::vector<float> all(grad_input.data().begin(),
                               grad_input.data().end());
        all.insert(all.end(), grad_weight.data().begin(),
                   grad_weight.data().end());
        all.insert(all.end(), grad_bias.data().begin(), grad_bias.data().end());
        return all;
      },
      "conv2d backward");
}

// ---- dispatch plumbing ----------------------------------------------------

TEST(SimdDispatch, StartupLevelHonorsEnvOverride) {
  // Under the DLSCALE_SIMD=0 ctest rerun the startup decision must be
  // scalar even on an AVX2 host; in the default run it must equal CPUID.
  const du::SimdLevel expected = du::env_bool("DLSCALE_SIMD", true)
                                     ? du::detected_simd_level()
                                     : du::SimdLevel::kScalar;
  EXPECT_EQ(du::simd_startup_level(), expected);
}

TEST(SimdDispatch, SetLevelClampsToHardware) {
  const du::SimdLevel previous = du::simd_level();
  const du::SimdLevel applied = du::set_simd_level(du::SimdLevel::kAvx2);
  // Never above what CPUID reports, and reachable even when the env knob
  // started the process in scalar mode (the clamp is to hardware, so the
  // parameterized suites can still exercise AVX2 in the env rerun).
  EXPECT_EQ(applied, du::detected_simd_level());
  EXPECT_EQ(du::simd_level(), applied);
  EXPECT_EQ(du::set_simd_level(du::SimdLevel::kScalar), du::SimdLevel::kScalar);
  du::set_simd_level(previous);
}

TEST(SimdDispatch, ActivePathTracksSelectedLevel) {
  for (du::SimdLevel level : simd_levels_under_test()) {
    ScopedSimdLevel scoped(level);
    EXPECT_STREQ(micro::active_path(), du::simd_level_name(level));
  }
}
