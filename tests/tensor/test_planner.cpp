// tensor::MemoryPlanner: greedy interval packing of traced Tensor
// liveness into a single arena (DESIGN.md §10).
#include <gtest/gtest.h>

#include <vector>

#include "dlscale/tensor/planner.hpp"
#include "dlscale/tensor/tensor.hpp"
#include "dlscale/util/arena.hpp"

namespace dt = dlscale::tensor;
namespace du = dlscale::util;

namespace {

// Overlap check against the plan's own bookkeeping: any two allocations
// whose live intervals intersect must occupy disjoint byte ranges.
void expect_no_conflicts(const du::MemoryPlan& plan,
                         const std::vector<du::ArenaTraceEvent>& trace) {
  std::uint64_t horizon = 0;
  for (const du::ArenaTraceEvent& e : trace) {
    horizon = std::max(horizon, std::max(e.alloc_tick, e.release_tick));
  }
  ++horizon;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    for (std::size_t j = i + 1; j < trace.size(); ++j) {
      const std::uint64_t end_i = trace[i].release_tick ? trace[i].release_tick : horizon;
      const std::uint64_t end_j = trace[j].release_tick ? trace[j].release_tick : horizon;
      const bool lifetimes_overlap =
          trace[i].alloc_tick < end_j && trace[j].alloc_tick < end_i;
      const bool bytes_overlap = plan.offsets[i] < plan.offsets[j] + plan.sizes[j] &&
                                 plan.offsets[j] < plan.offsets[i] + plan.sizes[i];
      if (lifetimes_overlap) {
        EXPECT_FALSE(bytes_overlap) << "allocations " << i << " and " << j
                                    << " are simultaneously live but share bytes";
      }
    }
  }
}

TEST(MemoryPlanner, EmptyTraceGivesEmptyPlan) {
  const du::MemoryPlan plan = dt::MemoryPlanner::pack({});
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.peak_bytes, 0u);
}

TEST(MemoryPlanner, DisjointLifetimesShareBytes) {
  // a: [1, 2), b: [3, 4) — never live together, must overlap in storage.
  const std::vector<du::ArenaTraceEvent> trace{{256, 1, 2}, {256, 3, 4}};
  const du::MemoryPlan plan = dt::MemoryPlanner::pack(trace);
  EXPECT_EQ(plan.naive_bytes, 512u);
  EXPECT_EQ(plan.peak_bytes, 256u);
  EXPECT_EQ(plan.offsets[0], plan.offsets[1]);
}

TEST(MemoryPlanner, OverlappingLifetimesGetDisjointBytes) {
  const std::vector<du::ArenaTraceEvent> trace{{256, 1, 3}, {256, 2, 4}};
  const du::MemoryPlan plan = dt::MemoryPlanner::pack(trace);
  EXPECT_EQ(plan.peak_bytes, 512u);
  expect_no_conflicts(plan, trace);
}

TEST(MemoryPlanner, LiveToEndConflictsWithEverything) {
  // b has release_tick 0 (a layer cache read during backward): it must
  // not share bytes with anything allocated after it.
  const std::vector<du::ArenaTraceEvent> trace{{128, 1, 2}, {128, 3, 0}, {128, 4, 5}};
  const du::MemoryPlan plan = dt::MemoryPlanner::pack(trace);
  expect_no_conflicts(plan, trace);
  // a ([1,2)) and c ([4,5)) are both disjoint from each other, and a dies
  // before b is born, so the packed peak stays below the naive sum.
  EXPECT_LT(plan.peak_bytes, plan.naive_bytes);
}

TEST(MemoryPlanner, PacksAPipelineOfTemporariesTightly) {
  // Chain of temporaries: each lives only across its successor's birth
  // (alloc i at tick 2i, release at 2i+3). Naive sum grows linearly,
  // packed peak stays at ~2 buffers.
  std::vector<du::ArenaTraceEvent> trace;
  for (std::uint64_t i = 0; i < 20; ++i) {
    trace.push_back({1024, 2 * i + 1, 2 * i + 4});
  }
  const du::MemoryPlan plan = dt::MemoryPlanner::pack(trace);
  EXPECT_EQ(plan.naive_bytes, 20u * 1024u);
  EXPECT_LE(plan.peak_bytes, 3u * 1024u);
  expect_no_conflicts(plan, trace);
}

TEST(MemoryPlanner, OffsetsStayAligned) {
  const std::vector<du::ArenaTraceEvent> trace{{64, 1, 0}, {192, 2, 0}, {64, 3, 0}};
  const du::MemoryPlan plan = dt::MemoryPlanner::pack(trace);
  for (std::size_t off : plan.offsets) {
    EXPECT_EQ(off % du::Arena::kAlignment, 0u);
  }
  EXPECT_EQ(plan.peak_bytes, 320u);  // all live: packed == naive
}

TEST(MemoryPlanner, PlanDrivesArenaReplay) {
  // End-to-end: trace real arena traffic, pack it, install the plan, and
  // replay — disjoint-lifetime buffers come back at the same address.
  du::Arena arena;
  arena.begin_trace();
  void* a = arena.allocate(512);
  arena.note_release(a);
  arena.allocate(512);  // never released
  const du::MemoryPlan plan = dt::MemoryPlanner::pack(arena.take_trace());
  EXPECT_EQ(plan.peak_bytes, 512u);  // a is dead before b exists
  arena.set_plan(plan);
  auto* ra = static_cast<std::byte*>(arena.allocate(512));
  auto* rb = static_cast<std::byte*>(arena.allocate(512));
  EXPECT_EQ(ra, rb);
}

}  // namespace
