// Int8 micro-kernel and quantization-scheme contract (DESIGN.md §9):
// the integer GEMM is bitwise identical across dispatch levels (it is
// pure integer arithmetic, so this is exactness, not luck), its
// saturating-pair semantics match the documented model, and the fp32
// round-trip through quantize -> integer GEMM -> dequantize stays within
// the scheme's error bound on real shapes.
#include "dlscale/tensor/quantize.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "dlscale/tensor/microkernel.hpp"
#include "dlscale/tensor/ops.hpp"
#include "dlscale/tensor/tensor.hpp"
#include "dlscale/util/rng.hpp"
#include "dlscale/util/simd.hpp"
#include "../support/simd_param.hpp"

namespace dt = dlscale::tensor;
namespace du = dlscale::util;
namespace micro = dlscale::tensor::micro;
namespace quant = dlscale::tensor::quant;
using dlscale::testing::ScopedSimdLevel;
using dlscale::testing::simd_levels_under_test;

namespace {

int round_up4(int v) { return (v + 3) & ~3; }

std::vector<std::uint8_t> random_u8(std::size_t n, std::uint64_t seed) {
  du::Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& v : out) v = static_cast<std::uint8_t>(rng.uniform_index(256));
  return out;
}

std::vector<std::int8_t> random_s8(std::size_t n, std::uint64_t seed) {
  du::Rng rng(seed);
  std::vector<std::int8_t> out(n);
  for (auto& v : out) v = static_cast<std::int8_t>(rng.uniform_index(256)) ;
  return out;
}

/// Plain-C model of the documented kernel semantics: per 4-element quad,
/// two saturated pair products summed exactly in i32.
std::int32_t ref_dot(const std::uint8_t* a, const std::int8_t* b_col, int k,
                     int col_stride) {
  auto sat16 = [](std::int32_t v) {
    return std::clamp(v, -32768, 32767);
  };
  std::int32_t acc = 0;
  for (int q = 0; q < round_up4(k); q += 4) {
    std::int32_t p01 = 0, p23 = 0;
    for (int t = 0; t < 2; ++t) {
      const int idx = q + t;
      if (idx < k) p01 += static_cast<std::int32_t>(a[idx]) * b_col[idx * col_stride];
    }
    for (int t = 2; t < 4; ++t) {
      const int idx = q + t;
      if (idx < k) p23 += static_cast<std::int32_t>(a[idx]) * b_col[idx * col_stride];
    }
    acc += sat16(p01) + sat16(p23);
  }
  return acc;
}

struct GemmShape {
  int rows, k, n;
};

// Same awkward-shape philosophy as the fp32 sweep: n off the 8-panel
// width, k at the degenerate ends and across quad boundaries, single-row.
const GemmShape kShapes[] = {
    {1, 1, 1},  {1, 0, 5},   {3, 1, 7},    {2, 5, 3},    {1, 129, 13},
    {5, 37, 9}, {4, 128, 8}, {7, 200, 31}, {12, 64, 40}, {9, 130, 17},
};

std::vector<std::int32_t> run_gemm_s8u8(const std::vector<std::uint8_t>& a, int lda,
                                        const std::vector<std::int8_t>& b,
                                        const GemmShape& s) {
  std::vector<std::int8_t> packed(micro::gemm_s8u8_packed_size(s.k, s.n));
  micro::gemm_s8u8_pack_b(b.data(), s.k, s.n, packed.data());
  std::vector<std::int32_t> c(static_cast<std::size_t>(s.rows) * s.n, -1);
  micro::gemm_s8u8(a.data(), lda, packed.data(), c.data(), s.rows, s.k, s.n);
  return c;
}

}  // namespace

// ---- integer GEMM ---------------------------------------------------------

TEST(GemmS8U8, MatchesReferenceSemanticsAndParityAcrossLevels) {
  for (const GemmShape& s : kShapes) {
    const int lda = round_up4(s.k);
    // Pad bytes of A are deliberately garbage: the packed B's zero pad
    // must nullify them per the kernel contract.
    auto a = random_u8(static_cast<std::size_t>(s.rows) * lda, 7 + s.k);
    const auto b = random_s8(static_cast<std::size_t>(s.k) * s.n, 11 + s.n);

    std::vector<std::vector<std::int32_t>> per_level;
    for (du::SimdLevel level : simd_levels_under_test()) {
      ScopedSimdLevel scoped(level);
      per_level.push_back(run_gemm_s8u8(a, lda, b, s));
    }
    const std::string what = std::to_string(s.rows) + "x" + std::to_string(s.k) +
                             "x" + std::to_string(s.n);
    for (std::size_t l = 1; l < per_level.size(); ++l) {
      ASSERT_EQ(per_level[0], per_level[l]) << "gemm_s8u8 " << what;
    }
    for (int i = 0; i < s.rows; ++i) {
      for (int j = 0; j < s.n; ++j) {
        ASSERT_EQ(per_level[0][static_cast<std::size_t>(i) * s.n + j],
                  ref_dot(a.data() + static_cast<std::size_t>(i) * lda, b.data() + j,
                          s.k, s.n))
            << "gemm_s8u8 " << what << " at (" << i << "," << j << ")";
      }
    }
  }
}

TEST(GemmS8U8, PairSaturationMatchesMaddubsModel) {
  // 255 * 127 + 255 * 127 = 64770 saturates to 32767 per pair; with k = 4
  // (one quad, two pairs) the exact result would be 129540 but the
  // documented semantics give 65534.
  const GemmShape s{1, 4, 1};
  const std::vector<std::uint8_t> a(4, 255);
  const std::vector<std::int8_t> b(4, 127);
  for (du::SimdLevel level : simd_levels_under_test()) {
    ScopedSimdLevel scoped(level);
    const auto c = run_gemm_s8u8(a, 4, b, s);
    EXPECT_EQ(c[0], 65534) << du::simd_level_name(level);
  }
  // Mixed-sign pairs saturate on the negative rail too.
  const std::vector<std::int8_t> bneg(4, -128);
  for (du::SimdLevel level : simd_levels_under_test()) {
    ScopedSimdLevel scoped(level);
    const auto c = run_gemm_s8u8(a, 4, bneg, s);
    EXPECT_EQ(c[0], 2 * -32768) << du::simd_level_name(level);
  }
}

TEST(GemmS8U8, GuardsRejectOverflowDepthAndShortStride) {
  std::vector<std::uint8_t> a(8, 0);
  std::vector<std::int8_t> packed(micro::gemm_s8u8_packed_size(5, 1));
  std::vector<std::int32_t> c(1);
  // lda must cover the quad-padded depth (5 -> 8).
  EXPECT_THROW(micro::gemm_s8u8(a.data(), 5, packed.data(), c.data(), 1, 5, 1),
               std::invalid_argument);
  // k beyond the accumulator-overflow ceiling is refused outright.
  EXPECT_THROW(micro::gemm_s8u8(a.data(), micro::kGemmS8U8MaxK + 4, packed.data(),
                                c.data(), 1, micro::kGemmS8U8MaxK + 1, 1),
               std::invalid_argument);
}

TEST(QuantizeU8, ParityAcrossLevelsIncludingSpecials) {
  const float inf = std::numeric_limits<float>::infinity();
  const float nan = std::numeric_limits<float>::quiet_NaN();
  for (std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{8}, std::size_t{9},
                        std::size_t{100}}) {
    du::Rng rng(33 + n);
    std::vector<float> src(n);
    for (std::size_t i = 0; i < n; ++i) {
      switch (rng.uniform_index(8)) {
        case 0: src[i] = nan; break;
        case 1: src[i] = inf; break;
        case 2: src[i] = -inf; break;
        case 3: src[i] = 3e18f; break;   // beyond i32 after scaling
        case 4: src[i] = 2.5f; break;    // exact tie for RNE
        default: src[i] = static_cast<float>(rng.normal(0.0, 3.0)); break;
      }
    }
    std::vector<std::vector<std::uint8_t>> per_level;
    for (du::SimdLevel level : simd_levels_under_test()) {
      ScopedSimdLevel scoped(level);
      std::vector<std::uint8_t> dst(n, 0xAB);
      micro::quantize_u8(src.data(), dst.data(), static_cast<std::int64_t>(n),
                         1.0f, 128);
      per_level.push_back(std::move(dst));
    }
    for (std::size_t l = 1; l < per_level.size(); ++l) {
      ASSERT_EQ(per_level[0], per_level[l]) << "quantize_u8 n=" << n;
    }
  }
}

TEST(QuantizeU8, RoundsToNearestEvenAndClamps) {
  const std::vector<float> src = {0.5f, 1.5f, 2.5f, -0.5f, -300.0f, 300.0f, 0.0f};
  std::vector<std::uint8_t> dst(src.size());
  micro::quantize_u8(src.data(), dst.data(), static_cast<std::int64_t>(src.size()),
                     1.0f, 10);
  EXPECT_EQ(dst[0], 10u);   // 0.5 -> 0 (even)
  EXPECT_EQ(dst[1], 12u);   // 1.5 -> 2 (even)
  EXPECT_EQ(dst[2], 12u);   // 2.5 -> 2 (even)
  EXPECT_EQ(dst[3], 10u);   // -0.5 -> 0
  EXPECT_EQ(dst[4], 0u);    // clamps at the bottom rail
  EXPECT_EQ(dst[5], 255u);  // clamps at the top rail
  EXPECT_EQ(dst[6], 10u);   // zero lands exactly on the zero point
}

TEST(TransposeU8, MatchesNaiveAndParityAcrossLevels) {
  // Shapes straddling the 16x16 block kernel: exact multiples, both
  // remainders, degenerate single row/column, and the deep im2col-like
  // shape the quantized conv hits.
  struct Shape {
    int rows, cols;
  };
  const Shape shapes[] = {{1, 1},  {16, 16}, {32, 48}, {17, 33},  {15, 100},
                          {100, 5}, {1, 40},  {40, 1},  {144, 67}, {576, 129}};
  for (const Shape& s : shapes) {
    const int stride = s.rows + 3;  // pad bytes must be left untouched
    const auto src = random_u8(static_cast<std::size_t>(s.rows) * s.cols,
                               17 + static_cast<std::uint64_t>(s.cols));
    std::vector<std::vector<std::uint8_t>> per_level;
    for (du::SimdLevel level : simd_levels_under_test()) {
      ScopedSimdLevel scoped(level);
      std::vector<std::uint8_t> dst(static_cast<std::size_t>(s.cols) * stride, 0xAB);
      micro::transpose_u8(src.data(), s.rows, s.cols, dst.data(), stride);
      per_level.push_back(std::move(dst));
    }
    const std::string what = std::to_string(s.rows) + "x" + std::to_string(s.cols);
    for (std::size_t l = 1; l < per_level.size(); ++l) {
      ASSERT_EQ(per_level[0], per_level[l]) << "transpose_u8 " << what;
    }
    for (int r = 0; r < s.rows; ++r) {
      for (int c = 0; c < s.cols; ++c) {
        ASSERT_EQ(per_level[0][static_cast<std::size_t>(c) * stride + r],
                  src[static_cast<std::size_t>(r) * s.cols + c])
            << "transpose_u8 " << what << " at (" << r << "," << c << ")";
      }
    }
    for (int c = 0; c < s.cols; ++c) {  // pad region untouched
      for (int p = s.rows; p < stride; ++p) {
        ASSERT_EQ(per_level[0][static_cast<std::size_t>(c) * stride + p], 0xAB);
      }
    }
  }
  std::vector<std::uint8_t> buf(4);
  EXPECT_THROW(micro::transpose_u8(buf.data(), 2, 2, buf.data(), 1),
               std::invalid_argument);
}

// ---- qparams and observers ------------------------------------------------

TEST(QuantParams, ZeroIsExactlyRepresentable) {
  for (quant::Range r : {quant::Range{0.5f, 4.0f}, quant::Range{-3.0f, -1.0f},
                         quant::Range{-2.0f, 5.0f}, quant::Range{0.0f, 0.0f}}) {
    const quant::QuantParams p = quant::choose_qparams_u8(r);
    ASSERT_GE(p.zero_point, 0);
    ASSERT_LE(p.zero_point, 255);
    ASSERT_GT(p.scale, 0.0f);
    // Quantizing 0.0 must hit the zero point exactly (im2col pad pixels).
    const float zero = 0.0f;
    std::uint8_t q = 0;
    micro::quantize_u8(&zero, &q, 1, 1.0f / p.scale, p.zero_point);
    EXPECT_EQ(q, static_cast<std::uint8_t>(p.zero_point)) << r.lo << "," << r.hi;
  }
}

TEST(Observers, MinMaxTracksExtremesAndSkipsNonFinite) {
  quant::MinMaxObserver obs;
  EXPECT_TRUE(obs.empty());
  const float inf = std::numeric_limits<float>::infinity();
  const std::vector<float> batch1 = {1.0f, -2.0f, inf, 0.5f};
  const std::vector<float> batch2 = {7.0f, std::numeric_limits<float>::quiet_NaN()};
  obs.observe(batch1.data(), batch1.size());
  obs.observe(batch2.data(), batch2.size());
  const quant::Range r = obs.range();
  EXPECT_FLOAT_EQ(r.lo, -2.0f);
  EXPECT_FLOAT_EQ(r.hi, 7.0f);
}

TEST(Observers, PercentileClipsOutliersDeterministically) {
  quant::PercentileObserver obs(99.0);
  std::vector<float> values(10000);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<float>(i) / 10000.0f;  // uniform [0, 1)
  }
  values[17] = 1e6f;  // a single outlier minmax would swallow whole
  obs.observe(values.data(), values.size());
  const quant::Range r = obs.range();
  EXPECT_LT(r.hi, 2.0f);   // outlier clipped
  EXPECT_GT(r.hi, 0.9f);   // but the bulk survives
  // Identical observation sequence -> identical range (determinism).
  quant::PercentileObserver again(99.0);
  again.observe(values.data(), values.size());
  EXPECT_EQ(again.range().lo, r.lo);
  EXPECT_EQ(again.range().hi, r.hi);
}

TEST(Observers, PercentileRejectsNonsensePercentile) {
  EXPECT_THROW(quant::PercentileObserver(0.0), std::invalid_argument);
  EXPECT_THROW(quant::PercentileObserver(101.0), std::invalid_argument);
}

// ---- quantized weights ----------------------------------------------------

TEST(QuantizedMatrix, PerChannelScalesAndColSums) {
  // Two rows with very different magnitudes: per-channel scaling must keep
  // them independent.
  const int k = 5;
  const std::vector<float> w = {0.1f, -0.2f, 0.05f, 0.0f,  0.15f,   // row 0
                                100.0f, -50.0f, 25.0f, 10.0f, -100.0f};  // row 1
  const quant::QuantizedMatrix qm = quant::QuantizedMatrix::from_rows(w.data(), 2, k);
  ASSERT_EQ(qm.n, 2);
  ASSERT_EQ(qm.k, k);
  ASSERT_EQ(qm.scales.size(), 2u);
  EXPECT_FLOAT_EQ(qm.scales[0], 0.2f / 63.0f);
  EXPECT_FLOAT_EQ(qm.scales[1], 100.0f / 63.0f);
  // col_sums must equal the sum of the quantized row (checked via the
  // dequant identity in the matmul tests; here just sanity-bound them).
  EXPECT_LE(std::abs(qm.col_sums[0]), 63 * k);
  EXPECT_LE(std::abs(qm.col_sums[1]), 63 * k);
  // An all-zero matrix quantizes without dividing by zero.
  const std::vector<float> zeros(static_cast<std::size_t>(k), 0.0f);
  const quant::QuantizedMatrix zq = quant::QuantizedMatrix::from_rows(zeros.data(), 1, k);
  EXPECT_FLOAT_EQ(zq.scales[0], 1.0f);
  EXPECT_EQ(zq.col_sums[0], 0);
}

// ---- quantized forwards vs fp32 -------------------------------------------

namespace {

/// Worst-case |error| of the scheme on one output: each input quantizes
/// within act_scale/2, each weight within w_scale/2, so the dot product
/// errs by at most k * (|a|max * w_scale/2 + |w|max * act_scale/2 +
/// scales/4) — loose but shape-aware, and deterministic.
float error_bound(float act_scale, float w_scale, float a_absmax, float w_absmax,
                  int k) {
  return static_cast<float>(k) * (a_absmax * w_scale * 0.5f + w_absmax * act_scale * 0.5f +
                                  act_scale * w_scale * 0.25f) +
         1e-4f;
}

}  // namespace

TEST(QuantizedMatmul, TracksFp32WithinQuantizationBound) {
  du::Rng rng(55);
  const int m = 9, k = 37, n = 13;
  const dt::Tensor a = dt::Tensor::randn({m, k}, rng);
  const dt::Tensor w = dt::Tensor::randn({n, k}, rng);
  const dt::Tensor bias = dt::Tensor::randn({n}, rng);
  const dt::Tensor ref = dt::matmul_nt(a, w);

  quant::MinMaxObserver obs;
  obs.observe(a.ptr(), static_cast<std::size_t>(a.numel()));
  const quant::QuantParams act = quant::choose_qparams_u8(obs.range());
  const quant::QuantizedMatrix qw = quant::QuantizedMatrix::from_rows(w.data().data(), n, k);

  const dt::Tensor out = quant::quantized_matmul(a, qw, act, &bias);
  ASSERT_EQ(out.dim(0), m);
  ASSERT_EQ(out.dim(1), n);
  float a_absmax = 0.0f, w_absmax = 0.0f;
  for (float v : a.data()) a_absmax = std::max(a_absmax, std::abs(v));
  for (float v : w.data()) w_absmax = std::max(w_absmax, std::abs(v));
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      const float expect = ref[static_cast<std::size_t>(i) * n + j] + bias[j];
      const float got = out[static_cast<std::size_t>(i) * n + j];
      ASSERT_NEAR(got, expect,
                  error_bound(act.scale, qw.scales[static_cast<std::size_t>(j)],
                              a_absmax, w_absmax, k))
          << "(" << i << "," << j << ")";
    }
  }
}

TEST(QuantizedMatmul, BitwiseParityAcrossLevels) {
  du::Rng rng(66);
  const dt::Tensor a = dt::Tensor::randn({7, 29}, rng);
  const dt::Tensor w = dt::Tensor::randn({11, 29}, rng);
  quant::MinMaxObserver obs;
  obs.observe(a.ptr(), static_cast<std::size_t>(a.numel()));
  const quant::QuantParams act = quant::choose_qparams_u8(obs.range());
  const quant::QuantizedMatrix qw = quant::QuantizedMatrix::from_rows(w.data().data(), 11, 29);
  std::vector<std::vector<float>> per_level;
  for (du::SimdLevel level : simd_levels_under_test()) {
    ScopedSimdLevel scoped(level);
    const dt::Tensor out = quant::quantized_matmul(a, qw, act, nullptr);
    per_level.emplace_back(out.data().begin(), out.data().end());
  }
  for (std::size_t l = 1; l < per_level.size(); ++l) {
    ASSERT_EQ(per_level[0], per_level[l]);
  }
}

TEST(QuantizedConv2d, TracksFp32AndIsBatchInvariant) {
  du::Rng rng(77);
  const int in_c = 3, out_c = 5, kh = 3, kw = 3;
  const dt::Tensor input = dt::Tensor::randn({3, in_c, 9, 9}, rng);
  const dt::Tensor weight = dt::Tensor::randn({out_c, in_c, kh, kw}, rng);
  const dt::Tensor bias = dt::Tensor::randn({out_c}, rng);
  const dt::Conv2dSpec spec{.stride = 1, .pad = 1, .dilation = 1};
  const dt::Tensor ref = dt::conv2d(input, weight, &bias, spec);

  quant::MinMaxObserver obs;
  obs.observe(input.ptr(), static_cast<std::size_t>(input.numel()));
  const quant::QuantParams act = quant::choose_qparams_u8(obs.range());
  const quant::QuantizedMatrix qw =
      quant::QuantizedMatrix::from_rows(weight.data().data(), out_c, in_c * kh * kw);

  const dt::Tensor out = quant::quantized_conv2d(input, qw, &bias, spec, kh, kw, act);
  ASSERT_TRUE(dt::same_shape(out, ref));
  float in_absmax = 0.0f, w_absmax = 0.0f;
  for (float v : input.data()) in_absmax = std::max(in_absmax, std::abs(v));
  for (float v : weight.data()) w_absmax = std::max(w_absmax, std::abs(v));
  const int plane = ref.dim(2) * ref.dim(3);
  for (std::size_t i = 0; i < static_cast<std::size_t>(ref.numel()); ++i) {
    const int oc = static_cast<int>((i / static_cast<std::size_t>(plane)) %
                                    static_cast<std::size_t>(out_c));
    ASSERT_NEAR(out[i], ref[i],
                error_bound(act.scale, qw.scales[static_cast<std::size_t>(oc)], in_absmax,
                            w_absmax, in_c * kh * kw))
        << i;
  }

  // Batch invariance, bitwise: each sample served alone must reproduce its
  // slice of the batched result exactly (the serving batcher's contract).
  const std::size_t sample = static_cast<std::size_t>(out.numel()) / 3;
  for (int nidx = 0; nidx < 3; ++nidx) {
    dt::Tensor single({1, in_c, 9, 9});
    const std::size_t in_sample = static_cast<std::size_t>(input.numel()) / 3;
    std::copy_n(input.ptr() + static_cast<std::size_t>(nidx) * in_sample, in_sample,
                single.ptr());
    const dt::Tensor one = quant::quantized_conv2d(single, qw, &bias, spec, kh, kw, act);
    for (std::size_t i = 0; i < sample; ++i) {
      ASSERT_EQ(one[i], out[static_cast<std::size_t>(nidx) * sample + i])
          << "sample " << nidx << " at " << i;
    }
  }
}
