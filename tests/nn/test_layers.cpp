#include "dlscale/nn/layers.hpp"

#include <gtest/gtest.h>

namespace dn = dlscale::nn;
namespace dt = dlscale::tensor;
namespace du = dlscale::util;

namespace {

double sum_all(const dt::Tensor& t) {
  double s = 0.0;
  for (std::size_t i = 0; i < t.numel(); ++i) s += t[i];
  return s;
}

}  // namespace

TEST(Conv2dLayer, ShapesAndParameters) {
  du::Rng rng(1);
  dn::Conv2d conv("c", 3, 8, 3, {2, 1, 1}, true, rng);
  const auto params = conv.parameters();
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0]->name, "c.weight");
  EXPECT_EQ(params[0]->numel(), 8u * 3 * 3 * 3);
  EXPECT_EQ(params[1]->numel(), 8u);
  const auto x = dt::Tensor::randn({2, 3, 8, 8}, rng);
  const auto y = conv.forward(x, true);
  EXPECT_EQ(y.dim(1), 8);
  EXPECT_EQ(y.dim(2), 4);
}

TEST(Conv2dLayer, BackwardBeforeForwardThrows) {
  du::Rng rng(1);
  dn::Conv2d conv("c", 1, 1, 1, {1, 0, 1}, false, rng);
  EXPECT_THROW(conv.backward(dt::Tensor({1, 1, 1, 1})), std::logic_error);
}

TEST(Conv2dLayer, GradientsAccumulateAcrossBackwardCalls) {
  du::Rng rng(2);
  dn::Conv2d conv("c", 1, 1, 1, {1, 0, 1}, false, rng);
  const auto x = dt::Tensor::full({1, 1, 2, 2}, 1.0f);
  const auto g = dt::Tensor::full({1, 1, 2, 2}, 1.0f);
  (void)conv.forward(x, true);
  (void)conv.backward(g);
  const float after_one = conv.parameters()[0]->grad[0];
  (void)conv.forward(x, true);
  (void)conv.backward(g);
  EXPECT_FLOAT_EQ(conv.parameters()[0]->grad[0], 2.0f * after_one);
}

TEST(BatchNormLayer, TrainThenEvalConsistency) {
  du::Rng rng(3);
  dn::BatchNorm2d bn("bn", 4);
  const auto x = dt::Tensor::randn({8, 4, 3, 3}, rng);
  // Train several times so running stats converge toward batch stats.
  dt::Tensor y;
  for (int i = 0; i < 200; ++i) y = bn.forward(x, true);
  const auto y_eval = bn.forward(x, false);
  for (std::size_t i = 0; i < y.numel(); ++i) EXPECT_NEAR(y[i], y_eval[i], 0.1f);
}

TEST(SequentialContainer, ForwardBackwardThroughStack) {
  du::Rng rng(4);
  dn::Sequential seq("net");
  seq.emplace<dn::ConvBnRelu>("b1", 3, 8, 3, dn::Conv2dSpec{1, 1, 1}, rng);
  seq.emplace<dn::ConvBnRelu>("b2", 8, 4, 3, dn::Conv2dSpec{1, 1, 1}, rng);
  EXPECT_EQ(seq.size(), 2u);
  const auto x = dt::Tensor::randn({2, 3, 6, 6}, rng);
  const auto y = seq.forward(x, true);
  EXPECT_EQ(y.dim(1), 4);
  const auto g = seq.backward(dt::Tensor::full(y.shape(), 1.0f));
  EXPECT_TRUE(dt::same_shape(g, x));
  // conv w/o bias + bn gamma/beta per block = 3 params per block.
  EXPECT_EQ(seq.parameters().size(), 6u);
}

TEST(ConvBnReluBlock, EndToEndGradientIsFinite) {
  du::Rng rng(5);
  dn::ConvBnRelu block("b", 2, 3, 3, dn::Conv2dSpec{1, 1, 1}, rng);
  const auto x = dt::Tensor::randn({2, 2, 4, 4}, rng);
  const auto y = block.forward(x, true);
  const auto g = block.backward(dt::Tensor::full(y.shape(), 0.5f));
  EXPECT_TRUE(dt::same_shape(g, x));
  for (dn::Parameter* p : block.parameters()) {
    EXPECT_TRUE(std::isfinite(p->grad.sum())) << p->name;
  }
}

TEST(MaxPoolLayer, HalvesResolution) {
  du::Rng rng(6);
  dn::MaxPool2d pool("p", 2, 2);
  const auto x = dt::Tensor::randn({1, 2, 6, 6}, rng);
  const auto y = pool.forward(x, true);
  EXPECT_EQ(y.dim(2), 3);
  const auto g = pool.backward(dt::Tensor::full(y.shape(), 1.0f));
  EXPECT_NEAR(sum_all(g), sum_all(dt::Tensor::full(y.shape(), 1.0f)), 1e-5);
}

TEST(BilinearResizeLayer, RoundTripShape) {
  du::Rng rng(7);
  dn::BilinearResize up("u", 8, 8);
  const auto x = dt::Tensor::randn({1, 3, 4, 4}, rng);
  const auto y = up.forward(x, true);
  EXPECT_EQ(y.dim(2), 8);
  const auto g = up.backward(dt::Tensor::full(y.shape(), 1.0f));
  EXPECT_TRUE(dt::same_shape(g, x));
}

TEST(Parameter, ZeroGrad) {
  dn::Parameter p("w", dt::Tensor::full({4}, 1.0f));
  EXPECT_TRUE(p.grad.empty());  // grads are lazy until ensure_grad()
  p.ensure_grad();
  p.grad.fill(3.0f);
  p.zero_grad();
  EXPECT_FLOAT_EQ(p.grad.sum(), 0.0f);
  EXPECT_FLOAT_EQ(p.value.sum(), 4.0f);  // values untouched
}

TEST(DepthwiseLayer, ForwardBackwardShapes) {
  du::Rng rng(8);
  dn::DepthwiseConv2d layer("dw", 4, 3, {1, 1, 1}, rng);
  const auto x = dt::Tensor::randn({2, 4, 6, 6}, rng);
  const auto y = layer.forward(x, true);
  EXPECT_TRUE(dt::same_shape(y, x));
  const auto g = layer.backward(dt::Tensor::full(y.shape(), 1.0f));
  EXPECT_TRUE(dt::same_shape(g, x));
  ASSERT_EQ(layer.parameters().size(), 1u);
  EXPECT_EQ(layer.parameters()[0]->numel(), 4u * 9);
}

TEST(SeparableLayer, ParameterCountBeatsFullConv) {
  du::Rng rng(9);
  dn::SeparableConvBnRelu separable("sep", 32, 64, {1, 1, 1}, rng);
  dn::ConvBnRelu full("full", 32, 64, 3, {1, 1, 1}, rng);
  auto count = [](std::vector<dn::Parameter*> params) {
    std::size_t total = 0;
    for (auto* p : params) total += p->numel();
    return total;
  };
  // 32*9 + 32*64 + BN  vs  32*64*9 + BN: the separable block is much smaller.
  EXPECT_LT(count(separable.parameters()), count(full.parameters()) / 3);
}

TEST(SeparableLayer, TrainsEndToEnd) {
  du::Rng rng(10);
  dn::SeparableConvBnRelu layer("sep", 3, 8, {2, 1, 1}, rng);
  const auto x = dt::Tensor::randn({2, 3, 8, 8}, rng);
  const auto y = layer.forward(x, true);
  EXPECT_EQ(y.dim(1), 8);
  EXPECT_EQ(y.dim(2), 4);
  const auto g = layer.backward(dt::Tensor::full(y.shape(), 0.1f));
  EXPECT_TRUE(dt::same_shape(g, x));
  for (auto* p : layer.parameters()) {
    EXPECT_TRUE(std::isfinite(p->grad.sum())) << p->name;
  }
}
