// Layer-level precision conversion (DESIGN.md §9): calibration recording
// through the RAII session, one-way Conv2d conversion to bf16/int8,
// inference-only enforcement afterwards, and the children() traversal
// convert_layer_tree uses to reach nested layers.
#include "dlscale/nn/quantized.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "dlscale/nn/layers.hpp"
#include "dlscale/tensor/ops.hpp"
#include "dlscale/util/rng.hpp"

namespace dn = dlscale::nn;
namespace dt = dlscale::tensor;
namespace du = dlscale::util;

namespace {

dn::Conv2d make_conv(du::Rng& rng, const std::string& name = "conv") {
  return dn::Conv2d(name, 3, 4, 3, dt::Conv2dSpec{.stride = 1, .pad = 1, .dilation = 1},
                    /*bias=*/true, rng);
}

float max_abs_diff(const dt::Tensor& a, const dt::Tensor& b) {
  float worst = 0.0f;
  for (std::size_t i = 0; i < static_cast<std::size_t>(a.numel()); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

}  // namespace

TEST(CalibrationSession, EvalForwardRecordsRangesOnlyWhileActive) {
  du::Rng rng(1);
  dn::Conv2d conv = make_conv(rng);
  const dt::Tensor x = dt::Tensor::randn({1, 3, 8, 8}, rng);

  dn::CalibrationTable table;
  (void)conv.forward(x, /*train=*/false);  // outside any session
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(dn::CalibrationSession::active(), nullptr);
  {
    dn::CalibrationSession session(table);
    EXPECT_EQ(dn::CalibrationSession::active(), &table);
    (void)conv.forward(x, /*train=*/false);
  }
  EXPECT_EQ(dn::CalibrationSession::active(), nullptr);
  EXPECT_TRUE(table.has("conv"));
  EXPECT_EQ(table.size(), 1u);
  const auto params = table.qparams("conv");
  EXPECT_GT(params.scale, 0.0f);
  EXPECT_THROW((void)table.qparams("never-seen"), std::invalid_argument);
}

TEST(CalibrationSession, SessionsNest) {
  dn::CalibrationTable outer, inner;
  dn::CalibrationSession a(outer);
  {
    dn::CalibrationSession b(inner);
    EXPECT_EQ(dn::CalibrationSession::active(), &inner);
  }
  EXPECT_EQ(dn::CalibrationSession::active(), &outer);
}

TEST(Conv2dPrecision, Bf16ForwardStaysCloseAndTrainingThrows) {
  du::Rng rng(2);
  dn::Conv2d conv = make_conv(rng);
  const dt::Tensor x = dt::Tensor::randn({2, 3, 8, 8}, rng);
  const dt::Tensor ref = conv.forward(x, /*train=*/false);

  conv.convert_to_bf16();
  EXPECT_EQ(conv.precision(), dn::Precision::kBf16);
  const dt::Tensor out = conv.forward(x, /*train=*/false);
  // bf16 has 8 significand bits: relative error ~2^-9 per weight.
  EXPECT_LT(max_abs_diff(out, ref), 0.1f);
  EXPECT_THROW((void)conv.forward(x, /*train=*/true), std::logic_error);
  EXPECT_THROW(conv.convert_to_bf16(), std::logic_error);  // one-way, once
}

TEST(Conv2dPrecision, Int8ForwardStaysCloseAndNeedsCalibration) {
  du::Rng rng(3);
  dn::Conv2d conv = make_conv(rng);
  const dt::Tensor x = dt::Tensor::randn({2, 3, 8, 8}, rng);
  const dt::Tensor ref = conv.forward(x, /*train=*/false);

  // Conversion without a recorded range must fail and leave fp32 serving.
  dn::CalibrationTable empty;
  EXPECT_THROW(conv.convert_to_int8(empty), std::invalid_argument);
  EXPECT_EQ(conv.precision(), dn::Precision::kFp32);
  EXPECT_EQ(max_abs_diff(conv.forward(x, false), ref), 0.0f);

  dn::CalibrationTable table;
  {
    dn::CalibrationSession session(table);
    (void)conv.forward(x, /*train=*/false);
  }
  conv.convert_to_int8(table);
  EXPECT_EQ(conv.precision(), dn::Precision::kInt8);
  const dt::Tensor out = conv.forward(x, /*train=*/false);
  EXPECT_LT(max_abs_diff(out, ref), 0.25f);  // 8-bit path, looser than bf16
  EXPECT_GT(max_abs_diff(out, ref), 0.0f);   // but genuinely quantized
  EXPECT_THROW((void)conv.forward(x, /*train=*/true), std::logic_error);
}

TEST(ConvertLayerTree, ReachesNestedConvsThroughChildren) {
  du::Rng rng(4);
  dn::Sequential seq("seq");
  auto& c1 = seq.emplace<dn::Conv2d>("seq.c1", 3, 4, 3,
                                     dt::Conv2dSpec{.stride = 1, .pad = 1, .dilation = 1},
                                     false, rng);
  auto& c2 = seq.emplace<dn::Conv2d>("seq.c2", 4, 2, 1,
                                     dt::Conv2dSpec{.stride = 1, .pad = 0, .dilation = 1},
                                     true, rng);
  dn::convert_layer_tree(seq, dn::Precision::kBf16, nullptr);
  EXPECT_EQ(c1.precision(), dn::Precision::kBf16);
  EXPECT_EQ(c2.precision(), dn::Precision::kBf16);
}

TEST(ConvertLayerTree, Int8WithoutTableThrows) {
  du::Rng rng(5);
  dn::Conv2d conv = make_conv(rng);
  EXPECT_THROW(dn::convert_layer_tree(conv, dn::Precision::kInt8, nullptr),
               std::invalid_argument);
}

TEST(DepthwisePrecision, Bf16StorageForEitherReducedTarget) {
  du::Rng rng(6);
  dn::DepthwiseConv2d dw("dw", 4, 3, dt::Conv2dSpec{.stride = 1, .pad = 1, .dilation = 1},
                         rng);
  const dt::Tensor x = dt::Tensor::randn({1, 4, 8, 8}, rng);
  const dt::Tensor ref = dw.forward(x, /*train=*/false);
  // Int8 target degrades DepthwiseConv2d to bf16 storage: it has no
  // im2col/GEMM form, so its arithmetic stays fp32.
  dn::CalibrationTable table;
  dn::convert_layer_tree(dw, dn::Precision::kInt8, &table);
  EXPECT_EQ(dw.precision(), dn::Precision::kBf16);
  EXPECT_LT(max_abs_diff(dw.forward(x, false), ref), 0.1f);
  EXPECT_THROW((void)dw.forward(x, /*train=*/true), std::logic_error);
}
