#include "dlscale/nn/optimizer.hpp"

#include <gtest/gtest.h>

namespace dn = dlscale::nn;
namespace dt = dlscale::tensor;

TEST(PolySchedule, EndpointsAndMonotonicity) {
  dn::PolySchedule sched{0.007, 0.9, 1000};
  EXPECT_DOUBLE_EQ(sched.lr_at(0), 0.007);
  EXPECT_NEAR(sched.lr_at(1000), 0.0, 1e-12);
  double prev = sched.lr_at(0);
  for (long i = 100; i <= 1000; i += 100) {
    const double lr = sched.lr_at(i);
    EXPECT_LT(lr, prev);
    prev = lr;
  }
}

TEST(PolySchedule, ClampsPastEnd) {
  dn::PolySchedule sched{0.01, 0.9, 100};
  EXPECT_DOUBLE_EQ(sched.lr_at(500), 0.0);
}

TEST(PolySchedule, PowerOneIsLinear) {
  dn::PolySchedule sched{1.0, 1.0, 10};
  EXPECT_NEAR(sched.lr_at(5), 0.5, 1e-12);
}

TEST(SgdMomentum, PlainSgdStep) {
  dn::Parameter p("w", dt::Tensor::full({2}, 1.0f));
  p.ensure_grad();  // grads are lazy; tests poking them directly allocate first
  p.grad.fill(0.5f);
  dn::SgdMomentum opt({&p}, {.momentum = 0.0, .weight_decay = 0.0});
  opt.step(0.1);
  EXPECT_NEAR(p.value[0], 1.0f - 0.1f * 0.5f, 1e-6);
}

TEST(SgdMomentum, MomentumAccumulates) {
  dn::Parameter p("w", dt::Tensor::zeros({1}));
  dn::SgdMomentum opt({&p}, {.momentum = 0.9, .weight_decay = 0.0});
  p.grad.fill(1.0f);
  opt.step(1.0);  // v=1, w=-1
  EXPECT_NEAR(p.value[0], -1.0f, 1e-6);
  opt.step(1.0);  // v=1.9, w=-2.9
  EXPECT_NEAR(p.value[0], -2.9f, 1e-6);
}

TEST(SgdMomentum, WeightDecayPullsTowardZero) {
  dn::Parameter p("w", dt::Tensor::full({1}, 10.0f));
  p.ensure_grad();
  p.grad.fill(0.0f);
  dn::SgdMomentum opt({&p}, {.momentum = 0.0, .weight_decay = 0.1});
  opt.step(1.0);
  EXPECT_NEAR(p.value[0], 10.0f - 1.0f, 1e-5);
}

TEST(SgdMomentum, ZeroGradClearsAll) {
  dn::Parameter a("a", dt::Tensor::zeros({3})), b("b", dt::Tensor::zeros({2}));
  a.ensure_grad();
  b.ensure_grad();
  a.grad.fill(1.0f);
  b.grad.fill(2.0f);
  dn::SgdMomentum opt({&a, &b}, {});
  opt.zero_grad();
  EXPECT_FLOAT_EQ(a.grad.sum(), 0.0f);
  EXPECT_FLOAT_EQ(b.grad.sum(), 0.0f);
}

TEST(SgdMomentum, TotalParameters) {
  dn::Parameter a("a", dt::Tensor::zeros({3, 4})), b("b", dt::Tensor::zeros({5}));
  dn::SgdMomentum opt({&a, &b}, {});
  EXPECT_EQ(opt.total_parameters(), 17u);
}

TEST(SgdMomentum, NullParameterThrows) {
  EXPECT_THROW(dn::SgdMomentum({nullptr}, {}), std::invalid_argument);
}

TEST(SgdMomentum, ConvergesOnQuadratic) {
  // Minimise f(w) = 0.5*(w-3)^2 with gradient w-3.
  dn::Parameter p("w", dt::Tensor::zeros({1}));
  dn::SgdMomentum opt({&p}, {.momentum = 0.9, .weight_decay = 0.0});
  for (int i = 0; i < 200; ++i) {
    opt.zero_grad();
    p.grad[0] = p.value[0] - 3.0f;
    opt.step(0.05);
  }
  EXPECT_NEAR(p.value[0], 3.0f, 1e-3);
}

TEST(SgdMomentum, GradNormIsGlobalL2) {
  dn::Parameter a("a", dt::Tensor::zeros({2})), b("b", dt::Tensor::zeros({1}));
  a.ensure_grad();
  b.ensure_grad();
  a.grad[0] = 3.0f;
  a.grad[1] = 0.0f;
  b.grad[0] = 4.0f;
  dn::SgdMomentum opt({&a, &b}, {});
  EXPECT_NEAR(opt.grad_norm(), 5.0, 1e-6);
}

TEST(SgdMomentum, ClippingScalesLargeGradients) {
  dn::Parameter p("w", dt::Tensor::zeros({1}));
  p.ensure_grad();
  p.grad[0] = 10.0f;
  dn::SgdMomentum opt({&p}, {.momentum = 0.0, .weight_decay = 0.0, .clip_grad_norm = 1.0});
  opt.step(1.0);
  // Gradient clipped to norm 1 -> update of exactly -1.
  EXPECT_NEAR(p.value[0], -1.0f, 1e-6);
}

TEST(SgdMomentum, ClippingLeavesSmallGradientsAlone) {
  dn::Parameter p("w", dt::Tensor::zeros({1}));
  p.ensure_grad();
  p.grad[0] = 0.5f;
  dn::SgdMomentum opt({&p}, {.momentum = 0.0, .weight_decay = 0.0, .clip_grad_norm = 1.0});
  opt.step(1.0);
  EXPECT_NEAR(p.value[0], -0.5f, 1e-6);
}
