#include "dlscale/data/dataset.hpp"

#include <gtest/gtest.h>

#include <set>

namespace dd = dlscale::data;

TEST(SyntheticShapes, DeterministicAcrossCalls) {
  dd::SyntheticShapes dataset({.image_size = 32, .num_classes = 6, .seed = 42});
  const auto a = dataset.make(17);
  const auto b = dataset.make(17);
  for (std::size_t i = 0; i < a.image.numel(); ++i) ASSERT_FLOAT_EQ(a.image[i], b.image[i]);
  EXPECT_EQ(a.labels, b.labels);
}

TEST(SyntheticShapes, DifferentIndicesDiffer) {
  dd::SyntheticShapes dataset({.image_size = 32, .seed = 42});
  const auto a = dataset.make(1);
  const auto b = dataset.make(2);
  std::size_t differing = 0;
  for (std::size_t i = 0; i < a.image.numel(); ++i) differing += a.image[i] != b.image[i];
  EXPECT_GT(differing, a.image.numel() / 2);
}

TEST(SyntheticShapes, LabelsInRange) {
  dd::SyntheticShapes dataset({.image_size = 32, .num_classes = 6, .seed = 1});
  for (std::uint64_t index = 0; index < 20; ++index) {
    for (int label : dataset.make(index).labels) {
      EXPECT_GE(label, 0);
      EXPECT_LT(label, 6);
    }
  }
}

TEST(SyntheticShapes, ContainsForegroundAndBackground) {
  dd::SyntheticShapes dataset({.image_size = 48, .num_classes = 6, .seed = 3});
  std::set<int> seen;
  for (std::uint64_t index = 0; index < 30; ++index) {
    for (int label : dataset.make(index).labels) seen.insert(label);
  }
  EXPECT_TRUE(seen.contains(0));
  // All five shape classes appear somewhere in 30 images.
  EXPECT_EQ(seen.size(), 6u);
}

TEST(SyntheticShapes, ShapePixelsHaveClassColour) {
  dd::SyntheticShapes dataset({.image_size = 48, .num_classes = 6, .noise = 0.0f, .seed = 5});
  const auto sample = dataset.make(2);
  // With zero noise, any disk pixel (class 1) must be exactly the class
  // colour (0.9, -0.4, -0.4).
  for (int y = 0; y < 48; ++y)
    for (int x = 0; x < 48; ++x) {
      if (sample.labels[static_cast<std::size_t>(y) * 48 + x] == 1) {
        EXPECT_FLOAT_EQ(sample.image.at(0, 0, y, x), 0.9f);
        EXPECT_FLOAT_EQ(sample.image.at(0, 1, y, x), -0.4f);
      }
    }
}

TEST(SyntheticShapes, BatchStacksSamples) {
  dd::SyntheticShapes dataset({.image_size = 16, .seed = 7});
  const auto batch = dataset.make_batch({3, 9});
  EXPECT_EQ(batch.image.dim(0), 2);
  EXPECT_EQ(batch.labels.size(), 2u * 16 * 16);
  const auto single = dataset.make(9);
  for (int c = 0; c < 3; ++c)
    for (int y = 0; y < 16; ++y)
      for (int x = 0; x < 16; ++x) {
        ASSERT_FLOAT_EQ(batch.image.at(1, c, y, x), single.image.at(0, c, y, x));
      }
}

TEST(SyntheticShapes, InvalidConfigThrows) {
  EXPECT_THROW(dd::SyntheticShapes({.num_classes = 1}), std::invalid_argument);
  EXPECT_THROW(dd::SyntheticShapes({.num_classes = 9}), std::invalid_argument);
  EXPECT_THROW(dd::SyntheticShapes({.image_size = 4}), std::invalid_argument);
  dd::SyntheticShapes ok({});
  EXPECT_THROW(ok.make_batch({}), std::invalid_argument);
}

TEST(DistributedSampler, ShardsAreDisjointAndCoverPermutation) {
  constexpr int kWorld = 4;
  constexpr std::uint64_t kData = 100;
  std::set<std::uint64_t> all;
  for (int rank = 0; rank < kWorld; ++rank) {
    dd::DistributedSampler sampler(kData, kWorld, rank, 11);
    const auto mine = sampler.epoch_indices(0);
    EXPECT_EQ(mine.size(), 25u);
    for (auto index : mine) {
      EXPECT_TRUE(all.insert(index).second) << "index " << index << " seen twice";
      EXPECT_LT(index, kData);
    }
  }
  EXPECT_EQ(all.size(), 100u);
}

TEST(DistributedSampler, EpochsReshuffle) {
  dd::DistributedSampler sampler(100, 1, 0, 11);
  const auto e0 = sampler.epoch_indices(0);
  const auto e1 = sampler.epoch_indices(1);
  EXPECT_NE(e0, e1);
  // Same epoch is reproducible.
  EXPECT_EQ(e0, sampler.epoch_indices(0));
}

TEST(DistributedSampler, SameSeedConsistentAcrossRanksView) {
  // Rank r's shard must equal the full permutation's strided slice —
  // verified by comparing against the world-size-1 sampler with the same
  // seed.
  dd::DistributedSampler full(40, 1, 0, 5);
  const auto perm = full.epoch_indices(3);
  for (int rank = 0; rank < 4; ++rank) {
    dd::DistributedSampler sharded(40, 4, rank, 5);
    const auto mine = sharded.epoch_indices(3);
    ASSERT_EQ(mine.size(), 10u);
    for (std::size_t i = 0; i < mine.size(); ++i) {
      EXPECT_EQ(mine[i], perm[i * 4 + static_cast<std::size_t>(rank)]);
    }
  }
}

TEST(DistributedSampler, InvalidArgsThrow) {
  EXPECT_THROW(dd::DistributedSampler(10, 0, 0, 1), std::invalid_argument);
  EXPECT_THROW(dd::DistributedSampler(10, 4, 4, 1), std::invalid_argument);
  EXPECT_THROW(dd::DistributedSampler(3, 4, 0, 1), std::invalid_argument);
}

TEST(ConfusionMatrix, PerfectPrediction) {
  dd::ConfusionMatrix confusion(3);
  confusion.update({0, 1, 2, 1}, {0, 1, 2, 1});
  EXPECT_DOUBLE_EQ(confusion.miou(), 1.0);
  EXPECT_DOUBLE_EQ(confusion.pixel_accuracy(), 1.0);
}

TEST(ConfusionMatrix, KnownMiou) {
  dd::ConfusionMatrix confusion(2);
  // truth: [0,0,1,1], pred: [0,1,1,1]
  confusion.update({0, 1, 1, 1}, {0, 0, 1, 1});
  // class 0: tp=1, union = 2 (truth) + 1 (pred) - 1 = 2 -> 0.5
  // class 1: tp=2, union = 2 + 3 - 2 = 3 -> 2/3
  EXPECT_NEAR(confusion.iou(0), 0.5, 1e-12);
  EXPECT_NEAR(confusion.iou(1), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(confusion.miou(), (0.5 + 2.0 / 3.0) / 2.0, 1e-12);
  EXPECT_NEAR(confusion.pixel_accuracy(), 0.75, 1e-12);
}

TEST(ConfusionMatrix, IgnoreLabelSkipped) {
  dd::ConfusionMatrix confusion(2);
  confusion.update({0, 1}, {0, 255});
  EXPECT_DOUBLE_EQ(confusion.pixel_accuracy(), 1.0);
}

TEST(ConfusionMatrix, AbsentClassExcludedFromMean) {
  dd::ConfusionMatrix confusion(3);
  confusion.update({0, 0}, {0, 0});  // class 1, 2 never appear
  EXPECT_DOUBLE_EQ(confusion.miou(), 1.0);
}

TEST(ConfusionMatrix, MergeViaCounts) {
  dd::ConfusionMatrix a(2), b(2), merged(2);
  a.update({0, 1}, {0, 0});
  b.update({1, 1}, {1, 0});
  merged.update({0, 1}, {0, 0});
  merged.update({1, 1}, {1, 0});
  for (std::size_t i = 0; i < a.counts().size(); ++i) {
    a.counts()[i] += b.counts()[i];
  }
  EXPECT_DOUBLE_EQ(a.miou(), merged.miou());
}

TEST(ConfusionMatrix, ErrorsOnBadInput) {
  dd::ConfusionMatrix confusion(2);
  EXPECT_THROW(confusion.update({0}, {0, 1}), std::invalid_argument);
  EXPECT_THROW(confusion.update({5}, {0}), std::out_of_range);
  EXPECT_THROW(dd::ConfusionMatrix(1), std::invalid_argument);
}

TEST(ConfusionMatrix, ResetClears) {
  dd::ConfusionMatrix confusion(2);
  confusion.update({0}, {1});
  confusion.reset();
  confusion.update({0, 1}, {0, 1});
  EXPECT_DOUBLE_EQ(confusion.miou(), 1.0);
}

TEST(Augmentation, DoubleFlipIsIdentity) {
  dd::SyntheticShapes dataset({.image_size = 16, .seed = 61});
  auto sample = dataset.make_batch({0, 1});
  const auto original_image = sample.image;
  const auto original_labels = sample.labels;
  dd::flip_horizontal(sample);
  dd::flip_horizontal(sample);
  for (std::size_t i = 0; i < original_image.numel(); ++i) {
    ASSERT_FLOAT_EQ(sample.image[i], original_image[i]);
  }
  EXPECT_EQ(sample.labels, original_labels);
}

TEST(Augmentation, FlipMovesLabelsWithPixels) {
  dd::SyntheticShapes dataset({.image_size = 16, .seed = 62});
  auto sample = dataset.make(3);
  const auto before = sample;
  dd::flip_horizontal(sample);
  const int size = 16;
  for (int y = 0; y < size; ++y)
    for (int x = 0; x < size; ++x) {
      EXPECT_EQ(sample.labels[static_cast<std::size_t>(y) * size + x],
                before.labels[static_cast<std::size_t>(y) * size + (size - 1 - x)]);
      EXPECT_FLOAT_EQ(sample.image.at(0, 0, y, x), before.image.at(0, 0, y, size - 1 - x));
    }
}

TEST(Augmentation, TranslateShiftsContentAndFillsBackground) {
  dd::SyntheticShapes dataset({.image_size = 16, .noise = 0.0f, .seed = 63});
  auto sample = dataset.make(1);
  const auto before = sample;
  dd::translate(sample, 2, -3);
  const int size = 16;
  // Interior pixels come from the shifted source.
  EXPECT_EQ(sample.labels[static_cast<std::size_t>(5) * size + 4],
            before.labels[static_cast<std::size_t>(3) * size + 7]);
  // Vacated band is background.
  for (int x = 0; x < size; ++x) {
    EXPECT_EQ(sample.labels[static_cast<std::size_t>(0) * size + x], 0);
    EXPECT_EQ(sample.labels[static_cast<std::size_t>(1) * size + x], 0);
  }
}

TEST(Augmentation, DeterministicFromRng) {
  dd::SyntheticShapes dataset({.image_size = 16, .seed = 64});
  auto a = dataset.make(5);
  auto b = dataset.make(5);
  dlscale::util::Rng rng_a(77), rng_b(77);
  dd::augment(a, rng_a);
  dd::augment(b, rng_b);
  EXPECT_EQ(a.labels, b.labels);
  for (std::size_t i = 0; i < a.image.numel(); ++i) ASSERT_FLOAT_EQ(a.image[i], b.image[i]);
}

TEST(Augmentation, ZeroShiftOnlyFlips) {
  dd::SyntheticShapes dataset({.image_size = 16, .seed = 65});
  auto sample = dataset.make(2);
  const auto before = sample;
  dlscale::util::Rng rng(1);
  dd::augment(sample, rng, /*max_shift=*/0);
  // Either identical or exactly the flip — never anything else.
  auto flipped = before;
  dd::flip_horizontal(flipped);
  const bool is_identity = sample.labels == before.labels;
  const bool is_flip = sample.labels == flipped.labels;
  EXPECT_TRUE(is_identity || is_flip);
}
