// Cross-module integration: the full stack working together.
//
//  * gradient averaging through the Horovod core matches the
//    mathematically equivalent serial computation bit-for-bit per step;
//  * one simmpi world can interleave real training and timing-mode
//    simulation;
//  * environment knobs flow end-to-end into runtime behaviour.
#include <gtest/gtest.h>

#include <cstdlib>

#include "dlscale/data/dataset.hpp"
#include "dlscale/hvd/horovod.hpp"
#include "dlscale/models/deeplab.hpp"
#include "dlscale/nn/optimizer.hpp"
#include "dlscale/perf/simulator.hpp"
#include "dlscale/tensor/ops.hpp"
#include "dlscale/train/trainer.hpp"

using namespace dlscale;

namespace {

constexpr int kIgnore = 255;

}  // namespace

TEST(Integration, HorovodAverageEqualsManualGradientAverage) {
  // The exact contract behind E6: for identical replicas, the gradients
  // Horovod hands back are the elementwise mean of the per-rank
  // gradients. (Note: data-parallel training is NOT bitwise identical to
  // serial large-batch training because BatchNorm statistics are
  // per-rank — matching real frameworks; the averaging itself is exact.)
  constexpr int kWorld = 2;
  constexpr int kPerRank = 2;
  models::MiniDeepLabV3Plus::Config model_config{.in_channels = 3, .num_classes = 4,
                                                 .input_size = 16, .width = 4};
  data::SyntheticShapes dataset({.image_size = 16, .num_classes = 4, .max_shapes = 2, .seed = 5});

  // Reference: compute each rank's gradients locally, average by hand.
  std::vector<std::vector<float>> manual_average;
  for (int rank = 0; rank < kWorld; ++rank) {
    util::Rng rng(99);
    models::MiniDeepLabV3Plus model(model_config, rng);
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < kPerRank; ++i) ids.push_back(rank * kPerRank + i);
    const auto batch = dataset.make_batch(ids);
    const auto logits = model.forward(batch.image, true);
    tensor::Tensor grad;
    (void)tensor::softmax_cross_entropy(logits, batch.labels, kIgnore, grad);
    model.backward(grad);
    const auto params = model.parameters();
    if (manual_average.empty()) manual_average.resize(params.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
      auto grad_data = params[i]->grad.data();
      if (manual_average[i].empty()) manual_average[i].assign(grad_data.size(), 0.0f);
      for (std::size_t j = 0; j < grad_data.size(); ++j) {
        manual_average[i][j] += grad_data[j] / static_cast<float>(kWorld);
      }
    }
  }

  // Distributed: same replicas, gradients averaged through Horovod.
  std::vector<std::vector<float>> distributed_grads(manual_average.size());
  mpi::run_world(kWorld, [&](mpi::Communicator& comm) {
    util::Rng rng(99);
    models::MiniDeepLabV3Plus model(model_config, rng);
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < kPerRank; ++i) ids.push_back(comm.rank() * kPerRank + i);
    const auto batch = dataset.make_batch(ids);
    const auto logits = model.forward(batch.image, true);
    tensor::Tensor grad;
    (void)tensor::softmax_cross_entropy(logits, batch.labels, kIgnore, grad);
    model.backward(grad);

    hvd::Knobs knobs;
    knobs.cycle_time_s = 1e-4;
    hvd::HorovodRuntime runtime(comm, knobs);
    auto params = model.parameters();
    for (nn::Parameter* p : params) runtime.submit({p->name, p->grad.data()});
    runtime.synchronize();
    if (comm.rank() == 0) {
      for (std::size_t i = 0; i < params.size(); ++i) {
        distributed_grads[i].assign(params[i]->grad.data().begin(),
                                    params[i]->grad.data().end());
      }
    }
  });

  for (std::size_t i = 0; i < manual_average.size(); ++i) {
    ASSERT_EQ(manual_average[i].size(), distributed_grads[i].size());
    for (std::size_t j = 0; j < manual_average[i].size(); ++j) {
      EXPECT_NEAR(manual_average[i][j], distributed_grads[i][j],
                  1e-6f + 1e-5f * std::abs(manual_average[i][j]))
          << "param " << i << " element " << j;
    }
  }
}

TEST(Integration, TrainingAndTimingCoexistInOneWorld) {
  mpi::WorldOptions options;
  options.topology = net::Topology::summit(1);
  options.profile = net::MpiProfile::mvapich2_gdr_like();
  options.timing = true;
  mpi::run_world(options, [](mpi::Communicator& comm) {
    // Timing-mode collective...
    comm.allreduce_sim(4 << 20, mpi::MemSpace::kDevice);
    const double after_sim = comm.now();
    EXPECT_GT(after_sim, 0.0);
    // ...followed by real data movement in the same world.
    std::vector<float> values(128, static_cast<float>(comm.rank()));
    comm.allreduce(std::span<float>(values), mpi::ReduceOp::kSum, mpi::MemSpace::kHost);
    EXPECT_FLOAT_EQ(values[0], 15.0f);  // 0+1+...+5
  });
}

TEST(Integration, EnvKnobsReachTheRuntime) {
  ::setenv("HOROVOD_FUSION_THRESHOLD", "1024", 1);
  ::setenv("HOROVOD_CACHE_CAPACITY", "0", 1);
  const auto knobs = hvd::Knobs::from_env(hvd::Knobs::paper_tuned());
  ::unsetenv("HOROVOD_FUSION_THRESHOLD");
  ::unsetenv("HOROVOD_CACHE_CAPACITY");

  mpi::run_world(2, [&](mpi::Communicator& comm) {
    hvd::HorovodRuntime runtime(comm, knobs);
    std::vector<float> a(512, 1.0f), b(512, 2.0f);
    runtime.submit({"env/a", std::span<float>(a)});
    runtime.submit({"env/b", std::span<float>(b)});
    runtime.synchronize();
    // 2 KiB tensors with a 1 KiB fusion threshold: two separate launches.
    EXPECT_EQ(runtime.stats().fused_batches, 2u);
    EXPECT_EQ(runtime.stats().cache_hit_cycles, 0u);
    EXPECT_FLOAT_EQ(a[0], 1.0f);
    EXPECT_FLOAT_EQ(b[0], 2.0f);
  });
}

TEST(Integration, PerfSimulatorUsesHorovodMachinery) {
  // A fusion threshold of 1 byte must produce ~one launch per gradient
  // tensor in the simulator too — proving the perf path runs the same
  // negotiation machinery as training.
  perf::ScalingConfig config;
  config.workload = models::WorkloadSpec::resnet50(8);
  config.nodes = 1;
  config.flop_efficiency = 0.4;
  config.mpi_profile = net::MpiProfile::mvapich2_gdr_like();
  config.knobs.fusion_threshold = 1;
  config.warmup_iterations = 0;
  config.iterations = 1;
  config.compute_jitter = 0.0;
  const auto result = perf::simulate(config);
  EXPECT_EQ(result.hvd_stats.fused_batches, config.workload.num_tensors());
}

TEST(Integration, MetricReductionMatchesLocalAggregation) {
  // The trainer reduces confusion-matrix counts across ranks; summing the
  // per-rank matrices locally must give the same mIOU.
  data::ConfusionMatrix reference(3);
  reference.update({0, 1, 2, 1}, {0, 1, 2, 2});
  reference.update({1, 1, 0, 0}, {1, 2, 0, 0});

  double distributed_miou = 0.0;
  mpi::run_world(2, [&](mpi::Communicator& comm) {
    data::ConfusionMatrix local(3);
    if (comm.rank() == 0) {
      local.update({0, 1, 2, 1}, {0, 1, 2, 2});
    } else {
      local.update({1, 1, 0, 0}, {1, 2, 0, 0});
    }
    std::vector<std::int64_t> counts(local.counts().begin(), local.counts().end());
    comm.allreduce(std::span<std::int64_t>(counts), mpi::ReduceOp::kSum, mpi::MemSpace::kHost);
    std::copy(counts.begin(), counts.end(), local.counts().begin());
    if (comm.rank() == 0) distributed_miou = local.miou();
  });
  EXPECT_DOUBLE_EQ(distributed_miou, reference.miou());
}
