// The zero-allocation steady-state proof (DESIGN.md §10): with the
// liveness plan installed (training) or the per-worker arena warmed up
// (serving), a steady-state iteration performs ZERO heap allocations.
//
// This binary links dlscale::alloc_hook, which replaces the global
// operator new/delete with counting versions; the tests snapshot
// util::alloc_count() around a post-warmup train step / serve batch and
// assert the delta is exactly zero. Runs under every SIMD dispatch level.
//
// The thread pool is pinned to 1: worker threads claim chunks racily, so
// per-thread scratch-arena warmup would be nondeterministic with a pool.
// Single-threaded execution exercises the identical allocation paths
// (the pool runs the same chunk function inline).
#include <gtest/gtest.h>

#include <cstdint>

#include "dlscale/data/dataset.hpp"
#include "dlscale/models/deeplab.hpp"
#include "dlscale/serve/runner.hpp"
#include "dlscale/train/trainer.hpp"
#include "dlscale/util/alloc_hook.hpp"
#include "dlscale/util/thread_pool.hpp"
#include "../support/simd_param.hpp"

namespace dd = dlscale::data;
namespace dmo = dlscale::models;
namespace ds = dlscale::serve;
namespace dt = dlscale::train;
namespace du = dlscale::util;
namespace dtr = dlscale::tensor;

namespace {

class ZeroAlloc : public dlscale::testing::SimdLevelTest {
 protected:
  void SetUp() override {
    dlscale::testing::SimdLevelTest::SetUp();
    previous_threads_ = du::global_thread_count();
    du::set_global_thread_count(1);
  }
  void TearDown() override {
    du::set_global_thread_count(previous_threads_);
    dlscale::testing::SimdLevelTest::TearDown();
  }

 private:
  int previous_threads_ = 1;
};

TEST_P(ZeroAlloc, SteadyStateTrainStepAllocatesNothing) {
  dt::TrainConfig config;
  config.model = {.in_channels = 3, .num_classes = 4, .input_size = 16, .width = 4};
  config.dataset = {.image_size = 16, .num_classes = 4, .max_shapes = 2, .noise = 0.1f,
                    .seed = 99};
  config.train_samples = 32;
  config.eval_samples = 8;
  config.batch_per_rank = 2;
  config.memory = dt::MemoryMode::kPlanned;
  dt::NoComm hook;
  dt::Trainer trainer(config, hook);
  const dd::SyntheticShapes dataset(config.dataset);
  const dd::Sample batch = dataset.make_batch({0, 1});

  // Warmup: step 1 traces and installs the plan (heap allowed); step 2 is
  // the first planned replay and also warms any lazily-grown std::vector
  // members (argmax caches etc.) to their steady-state capacity.
  trainer.train_step(batch, 0.05);
  trainer.train_step(batch, 0.05);

  const std::uint64_t before = du::alloc_count();
  trainer.train_step(batch, 0.05);
  const std::uint64_t after = du::alloc_count();
  EXPECT_EQ(after - before, 0u)
      << (after - before) << " heap allocations in a steady-state train step";
}

TEST_P(ZeroAlloc, SteadyStateServeBatchAllocatesNothing) {
  du::Rng rng(7);
  dmo::MiniDeepLabV3Plus model({.in_channels = 3, .num_classes = 4, .input_size = 16, .width = 4},
                               rng);
  du::Rng image_rng(21);
  const dtr::Tensor batch = dtr::Tensor::randn({4, 3, 16, 16}, image_rng, 0.5f);
  ds::InferenceRunner runner;

  // Warmup: first run grows the arena chain, second coalesces at the
  // watermark and reuses it.
  runner.run(model, batch);
  runner.run(model, batch);

  const std::uint64_t before = du::alloc_count();
  runner.run(model, batch);
  const std::uint64_t after = du::alloc_count();
  EXPECT_EQ(after - before, 0u)
      << (after - before) << " heap allocations in a steady-state serve batch";
}

INSTANTIATE_TEST_SUITE_P(AllLevels, ZeroAlloc,
                         ::testing::ValuesIn(dlscale::testing::simd_levels_under_test()),
                         dlscale::testing::simd_param_name);

}  // namespace
