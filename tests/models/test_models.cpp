#include <gtest/gtest.h>

#include <cmath>

#include "dlscale/models/deeplab.hpp"
#include "dlscale/models/resnet.hpp"
#include "dlscale/nn/optimizer.hpp"

namespace dmo = dlscale::models;
namespace dt = dlscale::tensor;
namespace du = dlscale::util;

TEST(MiniDeepLab, OutputShapeMatchesInput) {
  du::Rng rng(1);
  dmo::MiniDeepLabV3Plus model({.in_channels = 3, .num_classes = 5, .input_size = 32, .width = 8},
                               rng);
  const auto x = dt::Tensor::randn({2, 3, 32, 32}, rng);
  const auto logits = model.forward(x, false);
  EXPECT_EQ(logits.dim(0), 2);
  EXPECT_EQ(logits.dim(1), 5);
  EXPECT_EQ(logits.dim(2), 32);
  EXPECT_EQ(logits.dim(3), 32);
}

TEST(MiniDeepLab, InvalidInputSizeThrows) {
  du::Rng rng(1);
  EXPECT_THROW(dmo::MiniDeepLabV3Plus({.input_size = 30}, rng), std::invalid_argument);
}

TEST(MiniDeepLab, BackwardProducesFiniteGrads) {
  du::Rng rng(2);
  dmo::MiniDeepLabV3Plus model({.num_classes = 4, .input_size = 16, .width = 4}, rng);
  const auto x = dt::Tensor::randn({2, 3, 16, 16}, rng);
  const auto logits = model.forward(x, true);
  const auto g = model.backward(dt::Tensor::full(logits.shape(), 0.01f));
  EXPECT_TRUE(dt::same_shape(g, x));
  for (auto* p : model.parameters()) {
    EXPECT_TRUE(std::isfinite(p->grad.sum())) << p->name;
  }
}

TEST(MiniDeepLab, BackwardBeforeForwardThrows) {
  du::Rng rng(3);
  dmo::MiniDeepLabV3Plus model({.input_size = 16, .width = 4}, rng);
  EXPECT_THROW(model.backward(dt::Tensor({1, 6, 16, 16})), std::logic_error);
}

TEST(MiniDeepLab, ParameterOrderDeterministicAcrossInstances) {
  du::Rng rng1(7), rng2(7);
  dmo::MiniDeepLabV3Plus a({.input_size = 16, .width = 4}, rng1);
  dmo::MiniDeepLabV3Plus b({.input_size = 16, .width = 4}, rng2);
  const auto pa = a.parameters();
  const auto pb = b.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i]->name, pb[i]->name);
    ASSERT_EQ(pa[i]->numel(), pb[i]->numel());
    // Same seed -> identical initial weights (replica consistency).
    for (std::size_t j = 0; j < pa[i]->numel(); ++j) {
      ASSERT_FLOAT_EQ(pa[i]->value[j], pb[i]->value[j]) << pa[i]->name;
    }
  }
}

TEST(MiniDeepLab, TrainingStepReducesLossOnTinyProblem) {
  du::Rng rng(11);
  dmo::MiniDeepLabV3Plus model({.num_classes = 2, .input_size = 16, .width = 4}, rng);
  dlscale::nn::SgdMomentum opt(model.parameters(), {.momentum = 0.9, .weight_decay = 0.0});

  // One fixed image whose left half is class 0 and right half class 1.
  du::Rng data_rng(12);
  const auto x = dt::Tensor::randn({2, 3, 16, 16}, data_rng);
  std::vector<int> labels(2 * 16 * 16);
  for (int n = 0; n < 2; ++n)
    for (int h = 0; h < 16; ++h)
      for (int w = 0; w < 16; ++w) labels[(n * 16 + h) * 16 + w] = w < 8 ? 0 : 1;

  float first_loss = 0.0f, last_loss = 0.0f;
  for (int step = 0; step < 12; ++step) {
    opt.zero_grad();
    const auto logits = model.forward(x, true);
    dt::Tensor grad;
    const float loss = dt::softmax_cross_entropy(logits, labels, 255, grad);
    model.backward(grad);
    opt.step(0.05);
    if (step == 0) first_loss = loss;
    last_loss = loss;
  }
  EXPECT_LT(last_loss, first_loss * 0.8f) << "first " << first_loss << " last " << last_loss;
}

TEST(MiniResNet, OutputShape) {
  du::Rng rng(13);
  dmo::MiniResNet model({.num_classes = 10, .input_size = 16, .width = 8, .blocks_per_stage = 1},
                        rng);
  const auto x = dt::Tensor::randn({3, 3, 16, 16}, rng);
  const auto logits = model.forward(x, false);
  EXPECT_EQ(logits.dim(0), 3);
  EXPECT_EQ(logits.dim(1), 10);
  EXPECT_EQ(logits.dim(2), 1);
}

TEST(MiniResNet, ResidualPathGradientsFlow) {
  du::Rng rng(17);
  dmo::MiniResNet model({.num_classes = 4, .input_size = 16, .width = 4, .blocks_per_stage = 2},
                        rng);
  const auto x = dt::Tensor::randn({2, 3, 16, 16}, rng);
  const auto logits = model.forward(x, true);
  const auto g = model.backward(dt::Tensor::full(logits.shape(), 1.0f));
  EXPECT_TRUE(dt::same_shape(g, x));
  // Every parameter must receive some gradient signal.
  std::size_t nonzero = 0;
  for (auto* p : model.parameters()) {
    if (p->grad.abs_max() > 0.0f) ++nonzero;
  }
  EXPECT_GT(nonzero, model.parameters().size() * 3 / 4);
}

TEST(MiniResNet, LearnsTwoClassToy) {
  du::Rng rng(19);
  dmo::MiniResNet model({.num_classes = 2, .input_size = 8, .width = 4, .blocks_per_stage = 1},
                        rng);
  dlscale::nn::SgdMomentum opt(model.parameters(), {.momentum = 0.9, .weight_decay = 0.0});
  // Class 0: negative-mean images; class 1: positive-mean.
  dt::Tensor x({4, 3, 8, 8});
  std::vector<int> labels{0, 1, 0, 1};
  du::Rng data_rng(20);
  for (int n = 0; n < 4; ++n) {
    const float offset = labels[static_cast<std::size_t>(n)] == 0 ? -0.5f : 0.5f;
    for (int c = 0; c < 3; ++c)
      for (int h = 0; h < 8; ++h)
        for (int w = 0; w < 8; ++w)
          x.at(n, c, h, w) = offset + static_cast<float>(data_rng.normal(0.0, 0.1));
  }
  float first = 0.0f, last = 0.0f;
  for (int step = 0; step < 15; ++step) {
    opt.zero_grad();
    const auto logits = model.forward(x, true);
    dt::Tensor grad;
    const float loss = dt::softmax_cross_entropy(logits, labels, 255, grad);
    model.backward(grad);
    opt.step(0.05);
    if (step == 0) first = loss;
    last = loss;
  }
  EXPECT_LT(last, first);
}

TEST(MiniModels, ParameterCounts) {
  du::Rng rng(23);
  dmo::MiniDeepLabV3Plus dl({.input_size = 16, .width = 4}, rng);
  EXPECT_GT(dl.parameter_count(), 1000u);
  dmo::MiniResNet rn({.input_size = 16, .width = 4, .blocks_per_stage = 1}, rng);
  EXPECT_GT(rn.parameter_count(), 1000u);
}

TEST(MiniDeepLab, SeparableBackboneTrains) {
  du::Rng rng(29);
  dmo::MiniDeepLabV3Plus model({.in_channels = 3, .num_classes = 3, .input_size = 16,
                                .width = 4, .separable_backbone = true},
                               rng);
  const auto x = dt::Tensor::randn({2, 3, 16, 16}, rng);
  const auto logits = model.forward(x, true);
  EXPECT_EQ(logits.dim(1), 3);
  const auto g = model.backward(dt::Tensor::full(logits.shape(), 0.01f));
  EXPECT_TRUE(dt::same_shape(g, x));
  for (auto* p : model.parameters()) {
    EXPECT_TRUE(std::isfinite(p->grad.sum())) << p->name;
  }
}

TEST(MiniDeepLab, SeparableBackboneHasFewerParameters) {
  du::Rng rng1(31), rng2(31);
  dmo::MiniDeepLabV3Plus plain({.input_size = 16, .width = 8}, rng1);
  dmo::MiniDeepLabV3Plus xception(
      {.input_size = 16, .width = 8, .separable_backbone = true}, rng2);
  // The whole point of Xception-style separable convolutions.
  EXPECT_LT(xception.parameter_count(), plain.parameter_count());
}
