#include "dlscale/models/workload.hpp"

#include <gtest/gtest.h>

namespace dmo = dlscale::models;

TEST(WorkloadSpec, DeepLabParamCountNearPublished) {
  const auto spec = dmo::WorkloadSpec::deeplab_v3plus(1);
  // DeepLab-v3+ with Xception-65: ~54.6M parameters (fp32 -> ~218 MB).
  const double params = static_cast<double>(spec.total_param_bytes()) / 4.0;
  EXPECT_GT(params, 40e6);
  EXPECT_LT(params, 65e6);
}

TEST(WorkloadSpec, ResNet50ParamCountNearPublished) {
  const auto spec = dmo::WorkloadSpec::resnet50(1);
  const double params = static_cast<double>(spec.total_param_bytes()) / 4.0;
  // ResNet-50: 25.6M parameters.
  EXPECT_NEAR(params, 25.6e6, 3e6);
}

TEST(WorkloadSpec, ResNet50FlopsNearPublished) {
  const auto spec = dmo::WorkloadSpec::resnet50(1);
  // ~4.1 GMACs = ~8.2 GFLOPs forward per 224x224 image.
  EXPECT_GT(spec.total_fwd_flops(), 6.5e9);
  EXPECT_LT(spec.total_fwd_flops(), 10.0e9);
}

TEST(WorkloadSpec, DeepLabIsFarMoreExpensivePerImage) {
  const auto dlv3 = dmo::WorkloadSpec::deeplab_v3plus(1);
  const auto rn50 = dmo::WorkloadSpec::resnet50(1);
  // The paper's motivating observation: segmentation training is ~45x
  // slower per image (6.7 vs 300 img/s). FLOP ratio should be the same
  // order of magnitude.
  const double ratio = dlv3.total_fwd_flops() / rn50.total_fwd_flops();
  EXPECT_GT(ratio, 20.0);
  EXPECT_LT(ratio, 90.0);
}

TEST(WorkloadSpec, FlopsScaleLinearlyWithBatch) {
  const auto b1 = dmo::WorkloadSpec::deeplab_v3plus(1);
  const auto b4 = dmo::WorkloadSpec::deeplab_v3plus(4);
  EXPECT_NEAR(b4.total_fwd_flops() / b1.total_fwd_flops(), 4.0, 1e-9);
  // Parameters do not scale with batch.
  EXPECT_EQ(b1.total_param_bytes(), b4.total_param_bytes());
}

TEST(WorkloadSpec, BackwardIsTwiceForward) {
  const auto spec = dmo::WorkloadSpec::deeplab_v3plus(2);
  EXPECT_NEAR(spec.total_bwd_flops() / spec.total_fwd_flops(), 2.0, 1e-9);
}

TEST(WorkloadSpec, ManyGradientTensors) {
  // Horovod negotiates per-tensor; DLv3+ has hundreds of gradients
  // (conv weights + batch-norm pairs).
  const auto dlv3 = dmo::WorkloadSpec::deeplab_v3plus(1);
  EXPECT_GT(dlv3.num_tensors(), 150u);
  const auto rn50 = dmo::WorkloadSpec::resnet50(1);
  EXPECT_GT(rn50.num_tensors(), 100u);
}

TEST(WorkloadSpec, LayersHavePositiveCosts) {
  for (const auto& spec :
       {dmo::WorkloadSpec::deeplab_v3plus(2), dmo::WorkloadSpec::resnet50(8)}) {
    for (const auto& layer : spec.layers) {
      EXPECT_GT(layer.fwd_flops, 0.0) << spec.name << ": " << layer.name;
      EXPECT_GT(layer.param_bytes, 0u) << spec.name << ": " << layer.name;
    }
  }
}

TEST(WorkloadSpec, InvalidBatchThrows) {
  EXPECT_THROW(dmo::WorkloadSpec::deeplab_v3plus(0), std::invalid_argument);
  EXPECT_THROW(dmo::WorkloadSpec::resnet50(-1), std::invalid_argument);
}
