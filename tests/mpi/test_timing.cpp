// Virtual-time behaviour of the simmpi runtime: clocks advance through
// communication according to the cost model, rendezvous couples sender
// and receiver, NIC contention penalises flat vs hierarchical patterns,
// and timing-off worlds stay at t=0 while remaining functionally exact.
#include <gtest/gtest.h>

#include <vector>

#include "dlscale/mpi/comm.hpp"

namespace dm = dlscale::mpi;
namespace dn = dlscale::net;

namespace {

dm::WorldOptions summit_world(int nodes, dn::MpiProfile profile, bool timing = true) {
  dm::WorldOptions options;
  options.topology = dn::Topology::summit(nodes);
  options.profile = std::move(profile);
  options.timing = timing;
  return options;
}

}  // namespace

TEST(Timing, DisabledKeepsClocksAtZero) {
  dm::run_world(4, [](dm::Communicator& comm) {
    std::vector<float> data(1024, 1.0f);
    comm.allreduce(std::span<float>(data), dm::ReduceOp::kSum, dm::MemSpace::kHost);
    EXPECT_DOUBLE_EQ(comm.now(), 0.0);
    EXPECT_FALSE(comm.timing_enabled());
  });
}

TEST(Timing, ComputeAdvancesOwnClockOnly) {
  auto options = summit_world(1, dn::MpiProfile::mvapich2_gdr_like());
  dm::run_world(options, [](dm::Communicator& comm) {
    if (comm.rank() == 0) comm.compute(1.0);
    comm.barrier();
    if (comm.rank() == 0) {
      EXPECT_GE(comm.now(), 1.0);
    }
  });
}

TEST(Timing, BarrierSynchronisesClocks) {
  auto options = summit_world(1, dn::MpiProfile::mvapich2_gdr_like());
  dm::run_world(options, [](dm::Communicator& comm) {
    // One rank is far ahead; after a barrier, nobody can be behind it.
    if (comm.rank() == 2) comm.compute(0.5);
    comm.barrier();
    EXPECT_GE(comm.now(), 0.5);
  });
}

TEST(Timing, MessageCostScalesWithSize) {
  auto options = summit_world(2, dn::MpiProfile::mvapich2_gdr_like());
  dm::run_world(options, [](dm::Communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<std::byte> small(1 << 10), large(8 << 20);
      comm.send(6, 1, small, dm::MemSpace::kHost);
      comm.send(6, 2, large, dm::MemSpace::kHost);
    } else if (comm.rank() == 6) {
      std::vector<std::byte> small(1 << 10), large(8 << 20);
      comm.recv(0, 1, small, dm::MemSpace::kHost);
      const double after_small = comm.now();
      comm.recv(0, 2, large, dm::MemSpace::kHost);
      const double after_large = comm.now();
      // 8 MiB at ~24 GB/s (striped) ~ 350 us; 1 KiB ~ microseconds.
      EXPECT_GT(after_large - after_small, 50.0 * after_small);
    }
  });
}

TEST(Timing, DeviceStagingSlowerThanGdr) {
  // The same 4 MiB device-buffer transfer must be much slower under the
  // Spectrum profile (staged) than MVAPICH2-GDR (GPUDirect).
  auto run_transfer = [](dn::MpiProfile profile) {
    double elapsed = 0.0;
    auto options = summit_world(2, std::move(profile));
    dm::run_world(options, [&elapsed](dm::Communicator& comm) {
      const std::size_t bytes = 4 << 20;
      if (comm.rank() == 0) {
        std::vector<std::byte> buf(bytes);
        comm.send(6, 1, buf, dm::MemSpace::kDevice);
      } else if (comm.rank() == 6) {
        std::vector<std::byte> buf(bytes);
        comm.recv(0, 1, buf, dm::MemSpace::kDevice);
        elapsed = comm.now();
      }
    });
    return elapsed;
  };
  const double spectrum = run_transfer(dn::MpiProfile::spectrum_like());
  const double mvapich = run_transfer(dn::MpiProfile::mvapich2_gdr_like());
  EXPECT_GT(spectrum, 2.5 * mvapich);
}

TEST(Timing, RendezvousCouplesSenderClock) {
  auto options = summit_world(2, dn::MpiProfile::mvapich2_gdr_like());
  dm::run_world(options, [](dm::Communicator& comm) {
    const std::size_t bytes = 1 << 20;  // rendezvous for host space (>64 KiB)
    if (comm.rank() == 0) {
      std::vector<std::byte> buf(bytes);
      comm.send(6, 1, buf, dm::MemSpace::kHost);
      comm.barrier();
      // Receiver was busy until t=0.1; the rendezvous transfer cannot have
      // released the send buffer before then.
      EXPECT_GE(comm.now(), 0.1);
    } else {
      if (comm.rank() == 6) {
        comm.compute(0.1);
        std::vector<std::byte> buf(bytes);
        comm.recv(0, 1, buf, dm::MemSpace::kHost);
        EXPECT_GE(comm.now(), 0.1);
      }
      comm.barrier();
    }
  });
}

TEST(Timing, EagerDoesNotBlockSender) {
  auto options = summit_world(2, dn::MpiProfile::mvapich2_gdr_like());
  dm::run_world(options, [](dm::Communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<std::byte> buf(256);  // eager-sized
      comm.send(6, 1, buf, dm::MemSpace::kHost);
      // Sender's clock reflects only setup overheads, far below the
      // receiver's busy time.
      EXPECT_LT(comm.now(), 1e-3);
    } else if (comm.rank() == 6) {
      comm.compute(0.05);
      std::vector<std::byte> buf(256);
      comm.recv(0, 1, buf, dm::MemSpace::kHost);
      EXPECT_GE(comm.now(), 0.05);
    }
  });
}

TEST(Timing, RingAllreduceTimeGrowsWithMessageSize) {
  auto options = summit_world(2, dn::MpiProfile::mvapich2_gdr_like());
  dm::run_world(options, [](dm::Communicator& comm) {
    comm.allreduce_sim(64 << 10, dm::MemSpace::kDevice, dm::AllreduceAlgo::kRing);
    const double small = comm.now();
    comm.allreduce_sim(64 << 20, dm::MemSpace::kDevice, dm::AllreduceAlgo::kRing);
    const double large = comm.now() - small;
    EXPECT_GT(large, 10 * small);
  });
}

TEST(Timing, HierarchicalCompetitiveUnderStagedLibrary) {
  // Under a staging-pipeline-bound library (Spectrum) hierarchical and
  // flat device allreduce end up within a small factor of each other
  // (the per-process staging pipeline, not the NIC, is the bottleneck,
  // so concentrating traffic into node leaders neither wins nor loses
  // much). Under MVAPICH2-GDR the topology-aware flat ring wins outright
  // at large sizes.
  auto measure = [](dn::MpiProfile profile, bool hierarchical) {
    double elapsed = 0.0;
    auto options = summit_world(4, std::move(profile));
    dm::run_world(options, [&](dm::Communicator& comm) {
      const std::size_t bytes = 32 << 20;
      if (hierarchical) {
        comm.hierarchical_allreduce_sim(bytes, dm::MemSpace::kDevice);
      } else {
        comm.allreduce_sim(bytes, dm::MemSpace::kDevice);
      }
      comm.barrier();
      if (comm.rank() == 0) elapsed = comm.now();
    });
    return elapsed;
  };
  const double spectrum_flat = measure(dn::MpiProfile::spectrum_like(), false);
  const double spectrum_hier = measure(dn::MpiProfile::spectrum_like(), true);
  EXPECT_LT(spectrum_hier, 1.3 * spectrum_flat);
  EXPECT_LT(spectrum_flat, 1.3 * spectrum_hier);
  // Either Spectrum path is far slower than MVAPICH's flat ring.
  const double mvapich_flat = measure(dn::MpiProfile::mvapich2_gdr_like(), false);
  EXPECT_GT(spectrum_flat, 3.0 * mvapich_flat);
}

TEST(Timing, StatsAccumulate) {
  auto options = summit_world(2, dn::MpiProfile::mvapich2_gdr_like());
  dm::run_world(options, [](dm::Communicator& comm) {
    comm.allreduce_sim(1 << 20, dm::MemSpace::kDevice);
    const auto stats = comm.stats();
    EXPECT_GT(stats.messages, 0u);
    EXPECT_GT(stats.bytes, 0u);
    EXPECT_GT(stats.comm_time_s, 0.0);
  });
}

TEST(Timing, TimingOnAndOffProduceIdenticalSums) {
  // The virtual-clock machinery must not perturb data results.
  auto run_sum = [](bool timing) {
    float result = 0.0f;
    auto options = summit_world(1, dn::MpiProfile::mvapich2_gdr_like(), timing);
    dm::run_world(options, [&result](dm::Communicator& comm) {
      std::vector<float> data(257, static_cast<float>(comm.rank() + 1));
      comm.allreduce(std::span<float>(data), dm::ReduceOp::kSum, dm::MemSpace::kDevice);
      if (comm.rank() == 0) result = data[200];
    });
    return result;
  };
  EXPECT_FLOAT_EQ(run_sum(true), run_sum(false));
}
