#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "dlscale/mpi/comm.hpp"

namespace dm = dlscale::mpi;

TEST(Barrier, AllWorldSizes) {
  for (int n : {1, 2, 3, 5, 8}) {
    dm::run_world(n, [](dm::Communicator& comm) {
      for (int round = 0; round < 3; ++round) comm.barrier();
    });
  }
}

TEST(Bcast, FromEveryRoot) {
  constexpr int kWorld = 5;
  for (int root = 0; root < kWorld; ++root) {
    dm::run_world(kWorld, [root](dm::Communicator& comm) {
      std::vector<int> data(4, comm.rank() == root ? 99 : 0);
      comm.bcast(std::as_writable_bytes(std::span<int>(data)), root);
      for (int v : data) EXPECT_EQ(v, 99);
    });
  }
}

TEST(Bcast, LargePayload) {
  dm::run_world(4, [](dm::Communicator& comm) {
    std::vector<float> data(1 << 16);
    if (comm.rank() == 2) {
      for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<float>(i % 1000);
    }
    comm.bcast(std::as_writable_bytes(std::span<float>(data)), 2);
    EXPECT_FLOAT_EQ(data[999], 999.0f);
    EXPECT_FLOAT_EQ(data[65535], static_cast<float>(65535 % 1000));
  });
}

TEST(BcastBlob, VariableLength) {
  dm::run_world(3, [](dm::Communicator& comm) {
    std::string payload = comm.rank() == 0 ? "tensor-response-list" : "";
    const auto blob =
        comm.bcast_blob(std::as_bytes(std::span<const char>(payload.data(), payload.size())), 0);
    EXPECT_EQ(std::string(reinterpret_cast<const char*>(blob.data()), blob.size()),
              "tensor-response-list");
  });
}

TEST(GatherBlobs, VariableLengthAtRoot) {
  dm::run_world(4, [](dm::Communicator& comm) {
    // Each rank contributes rank+1 bytes of its rank id.
    std::vector<std::byte> mine(static_cast<std::size_t>(comm.rank() + 1),
                                static_cast<std::byte>(comm.rank()));
    const auto all = comm.gather_blobs(mine, 0);
    if (comm.rank() == 0) {
      ASSERT_EQ(all.size(), 4u);
      for (int r = 0; r < 4; ++r) {
        EXPECT_EQ(all[static_cast<std::size_t>(r)].size(), static_cast<std::size_t>(r + 1));
        for (auto b : all[static_cast<std::size_t>(r)]) {
          EXPECT_EQ(static_cast<int>(b), r);
        }
      }
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST(Allgather, RingDistributesBlocks) {
  constexpr int kWorld = 6;
  dm::run_world(kWorld, [](dm::Communicator& comm) {
    std::vector<int> mine{comm.rank() * 10, comm.rank() * 10 + 1};
    std::vector<int> out(static_cast<std::size_t>(2 * comm.size()));
    comm.allgather(std::as_bytes(std::span<const int>(mine)),
                   std::as_writable_bytes(std::span<int>(out)));
    for (int r = 0; r < comm.size(); ++r) {
      EXPECT_EQ(out[static_cast<std::size_t>(2 * r)], r * 10);
      EXPECT_EQ(out[static_cast<std::size_t>(2 * r + 1)], r * 10 + 1);
    }
  });
}

TEST(Allgather, WrongOutputSizeThrows) {
  EXPECT_THROW(dm::run_world(2,
                             [](dm::Communicator& comm) {
                               std::vector<int> mine{1};
                               std::vector<int> out(3);
                               comm.allgather(std::as_bytes(std::span<const int>(mine)),
                                              std::as_writable_bytes(std::span<int>(out)));
                             }),
               std::invalid_argument);
}

TEST(Reduce, SumAtEveryRoot) {
  constexpr int kWorld = 7;
  for (int root : {0, 3, 6}) {
    dm::run_world(kWorld, [root](dm::Communicator& comm) {
      std::vector<double> data{static_cast<double>(comm.rank()), 1.0};
      comm.reduce(std::span<double>(data), dm::ReduceOp::kSum, root, dm::MemSpace::kHost);
      if (comm.rank() == root) {
        EXPECT_DOUBLE_EQ(data[0], kWorld * (kWorld - 1) / 2.0);
        EXPECT_DOUBLE_EQ(data[1], kWorld);
      }
    });
  }
}

TEST(Reduce, MaxAndMin) {
  dm::run_world(5, [](dm::Communicator& comm) {
    std::vector<int> mx{comm.rank()};
    comm.reduce(std::span<int>(mx), dm::ReduceOp::kMax, 0, dm::MemSpace::kHost);
    std::vector<int> mn{comm.rank() + 10};
    comm.reduce(std::span<int>(mn), dm::ReduceOp::kMin, 0, dm::MemSpace::kHost);
    if (comm.rank() == 0) {
      EXPECT_EQ(mx[0], 4);
      EXPECT_EQ(mn[0], 10);
    }
  });
}

TEST(Split, GroupsByColorOrderedByParentRank) {
  dm::run_world(6, [](dm::Communicator& comm) {
    auto sub = comm.split(comm.rank() % 2);
    ASSERT_TRUE(sub.valid());
    EXPECT_EQ(sub.size(), 3);
    EXPECT_EQ(sub.rank(), comm.rank() / 2);
    EXPECT_EQ(sub.global_rank(), comm.rank());
    // The subcommunicator must be fully functional.
    std::vector<int> data{1};
    sub.allreduce(std::span<int>(data), dm::ReduceOp::kSum, dm::MemSpace::kHost);
    EXPECT_EQ(data[0], 3);
  });
}

TEST(Split, NegativeColorYieldsNullComm) {
  dm::run_world(4, [](dm::Communicator& comm) {
    auto sub = comm.split(comm.rank() == 0 ? 0 : -1);
    EXPECT_EQ(sub.valid(), comm.rank() == 0);
    if (sub.valid()) {
      EXPECT_EQ(sub.size(), 1);
    }
  });
}

TEST(Split, NestedSplits) {
  dm::run_world(8, [](dm::Communicator& comm) {
    auto half = comm.split(comm.rank() / 4);  // two groups of 4
    auto quarter = half.split(half.rank() / 2);  // two groups of 2 within each
    EXPECT_EQ(quarter.size(), 2);
    std::vector<int> data{comm.rank()};
    quarter.allreduce(std::span<int>(data), dm::ReduceOp::kSum, dm::MemSpace::kHost);
    // Partner differs by 1 in world rank.
    const int base = (comm.rank() / 2) * 2;
    EXPECT_EQ(data[0], base + base + 1);
  });
}

TEST(Collectives, MixedSequenceKeepsChannelsSeparate) {
  // Interleave several collectives and pt2pt traffic; FIFO matching per
  // channel must keep everything consistent.
  dm::run_world(4, [](dm::Communicator& comm) {
    comm.barrier();
    std::vector<int> a{comm.rank()};
    comm.allreduce(std::span<int>(a), dm::ReduceOp::kSum, dm::MemSpace::kHost);
    EXPECT_EQ(a[0], 6);
    if (comm.rank() == 0) comm.send_value(1, 42, 1234);
    if (comm.rank() == 1) {
      EXPECT_EQ(comm.recv_value<int>(0, 42), 1234);
    }
    comm.barrier();
    std::vector<int> b{1};
    comm.allreduce(std::span<int>(b), dm::ReduceOp::kSum, dm::MemSpace::kHost);
    EXPECT_EQ(b[0], 4);
  });
}

TEST(Scatter, RootDistributesBlocks) {
  dm::run_world(4, [](dm::Communicator& comm) {
    std::vector<int> blocks;
    if (comm.rank() == 1) {
      for (int r = 0; r < 4; ++r) {
        blocks.push_back(r * 100);
        blocks.push_back(r * 100 + 1);
      }
    }
    std::vector<int> mine(2);
    comm.scatter(std::as_bytes(std::span<const int>(blocks)),
                 std::as_writable_bytes(std::span<int>(mine)), 1);
    EXPECT_EQ(mine[0], comm.rank() * 100);
    EXPECT_EQ(mine[1], comm.rank() * 100 + 1);
  });
}

TEST(Scatter, WrongRootSizeThrows) {
  EXPECT_THROW(dm::run_world(2,
                             [](dm::Communicator& comm) {
                               std::vector<int> blocks(3);  // not 2 blocks of 1
                               std::vector<int> mine(1);
                               comm.scatter(std::as_bytes(std::span<const int>(blocks)),
                                            std::as_writable_bytes(std::span<int>(mine)),
                                            0);
                             }),
               std::invalid_argument);
}

TEST(Gather, RootCollectsBlocksInRankOrder) {
  dm::run_world(5, [](dm::Communicator& comm) {
    std::vector<int> mine{comm.rank() * 7};
    std::vector<int> blocks(comm.rank() == 2 ? 5 : 0);
    comm.gather(std::as_bytes(std::span<const int>(mine)),
                std::as_writable_bytes(std::span<int>(blocks)), 2);
    if (comm.rank() == 2) {
      for (int r = 0; r < 5; ++r) EXPECT_EQ(blocks[static_cast<std::size_t>(r)], r * 7);
    }
  });
}

TEST(Alltoall, TransposesBlocks) {
  dm::run_world(4, [](dm::Communicator& comm) {
    // send block r = my_rank * 10 + r; after alltoall, recv block r must
    // be r * 10 + my_rank.
    std::vector<int> send(4), recv(4);
    for (int r = 0; r < 4; ++r) send[static_cast<std::size_t>(r)] = comm.rank() * 10 + r;
    comm.alltoall(std::as_bytes(std::span<const int>(send)),
                  std::as_writable_bytes(std::span<int>(recv)));
    for (int r = 0; r < 4; ++r) {
      EXPECT_EQ(recv[static_cast<std::size_t>(r)], r * 10 + comm.rank());
    }
  });
}

TEST(Alltoall, MismatchedBuffersThrow) {
  EXPECT_THROW(dm::run_world(2,
                             [](dm::Communicator& comm) {
                               std::vector<int> send(2), recv(3);
                               comm.alltoall(std::as_bytes(std::span<const int>(send)),
                                             std::as_writable_bytes(std::span<int>(recv)));
                             }),
               std::invalid_argument);
}

TEST(Alltoall, SingleRank) {
  dm::run_world(1, [](dm::Communicator& comm) {
    std::vector<int> send{42}, recv{0};
    comm.alltoall(std::as_bytes(std::span<const int>(send)),
                  std::as_writable_bytes(std::span<int>(recv)));
    EXPECT_EQ(recv[0], 42);
  });
}
