// Fault-injection tests for simmpi: FaultPlan kills, the RankFailed error
// channel, revoked-communicator semantics, shrink(), and the seeded
// drop/delay link perturbations.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <tuple>
#include <vector>

#include "dlscale/mpi/comm.hpp"
#include "dlscale/net/profile.hpp"
#include "dlscale/net/topology.hpp"

namespace dm = dlscale::mpi;

namespace {

dm::WorldOptions functional_world(int ranks) {
  dm::WorldOptions options;
  options.topology = dlscale::net::Topology::single_node(ranks);
  options.profile = dlscale::net::MpiProfile::ideal();
  options.timing = false;
  return options;
}

dm::WorldOptions timed_world(int ranks) {
  dm::WorldOptions options;
  options.topology = dlscale::net::Topology::single_node(ranks);
  options.profile = dlscale::net::MpiProfile::mvapich2_gdr_like();
  options.timing = true;
  return options;
}

}  // namespace

TEST(FaultKill, StepKillRaisesRankFailedOnSurvivors) {
  auto options = functional_world(4);
  options.faults.kills = {{/*global_rank=*/2, /*at_step=*/3}};
  std::atomic<int> failures{0};
  dm::run_world(options, [&](dm::Communicator& comm) {
    try {
      for (int step = 0; step < 10; ++step) {
        comm.fault_tick();
        std::vector<double> v{1.0};
        comm.allreduce(std::span<double>(v), dm::ReduceOp::kSum);
      }
      FAIL() << "rank " << comm.rank() << " finished despite injected kill";
    } catch (const dm::RankFailed& e) {
      EXPECT_EQ(e.failed_global_rank, 2);
      EXPECT_FALSE(e.op.empty());
      failures.fetch_add(1);
    }
  });
  // The three survivors each observe the failure; the dead rank exits
  // cleanly inside run_world.
  EXPECT_EQ(failures.load(), 3);
}

TEST(FaultKill, BlockedRecvIsWokenByKill) {
  // Rank 1 blocks on a recv from rank 0 *before* rank 0 dies; the kill
  // must wake it and raise rather than leave it hung forever.
  auto options = functional_world(2);
  options.faults.kills = {{/*global_rank=*/0, /*at_step=*/0}};
  dm::run_world(options, [](dm::Communicator& comm) {
    if (comm.rank() == 0) {
      // Give rank 1 a moment to block, then die.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      comm.fault_tick();
      FAIL() << "rank 0 should have been killed by fault_tick";
    } else {
      std::vector<std::byte> out(8);
      EXPECT_THROW(comm.recv(0, 7, out), dm::RankFailed);
    }
  });
}

TEST(FaultKill, IrecvWaitStraddlingKillRaises) {
  // Satellite: isend/irecv pairs posted before the kill; wait() after the
  // kill must raise RankFailed, not hang or deliver garbage.
  auto options = functional_world(3);
  options.faults.kills = {{/*global_rank=*/1, /*at_step=*/0}};
  dm::run_world(options, [](dm::Communicator& comm) {
    if (comm.rank() == 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      comm.fault_tick();
    } else if (comm.rank() == 2) {
      std::vector<float> theirs(4);
      // Posted while rank 1 is still alive; never matched.
      auto request = comm.irecv(1, 11, std::as_writable_bytes(std::span<float>(theirs)));
      EXPECT_FALSE(request.completed());
      try {
        request.wait();
        FAIL() << "wait() completed against a dead sender";
      } catch (const dm::RankFailed& e) {
        EXPECT_EQ(e.failed_global_rank, 1);
        EXPECT_EQ(e.tag, 11);
      }
    }
  });
}

TEST(FaultKill, SendOnRevokedCommunicatorRaises) {
  auto options = functional_world(3);
  options.faults.kills = {{/*global_rank=*/2, /*at_step=*/0}};
  dm::run_world(options, [](dm::Communicator& comm) {
    if (comm.rank() == 2) {
      comm.fault_tick();
    } else {
      // Wait for the death to land, then any op — even a send to a LIVE
      // peer — must raise: the communicator is revoked as a whole.
      while (comm.world_epoch() == 1) std::this_thread::sleep_for(std::chrono::milliseconds(1));
      const int live_peer = comm.rank() == 0 ? 1 : 0;
      std::vector<std::byte> data(4);
      EXPECT_THROW(comm.send(live_peer, 3, data), dm::RankFailed);
      EXPECT_TRUE(comm.revoked());
    }
  });
}

TEST(FaultKill, AliveAndWorldEpochTrackDeaths) {
  auto options = functional_world(4);
  options.faults.kills = {{/*global_rank=*/1, /*at_step=*/1}};
  std::atomic<int> checked{0};  // gates the death on the pre-death asserts
  dm::run_world(options, [&](dm::Communicator& comm) {
    EXPECT_EQ(comm.world_epoch(), 1u);
    EXPECT_EQ(comm.alive(), (std::vector<int>{0, 1, 2, 3}));
    checked.fetch_add(1);
    comm.fault_tick();  // tick 0: nobody dies
    if (comm.rank() == 1) {
      while (checked.load() < 4) std::this_thread::sleep_for(std::chrono::milliseconds(1));
      comm.fault_tick();  // tick 1: rank 1 dies here
      FAIL() << "rank 1 survived its kill step";
    }
    while (comm.world_epoch() == 1) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_EQ(comm.world_epoch(), 2u);
    EXPECT_EQ(comm.alive(), (std::vector<int>{0, 2, 3}));
  });
}

TEST(FaultShrink, ShrinkReDensifiesSurvivors) {
  auto options = functional_world(4);
  options.faults.kills = {{/*global_rank=*/1, /*at_step=*/0}};
  dm::run_world(options, [](dm::Communicator& comm) {
    if (comm.rank() == 1) {
      comm.fault_tick();
      return;  // unreachable; silences lints
    }
    std::vector<double> v{static_cast<double>(comm.rank())};
    try {
      while (true) {
        comm.fault_tick();
        comm.allreduce(std::span<double>(v), dm::ReduceOp::kSum);
      }
    } catch (const dm::RankFailed&) {
    }
    dm::Communicator small = comm.shrink();
    EXPECT_EQ(small.size(), 3);
    // Old relative order preserved, ranks re-densified: global 0,2,3 map
    // to new ranks 0,1,2.
    const std::vector<int> expected_globals{0, 2, 3};
    EXPECT_EQ(small.global_rank(), comm.global_rank());
    for (int r = 0; r < small.size(); ++r) {
      EXPECT_EQ(small.global_rank_of(r), expected_globals[static_cast<std::size_t>(r)]);
    }
    // The rebuilt communicator is fully functional.
    std::vector<double> sum{static_cast<double>(small.rank())};
    small.allreduce(std::span<double>(sum), dm::ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(sum[0], 3.0);  // 0 + 1 + 2
    small.barrier();
  });
}

TEST(FaultShrink, DoubleShrinkSurvivesTwoFailures) {
  auto options = functional_world(4);
  options.faults.kills = {{/*global_rank=*/3, /*at_step=*/0}, {/*global_rank=*/1, /*at_step=*/1}};
  std::atomic<int> completed{0};
  dm::run_world(options, [&](dm::Communicator& comm) {
    dm::Communicator current = comm;
    int my_tick = 0;
    auto step = [&] {
      comm.fault_tick();
      ++my_tick;
      std::vector<double> v{1.0};
      current.allreduce(std::span<double>(v), dm::ReduceOp::kSum);
      return v[0];
    };
    double last = 0.0;
    for (int i = 0; i < 4; ++i) {
      try {
        last = step();
      } catch (const dm::RankFailed&) {
        current = current.shrink();
      } catch (const dm::RankKilled&) {
        throw;  // not reachable: run_world handles the dying thread
      }
    }
    EXPECT_EQ(current.size(), 2);
    EXPECT_DOUBLE_EQ(last, 2.0);
    completed.fetch_add(1);
  });
  EXPECT_EQ(completed.load(), 2);
}

TEST(FaultKill, TimeTriggeredKillFiresInTimedWorld) {
  auto options = timed_world(4);
  options.faults.kills = {{/*global_rank=*/2, /*at_step=*/-1, /*at_time_s=*/1e-4}};
  std::atomic<int> failures{0};
  dm::run_world(options, [&](dm::Communicator& comm) {
    try {
      for (int i = 0; i < 10000; ++i) {
        comm.compute(1e-5);
        std::vector<double> v{1.0};
        comm.allreduce(std::span<double>(v), dm::ReduceOp::kSum);
      }
      FAIL() << "no failure observed on rank " << comm.rank();
    } catch (const dm::RankFailed& e) {
      EXPECT_EQ(e.failed_global_rank, 2);
      failures.fetch_add(1);
    }
  });
  EXPECT_EQ(failures.load(), 3);
}

TEST(FaultLink, DropAndDelayAreDeterministicAndCounted) {
  auto make = [](std::uint64_t seed) {
    auto options = timed_world(2);
    options.faults.drop_prob = 0.3;
    options.faults.retransmit_s = 1e-3;
    options.faults.delay_prob = 0.2;
    options.faults.delay_s = 5e-4;
    options.faults.seed = seed;
    return options;
  };
  auto run = [&](std::uint64_t seed) {
    std::uint64_t dropped = 0, delayed = 0;
    double t_recv = 0.0;
    dm::run_world(make(seed), [&](dm::Communicator& comm) {
      std::vector<float> buf(256);
      for (int i = 0; i < 50; ++i) {
        if (comm.rank() == 0) {
          comm.send(1, 4, std::as_bytes(std::span<const float>(buf)));
        } else {
          comm.recv(0, 4, std::as_writable_bytes(std::span<float>(buf)));
        }
      }
      if (comm.rank() == 0) {
        dropped = comm.stats().messages_dropped;
        delayed = comm.stats().messages_delayed;
      } else {
        t_recv = comm.now();
      }
    });
    return std::tuple{dropped, delayed, t_recv};
  };
  const auto a = run(123);
  const auto b = run(123);
  const auto c = run(999);
  EXPECT_EQ(a, b) << "same seed must replay identically";
  EXPECT_GT(std::get<0>(a), 0u) << "with p=0.3 over 50 sends, some drops expected";
  EXPECT_GT(std::get<1>(a), 0u);
  // The receiver-side completion time encodes the exact drop pattern, so
  // two seeds colliding on it is vanishingly unlikely.
  EXPECT_NE(a, c) << "different seeds should perturb differently";
}

TEST(FaultLink, FlakyRankWindowRestrictsPerturbation) {
  // Only rank 0's sends inside [0, 1e-3) may be perturbed.
  auto options = timed_world(3);
  options.faults.drop_prob = 1.0;  // drop everything the window admits
  options.faults.retransmit_s = 1e-4;
  options.faults.flaky_rank = 0;
  options.faults.window_from_s = 0.0;
  options.faults.window_until_s = 1e-3;
  dm::run_world(options, [](dm::Communicator& comm) {
    std::vector<float> buf(16);
    for (int i = 0; i < 10; ++i) {
      if (comm.rank() == 0) {
        comm.send(1, 2, std::as_bytes(std::span<const float>(buf)));
        comm.send(2, 2, std::as_bytes(std::span<const float>(buf)));
      } else {
        comm.recv(0, 2, std::as_writable_bytes(std::span<float>(buf)));
      }
    }
    if (comm.rank() == 0) {
      EXPECT_GT(comm.stats().messages_dropped, 0u);
    } else {
      EXPECT_EQ(comm.stats().messages_dropped, 0u) << "only the flaky rank perturbs";
    }
  });
}

TEST(FaultLink, FunctionalWorldStillDeliversPayloadUnderDrops) {
  // In a non-timing world drops are counted but payloads still arrive
  // (loss is modelled as retransmission, never data loss).
  auto options = functional_world(2);
  options.faults.drop_prob = 1.0;
  dm::run_world(options, [](dm::Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(1, 9, 42);
      EXPECT_GT(comm.stats().messages_dropped, 0u);
    } else {
      EXPECT_EQ(comm.recv_value<int>(0, 9), 42);
    }
  });
}

TEST(FaultKill, UninjectedWorldIsUnaffected) {
  // fault_tick and the fault queries are no-ops without a plan.
  dm::run_world(3, [](dm::Communicator& comm) {
    comm.fault_tick();
    EXPECT_EQ(comm.world_epoch(), 1u);
    EXPECT_FALSE(comm.revoked());
    EXPECT_EQ(static_cast<int>(comm.alive().size()), comm.size());
    std::vector<double> v{1.0};
    comm.allreduce(std::span<double>(v), dm::ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(v[0], 3.0);
  });
}
