// Property-style correctness sweep for every allreduce algorithm across
// world sizes (including non-powers-of-two) and element counts (including
// counts smaller than the world size). Each algorithm must produce the
// exact serial sum for integer data and near-exact for floats.
#include <gtest/gtest.h>

#include <numeric>
#include <tuple>
#include <vector>

#include "dlscale/mpi/comm.hpp"
#include "dlscale/util/rng.hpp"

namespace dm = dlscale::mpi;

namespace {

std::vector<float> rank_data(int rank, std::size_t count) {
  dlscale::util::Rng rng(1000 + static_cast<std::uint64_t>(rank));
  std::vector<float> data(count);
  for (auto& x : data) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return data;
}

std::vector<float> expected_sum(int world, std::size_t count) {
  std::vector<float> acc(count, 0.0f);
  for (int r = 0; r < world; ++r) {
    const auto data = rank_data(r, count);
    for (std::size_t i = 0; i < count; ++i) acc[i] += data[i];
  }
  return acc;
}

}  // namespace

class AllreduceSweep
    : public ::testing::TestWithParam<std::tuple<dm::AllreduceAlgo, int, std::size_t>> {};

TEST_P(AllreduceSweep, MatchesSerialSum) {
  const auto [algo, world, count] = GetParam();
  dm::run_world(world, [&, algo_ = algo, count_ = count](dm::Communicator& comm) {
    auto data = rank_data(comm.rank(), count_);
    comm.allreduce(std::span<float>(data), dm::ReduceOp::kSum, dm::MemSpace::kHost, algo_);
    const auto want = expected_sum(comm.size(), count_);
    ASSERT_EQ(data.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      // Different reduction orders differ only by float rounding.
      EXPECT_NEAR(data[i], want[i], 1e-4) << "element " << i;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsWorldsCounts, AllreduceSweep,
    ::testing::Combine(::testing::Values(dm::AllreduceAlgo::kRing,
                                         dm::AllreduceAlgo::kRecursiveDoubling,
                                         dm::AllreduceAlgo::kRabenseifner),
                       ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 12),
                       ::testing::Values(std::size_t{1}, std::size_t{3}, std::size_t{64},
                                         std::size_t{1000})),
    [](const auto& param_info) {
      const auto algo = std::get<0>(param_info.param);
      const char* name = algo == dm::AllreduceAlgo::kRing              ? "Ring"
                         : algo == dm::AllreduceAlgo::kRecursiveDoubling ? "RecDouble"
                                                                         : "Raben";
      return std::string(name) + "_w" + std::to_string(std::get<1>(param_info.param)) + "_n" +
             std::to_string(std::get<2>(param_info.param));
    });

TEST(Allreduce, IntegerSumIsExact) {
  dm::run_world(6, [](dm::Communicator& comm) {
    std::vector<std::int64_t> data(100);
    std::iota(data.begin(), data.end(), comm.rank());
    comm.allreduce(std::span<std::int64_t>(data), dm::ReduceOp::kSum, dm::MemSpace::kHost);
    // Element i = sum over ranks of (i + rank) = 6*i + 15.
    for (std::size_t i = 0; i < data.size(); ++i) {
      EXPECT_EQ(data[i], static_cast<std::int64_t>(6 * i + 15));
    }
  });
}

TEST(Allreduce, MaxOp) {
  dm::run_world(5, [](dm::Communicator& comm) {
    std::vector<int> data{comm.rank(), -comm.rank()};
    comm.allreduce(std::span<int>(data), dm::ReduceOp::kMax, dm::MemSpace::kHost);
    EXPECT_EQ(data[0], 4);
    EXPECT_EQ(data[1], 0);
  });
}

TEST(Allreduce, MinOp) {
  dm::run_world(5, [](dm::Communicator& comm) {
    std::vector<int> data{comm.rank()};
    comm.allreduce(std::span<int>(data), dm::ReduceOp::kMin, dm::MemSpace::kHost);
    EXPECT_EQ(data[0], 0);
  });
}

TEST(Allreduce, DefaultAlgoFollowsProfileSelection) {
  // No explicit algorithm: must still be correct at sizes landing in each
  // of the profile's three regimes.
  for (std::size_t count : {std::size_t{16}, std::size_t{16384}, std::size_t{262144}}) {
    dm::run_world(4, [count](dm::Communicator& comm) {
      std::vector<float> data(count, 1.0f);
      comm.allreduce(std::span<float>(data), dm::ReduceOp::kSum, dm::MemSpace::kHost);
      EXPECT_FLOAT_EQ(data[0], 4.0f);
      EXPECT_FLOAT_EQ(data[count - 1], 4.0f);
    });
  }
}

TEST(HierarchicalAllreduce, MatchesFlatResult) {
  // Summit-shaped world: 2 nodes x 6 GPUs. The two-level data path must
  // produce the same sums as the flat path.
  dm::WorldOptions options;
  options.topology = dlscale::net::Topology::summit(2);
  options.profile = dlscale::net::MpiProfile::mvapich2_gdr_like();
  options.timing = false;
  dm::run_world(options, [](dm::Communicator& comm) {
    auto data = rank_data(comm.rank(), 500);
    comm.hierarchical_allreduce(std::span<float>(data), dm::ReduceOp::kSum, dm::MemSpace::kHost);
    const auto want = expected_sum(comm.size(), 500);
    for (std::size_t i = 0; i < want.size(); ++i) EXPECT_NEAR(data[i], want[i], 1e-4);
  });
}

TEST(HierarchicalAllreduce, RepeatedCallsReuseCachedSubComms) {
  dm::WorldOptions options;
  options.topology = dlscale::net::Topology::summit(2);
  options.profile = dlscale::net::MpiProfile::mvapich2_gdr_like();
  options.timing = false;
  dm::run_world(options, [](dm::Communicator& comm) {
    for (int iter = 0; iter < 3; ++iter) {
      std::vector<float> data(64, 1.0f);
      comm.hierarchical_allreduce(std::span<float>(data), dm::ReduceOp::kSum,
                                  dm::MemSpace::kHost);
      EXPECT_FLOAT_EQ(data[0], 12.0f);
    }
  });
}

TEST(AllreduceSim, RunsWithoutPayloadAndAgreesFunctionally) {
  // Timing-only allreduce moves no data; it must complete for all
  // algorithms and world sizes without deadlock.
  for (int world : {2, 3, 6}) {
    dm::run_world(world, [](dm::Communicator& comm) {
      comm.allreduce_sim(1 << 20, dm::MemSpace::kDevice, dm::AllreduceAlgo::kRing);
      comm.allreduce_sim(4 << 10, dm::MemSpace::kDevice, dm::AllreduceAlgo::kRecursiveDoubling);
      comm.allreduce_sim(256 << 10, dm::MemSpace::kDevice, dm::AllreduceAlgo::kRabenseifner);
    });
  }
}

TEST(AllreduceSim, HierarchicalVariant) {
  dm::WorldOptions options;
  options.topology = dlscale::net::Topology::summit(3);
  options.profile = dlscale::net::MpiProfile::mvapich2_gdr_like();
  options.timing = true;
  dm::run_world(options, [](dm::Communicator& comm) {
    comm.hierarchical_allreduce_sim(16 << 20, dm::MemSpace::kDevice);
    EXPECT_GT(comm.now(), 0.0);
  });
}

TEST(Allreduce, SingleRankIsIdentity) {
  dm::run_world(1, [](dm::Communicator& comm) {
    std::vector<float> data{3.5f, -1.0f};
    comm.allreduce(std::span<float>(data), dm::ReduceOp::kSum, dm::MemSpace::kHost);
    EXPECT_FLOAT_EQ(data[0], 3.5f);
    EXPECT_FLOAT_EQ(data[1], -1.0f);
  });
}

TEST(Allreduce, EmptySpanIsNoop) {
  dm::run_world(3, [](dm::Communicator& comm) {
    std::vector<float> data;
    comm.allreduce(std::span<float>(data), dm::ReduceOp::kSum, dm::MemSpace::kHost);
    SUCCEED();
  });
}

TEST(HierarchicalAllreduce, PipelinedIntraPhasesCorrectAtLargeSize) {
  // Above 256 KiB the hierarchical path switches to ring reduce-scatter +
  // gather / scatter + allgather intra-node phases; the sums must still
  // be exact.
  dm::WorldOptions options;
  options.topology = dlscale::net::Topology::summit(2);
  options.profile = dlscale::net::MpiProfile::mvapich2_gdr_like();
  options.timing = false;
  dm::run_world(options, [](dm::Communicator& comm) {
    constexpr std::size_t kCount = 100'000;  // 400 KB > pipelined threshold
    auto data = rank_data(comm.rank(), kCount);
    comm.hierarchical_allreduce(std::span<float>(data), dm::ReduceOp::kSum, dm::MemSpace::kHost);
    const auto want = expected_sum(comm.size(), kCount);
    for (std::size_t i = 0; i < kCount; i += 997) {
      ASSERT_NEAR(data[i], want[i], 1e-4) << "element " << i;
    }
    ASSERT_NEAR(data[kCount - 1], want[kCount - 1], 1e-4);
  });
}

TEST(HierarchicalAllreduce, CountSmallerThanNodeSize) {
  // Fewer elements than ranks per node: degenerate segments everywhere.
  dm::WorldOptions options;
  options.topology = dlscale::net::Topology::summit(2);
  options.profile = dlscale::net::MpiProfile::mvapich2_gdr_like();
  options.timing = false;
  dm::run_world(options, [](dm::Communicator& comm) {
    std::vector<float> data{static_cast<float>(comm.rank()), 1.0f};
    comm.hierarchical_allreduce(std::span<float>(data), dm::ReduceOp::kSum, dm::MemSpace::kHost);
    EXPECT_FLOAT_EQ(data[0], 66.0f);  // 0+1+...+11
    EXPECT_FLOAT_EQ(data[1], 12.0f);
  });
}

TEST(ReduceScatter, EachRankGetsItsReducedBlock) {
  constexpr int kWorld = 5;
  constexpr std::size_t kBlock = 7;
  dm::run_world(kWorld, [](dm::Communicator& comm) {
    // data[b*kBlock + j] = rank + b*100 + j; block b's reduced value is
    // sum over ranks = (0+..+4) + 5*(b*100 + j).
    std::vector<float> data(kWorld * kBlock);
    for (int b = 0; b < kWorld; ++b)
      for (std::size_t j = 0; j < kBlock; ++j) {
        data[static_cast<std::size_t>(b) * kBlock + j] =
            static_cast<float>(comm.rank() + b * 100) + static_cast<float>(j);
      }
    std::vector<float> out(kBlock);
    comm.reduce_scatter(std::span<float>(data), std::span<float>(out), dm::ReduceOp::kSum,
                        dm::MemSpace::kHost);
    for (std::size_t j = 0; j < kBlock; ++j) {
      const float want = 10.0f + 5.0f * (static_cast<float>(comm.rank() * 100) +
                                         static_cast<float>(j));
      EXPECT_NEAR(out[j], want, 1e-3) << "rank " << comm.rank() << " j " << j;
    }
  });
}

TEST(ReduceScatter, SizeMismatchThrows) {
  EXPECT_THROW(dm::run_world(2,
                             [](dm::Communicator& comm) {
                               std::vector<float> data(5), out(2);  // 5 != 2*2
                               comm.reduce_scatter(std::span<float>(data),
                                                   std::span<float>(out),
                                                   dm::ReduceOp::kSum, dm::MemSpace::kHost);
                             }),
               std::invalid_argument);
}
