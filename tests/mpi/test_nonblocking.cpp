#include <gtest/gtest.h>

#include <vector>

#include "dlscale/mpi/comm.hpp"

namespace dm = dlscale::mpi;

TEST(Nonblocking, ExchangePattern) {
  // The classic deadlock-prone bidirectional exchange, written the MPI
  // way: post both irecvs, send, then wait.
  dm::run_world(2, [](dm::Communicator& comm) {
    const int peer = 1 - comm.rank();
    std::vector<float> mine(64, static_cast<float>(comm.rank() + 1));
    std::vector<float> theirs(64);
    auto recv_request =
        comm.irecv(peer, 5, std::as_writable_bytes(std::span<float>(theirs)));
    (void)comm.isend(peer, 5, std::as_bytes(std::span<const float>(mine)));
    recv_request.wait();
    EXPECT_FLOAT_EQ(theirs[0], static_cast<float>(peer + 1));
  });
}

TEST(Nonblocking, IsendIsImmediatelyComplete) {
  dm::run_world(2, [](dm::Communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<std::byte> data(16);
      auto request = comm.isend(1, 9, data);
      EXPECT_TRUE(request.completed());
    } else {
      std::vector<std::byte> data(16);
      comm.recv(0, 9, data);
    }
  });
}

TEST(Nonblocking, WaitIsIdempotent) {
  dm::run_world(2, [](dm::Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 2, 42);
    } else {
      int value = 0;
      auto request = comm.irecv(0, 2, std::as_writable_bytes(std::span<int, 1>(&value, 1)));
      EXPECT_FALSE(request.completed());
      request.wait();
      EXPECT_TRUE(request.completed());
      request.wait();  // no-op
      EXPECT_EQ(value, 42);
    }
  });
}

TEST(Nonblocking, WaitAllCompletesInOrder) {
  dm::run_world(4, [](dm::Communicator& comm) {
    if (comm.rank() != 0) {
      comm.send_value(0, 7, comm.rank() * 10);
    } else {
      std::vector<int> values(3);
      std::vector<dm::Communicator::Request> requests;
      for (int r = 1; r < 4; ++r) {
        requests.push_back(comm.irecv(
            r, 7, std::as_writable_bytes(std::span<int, 1>(&values[r - 1], 1))));
      }
      dm::Communicator::wait_all(requests);
      EXPECT_EQ(values[0], 10);
      EXPECT_EQ(values[1], 20);
      EXPECT_EQ(values[2], 30);
    }
  });
}

TEST(Nonblocking, DefaultRequestIsComplete) {
  dm::Communicator::Request request;
  EXPECT_TRUE(request.completed());
  request.wait();
  SUCCEED();
}
