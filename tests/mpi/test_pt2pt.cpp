#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <vector>

#include "dlscale/mpi/comm.hpp"

namespace dm = dlscale::mpi;

namespace {

[[maybe_unused]] std::span<const std::byte> bytes_of(const std::vector<float>& v) {
  return std::as_bytes(std::span<const float>(v));
}

std::span<std::byte> bytes_of(std::vector<float>& v) {
  return std::as_writable_bytes(std::span<float>(v));
}

}  // namespace

TEST(Pt2Pt, SendRecvRoundtrip) {
  dm::run_world(2, [](dm::Communicator& comm) {
    std::vector<float> data{1.0f, 2.0f, 3.0f};
    if (comm.rank() == 0) {
      comm.send(1, 7, bytes_of(data));
    } else {
      std::vector<float> out(3);
      comm.recv(0, 7, bytes_of(out));
      EXPECT_EQ(out, data);
    }
  });
}

TEST(Pt2Pt, MessagesMatchByTag) {
  dm::run_world(2, [](dm::Communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<float> a{1.0f}, b{2.0f};
      comm.send(1, 100, bytes_of(a));
      comm.send(1, 200, bytes_of(b));
    } else {
      // Receive in the opposite order of sending: tags must disambiguate.
      std::vector<float> b(1), a(1);
      comm.recv(0, 200, bytes_of(b));
      comm.recv(0, 100, bytes_of(a));
      EXPECT_FLOAT_EQ(a[0], 1.0f);
      EXPECT_FLOAT_EQ(b[0], 2.0f);
    }
  });
}

TEST(Pt2Pt, FifoOrderWithinChannel) {
  dm::run_world(2, [](dm::Communicator& comm) {
    constexpr int kMessages = 50;
    if (comm.rank() == 0) {
      for (int i = 0; i < kMessages; ++i) comm.send_value(1, 5, i);
    } else {
      for (int i = 0; i < kMessages; ++i) EXPECT_EQ(comm.recv_value<int>(0, 5), i);
    }
  });
}

TEST(Pt2Pt, SizeMismatchThrows) {
  EXPECT_THROW(dm::run_world(2,
                             [](dm::Communicator& comm) {
                               if (comm.rank() == 0) {
                                 std::vector<float> data{1.0f, 2.0f};
                                 comm.send(1, 1, bytes_of(data));
                               } else {
                                 std::vector<float> out(3);
                                 comm.recv(0, 1, bytes_of(out));
                               }
                             }),
               std::runtime_error);
}

TEST(Pt2Pt, BadRankThrows) {
  EXPECT_THROW(dm::run_world(2,
                             [](dm::Communicator& comm) {
                               if (comm.rank() == 0) comm.send(5, 0, {});
                             }),
               std::out_of_range);
}

TEST(Pt2Pt, ExceptionInOneRankUnblocksOthers) {
  // Rank 1 waits on a message that never comes; rank 0 throws. run_world
  // must abort rank 1's recv and surface rank 0's exception.
  EXPECT_THROW(dm::run_world(2,
                             [](dm::Communicator& comm) {
                               if (comm.rank() == 0) throw std::runtime_error("boom");
                               std::vector<float> out(1);
                               comm.recv(0, 9, bytes_of(out));
                             }),
               std::runtime_error);
}

TEST(Pt2Pt, SendRecvExchange) {
  dm::run_world(2, [](dm::Communicator& comm) {
    std::vector<float> mine{static_cast<float>(comm.rank() + 1)};
    std::vector<float> theirs(1);
    const int peer = 1 - comm.rank();
    comm.sendrecv(peer, 3, bytes_of(mine), peer, 3, bytes_of(theirs));
    EXPECT_FLOAT_EQ(theirs[0], static_cast<float>(peer + 1));
  });
}

TEST(Pt2Pt, BlobRoundtrip) {
  dm::run_world(2, [](dm::Communicator& comm) {
    if (comm.rank() == 0) {
      const std::string text = "negotiation payload";
      comm.send_blob(1, 11, std::as_bytes(std::span<const char>(text.data(), text.size())));
    } else {
      const auto blob = comm.recv_blob(0, 11);
      const std::string text(reinterpret_cast<const char*>(blob.data()), blob.size());
      EXPECT_EQ(text, "negotiation payload");
    }
  });
}

TEST(Pt2Pt, EmptyBlob) {
  dm::run_world(2, [](dm::Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send_blob(1, 12, {});
    } else {
      EXPECT_TRUE(comm.recv_blob(0, 12).empty());
    }
  });
}

TEST(Pt2Pt, ValueHelpers) {
  dm::run_world(2, [](dm::Communicator& comm) {
    struct Payload {
      double a;
      int b;
    };
    if (comm.rank() == 0) {
      comm.send_value(1, 4, Payload{2.5, 7});
    } else {
      const auto payload = comm.recv_value<Payload>(0, 4);
      EXPECT_DOUBLE_EQ(payload.a, 2.5);
      EXPECT_EQ(payload.b, 7);
    }
  });
}

TEST(Pt2Pt, ManyRanksAllToOne) {
  constexpr int kWorld = 16;
  dm::run_world(kWorld, [](dm::Communicator& comm) {
    if (comm.rank() != 0) {
      comm.send_value(0, 21, comm.rank());
    } else {
      int sum = 0;
      for (int r = 1; r < comm.size(); ++r) sum += comm.recv_value<int>(r, 21);
      EXPECT_EQ(sum, kWorld * (kWorld - 1) / 2);
    }
  });
}

TEST(Pt2Pt, GlobalRankMatchesWorldIdentity) {
  dm::run_world(3, [](dm::Communicator& comm) {
    EXPECT_EQ(comm.global_rank(), comm.rank());
    EXPECT_EQ(comm.size(), 3);
  });
}
