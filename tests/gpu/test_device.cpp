#include "dlscale/gpu/device.hpp"

#include <gtest/gtest.h>

namespace dg = dlscale::gpu;

TEST(DeviceSpec, V100Envelope) {
  const auto spec = dg::DeviceSpec::v100_summit();
  EXPECT_NEAR(spec.peak_fp32_flops, 15.7e12, 1e9);
  EXPECT_NEAR(spec.mem_bandwidth_Bps, 900e9, 1e6);
  EXPECT_EQ(spec.memory_bytes, std::size_t{16} << 30);
}

TEST(ComputeModel, RejectsBadEfficiency) {
  const auto spec = dg::DeviceSpec::v100_summit();
  EXPECT_THROW(dg::ComputeModel(spec, 0.0), std::invalid_argument);
  EXPECT_THROW(dg::ComputeModel(spec, 1.5), std::invalid_argument);
}

TEST(ComputeModel, ComputeBoundKernel) {
  const dg::ComputeModel model(dg::DeviceSpec::v100_summit(), 0.5);
  // 1 TFLOP of work, tiny memory traffic: time ~ flops / (0.5 * peak).
  const double t = model.kernel_time(1e12, 1e6);
  EXPECT_NEAR(t, 1e12 / (0.5 * 15.7e12) + 4e-6, 1e-6);
}

TEST(ComputeModel, MemoryBoundKernel) {
  const dg::ComputeModel model(dg::DeviceSpec::v100_summit(), 0.5);
  // Tiny arithmetic over 9 GB of traffic: time ~ bytes / mem bw = 10 ms.
  const double t = model.kernel_time(1e6, 9e9);
  EXPECT_NEAR(t, 9e9 / 900e9, 1e-4);
}

TEST(ComputeModel, LaunchOverheadFloorsSmallKernels) {
  const dg::ComputeModel model(dg::DeviceSpec::v100_summit(), 0.5);
  EXPECT_GE(model.kernel_time(1.0, 1.0), 4e-6);
}

TEST(ComputeModel, CopyKindsUseTheirBandwidths) {
  const dg::ComputeModel model(dg::DeviceSpec::v100_summit(), 0.5);
  const std::size_t gb = 1 << 30;
  const double h2d = model.copy_time(gb, dg::CopyKind::kHostToDevice);
  const double d2d = model.copy_time(gb, dg::CopyKind::kDeviceToDevice);
  EXPECT_GT(h2d, d2d);  // NVLink host attach is still slower than HBM
  EXPECT_NEAR(h2d, 8e-6 + static_cast<double>(gb) / 42e9, 1e-6);
}

TEST(DeviceBuffer, TypedViews) {
  dg::DeviceBuffer buffer(16 * sizeof(float));
  auto floats = buffer.as<float>();
  ASSERT_EQ(floats.size(), 16u);
  for (std::size_t i = 0; i < floats.size(); ++i) floats[i] = static_cast<float>(i);
  const auto& const_buffer = buffer;
  auto read = const_buffer.as<float>();
  EXPECT_FLOAT_EQ(read[7], 7.0f);
  EXPECT_EQ(buffer.size_bytes(), 64u);
}

TEST(DeviceBuffer, ResizePreservesNothingButSizeIsRight) {
  dg::DeviceBuffer buffer;
  EXPECT_TRUE(buffer.empty());
  buffer.resize(128);
  EXPECT_EQ(buffer.size_bytes(), 128u);
  EXPECT_FALSE(buffer.empty());
}
