// Loopback HTTP client helpers for the front-end tests and bench: a
// connection wrapper speaking the same http1.hpp framing as the server,
// plus one-shot JSON request helpers.
#pragma once

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <utility>

#include "dlscale/http/http1.hpp"
#include "dlscale/util/json.hpp"
#include "dlscale/util/socket.hpp"

namespace dlscale::http_testing {

/// One keep-alive client connection to a loopback HttpServer.
class Client {
 public:
  explicit Client(std::uint16_t port)
      : connection_(util::Socket::connect_loopback(port)) {}

  /// Sends `method target` with `body` and blocks for the response.
  http::Response request(const std::string& method, const std::string& target,
                         std::string body = "") {
    http::Request request;
    request.method = method;
    request.target = target;
    request.body = std::move(body);
    if (!connection_.write(request)) {
      throw std::runtime_error("client write failed (server gone?)");
    }
    auto response = connection_.read_response(64ull * 1024 * 1024);
    if (!response) throw std::runtime_error("connection closed before response");
    return *std::move(response);
  }

  /// POSTs `body` as JSON and decodes the response body into `Out`.
  /// Asserts (gtest) that the status matches `expect_status`.
  template <class Out, util::json::Reflected In>
  Out post_json(const std::string& target, const In& body, int expect_status = 200) {
    const http::Response response = request("POST", target, util::json::to_json(body));
    EXPECT_EQ(response.status, expect_status) << target << " -> " << response.body;
    return util::json::from_json<Out>(response.body);
  }

  /// GETs `target` and decodes the JSON body.
  template <class Out>
  Out get_json(const std::string& target, int expect_status = 200) {
    const http::Response response = request("GET", target);
    EXPECT_EQ(response.status, expect_status) << target << " -> " << response.body;
    return util::json::from_json<Out>(response.body);
  }

  [[nodiscard]] http::Connection& connection() noexcept { return connection_; }

 private:
  http::Connection connection_;
};

}  // namespace dlscale::http_testing
