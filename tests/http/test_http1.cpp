// The HTTP/1.1 framing layer: pure head parsing (no sockets), message
// serialization, and Connection framing over a real loopback socket
// pair — including keep-alive reuse and pipelined bytes left in the
// buffer between messages.
#include "dlscale/http/http1.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "dlscale/util/socket.hpp"

namespace dh = dlscale::http;
namespace du = dlscale::util;

// ---------------------------------------------------------------------------
// Pure parsing.
// ---------------------------------------------------------------------------

TEST(Http1, ParsesRequestHead) {
  const dh::Request r = dh::parse_request_head(
      "POST /v1/models/seg:predict HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Content-Type: application/json\r\n"
      "Content-Length:  42  ");
  EXPECT_EQ(r.method, "POST");
  EXPECT_EQ(r.target, "/v1/models/seg:predict");
  EXPECT_EQ(r.version, "HTTP/1.1");
  ASSERT_EQ(r.headers.size(), 3u);
  // Lookup is case-insensitive, values are whitespace-stripped.
  ASSERT_NE(r.header("content-length"), nullptr);
  EXPECT_EQ(*r.header("CONTENT-LENGTH"), "42");
  EXPECT_EQ(*r.header("content-type"), "application/json");
  EXPECT_EQ(r.header("x-missing"), nullptr);
}

TEST(Http1, ParsesResponseHead) {
  const dh::Response r = dh::parse_response_head(
      "HTTP/1.1 404 Not Found\r\n"
      "Content-Length: 9");
  EXPECT_EQ(r.status, 404);
  EXPECT_EQ(r.reason, "Not Found");
  EXPECT_EQ(*r.header("Content-Length"), "9");
}

TEST(Http1, KeepAliveSemantics) {
  dh::Request r = dh::parse_request_head("GET / HTTP/1.1\r\nHost: x");
  EXPECT_TRUE(r.keep_alive());  // 1.1 default
  r = dh::parse_request_head("GET / HTTP/1.1\r\nConnection: close");
  EXPECT_FALSE(r.keep_alive());
  r = dh::parse_request_head("GET / HTTP/1.1\r\nConnection: Close");  // token is case-insensitive
  EXPECT_FALSE(r.keep_alive());
}

TEST(Http1, RejectsMalformedHeads) {
  EXPECT_THROW((void)dh::parse_request_head("GET /"), dh::HttpError);  // no version
  EXPECT_THROW((void)dh::parse_request_head("GET / HTTP/1.1 extra"), dh::HttpError);
  EXPECT_THROW((void)dh::parse_request_head("GET / SPDY/3"), dh::HttpError);
  EXPECT_THROW((void)dh::parse_request_head("GET / HTTP/1.1\r\nNoColonHere"), dh::HttpError);
  EXPECT_THROW((void)dh::parse_request_head("GET / HTTP/1.1\r\nName : v"), dh::HttpError);
  EXPECT_THROW((void)dh::parse_request_head("GET / HTTP/1.1\r\nA: 1\r\n folded"), dh::HttpError);
  try {
    (void)dh::parse_request_head("GET / HTTP/2.0");
    FAIL() << "unsupported version accepted";
  } catch (const dh::HttpError& e) {
    EXPECT_EQ(e.status, 505);
  }
}

TEST(Http1, ContentLengthValidation) {
  EXPECT_EQ(dh::content_length({{"Content-Length", "10"}}, 100), 10u);
  EXPECT_EQ(dh::content_length({}, 100), 0u);  // absent -> no body
  EXPECT_THROW((void)dh::content_length({{"Content-Length", "nope"}}, 100), dh::HttpError);
  EXPECT_THROW((void)dh::content_length({{"Content-Length", "-1"}}, 100), dh::HttpError);
  try {
    (void)dh::content_length({{"Content-Length", "101"}}, 100);
    FAIL() << "oversized body accepted";
  } catch (const dh::HttpError& e) {
    EXPECT_EQ(e.status, 413);
  }
}

TEST(Http1, SerializeAddsFraming) {
  dh::Request request;
  request.method = "POST";
  request.target = "/v1/models/seg:predict";
  request.body = "{\"x\":1}";
  const std::string wire = dh::serialize(request);
  EXPECT_NE(wire.find("POST /v1/models/seg:predict HTTP/1.1\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Host: localhost\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 7\r\n"), std::string::npos);
  EXPECT_NE(wire.find("\r\n\r\n{\"x\":1}"), std::string::npos);

  dh::Response response;
  response.status = 429;
  response.body = "busy";
  const std::string out = dh::serialize(response);
  EXPECT_NE(out.find("HTTP/1.1 429 Too Many Requests\r\n"), std::string::npos);
  EXPECT_NE(out.find("Content-Length: 4\r\n"), std::string::npos);
}

TEST(Http1, IEquals) {
  EXPECT_TRUE(dh::iequals("Content-Length", "content-length"));
  EXPECT_TRUE(dh::iequals("", ""));
  EXPECT_FALSE(dh::iequals("a", "ab"));
  EXPECT_FALSE(dh::iequals("close", "keep"));
}

// ---------------------------------------------------------------------------
// Connection framing over a real socket pair.
// ---------------------------------------------------------------------------

namespace {

/// A connected loopback (server_side, client_side) socket pair.
std::pair<du::Socket, du::Socket> socket_pair() {
  du::ListenSocket listener(0);
  du::Socket client = du::Socket::connect_loopback(listener.port());
  auto server = listener.accept();
  EXPECT_TRUE(server.has_value());
  return {std::move(*server), std::move(client)};
}

}  // namespace

TEST(Http1Connection, RoundTripsRequestAndResponse) {
  auto [server_socket, client_socket] = socket_pair();
  dh::Connection server(std::move(server_socket));
  dh::Connection client(std::move(client_socket));

  dh::Request request;
  request.method = "POST";
  request.target = "/echo";
  request.body = "payload";
  ASSERT_TRUE(client.write(request));

  auto received = server.read_request(1 << 20);
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->method, "POST");
  EXPECT_EQ(received->target, "/echo");
  EXPECT_EQ(received->body, "payload");

  dh::Response response;
  response.status = 200;
  response.body = "pong";
  ASSERT_TRUE(server.write(response));

  auto answered = client.read_response(1 << 20);
  ASSERT_TRUE(answered.has_value());
  EXPECT_EQ(answered->status, 200);
  EXPECT_EQ(answered->reason, "OK");
  EXPECT_EQ(answered->body, "pong");
}

TEST(Http1Connection, KeepAliveFramesSequentialMessages) {
  auto [server_socket, client_socket] = socket_pair();
  dh::Connection server(std::move(server_socket));
  dh::Connection client(std::move(client_socket));

  // Send three bodies back to back — the third read must see exactly the
  // third body even though all bytes may land in one recv.
  for (int i = 0; i < 3; ++i) {
    dh::Request request;
    request.method = "POST";
    request.target = "/n";
    request.body = "body-" + std::to_string(i);
    ASSERT_TRUE(client.write(request));
  }
  for (int i = 0; i < 3; ++i) {
    auto received = server.read_request(1 << 20);
    ASSERT_TRUE(received.has_value()) << "message " << i;
    EXPECT_EQ(received->body, "body-" + std::to_string(i));
  }
}

TEST(Http1Connection, CleanEofReturnsNullopt) {
  auto [server_socket, client_socket] = socket_pair();
  dh::Connection server(std::move(server_socket));
  { du::Socket dies = std::move(client_socket); }  // client closes without sending
  auto received = server.read_request(1 << 20);
  EXPECT_FALSE(received.has_value());
}

TEST(Http1Connection, MidMessageEofThrows) {
  auto [server_socket, client_socket] = socket_pair();
  dh::Connection server(std::move(server_socket));
  ASSERT_TRUE(client_socket.send_all(std::string("POST /x HTTP/1.1\r\nContent-Le")));
  { du::Socket dies = std::move(client_socket); }  // hang up mid-head
  EXPECT_THROW((void)server.read_request(1 << 20), dh::HttpError);
}

TEST(Http1Connection, OversizedBodyRejectedWith413) {
  auto [server_socket, client_socket] = socket_pair();
  dh::Connection server(std::move(server_socket));
  dh::Connection client(std::move(client_socket));
  dh::Request request;
  request.method = "POST";
  request.target = "/big";
  request.body = std::string(2048, 'x');
  ASSERT_TRUE(client.write(request));
  try {
    (void)server.read_request(/*max_body=*/1024);
    FAIL() << "oversized body framed";
  } catch (const dh::HttpError& e) {
    EXPECT_EQ(e.status, 413);
  }
}

TEST(Http1Connection, ShutdownUnblocksBlockedRead) {
  auto [server_socket, client_socket] = socket_pair();
  dh::Connection server(std::move(server_socket));
  std::thread unblocker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    server.socket().shutdown_both();
  });
  // Blocked in recv with no bytes: the cross-thread shutdown must wake it
  // as a clean EOF, not hang or crash.
  auto received = server.read_request(1 << 20);
  EXPECT_FALSE(received.has_value());
  unblocker.join();
  (void)client_socket;
}
