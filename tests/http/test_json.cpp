// The JSON layer under the HTTP protocol (util/json.hpp): parser and
// writer round-trips, the bitwise float guarantee, strict error
// behavior, and the reflection field-binding layer.
#include "dlscale/util/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

namespace dj = dlscale::util::json;

// ---------------------------------------------------------------------------
// Parser basics.
// ---------------------------------------------------------------------------

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(dj::parse("null").is_null());
  EXPECT_TRUE(dj::parse("true").as_bool());
  EXPECT_FALSE(dj::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(dj::parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(dj::parse("-3.5e2").as_number(), -350.0);
  EXPECT_EQ(dj::parse("\"hello\"").as_string(), "hello");
  EXPECT_EQ(dj::parse("  \"pad\"  ").as_string(), "pad");  // outer whitespace ok
}

TEST(Json, ParsesNestedStructures) {
  const dj::Value v = dj::parse(R"({"a": [1, 2, {"b": true}], "c": "x"})");
  ASSERT_TRUE(v.is_object());
  const dj::Value* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(a->as_array()[0].as_number(), 1.0);
  EXPECT_TRUE(a->as_array()[2].find("b")->as_bool());
  EXPECT_EQ(v.find("c")->as_string(), "x");
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, ObjectKeysKeepInsertionOrder) {
  const dj::Value v = dj::parse(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_EQ(v.keys().size(), 3u);
  EXPECT_EQ(v.keys()[0], "z");
  EXPECT_EQ(v.keys()[1], "a");
  EXPECT_EQ(v.keys()[2], "m");
}

TEST(Json, StringEscapes) {
  EXPECT_EQ(dj::parse(R"("a\"b\\c\/d\n\t\r\b\f")").as_string(), "a\"b\\c/d\n\t\r\b\f");
  EXPECT_EQ(dj::parse(R"("Aé")").as_string(), "A\xc3\xa9");
  // Surrogate pair: U+1F600 (4-byte UTF-8).
  EXPECT_EQ(dj::parse(R"("😀")").as_string(), "\xf0\x9f\x98\x80");
}

// ---------------------------------------------------------------------------
// Parser rejections — every malformed class the protocol relies on.
// ---------------------------------------------------------------------------

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW((void)dj::parse(""), dj::ParseError);
  EXPECT_THROW((void)dj::parse("{"), dj::ParseError);            // truncated object
  EXPECT_THROW((void)dj::parse(R"({"a": )"), dj::ParseError);    // truncated value
  EXPECT_THROW((void)dj::parse(R"("unterminated)"), dj::ParseError);
  EXPECT_THROW((void)dj::parse("[1, 2,]"), dj::ParseError);      // trailing comma
  EXPECT_THROW((void)dj::parse("{} extra"), dj::ParseError);     // trailing characters
  EXPECT_THROW((void)dj::parse("01"), dj::ParseError);           // leading zero
  EXPECT_THROW((void)dj::parse("+1"), dj::ParseError);
  EXPECT_THROW((void)dj::parse("nul"), dj::ParseError);
  EXPECT_THROW((void)dj::parse(R"("\q")"), dj::ParseError);      // bad escape
  EXPECT_THROW((void)dj::parse(R"("\u12")"), dj::ParseError);    // short \u
  EXPECT_THROW((void)dj::parse(R"("\ud83d")"), dj::ParseError);  // lone surrogate
  EXPECT_THROW((void)dj::parse("\"a\x01b\""), dj::ParseError);   // raw control char
  EXPECT_THROW((void)dj::parse(R"({"a":1,"a":2})"), dj::ParseError);  // duplicate key
  EXPECT_THROW((void)dj::parse("{'a': 1}"), dj::ParseError);     // single quotes
}

TEST(Json, ParseErrorCarriesByteOffset) {
  try {
    (void)dj::parse("[1, oops]");
    FAIL() << "malformed input accepted";
  } catch (const dj::ParseError& e) {
    EXPECT_EQ(e.offset, 4u);
    EXPECT_NE(std::string(e.what()).find("byte 4"), std::string::npos);
  }
}

TEST(Json, RejectsExcessiveNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_THROW((void)dj::parse(deep), dj::ParseError);
  // 60 levels is fine (limit is 64).
  std::string ok(60, '[');
  ok += std::string(60, ']');
  EXPECT_NO_THROW((void)dj::parse(ok));
}

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

TEST(Json, WriterCompactForm) {
  dj::Value obj = dj::Value::object();
  obj.set("name", dj::Value("seg"));
  dj::Value arr = dj::Value::array();
  arr.push_back(dj::Value(1));
  arr.push_back(dj::Value(true));
  obj.set("items", std::move(arr));
  EXPECT_EQ(dj::write(obj), R"({"name":"seg","items":[1,true]})");
}

TEST(Json, WriterEscapesControlCharacters) {
  EXPECT_EQ(dj::write(dj::Value("a\"b\\c\n\x01")), R"("a\"b\\c\n\u0001")");
}

TEST(Json, WriterRejectsNonFinite) {
  EXPECT_THROW((void)dj::write(dj::Value(std::numeric_limits<double>::infinity())), dj::Error);
  EXPECT_THROW((void)dj::write(dj::Value(std::nan(""))), dj::Error);
}

TEST(Json, PrettyWriterRoundTrips) {
  const dj::Value v = dj::parse(R"({"a": [1, 2], "b": {"c": true}})");
  const std::string pretty = dj::write_pretty(v);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_EQ(dj::write(dj::parse(pretty)), dj::write(v));
}

// The load-bearing guarantee of the protocol: any float written is
// parsed back BITWISE equal (shortest round-trip form via to_chars).
TEST(Json, FloatRoundTripIsBitwise) {
  std::uint32_t state = 0x12345678u;
  int tested = 0;
  for (int i = 0; i < 10000; ++i) {
    state = state * 1664525u + 1013904223u;  // LCG over bit patterns
    float f;
    static_assert(sizeof(f) == sizeof(state));
    std::memcpy(&f, &state, sizeof(f));
    if (!std::isfinite(f)) continue;
    const std::string text = dj::write(dj::Value(static_cast<double>(f)));
    const float back = static_cast<float>(dj::parse(text).as_number());
    std::uint32_t back_bits;
    std::memcpy(&back_bits, &back, sizeof(back_bits));
    ASSERT_EQ(back_bits, state) << "float " << f << " written as " << text;
    ++tested;
  }
  EXPECT_GT(tested, 9000);  // nearly all random patterns are finite
}

TEST(Json, IntegersWriteWithoutExponent) {
  EXPECT_EQ(dj::write(dj::Value(7)), "7");
  EXPECT_EQ(dj::write(dj::Value(-12345)), "-12345");
  EXPECT_EQ(dj::write(dj::Value(0)), "0");
}

// ---------------------------------------------------------------------------
// Reflection layer.
// ---------------------------------------------------------------------------

namespace {

struct Inner {
  int depth = 1;
  static constexpr auto json_fields() {
    return std::make_tuple(dj::field("depth", &Inner::depth));
  }
};

struct Outer {
  std::string name = "default";
  int count = 3;
  double ratio = 0.5;
  bool flag = false;
  std::vector<int> dims;
  std::vector<Inner> inners;
  Inner inner;
  static constexpr auto json_fields() {
    return std::make_tuple(dj::field("name", &Outer::name), dj::field("count", &Outer::count),
                           dj::field("ratio", &Outer::ratio), dj::field("flag", &Outer::flag),
                           dj::field("dims", &Outer::dims), dj::field("inners", &Outer::inners),
                           dj::field("inner", &Outer::inner));
  }
};

}  // namespace

TEST(JsonReflect, RoundTripsNestedStruct) {
  Outer a;
  a.name = "seg";
  a.count = 9;
  a.ratio = 0.125;
  a.flag = true;
  a.dims = {1, 3, 16, 16};
  a.inners = {Inner{4}, Inner{5}};
  a.inner.depth = 7;
  const Outer b = dj::from_json<Outer>(dj::to_json(a));
  EXPECT_EQ(b.name, "seg");
  EXPECT_EQ(b.count, 9);
  EXPECT_DOUBLE_EQ(b.ratio, 0.125);
  EXPECT_TRUE(b.flag);
  EXPECT_EQ(b.dims, (std::vector<int>{1, 3, 16, 16}));
  ASSERT_EQ(b.inners.size(), 2u);
  EXPECT_EQ(b.inners[0].depth, 4);
  EXPECT_EQ(b.inners[1].depth, 5);
  EXPECT_EQ(b.inner.depth, 7);
}

TEST(JsonReflect, MissingFieldKeepsDefault) {
  const Outer o = dj::from_json<Outer>(R"({"count": 11})");
  EXPECT_EQ(o.count, 11);
  EXPECT_EQ(o.name, "default");  // untouched
  EXPECT_DOUBLE_EQ(o.ratio, 0.5);
  EXPECT_EQ(o.inner.depth, 1);
}

TEST(JsonReflect, UnknownFieldThrowsNamingIt) {
  try {
    (void)dj::from_json<Outer>(R"({"count": 1, "typo_field": 2})");
    FAIL() << "unknown field accepted";
  } catch (const dj::SchemaError& e) {
    EXPECT_NE(std::string(e.what()).find("typo_field"), std::string::npos);
  }
}

TEST(JsonReflect, WrongTypeThrowsNamingTheField) {
  try {
    (void)dj::from_json<Outer>(R"({"count": "three"})");
    FAIL() << "string-for-int accepted";
  } catch (const dj::SchemaError& e) {
    EXPECT_NE(std::string(e.what()).find("count"), std::string::npos);
  }
  EXPECT_THROW((void)dj::from_json<Outer>(R"({"flag": 1})"), dj::SchemaError);
  EXPECT_THROW((void)dj::from_json<Outer>(R"({"dims": 3})"), dj::SchemaError);
  EXPECT_THROW((void)dj::from_json<Outer>(R"({"inner": []})"), dj::SchemaError);
}

TEST(JsonReflect, NonIntegralForIntThrows) {
  EXPECT_THROW((void)dj::from_json<Outer>(R"({"count": 1.5})"), dj::SchemaError);
  EXPECT_NO_THROW((void)dj::from_json<Outer>(R"({"count": 2.0})"));  // integral-valued ok
}

TEST(JsonReflect, ErrorContextNamesNestedPath) {
  try {
    (void)dj::from_json<Outer>(R"({"inners": [{"depth": 1}, {"depth": "x"}]})");
    FAIL() << "wrong nested type accepted";
  } catch (const dj::SchemaError& e) {
    // Message walks the path: $.inners[1].depth.
    EXPECT_NE(std::string(e.what()).find("inners[1].depth"), std::string::npos);
  }
}

TEST(JsonReflect, TopLevelMustBeObject) {
  EXPECT_THROW((void)dj::from_json<Outer>("[1, 2]"), dj::SchemaError);
  EXPECT_THROW((void)dj::from_json<Outer>("42"), dj::SchemaError);
}
