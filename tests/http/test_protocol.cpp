// The protocol DTOs: every config, request, response, and stats struct
// round-trips through JSON; malformed input is rejected with named
// errors; ServeConfig conversion is lossless; config files load.
#include "dlscale/http/protocol.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "../serve/serve_test_support.hpp"

namespace dh = dlscale::http;
namespace dj = dlscale::util::json;
namespace dst = dlscale::serve_testing;

namespace {

/// Round-trips `a` through text and hands back the re-decoded copy.
template <dj::Reflected T>
T round_trip(const T& a) {
  return dj::from_json<T>(dj::to_json(a));
}

}  // namespace

TEST(Protocol, HttpConfigRoundTrip) {
  dh::HttpConfig a;
  a.port = 8080;
  a.backlog = 7;
  a.max_body_bytes = 1234567;
  a.recv_timeout_ms = 250;
  const dh::HttpConfig b = round_trip(a);
  EXPECT_EQ(b.port, 8080);
  EXPECT_EQ(b.backlog, 7);
  EXPECT_EQ(b.max_body_bytes, 1234567u);
  EXPECT_EQ(b.recv_timeout_ms, 250);
}

TEST(Protocol, ModelSpecRoundTrip) {
  dh::ModelSpec a;
  a.name = "seg-int8";
  a.checkpoint = "/tmp/ckpt.bin";
  a.workers = 3;
  a.max_batch = 16;
  a.max_wait_us = 450;
  a.queue_capacity = 128;
  a.precision = "int8";
  a.model.in_channels = 3;
  a.model.num_classes = 8;
  a.model.input_size = 32;
  a.model.width = 24;
  a.model.separable_backbone = true;
  const dh::ModelSpec b = round_trip(a);
  EXPECT_EQ(b.name, "seg-int8");
  EXPECT_EQ(b.checkpoint, "/tmp/ckpt.bin");
  EXPECT_EQ(b.workers, 3);
  EXPECT_EQ(b.max_batch, 16);
  EXPECT_EQ(b.max_wait_us, 450);
  EXPECT_EQ(b.queue_capacity, 128u);
  EXPECT_EQ(b.precision, "int8");
  EXPECT_EQ(b.model.num_classes, 8);
  EXPECT_EQ(b.model.width, 24);
  EXPECT_TRUE(b.model.separable_backbone);
}

TEST(Protocol, ServerSpecRoundTrip) {
  dh::ServerSpec a;
  a.http.port = 9000;
  a.models.resize(2);
  a.models[0].name = "fp32";
  a.models[1].name = "int8";
  a.models[1].precision = "int8";
  const dh::ServerSpec b = round_trip(a);
  EXPECT_EQ(b.http.port, 9000);
  ASSERT_EQ(b.models.size(), 2u);
  EXPECT_EQ(b.models[0].name, "fp32");
  EXPECT_EQ(b.models[1].precision, "int8");
}

TEST(Protocol, PredictBodiesRoundTrip) {
  dh::PredictRequest req;
  req.shape = {1, 3, 4, 4};
  req.image.assign(48, 0.25f);
  req.image[7] = -1.5f;
  const dh::PredictRequest req2 = round_trip(req);
  EXPECT_EQ(req2.shape, (std::vector<int>{1, 3, 4, 4}));
  ASSERT_EQ(req2.image.size(), 48u);
  EXPECT_EQ(req2.image[7], -1.5f);

  dh::PredictResponse resp;
  resp.model = "seg";
  resp.model_version = 3;
  resp.precision = "bf16";
  resp.batch_size = 4;
  resp.shape = {1, 6, 4, 4};
  resp.logits = {0.1f, -2.5f, 3.75f};
  resp.labels = {0, 5, 2};
  resp.queue_us = 12.5;
  resp.total_us = 99.0;
  const dh::PredictResponse resp2 = round_trip(resp);
  EXPECT_EQ(resp2.model, "seg");
  EXPECT_EQ(resp2.model_version, 3);
  EXPECT_EQ(resp2.precision, "bf16");
  EXPECT_EQ(resp2.batch_size, 4);
  EXPECT_EQ(resp2.logits, (std::vector<float>{0.1f, -2.5f, 3.75f}));
  EXPECT_EQ(resp2.labels, (std::vector<int>{0, 5, 2}));
  EXPECT_DOUBLE_EQ(resp2.queue_us, 12.5);
}

TEST(Protocol, ReloadAndErrorBodiesRoundTrip) {
  dh::ReloadRequest reload;
  reload.checkpoint = "/tmp/new.bin";
  reload.precision = "bf16";
  const dh::ReloadRequest reload2 = round_trip(reload);
  EXPECT_EQ(reload2.checkpoint, "/tmp/new.bin");
  EXPECT_EQ(reload2.precision, "bf16");

  dh::ReloadResponse rr;
  rr.model = "seg";
  rr.model_version = 2;
  rr.precision = "bf16";
  EXPECT_EQ(round_trip(rr).model_version, 2);

  dh::ErrorResponse err;
  err.error = "bad shape";
  err.model = "seg";
  err.expected_shape = {1, 3, 16, 16};
  err.got_shape = {1, 3, 8, 8};
  err.known_models = {"a", "b"};
  const dh::ErrorResponse err2 = round_trip(err);
  EXPECT_EQ(err2.error, "bad shape");
  EXPECT_EQ(err2.expected_shape, (std::vector<int>{1, 3, 16, 16}));
  EXPECT_EQ(err2.got_shape, (std::vector<int>{1, 3, 8, 8}));
  EXPECT_EQ(err2.known_models, (std::vector<std::string>{"a", "b"}));
}

TEST(Protocol, HealthzAndStatsRoundTrip) {
  dh::HealthzResponse hz;
  hz.status = "draining";
  hz.accepting = false;
  hz.models = 2;
  const dh::HealthzResponse hz2 = round_trip(hz);
  EXPECT_EQ(hz2.status, "draining");
  EXPECT_FALSE(hz2.accepting);
  EXPECT_EQ(hz2.models, 2u);

  dh::StatsResponse stats;
  stats.server.port = 8080;
  stats.server.draining = true;
  stats.server.connections = 9;
  stats.server.requests = 120;
  stats.server.http_errors = 3;
  stats.models.resize(1);
  stats.models[0].name = "seg";
  stats.models[0].accepted = 100;
  stats.models[0].rejected_full = 4;
  stats.models[0].rejected_closed = 1;
  stats.models[0].rejected = 5;
  stats.models[0].total_p99_us = 817.25;
  const dh::StatsResponse stats2 = round_trip(stats);
  EXPECT_EQ(stats2.server.port, 8080);
  EXPECT_TRUE(stats2.server.draining);
  EXPECT_EQ(stats2.server.requests, 120u);
  ASSERT_EQ(stats2.models.size(), 1u);
  EXPECT_EQ(stats2.models[0].accepted, 100u);
  EXPECT_EQ(stats2.models[0].rejected_full, 4u);
  EXPECT_EQ(stats2.models[0].rejected_closed, 1u);
  EXPECT_DOUBLE_EQ(stats2.models[0].total_p99_us, 817.25);
}

// ---------------------------------------------------------------------------
// Malformed input: strictness the HTTP handlers rely on for 400s.
// ---------------------------------------------------------------------------

TEST(Protocol, RejectsMalformedBodies) {
  // Truncated text.
  EXPECT_THROW((void)dj::from_json<dh::PredictRequest>(R"({"shape": [1, 3)"), dj::ParseError);
  // Wrong type for a field.
  EXPECT_THROW((void)dj::from_json<dh::PredictRequest>(R"({"shape": "1x3"})"), dj::SchemaError);
  EXPECT_THROW((void)dj::from_json<dh::ModelSpec>(R"({"workers": true})"), dj::SchemaError);
  EXPECT_THROW((void)dj::from_json<dh::HttpConfig>(R"({"port": 80.5})"), dj::SchemaError);
  // Unknown field (typo protection for config files).
  EXPECT_THROW((void)dj::from_json<dh::ModelSpec>(R"({"nam": "x"})"), dj::SchemaError);
  EXPECT_THROW((void)dj::from_json<dh::ServerSpec>(R"({"http": {"prot": 1}})"), dj::SchemaError);
}

TEST(Protocol, ParsePrecisionNamesValidSet) {
  EXPECT_EQ(dh::parse_precision("fp32"), dlscale::nn::Precision::kFp32);
  EXPECT_EQ(dh::parse_precision("bf16"), dlscale::nn::Precision::kBf16);
  EXPECT_EQ(dh::parse_precision("int8"), dlscale::nn::Precision::kInt8);
  try {
    (void)dh::parse_precision("fp16");
    FAIL() << "bad precision accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("fp16"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("int8"), std::string::npos);  // names valid set
  }
}

TEST(Protocol, ServeConfigConversionIsLossless) {
  dh::ModelSpec spec;
  spec.name = "seg";
  spec.checkpoint = "/tmp/c.bin";
  spec.workers = 2;
  spec.max_batch = 4;
  spec.max_wait_us = 300;
  spec.queue_capacity = 32;
  spec.precision = "int8";
  spec.model.num_classes = 4;
  spec.model.input_size = 16;
  spec.model.width = 4;

  const dlscale::serve::ServeConfig config = dh::to_serve_config(spec);
  EXPECT_EQ(config.name, "seg");
  EXPECT_EQ(config.workers, 2);
  EXPECT_EQ(config.max_batch, 4);
  EXPECT_EQ(config.max_wait_us, 300);
  EXPECT_EQ(config.queue_capacity, 32u);
  EXPECT_EQ(config.quantize.precision, dlscale::nn::Precision::kInt8);
  EXPECT_EQ(config.model.num_classes, 4);

  const dh::ModelSpec back = dh::to_model_spec(config, "/tmp/c.bin");
  EXPECT_EQ(dj::to_json(back), dj::to_json(spec));  // exact inverse
}

TEST(Protocol, LoadServerSpecFromFile) {
  dst::TempFile file("server_spec.json");
  {
    std::ofstream out(file.path);
    out << R"({
      "http": {"port": 0, "recv_timeout_ms": 100},
      "models": [
        {"name": "a", "checkpoint": "/tmp/a.bin", "precision": "fp32"},
        {"name": "b", "checkpoint": "/tmp/b.bin", "precision": "int8", "workers": 2}
      ]
    })";
  }
  const dh::ServerSpec spec = dh::load_server_spec(file.path);
  EXPECT_EQ(spec.http.recv_timeout_ms, 100);
  EXPECT_EQ(spec.http.backlog, 64);  // absent -> default
  ASSERT_EQ(spec.models.size(), 2u);
  EXPECT_EQ(spec.models[0].name, "a");
  EXPECT_EQ(spec.models[1].workers, 2);
  EXPECT_THROW((void)dh::load_server_spec("/nonexistent/spec.json"), std::runtime_error);
}

TEST(Protocol, ToStatsJsonCopiesEveryCounter) {
  dlscale::serve::ServerStats s;
  s.precision = "int8";
  s.model_version = 4;
  s.accepted = 10;
  s.rejected_full = 2;
  s.rejected_closed = 1;
  s.rejected = 3;
  s.completed = 9;
  s.batches = 5;
  s.reloads = 1;
  s.queue_depth = 2;
  s.fp32_requests = 0;
  s.quantized_requests = 10;
  s.mean_batch_size = 1.8;
  s.queue_p50_us = 1.0;
  s.queue_p95_us = 2.0;
  s.queue_p99_us = 3.0;
  s.total_p50_us = 10.0;
  s.total_p95_us = 20.0;
  s.total_p99_us = 30.0;
  s.total_mean_us = 12.0;
  s.total_max_us = 50.0;
  const dh::ModelStatsJson out = dh::to_stats_json("seg", s);
  EXPECT_EQ(out.name, "seg");
  EXPECT_EQ(out.precision, "int8");
  EXPECT_EQ(out.model_version, 4);
  EXPECT_EQ(out.accepted, 10u);
  EXPECT_EQ(out.rejected_full, 2u);
  EXPECT_EQ(out.rejected_closed, 1u);
  EXPECT_EQ(out.rejected, 3u);
  EXPECT_EQ(out.completed, 9u);
  EXPECT_EQ(out.batches, 5u);
  EXPECT_EQ(out.reloads, 1u);
  EXPECT_EQ(out.queue_depth, 2u);
  EXPECT_EQ(out.quantized_requests, 10u);
  EXPECT_DOUBLE_EQ(out.mean_batch_size, 1.8);
  EXPECT_DOUBLE_EQ(out.queue_p99_us, 3.0);
  EXPECT_DOUBLE_EQ(out.total_p99_us, 30.0);
  EXPECT_DOUBLE_EQ(out.total_max_us, 50.0);
}
