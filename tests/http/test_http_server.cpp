// The socket front-end end to end over loopback: routing, concurrent
// clients bitwise-equal to in-process serving, per-model stats, reload,
// and the drain-shaped shutdown /healthz observes.
#include "dlscale/http/server.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "dlscale/http/protocol.hpp"
#include "dlscale/serve/model_registry.hpp"
#include "dlscale/util/rng.hpp"
#include "../serve/serve_test_support.hpp"
#include "http_test_support.hpp"

namespace dh = dlscale::http;
namespace dj = dlscale::util::json;
namespace ds = dlscale::serve;
namespace dt = dlscale::tensor;
namespace dst = dlscale::serve_testing;
namespace dht = dlscale::http_testing;

namespace {

ds::ServeConfig serve_config(dlscale::nn::Precision precision) {
  ds::ServeConfig config;
  config.model = dst::small_config();
  config.workers = 2;
  config.max_batch = 4;
  config.max_wait_us = 200;
  config.queue_capacity = 64;
  config.quantize.precision = precision;
  return config;
}

dt::Tensor random_image(dlscale::util::Rng& rng) {
  const auto m = dst::small_config();
  return dt::Tensor::randn({1, m.in_channels, m.input_size, m.input_size}, rng, 1.0f);
}

dh::PredictRequest to_predict_request(const dt::Tensor& image) {
  dh::PredictRequest request;
  request.shape.assign(image.shape().begin(), image.shape().end());
  request.image.assign(image.ptr(), image.ptr() + image.numel());
  return request;
}

/// A 2-model (fp32 + int8) registry with an HttpServer on an ephemeral
/// port — the standard fixture of these tests.
struct Frontend {
  dst::TempFile ckpt{"http_frontend.bin"};
  ds::ModelRegistry registry;
  std::unique_ptr<dh::HttpServer> server;

  Frontend() {
    dst::write_checkpoint(dst::small_config(), /*seed=*/11, ckpt.path);
    registry.add_model("seg-fp32", serve_config(dlscale::nn::Precision::kFp32), ckpt.path);
    registry.add_model("seg-int8", serve_config(dlscale::nn::Precision::kInt8), ckpt.path);
    dh::HttpConfig config;
    config.recv_timeout_ms = 10000;
    server = std::make_unique<dh::HttpServer>(registry, config);
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Routing via handle() — no sockets.
// ---------------------------------------------------------------------------

TEST(HttpRouting, MethodAndRouteErrors) {
  Frontend frontend;
  dh::Request request;
  request.method = "POST";
  request.target = "/healthz";
  EXPECT_EQ(frontend.server->handle(request).status, 405);
  request.target = "/stats";
  EXPECT_EQ(frontend.server->handle(request).status, 405);
  request.method = "GET";
  request.target = "/v1/models/seg-fp32:predict";
  EXPECT_EQ(frontend.server->handle(request).status, 405);  // predict is POST-only
  request.target = "/nope";
  EXPECT_EQ(frontend.server->handle(request).status, 404);
  request.target = "/v1/models/seg-fp32:frobnicate";
  request.method = "POST";
  EXPECT_EQ(frontend.server->handle(request).status, 404);
  request.target = "/v1/models/:predict";  // empty name
  EXPECT_EQ(frontend.server->handle(request).status, 404);
}

TEST(HttpRouting, UnknownModelListsKnownSet) {
  Frontend frontend;
  dh::Request request;
  request.method = "POST";
  request.target = "/v1/models/missing:predict";
  request.body = "{}";
  const dh::Response response = frontend.server->handle(request);
  EXPECT_EQ(response.status, 404);
  const auto error = dj::from_json<dh::ErrorResponse>(response.body);
  EXPECT_EQ(error.model, "missing");
  EXPECT_EQ(error.known_models, (std::vector<std::string>{"seg-fp32", "seg-int8"}));
}

TEST(HttpRouting, BadPredictBodiesAre400s) {
  Frontend frontend;
  dh::Request request;
  request.method = "POST";
  request.target = "/v1/models/seg-fp32:predict";

  request.body = "{not json";
  EXPECT_EQ(frontend.server->handle(request).status, 400);
  request.body = R"({"shape": [1, 3], "image": []})";  // bad arity
  EXPECT_EQ(frontend.server->handle(request).status, 400);
  request.body = R"({"shape": [1, 3, -16, 16], "image": []})";  // negative dim
  EXPECT_EQ(frontend.server->handle(request).status, 400);
  request.body = R"({"shape": [1, 3, 16, 16], "image": [1.0]})";  // count mismatch
  const dh::Response response = frontend.server->handle(request);
  EXPECT_EQ(response.status, 400);
  const auto error = dj::from_json<dh::ErrorResponse>(response.body);
  EXPECT_EQ(error.got_shape, (std::vector<int>{1, 3, 16, 16}));
  EXPECT_EQ(error.model, "seg-fp32");
}

TEST(HttpRouting, WrongModelShapeNamesExpectedVsGot) {
  Frontend frontend;
  // Well-formed body, wrong spatial size for the model: the serve-layer
  // ShapeError surfaces as a named 400.
  dh::PredictRequest predict;
  predict.shape = {1, 3, 8, 8};
  predict.image.assign(3 * 8 * 8, 0.5f);
  dh::Request request;
  request.method = "POST";
  request.target = "/v1/models/seg-fp32:predict";
  request.body = dj::to_json(predict);
  const dh::Response response = frontend.server->handle(request);
  EXPECT_EQ(response.status, 400);
  const auto error = dj::from_json<dh::ErrorResponse>(response.body);
  EXPECT_EQ(error.model, "seg-fp32");
  EXPECT_EQ(error.expected_shape, (std::vector<int>{1, 3, 16, 16}));
  EXPECT_EQ(error.got_shape, (std::vector<int>{1, 3, 8, 8}));
}

// ---------------------------------------------------------------------------
// Loopback end to end.
// ---------------------------------------------------------------------------

TEST(HttpServer, PredictOverLoopbackMatchesInProcessBitwise) {
  Frontend frontend;
  dlscale::util::Rng rng(21);
  const dt::Tensor image = random_image(rng);

  for (const std::string model : {"seg-fp32", "seg-int8"}) {
    // In-process ground truth on the SAME server instance.
    auto future = frontend.registry.at(model).submit(image);
    ASSERT_TRUE(future.has_value());
    const ds::Response reference = future->get();

    dht::Client client(frontend.server->port());
    const auto body = client.post_json<dh::PredictResponse>(
        "/v1/models/" + model + ":predict", to_predict_request(image));
    EXPECT_EQ(body.model, model);
    EXPECT_EQ(body.model_version, 1);
    EXPECT_EQ(body.precision, model == "seg-int8" ? "int8" : "fp32");
    ASSERT_EQ(body.logits.size(), reference.logits.numel());
    for (std::size_t j = 0; j < body.logits.size(); ++j) {
      ASSERT_EQ(body.logits[j], reference.logits[j]) << model << " logit " << j;
    }
    ASSERT_EQ(body.labels.size(), reference.labels.size());
    for (std::size_t j = 0; j < body.labels.size(); ++j) {
      ASSERT_EQ(body.labels[j], reference.labels[j]);
    }
    EXPECT_GE(body.total_us, body.queue_us);
  }
}

TEST(HttpServer, ConcurrentClientsBitwiseEqualAcrossModels) {
  Frontend frontend;
  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 4;

  // Per-(client, request) images with in-process ground truth computed
  // up front — each client alternates between the two models.
  dlscale::util::Rng rng(31);
  std::vector<std::vector<dt::Tensor>> images(kClients);
  std::vector<std::vector<std::vector<float>>> expected(kClients);
  std::vector<std::vector<std::string>> models(kClients);
  for (int c = 0; c < kClients; ++c) {
    for (int r = 0; r < kRequestsPerClient; ++r) {
      const std::string model = (c + r) % 2 == 0 ? "seg-fp32" : "seg-int8";
      dt::Tensor image = random_image(rng);
      auto future = frontend.registry.at(model).submit(image);
      ASSERT_TRUE(future.has_value());
      const ds::Response reference = future->get();
      expected[static_cast<std::size_t>(c)].emplace_back(
          reference.logits.ptr(), reference.logits.ptr() + reference.logits.numel());
      images[static_cast<std::size_t>(c)].push_back(std::move(image));
      models[static_cast<std::size_t>(c)].push_back(model);
    }
  }

  std::vector<std::thread> clients;
  std::vector<std::string> failures(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        dht::Client client(frontend.server->port());  // one keep-alive conn each
        for (int r = 0; r < kRequestsPerClient; ++r) {
          const auto ci = static_cast<std::size_t>(c);
          const auto ri = static_cast<std::size_t>(r);
          const dh::Response response =
              client.request("POST", "/v1/models/" + models[ci][ri] + ":predict",
                             dj::to_json(to_predict_request(images[ci][ri])));
          if (response.status != 200) {
            failures[ci] = "status " + std::to_string(response.status);
            return;
          }
          const auto body = dj::from_json<dh::PredictResponse>(response.body);
          if (body.logits != expected[ci][ri]) {  // element-wise bitwise equality
            failures[ci] = "logits mismatch at request " + std::to_string(r);
            return;
          }
        }
      } catch (const std::exception& e) {
        failures[static_cast<std::size_t>(c)] = e.what();
      }
    });
  }
  for (auto& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[static_cast<std::size_t>(c)], "") << "client " << c;
  }

  // Both models saw their half of the traffic (each image was served
  // twice: the in-process ground-truth pass plus the HTTP pass).
  const auto fp32 = frontend.registry.stats("seg-fp32");
  const auto int8 = frontend.registry.stats("seg-int8");
  constexpr auto kTotal = static_cast<std::uint64_t>(kClients * kRequestsPerClient);
  EXPECT_EQ(fp32.completed, kTotal);
  EXPECT_EQ(int8.completed, kTotal);
  EXPECT_GT(int8.quantized_requests, 0u);
}

TEST(HttpServer, StatsReportPerModelCountersAndPercentiles) {
  Frontend frontend;
  dlscale::util::Rng rng(41);
  dht::Client client(frontend.server->port());

  // 3 fp32 predicts, 1 int8 predict, one 404 and one bad body for the
  // error counter.
  for (int i = 0; i < 3; ++i) {
    (void)client.post_json<dh::PredictResponse>("/v1/models/seg-fp32:predict",
                                                to_predict_request(random_image(rng)));
  }
  (void)client.post_json<dh::PredictResponse>("/v1/models/seg-int8:predict",
                                              to_predict_request(random_image(rng)));
  EXPECT_EQ(client.request("POST", "/v1/models/none:predict", "{}").status, 404);
  EXPECT_EQ(client.request("POST", "/v1/models/seg-fp32:predict", "{oops").status, 400);

  const auto stats = client.get_json<dh::StatsResponse>("/stats");
  EXPECT_EQ(stats.server.port, static_cast<int>(frontend.server->port()));
  EXPECT_FALSE(stats.server.draining);
  EXPECT_GE(stats.server.connections, 1u);
  // 4 predicts + 2 errors; the in-flight /stats request is counted only
  // after its response is built.
  EXPECT_EQ(stats.server.requests, 6u);
  EXPECT_EQ(stats.server.http_errors, 2u);

  ASSERT_EQ(stats.models.size(), 2u);
  const dh::ModelStatsJson& fp32 = stats.models[0];
  const dh::ModelStatsJson& int8 = stats.models[1];
  EXPECT_EQ(fp32.name, "seg-fp32");
  EXPECT_EQ(int8.name, "seg-int8");
  EXPECT_EQ(fp32.precision, "fp32");
  EXPECT_EQ(int8.precision, "int8");
  EXPECT_EQ(fp32.accepted, 3u);
  EXPECT_EQ(fp32.completed, 3u);
  EXPECT_EQ(int8.accepted, 1u);
  EXPECT_EQ(fp32.rejected_full + fp32.rejected_closed, fp32.rejected);
  EXPECT_EQ(fp32.model_version, 1);
  EXPECT_EQ(fp32.fp32_requests, 3u);
  EXPECT_EQ(int8.quantized_requests, 1u);
  EXPECT_GT(fp32.total_p50_us, 0.0);
  EXPECT_GE(fp32.total_p95_us, fp32.total_p50_us);
  EXPECT_GE(fp32.total_p99_us, fp32.total_p95_us);
  EXPECT_GE(fp32.total_max_us, fp32.total_p99_us);
  EXPECT_GT(int8.total_p99_us, 0.0);
}

TEST(HttpServer, ReloadEndpointSwapsWeightsAndPrecision) {
  Frontend frontend;
  dst::TempFile ckpt_b("http_reload_b.bin");
  dst::write_checkpoint(dst::small_config(), /*seed=*/77, ckpt_b.path);
  dht::Client client(frontend.server->port());

  dh::ReloadRequest reload;
  reload.checkpoint = ckpt_b.path;
  const auto body =
      client.post_json<dh::ReloadResponse>("/v1/models/seg-fp32:reload", reload);
  EXPECT_EQ(body.model, "seg-fp32");
  EXPECT_EQ(body.model_version, 2);
  EXPECT_EQ(body.precision, "fp32");

  // Reload with a precision flip: fp32 -> bf16.
  reload.precision = "bf16";
  const auto flipped =
      client.post_json<dh::ReloadResponse>("/v1/models/seg-fp32:reload", reload);
  EXPECT_EQ(flipped.model_version, 3);
  EXPECT_EQ(flipped.precision, "bf16");
  EXPECT_STREQ(frontend.registry.stats("seg-fp32").precision, "bf16");

  // Bad reloads: missing checkpoint field, bad precision, bad file.
  EXPECT_EQ(client.request("POST", "/v1/models/seg-fp32:reload", "{}").status, 400);
  reload.precision = "fp64";
  EXPECT_EQ(client
                .request("POST", "/v1/models/seg-fp32:reload", dj::to_json(reload))
                .status,
            400);
  reload.precision = "";
  reload.checkpoint = "/nonexistent/ckpt.bin";
  EXPECT_EQ(client
                .request("POST", "/v1/models/seg-fp32:reload", dj::to_json(reload))
                .status,
            400);
  // The failed swaps left the model serving (strong guarantee).
  EXPECT_EQ(frontend.registry.stats("seg-fp32").model_version, 3);
}

TEST(HttpServer, HealthzFlipsDuringDrainAndDrainedModelsAnswer503) {
  Frontend frontend;
  dht::Client client(frontend.server->port());

  auto healthy = client.get_json<dh::HealthzResponse>("/healthz");
  EXPECT_EQ(healthy.status, "ok");
  EXPECT_TRUE(healthy.accepting);
  EXPECT_EQ(healthy.models, 2u);

  // Phase one of shutdown: /healthz flips while predicts still work —
  // the window where a load balancer stops routing but admitted traffic
  // completes.
  frontend.server->begin_drain();
  auto draining = client.get_json<dh::HealthzResponse>("/healthz");
  EXPECT_EQ(draining.status, "draining");
  EXPECT_FALSE(draining.accepting);
  dlscale::util::Rng rng(51);
  (void)client.post_json<dh::PredictResponse>("/v1/models/seg-fp32:predict",
                                              to_predict_request(random_image(rng)));

  // Model drain: admissions close, predicts answer 503 (not 429, not a
  // dropped connection) while /healthz and /stats keep responding.
  frontend.registry.shutdown();
  const dh::Response rejected = client.request(
      "POST", "/v1/models/seg-fp32:predict", dj::to_json(to_predict_request(random_image(rng))));
  EXPECT_EQ(rejected.status, 503);
  const auto error = dj::from_json<dh::ErrorResponse>(rejected.body);
  EXPECT_EQ(error.model, "seg-fp32");
  auto stats = client.get_json<dh::StatsResponse>("/stats");
  EXPECT_TRUE(stats.server.draining);
  EXPECT_EQ(stats.models[0].rejected_closed, 1u);

  // Full shutdown closes the connection; the server side is already
  // drained so this is a no-op apart from the socket teardown.
  frontend.server->shutdown();
  EXPECT_THROW((void)client.request("GET", "/healthz"), std::exception);
}

TEST(HttpServer, ShutdownIsIdempotentAndDestructorSafe) {
  Frontend frontend;
  frontend.server->shutdown();
  frontend.server->shutdown();  // second call is a no-op
  // Destructor runs another shutdown() — must not throw or hang.
}

TEST(HttpServer, RegisterModelsFromSpecServesOverHttp) {
  dst::TempFile ckpt("http_spec.bin");
  dst::write_checkpoint(dst::small_config(), 11, ckpt.path);

  dh::ServerSpec spec;
  spec.http.recv_timeout_ms = 10000;
  dh::ModelSpec model;
  model.name = "from-spec";
  model.checkpoint = ckpt.path;
  model.workers = 1;
  model.precision = "int8";
  model.model = dh::to_model_arch(dst::small_config());
  spec.models.push_back(model);

  ds::ModelRegistry registry;
  dh::register_models(spec, registry);
  dh::HttpServer server(registry, spec.http);

  dlscale::util::Rng rng(61);
  dht::Client client(server.port());
  const auto body = client.post_json<dh::PredictResponse>(
      "/v1/models/from-spec:predict", to_predict_request(random_image(rng)));
  EXPECT_EQ(body.model, "from-spec");
  EXPECT_EQ(body.precision, "int8");
}
