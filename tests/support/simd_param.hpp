// Shared fixture support for running a test suite under every SIMD
// dispatch level the host can execute. The levels are bitwise identical
// by contract (DESIGN.md §6, "SIMD dispatch"), so parameterizing the
// determinism suites over them is what *enforces* that contract.
#pragma once

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dlscale/util/simd.hpp"

namespace dlscale::testing {

/// Every level the host hardware (and build) can run: always kScalar,
/// plus kAvx2 when CPUID reports it. set_simd_level() clamps to the same
/// detection, so each returned level is actually exercisable.
inline std::vector<util::SimdLevel> simd_levels_under_test() {
  std::vector<util::SimdLevel> levels{util::SimdLevel::kScalar};
  if (util::detected_simd_level() == util::SimdLevel::kAvx2) {
    levels.push_back(util::SimdLevel::kAvx2);
  }
  return levels;
}

/// Suffix generator for INSTANTIATE_TEST_SUITE_P: "scalar" / "avx2".
inline std::string simd_param_name(
    const ::testing::TestParamInfo<util::SimdLevel>& info) {
  return util::simd_level_name(info.param);
}

/// RAII re-selection of the dispatch level; restores the previous level
/// so test ordering cannot leak a forced level into unrelated suites.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(util::SimdLevel level)
      : previous_(util::simd_level()) {
    util::set_simd_level(level);
  }
  ~ScopedSimdLevel() { util::set_simd_level(previous_); }
  ScopedSimdLevel(const ScopedSimdLevel&) = delete;
  ScopedSimdLevel& operator=(const ScopedSimdLevel&) = delete;

 private:
  util::SimdLevel previous_;
};

/// Base fixture: the whole test body runs under the parameterized level.
class SimdLevelTest : public ::testing::TestWithParam<util::SimdLevel> {
 protected:
  void SetUp() override {
    previous_ = util::simd_level();
    util::set_simd_level(GetParam());
  }
  void TearDown() override { util::set_simd_level(previous_); }

 private:
  util::SimdLevel previous_{util::SimdLevel::kScalar};
};

}  // namespace dlscale::testing
