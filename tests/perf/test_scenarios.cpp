// Degraded-cluster scenario modes of perf::simulate: preemption (rank
// death + shrink), straggler (slow rank), node flap (lossy links).
#include <gtest/gtest.h>

#include "dlscale/perf/simulator.hpp"

namespace dp = dlscale::perf;
namespace dmo = dlscale::models;
namespace dn = dlscale::net;
namespace dh = dlscale::hvd;

namespace {

dp::ScalingConfig quiet_config() {
  dp::ScalingConfig config;
  config.workload = dmo::WorkloadSpec::deeplab_v3plus(4);
  config.nodes = 1;  // 6 GPUs, Summit node shape
  config.flop_efficiency = dp::Calibration::paper_defaults().deeplab_efficiency;
  config.mpi_profile = dn::MpiProfile::mvapich2_gdr_like();
  config.knobs = dh::Knobs::paper_tuned();
  config.warmup_iterations = 1;
  config.iterations = 3;
  config.compute_jitter = 0.0;  // isolate the scenario's effect
  return config;
}

}  // namespace

TEST(Scenario, PreemptionShrinksWorldAndCompletes) {
  auto config = quiet_config();
  config.scenario = dp::ScenarioMode::kPreemption;
  config.scenario_rank = 2;
  config.preempt_at_iteration = 2;  // dies on the second measured attempt
  const auto result = dp::simulate(config);
  EXPECT_EQ(result.gpus, 6);
  EXPECT_EQ(result.final_gpus, 5);
  EXPECT_EQ(result.failures, 1);
  EXPECT_GE(result.recovery_iterations, 1);
  EXPECT_GT(result.recovery_virtual_s, 0.0);
  EXPECT_GT(result.iteration_s, 0.0);
  // Aggregate throughput is reported for the survivors.
  EXPECT_NEAR(result.images_per_s, result.per_gpu_images_s * 5, 1e-9);
}

TEST(Scenario, PreemptionOfRankZeroStillReports) {
  // The coordinator itself dies; the re-densified rank 0 (old rank 1)
  // must deliver the result.
  auto config = quiet_config();
  config.scenario = dp::ScenarioMode::kPreemption;
  config.scenario_rank = 0;
  config.preempt_at_iteration = 1;
  const auto result = dp::simulate(config);
  EXPECT_EQ(result.final_gpus, 5);
  EXPECT_EQ(result.failures, 1);
  EXPECT_GT(result.iteration_s, 0.0);
}

TEST(Scenario, StragglerInflatesIterationTime) {
  const auto baseline = dp::simulate(quiet_config());
  auto slow = quiet_config();
  slow.scenario = dp::ScenarioMode::kStraggler;
  slow.scenario_rank = 1;
  slow.straggler_factor = 2.0;
  const auto straggled = dp::simulate(slow);
  // Synchronous training pays the slowest rank: a 2x straggler should
  // cost well over 30% even with comm overlap.
  EXPECT_GT(straggled.iteration_s, 1.3 * baseline.iteration_s);
  EXPECT_LT(straggled.scaling_efficiency, baseline.scaling_efficiency);
  EXPECT_EQ(straggled.failures, 0);
  EXPECT_EQ(straggled.final_gpus, straggled.gpus);
}

TEST(Scenario, NodeFlapAddsRetransmitLatency) {
  const auto baseline = dp::simulate(quiet_config());
  auto flap = quiet_config();
  flap.scenario = dp::ScenarioMode::kNodeFlap;
  flap.scenario_rank = 1;
  flap.flap_drop_prob = 0.5;  // every other message on the flapping NIC
  const auto flapped = dp::simulate(flap);
  // Drops are retransmissions, not data loss: the run completes, slower.
  EXPECT_GT(flapped.iteration_s, baseline.iteration_s);
  EXPECT_EQ(flapped.failures, 0);
  EXPECT_EQ(flapped.final_gpus, flapped.gpus);
}

TEST(Scenario, NodeFlapIsSeedDeterministic) {
  auto flap = quiet_config();
  flap.scenario = dp::ScenarioMode::kNodeFlap;
  flap.flap_drop_prob = 0.4;
  const auto a = dp::simulate(flap);
  const auto b = dp::simulate(flap);
  // Drop decisions are hashed from (seed, sender, sequence), so repeat
  // runs agree to PDES wobble, exactly like the healthy simulator.
  EXPECT_NEAR(a.iteration_s, b.iteration_s, 0.01 * a.iteration_s);
}

TEST(Scenario, PreemptionDuringAutotuneRebindsTuner) {
  auto config = quiet_config();
  config.autotune.enabled = true;
  config.autotune.window_steps = 2;
  config.max_tuning_iterations = 24;
  config.scenario = dp::ScenarioMode::kPreemption;
  config.scenario_rank = 3;
  config.preempt_at_iteration = 3;  // mid-tuning (after 1 warmup attempt)
  const auto result = dp::simulate(config);
  EXPECT_TRUE(result.autotuned);
  EXPECT_EQ(result.failures, 1);
  EXPECT_EQ(result.final_gpus, 5);
  EXPECT_GT(result.iteration_s, 0.0);
}
