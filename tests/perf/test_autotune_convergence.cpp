// Autotune convergence (slow, label `slow`): on a simulated E9-style
// cluster the online tuner must land within 95% of the best static knob
// configuration found by an exhaustive sweep — the PR's acceptance
// criterion. Excluded from tier-1 via `ctest -LE slow`.
#include <gtest/gtest.h>

#include "dlscale/perf/simulator.hpp"

namespace dp = dlscale::perf;
namespace dmo = dlscale::models;
namespace dn = dlscale::net;
namespace dh = dlscale::hvd;

namespace {

dp::ScalingConfig base_config(int nodes, dh::Knobs knobs) {
  dp::ScalingConfig config;
  config.workload = dmo::WorkloadSpec::deeplab_v3plus(4);
  config.nodes = nodes;
  config.flop_efficiency = dp::Calibration::paper_defaults().deeplab_efficiency;
  config.mpi_profile = dn::MpiProfile::mvapich2_gdr_like();
  config.knobs = knobs;
  config.warmup_iterations = 1;
  config.iterations = 2;
  config.compute_jitter = 0.0;  // deterministic surface for both runs
  return config;
}

dh::TuningSpace sweep_space() {
  dh::TuningSpace space;
  space.fusion_thresholds = {1 << 20, 8 << 20, 64 << 20};
  space.cycle_times_s = {3.5e-3, 10e-3, 25e-3};
  space.hierarchical = {false, true};
  return space;
}

}  // namespace

TEST(AutotuneConvergence, ReachesNinetyFivePercentOfBestStaticThroughput) {
  constexpr int kNodes = 2;
  const dh::TuningSpace space = sweep_space();

  // Exhaustive static sweep: ground truth for what the best fixed knobs
  // achieve on this cluster/workload.
  double best_static = 0.0;
  dh::Knobs best_knobs;
  for (std::size_t fusion : space.fusion_thresholds) {
    for (double cycle : space.cycle_times_s) {
      for (bool hier : space.hierarchical) {
        dh::Knobs knobs = dh::Knobs::horovod_defaults();
        knobs.fusion_threshold = fusion;
        knobs.cycle_time_s = cycle;
        knobs.hierarchical_allreduce = hier;
        const auto result = dp::simulate(base_config(kNodes, knobs));
        if (result.images_per_s > best_static) {
          best_static = result.images_per_s;
          best_knobs = knobs;
        }
      }
    }
  }
  ASSERT_GT(best_static, 0.0);

  // One autotuned run starting from Horovod defaults over the same space.
  auto config = base_config(kNodes, dh::Knobs::horovod_defaults());
  config.autotune.enabled = true;
  config.autotune.window_steps = 2;
  config.autotune.space = space;
  const auto tuned = dp::simulate(config);

  EXPECT_TRUE(tuned.autotuned);
  EXPECT_GT(tuned.tuning_iterations, 0);
  EXPECT_GE(tuned.images_per_s, 0.95 * best_static)
      << "tuned " << tuned.images_per_s << " img/s vs best static " << best_static
      << " img/s (fusion " << best_knobs.fusion_threshold << ", cycle "
      << best_knobs.cycle_time_s << ", hier " << best_knobs.hierarchical_allreduce << ")";
}

TEST(AutotuneConvergence, TuningBudgetIsRespected) {
  auto config = base_config(1, dh::Knobs::horovod_defaults());
  config.autotune.enabled = true;
  config.autotune.window_steps = 1;
  config.max_tuning_iterations = 3;  // force an early external freeze
  const auto result = dp::simulate(config);
  EXPECT_TRUE(result.autotuned);
  EXPECT_LE(result.tuning_iterations, 3);
  EXPECT_GT(result.images_per_s, 0.0);
}
