// Performance-simulator properties: single-GPU anchors, scaling
// behaviour, and knob/library ordering — the relationships every
// reproduced figure depends on.
#include <gtest/gtest.h>

#include "dlscale/perf/simulator.hpp"

namespace dp = dlscale::perf;
namespace dmo = dlscale::models;
namespace dn = dlscale::net;
namespace dh = dlscale::hvd;

namespace {

dp::ScalingConfig base_config(int nodes, dn::MpiProfile profile, dh::Knobs knobs) {
  dp::ScalingConfig config;
  config.workload = dmo::WorkloadSpec::deeplab_v3plus(4);
  config.nodes = nodes;
  config.flop_efficiency = dp::Calibration::paper_defaults().deeplab_efficiency;
  config.mpi_profile = std::move(profile);
  config.knobs = knobs;
  config.warmup_iterations = 1;
  config.iterations = 2;
  return config;
}

}  // namespace

TEST(Calibration, SingleGpuAnchorsMatchPaper) {
  const auto calibration = dp::Calibration::paper_defaults();
  // Paper: 6.7 img/s for DLv3+ and 300 img/s for ResNet-50 on one V100.
  const double dlv3 = dp::single_gpu_throughput(dmo::WorkloadSpec::deeplab_v3plus(4),
                                                calibration.deeplab_efficiency);
  EXPECT_NEAR(dlv3, 6.7, 0.15);
  const double rn50 = dp::single_gpu_throughput(dmo::WorkloadSpec::resnet50(64),
                                                calibration.resnet_efficiency);
  EXPECT_NEAR(rn50, 300.0, 6.0);
}

TEST(Calibration, ThroughputRatioIsRoughly45x) {
  const auto calibration = dp::Calibration::paper_defaults();
  const double dlv3 = dp::single_gpu_throughput(dmo::WorkloadSpec::deeplab_v3plus(4),
                                                calibration.deeplab_efficiency);
  const double rn50 = dp::single_gpu_throughput(dmo::WorkloadSpec::resnet50(64),
                                                calibration.resnet_efficiency);
  EXPECT_NEAR(rn50 / dlv3, 300.0 / 6.7, 3.0);
}

TEST(IterationProfile, StructureIsSane) {
  const auto workload = dmo::WorkloadSpec::deeplab_v3plus(4);
  const dlscale::gpu::ComputeModel gpu_model(dlscale::gpu::DeviceSpec::v100_summit(), 0.24);
  const auto profile = dp::profile_iteration(workload, gpu_model);
  EXPECT_GT(profile.fwd_s, 0.0);
  // Backward is roughly 2x forward for conv nets.
  EXPECT_NEAR(profile.bwd_s / profile.fwd_s, 2.0, 0.35);
  ASSERT_EQ(profile.grad_names.size(), workload.layers.size());
  // Gradients are emitted in increasing time, starting after forward.
  double prev = profile.fwd_s;
  for (double t : profile.grad_ready_s) {
    EXPECT_GE(t, prev);
    prev = t;
  }
  // First emitted gradient is the LAST layer's.
  EXPECT_EQ(profile.grad_names.front(), workload.layers.back().name);
}

TEST(Simulate, SingleNodeIsNearLinear) {
  auto config = base_config(1, dn::MpiProfile::mvapich2_gdr_like(), dh::Knobs::paper_tuned());
  config.compute_jitter = 0.0;
  const auto result = dp::simulate(config);
  EXPECT_EQ(result.gpus, 6);
  EXPECT_GT(result.scaling_efficiency, 0.95);
  EXPECT_LE(result.scaling_efficiency, 1.02);
}

TEST(Simulate, PaperHeadlineNumbers) {
  // The abstract's committed quantities at 132 GPUs: 92% efficiency with
  // tuned MVAPICH2-GDR, ~68% for default Horovod (from +23.9% / 1.3x),
  // reproduced within a few points.
  const auto tuned =
      dp::simulate(base_config(22, dn::MpiProfile::mvapich2_gdr_like(), dh::Knobs::paper_tuned()));
  EXPECT_NEAR(tuned.scaling_efficiency, 0.92, 0.04);

  const auto fallback =
      dp::simulate(base_config(22, dn::MpiProfile::spectrum_like(), dh::Knobs::horovod_defaults()));
  EXPECT_NEAR(fallback.scaling_efficiency, 0.68, 0.05);

  // +23.9 efficiency points and 1.3x speedup.
  EXPECT_NEAR(tuned.scaling_efficiency - fallback.scaling_efficiency, 0.239, 0.06);
  EXPECT_NEAR(tuned.images_per_s / fallback.images_per_s, 1.3, 0.15);
}

TEST(Simulate, MvapichBeatsSpectrumAtEveryScale) {
  for (int nodes : {2, 8}) {
    const auto spectrum =
        dp::simulate(base_config(nodes, dn::MpiProfile::spectrum_like(), dh::Knobs::horovod_defaults()));
    const auto mvapich = dp::simulate(
        base_config(nodes, dn::MpiProfile::mvapich2_gdr_like(), dh::Knobs::horovod_defaults()));
    // At small scale the two libraries are within noise of each other;
    // allow half an efficiency point of PDES wobble.
    EXPECT_GE(mvapich.scaling_efficiency, spectrum.scaling_efficiency - 0.005)
        << nodes << " nodes";
  }
}

TEST(Simulate, EfficiencyDegradesWithScaleForDefaultConfig) {
  const auto small =
      dp::simulate(base_config(2, dn::MpiProfile::spectrum_like(), dh::Knobs::horovod_defaults()));
  const auto large =
      dp::simulate(base_config(22, dn::MpiProfile::spectrum_like(), dh::Knobs::horovod_defaults()));
  EXPECT_GT(small.scaling_efficiency, large.scaling_efficiency);
}

TEST(Simulate, TunedNeverWorseThanDefault) {
  for (const auto& profile : {dn::MpiProfile::spectrum_like(), dn::MpiProfile::mvapich2_gdr_like()}) {
    const auto with_default = dp::simulate(base_config(8, profile, dh::Knobs::horovod_defaults()));
    const auto with_tuned = dp::simulate(base_config(8, profile, dh::Knobs::paper_tuned()));
    EXPECT_GE(with_tuned.scaling_efficiency, with_default.scaling_efficiency - 0.01)
        << profile.name;
  }
}

TEST(Simulate, ThroughputScalesWithGpus) {
  const auto small =
      dp::simulate(base_config(1, dn::MpiProfile::mvapich2_gdr_like(), dh::Knobs::paper_tuned()));
  const auto large =
      dp::simulate(base_config(4, dn::MpiProfile::mvapich2_gdr_like(), dh::Knobs::paper_tuned()));
  EXPECT_GT(large.images_per_s, 3.0 * small.images_per_s);
}

TEST(Simulate, JitterReducesEfficiency) {
  auto jittered = base_config(4, dn::MpiProfile::mvapich2_gdr_like(), dh::Knobs::paper_tuned());
  jittered.compute_jitter = 0.05;
  auto clean = jittered;
  clean.compute_jitter = 0.0;
  const auto with_jitter = dp::simulate(jittered);
  const auto without = dp::simulate(clean);
  EXPECT_LT(with_jitter.scaling_efficiency, without.scaling_efficiency);
}

TEST(Simulate, ReproducibleWithinPdesTolerance) {
  // Jitter and gradient timelines are seed-deterministic; the only
  // run-to-run variation is NIC-reservation ordering (threads reach their
  // sends in arbitrary real-time order — DESIGN.md "PDES-lite"). Repeat
  // runs must agree to well under a percent.
  const auto config = base_config(2, dn::MpiProfile::mvapich2_gdr_like(), dh::Knobs::paper_tuned());
  const auto a = dp::simulate(config);
  const auto b = dp::simulate(config);
  EXPECT_NEAR(a.iteration_s, b.iteration_s, 0.01 * a.iteration_s);
}

TEST(Simulate, InvalidIterationsThrow) {
  auto config = base_config(1, dn::MpiProfile::ideal(), dh::Knobs{});
  config.iterations = 0;
  EXPECT_THROW(dp::simulate(config), std::invalid_argument);
}

TEST(Simulate, StatsArePopulated) {
  const auto result =
      dp::simulate(base_config(2, dn::MpiProfile::mvapich2_gdr_like(), dh::Knobs::paper_tuned()));
  EXPECT_GT(result.hvd_stats.fused_batches, 0u);
  EXPECT_GT(result.hvd_stats.bytes_reduced, 0u);
  EXPECT_GT(result.iteration_s, 0.0);
  EXPECT_GT(result.comm_overhead_s, 0.0);
}
