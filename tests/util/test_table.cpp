#include "dlscale/util/table.hpp"

#include <gtest/gtest.h>

namespace du = dlscale::util;

TEST(Table, AsciiContainsHeaderAndCells) {
  du::Table t("demo");
  t.set_header({"gpus", "img/s"});
  t.add_row({"1", "6.7"});
  t.add_row({"132", "812.4"});
  const std::string ascii = t.to_ascii();
  EXPECT_NE(ascii.find("demo"), std::string::npos);
  EXPECT_NE(ascii.find("gpus"), std::string::npos);
  EXPECT_NE(ascii.find("812.4"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  du::Table t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
}

TEST(Table, HeaderAfterRowsThrows) {
  du::Table t;
  t.set_header({"a"});
  t.add_row({"1"});
  EXPECT_THROW(t.set_header({"b"}), std::logic_error);
}

TEST(Table, CsvQuoting) {
  du::Table t;
  t.set_header({"name", "value"});
  t.add_row({"with,comma", "with\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(du::Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(du::Table::num(7LL), "7");
  EXPECT_EQ(du::Table::pct(0.923, 1), "92.3%");
}

TEST(Table, RowsCount) {
  du::Table t;
  t.set_header({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  EXPECT_EQ(t.rows(), 1u);
}
