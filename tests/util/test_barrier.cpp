#include "dlscale/util/barrier.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace du = dlscale::util;

TEST(Barrier, SingleParticipantNeverBlocks) {
  du::Barrier barrier(1);
  barrier.arrive_and_wait();
  barrier.arrive_and_wait();
  SUCCEED();
}

TEST(Barrier, SynchronisesPhases) {
  constexpr int kThreads = 8;
  constexpr int kRounds = 50;
  du::Barrier barrier(kThreads);
  std::atomic<int> counter{0};
  std::atomic<bool> failed{false};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        counter.fetch_add(1);
        barrier.arrive_and_wait();
        // After the barrier every thread must observe the full round's count.
        if (counter.load() < (round + 1) * kThreads) failed.store(true);
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(counter.load(), kThreads * kRounds);
}
