#include "dlscale/util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

namespace du = dlscale::util;

TEST(ThreadPool, CoversRangeExactlyOnce) {
  du::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(101);
  pool.parallel_for(1, 101, 7, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  EXPECT_EQ(hits[0].load(), 0);  // begin=1: index 0 untouched
  for (std::size_t i = 1; i <= 100; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, EmptyRangeIsANoop) {
  du::ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(5, 5, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  pool.parallel_for(9, 3, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, GrainLargerThanRangeRunsInline) {
  du::ThreadPool pool(4);
  int calls = 0;
  std::int64_t seen_lo = -1, seen_hi = -1;
  pool.parallel_for(2, 10, 100, [&](std::int64_t lo, std::int64_t hi) {
    ++calls;  // single inline invocation: no synchronisation needed
    seen_lo = lo;
    seen_hi = hi;
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen_lo, 2);
  EXPECT_EQ(seen_hi, 10);
}

TEST(ThreadPool, ChunkBoundariesIndependentOfThreadCount) {
  // The determinism contract: chunking is a pure function of
  // (begin, end, grain), never of the pool size.
  auto boundaries = [](int threads) {
    du::ThreadPool pool(threads);
    std::mutex m;
    std::vector<std::pair<std::int64_t, std::int64_t>> out;
    pool.parallel_for(0, 1000, 64, [&](std::int64_t lo, std::int64_t hi) {
      std::lock_guard<std::mutex> lock(m);
      out.emplace_back(lo, hi);
    });
    std::sort(out.begin(), out.end());
    return out;
  };
  const auto one = boundaries(1);
  EXPECT_EQ(one, boundaries(2));
  EXPECT_EQ(one, boundaries(8));
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  du::ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 100, 1,
                                 [&](std::int64_t lo, std::int64_t) {
                                   if (lo == 41) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, SerialPoolStillPropagatesExceptions) {
  du::ThreadPool pool(1);
  EXPECT_THROW(pool.parallel_for(0, 10, 1,
                                 [&](std::int64_t, std::int64_t) {
                                   throw std::invalid_argument("serial boom");
                                 }),
               std::invalid_argument);
}

TEST(ThreadPool, NestedSubmissionRunsInlineWithoutDeadlock) {
  du::ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  std::atomic<int> inner_calls{0};
  pool.parallel_for(0, 8, 1, [&](std::int64_t, std::int64_t) {
    // A kernel calling another kernel from inside a worker (or from the
    // participating caller): must complete without waiting on the pool.
    pool.parallel_for(0, 10, 2, [&](std::int64_t lo, std::int64_t hi) {
      inner_calls.fetch_add(1);
      inner_total.fetch_add(static_cast<int>(hi - lo));
    });
  });
  EXPECT_EQ(inner_total.load(), 80);  // 8 outer chunks x 10 inner items
}

TEST(ThreadPool, ConcurrentCallersShareOnePool) {
  // The simmpi-rank case: several plain threads (not pool workers) issue
  // parallel_for against the same pool concurrently. All must finish and
  // each must see its full range.
  du::ThreadPool pool(2);
  constexpr int kCallers = 8;
  std::vector<std::int64_t> sums(kCallers, 0);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&, t] {
      std::atomic<std::int64_t> sum{0};
      pool.parallel_for(0, 1000, 16, [&](std::int64_t lo, std::int64_t hi) {
        std::int64_t s = 0;
        for (std::int64_t i = lo; i < hi; ++i) s += i;
        sum.fetch_add(s);
      });
      sums[static_cast<std::size_t>(t)] = sum.load();
    });
  }
  for (auto& c : callers) c.join();
  for (int t = 0; t < kCallers; ++t) EXPECT_EQ(sums[static_cast<std::size_t>(t)], 499500);
}

TEST(ThreadPool, GlobalPoolResizable) {
  du::set_global_thread_count(3);
  EXPECT_EQ(du::global_thread_count(), 3);
  EXPECT_EQ(du::global_pool().size(), 3);
  std::atomic<int> n{0};
  du::parallel_for(0, 32, 4, [&](std::int64_t lo, std::int64_t hi) {
    n.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(n.load(), 32);
  du::set_global_thread_count(1);
  EXPECT_EQ(du::global_pool().size(), 1);
}
