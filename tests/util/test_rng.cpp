#include "dlscale/util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace du = dlscale::util;

TEST(Rng, DeterministicForSameSeed) {
  du::Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  du::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a() == b();
  EXPECT_LT(same, 5);
}

TEST(Rng, ChildStreamsAreDecorrelatedAndDeterministic) {
  du::Rng parent(7);
  du::Rng c1 = parent.child(1);
  du::Rng c2 = parent.child(2);
  du::Rng c1_again = du::Rng(7).child(1);
  EXPECT_EQ(c1(), c1_again());
  int same = 0;
  for (int i = 0; i < 100; ++i) same += c1() == c2();
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformInUnitInterval) {
  du::Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  du::Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 3.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 3.5);
  }
}

TEST(Rng, UniformIndexCoversRange) {
  du::Rng rng(42);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.uniform_index(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  du::Rng rng(42);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, NormalScaled) {
  du::Rng rng(42);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.normal(10.0, 0.5);
  EXPECT_NEAR(sum / kN, 10.0, 0.05);
}
