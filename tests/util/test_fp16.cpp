#include "dlscale/util/fp16.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "dlscale/util/rng.hpp"
#include "dlscale/util/simd.hpp"
#include "../support/simd_param.hpp"

namespace du = dlscale::util;
using dlscale::testing::ScopedSimdLevel;
using dlscale::testing::simd_levels_under_test;

TEST(Fp16, ExactSmallValues) {
  // Values exactly representable in half round-trip bit-perfectly.
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, 1024.0f, -0.25f, 65504.0f}) {
    EXPECT_FLOAT_EQ(du::half_to_float(du::float_to_half(v)), v) << v;
  }
}

TEST(Fp16, RoundTripRelativeError) {
  // Arbitrary values round-trip within half precision (2^-11 relative).
  for (float v : {3.14159f, -2.71828f, 123.456f, 0.001f, -9999.0f}) {
    const float back = du::half_to_float(du::float_to_half(v));
    EXPECT_NEAR(back, v, std::abs(v) * 1.0f / 1024.0f) << v;
  }
}

TEST(Fp16, SignedZero) {
  EXPECT_EQ(du::float_to_half(0.0f), 0x0000);
  EXPECT_EQ(du::float_to_half(-0.0f), 0x8000);
  EXPECT_EQ(du::half_to_float(0x8000), -0.0f);
}

TEST(Fp16, Infinities) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(du::float_to_half(inf), 0x7C00);
  EXPECT_EQ(du::float_to_half(-inf), 0xFC00);
  EXPECT_TRUE(std::isinf(du::half_to_float(0x7C00)));
  // Overflow beyond half max (65504) saturates to infinity.
  EXPECT_EQ(du::float_to_half(70000.0f), 0x7C00);
}

TEST(Fp16, NaN) {
  const std::uint16_t half_nan = du::float_to_half(std::numeric_limits<float>::quiet_NaN());
  EXPECT_EQ(half_nan & 0x7C00, 0x7C00);
  EXPECT_NE(half_nan & 0x03FF, 0);
  EXPECT_TRUE(std::isnan(du::half_to_float(half_nan)));
}

TEST(Fp16, Subnormals) {
  // Smallest positive subnormal half = 2^-24.
  const float tiny = std::ldexp(1.0f, -24);
  EXPECT_EQ(du::float_to_half(tiny), 0x0001);
  EXPECT_FLOAT_EQ(du::half_to_float(0x0001), tiny);
  // Below half's range underflows to zero.
  EXPECT_EQ(du::float_to_half(std::ldexp(1.0f, -26)), 0x0000);
  // Largest subnormal.
  const float max_subnormal = std::ldexp(1023.0f, -24);
  EXPECT_EQ(du::float_to_half(max_subnormal), 0x03FF);
  EXPECT_FLOAT_EQ(du::half_to_float(0x03FF), max_subnormal);
}

TEST(Fp16, RoundToNearestEven) {
  // 1 + 2^-11 sits exactly between 1.0 and the next half (1 + 2^-10);
  // nearest-even rounds down to 1.0.
  EXPECT_EQ(du::float_to_half(1.0f + std::ldexp(1.0f, -11)), du::float_to_half(1.0f));
  // Slightly above the midpoint rounds up.
  EXPECT_EQ(du::float_to_half(1.0f + std::ldexp(1.2f, -11)),
            static_cast<std::uint16_t>(du::float_to_half(1.0f) + 1));
}

TEST(Fp16, HalfAdd) {
  const auto a = du::float_to_half(1.5f);
  const auto b = du::float_to_half(2.25f);
  EXPECT_FLOAT_EQ(du::half_to_float(du::half_add(a, b)), 3.75f);
}

TEST(Fp16, ExhaustiveRoundTripThroughFloat) {
  // Every finite half converts to float and back to the identical bits.
  for (std::uint32_t bits = 0; bits < 0x10000; ++bits) {
    const auto half = static_cast<std::uint16_t>(bits);
    if ((half & 0x7C00) == 0x7C00) continue;  // skip inf/NaN payload checks
    EXPECT_EQ(du::float_to_half(du::half_to_float(half)), half) << std::hex << bits;
  }
}

// ---- array sweeps: the F16C fast path must match the software converter
// bit-for-bit under every dispatch level -----------------------------------

namespace {

/// All 65536 half patterns, shuffled in blocks so vector blocks mix
/// normal, subnormal, inf, and NaN lanes (exercising the per-block
/// special-lane guard rather than neatly segregating it).
std::vector<std::uint16_t> all_half_patterns_interleaved() {
  std::vector<std::uint16_t> halves(0x10000);
  for (std::uint32_t i = 0; i < 0x10000; ++i) {
    // Stride by a odd constant so consecutive entries span exponent bands.
    halves[i] = static_cast<std::uint16_t>((i * 2654435761u) & 0xFFFFu);
  }
  return halves;
}

std::vector<float> test_floats_with_specials() {
  du::Rng rng(123);
  std::vector<float> out;
  for (int i = 0; i < 4096; ++i) {
    out.push_back(static_cast<float>(rng.normal(0.0, 100.0)));
  }
  // Boundary and special values, positioned off 8-lane alignment.
  const float inf = std::numeric_limits<float>::infinity();
  out.insert(out.begin() + 3,
             {0.0f, -0.0f, 65504.0f, 65520.0f, 65536.0f, -70000.0f, inf, -inf,
              std::numeric_limits<float>::quiet_NaN(), std::ldexp(1.0f, -24),
              std::ldexp(1.0f, -26), std::ldexp(1023.0f, -24),
              1.0f + std::ldexp(1.0f, -11)});
  return out;
}

}  // namespace

TEST(Fp16Array, HalvesToFloatsMatchesScalarOnAllPatterns) {
  const auto halves = all_half_patterns_interleaved();
  std::vector<float> reference(halves.size());
  for (std::size_t i = 0; i < halves.size(); ++i) {
    reference[i] = du::half_to_float(halves[i]);
  }
  for (du::SimdLevel level : simd_levels_under_test()) {
    ScopedSimdLevel scoped(level);
    std::vector<float> out(halves.size());
    du::halves_to_floats(halves.data(), out.data(), halves.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(std::bit_cast<std::uint32_t>(out[i]),
                std::bit_cast<std::uint32_t>(reference[i]))
          << du::simd_level_name(level) << " half 0x" << std::hex << halves[i];
    }
  }
}

TEST(Fp16Array, HalvesToFloatsDivMatchesScalarOnAllPatterns) {
  const auto halves = all_half_patterns_interleaved();
  for (float divisor : {1.0f, 6.0f}) {
    std::vector<float> reference(halves.size());
    for (std::size_t i = 0; i < halves.size(); ++i) {
      reference[i] = du::half_to_float(halves[i]) / divisor;
    }
    for (du::SimdLevel level : simd_levels_under_test()) {
      ScopedSimdLevel scoped(level);
      std::vector<float> out(halves.size());
      du::halves_to_floats_div(halves.data(), out.data(), halves.size(),
                               divisor);
      for (std::size_t i = 0; i < out.size(); ++i) {
        ASSERT_EQ(std::bit_cast<std::uint32_t>(out[i]),
                  std::bit_cast<std::uint32_t>(reference[i]))
            << du::simd_level_name(level) << " half 0x" << std::hex
            << halves[i] << " / " << divisor;
      }
    }
  }
}

TEST(Fp16Array, FloatsToHalvesMatchesScalarOnBoundaryAndRandomFloats) {
  const auto floats = test_floats_with_specials();
  std::vector<std::uint16_t> reference(floats.size());
  for (std::size_t i = 0; i < floats.size(); ++i) {
    reference[i] = du::float_to_half(floats[i]);
  }
  for (du::SimdLevel level : simd_levels_under_test()) {
    ScopedSimdLevel scoped(level);
    std::vector<std::uint16_t> out(floats.size());
    du::floats_to_halves(floats.data(), out.data(), floats.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i], reference[i])
          << du::simd_level_name(level) << " float " << floats[i];
    }
  }
}

TEST(Fp16Array, ExhaustiveRoundTripIdenticalUnderEveryLevel) {
  // The satellite requirement: float->half->float round-trip parity over
  // all 65536 half patterns, identical across dispatch levels.
  const auto halves = all_half_patterns_interleaved();
  for (du::SimdLevel level : simd_levels_under_test()) {
    ScopedSimdLevel scoped(level);
    std::vector<float> as_float(halves.size());
    std::vector<std::uint16_t> back(halves.size());
    du::halves_to_floats(halves.data(), as_float.data(), halves.size());
    du::floats_to_halves(as_float.data(), back.data(), halves.size());
    for (std::size_t i = 0; i < halves.size(); ++i) {
      const std::uint16_t expected = du::float_to_half(du::half_to_float(halves[i]));
      ASSERT_EQ(back[i], expected)
          << du::simd_level_name(level) << " half 0x" << std::hex << halves[i];
    }
  }
}

TEST(Fp16Array, HalvesAddMatchesScalarReducer) {
  const auto halves = all_half_patterns_interleaved();
  // Pair each pattern with a shifted copy of the list so sums cover
  // finite+finite, finite+inf, inf+inf, and NaN operands.
  std::vector<std::uint16_t> other(halves.size());
  for (std::size_t i = 0; i < halves.size(); ++i) {
    other[i] = halves[(i + 12345) % halves.size()];
  }
  std::vector<std::uint16_t> reference = halves;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    reference[i] = du::half_add(reference[i], other[i]);
  }
  for (du::SimdLevel level : simd_levels_under_test()) {
    ScopedSimdLevel scoped(level);
    std::vector<std::uint16_t> acc = halves;
    du::halves_add_inplace(acc.data(), other.data(), acc.size());
    for (std::size_t i = 0; i < acc.size(); ++i) {
      ASSERT_EQ(acc[i], reference[i])
          << du::simd_level_name(level) << " 0x" << std::hex << halves[i]
          << " + 0x" << other[i];
    }
  }
}
