#include "dlscale/util/fp16.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace du = dlscale::util;

TEST(Fp16, ExactSmallValues) {
  // Values exactly representable in half round-trip bit-perfectly.
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, 1024.0f, -0.25f, 65504.0f}) {
    EXPECT_FLOAT_EQ(du::half_to_float(du::float_to_half(v)), v) << v;
  }
}

TEST(Fp16, RoundTripRelativeError) {
  // Arbitrary values round-trip within half precision (2^-11 relative).
  for (float v : {3.14159f, -2.71828f, 123.456f, 0.001f, -9999.0f}) {
    const float back = du::half_to_float(du::float_to_half(v));
    EXPECT_NEAR(back, v, std::abs(v) * 1.0f / 1024.0f) << v;
  }
}

TEST(Fp16, SignedZero) {
  EXPECT_EQ(du::float_to_half(0.0f), 0x0000);
  EXPECT_EQ(du::float_to_half(-0.0f), 0x8000);
  EXPECT_EQ(du::half_to_float(0x8000), -0.0f);
}

TEST(Fp16, Infinities) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(du::float_to_half(inf), 0x7C00);
  EXPECT_EQ(du::float_to_half(-inf), 0xFC00);
  EXPECT_TRUE(std::isinf(du::half_to_float(0x7C00)));
  // Overflow beyond half max (65504) saturates to infinity.
  EXPECT_EQ(du::float_to_half(70000.0f), 0x7C00);
}

TEST(Fp16, NaN) {
  const std::uint16_t half_nan = du::float_to_half(std::numeric_limits<float>::quiet_NaN());
  EXPECT_EQ(half_nan & 0x7C00, 0x7C00);
  EXPECT_NE(half_nan & 0x03FF, 0);
  EXPECT_TRUE(std::isnan(du::half_to_float(half_nan)));
}

TEST(Fp16, Subnormals) {
  // Smallest positive subnormal half = 2^-24.
  const float tiny = std::ldexp(1.0f, -24);
  EXPECT_EQ(du::float_to_half(tiny), 0x0001);
  EXPECT_FLOAT_EQ(du::half_to_float(0x0001), tiny);
  // Below half's range underflows to zero.
  EXPECT_EQ(du::float_to_half(std::ldexp(1.0f, -26)), 0x0000);
  // Largest subnormal.
  const float max_subnormal = std::ldexp(1023.0f, -24);
  EXPECT_EQ(du::float_to_half(max_subnormal), 0x03FF);
  EXPECT_FLOAT_EQ(du::half_to_float(0x03FF), max_subnormal);
}

TEST(Fp16, RoundToNearestEven) {
  // 1 + 2^-11 sits exactly between 1.0 and the next half (1 + 2^-10);
  // nearest-even rounds down to 1.0.
  EXPECT_EQ(du::float_to_half(1.0f + std::ldexp(1.0f, -11)), du::float_to_half(1.0f));
  // Slightly above the midpoint rounds up.
  EXPECT_EQ(du::float_to_half(1.0f + std::ldexp(1.2f, -11)),
            static_cast<std::uint16_t>(du::float_to_half(1.0f) + 1));
}

TEST(Fp16, HalfAdd) {
  const auto a = du::float_to_half(1.5f);
  const auto b = du::float_to_half(2.25f);
  EXPECT_FLOAT_EQ(du::half_to_float(du::half_add(a, b)), 3.75f);
}

TEST(Fp16, ExhaustiveRoundTripThroughFloat) {
  // Every finite half converts to float and back to the identical bits.
  for (std::uint32_t bits = 0; bits < 0x10000; ++bits) {
    const auto half = static_cast<std::uint16_t>(bits);
    if ((half & 0x7C00) == 0x7C00) continue;  // skip inf/NaN payload checks
    EXPECT_EQ(du::float_to_half(du::half_to_float(half)), half) << std::hex << bits;
  }
}
