// bf16 storage format contract (DESIGN.md §9): narrow is
// round-to-nearest-even, widen is exact, widen-then-narrow is the
// identity on every one of the 65536 bf16 bit patterns (including NaNs),
// and the AVX2 batch converters are bitwise identical to the scalar
// twins on every input.
#include "dlscale/util/bf16.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "dlscale/util/rng.hpp"
#include "dlscale/util/simd.hpp"
#include "../support/simd_param.hpp"

namespace du = dlscale::util;
using dlscale::testing::ScopedSimdLevel;
using dlscale::testing::simd_levels_under_test;

TEST(Bf16, ExactValuesRoundTrip) {
  // Anything with <= 8 significand bits is exactly representable.
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, 1024.0f, -0.25f, 3.0f, -255.0f}) {
    EXPECT_EQ(du::bf16_to_float(du::float_to_bf16(v)), v) << v;
  }
}

TEST(Bf16, WidenIsHighHalfShift) {
  // Widening places the 16 stored bits in the fp32 high half, low half 0.
  for (std::uint32_t h : {0x0000u, 0x3F80u, 0xBF80u, 0x7F80u, 0x0001u, 0x7FC0u}) {
    const float wide = du::bf16_to_float(static_cast<std::uint16_t>(h));
    EXPECT_EQ(std::bit_cast<std::uint32_t>(wide), h << 16) << h;
  }
}

TEST(Bf16, NarrowRoundsToNearestEven) {
  // Low half exactly 0x8000 is the tie: round to even mantissa.
  EXPECT_EQ(du::float_to_bf16(std::bit_cast<float>(0x3F808000u)), 0x3F80);  // even stays
  EXPECT_EQ(du::float_to_bf16(std::bit_cast<float>(0x3F818000u)), 0x3F82);  // odd rounds up
  // Just below / above the tie round toward the nearer value.
  EXPECT_EQ(du::float_to_bf16(std::bit_cast<float>(0x3F817FFFu)), 0x3F81);
  EXPECT_EQ(du::float_to_bf16(std::bit_cast<float>(0x3F818001u)), 0x3F82);
}

TEST(Bf16, NarrowOverflowsToInfinity) {
  // FLT_MAX's low half rounds the high half up into the infinity pattern.
  EXPECT_EQ(du::float_to_bf16(std::numeric_limits<float>::max()), 0x7F80);
  EXPECT_EQ(du::float_to_bf16(-std::numeric_limits<float>::max()), 0xFF80);
  EXPECT_EQ(du::float_to_bf16(std::numeric_limits<float>::infinity()), 0x7F80);
}

TEST(Bf16, NanNarrowsToNan) {
  const std::uint16_t h = du::float_to_bf16(std::numeric_limits<float>::quiet_NaN());
  EXPECT_EQ(h & 0x7F80u, 0x7F80u);
  EXPECT_NE(h & 0x007Fu, 0u);  // payload must survive as NaN, not become inf
  // A NaN whose payload lives entirely in the low half must not narrow to
  // an infinity bit pattern either.
  const std::uint16_t low_payload = du::float_to_bf16(std::bit_cast<float>(0x7F800001u));
  EXPECT_EQ(low_payload & 0x7F80u, 0x7F80u);
  EXPECT_NE(low_payload & 0x007Fu, 0u);
}

TEST(Bf16, AllPatternsRoundTripExhaustively) {
  // The checkpoint v2 contract: narrow(widen(h)) == h for every pattern,
  // so saving bf16 weights and loading them back is lossless.
  for (std::uint32_t h = 0; h <= 0xFFFFu; ++h) {
    const auto half = static_cast<std::uint16_t>(h);
    ASSERT_EQ(du::float_to_bf16(du::bf16_to_float(half)), half) << "pattern " << h;
  }
}

namespace {

std::vector<float> mixed_inputs(std::size_t n, std::uint64_t seed) {
  du::Rng rng(seed);
  std::vector<float> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (rng.uniform_index(8)) {
      case 0: out[i] = std::numeric_limits<float>::quiet_NaN(); break;
      case 1: out[i] = std::numeric_limits<float>::infinity(); break;
      case 2: out[i] = -std::numeric_limits<float>::infinity(); break;
      case 3: out[i] = std::bit_cast<float>(0x7F800001u); break;  // low-half NaN payload
      case 4: out[i] = 0.0f; break;
      default: out[i] = static_cast<float>(rng.normal(0.0, 100.0)); break;
    }
  }
  return out;
}

}  // namespace

TEST(Bf16, BatchNarrowBitwiseParityAcrossLevels) {
  for (std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{8}, std::size_t{9},
                        std::size_t{17}, std::size_t{1000}}) {
    const std::vector<float> src = mixed_inputs(n, 90 + n);
    std::vector<std::vector<std::uint16_t>> per_level;
    for (du::SimdLevel level : simd_levels_under_test()) {
      ScopedSimdLevel scoped(level);
      std::vector<std::uint16_t> dst(n);
      du::floats_to_bf16s(src.data(), dst.data(), n);
      per_level.push_back(std::move(dst));
    }
    for (std::size_t l = 1; l < per_level.size(); ++l) {
      ASSERT_EQ(per_level[0], per_level[l]) << "narrow n=" << n;
    }
  }
}

TEST(Bf16, BatchWidenBitwiseParityAcrossLevels) {
  du::Rng rng(97);
  for (std::size_t n : {std::size_t{1}, std::size_t{8}, std::size_t{13}, std::size_t{1000}}) {
    std::vector<std::uint16_t> src(n);
    for (auto& h : src) h = static_cast<std::uint16_t>(rng.uniform_index(0x10000));
    std::vector<std::vector<std::uint32_t>> per_level;
    for (du::SimdLevel level : simd_levels_under_test()) {
      ScopedSimdLevel scoped(level);
      std::vector<float> dst(n);
      du::bf16s_to_floats(src.data(), dst.data(), n);
      std::vector<std::uint32_t> bits(n);
      for (std::size_t i = 0; i < n; ++i) bits[i] = std::bit_cast<std::uint32_t>(dst[i]);
      per_level.push_back(std::move(bits));
    }
    for (std::size_t l = 1; l < per_level.size(); ++l) {
      ASSERT_EQ(per_level[0], per_level[l]) << "widen n=" << n;
    }
  }
}

TEST(Bf16, BatchMatchesScalarElementwise) {
  const std::vector<float> src = mixed_inputs(257, 101);
  std::vector<std::uint16_t> dst(src.size());
  du::floats_to_bf16s(src.data(), dst.data(), src.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    ASSERT_EQ(dst[i], du::float_to_bf16(src[i])) << i;
  }
}
