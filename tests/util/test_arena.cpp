// util::Arena: bump allocation, frames, guard canaries, poison-on-reset,
// liveness tracing, and planned replay (DESIGN.md §10).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "dlscale/util/arena.hpp"

namespace du = dlscale::util;

namespace {

TEST(Arena, ReturnsAlignedPointers) {
  du::Arena arena;
  for (std::size_t bytes : {1u, 7u, 64u, 65u, 1000u}) {
    void* p = arena.allocate(bytes);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % du::Arena::kAlignment, 0u)
        << "request of " << bytes << " bytes";
  }
}

TEST(Arena, ResetRecyclesTheSameBytes) {
  du::Arena arena;
  void* first = arena.allocate(256);
  arena.reset();
  // After a reset the arena is a single block and the cursor rewinds, so
  // the same request gets the same storage — steady state is heap-free.
  EXPECT_EQ(arena.allocate(256), first);
  EXPECT_EQ(arena.used(), 256u);
}

TEST(Arena, WatermarkTracksHighWaterAcrossResets) {
  du::Arena arena;
  arena.allocate(1024);
  arena.allocate(1024);
  EXPECT_EQ(arena.watermark(), 2048u);
  arena.reset();
  arena.allocate(64);
  EXPECT_EQ(arena.watermark(), 2048u);  // high-water mark persists
  EXPECT_EQ(arena.used(), 64u);
}

TEST(Arena, ResetCoalescesGrowthChainIntoOneBlock) {
  du::Arena arena;
  // Force the chain to grow past its first block (first block is 64 KiB).
  for (int i = 0; i < 40; ++i) arena.allocate(1 << 14);
  const std::size_t watermark = arena.watermark();
  arena.reset();
  EXPECT_GE(arena.capacity(), watermark);
  // The whole former chain now fits a single block: allocations up to the
  // watermark must be contiguous (monotonically increasing addresses).
  auto* a = static_cast<std::byte*>(arena.allocate(1 << 14));
  auto* b = static_cast<std::byte*>(arena.allocate(1 << 14));
  EXPECT_EQ(b - a, 1 << 14);
}

TEST(Arena, FramesRewindLifo) {
  du::Arena arena;
  arena.allocate(128);
  const std::size_t outer = arena.used();
  void* scratch1 = nullptr;
  {
    du::Arena::Frame frame(arena);
    scratch1 = arena.allocate(512);
    {
      du::Arena::Frame inner(arena);
      arena.allocate(4096);
    }
    EXPECT_EQ(arena.used(), outer + 512);
  }
  EXPECT_EQ(arena.used(), outer);
  // Frame space is reused by the next frame at the same depth.
  du::Arena::Frame frame(arena);
  EXPECT_EQ(arena.allocate(512), scratch1);
}

TEST(Arena, GuardCanaryTripsOnOverrun) {
  du::Arena arena{du::Arena::Options{.guard = true}};
  // The canary band sits after the 64-byte-aligned payload, so use an
  // aligned request — the first out-of-plan byte IS the canary.
  auto* p = static_cast<unsigned char*>(arena.allocate(128));
  ASSERT_NO_THROW(arena.check_guards());
  p[128] = 0x42;  // one byte past the payload, into the canary band
  EXPECT_THROW(arena.check_guards(), std::logic_error);
  EXPECT_THROW(arena.reset(), std::logic_error);  // reset also verifies
}

TEST(Arena, InBoundsWritesDoNotTripTheCanary) {
  du::Arena arena{du::Arena::Options{.guard = true}};
  auto* p = static_cast<unsigned char*>(arena.allocate(128));
  std::memset(p, 0xFF, 128);
  EXPECT_NO_THROW(arena.check_guards());
  EXPECT_NO_THROW(arena.reset());
}

TEST(Arena, ResetPoisonsReleasedStorage) {
  du::Arena arena{du::Arena::Options{.guard = true}};
  auto* p = static_cast<unsigned char*>(arena.allocate(64));
  std::memset(p, 0, 64);
  arena.reset();
  // Same bytes come back from the next cycle — but every stale read in
  // between would have seen the poison pattern.
  auto* q = static_cast<unsigned char*>(arena.allocate(64));
  ASSERT_EQ(q, p);
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(q[i], du::Arena::kPoisonByte) << "offset " << i;
  }
}

TEST(Arena, TraceRecordsAllocationAndReleaseTicks) {
  du::Arena arena;
  arena.begin_trace();
  ASSERT_TRUE(arena.tracing());
  void* a = arena.allocate(100);
  void* b = arena.allocate(200);
  arena.note_release(a);
  void* c = arena.allocate(300);
  arena.note_release(c);
  const std::vector<du::ArenaTraceEvent> trace = arena.take_trace();
  EXPECT_FALSE(arena.tracing());
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0].bytes, 128u);  // aligned up to 64
  EXPECT_EQ(trace[1].bytes, 256u);
  EXPECT_EQ(trace[2].bytes, 320u);
  // Ticks: a=1, b=2, release(a)=3, c=4, release(c)=5; b never released.
  EXPECT_EQ(trace[0].alloc_tick, 1u);
  EXPECT_EQ(trace[0].release_tick, 3u);
  EXPECT_EQ(trace[1].release_tick, 0u);  // live to end
  EXPECT_EQ(trace[2].alloc_tick, 4u);
  EXPECT_EQ(trace[2].release_tick, 5u);
  (void)b;
}

TEST(Arena, PlannedReplayReturnsPreassignedOffsets) {
  du::MemoryPlan plan;
  plan.offsets = {0, 128, 0};  // third allocation reuses the first's bytes
  plan.sizes = {128, 64, 128};
  plan.peak_bytes = 192;
  plan.naive_bytes = 320;
  du::Arena arena;
  arena.set_plan(plan);
  ASSERT_TRUE(arena.planned());
  for (int cycle = 0; cycle < 3; ++cycle) {
    auto* a = static_cast<std::byte*>(arena.allocate(100));  // aligns to 128
    auto* b = static_cast<std::byte*>(arena.allocate(64));
    auto* c = static_cast<std::byte*>(arena.allocate(70));   // aligns to 128
    EXPECT_EQ(b - a, 128);
    EXPECT_EQ(c, a);  // shared bytes, as planned
    arena.reset();
  }
}

TEST(Arena, PlannedReplayRejectsDivergence) {
  du::MemoryPlan plan;
  plan.offsets = {0};
  plan.sizes = {128};
  plan.peak_bytes = 128;
  du::Arena arena;
  arena.set_plan(plan);
  EXPECT_THROW(arena.allocate(999), std::logic_error);  // wrong size
  arena.reset();
  arena.allocate(128);
  EXPECT_THROW(arena.allocate(128), std::logic_error);  // beyond the plan
}

TEST(Arena, PlannedModeExcludesTracing) {
  du::Arena arena;
  du::MemoryPlan plan;
  plan.offsets = {0};
  plan.sizes = {64};
  plan.peak_bytes = 64;
  arena.set_plan(plan);
  EXPECT_THROW(arena.begin_trace(), std::logic_error);
  arena.clear_plan();
  arena.begin_trace();
  EXPECT_THROW(arena.set_plan(plan), std::logic_error);
  (void)arena.take_trace();
}

TEST(ArenaScope, InstallsAndRestoresTheThreadTarget) {
  EXPECT_EQ(du::current_arena(), nullptr);
  du::Arena outer_arena;
  {
    du::ArenaScope outer(outer_arena);
    EXPECT_EQ(du::current_arena(), &outer_arena);
    du::Arena inner_arena;
    {
      du::ArenaScope inner(inner_arena);
      EXPECT_EQ(du::current_arena(), &inner_arena);
    }
    EXPECT_EQ(du::current_arena(), &outer_arena);
  }
  EXPECT_EQ(du::current_arena(), nullptr);
}

}  // namespace
