#include "dlscale/util/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace du = dlscale::util;

namespace {

struct ScopedEnv {
  std::string name;
  ScopedEnv(const std::string& n, const std::string& value) : name(n) {
    ::setenv(n.c_str(), value.c_str(), 1);
  }
  ~ScopedEnv() { ::unsetenv(name.c_str()); }
};

}  // namespace

TEST(Env, StringUnsetReturnsNullopt) {
  EXPECT_FALSE(du::env_string("DLSCALE_TEST_DEFINITELY_UNSET").has_value());
}

TEST(Env, StringSetReturnsValue) {
  ScopedEnv guard("DLSCALE_TEST_STR", "hello");
  EXPECT_EQ(du::env_string("DLSCALE_TEST_STR").value(), "hello");
}

TEST(Env, IntParsesAndFallsBack) {
  ScopedEnv guard("DLSCALE_TEST_INT", "42");
  EXPECT_EQ(du::env_int("DLSCALE_TEST_INT", 7), 42);
  EXPECT_EQ(du::env_int("DLSCALE_TEST_UNSET_INT", 7), 7);
}

TEST(Env, IntRejectsGarbage) {
  ScopedEnv guard("DLSCALE_TEST_INT", "12abc");
  EXPECT_EQ(du::env_int("DLSCALE_TEST_INT", 7), 7);
}

TEST(Env, NegativeInt) {
  ScopedEnv guard("DLSCALE_TEST_INT", "-3");
  EXPECT_EQ(du::env_int("DLSCALE_TEST_INT", 7), -3);
}

TEST(Env, DoubleParses) {
  ScopedEnv guard("DLSCALE_TEST_DBL", "3.5");
  EXPECT_DOUBLE_EQ(du::env_double("DLSCALE_TEST_DBL", 1.0), 3.5);
  EXPECT_DOUBLE_EQ(du::env_double("DLSCALE_TEST_UNSET_DBL", 1.0), 1.0);
}

TEST(Env, BoolAcceptsCommonSpellings) {
  for (const char* truthy : {"1", "true", "TRUE", "yes", "on"}) {
    ScopedEnv guard("DLSCALE_TEST_BOOL", truthy);
    EXPECT_TRUE(du::env_bool("DLSCALE_TEST_BOOL", false)) << truthy;
  }
  for (const char* falsy : {"0", "false", "no", "OFF"}) {
    ScopedEnv guard("DLSCALE_TEST_BOOL", falsy);
    EXPECT_FALSE(du::env_bool("DLSCALE_TEST_BOOL", true)) << falsy;
  }
}

TEST(Env, BoolFallsBackOnGarbage) {
  ScopedEnv guard("DLSCALE_TEST_BOOL", "maybe");
  EXPECT_TRUE(du::env_bool("DLSCALE_TEST_BOOL", true));
  EXPECT_FALSE(du::env_bool("DLSCALE_TEST_BOOL", false));
}

TEST(ParseBytes, PlainNumber) { EXPECT_EQ(du::parse_bytes("12345").value(), 12345u); }

TEST(ParseBytes, Suffixes) {
  EXPECT_EQ(du::parse_bytes("64MB").value(), 64ull << 20);
  EXPECT_EQ(du::parse_bytes("64mb").value(), 64ull << 20);
  EXPECT_EQ(du::parse_bytes("8K").value(), 8ull << 10);
  EXPECT_EQ(du::parse_bytes("2GiB").value(), 2ull << 30);
  EXPECT_EQ(du::parse_bytes("100B").value(), 100u);
}

TEST(ParseBytes, RejectsInvalid) {
  EXPECT_FALSE(du::parse_bytes("").has_value());
  EXPECT_FALSE(du::parse_bytes("MB").has_value());
  EXPECT_FALSE(du::parse_bytes("12XB").has_value());
}

TEST(EnvBytes, HorovodFusionThresholdConvention) {
  ScopedEnv guard("HOROVOD_FUSION_THRESHOLD_TEST", "67108864");
  EXPECT_EQ(du::env_bytes("HOROVOD_FUSION_THRESHOLD_TEST", 0), 64ull << 20);
}

TEST(FormatBytes, HumanReadable) {
  EXPECT_EQ(du::format_bytes(512), "512 B");
  EXPECT_EQ(du::format_bytes(64ull << 20), "64 MiB");
  EXPECT_EQ(du::format_bytes((1ull << 30) + (1ull << 29)), "1.50 GiB");
}
