#include "dlscale/util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace du = dlscale::util;

TEST(RunningStats, EmptyIsZero) {
  du::RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleSample) {
  du::RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMoments) {
  du::RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Population variance is 4; sample variance is 32/7.
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Percentile, MedianAndExtremes) {
  const std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(du::percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(du::percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(du::percentile(v, 100), 5.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(du::percentile(v, 25), 2.5);
}

TEST(Percentile, EmptyIsZero) { EXPECT_DOUBLE_EQ(du::percentile({}, 50), 0.0); }

TEST(Mean, Basic) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(du::mean(v), 2.0);
  EXPECT_DOUBLE_EQ(du::mean({}), 0.0);
}

TEST(Geomean, Basic) {
  const std::vector<double> v{1.0, 4.0, 16.0};
  EXPECT_NEAR(du::geomean(v), 4.0, 1e-12);
}

TEST(Geomean, NonPositiveYieldsZero) {
  const std::vector<double> v{1.0, 0.0};
  EXPECT_DOUBLE_EQ(du::geomean(v), 0.0);
}

TEST(Histogram, EmptyReportsZeros) {
  du::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(Histogram, ExactAtExtremes) {
  du::Histogram h;
  for (double v : {12.0, 900.0, 47.0, 3.5}) h.add(v);
  EXPECT_DOUBLE_EQ(h.min(), 3.5);
  EXPECT_DOUBLE_EQ(h.max(), 900.0);
  EXPECT_DOUBLE_EQ(h.percentile(0), 3.5);
  EXPECT_DOUBLE_EQ(h.percentile(100), 900.0);
  EXPECT_NEAR(h.mean(), (12.0 + 900.0 + 47.0 + 3.5) / 4.0, 1e-9);
}

TEST(Histogram, PercentilesWithinBucketWidth) {
  // Uniform 1..1000: log-bucketed quantiles must land within one bucket
  // (ratio 10^(1/16) ~ 1.155) of the true value.
  du::Histogram h;
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<double>(i));
  const double bucket_ratio = std::pow(10.0, 1.0 / 16.0);
  for (double q : {50.0, 95.0, 99.0}) {
    const double estimate = h.percentile(q);
    const double truth = q / 100.0 * 1000.0;
    EXPECT_GT(estimate, truth / bucket_ratio) << "q=" << q;
    EXPECT_LT(estimate, truth * bucket_ratio) << "q=" << q;
  }
}

TEST(Histogram, SubUnitValuesLandInUnderflowBucket) {
  du::Histogram h;
  h.add(0.001);
  h.add(0.5);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.percentile(100), 0.5);
  EXPECT_LE(h.percentile(50), 0.5);
}

TEST(Histogram, HugeValuesClampToOverflowBucket) {
  du::Histogram h;
  h.add(1e12);  // beyond the 9-decade span
  h.add(10.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 1e12);
  EXPECT_EQ(h.count(), 2u);
}

TEST(Histogram, MergeMatchesCombinedStream) {
  du::Histogram a, b, combined;
  for (int i = 1; i <= 100; ++i) {
    a.add(i);
    combined.add(i);
  }
  for (int i = 500; i <= 600; ++i) {
    b.add(i);
    combined.add(i);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_DOUBLE_EQ(a.percentile(50), combined.percentile(50));
  EXPECT_DOUBLE_EQ(a.percentile(99), combined.percentile(99));
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
}

TEST(Histogram, ResetClears) {
  du::Histogram h;
  h.add(42.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(99), 0.0);
}
