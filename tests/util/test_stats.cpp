#include "dlscale/util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace du = dlscale::util;

TEST(RunningStats, EmptyIsZero) {
  du::RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleSample) {
  du::RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMoments) {
  du::RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Population variance is 4; sample variance is 32/7.
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Percentile, MedianAndExtremes) {
  const std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(du::percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(du::percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(du::percentile(v, 100), 5.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(du::percentile(v, 25), 2.5);
}

TEST(Percentile, EmptyIsZero) { EXPECT_DOUBLE_EQ(du::percentile({}, 50), 0.0); }

TEST(Mean, Basic) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(du::mean(v), 2.0);
  EXPECT_DOUBLE_EQ(du::mean({}), 0.0);
}

TEST(Geomean, Basic) {
  const std::vector<double> v{1.0, 4.0, 16.0};
  EXPECT_NEAR(du::geomean(v), 4.0, 1e-12);
}

TEST(Geomean, NonPositiveYieldsZero) {
  const std::vector<double> v{1.0, 0.0};
  EXPECT_DOUBLE_EQ(du::geomean(v), 0.0);
}
