// Thread-count determinism regression: the kernels partition work so that
// every output element keeps its serial accumulation order, so training
// must be *bitwise* reproducible across DLSCALE_NUM_THREADS settings.
// This protects the E6 gradient-parity property — if a kernel ever starts
// combining partial sums in a thread-dependent order, these tests fail.
//
// The whole suite is parameterized over SIMD dispatch levels: the vector
// micro-kernels claim bitwise identity with their scalar twins (DESIGN.md
// §6), so thread-count determinism must hold under each level, and the
// SimdDeterminism tests additionally compare results *across* levels.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "dlscale/data/dataset.hpp"
#include "dlscale/models/deeplab.hpp"
#include "dlscale/nn/optimizer.hpp"
#include "dlscale/tensor/ops.hpp"
#include "dlscale/train/trainer.hpp"
#include "dlscale/util/simd.hpp"
#include "dlscale/util/thread_pool.hpp"
#include "../support/simd_param.hpp"

namespace dd = dlscale::data;
namespace dmo = dlscale::models;
namespace dn = dlscale::nn;
namespace dt = dlscale::tensor;
namespace dtr = dlscale::train;
namespace du = dlscale::util;
namespace dm = dlscale::mpi;

namespace {

struct RunResult {
  std::vector<float> losses;
  std::vector<float> params;
};

/// Five SGD steps of the mini DLv3+ at a given global pool size.
RunResult train_five_steps(int threads) {
  du::set_global_thread_count(threads);
  du::Rng rng(7);
  dmo::MiniDeepLabV3Plus model({.in_channels = 3, .num_classes = 4, .input_size = 16, .width = 4},
                               rng);
  dn::SgdMomentum optimizer(model.parameters(), {});
  const dd::SyntheticShapes dataset(
      {.image_size = 16, .num_classes = 4, .max_shapes = 2, .noise = 0.1f, .seed = 99});

  RunResult result;
  for (int step = 0; step < 5; ++step) {
    const dd::Sample batch =
        dataset.make_batch({static_cast<std::uint64_t>(2 * step),
                            static_cast<std::uint64_t>(2 * step + 1)});
    optimizer.zero_grad();
    const dt::Tensor logits = model.forward(batch.image, /*train=*/true);
    dt::Tensor grad;
    const float loss = dt::softmax_cross_entropy(logits, batch.labels, 255, grad);
    model.backward(grad);
    optimizer.step(0.05);
    result.losses.push_back(loss);
  }
  for (dn::Parameter* p : model.parameters()) {
    for (float v : p->value.data()) result.params.push_back(v);
  }
  return result;
}

void expect_bitwise_equal(const std::vector<float>& a, const std::vector<float>& b,
                          const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint32_t>(a[i]) != std::bit_cast<std::uint32_t>(b[i])) ++mismatches;
  }
  EXPECT_EQ(mismatches, 0u) << what << ": " << mismatches << " of " << a.size()
                            << " values differ between thread counts";
}

class Determinism : public dlscale::testing::SimdLevelTest {};

}  // namespace

TEST_P(Determinism, TrainingBitwiseIdenticalAcrossThreadCounts) {
  const RunResult serial = train_five_steps(1);
  const RunResult threaded = train_five_steps(4);
  du::set_global_thread_count(1);
  expect_bitwise_equal(serial.losses, threaded.losses, "per-step losses");
  expect_bitwise_equal(serial.params, threaded.params, "final parameters");
}

TEST_P(Determinism, DistributedTrainingBitwiseIdenticalAcrossThreadCounts) {
  // Rank threads sharing the global pool must not change results either.
  dtr::TrainConfig config;
  config.model = {.in_channels = 3, .num_classes = 4, .input_size = 16, .width = 4};
  config.dataset = {.image_size = 16, .num_classes = 4, .max_shapes = 2, .noise = 0.1f,
                    .seed = 99};
  config.train_samples = 16;
  config.eval_samples = 4;
  config.batch_per_rank = 2;
  config.epochs = 1;
  config.knobs.cycle_time_s = 1e-4;

  auto run = [&](int threads) {
    du::set_global_thread_count(threads);
    std::vector<double> losses;
    dm::run_world(2, [&](dm::Communicator& comm) {
      const auto report = dtr::train_distributed(comm, config);
      if (comm.rank() == 0) {
        for (const auto& e : report.epochs) losses.push_back(e.train_loss);
      }
    });
    return losses;
  };

  const auto serial = run(1);
  const auto threaded = run(4);
  du::set_global_thread_count(1);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(serial[i]), std::bit_cast<std::uint64_t>(threaded[i]))
        << "epoch " << i << " loss differs between thread counts";
  }
}

INSTANTIATE_TEST_SUITE_P(SimdLevels, Determinism,
                         ::testing::ValuesIn(
                             dlscale::testing::simd_levels_under_test()),
                         dlscale::testing::simd_param_name);

TEST(SimdDeterminism, TrainingBitwiseIdenticalAcrossSimdLevels) {
  // The cross-level half of the contract: five SGD steps under the AVX2
  // micro-kernels reproduce the scalar twins bit-for-bit.
  if (du::detected_simd_level() == du::SimdLevel::kScalar) {
    GTEST_SKIP() << "host has no vector path to compare against";
  }
  RunResult scalar, vector;
  {
    dlscale::testing::ScopedSimdLevel scoped(du::SimdLevel::kScalar);
    scalar = train_five_steps(2);
  }
  {
    dlscale::testing::ScopedSimdLevel scoped(du::SimdLevel::kAvx2);
    vector = train_five_steps(2);
  }
  du::set_global_thread_count(1);
  expect_bitwise_equal(scalar.losses, vector.losses, "per-step losses");
  expect_bitwise_equal(scalar.params, vector.params, "final parameters");
}

TEST(SimdDeterminism, DistributedTrainingBitwiseIdenticalAcrossSimdLevels) {
  // Acceptance check: a 2-rank train_distributed step is bitwise
  // identical between dispatch levels (fp16 fusion-buffer path included
  // via its own parity suite; this covers the default fp32 path).
  if (du::detected_simd_level() == du::SimdLevel::kScalar) {
    GTEST_SKIP() << "host has no vector path to compare against";
  }
  dtr::TrainConfig config;
  config.model = {.in_channels = 3, .num_classes = 4, .input_size = 16, .width = 4};
  config.dataset = {.image_size = 16, .num_classes = 4, .max_shapes = 2, .noise = 0.1f,
                    .seed = 99};
  config.train_samples = 16;
  config.eval_samples = 4;
  config.batch_per_rank = 2;
  config.epochs = 1;
  config.knobs.cycle_time_s = 1e-4;

  auto run = [&](du::SimdLevel level) {
    dlscale::testing::ScopedSimdLevel scoped(level);
    std::vector<double> metrics;
    dm::run_world(2, [&](dm::Communicator& comm) {
      const auto report = dtr::train_distributed(comm, config);
      if (comm.rank() == 0) {
        for (const auto& e : report.epochs) {
          metrics.push_back(e.train_loss);
          metrics.push_back(e.eval_miou);
        }
      }
    });
    return metrics;
  };

  const auto scalar = run(du::SimdLevel::kScalar);
  const auto vector = run(du::SimdLevel::kAvx2);
  ASSERT_EQ(scalar.size(), vector.size());
  ASSERT_FALSE(scalar.empty());
  for (std::size_t i = 0; i < scalar.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(scalar[i]),
              std::bit_cast<std::uint64_t>(vector[i]))
        << "metric " << i << " differs between SIMD levels";
  }
}
