// Thread-count determinism regression: the kernels partition work so that
// every output element keeps its serial accumulation order, so training
// must be *bitwise* reproducible across DLSCALE_NUM_THREADS settings.
// This protects the E6 gradient-parity property — if a kernel ever starts
// combining partial sums in a thread-dependent order, these tests fail.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "dlscale/data/dataset.hpp"
#include "dlscale/models/deeplab.hpp"
#include "dlscale/nn/optimizer.hpp"
#include "dlscale/tensor/ops.hpp"
#include "dlscale/train/trainer.hpp"
#include "dlscale/util/thread_pool.hpp"

namespace dd = dlscale::data;
namespace dmo = dlscale::models;
namespace dn = dlscale::nn;
namespace dt = dlscale::tensor;
namespace dtr = dlscale::train;
namespace du = dlscale::util;
namespace dm = dlscale::mpi;

namespace {

struct RunResult {
  std::vector<float> losses;
  std::vector<float> params;
};

/// Five SGD steps of the mini DLv3+ at a given global pool size.
RunResult train_five_steps(int threads) {
  du::set_global_thread_count(threads);
  du::Rng rng(7);
  dmo::MiniDeepLabV3Plus model({.in_channels = 3, .num_classes = 4, .input_size = 16, .width = 4},
                               rng);
  dn::SgdMomentum optimizer(model.parameters(), {});
  const dd::SyntheticShapes dataset(
      {.image_size = 16, .num_classes = 4, .max_shapes = 2, .noise = 0.1f, .seed = 99});

  RunResult result;
  for (int step = 0; step < 5; ++step) {
    const dd::Sample batch =
        dataset.make_batch({static_cast<std::uint64_t>(2 * step),
                            static_cast<std::uint64_t>(2 * step + 1)});
    optimizer.zero_grad();
    const dt::Tensor logits = model.forward(batch.image, /*train=*/true);
    dt::Tensor grad;
    const float loss = dt::softmax_cross_entropy(logits, batch.labels, 255, grad);
    model.backward(grad);
    optimizer.step(0.05);
    result.losses.push_back(loss);
  }
  for (dn::Parameter* p : model.parameters()) {
    for (float v : p->value.data()) result.params.push_back(v);
  }
  return result;
}

void expect_bitwise_equal(const std::vector<float>& a, const std::vector<float>& b,
                          const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint32_t>(a[i]) != std::bit_cast<std::uint32_t>(b[i])) ++mismatches;
  }
  EXPECT_EQ(mismatches, 0u) << what << ": " << mismatches << " of " << a.size()
                            << " values differ between thread counts";
}

}  // namespace

TEST(Determinism, TrainingBitwiseIdenticalAcrossThreadCounts) {
  const RunResult serial = train_five_steps(1);
  const RunResult threaded = train_five_steps(4);
  du::set_global_thread_count(1);
  expect_bitwise_equal(serial.losses, threaded.losses, "per-step losses");
  expect_bitwise_equal(serial.params, threaded.params, "final parameters");
}

TEST(Determinism, DistributedTrainingBitwiseIdenticalAcrossThreadCounts) {
  // Rank threads sharing the global pool must not change results either.
  dtr::TrainConfig config;
  config.model = {.in_channels = 3, .num_classes = 4, .input_size = 16, .width = 4};
  config.dataset = {.image_size = 16, .num_classes = 4, .max_shapes = 2, .noise = 0.1f,
                    .seed = 99};
  config.train_samples = 16;
  config.eval_samples = 4;
  config.batch_per_rank = 2;
  config.epochs = 1;
  config.knobs.cycle_time_s = 1e-4;

  auto run = [&](int threads) {
    du::set_global_thread_count(threads);
    std::vector<double> losses;
    dm::run_world(2, [&](dm::Communicator& comm) {
      const auto report = dtr::train_distributed(comm, config);
      if (comm.rank() == 0) {
        for (const auto& e : report.epochs) losses.push_back(e.train_loss);
      }
    });
    return losses;
  };

  const auto serial = run(1);
  const auto threaded = run(4);
  du::set_global_thread_count(1);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(serial[i]), std::bit_cast<std::uint64_t>(threaded[i]))
        << "epoch " << i << " loss differs between thread counts";
  }
}
