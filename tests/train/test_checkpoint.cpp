#include "dlscale/train/checkpoint.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <filesystem>

#include "dlscale/models/deeplab.hpp"
#include "dlscale/train/trainer.hpp"

namespace dt = dlscale::train;
namespace dmo = dlscale::models;

namespace {

struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name)
      : path((std::filesystem::temp_directory_path() / name).string()) {}
  ~TempFile() { std::remove(path.c_str()); }
};

}  // namespace

TEST(Checkpoint, SaveLoadRoundTrip) {
  TempFile file("dlscale_ckpt_roundtrip.bin");
  dlscale::util::Rng rng_a(1), rng_b(2);
  dmo::MiniDeepLabV3Plus source({.input_size = 16, .width = 4}, rng_a);
  dmo::MiniDeepLabV3Plus target({.input_size = 16, .width = 4}, rng_b);

  dt::save_checkpoint(source.parameters(), file.path);
  dt::load_checkpoint(target.parameters(), file.path);

  const auto src_params = source.parameters();
  const auto dst_params = target.parameters();
  for (std::size_t i = 0; i < src_params.size(); ++i) {
    for (std::size_t j = 0; j < src_params[i]->numel(); ++j) {
      ASSERT_FLOAT_EQ(src_params[i]->value[j], dst_params[i]->value[j])
          << src_params[i]->name;
    }
  }
}

TEST(Checkpoint, MismatchedArchitectureThrows) {
  TempFile file("dlscale_ckpt_mismatch.bin");
  dlscale::util::Rng rng(1);
  dmo::MiniDeepLabV3Plus small({.input_size = 16, .width = 4}, rng);
  dmo::MiniDeepLabV3Plus big({.input_size = 16, .width = 8}, rng);
  dt::save_checkpoint(small.parameters(), file.path);
  EXPECT_THROW(dt::load_checkpoint(big.parameters(), file.path), std::runtime_error);
}

TEST(Checkpoint, MissingFileThrows) {
  dlscale::util::Rng rng(1);
  dmo::MiniDeepLabV3Plus model({.input_size = 16, .width = 4}, rng);
  EXPECT_THROW(dt::load_checkpoint(model.parameters(), "/nonexistent/dir/ckpt.bin"),
               std::runtime_error);
}

namespace {

dt::TrainConfig trainer_config() {
  dt::TrainConfig config;
  config.model = {.in_channels = 3, .num_classes = 4, .input_size = 16, .width = 4};
  config.dataset = {.image_size = 16, .num_classes = 4, .max_shapes = 2, .noise = 0.1f,
                    .seed = 99};
  config.train_samples = 16;
  config.eval_samples = 8;
  config.batch_per_rank = 2;
  config.epochs = 2;
  return config;
}

}  // namespace

TEST(Checkpoint, TensorListRoundTripIncludesBuffers) {
  // save_tensors/load_tensors carry non-parameter state (BatchNorm
  // running stats) that the parameter-only wrappers skip.
  TempFile file("dlscale_ckpt_tensors.bin");
  dlscale::util::Rng rng_a(1), rng_b(2);
  dmo::MiniDeepLabV3Plus source({.input_size = 16, .width = 4}, rng_a);
  dmo::MiniDeepLabV3Plus target({.input_size = 16, .width = 4}, rng_b);
  // Perturb source running stats so the round trip is observable.
  auto src_bufs = source.buffers();
  ASSERT_FALSE(src_bufs.empty());
  for (std::size_t i = 0; i < src_bufs.size(); ++i) {
    for (float& v : src_bufs[i].tensor->data()) v += static_cast<float>(i + 1) * 0.125f;
  }
  dt::save_tensors(src_bufs, file.path);
  dt::load_tensors(target.buffers(), file.path);
  const auto dst_bufs = target.buffers();
  ASSERT_EQ(src_bufs.size(), dst_bufs.size());
  for (std::size_t i = 0; i < src_bufs.size(); ++i) {
    EXPECT_EQ(src_bufs[i].name, dst_bufs[i].name);
    for (std::size_t j = 0; j < src_bufs[i].tensor->numel(); ++j) {
      ASSERT_FLOAT_EQ(src_bufs[i].tensor->data()[j], dst_bufs[i].tensor->data()[j])
          << src_bufs[i].name;
    }
  }
}

TEST(Checkpoint, TrainerStateRoundTripContinuesBitwise) {
  // Save mid-training, restore into a FRESH Trainer (different weights,
  // zero momentum, stale running stats), continue: the final epoch must
  // be bitwise identical to an uninterrupted run.
  TempFile file("dlscale_trainer_state.bin");
  const auto config = trainer_config();

  dt::NoComm hook_full;
  dt::Trainer uninterrupted(config, hook_full);
  const auto full_report = uninterrupted.run();
  ASSERT_EQ(full_report.epochs.size(), 2u);

  dt::NoComm hook_first;
  dt::Trainer first_half(config, hook_first);
  const auto epoch0 = first_half.train_epoch();
  EXPECT_EQ(std::bit_cast<std::uint64_t>(epoch0.train_loss),
            std::bit_cast<std::uint64_t>(full_report.epochs[0].train_loss));
  first_half.save_state(file.path);

  dt::NoComm hook_second;
  dt::Trainer restored(config, hook_second);
  restored.load_state(file.path);
  EXPECT_EQ(restored.global_step(), first_half.global_step());
  EXPECT_EQ(restored.next_epoch(), 1);
  const auto resumed_report = restored.run();

  ASSERT_EQ(resumed_report.epochs.size(), 1u);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(resumed_report.epochs[0].train_loss),
            std::bit_cast<std::uint64_t>(full_report.epochs[1].train_loss));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(resumed_report.epochs[0].eval_miou),
            std::bit_cast<std::uint64_t>(full_report.epochs[1].eval_miou));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(resumed_report.epochs[0].eval_pixel_accuracy),
            std::bit_cast<std::uint64_t>(full_report.epochs[1].eval_pixel_accuracy));
}

TEST(Checkpoint, TrainerStateRejectsMismatchedArchitecture) {
  TempFile file("dlscale_trainer_state_mismatch.bin");
  const auto config = trainer_config();
  dt::NoComm hook_a;
  dt::Trainer source(config, hook_a);
  source.save_state(file.path);

  auto wide = config;
  wide.model.width = 8;
  dt::NoComm hook_b;
  dt::Trainer target(wide, hook_b);
  EXPECT_THROW(target.load_state(file.path), std::runtime_error);
}

namespace {

/// Error-message matcher: load must fail AND the message must name what
/// went wrong well enough to debug without a hex dump.
void expect_load_error_containing(const std::vector<dlscale::nn::NamedTensor>& tensors,
                                  const std::string& path, const std::string& needle) {
  try {
    dt::load_tensors(tensors, path);
    FAIL() << "expected load_tensors to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message was: " << e.what();
  }
}

}  // namespace

TEST(Checkpoint, TruncatedDataNamesOffendingTensor) {
  TempFile file("dlscale_ckpt_truncated.bin");
  namespace dten = dlscale::tensor;
  dten::Tensor a = dten::Tensor::full({4, 4}, 1.0f);
  dten::Tensor b = dten::Tensor::full({8}, 2.0f);
  dt::save_tensors({{"layer.a", &a}, {"layer.b", &b}}, file.path);
  // Chop the file mid-way through the SECOND tensor's data.
  const auto full_size = std::filesystem::file_size(file.path);
  std::filesystem::resize_file(file.path, full_size - 8);
  expect_load_error_containing({{"layer.a", &a}, {"layer.b", &b}}, file.path, "layer.b");
}

TEST(Checkpoint, TruncatedHeaderNamesExpectedTensor) {
  TempFile file("dlscale_ckpt_truncated_hdr.bin");
  namespace dten = dlscale::tensor;
  dten::Tensor a = dten::Tensor::full({4}, 1.0f);
  dten::Tensor b = dten::Tensor::full({4}, 2.0f);
  dt::save_tensors({{"first", &a}, {"second", &b}}, file.path);
  // Chop inside the second tensor's name/shape header: tensor "first"
  // occupies 4+5 (len+name) + 4+4 (ndim+dim) + 16 (data) bytes after the
  // 8-byte file header; leave 3 bytes of the second record.
  std::filesystem::resize_file(file.path, 8 + 33 + 3);
  expect_load_error_containing({{"first", &a}, {"second", &b}}, file.path, "second");
}

TEST(Checkpoint, WrongTensorNameNamesBothSides) {
  TempFile file("dlscale_ckpt_wrongname.bin");
  namespace dten = dlscale::tensor;
  dten::Tensor a = dten::Tensor::full({4}, 1.0f);
  dt::save_tensors({{"saved_name", &a}}, file.path);
  expect_load_error_containing({{"expected_name", &a}}, file.path, "expected_name");
  expect_load_error_containing({{"expected_name", &a}}, file.path, "saved_name");
}

TEST(Checkpoint, WrongShapeReportsBothShapes) {
  TempFile file("dlscale_ckpt_wrongshape.bin");
  namespace dten = dlscale::tensor;
  dten::Tensor saved = dten::Tensor::full({2, 3}, 1.0f);
  dten::Tensor live = dten::Tensor::full({3, 2}, 0.0f);
  dt::save_tensors({{"w", &saved}}, file.path);
  expect_load_error_containing({{"w", &live}}, file.path, "(2,3)");
  expect_load_error_containing({{"w", &live}}, file.path, "(3,2)");
}

TEST(Checkpoint, TrailingBytesThrow) {
  TempFile file("dlscale_ckpt_trailing.bin");
  namespace dten = dlscale::tensor;
  dten::Tensor a = dten::Tensor::full({4}, 1.0f);
  dt::save_tensors({{"w", &a}}, file.path);
  {
    std::FILE* f = std::fopen(file.path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char junk[] = "extra";
    std::fwrite(junk, 1, sizeof junk, f);
    std::fclose(f);
  }
  expect_load_error_containing({{"w", &a}}, file.path, "trailing");
}

TEST(Checkpoint, CorruptNameLengthThrows) {
  TempFile file("dlscale_ckpt_badlen.bin");
  {
    std::FILE* f = std::fopen(file.path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const std::uint32_t magic = 0x444C5343, count = 1, name_len = 0xFFFFFFFFu;
    std::fwrite(&magic, sizeof magic, 1, f);
    std::fwrite(&count, sizeof count, 1, f);
    std::fwrite(&name_len, sizeof name_len, 1, f);
    std::fclose(f);
  }
  namespace dten = dlscale::tensor;
  dten::Tensor a = dten::Tensor::full({4}, 1.0f);
  expect_load_error_containing({{"w", &a}}, file.path, "corrupt name length");
}

TEST(Checkpoint, SaveLoadModelRoundTripsParamsAndBuffers) {
  TempFile file("dlscale_ckpt_model.bin");
  dlscale::util::Rng rng_a(1), rng_b(2);
  dmo::MiniDeepLabV3Plus source({.input_size = 16, .width = 4}, rng_a);
  dmo::MiniDeepLabV3Plus target({.input_size = 16, .width = 4}, rng_b);
  // Perturb running stats so buffer transport is observable.
  for (auto& buf : source.buffers()) buf.tensor->fill(0.75f);
  dt::save_model(source.parameters(), source.buffers(), file.path);
  dt::load_model(target.parameters(), target.buffers(), file.path);
  const auto sp = source.parameters(), tp = target.parameters();
  for (std::size_t i = 0; i < sp.size(); ++i) {
    ASSERT_FLOAT_EQ(sp[i]->value[0], tp[i]->value[0]) << sp[i]->name;
  }
  for (auto& buf : target.buffers()) {
    ASSERT_FLOAT_EQ(buf.tensor->data()[0], 0.75f) << buf.name;
  }
}

TEST(Checkpoint, CorruptMagicThrows) {
  TempFile file("dlscale_ckpt_corrupt.bin");
  {
    std::FILE* f = std::fopen(file.path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[] = "not a checkpoint";
    std::fwrite(junk, 1, sizeof junk, f);
    std::fclose(f);
  }
  dlscale::util::Rng rng(1);
  dmo::MiniDeepLabV3Plus model({.input_size = 16, .width = 4}, rng);
  EXPECT_THROW(dt::load_checkpoint(model.parameters(), file.path), std::runtime_error);
}
