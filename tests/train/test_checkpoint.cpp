#include "dlscale/train/checkpoint.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <filesystem>

#include "dlscale/models/deeplab.hpp"
#include "dlscale/train/trainer.hpp"

namespace dt = dlscale::train;
namespace dmo = dlscale::models;

namespace {

struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name)
      : path((std::filesystem::temp_directory_path() / name).string()) {}
  ~TempFile() { std::remove(path.c_str()); }
};

}  // namespace

TEST(Checkpoint, SaveLoadRoundTrip) {
  TempFile file("dlscale_ckpt_roundtrip.bin");
  dlscale::util::Rng rng_a(1), rng_b(2);
  dmo::MiniDeepLabV3Plus source({.input_size = 16, .width = 4}, rng_a);
  dmo::MiniDeepLabV3Plus target({.input_size = 16, .width = 4}, rng_b);

  dt::save_checkpoint(source.parameters(), file.path);
  dt::load_checkpoint(target.parameters(), file.path);

  const auto src_params = source.parameters();
  const auto dst_params = target.parameters();
  for (std::size_t i = 0; i < src_params.size(); ++i) {
    for (std::size_t j = 0; j < src_params[i]->numel(); ++j) {
      ASSERT_FLOAT_EQ(src_params[i]->value[j], dst_params[i]->value[j])
          << src_params[i]->name;
    }
  }
}

TEST(Checkpoint, MismatchedArchitectureThrows) {
  TempFile file("dlscale_ckpt_mismatch.bin");
  dlscale::util::Rng rng(1);
  dmo::MiniDeepLabV3Plus small({.input_size = 16, .width = 4}, rng);
  dmo::MiniDeepLabV3Plus big({.input_size = 16, .width = 8}, rng);
  dt::save_checkpoint(small.parameters(), file.path);
  EXPECT_THROW(dt::load_checkpoint(big.parameters(), file.path), std::runtime_error);
}

TEST(Checkpoint, MissingFileThrows) {
  dlscale::util::Rng rng(1);
  dmo::MiniDeepLabV3Plus model({.input_size = 16, .width = 4}, rng);
  EXPECT_THROW(dt::load_checkpoint(model.parameters(), "/nonexistent/dir/ckpt.bin"),
               std::runtime_error);
}

namespace {

dt::TrainConfig trainer_config() {
  dt::TrainConfig config;
  config.model = {.in_channels = 3, .num_classes = 4, .input_size = 16, .width = 4};
  config.dataset = {.image_size = 16, .num_classes = 4, .max_shapes = 2, .noise = 0.1f,
                    .seed = 99};
  config.train_samples = 16;
  config.eval_samples = 8;
  config.batch_per_rank = 2;
  config.epochs = 2;
  return config;
}

}  // namespace

TEST(Checkpoint, TensorListRoundTripIncludesBuffers) {
  // save_tensors/load_tensors carry non-parameter state (BatchNorm
  // running stats) that the parameter-only wrappers skip.
  TempFile file("dlscale_ckpt_tensors.bin");
  dlscale::util::Rng rng_a(1), rng_b(2);
  dmo::MiniDeepLabV3Plus source({.input_size = 16, .width = 4}, rng_a);
  dmo::MiniDeepLabV3Plus target({.input_size = 16, .width = 4}, rng_b);
  // Perturb source running stats so the round trip is observable.
  auto src_bufs = source.buffers();
  ASSERT_FALSE(src_bufs.empty());
  for (std::size_t i = 0; i < src_bufs.size(); ++i) {
    for (float& v : src_bufs[i].tensor->data()) v += static_cast<float>(i + 1) * 0.125f;
  }
  dt::save_tensors(src_bufs, file.path);
  dt::load_tensors(target.buffers(), file.path);
  const auto dst_bufs = target.buffers();
  ASSERT_EQ(src_bufs.size(), dst_bufs.size());
  for (std::size_t i = 0; i < src_bufs.size(); ++i) {
    EXPECT_EQ(src_bufs[i].name, dst_bufs[i].name);
    for (std::size_t j = 0; j < src_bufs[i].tensor->numel(); ++j) {
      ASSERT_FLOAT_EQ(src_bufs[i].tensor->data()[j], dst_bufs[i].tensor->data()[j])
          << src_bufs[i].name;
    }
  }
}

TEST(Checkpoint, TrainerStateRoundTripContinuesBitwise) {
  // Save mid-training, restore into a FRESH Trainer (different weights,
  // zero momentum, stale running stats), continue: the final epoch must
  // be bitwise identical to an uninterrupted run.
  TempFile file("dlscale_trainer_state.bin");
  const auto config = trainer_config();

  dt::NoComm hook_full;
  dt::Trainer uninterrupted(config, hook_full);
  const auto full_report = uninterrupted.run();
  ASSERT_EQ(full_report.epochs.size(), 2u);

  dt::NoComm hook_first;
  dt::Trainer first_half(config, hook_first);
  const auto epoch0 = first_half.train_epoch();
  EXPECT_EQ(std::bit_cast<std::uint64_t>(epoch0.train_loss),
            std::bit_cast<std::uint64_t>(full_report.epochs[0].train_loss));
  first_half.save_state(file.path);

  dt::NoComm hook_second;
  dt::Trainer restored(config, hook_second);
  restored.load_state(file.path);
  EXPECT_EQ(restored.global_step(), first_half.global_step());
  EXPECT_EQ(restored.next_epoch(), 1);
  const auto resumed_report = restored.run();

  ASSERT_EQ(resumed_report.epochs.size(), 1u);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(resumed_report.epochs[0].train_loss),
            std::bit_cast<std::uint64_t>(full_report.epochs[1].train_loss));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(resumed_report.epochs[0].eval_miou),
            std::bit_cast<std::uint64_t>(full_report.epochs[1].eval_miou));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(resumed_report.epochs[0].eval_pixel_accuracy),
            std::bit_cast<std::uint64_t>(full_report.epochs[1].eval_pixel_accuracy));
}

TEST(Checkpoint, TrainerStateRejectsMismatchedArchitecture) {
  TempFile file("dlscale_trainer_state_mismatch.bin");
  const auto config = trainer_config();
  dt::NoComm hook_a;
  dt::Trainer source(config, hook_a);
  source.save_state(file.path);

  auto wide = config;
  wide.model.width = 8;
  dt::NoComm hook_b;
  dt::Trainer target(wide, hook_b);
  EXPECT_THROW(target.load_state(file.path), std::runtime_error);
}

TEST(Checkpoint, CorruptMagicThrows) {
  TempFile file("dlscale_ckpt_corrupt.bin");
  {
    std::FILE* f = std::fopen(file.path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[] = "not a checkpoint";
    std::fwrite(junk, 1, sizeof junk, f);
    std::fclose(f);
  }
  dlscale::util::Rng rng(1);
  dmo::MiniDeepLabV3Plus model({.input_size = 16, .width = 4}, rng);
  EXPECT_THROW(dt::load_checkpoint(model.parameters(), file.path), std::runtime_error);
}
