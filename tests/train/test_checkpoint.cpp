#include "dlscale/train/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "dlscale/models/deeplab.hpp"

namespace dt = dlscale::train;
namespace dmo = dlscale::models;

namespace {

struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name)
      : path((std::filesystem::temp_directory_path() / name).string()) {}
  ~TempFile() { std::remove(path.c_str()); }
};

}  // namespace

TEST(Checkpoint, SaveLoadRoundTrip) {
  TempFile file("dlscale_ckpt_roundtrip.bin");
  dlscale::util::Rng rng_a(1), rng_b(2);
  dmo::MiniDeepLabV3Plus source({.input_size = 16, .width = 4}, rng_a);
  dmo::MiniDeepLabV3Plus target({.input_size = 16, .width = 4}, rng_b);

  dt::save_checkpoint(source.parameters(), file.path);
  dt::load_checkpoint(target.parameters(), file.path);

  const auto src_params = source.parameters();
  const auto dst_params = target.parameters();
  for (std::size_t i = 0; i < src_params.size(); ++i) {
    for (std::size_t j = 0; j < src_params[i]->numel(); ++j) {
      ASSERT_FLOAT_EQ(src_params[i]->value[j], dst_params[i]->value[j])
          << src_params[i]->name;
    }
  }
}

TEST(Checkpoint, MismatchedArchitectureThrows) {
  TempFile file("dlscale_ckpt_mismatch.bin");
  dlscale::util::Rng rng(1);
  dmo::MiniDeepLabV3Plus small({.input_size = 16, .width = 4}, rng);
  dmo::MiniDeepLabV3Plus big({.input_size = 16, .width = 8}, rng);
  dt::save_checkpoint(small.parameters(), file.path);
  EXPECT_THROW(dt::load_checkpoint(big.parameters(), file.path), std::runtime_error);
}

TEST(Checkpoint, MissingFileThrows) {
  dlscale::util::Rng rng(1);
  dmo::MiniDeepLabV3Plus model({.input_size = 16, .width = 4}, rng);
  EXPECT_THROW(dt::load_checkpoint(model.parameters(), "/nonexistent/dir/ckpt.bin"),
               std::runtime_error);
}

TEST(Checkpoint, CorruptMagicThrows) {
  TempFile file("dlscale_ckpt_corrupt.bin");
  {
    std::FILE* f = std::fopen(file.path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[] = "not a checkpoint";
    std::fwrite(junk, 1, sizeof junk, f);
    std::fclose(f);
  }
  dlscale::util::Rng rng(1);
  dmo::MiniDeepLabV3Plus model({.input_size = 16, .width = 4}, rng);
  EXPECT_THROW(dt::load_checkpoint(model.parameters(), file.path), std::runtime_error);
}
