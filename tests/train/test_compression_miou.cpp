// Convergence gates for compressed allreduce (DESIGN.md §12): int8 and
// top-k with error feedback must land within 0.02 absolute mIOU of the
// fp32 baseline at 2 and 4 ranks; a no-error-feedback control shows the
// residual is what buys that parity; residual state must survive a
// checkpoint save/restore and a 4->3 elastic shrink without corrupting
// convergence.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "dlscale/net/profile.hpp"
#include "dlscale/net/topology.hpp"
#include "dlscale/train/elastic.hpp"
#include "dlscale/train/trainer.hpp"
#include "../support/simd_param.hpp"

namespace dh = dlscale::hvd;
namespace dm = dlscale::mpi;
namespace dt = dlscale::train;

namespace {

struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name)
      : path((std::filesystem::temp_directory_path() / name).string()) {}
  ~TempFile() { std::remove(path.c_str()); }
};

dm::WorldOptions functional_world(int ranks) {
  dm::WorldOptions options;
  options.topology = dlscale::net::Topology::single_node(ranks);
  options.profile = dlscale::net::MpiProfile::ideal();
  options.timing = false;
  return options;
}

dt::TrainConfig tiny_config(dh::CompressionAlgo algo, float topk_ratio = 0.25f,
                            bool error_feedback = true) {
  dt::TrainConfig config;
  config.model = {.in_channels = 3, .num_classes = 4, .input_size = 16, .width = 4};
  config.dataset = {.image_size = 16, .num_classes = 4, .max_shapes = 2, .noise = 0.1f,
                    .seed = 99};
  config.train_samples = 16;
  config.eval_samples = 8;
  config.batch_per_rank = 2;
  config.epochs = 3;
  config.knobs.compression = algo;
  config.knobs.topk_ratio = topk_ratio;
  config.knobs.error_feedback = error_feedback;
  return config;
}

double distributed_miou(int ranks, const dt::TrainConfig& config) {
  double miou = -1.0;
  dm::run_world(functional_world(ranks), [&](dm::Communicator& comm) {
    const dt::TrainReport report = dt::train_distributed(comm, config);
    if (comm.rank() == 0) miou = report.final_miou();
  });
  return miou;
}

}  // namespace

class CompressionMiou : public dlscale::testing::SimdLevelTest {};

TEST_P(CompressionMiou, ParityGateInt8AndTopKTrackFp32) {
  // The issue's acceptance bar: absolute mIOU drop <= 0.02 vs fp32 with
  // error feedback on, at both 2 and 4 ranks.
  for (const int ranks : {2, 4}) {
    const double fp32 = distributed_miou(ranks, tiny_config(dh::CompressionAlgo::kNone));
    ASSERT_GE(fp32, 0.0) << ranks << " ranks";
    const double int8 = distributed_miou(ranks, tiny_config(dh::CompressionAlgo::kInt8));
    EXPECT_GE(int8, fp32 - 0.02) << ranks << " ranks (int8 + EF)";
    // Top-k at 50%: the run is only ~6-12 optimizer steps, so the
    // residual needs a moderate ratio to deliver every coordinate's mass
    // within the horizon. (Aggressive 1% sparsity is exercised by the
    // EF-control test below, where only the RELATIVE gap matters.)
    const double topk =
        distributed_miou(ranks, tiny_config(dh::CompressionAlgo::kTopK, 0.5f));
    EXPECT_GE(topk, fp32 - 0.02) << ranks << " ranks (top-k + EF)";
  }
}

TEST_P(CompressionMiou, ErrorFeedbackControlShowsResidualMatters) {
  // Aggressive sparsification (1% of coordinates per step) with the
  // residual disabled silently drops 99% of every gradient — training
  // must measurably trail the same codec with error feedback on. This is
  // the control that proves the parity gate above passes BECAUSE of the
  // residual, not because the tiny model shrugs off compression.
  const double with_ef =
      distributed_miou(2, tiny_config(dh::CompressionAlgo::kTopK, 0.01f, true));
  const double without_ef =
      distributed_miou(2, tiny_config(dh::CompressionAlgo::kTopK, 0.01f, false));
  EXPECT_GT(with_ef, without_ef + 0.02)
      << "EF on: " << with_ef << " EF off: " << without_ef;
}

TEST_P(CompressionMiou, ResidualStateSurvivesCheckpointRestore) {
  // Residuals are per-rank transient state and deliberately NOT in the
  // checkpoint (DESIGN.md §12): a restore resets them to zero, which is
  // sound because EF residuals are self-healing (the next step re-absorbs
  // whatever error the codec makes). The gate: save after epoch 0 under
  // int8+EF, restore into a fresh trainer (fresh runtime, empty
  // residuals), finish, and land within 0.02 of the uninterrupted
  // int8 run.
  const dt::TrainConfig config = tiny_config(dh::CompressionAlgo::kInt8);
  TempFile ckpt("dlscale_compress_restore.bin");

  const double uninterrupted = distributed_miou(2, config);

  double resumed = -1.0;
  dm::run_world(functional_world(2), [&](dm::Communicator& comm) {
    dt::HorovodHook hook(comm, config);
    dt::Trainer trainer(config, hook);
    trainer.train_epoch();
    if (comm.rank() == 0) trainer.save_state(ckpt.path);
    comm.barrier();
  });
  dm::run_world(functional_world(2), [&](dm::Communicator& comm) {
    dt::HorovodHook hook(comm, config);
    dt::Trainer trainer(config, hook);
    trainer.load_state(ckpt.path);
    const dt::TrainReport report = trainer.run();
    if (comm.rank() == 0) resumed = report.final_miou();
  });
  ASSERT_GE(resumed, 0.0);
  EXPECT_NEAR(resumed, uninterrupted, 0.02);
}

TEST_P(CompressionMiou, ElasticShrinkUnderInt8ConvergesLikeFp32Elastic) {
  // 4 ranks, rank 2 killed at step 2, int8+EF the whole way: survivors
  // shrink to 3, the HorovodHook rebinds a fresh runtime (residuals for
  // the dead world are dropped via on_world_change), training finishes.
  // The gate compares against the SAME elastic scenario at fp32 — the
  // codec must not corrupt the recovery path.
  auto elastic_miou = [](const dt::TrainConfig& config, const std::string& ckpt_name) {
    TempFile ckpt(ckpt_name);
    double miou = -1.0;
    int recovered_ranks = 0;
    auto options = functional_world(4);
    options.faults.kills = {{/*global_rank=*/2, /*at_step=*/2}};
    dm::run_world(options, [&](dm::Communicator& comm) {
      dt::ElasticConfig elastic;
      elastic.train = config;
      elastic.checkpoint_path = ckpt.path;
      dt::ElasticTrainer driver(comm, elastic);
      const dt::TrainReport report = driver.run();
      if (driver.comm().rank() == 0) {
        miou = report.final_miou();
        recovered_ranks =
            driver.recoveries().empty() ? 0 : driver.recoveries().front().new_size;
      }
    });
    EXPECT_EQ(recovered_ranks, 3);
    return miou;
  };

  const double fp32 =
      elastic_miou(tiny_config(dh::CompressionAlgo::kNone), "dlscale_compress_elastic_fp32.bin");
  const double int8 =
      elastic_miou(tiny_config(dh::CompressionAlgo::kInt8), "dlscale_compress_elastic_int8.bin");
  ASSERT_GE(fp32, 0.0);
  ASSERT_GE(int8, 0.0);
  EXPECT_GE(int8, fp32 - 0.02);
}

INSTANTIATE_TEST_SUITE_P(Simd, CompressionMiou,
                         ::testing::ValuesIn(dlscale::testing::simd_levels_under_test()),
                         dlscale::testing::simd_param_name);
