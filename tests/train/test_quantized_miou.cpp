// The mIOU regression gate for reduced-precision serving (ISSUE:
// "quantization must not silently wreck accuracy"). Trains the mini
// DeepLab briefly on the synthetic shapes task, checkpoints it, then
// loads three fresh copies and serves the SAME weights as fp32, bf16 and
// int8, asserting the reduced-precision mIOU on a held-out slice stays
// within a fixed tolerance of fp32. Runs under both SIMD dispatch levels
// — the quantized kernels are bitwise level-invariant, so the measured
// mIOU values are identical across levels by construction, and this test
// would catch a divergence as a tolerance failure.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "dlscale/data/dataset.hpp"
#include "dlscale/models/deeplab.hpp"
#include "dlscale/nn/optimizer.hpp"
#include "dlscale/nn/quantized.hpp"
#include "dlscale/tensor/ops.hpp"
#include "dlscale/train/checkpoint.hpp"
#include "dlscale/train/trainer.hpp"
#include "dlscale/util/rng.hpp"
#include "../support/simd_param.hpp"

namespace dd = dlscale::data;
namespace dmo = dlscale::models;
namespace dn = dlscale::nn;
namespace dt = dlscale::tensor;
namespace dtr = dlscale::train;
namespace du = dlscale::util;
using dlscale::testing::SimdLevelTest;

namespace {

constexpr int kClasses = 4;
constexpr std::uint64_t kTrainSamples = 16;
constexpr std::uint64_t kHeldOut = 8;  // evaluation slice past the train set

dmo::MiniDeepLabV3Plus::Config model_config() {
  return {.in_channels = 3, .num_classes = kClasses, .input_size = 16, .width = 4};
}

dd::SyntheticShapes::Config data_config() {
  return {.image_size = 16, .num_classes = kClasses, .max_shapes = 2, .seed = 303};
}

/// A few SGD steps: enough to pull the logits away from the random-init
/// regime where quantization noise could flip arbitrary argmax pixels.
void train_briefly(dmo::MiniDeepLabV3Plus& model, const dd::SyntheticShapes& dataset) {
  dn::SgdMomentum opt(model.parameters(), {.momentum = 0.9, .weight_decay = 0.0});
  constexpr int kSteps = 8, kBatch = 4;
  for (int step = 0; step < kSteps; ++step) {
    std::vector<std::uint64_t> indices;
    for (int b = 0; b < kBatch; ++b) {
      indices.push_back((static_cast<std::uint64_t>(step) * kBatch + b) % kTrainSamples);
    }
    const dd::Sample batch = dataset.make_batch(indices);
    const dt::Tensor logits = model.forward(batch.image, /*train=*/true);
    dt::Tensor grad(logits.shape());
    opt.zero_grad();
    (void)dt::softmax_cross_entropy(logits, batch.labels, /*ignore_label=*/255, grad);
    (void)model.backward(grad);
    opt.step(/*lr=*/0.05);
  }
}

/// Fresh model with the checkpointed weights, converted to `target`.
dmo::MiniDeepLabV3Plus load_at_precision(const std::string& path, dn::Precision target,
                                         const dd::SyntheticShapes& dataset) {
  du::Rng rng(1);
  dmo::MiniDeepLabV3Plus model(model_config(), rng);
  dtr::load_model(model.parameters(), model.buffers(), path);
  if (target == dn::Precision::kInt8) {
    // Calibrate on the training slice — the held-out slice stays unseen.
    dn::CalibrationTable table;
    {
      dn::CalibrationSession session(table);
      std::vector<std::uint64_t> indices;
      for (std::uint64_t i = 0; i < 8; ++i) indices.push_back(i);
      (void)model.forward(dataset.make_batch(indices).image, /*train=*/false);
    }
    model.convert_precision(dn::Precision::kInt8, &table);
  } else if (target == dn::Precision::kBf16) {
    model.convert_precision(dn::Precision::kBf16);
  }
  return model;
}

double held_out_miou(dmo::MiniDeepLabV3Plus& model, const dd::SyntheticShapes& dataset) {
  return dtr::evaluate(model, dataset, kTrainSamples, kHeldOut, /*batch_size=*/4).first;
}

}  // namespace

using MiouGate = SimdLevelTest;

TEST_P(MiouGate, ReducedPrecisionMiouWithinToleranceOfFp32) {
  const dd::SyntheticShapes dataset(data_config());
  const std::string path = ::testing::TempDir() + "dlscale_miou_gate_" +
                           std::to_string(static_cast<int>(GetParam())) + ".ckpt";
  {
    du::Rng rng(17);
    dmo::MiniDeepLabV3Plus model(model_config(), rng);
    train_briefly(model, dataset);
    dtr::save_model(model.parameters(), model.buffers(), path);
  }

  dmo::MiniDeepLabV3Plus fp32 = load_at_precision(path, dn::Precision::kFp32, dataset);
  dmo::MiniDeepLabV3Plus bf16 = load_at_precision(path, dn::Precision::kBf16, dataset);
  dmo::MiniDeepLabV3Plus int8 = load_at_precision(path, dn::Precision::kInt8, dataset);
  EXPECT_EQ(bf16.precision(), dn::Precision::kBf16);
  EXPECT_EQ(int8.precision(), dn::Precision::kInt8);

  const double miou_fp32 = held_out_miou(fp32, dataset);
  const double miou_bf16 = held_out_miou(bf16, dataset);
  const double miou_int8 = held_out_miou(int8, dataset);
  // The briefly-trained model is far from perfect; the gate is about the
  // DELTA quantization introduces, not absolute quality.
  EXPECT_GT(miou_fp32, 0.0);
  // bf16 only perturbs weight storage (8 significand bits): near-lossless.
  EXPECT_NEAR(miou_bf16, miou_fp32, 0.02) << "bf16 regressed mIOU";
  // int8 carries real quantization error through every conv.
  EXPECT_NEAR(miou_int8, miou_fp32, 0.08) << "int8 regressed mIOU";

  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(AllLevels, MiouGate,
                         ::testing::ValuesIn(dlscale::testing::simd_levels_under_test()),
                         dlscale::testing::simd_param_name);
