// Elastic fault-tolerant training: a 4-rank run losing a rank mid-epoch
// must shrink, restore from the last checkpoint, and finish — and the
// post-recovery training must be BITWISE what an uninterrupted smaller
// world produces from the same checkpoint (which makes the issue's
// "mIOU within 0.02" acceptance bar exact rather than statistical).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "dlscale/net/profile.hpp"
#include "dlscale/net/topology.hpp"
#include "dlscale/train/elastic.hpp"
#include "dlscale/train/trainer.hpp"
#include "../support/simd_param.hpp"

namespace dm = dlscale::mpi;
namespace dt = dlscale::train;

namespace {

struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name)
      : path((std::filesystem::temp_directory_path() / name).string()) {}
  ~TempFile() { std::remove(path.c_str()); }
};

dm::WorldOptions functional_world(int ranks) {
  dm::WorldOptions options;
  options.topology = dlscale::net::Topology::single_node(ranks);
  options.profile = dlscale::net::MpiProfile::ideal();
  options.timing = false;
  return options;
}

dt::TrainConfig tiny_config() {
  dt::TrainConfig config;
  config.model = {.in_channels = 3, .num_classes = 4, .input_size = 16, .width = 4};
  config.dataset = {.image_size = 16, .num_classes = 4, .max_shapes = 2, .noise = 0.1f,
                    .seed = 99};
  config.train_samples = 16;
  config.eval_samples = 8;
  config.batch_per_rank = 2;
  config.epochs = 3;
  return config;
}

std::vector<char> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

std::uint64_t bits(double value) { return std::bit_cast<std::uint64_t>(value); }

}  // namespace

class ElasticTrain : public dlscale::testing::SimdLevelTest {};

TEST_P(ElasticTrain, KilledRankMidEpochConvergesLikeUninterruptedSmallWorld) {
  // Acceptance run: 4 ranks, rank 2 killed during epoch 1 (its third
  // on_step_begin; 2 steps/epoch at 4 ranks). Survivors shrink to 3,
  // restore the epoch-0 checkpoint, and replay epochs 1..2.
  const dt::TrainConfig config = tiny_config();
  TempFile elastic_ckpt("dlscale_elastic_acceptance.bin");
  TempFile reference_ckpt("dlscale_elastic_reference.bin");

  // Reference checkpoint: an uninterrupted 4-rank run saved after epoch 0
  // — deterministic, so it is byte-for-byte the checkpoint the elastic
  // run writes before the failure (the elastic run's own file cannot be
  // reused: post-recovery epochs overwrite it with 3-rank state).
  dm::run_world(functional_world(4), [&](dm::Communicator& comm) {
    dt::HorovodHook hook(comm, config);
    dt::Trainer trainer(config, hook);
    trainer.train_epoch();
    if (comm.rank() == 0) trainer.save_state(reference_ckpt.path);
    comm.barrier();
  });

  // Elastic run with the injected failure.
  dt::TrainReport elastic_report;
  std::vector<dt::RecoveryEvent> recoveries;
  auto options = functional_world(4);
  options.faults.kills = {{/*global_rank=*/2, /*at_step=*/2}};
  dm::run_world(options, [&](dm::Communicator& comm) {
    dt::ElasticConfig elastic;
    elastic.train = config;
    elastic.checkpoint_path = elastic_ckpt.path;
    dt::ElasticTrainer driver(comm, elastic);
    const dt::TrainReport report = driver.run();
    if (driver.comm().rank() == 0) {
      elastic_report = report;
      recoveries = driver.recoveries();
    }
  });

  ASSERT_EQ(recoveries.size(), 1u);
  EXPECT_EQ(recoveries[0].failed_global_rank, 2);
  EXPECT_EQ(recoveries[0].old_size, 4);
  EXPECT_EQ(recoveries[0].new_size, 3);
  EXPECT_TRUE(recoveries[0].restored_from_checkpoint);
  EXPECT_EQ(recoveries[0].resumed_epoch, 1);
  ASSERT_EQ(elastic_report.epochs.size(), 3u);

  // Uninterrupted 3-rank continuation from the same checkpoint, using the
  // same world-rescaling rule the elastic run applied after the shrink.
  dt::TrainReport reference_report;
  dm::run_world(functional_world(3), [&](dm::Communicator& comm) {
    const dt::TrainConfig scaled = dt::ElasticTrainer::rescale_for_world(config, 3, 4);
    dt::HorovodHook hook(comm, scaled);
    dt::Trainer trainer(scaled, hook);
    trainer.load_state(reference_ckpt.path);
    const dt::TrainReport report = trainer.run();
    if (comm.rank() == 0) reference_report = report;
  });

  // Replayed epochs are bitwise the uninterrupted small-world epochs.
  ASSERT_EQ(reference_report.epochs.size(), 2u);
  for (std::size_t i = 0; i < reference_report.epochs.size(); ++i) {
    const dt::EpochReport& replayed = elastic_report.epochs[i + 1];
    const dt::EpochReport& reference = reference_report.epochs[i];
    EXPECT_EQ(replayed.epoch, reference.epoch);
    EXPECT_EQ(bits(replayed.train_loss), bits(reference.train_loss)) << "epoch " << i + 1;
    EXPECT_EQ(bits(replayed.eval_miou), bits(reference.eval_miou)) << "epoch " << i + 1;
  }
  // The issue's stated acceptance bar, implied by (and weaker than) the
  // bitwise check above.
  EXPECT_NEAR(elastic_report.final_miou(), reference_report.final_miou(), 0.02);
}

INSTANTIATE_TEST_SUITE_P(SimdLevels, ElasticTrain,
                         ::testing::ValuesIn(dlscale::testing::simd_levels_under_test()),
                         dlscale::testing::simd_param_name);

TEST(ElasticCheckpoint, RestoreUnderShrinkIsBitwiseEqualToFreshSmallWorldLoad) {
  // Save at step k with 4 ranks; run the real shrink-and-restore path;
  // the restored trainer's state must be byte-for-byte what a fresh
  // 3-rank trainer loading the same file holds, with counters at k.
  const dt::TrainConfig config = tiny_config();
  TempFile saved("dlscale_shrink_saved.bin");
  TempFile after_elastic("dlscale_shrink_elastic.bin");
  TempFile after_fresh("dlscale_shrink_fresh.bin");
  long step_k = 0;

  auto options = functional_world(4);
  options.faults.kills = {{/*global_rank=*/3, /*at_step=*/2}};
  dm::run_world(options, [&](dm::Communicator& comm) {
    dt::HorovodHook hook(comm, config);
    dt::Trainer trainer(config, hook);
    trainer.train_epoch();
    if (comm.rank() == 0) {
      trainer.save_state(saved.path);
      step_k = trainer.global_step();
    }
    try {
      // Rank 3 dies at its next step begin; survivors fail collectively.
      // The barrier is inside the try: rank 3 can exit it and die while a
      // survivor is still in a barrier round, and death outranks an
      // available message, so even this barrier may raise RankFailed.
      comm.barrier();
      hook.on_step_begin();
      hook.on_step_end();
      if (comm.rank() != 3) {
        std::vector<double> v{1.0};
        hook.allreduce_sum(std::span<double>(v));
      }
      FAIL() << "rank " << comm.rank() << " survived the injected kill";
    } catch (const dm::RankFailed&) {
      dm::Communicator survivors = comm.shrink();
      const dt::TrainConfig scaled = dt::ElasticTrainer::rescale_for_world(config, 3, 4);
      dt::HorovodHook new_hook(survivors, scaled);
      dt::Trainer restored(scaled, new_hook);
      restored.load_state(saved.path);
      EXPECT_EQ(restored.global_step(), step_k);
      EXPECT_EQ(restored.next_epoch(), 1);
      if (survivors.rank() == 0) restored.save_state(after_elastic.path);
      survivors.barrier();
    }
  });

  dm::run_world(functional_world(3), [&](dm::Communicator& comm) {
    const dt::TrainConfig scaled = dt::ElasticTrainer::rescale_for_world(config, 3, 4);
    dt::HorovodHook hook(comm, scaled);
    dt::Trainer fresh(scaled, hook);
    fresh.load_state(saved.path);
    EXPECT_EQ(fresh.global_step(), step_k);
    if (comm.rank() == 0) fresh.save_state(after_fresh.path);
    comm.barrier();
  });

  const std::vector<char> elastic_bytes = read_file(after_elastic.path);
  const std::vector<char> fresh_bytes = read_file(after_fresh.path);
  ASSERT_FALSE(elastic_bytes.empty());
  EXPECT_TRUE(elastic_bytes == fresh_bytes)
      << "restored-under-shrink state diverges from a fresh small-world load";
}

TEST(Elastic, NoCheckpointRestartsFromScratchAtSmallerWorld) {
  const dt::TrainConfig config = tiny_config();
  std::vector<dt::RecoveryEvent> recoveries;
  dt::TrainReport report;
  auto options = functional_world(4);
  options.faults.kills = {{/*global_rank=*/1, /*at_step=*/3}};
  dm::run_world(options, [&](dm::Communicator& comm) {
    dt::ElasticConfig elastic;
    elastic.train = config;  // checkpoint_path left empty
    dt::ElasticTrainer driver(comm, elastic);
    const dt::TrainReport out = driver.run();
    if (driver.comm().rank() == 0) {
      report = out;
      recoveries = driver.recoveries();
    }
  });
  ASSERT_EQ(recoveries.size(), 1u);
  EXPECT_FALSE(recoveries[0].restored_from_checkpoint);
  EXPECT_EQ(recoveries[0].resumed_step, 0);
  EXPECT_EQ(recoveries[0].resumed_epoch, 0);
  EXPECT_GT(recoveries[0].steps_replayed, 0);
  // The restarted run still trains all epochs at the shrunken size.
  ASSERT_EQ(report.epochs.size(), 3u);
}

TEST(Elastic, SurvivesTwoFailuresWithCheckpointing) {
  // 4 -> 3 -> 2 ranks: rank 3 dies in epoch 1, rank 1 dies after the
  // replayed epoch 1 checkpoint; the run still completes every epoch.
  const dt::TrainConfig config = tiny_config();
  TempFile ckpt("dlscale_elastic_double.bin");
  std::vector<dt::RecoveryEvent> recoveries;
  dt::TrainReport report;
  int final_size = 0;
  auto options = functional_world(4);
  options.faults.kills = {{/*global_rank=*/3, /*at_step=*/2},
                          {/*global_rank=*/1, /*at_step=*/5}};
  dm::run_world(options, [&](dm::Communicator& comm) {
    dt::ElasticConfig elastic;
    elastic.train = config;
    elastic.checkpoint_path = ckpt.path;
    dt::ElasticTrainer driver(comm, elastic);
    const dt::TrainReport out = driver.run();
    if (driver.comm().rank() == 0) {
      report = out;
      recoveries = driver.recoveries();
      final_size = driver.comm().size();
    }
  });
  ASSERT_EQ(recoveries.size(), 2u);
  EXPECT_EQ(recoveries[0].new_size, 3);
  EXPECT_EQ(recoveries[1].new_size, 2);
  EXPECT_EQ(final_size, 2);
  EXPECT_TRUE(recoveries[0].restored_from_checkpoint);
  EXPECT_TRUE(recoveries[1].restored_from_checkpoint);
  EXPECT_LT(recoveries[0].world_epoch, recoveries[1].world_epoch);
  ASSERT_EQ(report.epochs.size(), 3u);
}

TEST(Elastic, MaxRecoveriesExhaustedRethrows) {
  const dt::TrainConfig config = tiny_config();
  std::atomic<int> rethrown{0};
  auto options = functional_world(3);
  options.faults.kills = {{/*global_rank=*/2, /*at_step=*/2}};
  dm::run_world(options, [&](dm::Communicator& comm) {
    dt::ElasticConfig elastic;
    elastic.train = config;
    elastic.max_recoveries = 0;  // recovery disabled: failure is fatal
    dt::ElasticTrainer driver(comm, elastic);
    try {
      driver.run();
    } catch (const dm::RankFailed& e) {
      EXPECT_EQ(e.failed_global_rank, 2);
      rethrown.fetch_add(1);
    }
  });
  EXPECT_EQ(rethrown.load(), 2);
}

TEST(ElasticAutotune, TunerWindowRestartsOnWorldChange) {
  // Three steps into a four-step window, on_world_change must discard the
  // partial window: three more steps stay short of a boundary, and only
  // the fourth post-reset step closes one.
  dm::run_world(functional_world(2), [](dm::Communicator& comm) {
    dt::TrainConfig config = tiny_config();
    config.autotune.enabled = true;
    config.autotune.window_steps = 4;
    dt::HorovodHook hook(comm, config);
    dlscale::hvd::Autotuner tuner(hook.runtime(), config.autotune);
    for (int i = 0; i < 3; ++i) tuner.step_end();
    EXPECT_EQ(tuner.windows_completed(), 0);
    tuner.on_world_change();
    for (int i = 0; i < 3; ++i) tuner.step_end();
    // Without the reset these would be steps 4..6 and a window would have
    // closed at step 4.
    EXPECT_EQ(tuner.windows_completed(), 0);
    tuner.step_end();
    EXPECT_EQ(tuner.windows_completed(), 1);
  });
}

TEST(ElasticAutotune, ElasticRunWithAutotuneRecovers) {
  // End-to-end: the AutotuneHook chain survives a shrink (tuner rebinds
  // to the rebuilt runtime, window restarts) and training completes.
  dt::TrainConfig config = tiny_config();
  config.autotune.enabled = true;
  config.autotune.window_steps = 2;
  TempFile ckpt("dlscale_elastic_autotune.bin");
  std::vector<dt::RecoveryEvent> recoveries;
  dt::TrainReport report;
  auto options = functional_world(4);
  options.faults.kills = {{/*global_rank=*/2, /*at_step=*/3}};
  dm::run_world(options, [&](dm::Communicator& comm) {
    dt::ElasticConfig elastic;
    elastic.train = config;
    elastic.checkpoint_path = ckpt.path;
    dt::ElasticTrainer driver(comm, elastic);
    const dt::TrainReport out = driver.run();
    if (driver.comm().rank() == 0) {
      report = out;
      recoveries = driver.recoveries();
    }
  });
  ASSERT_EQ(recoveries.size(), 1u);
  EXPECT_TRUE(recoveries[0].restored_from_checkpoint);
  ASSERT_EQ(report.epochs.size(), 3u);
  EXPECT_GT(report.epochs.back().eval_miou, 0.0);
}
