// Autotuning is observation-only: live knob switches mid-training change
// how gradients are batched and scheduled, never the averaged values the
// optimizer consumes. Also covers the per-epoch communication stats added
// to EpochReport.
#include <gtest/gtest.h>

#include <vector>

#include "dlscale/net/topology.hpp"
#include "dlscale/train/trainer.hpp"

namespace dt = dlscale::train;
namespace dm = dlscale::mpi;
namespace dh = dlscale::hvd;
namespace dn = dlscale::net;

namespace {

dt::TrainConfig tiny_config() {
  dt::TrainConfig config;
  config.model = {.in_channels = 3, .num_classes = 4, .input_size = 16, .width = 4};
  config.dataset = {.image_size = 16, .num_classes = 4, .max_shapes = 2, .noise = 0.1f,
                    .seed = 99};
  config.train_samples = 32;
  config.eval_samples = 8;
  config.batch_per_rank = 2;
  config.epochs = 3;
  config.schedule = {0.05, 0.9, 0};
  config.knobs.cycle_time_s = 1e-4;
  return config;
}

// 4 nodes x 1 GPU: hierarchical != flat only changes staging, and
// recursive doubling's pairing tree is independent of buffer offsets, so
// no knob in the tuning space can perturb summation order (see DESIGN.md
// section 7).
dm::WorldOptions flat_world() {
  dm::WorldOptions options;
  options.topology = dn::Topology(4, 1, 1);
  options.timing = false;
  return options;
}

}  // namespace

TEST(Autotune, TrainingMetricsAreBitwiseIdenticalToFixedKnobs) {
  auto config = tiny_config();
  // Pin the collective algorithm: ring allreduce's accumulation order
  // depends on how tensors land inside fusion buffers, recursive
  // doubling's does not — the precondition for knob switches being
  // bitwise-invisible.
  config.knobs.algo = dm::AllreduceAlgo::kRecursiveDoubling;

  std::vector<dt::EpochReport> fixed;
  dm::run_world(flat_world(), [&](dm::Communicator& comm) {
    const auto report = dt::train_distributed(comm, config);
    if (comm.rank() == 0) fixed = report.epochs;
  });
  ASSERT_EQ(fixed.size(), 3u);

  // Same run, but retuning every step across fusion thresholds that
  // demonstrably change batching (1 byte -> every tensor alone; 64 MiB ->
  // everything fused) and across cycle times and hierarchy.
  config.autotune.enabled = true;
  config.autotune.window_steps = 1;
  config.autotune.space.fusion_thresholds = {1, 8 << 20, 64 << 20};
  config.autotune.space.cycle_times_s = {1e-4, 1e-3};
  config.autotune.space.hierarchical = {false, true};

  std::vector<dt::EpochReport> tuned;
  int windows = 0;
  dm::run_world(flat_world(), [&](dm::Communicator& comm) {
    dt::HorovodHook hook(comm, config);
    dh::Autotuner tuner(hook.runtime(), config.autotune);
    dt::AutotuneHook tuned_hook(hook, tuner);
    dt::Trainer trainer(config, tuned_hook);
    const auto report = trainer.run();
    if (comm.rank() == 0) {
      tuned = report.epochs;
      windows = tuner.windows_completed();
    }
  });

  ASSERT_EQ(tuned.size(), fixed.size());
  EXPECT_GT(windows, 2) << "tuner must actually have switched knobs mid-run";
  for (std::size_t e = 0; e < fixed.size(); ++e) {
    EXPECT_DOUBLE_EQ(tuned[e].train_loss, fixed[e].train_loss) << "epoch " << e;
    EXPECT_DOUBLE_EQ(tuned[e].eval_miou, fixed[e].eval_miou) << "epoch " << e;
    EXPECT_DOUBLE_EQ(tuned[e].eval_pixel_accuracy, fixed[e].eval_pixel_accuracy)
        << "epoch " << e;
  }
}

TEST(Autotune, TrainDistributedHonoursAutotuneConfig) {
  auto config = tiny_config();
  config.epochs = 2;
  config.autotune.enabled = true;
  config.autotune.window_steps = 2;
  dm::run_world(2, [&](dm::Communicator& comm) {
    const auto report = dt::train_distributed(comm, config);
    ASSERT_EQ(report.epochs.size(), 2u);
    EXPECT_GT(report.epochs.back().train_loss, 0.0);
  });
}

TEST(EpochReport, PerEpochCommStatsSumToLifetimeTotals) {
  auto config = tiny_config();
  config.epochs = 2;
  dm::run_world(2, [&](dm::Communicator& comm) {
    const auto report = dt::train_distributed(comm, config);
    ASSERT_EQ(report.epochs.size(), 2u);
    dh::RuntimeStats sum;
    for (const auto& epoch : report.epochs) {
      EXPECT_GT(epoch.comm_stats.bytes_reduced, 0u) << "epoch " << epoch.epoch;
      EXPECT_GT(epoch.comm_stats.cycles, 0u) << "epoch " << epoch.epoch;
      sum.cycles += epoch.comm_stats.cycles;
      sum.tensors_negotiated += epoch.comm_stats.tensors_negotiated;
      sum.fused_batches += epoch.comm_stats.fused_batches;
      sum.bytes_reduced += epoch.comm_stats.bytes_reduced;
      sum.control_bytes += epoch.comm_stats.control_bytes;
    }
    // Epoch deltas partition the run: train_epoch snapshots at epoch start
    // and subtracts, so the pieces must re-assemble the lifetime counters.
    EXPECT_EQ(sum.cycles, report.hvd_stats.cycles);
    EXPECT_EQ(sum.tensors_negotiated, report.hvd_stats.tensors_negotiated);
    EXPECT_EQ(sum.fused_batches, report.hvd_stats.fused_batches);
    EXPECT_EQ(sum.bytes_reduced, report.hvd_stats.bytes_reduced);
    EXPECT_EQ(sum.control_bytes, report.hvd_stats.control_bytes);
  });
}

TEST(EpochReport, CommStatsAllZeroUnderNoComm) {
  auto config = tiny_config();
  config.epochs = 1;
  const auto report = dt::train_serial(config, /*equivalent_world=*/2);
  ASSERT_EQ(report.epochs.size(), 1u);
  EXPECT_EQ(report.epochs[0].comm_stats.bytes_reduced, 0u);
  EXPECT_EQ(report.epochs[0].comm_stats.cycles, 0u);
}
