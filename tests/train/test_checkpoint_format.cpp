// Checkpoint format versioning: fp32 saves stay byte-identical to the
// original v1 layout (old files keep loading forever), bf16 saves carry
// the v2 sentinel header and halve the payload, loaders auto-detect, and
// format errors name what was expected vs found.
#include "dlscale/train/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "dlscale/models/deeplab.hpp"
#include "dlscale/util/bf16.hpp"
#include "dlscale/util/rng.hpp"

namespace dtr = dlscale::train;
namespace dmo = dlscale::models;
namespace du = dlscale::util;

namespace {

struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name)
      : path((std::filesystem::temp_directory_path() / name).string()) {}
  ~TempFile() { std::remove(path.c_str()); }
};

dmo::MiniDeepLabV3Plus small_model(std::uint64_t seed) {
  du::Rng rng(seed);
  return dmo::MiniDeepLabV3Plus({.input_size = 16, .width = 4}, rng);
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

}  // namespace

TEST(CheckpointFormat, Fp32FilesKeepTheLegacyV1Layout) {
  TempFile file("dlscale_ckpt_v1_layout.bin");
  auto model = small_model(1);
  dtr::save_model(model.parameters(), model.buffers(), file.path);
  EXPECT_EQ(dtr::peek_checkpoint_format(file.path), dtr::CheckpointFormat::kFp32);
  // Byte 4..8 must be the tensor count, NOT a version sentinel: that is
  // what keeps pre-versioning readers working on new fp32 files.
  const std::vector<char> bytes = slurp(file.path);
  ASSERT_GE(bytes.size(), 8u);
  std::uint32_t word = 0;
  std::memcpy(&word, bytes.data() + 4, 4);
  EXPECT_EQ(word, model.parameters().size() + model.buffers().size());
}

TEST(CheckpointFormat, Bf16RoundTripWidensExactly) {
  TempFile fp32_file("dlscale_ckpt_fmt_fp32.bin");
  TempFile bf16_file("dlscale_ckpt_fmt_bf16.bin");
  auto source = small_model(2);
  dtr::save_model(source.parameters(), source.buffers(), fp32_file.path);
  dtr::save_model(source.parameters(), source.buffers(), bf16_file.path,
                  dtr::CheckpointFormat::kBf16);
  EXPECT_EQ(dtr::peek_checkpoint_format(bf16_file.path), dtr::CheckpointFormat::kBf16);
  // Roughly half the tensor payload (plus the small shared header/names).
  EXPECT_LT(std::filesystem::file_size(bf16_file.path),
            std::filesystem::file_size(fp32_file.path) * 3 / 4);

  auto target = small_model(3);
  dtr::load_model(target.parameters(), target.buffers(), bf16_file.path);
  const auto src = source.parameters();
  const auto dst = target.parameters();
  ASSERT_EQ(src.size(), dst.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    for (std::size_t j = 0; j < src[i]->numel(); ++j) {
      // Loaded value == the bf16 rounding of the saved value, exactly.
      const float expect = du::bf16_to_float(du::float_to_bf16(src[i]->value[j]));
      ASSERT_EQ(dst[i]->value[j], expect) << src[i]->name << "[" << j << "]";
    }
  }
}

TEST(CheckpointFormat, Bf16LoadValidatesNamesAndShapesLikeV1) {
  TempFile file("dlscale_ckpt_fmt_mismatch.bin");
  auto small = small_model(4);
  dtr::save_model(small.parameters(), small.buffers(), file.path,
                  dtr::CheckpointFormat::kBf16);
  du::Rng rng(5);
  dmo::MiniDeepLabV3Plus big({.input_size = 16, .width = 8}, rng);
  EXPECT_THROW(dtr::load_model(big.parameters(), big.buffers(), file.path),
               std::runtime_error);
}

TEST(CheckpointFormat, UnsupportedVersionErrorNamesExpectedAndFound) {
  TempFile file("dlscale_ckpt_fmt_future.bin");
  {
    std::ofstream out(file.path, std::ios::binary);
    const std::uint32_t magic = 0x444C5343, sentinel = 0xFFFFFFFFu, version = 9;
    out.write(reinterpret_cast<const char*>(&magic), 4);
    out.write(reinterpret_cast<const char*>(&sentinel), 4);
    out.write(reinterpret_cast<const char*>(&version), 4);
  }
  auto model = small_model(6);
  try {
    dtr::load_model(model.parameters(), model.buffers(), file.path);
    FAIL() << "expected a format error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("version 9"), std::string::npos) << what;
    EXPECT_NE(what.find("fp32"), std::string::npos) << what;
    EXPECT_NE(what.find("bf16"), std::string::npos) << what;
  }
  EXPECT_THROW(dtr::peek_checkpoint_format(file.path), std::runtime_error);
}

TEST(CheckpointFormat, FormatNamesAreStable) {
  EXPECT_STREQ(dtr::checkpoint_format_name(dtr::CheckpointFormat::kFp32), "fp32");
  EXPECT_STREQ(dtr::checkpoint_format_name(dtr::CheckpointFormat::kBf16), "bf16");
}
