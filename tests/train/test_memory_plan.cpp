// Liveness-planned activation storage (DESIGN.md §10): the packed plan
// must beat the naive per-Tensor sum by the documented margin, and
// arena/planned execution must be BITWISE identical to owning-Tensor
// execution — storage policy is not allowed to touch the math. The
// identity suites run under every SIMD dispatch level.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "dlscale/train/trainer.hpp"
#include "dlscale/util/arena.hpp"
#include "../support/simd_param.hpp"

namespace dd = dlscale::data;
namespace dm = dlscale::mpi;
namespace dn = dlscale::nn;
namespace dt = dlscale::train;
namespace du = dlscale::util;

namespace {

dt::TrainConfig tiny_config(dt::MemoryMode memory) {
  dt::TrainConfig config;
  config.model = {.in_channels = 3, .num_classes = 4, .input_size = 16, .width = 4};
  config.dataset = {.image_size = 16, .num_classes = 4, .max_shapes = 2, .noise = 0.1f,
                    .seed = 99};
  config.train_samples = 32;
  config.eval_samples = 8;
  config.batch_per_rank = 2;
  config.epochs = 2;
  config.schedule = {0.05, 0.9, 0};
  config.knobs.cycle_time_s = 1e-4;
  config.memory = memory;
  return config;
}

struct StepsResult {
  std::vector<float> losses;
  std::vector<float> params;
};

/// Runs `steps` serial training steps under the given memory mode and
/// returns every loss plus the final parameter values.
StepsResult run_steps(dt::MemoryMode memory, int steps) {
  dt::TrainConfig config = tiny_config(memory);
  dt::NoComm hook;
  dt::Trainer trainer(config, hook);
  const dd::SyntheticShapes dataset(config.dataset);
  StepsResult result;
  for (int s = 0; s < steps; ++s) {
    const dd::Sample batch = dataset.make_batch(
        {static_cast<std::uint64_t>(2 * s), static_cast<std::uint64_t>(2 * s + 1)});
    result.losses.push_back(trainer.train_step(batch, 0.05));
  }
  for (dn::Parameter* p : trainer.model().parameters()) {
    for (float v : p->value.data()) result.params.push_back(v);
  }
  return result;
}

void expect_bitwise_equal(const std::vector<float>& a, const std::vector<float>& b,
                          const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint32_t>(a[i]) != std::bit_cast<std::uint32_t>(b[i])) ++mismatches;
  }
  EXPECT_EQ(mismatches, 0u) << what << ": " << mismatches << " of " << a.size()
                            << " values differ between memory modes";
}

TEST(MemoryPlan, PlanInstalledAfterFirstStep) {
  dt::TrainConfig config = tiny_config(dt::MemoryMode::kPlanned);
  dt::NoComm hook;
  dt::Trainer trainer(config, hook);
  EXPECT_TRUE(trainer.step_arena().plan().empty());
  const dd::SyntheticShapes dataset(config.dataset);
  trainer.train_step(dataset.make_batch({0, 1}), 0.05);
  const du::MemoryPlan& plan = trainer.step_arena().plan();
  ASSERT_FALSE(plan.empty());
  EXPECT_TRUE(trainer.step_arena().planned());
  EXPECT_GT(plan.peak_bytes, 0u);
  EXPECT_LT(plan.peak_bytes, plan.naive_bytes);
}

TEST(MemoryPlan, PackedPeakAtMost60PercentOfNaive) {
  // The acceptance bound from the refactor: on the DeepLab-v3+ test
  // model, interval packing must reclaim at least 40% of the naive
  // every-Tensor-its-own-bytes footprint (benches print the same ratio).
  dt::TrainConfig config = tiny_config(dt::MemoryMode::kPlanned);
  config.model = {.in_channels = 3, .num_classes = 6, .input_size = 32, .width = 8};
  config.dataset = {.image_size = 32, .num_classes = 6, .max_shapes = 3, .noise = 0.1f,
                    .seed = 99};
  dt::NoComm hook;
  dt::Trainer trainer(config, hook);
  const dd::SyntheticShapes dataset(config.dataset);
  trainer.train_step(dataset.make_batch({0, 1, 2, 3}), 0.05);
  const du::MemoryPlan& plan = trainer.step_arena().plan();
  ASSERT_FALSE(plan.empty());
  EXPECT_LE(plan.peak_bytes * 10, plan.naive_bytes * 6)
      << "packed " << plan.peak_bytes << " bytes vs naive " << plan.naive_bytes;
}

TEST(MemoryPlan, RetracesWhenTheBatchShapeChanges) {
  dt::TrainConfig config = tiny_config(dt::MemoryMode::kPlanned);
  dt::NoComm hook;
  dt::Trainer trainer(config, hook);
  const dd::SyntheticShapes dataset(config.dataset);
  trainer.train_step(dataset.make_batch({0, 1}), 0.05);
  const std::size_t two_sample_peak = trainer.step_arena().plan().peak_bytes;
  // A different batch size must re-trace (and shrink the plan), not trip
  // the planned-replay divergence check.
  trainer.train_step(dataset.make_batch({2}), 0.05);
  const std::size_t one_sample_peak = trainer.step_arena().plan().peak_bytes;
  EXPECT_LT(one_sample_peak, two_sample_peak);
  // And back again: plans are re-derived, not cached per shape.
  const float loss = trainer.train_step(dataset.make_batch({3, 4}), 0.05);
  EXPECT_GT(loss, 0.0f);
  EXPECT_EQ(trainer.step_arena().plan().peak_bytes, two_sample_peak);
}

class MemoryModeIdentity : public dlscale::testing::SimdLevelTest {};

TEST_P(MemoryModeIdentity, TrainingTrajectoriesMatchOwningMode) {
  const StepsResult owning = run_steps(dt::MemoryMode::kOwning, 5);
  const StepsResult arena = run_steps(dt::MemoryMode::kArena, 5);
  const StepsResult planned = run_steps(dt::MemoryMode::kPlanned, 5);
  expect_bitwise_equal(owning.losses, arena.losses, "losses owning vs arena");
  expect_bitwise_equal(owning.params, arena.params, "params owning vs arena");
  expect_bitwise_equal(owning.losses, planned.losses, "losses owning vs planned");
  expect_bitwise_equal(owning.params, planned.params, "params owning vs planned");
}

TEST_P(MemoryModeIdentity, TwoRankRunMatchesOwningMode) {
  auto run_world_report = [](dt::MemoryMode memory) {
    dt::TrainConfig config = tiny_config(memory);
    dt::TrainReport report;
    dm::run_world(2, [&](dm::Communicator& comm) {
      const dt::TrainReport r = dt::train_distributed(comm, config);
      if (comm.rank() == 0) report = r;
    });
    return report;
  };
  const dt::TrainReport owning = run_world_report(dt::MemoryMode::kOwning);
  const dt::TrainReport planned = run_world_report(dt::MemoryMode::kPlanned);
  ASSERT_EQ(owning.epochs.size(), planned.epochs.size());
  for (std::size_t e = 0; e < owning.epochs.size(); ++e) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(owning.epochs[e].train_loss),
              std::bit_cast<std::uint64_t>(planned.epochs[e].train_loss))
        << "epoch " << e << " loss";
    EXPECT_EQ(std::bit_cast<std::uint64_t>(owning.epochs[e].eval_miou),
              std::bit_cast<std::uint64_t>(planned.epochs[e].eval_miou))
        << "epoch " << e << " mIOU";
  }
}

INSTANTIATE_TEST_SUITE_P(AllLevels, MemoryModeIdentity,
                         ::testing::ValuesIn(dlscale::testing::simd_levels_under_test()),
                         dlscale::testing::simd_param_name);

}  // namespace
