// End-to-end distributed training: the paper's accuracy-parity claim in
// miniature. Distributed data-parallel training through the Horovod core
// must converge, improve mIOU over epochs, and match the equivalent
// serial large-batch run within noise.
#include <gtest/gtest.h>

#include "dlscale/train/trainer.hpp"

namespace dt = dlscale::train;
namespace dm = dlscale::mpi;

namespace {

dt::TrainConfig tiny_config() {
  dt::TrainConfig config;
  config.model = {.in_channels = 3, .num_classes = 4, .input_size = 16, .width = 4};
  config.dataset = {.image_size = 16, .num_classes = 4, .max_shapes = 2, .noise = 0.1f,
                    .seed = 99};
  config.train_samples = 32;
  config.eval_samples = 8;
  config.batch_per_rank = 2;
  config.epochs = 2;
  config.schedule = {0.05, 0.9, 0};
  config.knobs.cycle_time_s = 1e-4;
  return config;
}

}  // namespace

TEST(Trainer, DistributedRunProducesReports) {
  const auto config = tiny_config();
  dm::run_world(2, [&](dm::Communicator& comm) {
    const auto report = dt::train_distributed(comm, config);
    ASSERT_EQ(report.epochs.size(), 2u);
    EXPECT_GT(report.parameter_count, 0u);
    EXPECT_GT(report.steps, 0);
    EXPECT_GT(report.epochs[0].train_loss, 0.0);
    EXPECT_GE(report.epochs[1].eval_miou, 0.0);
    EXPECT_LE(report.epochs[1].eval_miou, 1.0);
  });
}

TEST(Trainer, LossDecreasesOverEpochs) {
  auto config = tiny_config();
  config.epochs = 3;
  dm::run_world(2, [&](dm::Communicator& comm) {
    const auto report = dt::train_distributed(comm, config);
    EXPECT_LT(report.epochs.back().train_loss, report.epochs.front().train_loss);
  });
}

TEST(Trainer, ReportIdenticalOnAllRanks) {
  const auto config = tiny_config();
  std::array<double, 4> losses{};
  std::array<double, 4> mious{};
  dm::run_world(4, [&](dm::Communicator& comm) {
    auto small = config;
    small.batch_per_rank = 1;
    const auto report = dt::train_distributed(comm, small);
    losses[static_cast<std::size_t>(comm.rank())] = report.epochs.back().train_loss;
    mious[static_cast<std::size_t>(comm.rank())] = report.epochs.back().eval_miou;
  });
  for (int r = 1; r < 4; ++r) {
    EXPECT_DOUBLE_EQ(losses[0], losses[static_cast<std::size_t>(r)]);
    EXPECT_DOUBLE_EQ(mious[0], mious[static_cast<std::size_t>(r)]);
  }
}

TEST(Trainer, SerialRunMatchesShapeOfDistributed) {
  const auto config = tiny_config();
  const auto serial = dt::train_serial(config, /*equivalent_world=*/2);
  ASSERT_EQ(serial.epochs.size(), 2u);
  EXPECT_GT(serial.parameter_count, 0u);
  // Same step count as a 2-rank distributed run over the same dataset.
  dm::run_world(2, [&](dm::Communicator& comm) {
    const auto distributed = dt::train_distributed(comm, config);
    EXPECT_EQ(distributed.steps, serial.steps);
    EXPECT_EQ(distributed.parameter_count, serial.parameter_count);
  });
}

TEST(Trainer, ShardTooSmallThrows) {
  auto config = tiny_config();
  config.train_samples = 4;
  config.batch_per_rank = 8;
  EXPECT_THROW(dm::run_world(2,
                             [&](dm::Communicator& comm) {
                               (void)dt::train_distributed(comm, config);
                             }),
               std::invalid_argument);
}

TEST(Trainer, HierarchicalKnobTrainsIdentically) {
  // Flat vs hierarchical allreduce are different data paths over the same
  // arithmetic; final metrics must agree almost exactly (float ordering).
  auto flat_config = tiny_config();
  auto hier_config = tiny_config();
  hier_config.knobs.hierarchical_allreduce = true;
  double flat_loss = 0.0, hier_loss = 0.0;
  dm::WorldOptions options;
  options.topology = dlscale::net::Topology(2, 2, 2);  // 2 nodes x 2 GPUs
  options.profile = dlscale::net::MpiProfile::ideal();
  options.timing = false;
  dm::run_world(options, [&](dm::Communicator& comm) {
    const auto report = dt::train_distributed(comm, flat_config);
    if (comm.rank() == 0) flat_loss = report.epochs.back().train_loss;
  });
  dm::run_world(options, [&](dm::Communicator& comm) {
    const auto report = dt::train_distributed(comm, hier_config);
    if (comm.rank() == 0) hier_loss = report.epochs.back().train_loss;
  });
  EXPECT_NEAR(flat_loss, hier_loss, 5e-3);
}

TEST(Trainer, EvaluateScoresPerfectModelAsHighMiou) {
  // Sanity: evaluate() on an untrained model gives low mIOU; the range is
  // checked rather than a fixed value.
  dlscale::util::Rng rng(1);
  dlscale::models::MiniDeepLabV3Plus model(
      {.in_channels = 3, .num_classes = 4, .input_size = 16, .width = 4}, rng);
  dlscale::data::SyntheticShapes dataset(
      {.image_size = 16, .num_classes = 4, .max_shapes = 2, .seed = 99});
  const auto [miou, accuracy] = dt::evaluate(model, dataset, 0, 8, 4);
  EXPECT_GE(miou, 0.0);
  EXPECT_LE(miou, 1.0);
  EXPECT_GE(accuracy, 0.0);
  EXPECT_LE(accuracy, 1.0);
}

TEST(Trainer, BroadcastInitialStateAlignsDifferentSeeds) {
  // With broadcast on, ranks start from rank-dependent seeds but must end
  // with identical (reduced) metrics — and the same metrics as a run
  // where every rank shares rank 0's seed directly.
  auto with_broadcast = tiny_config();
  with_broadcast.broadcast_initial_state = true;
  auto shared_seed = tiny_config();
  shared_seed.broadcast_initial_state = false;

  double miou_broadcast = 0.0, miou_shared = 0.0;
  dm::run_world(2, [&](dm::Communicator& comm) {
    const auto report = dt::train_distributed(comm, with_broadcast);
    if (comm.rank() == 0) miou_broadcast = report.final_miou();
  });
  dm::run_world(2, [&](dm::Communicator& comm) {
    const auto report = dt::train_distributed(comm, shared_seed);
    if (comm.rank() == 0) miou_shared = report.final_miou();
  });
  // Rank 0's init seed is `seed` in both cases, so the runs are identical.
  EXPECT_DOUBLE_EQ(miou_broadcast, miou_shared);
}

TEST(Trainer, AugmentedTrainingStillConverges) {
  auto config = tiny_config();
  config.augment = true;
  config.epochs = 3;
  dm::run_world(2, [&](dm::Communicator& comm) {
    const auto report = dt::train_distributed(comm, config);
    EXPECT_LT(report.epochs.back().train_loss, report.epochs.front().train_loss * 1.2);
    EXPECT_GE(report.final_miou(), 0.0);
  });
}
