// The gradient-ready pipeline: backward streams finalized gradients into
// a GradSink in exact reverse parameters() order with a staggered virtual
// timeline, Horovod sees realistic ready_at values, and the fusion
// threshold becomes observable from real training runs.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "dlscale/models/resnet.hpp"
#include "dlscale/train/trainer.hpp"
#include "../support/simd_param.hpp"

namespace dt = dlscale::train;
namespace dm = dlscale::mpi;
namespace dmo = dlscale::models;
namespace dg = dlscale::gpu;
using dlscale::nn::Parameter;
using dlscale::tensor::Tensor;

namespace {

/// Records every grad_ready notification from a TimedGradStream.
struct Recorded {
  std::vector<std::string> names;
  std::vector<double> ready_at;
};

template <typename Model>
Recorded record_backward(Model& model, const Tensor& input, double efficiency = 0.25) {
  Recorded rec;
  dt::TimedGradStream stream(dg::ComputeModel(dg::DeviceSpec::v100_summit(), efficiency),
                             [&rec](Parameter& p, double t) {
                               rec.names.push_back(p.name);
                               rec.ready_at.push_back(t);
                             });
  const Tensor logits = model.forward(input, /*train=*/true);
  stream.begin_step(0.0);
  model.backward(Tensor::full(logits.shape(), 0.01f), &stream);
  return rec;
}

template <typename Model>
void expect_reverse_parameter_stream(Model& model, const Recorded& rec) {
  const auto params = model.parameters();
  ASSERT_EQ(rec.names.size(), params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    EXPECT_EQ(rec.names[i], params[params.size() - 1 - i]->name) << "position " << i;
  }
  ASSERT_FALSE(rec.ready_at.empty());
  EXPECT_GT(rec.ready_at.front(), 0.0);  // every layer pays launch overhead
  for (std::size_t i = 1; i < rec.ready_at.size(); ++i) {
    EXPECT_GE(rec.ready_at[i], rec.ready_at[i - 1]) << "position " << i;
  }
  EXPECT_GT(rec.ready_at.back(), rec.ready_at.front());  // genuinely staggered
}

dt::TrainConfig tiny_config() {
  dt::TrainConfig config;
  config.model = {.in_channels = 3, .num_classes = 4, .input_size = 16, .width = 4};
  config.dataset = {.image_size = 16, .num_classes = 4, .max_shapes = 2, .noise = 0.1f,
                    .seed = 99};
  config.train_samples = 32;
  config.eval_samples = 8;
  config.batch_per_rank = 2;
  config.epochs = 2;
  config.knobs.cycle_time_s = 1e-4;
  return config;
}

/// Wide enough that one step's gradients (~4 MB) overflow a 2 MiB fusion
/// buffer, with a cycle time long enough that a single negotiation cycle
/// catches the whole backward timeline.
dt::TrainConfig fusion_config(std::size_t fusion_threshold) {
  dt::TrainConfig config;
  config.model = {.in_channels = 3, .num_classes = 4, .input_size = 16, .width = 48};
  config.dataset = {.image_size = 16, .num_classes = 4, .max_shapes = 2, .noise = 0.1f,
                    .seed = 99};
  config.train_samples = 8;
  config.eval_samples = 4;
  config.batch_per_rank = 2;
  config.epochs = 1;
  config.knobs.fusion_threshold = fusion_threshold;
  config.knobs.cycle_time_s = 1.0;
  return config;
}

class GradPipeline : public dlscale::testing::SimdLevelTest {};

}  // namespace

TEST_P(GradPipeline, DeepLabStreamsReverseParameterOrder) {
  dlscale::util::Rng rng(3);
  dmo::MiniDeepLabV3Plus model({.in_channels = 3, .num_classes = 4, .input_size = 16, .width = 4},
                               rng);
  const Tensor input = Tensor::randn({2, 3, 16, 16}, rng);
  const Recorded rec = record_backward(model, input);
  expect_reverse_parameter_stream(model, rec);
}

TEST_P(GradPipeline, SeparableBackboneStreamsReverseParameterOrder) {
  dlscale::util::Rng rng(4);
  dmo::MiniDeepLabV3Plus model({.in_channels = 3, .num_classes = 4, .input_size = 16, .width = 4,
                                .separable_backbone = true},
                               rng);
  const Tensor input = Tensor::randn({1, 3, 16, 16}, rng);
  const Recorded rec = record_backward(model, input);
  expect_reverse_parameter_stream(model, rec);
}

TEST_P(GradPipeline, ResNetStreamsReverseParameterOrder) {
  dlscale::util::Rng rng(5);
  dmo::MiniResNet model({.in_channels = 3, .num_classes = 4, .input_size = 16, .width = 8,
                         .blocks_per_stage = 2},
                        rng);
  const Tensor input = Tensor::randn({2, 3, 16, 16}, rng);
  const Recorded rec = record_backward(model, input);
  expect_reverse_parameter_stream(model, rec);
}

TEST_P(GradPipeline, HigherEfficiencyShortensTheTimeline) {
  dlscale::util::Rng rng_a(6), rng_b(6);
  dmo::MiniDeepLabV3Plus slow({.input_size = 16, .width = 4}, rng_a);
  dmo::MiniDeepLabV3Plus fast({.input_size = 16, .width = 4}, rng_b);
  const Tensor input = Tensor::randn({2, 3, 16, 16}, rng_a);
  const Recorded rec_slow = record_backward(slow, input, /*efficiency=*/0.1);
  const Recorded rec_fast = record_backward(fast, input, /*efficiency=*/0.5);
  ASSERT_EQ(rec_slow.ready_at.size(), rec_fast.ready_at.size());
  EXPECT_GT(rec_slow.ready_at.back(), rec_fast.ready_at.back());
}

TEST_P(GradPipeline, SinkIsOptionalAndGradsMatch) {
  // Streaming must be observation-only: parameter gradients are bitwise
  // identical with and without a sink attached.
  dlscale::util::Rng rng_a(7), rng_b(7);
  dmo::MiniDeepLabV3Plus with_sink({.input_size = 16, .width = 4}, rng_a);
  dmo::MiniDeepLabV3Plus without({.input_size = 16, .width = 4}, rng_b);
  const Tensor input = Tensor::randn({2, 3, 16, 16}, rng_a);
  const Recorded rec = record_backward(with_sink, input);
  ASSERT_FALSE(rec.names.empty());
  const Tensor logits = without.forward(input, /*train=*/true);
  without.backward(Tensor::full(logits.shape(), 0.01f));
  const auto pa = with_sink.parameters();
  const auto pb = without.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    for (std::size_t j = 0; j < pa[i]->grad.numel(); ++j) {
      ASSERT_EQ(std::bit_cast<std::uint32_t>(pa[i]->grad.data()[j]),
                std::bit_cast<std::uint32_t>(pb[i]->grad.data()[j]))
          << pa[i]->name << "[" << j << "]";
    }
  }
}

TEST_P(GradPipeline, FusionThresholdObservableFromRealTraining) {
  // The paper's fusion-threshold knob must be non-degenerate on the real
  // training path: a 2 MiB buffer forces several collective launches per
  // step, a 64 MiB buffer fuses each step into exactly one.
  const auto small = fusion_config(2 << 20);
  const auto large = fusion_config(64 << 20);
  std::uint64_t small_batches = 0, large_batches = 0;
  long steps = 0;
  dm::run_world(2, [&](dm::Communicator& comm) {
    const auto report = dt::train_distributed(comm, small);
    if (comm.rank() == 0) {
      small_batches = report.hvd_stats.fused_batches;
      steps = report.steps;
    }
  });
  dm::run_world(2, [&](dm::Communicator& comm) {
    const auto report = dt::train_distributed(comm, large);
    if (comm.rank() == 0) large_batches = report.hvd_stats.fused_batches;
  });
  ASSERT_GT(steps, 0);
  EXPECT_EQ(large_batches, static_cast<std::uint64_t>(steps));  // one launch per step
  EXPECT_GT(small_batches, large_batches);
  EXPECT_GT(small_batches, static_cast<std::uint64_t>(steps));  // >1 launch per step
}

TEST_P(GradPipeline, SerialMatchesSingleRankDistributedBitwise) {
  // Allreduce over a world of one (pack, sum, unpack, divide by 1.0f) is
  // a bitwise identity, so the streamed distributed path must reproduce
  // the serial reference exactly.
  const auto config = tiny_config();
  const auto serial = dt::train_serial(config, /*equivalent_world=*/1);
  dt::TrainReport distributed;
  dm::run_world(1, [&](dm::Communicator& comm) {
    distributed = dt::train_distributed(comm, config);
  });
  ASSERT_EQ(serial.epochs.size(), distributed.epochs.size());
  for (std::size_t e = 0; e < serial.epochs.size(); ++e) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(serial.epochs[e].train_loss),
              std::bit_cast<std::uint64_t>(distributed.epochs[e].train_loss))
        << "epoch " << e;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(serial.epochs[e].eval_miou),
              std::bit_cast<std::uint64_t>(distributed.epochs[e].eval_miou))
        << "epoch " << e;
  }
}

INSTANTIATE_TEST_SUITE_P(SimdLevels, GradPipeline,
                         ::testing::ValuesIn(
                             dlscale::testing::simd_levels_under_test()),
                         dlscale::testing::simd_param_name);
