#include "dlscale/net/profile.hpp"

#include <gtest/gtest.h>

namespace dn = dlscale::net;

TEST(LinkParams, AlphaBetaTime) {
  const dn::LinkParams link{1e-6, 1e9};
  EXPECT_DOUBLE_EQ(link.time(0), 1e-6);
  EXPECT_DOUBLE_EQ(link.time(1'000'000), 1e-6 + 1e-3);
}

TEST(MpiProfile, FactoriesHaveNames) {
  EXPECT_EQ(dn::MpiProfile::spectrum_like().name, "SpectrumMPI");
  EXPECT_EQ(dn::MpiProfile::mvapich2_gdr_like().name, "MVAPICH2-GDR");
  EXPECT_EQ(dn::MpiProfile::ideal().name, "ideal");
}

// The relationships below are the load-bearing facts the reproduction
// depends on; if a calibration edit breaks one of them, every downstream
// figure silently changes shape.

TEST(MpiProfile, GdrWindowIsMuchLargerInMvapich) {
  const auto spectrum = dn::MpiProfile::spectrum_like();
  const auto mvapich = dn::MpiProfile::mvapich2_gdr_like();
  EXPECT_GT(mvapich.gdr_limit, 100 * spectrum.gdr_limit);
}

TEST(MpiProfile, MvapichStagingPipelineIsFaster) {
  const auto spectrum = dn::MpiProfile::spectrum_like();
  const auto mvapich = dn::MpiProfile::mvapich2_gdr_like();
  EXPECT_GT(mvapich.staging_bandwidth_Bps, 2 * spectrum.staging_bandwidth_Bps);
  EXPECT_LT(mvapich.staging_overhead_s, spectrum.staging_overhead_s);
}

TEST(MpiProfile, MvapichHasLowerDeviceOpOverhead) {
  EXPECT_LT(dn::MpiProfile::mvapich2_gdr_like().device_op_overhead_s,
            dn::MpiProfile::spectrum_like().device_op_overhead_s);
}

TEST(MpiProfile, OnlyMvapichStripesAcrossRails) {
  // Summit is dual-rail for both libraries, but only MVAPICH2-GDR stripes
  // a single large message across both rails.
  const auto mvapich = dn::MpiProfile::mvapich2_gdr_like();
  const auto spectrum = dn::MpiProfile::spectrum_like();
  EXPECT_EQ(mvapich.rails, 2);
  EXPECT_EQ(spectrum.rails, 2);
  EXPECT_LT(mvapich.rail_stripe_min, std::size_t{1} << 30);
  EXPECT_EQ(spectrum.rail_stripe_min, ~std::size_t{0});
}

TEST(MpiProfile, SpectrumDeviceCollectivesAvoidRing) {
  const auto spectrum = dn::MpiProfile::spectrum_like();
  EXPECT_EQ(spectrum.allreduce_algo(64 << 20, /*device=*/false), dn::AllreduceAlgo::kRing);
  EXPECT_EQ(spectrum.allreduce_algo(64 << 20, /*device=*/true), dn::AllreduceAlgo::kRabenseifner);
  const auto mvapich = dn::MpiProfile::mvapich2_gdr_like();
  EXPECT_EQ(mvapich.allreduce_algo(64 << 20, /*device=*/true), dn::AllreduceAlgo::kRing);
}

TEST(MpiProfile, AllreduceAlgoSelection) {
  const auto p = dn::MpiProfile::mvapich2_gdr_like();
  EXPECT_EQ(p.allreduce_algo(1024), dn::AllreduceAlgo::kRecursiveDoubling);
  EXPECT_EQ(p.allreduce_algo(64 << 10), dn::AllreduceAlgo::kRabenseifner);
  EXPECT_EQ(p.allreduce_algo(16 << 20), dn::AllreduceAlgo::kRing);
}

TEST(MpiProfile, IdealIsEffectivelyFree) {
  const auto p = dn::MpiProfile::ideal();
  EXPECT_DOUBLE_EQ(p.per_op_overhead_s, 0.0);
  EXPECT_DOUBLE_EQ(p.ib.latency_s, 0.0);
  EXPECT_LT(p.ib.time(1 << 30), 1e-6);
}

TEST(MpiProfile, RingAbandonedWhenSegmentsTooSmall) {
  const auto p = dn::MpiProfile::mvapich2_gdr_like();
  // 1 MiB over 132 ranks -> ~8 KiB segments: below min_ring_chunk.
  EXPECT_EQ(p.allreduce_algo(1 << 20, false, 132), dn::AllreduceAlgo::kRabenseifner);
  // Same size over 12 ranks -> ~85 KiB segments: ring stays.
  EXPECT_EQ(p.allreduce_algo(1 << 20, false, 12), dn::AllreduceAlgo::kRing);
  // Large messages keep the ring even at 132 ranks.
  EXPECT_EQ(p.allreduce_algo(64 << 20, false, 132), dn::AllreduceAlgo::kRing);
}
