#include "dlscale/net/cost_model.hpp"

#include <gtest/gtest.h>

namespace dn = dlscale::net;

namespace {

dn::CostModel make_model(dn::MpiProfile profile, int nodes = 2) {
  return dn::CostModel(dn::Topology::summit(nodes), std::move(profile));
}

}  // namespace

TEST(CostModel, IntraSocketUsesNvlink) {
  const auto model = make_model(dn::MpiProfile::mvapich2_gdr_like());
  const auto cost = model.message(0, 1, 1 << 20, dn::MemSpace::kHost);
  EXPECT_FALSE(cost.inter_node);
  // 1 MiB over ~46 GB/s is tens of microseconds.
  EXPECT_GT(cost.wire_s, 1e-5);
  EXPECT_LT(cost.wire_s, 1e-4);
}

TEST(CostModel, InterNodeFlagsIbUsage) {
  const auto model = make_model(dn::MpiProfile::mvapich2_gdr_like());
  const auto cost = model.message(0, 6, 1 << 20, dn::MemSpace::kHost);
  EXPECT_TRUE(cost.inter_node);
}

TEST(CostModel, LargeDeviceMessageStagesUnderSpectrum) {
  const auto spectrum = make_model(dn::MpiProfile::spectrum_like());
  const auto mvapich = make_model(dn::MpiProfile::mvapich2_gdr_like());
  const std::size_t bytes = 4 << 20;  // 4 MiB: above Spectrum's GDR limit, below MVAPICH's
  const double t_spectrum = spectrum.message(0, 6, bytes, dn::MemSpace::kDevice).total();
  const double t_mvapich = mvapich.message(0, 6, bytes, dn::MemSpace::kDevice).total();
  // Spectrum's staged pipeline is several times slower at this size.
  EXPECT_GT(t_spectrum, 2.5 * t_mvapich);
}

TEST(CostModel, HostPathsAreComparableAcrossLibraries) {
  const auto spectrum = make_model(dn::MpiProfile::spectrum_like());
  const auto mvapich = make_model(dn::MpiProfile::mvapich2_gdr_like());
  const std::size_t bytes = 256 << 10;
  const double t_spectrum = spectrum.message(0, 6, bytes, dn::MemSpace::kHost).total();
  const double t_mvapich = mvapich.message(0, 6, bytes, dn::MemSpace::kHost).total();
  // Host traffic does not stage; the gap should stay small (< 2x).
  EXPECT_LT(t_spectrum / t_mvapich, 2.0);
}

TEST(CostModel, StripingEngagesAboveThreshold) {
  const auto model = make_model(dn::MpiProfile::mvapich2_gdr_like());
  EXPECT_FALSE(model.message(0, 6, 512 << 10, dn::MemSpace::kHost).striped);
  EXPECT_TRUE(model.message(0, 6, 2 << 20, dn::MemSpace::kHost).striped);
}

TEST(CostModel, StripedBandwidthScalesWithRails) {
  const auto model = make_model(dn::MpiProfile::mvapich2_gdr_like());
  const auto just_below = model.message(0, 6, (1 << 20) - 1, dn::MemSpace::kHost);
  const auto just_above = model.message(0, 6, 1 << 20, dn::MemSpace::kHost);
  EXPECT_NEAR(just_below.wire_s / just_above.wire_s, 2.0, 0.01);
}

TEST(CostModel, RendezvousThresholdRespectsSpace) {
  const auto model = make_model(dn::MpiProfile::mvapich2_gdr_like());
  EXPECT_FALSE(model.is_rendezvous(16 << 10, dn::MemSpace::kDevice));
  EXPECT_TRUE(model.is_rendezvous(64 << 10, dn::MemSpace::kDevice));
  EXPECT_FALSE(model.is_rendezvous(64 << 10, dn::MemSpace::kHost));
  EXPECT_TRUE(model.is_rendezvous(128 << 10, dn::MemSpace::kHost));
}

TEST(CostModel, ControlLatencyOrdersByDistance) {
  const auto model = make_model(dn::MpiProfile::spectrum_like());
  const double self = model.control_latency(0, 0);
  const double nvlink = model.control_latency(0, 1);
  const double internode = model.control_latency(0, 6);
  EXPECT_LT(self, nvlink);
  EXPECT_LT(nvlink, internode + 1e-9);
}

TEST(NicContention, SerialisesConcurrentTransfers) {
  dn::NicContention nic(2, 1);
  const double first = nic.reserve(0, 1, 0.0, 1.0, false);
  const double second = nic.reserve(0, 1, 0.0, 1.0, false);
  EXPECT_DOUBLE_EQ(first, 1.0);
  EXPECT_DOUBLE_EQ(second, 2.0);
}

TEST(NicContention, IndependentNodePairsDoNotConflict) {
  dn::NicContention nic(4, 1);
  const double a = nic.reserve(0, 1, 0.0, 1.0, false);
  const double b = nic.reserve(2, 3, 0.0, 1.0, false);
  EXPECT_DOUBLE_EQ(a, 1.0);
  EXPECT_DOUBLE_EQ(b, 1.0);
}

TEST(NicContention, TwoRailsCarryTwoTransfers) {
  dn::NicContention nic(2, 2);
  EXPECT_DOUBLE_EQ(nic.reserve(0, 1, 0.0, 1.0, false), 1.0);
  EXPECT_DOUBLE_EQ(nic.reserve(0, 1, 0.0, 1.0, false), 1.0);
  EXPECT_DOUBLE_EQ(nic.reserve(0, 1, 0.0, 1.0, false), 2.0);
}

TEST(NicContention, StripedTransferOccupiesAllRails) {
  dn::NicContention nic(2, 2);
  EXPECT_DOUBLE_EQ(nic.reserve(0, 1, 0.0, 1.0, true), 1.0);
  // Nothing can start before the striped transfer finishes.
  EXPECT_DOUBLE_EQ(nic.reserve(0, 1, 0.0, 0.5, false), 1.5);
}

TEST(NicContention, ResetClearsTimelines) {
  dn::NicContention nic(2, 1);
  (void)nic.reserve(0, 1, 0.0, 5.0, false);
  nic.reset();
  EXPECT_DOUBLE_EQ(nic.reserve(0, 1, 0.0, 1.0, false), 1.0);
}

TEST(NicContention, IntraNodeReservationThrows) {
  dn::NicContention nic(2, 1);
  EXPECT_THROW(nic.reserve(1, 1, 0.0, 1.0, false), std::logic_error);
}

TEST(CostModel, NonCudaAwareProfileRejectsDeviceBuffers) {
  auto profile = dn::MpiProfile::spectrum_like();
  profile.cuda_aware = false;
  const auto model = make_model(profile);
  EXPECT_THROW((void)model.message(0, 6, 1024, dn::MemSpace::kDevice), std::logic_error);
}

TEST(CostModel, StagedDevicePathIsPipelineDelayNotNicOccupancy) {
  // Spectrum's 4 MiB device transfer: the NIC is busy only for the wire
  // portion; the staging slack appears as pipeline_extra_s.
  const auto model = make_model(dn::MpiProfile::spectrum_like());
  const std::size_t bytes = 4 << 20;
  const auto cost = model.message(0, 6, bytes, dn::MemSpace::kDevice);
  const double wire_expected =
      static_cast<double>(bytes) / dn::MpiProfile::spectrum_like().ib.bandwidth_Bps;
  EXPECT_NEAR(cost.wire_s, wire_expected, 1e-6);
  EXPECT_GT(cost.pipeline_extra_s, cost.wire_s);  // staging dominates end-to-end
  const double total_expected =
      static_cast<double>(bytes) / dn::MpiProfile::spectrum_like().staging_bandwidth_Bps;
  EXPECT_NEAR(cost.wire_s + cost.pipeline_extra_s, total_expected, 1e-5);
}

TEST(CostModel, GdrPathHasNoPipelineExtra) {
  const auto model = make_model(dn::MpiProfile::mvapich2_gdr_like());
  const auto cost = model.message(0, 6, 4 << 20, dn::MemSpace::kDevice);  // within GDR window
  EXPECT_DOUBLE_EQ(cost.pipeline_extra_s, 0.0);
}

TEST(NicContention, BackfillsEarlierGaps) {
  // A booking made later in real time but ready earlier in virtual time
  // must slot into the free gap before existing reservations.
  dn::NicContention nic(2, 1);
  EXPECT_DOUBLE_EQ(nic.reserve(0, 1, 10.0, 1.0, false), 11.0);
  // Ready at t=0, 1s long: fits entirely before the [10, 11) booking.
  EXPECT_DOUBLE_EQ(nic.reserve(0, 1, 0.0, 1.0, false), 1.0);
  // Ready at t=9.5: the gap [9.5, 10) is too small; queues after 11.
  EXPECT_DOUBLE_EQ(nic.reserve(0, 1, 9.5, 1.0, false), 12.0);
}

TEST(NicContention, ZeroWireControlMessagesAreFree) {
  dn::NicContention nic(2, 1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(nic.reserve(0, 1, 5.0 + i, 0.0, false), 5.0 + i);
  }
  // The rails are still completely free.
  EXPECT_DOUBLE_EQ(nic.reserve(0, 1, 0.0, 1.0, false), 1.0);
}
