#include "dlscale/net/topology.hpp"

#include <gtest/gtest.h>

namespace dn = dlscale::net;

TEST(Topology, SummitShape) {
  const auto topo = dn::Topology::summit(22);
  EXPECT_EQ(topo.world_size(), 132);
  EXPECT_EQ(topo.nodes(), 22);
  EXPECT_EQ(topo.gpus_per_node(), 6);
  EXPECT_EQ(topo.gpus_per_socket(), 3);
}

TEST(Topology, BlockPlacement) {
  const auto topo = dn::Topology::summit(2);
  EXPECT_EQ(topo.node_of(0), 0);
  EXPECT_EQ(topo.node_of(5), 0);
  EXPECT_EQ(topo.node_of(6), 1);
  EXPECT_EQ(topo.local_rank(7), 1);
  EXPECT_EQ(topo.local_rank(0), 0);
}

TEST(Topology, SocketAssignment) {
  const auto topo = dn::Topology::summit(1);
  EXPECT_EQ(topo.socket_of_local(0), 0);
  EXPECT_EQ(topo.socket_of_local(2), 0);
  EXPECT_EQ(topo.socket_of_local(3), 1);
  EXPECT_EQ(topo.socket_of_local(5), 1);
}

TEST(Topology, HopClassification) {
  const auto topo = dn::Topology::summit(2);
  EXPECT_EQ(topo.hop(0, 0), dn::HopClass::kSelf);
  EXPECT_EQ(topo.hop(0, 2), dn::HopClass::kIntraSocket);
  EXPECT_EQ(topo.hop(0, 4), dn::HopClass::kInterSocket);
  EXPECT_EQ(topo.hop(0, 6), dn::HopClass::kInterNode);
  EXPECT_EQ(topo.hop(11, 5), dn::HopClass::kInterNode);
}

TEST(Topology, SameNode) {
  const auto topo = dn::Topology::summit(2);
  EXPECT_TRUE(topo.same_node(0, 5));
  EXPECT_FALSE(topo.same_node(5, 6));
}

TEST(Topology, SingleNodeFactory) {
  const auto topo = dn::Topology::single_node(4);
  EXPECT_EQ(topo.world_size(), 4);
  EXPECT_EQ(topo.hop(0, 3), dn::HopClass::kIntraSocket);
}

TEST(Topology, InvalidArgumentsThrow) {
  EXPECT_THROW(dn::Topology(0, 6, 3), std::invalid_argument);
  EXPECT_THROW(dn::Topology(1, 0, 1), std::invalid_argument);
  EXPECT_THROW(dn::Topology(1, 6, 4), std::invalid_argument);
  EXPECT_THROW(dn::Topology(1, 6, 7), std::invalid_argument);
}

TEST(Topology, RankOutOfRangeThrows) {
  const auto topo = dn::Topology::summit(1);
  EXPECT_THROW((void)topo.node_of(6), std::out_of_range);
  EXPECT_THROW((void)topo.node_of(-1), std::out_of_range);
  EXPECT_THROW((void)topo.hop(0, 6), std::out_of_range);
}

TEST(Topology, DescribeMentionsShape) {
  const auto text = dn::Topology::summit(22).describe();
  EXPECT_NE(text.find("22"), std::string::npos);
  EXPECT_NE(text.find("132"), std::string::npos);
}
