// The multi-model registry: named models with independent configs,
// per-model stats/reload/shutdown isolation, and named 404s.
#include "dlscale/serve/model_registry.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dlscale/util/rng.hpp"
#include "serve_test_support.hpp"

namespace ds = dlscale::serve;
namespace dt = dlscale::tensor;
namespace dst = dlscale::serve_testing;

namespace {

ds::ServeConfig config_for(int workers) {
  ds::ServeConfig config;
  config.model = dst::small_config();
  config.workers = workers;
  config.max_batch = 4;
  config.max_wait_us = 200;
  config.queue_capacity = 64;
  return config;
}

dt::Tensor random_image(dlscale::util::Rng& rng) {
  const auto m = dst::small_config();
  return dt::Tensor::randn({1, m.in_channels, m.input_size, m.input_size}, rng, 1.0f);
}

}  // namespace

TEST(ModelRegistry, RegistersAndServesNamedModels) {
  dst::TempFile ckpt_a("registry_a.bin");
  dst::TempFile ckpt_b("registry_b.bin");
  dst::write_checkpoint(dst::small_config(), 11, ckpt_a.path);
  dst::write_checkpoint(dst::small_config(), 22, ckpt_b.path);
  auto ref_a = dst::load_reference(dst::small_config(), ckpt_a.path);
  auto ref_b = dst::load_reference(dst::small_config(), ckpt_b.path);

  ds::ModelRegistry registry;
  registry.add_model("alpha", config_for(1), ckpt_a.path);
  registry.add_model("beta", config_for(2), ckpt_b.path);
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.names(), (std::vector<std::string>{"alpha", "beta"}));

  // Each name serves ITS weights: same image, different (per-checkpoint)
  // bitwise-exact logits.
  dlscale::util::Rng rng(3);
  const dt::Tensor image = random_image(rng);
  const dt::Tensor expect_a = ref_a.forward(image, false);
  const dt::Tensor expect_b = ref_b.forward(image, false);
  auto fa = registry.at("alpha").submit(image);
  auto fb = registry.at("beta").submit(image);
  ASSERT_TRUE(fa.has_value() && fb.has_value());
  const ds::Response ra = fa->get();
  const ds::Response rb = fb->get();
  for (std::size_t j = 0; j < expect_a.numel(); ++j) ASSERT_EQ(ra.logits[j], expect_a[j]);
  for (std::size_t j = 0; j < expect_b.numel(); ++j) ASSERT_EQ(rb.logits[j], expect_b[j]);

  // Per-model counters are isolated.
  EXPECT_EQ(registry.stats("alpha").accepted, 1u);
  EXPECT_EQ(registry.stats("beta").accepted, 1u);
  const auto all = registry.stats_all();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].first, "alpha");
  EXPECT_EQ(all[1].first, "beta");
}

TEST(ModelRegistry, AddModelOverwritesConfigName) {
  dst::TempFile ckpt("registry_name.bin");
  dst::write_checkpoint(dst::small_config(), 11, ckpt.path);
  ds::ModelRegistry registry;
  ds::ServeConfig config = config_for(1);
  config.name = "wrong";  // registry key wins
  ds::Server& server = registry.add_model("right", config, ckpt.path);
  EXPECT_EQ(server.name(), "right");
}

TEST(ModelRegistry, DuplicateNameThrows) {
  dst::TempFile ckpt("registry_dup.bin");
  dst::write_checkpoint(dst::small_config(), 11, ckpt.path);
  ds::ModelRegistry registry;
  registry.add_model("seg", config_for(1), ckpt.path);
  EXPECT_THROW(registry.add_model("seg", config_for(1), ckpt.path), std::invalid_argument);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(ModelRegistry, UnknownModelErrorNamesKnownSet) {
  dst::TempFile ckpt("registry_unknown.bin");
  dst::write_checkpoint(dst::small_config(), 11, ckpt.path);
  ds::ModelRegistry registry;
  registry.add_model("alpha", config_for(1), ckpt.path);
  EXPECT_EQ(registry.find("nope"), nullptr);
  try {
    (void)registry.at("nope");
    FAIL() << "unknown model resolved";
  } catch (const ds::UnknownModelError& e) {
    EXPECT_EQ(e.model(), "nope");
    EXPECT_EQ(e.known(), (std::vector<std::string>{"alpha"}));
  }
  EXPECT_THROW(registry.reload("nope", ckpt.path), ds::UnknownModelError);
  EXPECT_THROW((void)registry.stats("nope"), ds::UnknownModelError);
  EXPECT_THROW(registry.shutdown_model("nope"), ds::UnknownModelError);
}

TEST(ModelRegistry, PerModelReloadBumpsOnlyThatModel) {
  dst::TempFile ckpt_a("registry_reload_a.bin");
  dst::TempFile ckpt_b("registry_reload_b.bin");
  dst::write_checkpoint(dst::small_config(), 11, ckpt_a.path);
  dst::write_checkpoint(dst::small_config(), 22, ckpt_b.path);
  ds::ModelRegistry registry;
  registry.add_model("alpha", config_for(1), ckpt_a.path);
  registry.add_model("beta", config_for(1), ckpt_a.path);
  registry.reload("alpha", ckpt_b.path);
  EXPECT_EQ(registry.stats("alpha").model_version, 2);
  EXPECT_EQ(registry.stats("alpha").reloads, 1u);
  EXPECT_EQ(registry.stats("beta").model_version, 1);
  EXPECT_EQ(registry.stats("beta").reloads, 0u);
  // Reload-with-quantize flips the precision of that model only.
  ds::QuantizeSpec spec;
  spec.precision = dlscale::nn::Precision::kInt8;
  registry.reload("alpha", ckpt_b.path, spec);
  EXPECT_STREQ(registry.stats("alpha").precision, "int8");
  EXPECT_STREQ(registry.stats("beta").precision, "fp32");
}

TEST(ModelRegistry, ShutdownModelDrainsOnlyThatModel) {
  dst::TempFile ckpt("registry_shutdown_one.bin");
  dst::write_checkpoint(dst::small_config(), 11, ckpt.path);
  ds::ModelRegistry registry;
  registry.add_model("alpha", config_for(1), ckpt.path);
  registry.add_model("beta", config_for(1), ckpt.path);
  registry.shutdown_model("alpha");
  dlscale::util::Rng rng(4);
  // alpha sheds with kClosed; beta still serves; alpha's entry remains
  // visible for /stats.
  ds::RejectReason why = ds::RejectReason::kNone;
  EXPECT_FALSE(registry.at("alpha").submit(random_image(rng), &why).has_value());
  EXPECT_EQ(why, ds::RejectReason::kClosed);
  auto f = registry.at("beta").submit(random_image(rng));
  ASSERT_TRUE(f.has_value());
  (void)f->get();
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.stats("alpha").rejected_closed, 1u);
}

TEST(ModelRegistry, ShutdownIsIdempotentAndFindSurvivesIt) {
  dst::TempFile ckpt("registry_shutdown_all.bin");
  dst::write_checkpoint(dst::small_config(), 11, ckpt.path);
  ds::ModelRegistry registry;
  registry.add_model("alpha", config_for(1), ckpt.path);
  // A resolved shared_ptr keeps the Server alive across shutdown — the
  // connection-thread lifetime contract.
  std::shared_ptr<ds::Server> pinned = registry.find("alpha");
  ASSERT_NE(pinned, nullptr);
  registry.shutdown();
  registry.shutdown();  // idempotent
  dlscale::util::Rng rng(5);
  EXPECT_FALSE(pinned->submit(random_image(rng)).has_value());
  EXPECT_EQ(pinned->stats().rejected_closed, 1u);
}
