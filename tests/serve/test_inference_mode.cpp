// Satellite invariant: inference forwards allocate NO backward state —
// no activation caches, no gradient tensors, no maxpool argmax. This is
// what lets a serving replica's memory footprint stay at
// weights + transient activations, independent of traffic served.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "dlscale/models/deeplab.hpp"
#include "dlscale/nn/layers.hpp"
#include "dlscale/nn/optimizer.hpp"
#include "dlscale/tensor/ops.hpp"
#include "dlscale/util/rng.hpp"
#include "serve_test_support.hpp"

namespace dmo = dlscale::models;
namespace dn = dlscale::nn;
namespace dt = dlscale::tensor;
namespace du = dlscale::util;
namespace dst = dlscale::serve_testing;

TEST(InferenceMode, EvalForwardLeavesNoCachesOrGrads) {
  du::Rng rng(3);
  dmo::MiniDeepLabV3Plus model(dst::small_config(), rng);
  EXPECT_EQ(model.cache_bytes(), 0u);  // fresh model: nothing cached

  const auto cfg = dst::small_config();
  const dt::Tensor x =
      dt::Tensor::randn({4, cfg.in_channels, cfg.input_size, cfg.input_size}, rng, 1.0f);
  (void)model.forward(x, /*train=*/false);

  EXPECT_EQ(model.cache_bytes(), 0u) << "inference forward cached activations";
  for (dn::Parameter* p : model.parameters()) {
    EXPECT_TRUE(p->grad.empty()) << p->name << " materialised a grad without training";
  }
}

TEST(InferenceMode, TrainForwardCachesAndBackwardNeedsThem) {
  du::Rng rng(4);
  dmo::MiniDeepLabV3Plus model(dst::small_config(), rng);
  const auto cfg = dst::small_config();
  const dt::Tensor x =
      dt::Tensor::randn({2, cfg.in_channels, cfg.input_size, cfg.input_size}, rng, 1.0f);
  const dt::Tensor logits = model.forward(x, /*train=*/true);
  EXPECT_GT(model.cache_bytes(), 0u);
  // Grads stay lazy until backward actually writes them.
  for (dn::Parameter* p : model.parameters()) EXPECT_TRUE(p->grad.empty()) << p->name;
  (void)model.backward(dt::Tensor::full(logits.shape(), 0.01f));
  for (dn::Parameter* p : model.parameters()) {
    EXPECT_FALSE(p->grad.empty()) << p->name << " missing grad after backward";
  }
}

TEST(InferenceMode, LayerCacheBytesTracksTrainForwards) {
  du::Rng rng(5);
  dn::ConvBnRelu block("b", 3, 8, 3, {1, 1, 1}, rng);
  EXPECT_EQ(block.cache_bytes(), 0u);
  const dt::Tensor x = dt::Tensor::randn({2, 3, 8, 8}, rng, 1.0f);
  (void)block.forward(x, false);
  EXPECT_EQ(block.cache_bytes(), 0u);
  (void)block.forward(x, true);
  // Conv caches its input (2*3*8*8 floats) plus BN/ReLU caches.
  EXPECT_GE(block.cache_bytes(), x.numel() * sizeof(float));
}

TEST(InferenceMode, MaxPoolEvalSkipsArgmaxAndMatchesBitwise) {
  du::Rng rng(6);
  const dt::Tensor x = dt::Tensor::randn({2, 4, 8, 8}, rng, 1.0f);
  std::vector<int> argmax;
  const dt::Tensor recorded = dt::maxpool2d(x, 2, 2, argmax);
  const dt::Tensor plain = dt::maxpool2d(x, 2, 2);
  ASSERT_EQ(recorded.numel(), plain.numel());
  for (std::size_t i = 0; i < plain.numel(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint32_t>(recorded[i]), std::bit_cast<std::uint32_t>(plain[i]));
  }
  // And the layer honours train=false: no cache, no argmax.
  dn::MaxPool2d layer("mp", 2, 2);
  (void)layer.forward(x, false);
  EXPECT_EQ(layer.cache_bytes(), 0u);
  (void)layer.forward(x, true);
  EXPECT_GT(layer.cache_bytes(), 0u);
}

TEST(InferenceMode, OptimizerConstructionMaterialisesGrads) {
  // Training intent is declared by building an optimizer — that is the
  // moment lazy grads become real (and zero-filled).
  du::Rng rng(7);
  dn::Conv2d conv("c", 3, 4, 3, {1, 1, 1}, /*bias=*/true, rng);
  for (dn::Parameter* p : conv.parameters()) EXPECT_TRUE(p->grad.empty());
  dn::SgdMomentum opt(conv.parameters(), {});
  for (dn::Parameter* p : conv.parameters()) {
    ASSERT_FALSE(p->grad.empty()) << p->name;
    EXPECT_FLOAT_EQ(p->grad.sum(), 0.0f) << p->name;
  }
}
