// Quantized serving path: a registry can load one checkpoint at fp32,
// bf16 or int8 (calibrating on the primary replica), the server reports
// the precision tag and splits request counters by precision, responses
// carry the precision that produced them, and a hot-reload can flip an
// fp32 deployment to int8 without dropping the strong reload guarantee.
#include <gtest/gtest.h>

#include <cmath>
#include <future>
#include <vector>

#include "dlscale/serve/registry.hpp"
#include "dlscale/serve/server.hpp"
#include "dlscale/util/rng.hpp"
#include "serve_test_support.hpp"

namespace ds = dlscale::serve;
namespace dn = dlscale::nn;
namespace dt = dlscale::tensor;
namespace dst = dlscale::serve_testing;

namespace {

dt::Tensor test_image(std::uint64_t seed) {
  dlscale::util::Rng rng(seed);
  const auto m = dst::small_config();
  // [0,1) pixels like the synthetic dataset, so the default uniform
  // calibration batch covers the request distribution.
  dt::Tensor img({1, m.in_channels, m.input_size, m.input_size});
  for (std::size_t i = 0; i < static_cast<std::size_t>(img.numel()); ++i) {
    img.ptr()[i] = static_cast<float>(rng.uniform());
  }
  return img;
}

float max_abs_diff(const dt::Tensor& a, const dt::Tensor& b) {
  float worst = 0.0f;
  for (std::size_t i = 0; i < static_cast<std::size_t>(a.numel()); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

}  // namespace

TEST(QuantizedRegistry, LoadsEachPrecisionAndStaysCloseToFp32) {
  dst::TempFile ckpt("dlscale_qreg.bin");
  dst::write_checkpoint(dst::small_config(), /*seed=*/21, ckpt.path);
  auto reference = dst::load_reference(dst::small_config(), ckpt.path);
  const dt::Tensor img = test_image(31);
  const dt::Tensor ref_logits = reference.forward(img, false);

  for (dn::Precision target : {dn::Precision::kBf16, dn::Precision::kInt8}) {
    ds::QuantizeSpec spec;
    spec.precision = target;
    ds::ReplicaRegistry registry(dst::small_config(), /*replica_count=*/2, ckpt.path, spec);
    EXPECT_EQ(registry.precision(), target);
    const auto set = registry.acquire();
    ASSERT_EQ(set->replicas.size(), 2u);
    EXPECT_EQ(set->precision, target);
    for (const auto& replica : set->replicas) {
      EXPECT_EQ(replica->precision(), target);
      const dt::Tensor out = replica->forward(img, false);
      // Same weights, reduced precision: close, not equal.
      EXPECT_LT(max_abs_diff(out, ref_logits), target == dn::Precision::kBf16 ? 0.1f : 1.0f)
          << dn::precision_name(target);
    }
  }
}

TEST(QuantizedRegistry, CallerSuppliedCalibrationImagesAreUsed) {
  dst::TempFile ckpt("dlscale_qreg_calib.bin");
  dst::write_checkpoint(dst::small_config(), 22, ckpt.path);
  ds::QuantizeSpec spec;
  spec.precision = dn::Precision::kInt8;
  const auto m = dst::small_config();
  dt::Tensor calib({2, m.in_channels, m.input_size, m.input_size});
  for (std::size_t i = 0; i < static_cast<std::size_t>(calib.numel()); ++i) {
    calib.ptr()[i] = static_cast<float>(i % 7) / 7.0f;
  }
  spec.calibration_images = calib;
  spec.calibration.observer = dn::ObserverKind::kPercentile;
  spec.calibration.percentile = 99.5;
  ds::ReplicaRegistry registry(m, 1, ckpt.path, spec);
  EXPECT_EQ(registry.precision(), dn::Precision::kInt8);
}

TEST(QuantizedServer, StatsCarryPrecisionTagAndSplitCounters) {
  dst::TempFile ckpt("dlscale_qserve_stats.bin");
  dst::write_checkpoint(dst::small_config(), 23, ckpt.path);
  ds::ServeConfig config;
  config.model = dst::small_config();
  config.workers = 1;
  config.max_batch = 4;
  config.quantize.precision = dn::Precision::kInt8;
  ds::Server server(config, ckpt.path);

  constexpr int kRequests = 6;
  std::vector<std::future<ds::Response>> futures;
  for (int i = 0; i < kRequests; ++i) {
    auto f = server.submit(test_image(40 + static_cast<std::uint64_t>(i)));
    ASSERT_TRUE(f.has_value());
    futures.push_back(std::move(*f));
  }
  for (auto& f : futures) {
    const ds::Response r = f.get();
    EXPECT_EQ(r.precision, dn::Precision::kInt8);
    EXPECT_EQ(static_cast<int>(r.labels.size()),
              config.model.input_size * config.model.input_size);
  }
  const ds::ServerStats stats = server.stats();
  EXPECT_STREQ(stats.precision, "int8");
  EXPECT_EQ(stats.quantized_requests, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(stats.fp32_requests, 0u);
  EXPECT_EQ(stats.completed, stats.fp32_requests + stats.quantized_requests);
}

TEST(QuantizedServer, HotReloadFlipsFp32DeploymentToInt8) {
  dst::TempFile ckpt("dlscale_qserve_reload.bin");
  dst::write_checkpoint(dst::small_config(), 24, ckpt.path);
  ds::ServeConfig config;
  config.model = dst::small_config();
  config.workers = 1;
  ds::Server server(config, ckpt.path);  // starts fp32

  auto f1 = server.submit(test_image(50));
  ASSERT_TRUE(f1.has_value());
  EXPECT_EQ(f1->get().precision, dn::Precision::kFp32);
  EXPECT_STREQ(server.stats().precision, "fp32");

  ds::QuantizeSpec spec;
  spec.precision = dn::Precision::kInt8;
  server.reload(ckpt.path, spec);  // same weights, new precision
  EXPECT_STREQ(server.stats().precision, "int8");
  EXPECT_EQ(server.model_version(), 2);

  auto f2 = server.submit(test_image(51));
  ASSERT_TRUE(f2.has_value());
  const ds::Response r2 = f2->get();
  EXPECT_EQ(r2.precision, dn::Precision::kInt8);
  EXPECT_EQ(r2.model_version, 2);

  const ds::ServerStats stats = server.stats();
  EXPECT_EQ(stats.reloads, 1u);
  EXPECT_EQ(stats.fp32_requests, 1u);
  EXPECT_EQ(stats.quantized_requests, 1u);

  // A reload back to plain fp32 restores bitwise-exact serving.
  server.reload(ckpt.path, ds::QuantizeSpec{});
  EXPECT_STREQ(server.stats().precision, "fp32");
}

TEST(QuantizedRegistry, BadCheckpointUnderQuantizeKeepsOldSetServing) {
  dst::TempFile good("dlscale_qreg_good.bin");
  dst::write_checkpoint(dst::small_config(), 25, good.path);
  ds::QuantizeSpec spec;
  spec.precision = dn::Precision::kBf16;
  ds::ReplicaRegistry registry(dst::small_config(), 1, good.path, spec);
  EXPECT_THROW(registry.reload("/nonexistent/ckpt.bin"), std::runtime_error);
  EXPECT_EQ(registry.version(), 1);
  EXPECT_EQ(registry.precision(), dn::Precision::kBf16);
}
