// serve::InferenceRunner: arena-backed per-worker forwards must produce
// the same bytes as plain owning-Tensor forwards, reuse the arena across
// batches, and keep outputs valid until the next run.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "dlscale/models/deeplab.hpp"
#include "dlscale/serve/runner.hpp"
#include "dlscale/tensor/ops.hpp"
#include "../support/simd_param.hpp"

namespace dmo = dlscale::models;
namespace ds = dlscale::serve;
namespace dt = dlscale::tensor;
namespace du = dlscale::util;

namespace {

dt::Tensor make_batch(int n, int channels, int size, std::uint64_t seed) {
  du::Rng rng(seed);
  return dt::Tensor::randn({n, channels, size, size}, rng, 0.5f);
}

class RunnerIdentity : public dlscale::testing::SimdLevelTest {};

TEST_P(RunnerIdentity, MatchesOwningForwardBitwise) {
  du::Rng rng(7);
  dmo::MiniDeepLabV3Plus model({.in_channels = 3, .num_classes = 4, .input_size = 16, .width = 4},
                               rng);
  const dt::Tensor batch = make_batch(3, 3, 16, 11);

  const dt::Tensor owning = model.forward(batch, /*train=*/false);
  std::vector<int> owning_labels;
  dt::argmax_channels(owning, owning_labels);

  ds::InferenceRunner runner;
  const dt::Tensor& served = runner.run(model, batch);
  ASSERT_TRUE(served.borrowed());
  ASSERT_EQ(served.numel(), owning.numel());
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < owning.numel(); ++i) {
    if (std::bit_cast<std::uint32_t>(owning[i]) != std::bit_cast<std::uint32_t>(served[i])) {
      ++mismatches;
    }
  }
  EXPECT_EQ(mismatches, 0u) << "arena-backed forward diverged from owning forward";
  EXPECT_EQ(runner.labels(), owning_labels);
}

TEST_P(RunnerIdentity, ArenaStopsGrowingAfterWarmup) {
  du::Rng rng(7);
  dmo::MiniDeepLabV3Plus model({.in_channels = 3, .num_classes = 4, .input_size = 16, .width = 4},
                               rng);
  ds::InferenceRunner runner;
  const dt::Tensor batch = make_batch(2, 3, 16, 13);
  runner.run(model, batch);
  const std::size_t watermark = runner.arena_watermark();
  EXPECT_GT(watermark, 0u);
  for (int i = 0; i < 3; ++i) runner.run(model, batch);
  EXPECT_EQ(runner.arena_watermark(), watermark)
      << "steady-state batches must reuse the warmed-up arena exactly";
}

TEST_P(RunnerIdentity, OutputsRemainValidUntilNextRun) {
  du::Rng rng(7);
  dmo::MiniDeepLabV3Plus model({.in_channels = 3, .num_classes = 4, .input_size = 16, .width = 4},
                               rng);
  ds::InferenceRunner runner;
  const dt::Tensor& first = runner.run(model, make_batch(1, 3, 16, 17));
  const float probe = first[0];
  const std::vector<int> first_labels = runner.labels();
  // Reading back after the call returns (what Server::run_batch does while
  // building responses) must see the same bytes.
  EXPECT_EQ(std::bit_cast<std::uint32_t>(first[0]), std::bit_cast<std::uint32_t>(probe));
  // The next run recycles the arena; the runner hands out fresh outputs
  // (logits numel = labels * num_classes).
  const dt::Tensor& second = runner.run(model, make_batch(1, 3, 16, 23));
  EXPECT_EQ(second.numel(), first_labels.size() * 4u);
}

INSTANTIATE_TEST_SUITE_P(AllLevels, RunnerIdentity,
                         ::testing::ValuesIn(dlscale::testing::simd_levels_under_test()),
                         dlscale::testing::simd_param_name);

}  // namespace
