#include "dlscale/serve/server.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <thread>
#include <vector>

#include "dlscale/util/rng.hpp"
#include "serve_test_support.hpp"

namespace ds = dlscale::serve;
namespace dt = dlscale::tensor;
namespace dst = dlscale::serve_testing;

namespace {

ds::ServeConfig small_serve_config() {
  ds::ServeConfig config;
  config.model = dst::small_config();
  config.workers = 2;
  config.max_batch = 4;
  config.max_wait_us = 200;
  config.queue_capacity = 64;
  return config;
}

dt::Tensor random_image(dlscale::util::Rng& rng, const dlscale::models::MiniDeepLabV3Plus::Config& m) {
  return dt::Tensor::randn({1, m.in_channels, m.input_size, m.input_size}, rng, 1.0f);
}

}  // namespace

TEST(Server, ServesConcurrentClientsCorrectly) {
  dst::TempFile ckpt("dlscale_serve_basic.bin");
  dst::write_checkpoint(dst::small_config(), /*seed=*/11, ckpt.path);
  auto reference = dst::load_reference(dst::small_config(), ckpt.path);

  ds::Server server(small_serve_config(), ckpt.path);
  dlscale::util::Rng rng(5);
  constexpr int kRequests = 24;
  std::vector<dt::Tensor> images;
  std::vector<std::future<ds::Response>> futures;
  for (int i = 0; i < kRequests; ++i) {
    images.push_back(random_image(rng, dst::small_config()));
    auto f = server.submit(images.back());
    ASSERT_TRUE(f.has_value()) << "request " << i << " rejected under empty load";
    futures.push_back(std::move(*f));
  }
  const int size = dst::small_config().input_size;
  for (int i = 0; i < kRequests; ++i) {
    ds::Response r = futures[static_cast<std::size_t>(i)].get();
    // Served logits must be bitwise what a plain forward produces.
    const dt::Tensor expected = reference.forward(images[static_cast<std::size_t>(i)], false);
    ASSERT_EQ(r.logits.numel(), expected.numel());
    for (std::size_t j = 0; j < expected.numel(); ++j) {
      ASSERT_EQ(r.logits[j], expected[j]) << "request " << i << " elem " << j;
    }
    EXPECT_EQ(static_cast<int>(r.labels.size()), size * size);
    EXPECT_GE(r.batch_size, 1);
    EXPECT_LE(r.batch_size, 4);
    EXPECT_EQ(r.model_version, 1);
    EXPECT_GE(r.total_us, r.queue_us);
  }
  const ds::ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_GE(stats.batches, 1u);
  EXPECT_LE(stats.batches, static_cast<std::uint64_t>(kRequests));
  EXPECT_GE(stats.mean_batch_size, 1.0);
  EXPECT_GT(stats.total_p50_us, 0.0);
  EXPECT_GE(stats.total_p99_us, stats.total_p50_us);
}

TEST(Server, RejectsWhenQueueOverflows) {
  dst::TempFile ckpt("dlscale_serve_overflow.bin");
  dst::write_checkpoint(dst::small_config(), 11, ckpt.path);
  ds::ServeConfig config = small_serve_config();
  config.workers = 1;
  config.max_batch = 1;
  config.queue_capacity = 2;
  ds::Server server(config, ckpt.path);
  dlscale::util::Rng rng(6);
  // Flood far past capacity; with a 1-deep worker and a 2-deep queue some
  // must be shed, and every accepted one must complete.
  std::vector<std::future<ds::Response>> accepted;
  int rejected = 0;
  for (int i = 0; i < 64; ++i) {
    ds::RejectReason why = ds::RejectReason::kNone;
    auto f = server.submit(random_image(rng, config.model), &why);
    if (f.has_value()) {
      EXPECT_EQ(why, ds::RejectReason::kNone);
      accepted.push_back(std::move(*f));
    } else {
      // Overflow rejections are kQueueFull, never kClosed.
      EXPECT_EQ(why, ds::RejectReason::kQueueFull);
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);
  for (auto& f : accepted) (void)f.get();
  const ds::ServerStats stats = server.stats();
  EXPECT_EQ(stats.rejected_full, static_cast<std::uint64_t>(rejected));
  EXPECT_EQ(stats.rejected_closed, 0u);
  // `rejected` stays the sum, so pre-split dashboards keep working.
  EXPECT_EQ(stats.rejected, stats.rejected_full + stats.rejected_closed);
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(accepted.size()));
}

TEST(Server, ShutdownDrainsAdmittedRequests) {
  dst::TempFile ckpt("dlscale_serve_drain.bin");
  dst::write_checkpoint(dst::small_config(), 11, ckpt.path);
  ds::ServeConfig config = small_serve_config();
  config.workers = 1;
  config.queue_capacity = 32;
  dlscale::util::Rng rng(7);
  std::vector<std::future<ds::Response>> futures;
  {
    ds::Server server(config, ckpt.path);
    for (int i = 0; i < 8; ++i) {
      auto f = server.submit(random_image(rng, config.model));
      ASSERT_TRUE(f.has_value());
      futures.push_back(std::move(*f));
    }
    server.shutdown();
    // After shutdown no new work is admitted, and the rejection says WHY:
    // closed, not full — the HTTP layer turns this into 503 vs 429.
    ds::RejectReason why = ds::RejectReason::kNone;
    EXPECT_FALSE(server.submit(random_image(rng, config.model), &why).has_value());
    EXPECT_EQ(why, ds::RejectReason::kClosed);
    const ds::ServerStats stats = server.stats();
    EXPECT_EQ(stats.rejected_closed, 1u);
    EXPECT_EQ(stats.rejected_full, 0u);
    EXPECT_EQ(stats.rejected, 1u);
  }
  // ...but everything admitted before shutdown was answered, not dropped.
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    (void)f.get();
  }
}

TEST(Server, HotReloadSwapsWeightsAtomically) {
  dst::TempFile ckpt_a("dlscale_serve_reload_a.bin");
  dst::TempFile ckpt_b("dlscale_serve_reload_b.bin");
  dst::write_checkpoint(dst::small_config(), 11, ckpt_a.path);
  dst::write_checkpoint(dst::small_config(), 22, ckpt_b.path);
  auto ref_a = dst::load_reference(dst::small_config(), ckpt_a.path);
  auto ref_b = dst::load_reference(dst::small_config(), ckpt_b.path);

  ds::Server server(small_serve_config(), ckpt_a.path);
  dlscale::util::Rng rng(8);
  const dt::Tensor image = random_image(rng, dst::small_config());
  const dt::Tensor expect_a = ref_a.forward(image, false);
  const dt::Tensor expect_b = ref_b.forward(image, false);

  auto before = server.submit(image);
  ASSERT_TRUE(before.has_value());
  ds::Response r1 = before->get();
  EXPECT_EQ(r1.model_version, 1);
  for (std::size_t j = 0; j < expect_a.numel(); ++j) ASSERT_EQ(r1.logits[j], expect_a[j]);

  server.reload(ckpt_b.path);
  EXPECT_EQ(server.model_version(), 2);
  auto after = server.submit(image);
  ASSERT_TRUE(after.has_value());
  ds::Response r2 = after->get();
  EXPECT_EQ(r2.model_version, 2);
  for (std::size_t j = 0; j < expect_b.numel(); ++j) ASSERT_EQ(r2.logits[j], expect_b[j]);
  EXPECT_EQ(server.stats().reloads, 1u);
}

TEST(Server, CorruptReloadKeepsOldWeightsServing) {
  dst::TempFile ckpt("dlscale_serve_reload_bad.bin");
  dst::TempFile bad("dlscale_serve_reload_bad_file.bin");
  dst::write_checkpoint(dst::small_config(), 11, ckpt.path);
  {
    std::ofstream out(bad.path, std::ios::binary);
    out << "definitely not a checkpoint";
  }
  auto reference = dst::load_reference(dst::small_config(), ckpt.path);
  ds::Server server(small_serve_config(), ckpt.path);
  EXPECT_THROW(server.reload(bad.path), std::runtime_error);
  EXPECT_EQ(server.model_version(), 1);  // generation unchanged
  EXPECT_EQ(server.stats().reloads, 0u);
  // And it still answers, with the original weights, bitwise.
  dlscale::util::Rng rng(9);
  const dt::Tensor image = random_image(rng, dst::small_config());
  const dt::Tensor expected = reference.forward(image, false);
  auto f = server.submit(image);
  ASSERT_TRUE(f.has_value());
  const ds::Response r = f->get();
  for (std::size_t j = 0; j < expected.numel(); ++j) ASSERT_EQ(r.logits[j], expected[j]);
}

TEST(Server, RejectsWrongImageShape) {
  dst::TempFile ckpt("dlscale_serve_shape.bin");
  dst::write_checkpoint(dst::small_config(), 11, ckpt.path);
  ds::ServeConfig config = small_serve_config();
  config.name = "seg-test";
  ds::Server server(config, ckpt.path);
  // The rejection is a named ShapeError: which model, expected vs got.
  try {
    (void)server.submit(dt::Tensor({1, 3, 8, 8}));
    FAIL() << "wrong spatial size accepted";
  } catch (const ds::ShapeError& e) {
    EXPECT_EQ(e.model(), "seg-test");
    EXPECT_EQ(e.expected(), dt::Shape({1, 3, 16, 16}));
    EXPECT_EQ(e.got(), dt::Shape({1, 3, 8, 8}));
    EXPECT_NE(std::string(e.what()).find("seg-test"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("(1,3,8,8)"), std::string::npos);
  }
  // ShapeError derives std::invalid_argument, so old catch sites still work.
  EXPECT_THROW((void)server.submit(dt::Tensor({2, 3, 16, 16})), std::invalid_argument);
  // (C,S,S) is auto-unsqueezed, not an error.
  auto f = server.submit(dt::Tensor({3, 16, 16}));
  ASSERT_TRUE(f.has_value());
  (void)f->get();
}

TEST(Server, LabelsMatchArgmaxOfLogits) {
  dst::TempFile ckpt("dlscale_serve_labels.bin");
  dst::write_checkpoint(dst::small_config(), 11, ckpt.path);
  ds::Server server(small_serve_config(), ckpt.path);
  dlscale::util::Rng rng(10);
  auto f = server.submit(random_image(rng, dst::small_config()));
  ASSERT_TRUE(f.has_value());
  const ds::Response r = f->get();
  const std::vector<int> expected = dlscale::tensor::argmax_channels(r.logits);
  ASSERT_EQ(r.labels.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) EXPECT_EQ(r.labels[i], expected[i]);
}
