// Shared helpers for the serving tests: a small model config, a
// checkpoint written from a deterministically-seeded model, and a
// reference (unserved) forward to compare served results against.
#pragma once

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>

#include "dlscale/models/deeplab.hpp"
#include "dlscale/train/checkpoint.hpp"
#include "dlscale/util/rng.hpp"

namespace dlscale::serve_testing {

// ctest runs each gtest case as its own process, so parameterized
// instantiations of one test can run concurrently; the filename must be
// unique per process (and per use within a process) or one process's
// TempFile destructor deletes the checkpoint another is still loading.
struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name) {
    static std::atomic<unsigned> counter{0};
    path = (std::filesystem::temp_directory_path() /
            ("dlscale_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter.fetch_add(1)) + "_" + name))
               .string();
  }
  ~TempFile() { std::remove(path.c_str()); }
};

inline models::MiniDeepLabV3Plus::Config small_config() {
  return {.in_channels = 3, .num_classes = 4, .input_size = 16, .width = 4};
}

/// Builds a model from `seed` and writes its params+buffers to `path`.
inline void write_checkpoint(const models::MiniDeepLabV3Plus::Config& config,
                             std::uint64_t seed, const std::string& path) {
  util::Rng rng(seed);
  models::MiniDeepLabV3Plus model(config, rng);
  train::save_model(model.parameters(), model.buffers(), path);
}

/// A fresh model loaded from `path` — the bitwise ground truth the served
/// responses are compared against.
inline models::MiniDeepLabV3Plus load_reference(
    const models::MiniDeepLabV3Plus::Config& config, const std::string& path) {
  util::Rng rng(999);  // overwritten by the load
  models::MiniDeepLabV3Plus model(config, rng);
  train::load_model(model.parameters(), model.buffers(), path);
  return model;
}

}  // namespace dlscale::serve_testing
