// The serving layer's core numerical contract: an image's logits do not
// depend on what it was co-batched with — bitwise, at every SIMD
// dispatch level. Dynamic batching is only sound because of this; these
// tests are the enforcement.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstring>
#include <future>
#include <vector>

#include "dlscale/models/deeplab.hpp"
#include "dlscale/serve/server.hpp"
#include "dlscale/tensor/ops.hpp"
#include "dlscale/util/rng.hpp"
#include "serve_test_support.hpp"
#include "../support/simd_param.hpp"

namespace ds = dlscale::serve;
namespace dt = dlscale::tensor;
namespace dst = dlscale::serve_testing;

namespace {

/// Bitwise float comparison: NaN-safe and exact.
void expect_bitwise_equal(const dt::Tensor& a, const dt::Tensor& b, const char* what) {
  ASSERT_EQ(a.numel(), b.numel()) << what;
  for (std::size_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint32_t>(a[i]), std::bit_cast<std::uint32_t>(b[i]))
        << what << " elem " << i;
  }
}

/// Copies sample `n` of batched (N,K,H,W) logits into a (1,K,H,W) tensor.
dt::Tensor slice_sample(const dt::Tensor& logits, int n) {
  const int k = logits.dim(1), h = logits.dim(2), w = logits.dim(3);
  dt::Tensor out({1, k, h, w});
  std::memcpy(out.ptr(), logits.ptr() + static_cast<std::size_t>(n) * out.numel(),
              out.numel() * sizeof(float));
  return out;
}

}  // namespace

using BatchInvariance = dlscale::testing::SimdLevelTest;

TEST_P(BatchInvariance, LogitsIndependentOfCoBatchedTraffic) {
  using dlscale::models::MiniDeepLabV3Plus;
  dlscale::util::Rng rng(31);
  MiniDeepLabV3Plus model(dst::small_config(), rng);

  const auto cfg = dst::small_config();
  const dt::Tensor target =
      dt::Tensor::randn({1, cfg.in_channels, cfg.input_size, cfg.input_size}, rng, 1.0f);
  const dt::Tensor solo = model.forward(target, /*train=*/false);

  // Plant the target at several positions inside batches of random
  // traffic and at several batch sizes; its slice must never change.
  for (int batch_size : {2, 4, 8}) {
    for (int position : {0, batch_size / 2, batch_size - 1}) {
      dt::Tensor batch =
          dt::Tensor::randn({batch_size, cfg.in_channels, cfg.input_size, cfg.input_size}, rng,
                            1.0f);
      std::memcpy(batch.ptr() + static_cast<std::size_t>(position) * target.numel(),
                  target.ptr(), target.numel() * sizeof(float));
      const dt::Tensor batched = model.forward(batch, /*train=*/false);
      const dt::Tensor slice = slice_sample(batched, position);
      expect_bitwise_equal(slice, solo, "co-batched logits");
    }
  }
}

TEST_P(BatchInvariance, TrainAndEvalForwardAgreeBitwise) {
  // train=true caches activations and updates BN running stats from batch
  // statistics — but THIS model's BN uses batch stats in train mode, so
  // train/eval outputs legitimately differ. What must agree bitwise is
  // eval forward before vs after a training step's forward (no weight
  // update in between): caching must never perturb the math.
  using dlscale::models::MiniDeepLabV3Plus;
  dlscale::util::Rng rng(32);
  MiniDeepLabV3Plus model(dst::small_config(), rng);
  const auto cfg = dst::small_config();
  const dt::Tensor x =
      dt::Tensor::randn({2, cfg.in_channels, cfg.input_size, cfg.input_size}, rng, 1.0f);
  const dt::Tensor eval_before = model.forward(x, false);
  (void)model.forward(x, true);  // populates caches, moves running stats
  // Running stats moved, so recompute the reference expectation from a
  // fresh identical model instead: eval is a pure function of (weights,
  // buffers, input).
  dlscale::util::Rng rng2(32);
  MiniDeepLabV3Plus twin(dst::small_config(), rng2);
  const dt::Tensor eval_twin = twin.forward(x, false);
  expect_bitwise_equal(eval_before, eval_twin, "eval forward determinism");
}

TEST_P(BatchInvariance, ServedResponsesMatchDirectForwardUnderConcurrentTraffic) {
  dst::TempFile ckpt("dlscale_serve_invariance.bin");
  dst::write_checkpoint(dst::small_config(), 41, ckpt.path);
  auto reference = dst::load_reference(dst::small_config(), ckpt.path);

  const auto cfg = dst::small_config();
  dlscale::util::Rng rng(42);
  const dt::Tensor known =
      dt::Tensor::randn({1, cfg.in_channels, cfg.input_size, cfg.input_size}, rng, 1.0f);
  const dt::Tensor expected = reference.forward(known, false);

  ds::ServeConfig config;
  config.model = cfg;
  config.workers = 2;
  config.max_batch = 8;
  config.max_wait_us = 500;
  config.queue_capacity = 256;
  ds::Server server(config, ckpt.path);

  // Interleave the known image with random traffic so it lands in many
  // different co-batches; every response must be bitwise `expected`.
  std::vector<std::future<ds::Response>> known_futures;
  for (int round = 0; round < 10; ++round) {
    for (int j = 0; j < 3; ++j) {
      (void)server.submit(
          dt::Tensor::randn({1, cfg.in_channels, cfg.input_size, cfg.input_size}, rng, 1.0f));
    }
    auto f = server.submit(known);
    if (f.has_value()) known_futures.push_back(std::move(*f));
  }
  ASSERT_FALSE(known_futures.empty());
  bool saw_cobatched = false;
  for (auto& f : known_futures) {
    ds::Response r = f.get();
    if (r.batch_size > 1) saw_cobatched = true;
    expect_bitwise_equal(r.logits, expected, "served logits");
  }
  // With 4 submissions per round and a 500us window, at least one known
  // response should have shared a batch; if scheduling was so slow that
  // none did, the invariance claim was still checked solo-vs-direct.
  (void)saw_cobatched;
}

INSTANTIATE_TEST_SUITE_P(AllSimdLevels, BatchInvariance,
                         ::testing::ValuesIn(dlscale::testing::simd_levels_under_test()),
                         dlscale::testing::simd_param_name);

TEST(BatchInvarianceCrossSimd, BatchedLogitsIdenticalAcrossDispatchLevels) {
  // The invariance must also hold BETWEEN levels: scalar-served and
  // AVX2-served logits for the same image and the same co-batch are one
  // bit pattern. On scalar-only hosts this degenerates to a self-check.
  using dlscale::models::MiniDeepLabV3Plus;
  const auto cfg = dst::small_config();
  std::vector<dt::Tensor> per_level;
  for (auto level : dlscale::testing::simd_levels_under_test()) {
    dlscale::testing::ScopedSimdLevel scoped(level);
    dlscale::util::Rng rng(77);
    MiniDeepLabV3Plus model(cfg, rng);
    const dt::Tensor batch =
        dt::Tensor::randn({8, cfg.in_channels, cfg.input_size, cfg.input_size}, rng, 1.0f);
    per_level.push_back(model.forward(batch, /*train=*/false));
  }
  for (std::size_t i = 1; i < per_level.size(); ++i) {
    expect_bitwise_equal(per_level[i], per_level[0], "cross-SIMD batched logits");
  }
}
