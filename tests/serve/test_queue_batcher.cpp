#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>

#include "dlscale/serve/batcher.hpp"
#include "dlscale/serve/queue.hpp"

namespace ds = dlscale::serve;
namespace dt = dlscale::tensor;

using namespace std::chrono_literals;

namespace {

ds::Request make_request(float fill_value = 1.0f) {
  ds::Request r;
  r.image = dt::Tensor::full({1, 1, 2, 2}, fill_value);
  r.enqueued_at = ds::Clock::now();
  return r;
}

}  // namespace

TEST(RequestQueue, AdmitsUpToCapacityThenRejects) {
  ds::RequestQueue q(2);
  EXPECT_EQ(q.try_push(make_request()), ds::PushResult::kAccepted);
  EXPECT_EQ(q.try_push(make_request()), ds::PushResult::kAccepted);
  EXPECT_EQ(q.try_push(make_request()), ds::PushResult::kFull);  // full -> shed
  EXPECT_EQ(q.depth(), 2u);
  // Popping frees a slot and admission resumes.
  ASSERT_TRUE(q.pop().has_value());
  EXPECT_TRUE(ds::accepted(q.try_push(make_request())));
}

TEST(RequestQueue, ClosedQueueRejectsButDrains) {
  ds::RequestQueue q(4);
  EXPECT_TRUE(ds::accepted(q.try_push(make_request(1.0f))));
  EXPECT_TRUE(ds::accepted(q.try_push(make_request(2.0f))));
  q.close();
  EXPECT_EQ(q.try_push(make_request(3.0f)), ds::PushResult::kClosed);  // no admissions after close
  // Queued work survives close: both pops succeed in FIFO order, then the
  // drained signal.
  auto a = q.pop();
  ASSERT_TRUE(a.has_value());
  EXPECT_FLOAT_EQ(a->image[0], 1.0f);
  auto b = q.pop();
  ASSERT_TRUE(b.has_value());
  EXPECT_FLOAT_EQ(b->image[0], 2.0f);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(RequestQueue, PopBlocksUntilPush) {
  ds::RequestQueue q(4);
  std::promise<float> got;
  std::thread consumer([&] {
    auto r = q.pop();
    got.set_value(r ? r->image[0] : -1.0f);
  });
  std::this_thread::sleep_for(5ms);
  EXPECT_TRUE(ds::accepted(q.try_push(make_request(7.0f))));
  EXPECT_FLOAT_EQ(got.get_future().get(), 7.0f);
  consumer.join();
}

TEST(RequestQueue, PopUntilTimesOutEmpty) {
  ds::RequestQueue q(4);
  const auto deadline = ds::Clock::now() + 2ms;
  EXPECT_FALSE(q.pop_until(deadline).has_value());
}

TEST(DynamicBatcher, CoalescesQueuedRequestsUpToMaxBatch) {
  ds::RequestQueue q(16);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(ds::accepted(q.try_push(make_request(static_cast<float>(i)))));
  ds::DynamicBatcher batcher(q, /*max_batch=*/4, /*max_wait=*/0us);
  ds::Batch batch = batcher.next_batch();
  ASSERT_EQ(batch.size(), 4);
  // FIFO: first four submissions ride together; the fifth forms the next
  // batch alone.
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(batch.requests[i].image[0], static_cast<float>(i));
  EXPECT_EQ(batch.images.dim(0), 4);
  ds::Batch rest = batcher.next_batch();
  EXPECT_EQ(rest.size(), 1);
  EXPECT_FLOAT_EQ(rest.requests[0].image[0], 4.0f);
}

TEST(DynamicBatcher, LoneRequestRunsAfterWaitWindow) {
  ds::RequestQueue q(16);
  ASSERT_TRUE(ds::accepted(q.try_push(make_request())));
  ds::DynamicBatcher batcher(q, /*max_batch=*/8, /*max_wait=*/1000us);
  const auto t0 = ds::Clock::now();
  ds::Batch batch = batcher.next_batch();
  const auto elapsed = ds::Clock::now() - t0;
  EXPECT_EQ(batch.size(), 1);
  // Must not hang anywhere near forever; the window is 1ms (+ scheduling
  // slack).
  EXPECT_LT(elapsed, 500ms);
}

TEST(DynamicBatcher, EmptyBatchSignalsClosedAndDrained) {
  ds::RequestQueue q(4);
  q.close();
  ds::DynamicBatcher batcher(q, 4, 0us);
  EXPECT_TRUE(batcher.next_batch().empty());
}

TEST(DynamicBatcher, StackImagesPreservesSampleBytes) {
  std::vector<ds::Request> requests;
  requests.push_back(make_request(1.5f));
  requests.push_back(make_request(-2.25f));
  const dt::Tensor stacked = ds::DynamicBatcher::stack_images(requests);
  ASSERT_EQ(stacked.dim(0), 2);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(stacked[i], 1.5f);
    EXPECT_FLOAT_EQ(stacked[4 + i], -2.25f);
  }
}
