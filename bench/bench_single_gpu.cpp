// E1 (paper Table: single-GPU throughput).
//
// "We observed just 6.7 images/second on a single Volta GPU for training
//  DeepLab-v3+ [...] a Volta GPU can process 300 images/second for
//  training ResNet-50."
//
// Prints per-model single-V100 training throughput from the calibrated
// performance model, side by side with the paper's numbers, plus the
// compute breakdown that explains the ~45x gap.
#include <cstdio>

#include "dlscale/gpu/device.hpp"
#include "dlscale/models/workload.hpp"
#include "dlscale/perf/simulator.hpp"
#include "dlscale/util/table.hpp"

using namespace dlscale;

int main() {
  const auto calibration = perf::Calibration::paper_defaults();
  const auto dlv3 = models::WorkloadSpec::deeplab_v3plus(4);
  const auto rn50 = models::WorkloadSpec::resnet50(64);

  struct Row {
    const models::WorkloadSpec* workload;
    double efficiency;
    double paper_img_s;
  };
  const Row rows[] = {{&dlv3, calibration.deeplab_efficiency, 6.7},
                      {&rn50, calibration.resnet_efficiency, 300.0}};

  util::Table table("E1 — Single V100 training throughput (paper Table 1)");
  table.set_header({"model", "crop", "batch", "params (M)", "fwd GFLOPs/img",
                    "sustained TFLOP/s", "img/s (ours)", "img/s (paper)"});
  for (const Row& row : rows) {
    const auto& w = *row.workload;
    const double img_s = perf::single_gpu_throughput(w, row.efficiency);
    const gpu::ComputeModel gpu_model(gpu::DeviceSpec::v100_summit(), row.efficiency);
    table.add_row({w.name, util::Table::num(static_cast<long long>(w.crop)),
                   util::Table::num(static_cast<long long>(w.batch_per_gpu)),
                   util::Table::num(static_cast<double>(w.total_param_bytes()) / 4e6, 1),
                   util::Table::num(w.total_fwd_flops() / w.batch_per_gpu / 1e9, 1),
                   util::Table::num(row.efficiency * 15.7, 2), util::Table::num(img_s, 1),
                   util::Table::num(row.paper_img_s, 1)});
  }
  table.print();

  const double ratio_ours =
      perf::single_gpu_throughput(rn50, calibration.resnet_efficiency) /
      perf::single_gpu_throughput(dlv3, calibration.deeplab_efficiency);
  std::printf("\nThroughput ratio ResNet-50 : DLv3+ = %.1fx (paper: %.1fx)\n", ratio_ours,
              300.0 / 6.7);
  std::printf(
      "Takeaway: segmentation training is ~45x more expensive per image, motivating\n"
      "scale-out on Summit (paper Section I).\n");
  return 0;
}
