// Wall-clock microbenchmarks (google-benchmark) for the real compute and
// communication substrates: tensor kernels that execute the mini
// DeepLab-v3+, and functional simmpi collectives moving real data.
//
// Custom main: prints the selected SIMD dispatch path and a quick
// simd-vs-scalar comparison table before handing over to
// google-benchmark. `bench_kernels --print-simd-path` prints just the
// path (used by run_all.sh).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "dlscale/mpi/comm.hpp"
#include "dlscale/tensor/microkernel.hpp"
#include "dlscale/tensor/ops.hpp"
#include "dlscale/tensor/quantize.hpp"
#include "dlscale/util/bf16.hpp"
#include "dlscale/util/rng.hpp"
#include "dlscale/util/simd.hpp"
#include "dlscale/util/table.hpp"
#include "dlscale/util/thread_pool.hpp"

namespace dt = dlscale::tensor;
namespace dm = dlscale::mpi;
namespace du = dlscale::util;

namespace {

/// Pins the kernel pool to `threads` for one benchmark run and restores
/// the previous setting on destruction (thread-count sweeps).
class ScopedThreads {
 public:
  explicit ScopedThreads(int threads) : prev_(du::global_thread_count()) {
    du::set_global_thread_count(threads);
  }
  ~ScopedThreads() { du::set_global_thread_count(prev_); }

 private:
  int prev_;
};

/// Re-selects the SIMD dispatch level for one benchmark run. Level args
/// above what the host supports skip the benchmark instead of silently
/// measuring the clamped path twice.
class ScopedSimd {
 public:
  explicit ScopedSimd(du::SimdLevel level) : prev_(du::simd_level()) {
    applied_ = du::set_simd_level(level);
    ok_ = applied_ == level;
  }
  ~ScopedSimd() { du::set_simd_level(prev_); }
  [[nodiscard]] bool ok() const noexcept { return ok_; }

 private:
  du::SimdLevel prev_;
  du::SimdLevel applied_{du::SimdLevel::kScalar};
  bool ok_ = false;
};

bool skip_unless_level(benchmark::State& state, const ScopedSimd& scoped) {
  if (!scoped.ok()) {
    state.SkipWithError("SIMD level not available on this host");
    return true;
  }
  return false;
}

void BM_Conv2dForward(benchmark::State& state) {
  const int channels = static_cast<int>(state.range(0));
  dlscale::util::Rng rng(1);
  const auto x = dt::Tensor::randn({2, channels, 24, 24}, rng);
  const auto w = dt::Tensor::he_init({channels, channels, 3, 3}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dt::conv2d(x, w, nullptr, {1, 1, 1}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Conv2dForward)->Arg(8)->Arg(16)->Arg(32);

void BM_Conv2dAtrousForward(benchmark::State& state) {
  dlscale::util::Rng rng(1);
  const auto x = dt::Tensor::randn({2, 16, 24, 24}, rng);
  const auto w = dt::Tensor::he_init({16, 16, 3, 3}, rng);
  const int dilation = static_cast<int>(state.range(0));
  const dt::Conv2dSpec spec{1, dilation, dilation};
  for (auto _ : state) {
    benchmark::DoNotOptimize(dt::conv2d(x, w, nullptr, spec));
  }
}
BENCHMARK(BM_Conv2dAtrousForward)->Arg(1)->Arg(2)->Arg(4);

void BM_Conv2dBackward(benchmark::State& state) {
  dlscale::util::Rng rng(1);
  const auto x = dt::Tensor::randn({2, 16, 24, 24}, rng);
  const auto w = dt::Tensor::he_init({16, 16, 3, 3}, rng);
  const dt::Conv2dSpec spec{1, 1, 1};
  const auto y = dt::conv2d(x, w, nullptr, spec);
  const auto grad_out = dt::Tensor::full(y.shape(), 1.0f);
  for (auto _ : state) {
    dt::Tensor grad_w(w.shape());
    benchmark::DoNotOptimize(dt::conv2d_backward(x, w, grad_out, spec, grad_w, nullptr));
  }
}
BENCHMARK(BM_Conv2dBackward);

void BM_BatchNormForward(benchmark::State& state) {
  dlscale::util::Rng rng(1);
  const auto x = dt::Tensor::randn({4, 32, 24, 24}, rng);
  const auto gamma = dt::Tensor::full({32}, 1.0f);
  const auto beta = dt::Tensor::zeros({32});
  auto rm = dt::Tensor::zeros({32});
  auto rv = dt::Tensor::full({32}, 1.0f);
  dt::BatchNormCache cache;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dt::batchnorm2d(x, gamma, beta, rm, rv, true, 0.1f, 1e-5f, &cache));
  }
}
BENCHMARK(BM_BatchNormForward);

void BM_BilinearResize(benchmark::State& state) {
  dlscale::util::Rng rng(1);
  const auto x = dt::Tensor::randn({2, 32, 12, 12}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dt::bilinear_resize(x, 48, 48));
  }
}
BENCHMARK(BM_BilinearResize);

void BM_SoftmaxCrossEntropy(benchmark::State& state) {
  dlscale::util::Rng rng(1);
  const auto logits = dt::Tensor::randn({4, 6, 24, 24}, rng);
  std::vector<int> labels(4 * 24 * 24);
  for (std::size_t i = 0; i < labels.size(); ++i) labels[i] = static_cast<int>(i % 6);
  for (auto _ : state) {
    dt::Tensor grad;
    benchmark::DoNotOptimize(dt::softmax_cross_entropy(logits, labels, 255, grad));
  }
}
BENCHMARK(BM_SoftmaxCrossEntropy);

void BM_AllreduceFunctional(benchmark::State& state) {
  // Real data movement through simmpi (timing disabled): the functional
  // cost of the threaded runtime itself.
  const int world = static_cast<int>(state.range(0));
  const std::size_t count = 1 << 16;
  for (auto _ : state) {
    dm::run_world(world, [count](dm::Communicator& comm) {
      std::vector<float> data(count, static_cast<float>(comm.rank()));
      comm.allreduce(std::span<float>(data), dm::ReduceOp::kSum, dm::MemSpace::kHost);
      benchmark::DoNotOptimize(data[0]);
    });
  }
  state.SetBytesProcessed(state.iterations() * static_cast<long>(count * sizeof(float)));
}
BENCHMARK(BM_AllreduceFunctional)->Arg(2)->Arg(4)->Arg(8);

void BM_MatmulSquare(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  dlscale::util::Rng rng(1);
  const auto a = dt::Tensor::randn({n, n}, rng);
  const auto b = dt::Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dt::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_MatmulSquare)->Arg(64)->Arg(128)->Arg(256);

// GEMMs at the shapes the full-scale DLv3+ conv layers lower to via
// im2col: (out_c) x (in_c*kh*kw) times (in_c*kh*kw) x (out_h*out_w).
// 33x33 is the 513-input encoder output at stride 16.
void BM_GemmDLv3Shape(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  const int n = static_cast<int>(state.range(2));
  dlscale::util::Rng rng(1);
  const auto a = dt::Tensor::randn({m, k}, rng);
  const auto b = dt::Tensor::randn({k, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dt::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2LL * m * k * n);
}
BENCHMARK(BM_GemmDLv3Shape)
    ->Args({256, 2304, 1089})   // ASPP 3x3 atrous branch: 256ch <- 256ch*3*3
    ->Args({256, 1280, 1089})   // ASPP projection 1x1: 256ch <- 5*256ch
    ->Args({48, 256, 16641});   // decoder low-level 1x1 at stride 4 (129x129)

// SIMD dispatch sweep: the same GEMM / conv work under each level (arg 0
// = scalar twins, arg 1 = AVX2 micro-kernels). Bitwise-identical output,
// so the delta is pure kernel throughput.
void BM_MatmulSimd(benchmark::State& state) {
  const ScopedSimd scoped(static_cast<du::SimdLevel>(state.range(0)));
  if (skip_unless_level(state, scoped)) return;
  const int n = static_cast<int>(state.range(1));
  dlscale::util::Rng rng(1);
  const auto a = dt::Tensor::randn({n, n}, rng);
  const auto b = dt::Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dt::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
  state.SetLabel(dt::micro::active_path());
}
BENCHMARK(BM_MatmulSimd)->Args({0, 256})->Args({1, 256});

void BM_GemmDLv3ShapeSimd(benchmark::State& state) {
  const ScopedSimd scoped(static_cast<du::SimdLevel>(state.range(0)));
  if (skip_unless_level(state, scoped)) return;
  dlscale::util::Rng rng(1);
  const auto a = dt::Tensor::randn({256, 2304}, rng);
  const auto b = dt::Tensor::randn({2304, 1089}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dt::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2LL * 256 * 2304 * 1089);
  state.SetLabel(dt::micro::active_path());
}
BENCHMARK(BM_GemmDLv3ShapeSimd)->Arg(0)->Arg(1);

// Quantized GEMM at the same ASPP 3x3 shape, end to end as serving runs
// it: fp32 activations quantized to u8 per call, integer GEMM against the
// pre-packed per-channel s8 weights, dequantize epilogue. Orientation is
// the serving one (activations m x k times W^T), so m is the im2col
// column count and n the output channels; the MAC count matches the fp32
// BM_GemmDLv3ShapeSimd rows for a like-for-like items/s comparison.
void BM_GemmInt8Simd(benchmark::State& state) {
  const ScopedSimd scoped(static_cast<du::SimdLevel>(state.range(0)));
  if (skip_unless_level(state, scoped)) return;
  constexpr int m = 1089, k = 2304, n = 256;
  dlscale::util::Rng rng(1);
  const auto a = dt::Tensor::randn({m, k}, rng);
  const auto w = dt::Tensor::randn({n, k}, rng);
  const auto qw = dt::quant::QuantizedMatrix::from_rows(w.ptr(), n, k);
  // Static activation params as calibration would pick them for randn
  // inputs: +/-4 sigma covers the range without saturating the bulk.
  const dt::quant::QuantParams act = dt::quant::choose_qparams_u8({-4.0f, 4.0f});
  for (auto _ : state) {
    benchmark::DoNotOptimize(dt::quant::quantized_matmul(a, qw, act, nullptr));
  }
  state.SetItemsProcessed(state.iterations() * 2LL * m * k * n);
  state.SetLabel(dt::micro::active_path());
}
BENCHMARK(BM_GemmInt8Simd)->Arg(0)->Arg(1);

// bf16 serving cost at the same shape: weights live as bf16 and are
// widened into fp32 scratch before the regular GEMM — the widen is the
// only extra work, so this bounds what bf16 storage costs per forward.
void BM_GemmBf16(benchmark::State& state) {
  const ScopedSimd scoped(static_cast<du::SimdLevel>(state.range(0)));
  if (skip_unless_level(state, scoped)) return;
  constexpr int m = 256, k = 2304, n = 1089;
  dlscale::util::Rng rng(1);
  const auto a = dt::Tensor::randn({m, k}, rng);
  const auto w = dt::Tensor::randn({k, n}, rng);
  std::vector<std::uint16_t> stored(static_cast<std::size_t>(k) * n);
  du::floats_to_bf16s(w.ptr(), stored.data(), stored.size());
  dt::Tensor wide({k, n});
  for (auto _ : state) {
    du::bf16s_to_floats(stored.data(), wide.ptr(), stored.size());
    benchmark::DoNotOptimize(dt::matmul(a, wide));
  }
  state.SetItemsProcessed(state.iterations() * 2LL * m * k * n);
  state.SetLabel(dt::micro::active_path());
}
BENCHMARK(BM_GemmBf16)->Arg(0)->Arg(1);

void BM_Conv2dForwardSimd(benchmark::State& state) {
  const ScopedSimd scoped(static_cast<du::SimdLevel>(state.range(0)));
  if (skip_unless_level(state, scoped)) return;
  dlscale::util::Rng rng(1);
  const auto x = dt::Tensor::randn({2, 8, 24, 24}, rng);
  const auto w = dt::Tensor::he_init({8, 8, 3, 3}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dt::conv2d(x, w, nullptr, {1, 1, 1}));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(dt::micro::active_path());
}
BENCHMARK(BM_Conv2dForwardSimd)->Arg(0)->Arg(1);

// Thread-count sweep on a DLv3+-like conv block (the speedup the whole
// PR exists for). Run with -DCMAKE_BUILD_TYPE=Release; Arg = pool size.
void BM_Conv2dForwardThreads(benchmark::State& state) {
  ScopedThreads scoped(static_cast<int>(state.range(0)));
  dlscale::util::Rng rng(1);
  const auto x = dt::Tensor::randn({2, 64, 33, 33}, rng);
  const auto w = dt::Tensor::he_init({64, 64, 3, 3}, rng);
  const dt::Conv2dSpec spec{1, 2, 2};  // atrous rate 2, "same" output
  for (auto _ : state) {
    benchmark::DoNotOptimize(dt::conv2d(x, w, nullptr, spec));
  }
  state.SetItemsProcessed(state.iterations() * 2);  // images/s
}
BENCHMARK(BM_Conv2dForwardThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_Conv2dBackwardThreads(benchmark::State& state) {
  ScopedThreads scoped(static_cast<int>(state.range(0)));
  dlscale::util::Rng rng(1);
  const auto x = dt::Tensor::randn({2, 64, 33, 33}, rng);
  const auto w = dt::Tensor::he_init({64, 64, 3, 3}, rng);
  const dt::Conv2dSpec spec{1, 2, 2};
  const auto y = dt::conv2d(x, w, nullptr, spec);
  const auto grad_out = dt::Tensor::full(y.shape(), 1.0f);
  for (auto _ : state) {
    dt::Tensor grad_w(w.shape());
    benchmark::DoNotOptimize(dt::conv2d_backward(x, w, grad_out, spec, grad_w, nullptr));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_Conv2dBackwardThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// ---- custom main ----------------------------------------------------------

/// Median-of-5 wall-clock time for `body`, in milliseconds.
template <typename Body>
double time_median_ms(Body&& body) {
  double samples[5];
  for (double& sample : samples) {
    const auto start = std::chrono::steady_clock::now();
    body();
    const auto stop = std::chrono::steady_clock::now();
    sample = std::chrono::duration<double, std::milli>(stop - start).count();
  }
  std::sort(std::begin(samples), std::end(samples));
  return samples[2];
}

/// Quick chrono-timed simd-vs-scalar table (independent of
/// google-benchmark's own repetitions) so the dispatch win is visible at
/// the top of the output without grepping counter lines.
void print_simd_comparison() {
  du::Table table("SIMD dispatch comparison (1 thread, median of 5)");
  table.set_header({"kernel", "scalar_ms", du::simd_level_name(
                                               du::detected_simd_level()),
                    "speedup"});
  du::Rng rng(1);
  const auto ma = dt::Tensor::randn({256, 256}, rng);
  const auto mb = dt::Tensor::randn({256, 256}, rng);
  const auto cx = dt::Tensor::randn({2, 8, 24, 24}, rng);
  const auto cw = dt::Tensor::he_init({8, 8, 3, 3}, rng);
  const auto ga = dt::Tensor::randn({256, 2304}, rng);
  const auto gb = dt::Tensor::randn({2304, 1089}, rng);
  const auto qa = dt::Tensor::randn({1089, 2304}, rng);
  const auto qw = dt::quant::QuantizedMatrix::from_rows(
      dt::Tensor::randn({256, 2304}, rng).ptr(), 256, 2304);
  const dt::quant::QuantParams act = dt::quant::choose_qparams_u8({-4.0f, 4.0f});

  struct Case {
    const char* name;
    std::function<void()> body;
  };
  const Case cases[] = {
      {"matmul 256x256x256", [&] { benchmark::DoNotOptimize(dt::matmul(ma, mb)); }},
      {"gemm 256x2304x1089", [&] { benchmark::DoNotOptimize(dt::matmul(ga, gb)); }},
      {"int8 gemm same MACs", [&] {
         benchmark::DoNotOptimize(dt::quant::quantized_matmul(qa, qw, act, nullptr));
       }},
      {"conv2d fwd 8ch 24x24", [&] {
         benchmark::DoNotOptimize(dt::conv2d(cx, cw, nullptr, {1, 1, 1}));
       }},
  };
  const ScopedThreads one_thread(1);
  for (const Case& c : cases) {
    double scalar_ms = 0.0, vector_ms = 0.0;
    {
      ScopedSimd scoped(du::SimdLevel::kScalar);
      scalar_ms = time_median_ms(c.body);
    }
    {
      ScopedSimd scoped(du::detected_simd_level());
      vector_ms = time_median_ms(c.body);
    }
    table.add_row({c.name, du::Table::num(scalar_ms, 3),
                   du::Table::num(vector_ms, 3),
                   du::Table::num(scalar_ms / vector_ms, 2) + "x"});
  }
  table.print();
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--print-simd-path") == 0) {
      std::printf("%s\n", dt::micro::active_path());
      return 0;
    }
  }
  std::printf("SIMD dispatch: %s (startup: %s, hardware: %s%s)\n",
              du::simd_level_name(du::simd_level()),
              du::simd_level_name(du::simd_startup_level()),
              du::simd_level_name(du::detected_simd_level()),
              du::detected_f16c() ? "+f16c" : "");
  if (du::detected_simd_level() != du::SimdLevel::kScalar) {
    print_simd_comparison();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
