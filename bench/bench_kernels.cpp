// Wall-clock microbenchmarks (google-benchmark) for the real compute and
// communication substrates: tensor kernels that execute the mini
// DeepLab-v3+, and functional simmpi collectives moving real data.
#include <benchmark/benchmark.h>

#include "dlscale/mpi/comm.hpp"
#include "dlscale/tensor/ops.hpp"
#include "dlscale/util/rng.hpp"
#include "dlscale/util/thread_pool.hpp"

namespace dt = dlscale::tensor;
namespace dm = dlscale::mpi;
namespace du = dlscale::util;

namespace {

/// Pins the kernel pool to `threads` for one benchmark run and restores
/// the previous setting on destruction (thread-count sweeps).
class ScopedThreads {
 public:
  explicit ScopedThreads(int threads) : prev_(du::global_thread_count()) {
    du::set_global_thread_count(threads);
  }
  ~ScopedThreads() { du::set_global_thread_count(prev_); }

 private:
  int prev_;
};

void BM_Conv2dForward(benchmark::State& state) {
  const int channels = static_cast<int>(state.range(0));
  dlscale::util::Rng rng(1);
  const auto x = dt::Tensor::randn({2, channels, 24, 24}, rng);
  const auto w = dt::Tensor::he_init({channels, channels, 3, 3}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dt::conv2d(x, w, nullptr, {1, 1, 1}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Conv2dForward)->Arg(8)->Arg(16)->Arg(32);

void BM_Conv2dAtrousForward(benchmark::State& state) {
  dlscale::util::Rng rng(1);
  const auto x = dt::Tensor::randn({2, 16, 24, 24}, rng);
  const auto w = dt::Tensor::he_init({16, 16, 3, 3}, rng);
  const int dilation = static_cast<int>(state.range(0));
  const dt::Conv2dSpec spec{1, dilation, dilation};
  for (auto _ : state) {
    benchmark::DoNotOptimize(dt::conv2d(x, w, nullptr, spec));
  }
}
BENCHMARK(BM_Conv2dAtrousForward)->Arg(1)->Arg(2)->Arg(4);

void BM_Conv2dBackward(benchmark::State& state) {
  dlscale::util::Rng rng(1);
  const auto x = dt::Tensor::randn({2, 16, 24, 24}, rng);
  const auto w = dt::Tensor::he_init({16, 16, 3, 3}, rng);
  const dt::Conv2dSpec spec{1, 1, 1};
  const auto y = dt::conv2d(x, w, nullptr, spec);
  const auto grad_out = dt::Tensor::full(y.shape(), 1.0f);
  for (auto _ : state) {
    dt::Tensor grad_w(w.shape());
    benchmark::DoNotOptimize(dt::conv2d_backward(x, w, grad_out, spec, grad_w, nullptr));
  }
}
BENCHMARK(BM_Conv2dBackward);

void BM_BatchNormForward(benchmark::State& state) {
  dlscale::util::Rng rng(1);
  const auto x = dt::Tensor::randn({4, 32, 24, 24}, rng);
  const auto gamma = dt::Tensor::full({32}, 1.0f);
  const auto beta = dt::Tensor::zeros({32});
  auto rm = dt::Tensor::zeros({32});
  auto rv = dt::Tensor::full({32}, 1.0f);
  dt::BatchNormCache cache;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dt::batchnorm2d(x, gamma, beta, rm, rv, true, 0.1f, 1e-5f, &cache));
  }
}
BENCHMARK(BM_BatchNormForward);

void BM_BilinearResize(benchmark::State& state) {
  dlscale::util::Rng rng(1);
  const auto x = dt::Tensor::randn({2, 32, 12, 12}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dt::bilinear_resize(x, 48, 48));
  }
}
BENCHMARK(BM_BilinearResize);

void BM_SoftmaxCrossEntropy(benchmark::State& state) {
  dlscale::util::Rng rng(1);
  const auto logits = dt::Tensor::randn({4, 6, 24, 24}, rng);
  std::vector<int> labels(4 * 24 * 24);
  for (std::size_t i = 0; i < labels.size(); ++i) labels[i] = static_cast<int>(i % 6);
  for (auto _ : state) {
    dt::Tensor grad;
    benchmark::DoNotOptimize(dt::softmax_cross_entropy(logits, labels, 255, grad));
  }
}
BENCHMARK(BM_SoftmaxCrossEntropy);

void BM_AllreduceFunctional(benchmark::State& state) {
  // Real data movement through simmpi (timing disabled): the functional
  // cost of the threaded runtime itself.
  const int world = static_cast<int>(state.range(0));
  const std::size_t count = 1 << 16;
  for (auto _ : state) {
    dm::run_world(world, [count](dm::Communicator& comm) {
      std::vector<float> data(count, static_cast<float>(comm.rank()));
      comm.allreduce(std::span<float>(data), dm::ReduceOp::kSum, dm::MemSpace::kHost);
      benchmark::DoNotOptimize(data[0]);
    });
  }
  state.SetBytesProcessed(state.iterations() * static_cast<long>(count * sizeof(float)));
}
BENCHMARK(BM_AllreduceFunctional)->Arg(2)->Arg(4)->Arg(8);

void BM_MatmulSquare(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  dlscale::util::Rng rng(1);
  const auto a = dt::Tensor::randn({n, n}, rng);
  const auto b = dt::Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dt::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_MatmulSquare)->Arg(64)->Arg(128)->Arg(256);

// GEMMs at the shapes the full-scale DLv3+ conv layers lower to via
// im2col: (out_c) x (in_c*kh*kw) times (in_c*kh*kw) x (out_h*out_w).
// 33x33 is the 513-input encoder output at stride 16.
void BM_GemmDLv3Shape(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  const int n = static_cast<int>(state.range(2));
  dlscale::util::Rng rng(1);
  const auto a = dt::Tensor::randn({m, k}, rng);
  const auto b = dt::Tensor::randn({k, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dt::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2LL * m * k * n);
}
BENCHMARK(BM_GemmDLv3Shape)
    ->Args({256, 2304, 1089})   // ASPP 3x3 atrous branch: 256ch <- 256ch*3*3
    ->Args({256, 1280, 1089})   // ASPP projection 1x1: 256ch <- 5*256ch
    ->Args({48, 256, 16641});   // decoder low-level 1x1 at stride 4 (129x129)

// Thread-count sweep on a DLv3+-like conv block (the speedup the whole
// PR exists for). Run with -DCMAKE_BUILD_TYPE=Release; Arg = pool size.
void BM_Conv2dForwardThreads(benchmark::State& state) {
  ScopedThreads scoped(static_cast<int>(state.range(0)));
  dlscale::util::Rng rng(1);
  const auto x = dt::Tensor::randn({2, 64, 33, 33}, rng);
  const auto w = dt::Tensor::he_init({64, 64, 3, 3}, rng);
  const dt::Conv2dSpec spec{1, 2, 2};  // atrous rate 2, "same" output
  for (auto _ : state) {
    benchmark::DoNotOptimize(dt::conv2d(x, w, nullptr, spec));
  }
  state.SetItemsProcessed(state.iterations() * 2);  // images/s
}
BENCHMARK(BM_Conv2dForwardThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_Conv2dBackwardThreads(benchmark::State& state) {
  ScopedThreads scoped(static_cast<int>(state.range(0)));
  dlscale::util::Rng rng(1);
  const auto x = dt::Tensor::randn({2, 64, 33, 33}, rng);
  const auto w = dt::Tensor::he_init({64, 64, 3, 3}, rng);
  const dt::Conv2dSpec spec{1, 2, 2};
  const auto y = dt::conv2d(x, w, nullptr, spec);
  const auto grad_out = dt::Tensor::full(y.shape(), 1.0f);
  for (auto _ : state) {
    dt::Tensor grad_w(w.shape());
    benchmark::DoNotOptimize(dt::conv2d_backward(x, w, grad_out, spec, grad_w, nullptr));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_Conv2dBackwardThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
