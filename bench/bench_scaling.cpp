// E3 + E4 (paper Fig: scaling comparison; Table: efficiency).
//
// Weak-scaling of DeepLab-v3+ training from 6 to 132 GPUs under the four
// configurations the paper compares:
//   {default Horovod, tuned Horovod} x {Spectrum MPI, MVAPICH2-GDR}
// followed by the headline table: 92% efficiency for tuned MVAPICH2-GDR
// at 132 GPUs, +23.9 efficiency points over default Horovod, 1.3x
// speedup.
#include <cstdio>
#include <vector>

#include "dlscale/perf/simulator.hpp"
#include "dlscale/util/table.hpp"

using namespace dlscale;

namespace {

struct Config {
  const char* label;
  net::MpiProfile profile;
  hvd::Knobs knobs;
};

perf::ScalingResult run(const Config& config, int nodes) {
  perf::ScalingConfig scaling;
  scaling.workload = models::WorkloadSpec::deeplab_v3plus(4);
  scaling.nodes = nodes;
  scaling.flop_efficiency = perf::Calibration::paper_defaults().deeplab_efficiency;
  scaling.mpi_profile = config.profile;
  scaling.knobs = config.knobs;
  scaling.warmup_iterations = 1;
  scaling.iterations = 2;
  return perf::simulate(scaling);
}

}  // namespace

int main() {
  const Config configs[] = {
      {"Spectrum / default", net::MpiProfile::spectrum_like(), hvd::Knobs::horovod_defaults()},
      {"Spectrum / tuned", net::MpiProfile::spectrum_like(), hvd::Knobs::paper_tuned()},
      {"MVAPICH2-GDR / default", net::MpiProfile::mvapich2_gdr_like(),
       hvd::Knobs::horovod_defaults()},
      {"MVAPICH2-GDR / tuned", net::MpiProfile::mvapich2_gdr_like(), hvd::Knobs::paper_tuned()},
  };
  const int node_counts[] = {1, 2, 4, 8, 14, 22};

  util::Table throughput("E3 — Weak scaling, DeepLab-v3+ images/sec (paper Fig. scaling)");
  util::Table efficiency("E4 — Scaling efficiency vs 1 GPU (paper Table)");
  std::vector<std::string> header{"GPUs", "ideal"};
  for (const Config& config : configs) header.push_back(config.label);
  throughput.set_header(header);
  efficiency.set_header(header);

  const double single = perf::single_gpu_throughput(
      models::WorkloadSpec::deeplab_v3plus(4),
      perf::Calibration::paper_defaults().deeplab_efficiency);

  perf::ScalingResult best132{}, default132{};
  for (int nodes : node_counts) {
    const int gpus = nodes * 6;
    std::vector<std::string> trow{util::Table::num(static_cast<long long>(gpus)),
                                  util::Table::num(single * gpus, 1)};
    std::vector<std::string> erow{util::Table::num(static_cast<long long>(gpus)), "100.0%"};
    for (const Config& config : configs) {
      const auto result = run(config, nodes);
      trow.push_back(util::Table::num(result.images_per_s, 1));
      erow.push_back(util::Table::pct(result.scaling_efficiency));
      if (nodes == 22) {
        if (std::string(config.label) == "MVAPICH2-GDR / tuned") best132 = result;
        if (std::string(config.label) == "Spectrum / default") default132 = result;
      }
    }
    throughput.add_row(trow);
    efficiency.add_row(erow);
    std::fprintf(stderr, "... %d GPUs done\n", gpus);
  }
  throughput.print();
  std::printf("\n");
  efficiency.print();

  std::printf("\n== Headline comparison at 132 GPUs (paper abstract) ==\n");
  util::Table headline;
  headline.set_header({"quantity", "ours", "paper"});
  headline.add_row({"tuned MVAPICH2-GDR efficiency",
                    util::Table::pct(best132.scaling_efficiency), "92%"});
  headline.add_row({"default Horovod efficiency",
                    util::Table::pct(default132.scaling_efficiency), "~68% (implied)"});
  headline.add_row(
      {"efficiency improvement",
       util::Table::num((best132.scaling_efficiency - default132.scaling_efficiency) * 100.0, 1) +
           " points",
       "23.9 points"});
  headline.add_row({"training speedup",
                    util::Table::num(best132.images_per_s / default132.images_per_s, 2) + "x",
                    "1.3x"});
  headline.print();
  return 0;
}
