// E9 (ablation: tensor fusion / negotiation mechanics).
//
// For the DLv3+ gradient stream (283 tensors, ~209 MiB) on 48 GPUs:
// collective launches, negotiation cycles, cache hits, and control-plane
// traffic as a function of HOROVOD_FUSION_THRESHOLD and the response
// cache — the mechanics behind the knob sweep's shape.
#include <cstdio>

#include "dlscale/perf/simulator.hpp"
#include "dlscale/util/env.hpp"
#include "dlscale/util/table.hpp"

using namespace dlscale;

namespace {

perf::ScalingResult run(std::size_t fusion, bool cache) {
  perf::ScalingConfig config;
  config.workload = models::WorkloadSpec::deeplab_v3plus(4);
  config.nodes = 8;  // 48 GPUs
  config.flop_efficiency = perf::Calibration::paper_defaults().deeplab_efficiency;
  config.mpi_profile = net::MpiProfile::mvapich2_gdr_like();
  config.knobs.fusion_threshold = fusion;
  config.knobs.response_cache = cache;
  config.knobs.cycle_time_s = 3.5e-3;
  config.warmup_iterations = 1;
  config.iterations = 2;
  return perf::simulate(config);
}

}  // namespace

int main() {
  const auto workload = models::WorkloadSpec::deeplab_v3plus(4);
  std::printf("Gradient stream: %zu tensors, %s total\n\n", workload.num_tensors(),
              util::format_bytes(workload.total_param_bytes()).c_str());

  util::Table table("E9 — Fusion/negotiation mechanics, 48 GPUs, MVAPICH2-GDR (per iteration)");
  table.set_header({"fusion threshold", "cache", "allreduce launches", "cycles",
                    "cache-hit cycles", "control KiB", "img/s"});
  for (std::size_t fusion : {std::size_t{64} << 10, std::size_t{1} << 20, std::size_t{8} << 20,
                             std::size_t{64} << 20, std::size_t{256} << 20}) {
    for (bool cache : {false, true}) {
      const auto result = run(fusion, cache);
      const double iters = 2.0;
      table.add_row({util::format_bytes(fusion), cache ? "on" : "off",
                     util::Table::num(static_cast<long long>(
                         static_cast<double>(result.hvd_stats.fused_batches) / iters)),
                     util::Table::num(static_cast<long long>(
                         static_cast<double>(result.hvd_stats.cycles) / iters)),
                     util::Table::num(static_cast<long long>(
                         static_cast<double>(result.hvd_stats.cache_hit_cycles) / iters)),
                     util::Table::num(static_cast<double>(result.hvd_stats.control_bytes) /
                                          iters / 1024.0,
                                      1),
                     util::Table::num(result.images_per_s, 1)});
    }
    std::fprintf(stderr, "... fusion %s done\n", util::format_bytes(fusion).c_str());
  }
  table.print();

  std::printf(
      "\nShape check: launches fall ~linearly as the fusion window grows (283 tensors\n"
      "collapse into a handful of fused allreduces at 64 MiB); the response cache\n"
      "replaces name gathers with bitvector exchanges, cutting control traffic while\n"
      "leaving launch counts unchanged.\n");
  return 0;
}
