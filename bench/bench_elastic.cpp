// Elastic recovery cost: 4 -> 3 ranks, mid-epoch rank failure.
//
// The paper's Summit runs budget for node failure by checkpointing and
// resubmitting; the elastic trainer instead shrinks the communicator and
// continues on the survivors (DESIGN.md section 11). This bench injects a
// kill on rank 2 mid-epoch and reports what the recovery cost: iteration
// attempts replayed from the last checkpoint, wall-clock time spent in
// shrink + rebuild + restore, and the virtual-time position of the
// failure. A healthy 4-rank run of the same config anchors the accuracy
// comparison: the degraded run should land in the same mIOU band.
#include <cstdio>

#include "dlscale/train/elastic.hpp"
#include "dlscale/util/table.hpp"

using namespace dlscale;

namespace {

constexpr int kKillRank = 2;
constexpr int kKillStep = 40;

train::TrainConfig make_config() {
  train::TrainConfig config;
  config.model = {.in_channels = 3, .num_classes = 6, .input_size = 24, .width = 8};
  config.dataset = {.image_size = 24, .num_classes = 6, .max_shapes = 3, .noise = 0.12f,
                    .seed = 2020};
  config.train_samples = 96;
  config.eval_samples = 48;
  config.batch_per_rank = 2;
  config.epochs = 8;
  config.schedule = {0.08, 0.9, 0};
  config.knobs.cycle_time_s = 1e-4;
  config.seed = 7;
  return config;
}

mpi::WorldOptions world_options() {
  mpi::WorldOptions options;
  options.topology = net::Topology::single_node(4);
  options.profile = net::MpiProfile::mvapich2_gdr_like();
  options.timing = true;
  return options;
}

}  // namespace

int main() {
  // Healthy reference: same config, nobody dies.
  train::TrainReport healthy;
  {
    mpi::WorldOptions options = world_options();
    mpi::run_world(options, [&](mpi::Communicator& comm) {
      auto result = train::train_distributed(comm, make_config());
      if (comm.rank() == 0) healthy = std::move(result);
    });
  }
  std::fprintf(stderr, "... healthy 4-rank run done (mIOU %.3f)\n", healthy.final_miou());

  // Degraded run: rank 2 is killed at step 40; survivors shrink to 3
  // ranks and restore from the last per-epoch checkpoint.
  train::TrainReport degraded;
  std::vector<train::RecoveryEvent> recoveries;
  {
    mpi::WorldOptions options = world_options();
    options.faults.kills = {{kKillRank, kKillStep}};
    mpi::run_world(options, [&](mpi::Communicator& comm) {
      train::ElasticConfig config;
      config.train = make_config();
      config.checkpoint_path = "/tmp/dlscale_bench_elastic.ckpt";
      config.checkpoint_every_epochs = 1;
      train::ElasticTrainer elastic(comm, config);
      auto result = elastic.run();
      if (elastic.comm().rank() == 0) {
        degraded = std::move(result);
        recoveries = elastic.recoveries();
      }
    });
    std::remove("/tmp/dlscale_bench_elastic.ckpt");
  }
  std::fprintf(stderr, "... elastic 4->3 run done (mIOU %.3f)\n", degraded.final_miou());

  util::Table table("Elastic recovery — rank 2 killed at step 40, 4 -> 3 ranks");
  table.set_header({"run", "ranks", "steps", "final loss", "final mIOU"});
  table.add_row({"healthy", "4", util::Table::num(static_cast<long long>(healthy.steps)),
                 util::Table::num(healthy.epochs.back().train_loss, 4),
                 util::Table::pct(healthy.final_miou())});
  table.add_row({"elastic (1 failure)", "4 -> 3",
                 util::Table::num(static_cast<long long>(degraded.steps)),
                 util::Table::num(degraded.epochs.back().train_loss, 4),
                 util::Table::pct(degraded.final_miou())});
  table.print();

  std::printf("\n== Recovery cost ==\n");
  util::Table cost;
  cost.set_header({"failed rank", "at step", "resumed at", "steps to recover",
                   "recovery wall (ms)", "failure virtual t (s)"});
  for (const auto& event : recoveries) {
    cost.add_row({util::Table::num(static_cast<long long>(event.failed_global_rank)),
                  util::Table::num(static_cast<long long>(event.step_at_failure)),
                  util::Table::num(static_cast<long long>(event.resumed_step)),
                  util::Table::num(static_cast<long long>(event.steps_replayed)),
                  util::Table::num(event.wall_recovery_s * 1e3, 2),
                  util::Table::num(event.virtual_time_s, 3)});
  }
  cost.print();

  std::printf(
      "\nShape check: the elastic run loses rank %d at step %d, replays the steps since\n"
      "the last checkpoint on 3 survivors, and still converges into the healthy run's\n"
      "mIOU band — failure costs replayed steps and a sub-second rebuild, not the job.\n",
      kKillRank, kKillStep);
  return 0;
}
