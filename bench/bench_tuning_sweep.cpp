// E5 (paper Fig: Horovod knob sweep).
//
// Images/sec at 132 GPUs while sweeping the two Horovod knobs the paper
// tunes: HOROVOD_FUSION_THRESHOLD and HOROVOD_CYCLE_TIME. The sweep runs
// under BOTH library profiles because the knobs' leverage depends on the
// library: under Spectrum (communication exposed) the surface is steep;
// under MVAPICH2-GDR (communication fully overlapped at this batch size)
// it is a plateau — which is itself the paper's point that the library
// choice dominates and only modest knob changes are needed after it.
#include <cstdio>
#include <vector>

#include "dlscale/perf/simulator.hpp"
#include "dlscale/util/env.hpp"
#include "dlscale/util/table.hpp"

using namespace dlscale;

namespace {

void sweep(const net::MpiProfile& profile) {
  const std::size_t fusions[] = {1 << 20, 8 << 20, 64 << 20};
  const double cycles_ms[] = {3.5, 10.0, 25.0};
  const int nodes = 22;  // 132 GPUs

  util::Table table("E5 — Tuning sweep: img/s on 132 GPUs, " + profile.name +
                    " (fusion threshold x cycle time)");
  std::vector<std::string> header{"fusion \\ cycle"};
  for (double ms : cycles_ms) header.push_back(util::Table::num(ms, 1) + " ms");
  table.set_header(header);

  double best = 0.0, worst = 1e18;
  std::size_t best_fusion = 0;
  double best_cycle = 0.0;
  for (std::size_t fusion : fusions) {
    std::vector<std::string> row{util::format_bytes(fusion)};
    for (double cycle_ms : cycles_ms) {
      perf::ScalingConfig config;
      config.workload = models::WorkloadSpec::deeplab_v3plus(4);
      config.nodes = nodes;
      config.flop_efficiency = perf::Calibration::paper_defaults().deeplab_efficiency;
      config.mpi_profile = profile;
      config.knobs.fusion_threshold = fusion;
      config.knobs.cycle_time_s = cycle_ms * 1e-3;
      config.knobs.hierarchical_allreduce = false;
      config.knobs.response_cache = true;
      config.warmup_iterations = 1;
      config.iterations = 1;
      const auto result = perf::simulate(config);
      row.push_back(util::Table::num(result.images_per_s, 1));
      if (result.images_per_s > best) {
        best = result.images_per_s;
        best_fusion = fusion;
        best_cycle = cycle_ms;
      }
      worst = std::min(worst, result.images_per_s);
    }
    table.add_row(row);
    std::fprintf(stderr, "... %s fusion %s done\n", profile.name.c_str(),
                 util::format_bytes(fusion).c_str());
  }
  table.print();
  std::printf("Best cell: fusion %s, cycle %.1f ms -> %.1f img/s (worst %.1f; %.0f%% spread)\n\n",
              util::format_bytes(best_fusion).c_str(), best_cycle, best, worst,
              (best / worst - 1.0) * 100.0);
}

}  // namespace

int main() {
  sweep(net::MpiProfile::spectrum_like());
  sweep(net::MpiProfile::mvapich2_gdr_like());
  std::printf(
      "Shape check: under the staged default library the surface is steep — tiny fusion\n"
      "windows multiply per-launch staging costs and 25 ms cycles add trailing-gradient\n"
      "latency; under MVAPICH2-GDR the same sweep is a plateau because communication\n"
      "already hides behind backprop. The tuning ridge (tens-of-MB fusion, few-ms cycle)\n"
      "matches the paper's chosen values.\n");
  return 0;
}
