// E8 (ablation: GPUDirect vs host-staged transfer path).
//
// Point-to-point inter-node bandwidth vs message size for device buffers
// under both library profiles, plus host buffers as the reference — the
// osu_bw-style view of WHY MVAPICH2-GDR's allreduce wins: it keeps
// GPUDirect RDMA engaged through the sizes gradient fusion produces,
// where Spectrum falls off the staging cliff.
#include <cstdio>

#include "dlscale/mpi/comm.hpp"
#include "dlscale/util/env.hpp"
#include "dlscale/util/table.hpp"

using namespace dlscale;

namespace {

double pt2pt_bandwidth(const net::MpiProfile& profile, std::size_t bytes, mpi::MemSpace space) {
  mpi::WorldOptions options;
  options.topology = net::Topology::summit(2);
  options.profile = profile;
  options.timing = true;
  double elapsed = 0.0;
  mpi::run_world(options, [&](mpi::Communicator& comm) {
    constexpr int kReps = 4;
    if (comm.rank() == 0) {
      for (int rep = 0; rep < kReps; ++rep) comm.send(6, rep, {}, space, bytes);
    } else if (comm.rank() == 6) {
      const double t0 = comm.now();
      for (int rep = 0; rep < kReps; ++rep) comm.recv(0, rep, {}, space, bytes);
      elapsed = (comm.now() - t0) / kReps;
    }
  });
  return static_cast<double>(bytes) / elapsed;
}

}  // namespace

int main() {
  const std::size_t sizes[] = {4 << 10, 32 << 10, 256 << 10, 1 << 20,
                               4 << 20, 16 << 20, 64 << 20};
  const auto spectrum = net::MpiProfile::spectrum_like();
  const auto mvapich = net::MpiProfile::mvapich2_gdr_like();

  util::Table table("E8 — Inter-node pt2pt bandwidth (GB/s), osu_bw-style");
  table.set_header({"message size", "Spectrum host", "Spectrum device", "MVAPICH host",
                    "MVAPICH device", "device gap"});
  for (std::size_t bytes : sizes) {
    const double sp_host = pt2pt_bandwidth(spectrum, bytes, mpi::MemSpace::kHost);
    const double sp_dev = pt2pt_bandwidth(spectrum, bytes, mpi::MemSpace::kDevice);
    const double mv_host = pt2pt_bandwidth(mvapich, bytes, mpi::MemSpace::kHost);
    const double mv_dev = pt2pt_bandwidth(mvapich, bytes, mpi::MemSpace::kDevice);
    table.add_row({util::format_bytes(bytes), util::Table::num(sp_host / 1e9, 2),
                   util::Table::num(sp_dev / 1e9, 2), util::Table::num(mv_host / 1e9, 2),
                   util::Table::num(mv_dev / 1e9, 2),
                   util::Table::num(mv_dev / sp_dev, 1) + "x"});
  }
  table.print();

  std::printf(
      "\nShape check: host-buffer bandwidth is comparable across libraries; device-buffer\n"
      "bandwidth diverges sharply above Spectrum's small GDR window (16 KiB) where it\n"
      "stages through host bounce buffers, while MVAPICH2-GDR rides GPUDirect + dual-rail\n"
      "striping to wire speed (paper Fig. GDR ablation).\n");
  return 0;
}
