// E7 (ablation: HOROVOD_HIERARCHICAL_ALLREDUCE).
//
// Flat vs hierarchical allreduce across message sizes and node counts for
// both library profiles, using each library's own algorithm selection.
// The interesting reproduced structure: under the staged Spectrum path
// the two are close (the per-process staging pipeline is the bottleneck),
// while MVAPICH2-GDR's topology-aware flat ring wins outright at large
// sizes — so the hierarchical knob matters most where the library's flat
// path is weak.
#include <cstdio>

#include "dlscale/mpi/comm.hpp"
#include "dlscale/util/env.hpp"
#include "dlscale/util/table.hpp"

using namespace dlscale;

namespace {

double measure(const net::MpiProfile& profile, int nodes, std::size_t bytes, bool hierarchical) {
  mpi::WorldOptions options;
  options.topology = net::Topology::summit(nodes);
  options.profile = profile;
  options.timing = true;
  double elapsed = 0.0;
  mpi::run_world(options, [&](mpi::Communicator& comm) {
    if (hierarchical) {
      // Warm the cached sub-communicators, then measure.
      comm.hierarchical_allreduce_sim(64, mpi::MemSpace::kDevice);
    }
    comm.barrier();
    const double t0 = comm.now();
    constexpr int kReps = 2;
    for (int rep = 0; rep < kReps; ++rep) {
      if (hierarchical) {
        comm.hierarchical_allreduce_sim(bytes, mpi::MemSpace::kDevice);
      } else {
        comm.allreduce_sim(bytes, mpi::MemSpace::kDevice);
      }
    }
    comm.barrier();
    if (comm.rank() == 0) elapsed = (comm.now() - t0) / kReps;
  });
  return elapsed;
}

}  // namespace

int main() {
  const std::size_t sizes[] = {64 << 10, 1 << 20, 8 << 20, 64 << 20};

  for (const auto& profile :
       {net::MpiProfile::spectrum_like(), net::MpiProfile::mvapich2_gdr_like()}) {
    for (int nodes : {4, 22}) {
      util::Table table("E7 — Flat vs hierarchical allreduce, " + profile.name + ", " +
                        std::to_string(nodes * 6) + " GPUs");
      table.set_header({"message size", "flat (ms)", "hierarchical (ms)", "hier/flat"});
      for (std::size_t bytes : sizes) {
        const double flat = measure(profile, nodes, bytes, false);
        const double hier = measure(profile, nodes, bytes, true);
        table.add_row({util::format_bytes(bytes), util::Table::num(flat * 1e3, 2),
                       util::Table::num(hier * 1e3, 2), util::Table::num(hier / flat, 2)});
      }
      table.print();
      std::printf("\n");
    }
  }
  std::printf(
      "Shape check: hierarchy is roughly neutral under Spectrum's staged pipeline and\n"
      "counterproductive for MVAPICH2-GDR's already-optimal large-message ring;\n"
      "its real value in the paper's tuned configuration is protecting the weak\n"
      "flat path of the default library at scale.\n");
  return 0;
}
