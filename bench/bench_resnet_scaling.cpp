// Extension (beyond the paper's figures): ResNet-50 weak scaling under
// the same four configurations as E3.
//
// The paper uses ResNet-50 only as the single-GPU throughput reference
// (300 img/s). Scaling it through the same harness completes the
// picture — and shows something the paper's framing implies but never
// plots: per *second* of compute, ResNet-50 is actually more
// communication-intensive than DeepLab-v3+ (102 MiB of gradients every
// ~0.21 s vs 209 MiB every ~0.60 s), so the MPI library gap bites the
// "easy" classification workload even harder at scale.
#include <cstdio>

#include "dlscale/perf/simulator.hpp"
#include "dlscale/util/env.hpp"
#include "dlscale/util/table.hpp"

using namespace dlscale;

int main() {
  struct Config {
    const char* label;
    net::MpiProfile profile;
    hvd::Knobs knobs;
  };
  const Config configs[] = {
      {"Spectrum / default", net::MpiProfile::spectrum_like(), hvd::Knobs::horovod_defaults()},
      {"Spectrum / tuned", net::MpiProfile::spectrum_like(), hvd::Knobs::paper_tuned()},
      {"MVAPICH2-GDR / default", net::MpiProfile::mvapich2_gdr_like(),
       hvd::Knobs::horovod_defaults()},
      {"MVAPICH2-GDR / tuned", net::MpiProfile::mvapich2_gdr_like(), hvd::Knobs::paper_tuned()},
  };

  const auto workload = models::WorkloadSpec::resnet50(64);
  const double efficiency = perf::Calibration::paper_defaults().resnet_efficiency;
  const double single = perf::single_gpu_throughput(workload, efficiency);
  std::printf("ResNet-50: %.0f img/s on one V100 (paper: 300); gradients %s per %.0f ms\n\n",
              single, util::format_bytes(workload.total_param_bytes()).c_str(),
              1000.0 * workload.batch_per_gpu / single);

  util::Table efficiency_table("Extension — ResNet-50 weak scaling efficiency");
  std::vector<std::string> header{"GPUs"};
  for (const Config& config : configs) header.push_back(config.label);
  efficiency_table.set_header(header);

  for (int nodes : {1, 4, 12, 22}) {
    std::vector<std::string> row{util::Table::num(static_cast<long long>(nodes * 6))};
    for (const Config& config : configs) {
      perf::ScalingConfig scaling;
      scaling.workload = workload;
      scaling.nodes = nodes;
      scaling.flop_efficiency = efficiency;
      scaling.mpi_profile = config.profile;
      scaling.knobs = config.knobs;
      scaling.warmup_iterations = 1;
      scaling.iterations = 1;
      const auto result = perf::simulate(scaling);
      row.push_back(util::Table::pct(result.scaling_efficiency));
    }
    efficiency_table.add_row(row);
    std::fprintf(stderr, "... %d nodes done\n", nodes);
  }
  efficiency_table.print();
  std::printf(
      "\nShape check: the library/knob ordering from E3/E4 carries over to the\n"
      "classification workload, with deeper default-configuration losses because the\n"
      "gradient-to-compute ratio is higher.\n");
  return 0;
}
