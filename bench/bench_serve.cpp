// Serving throughput/latency vs dynamic-batch size (serve:: subsystem).
//
// Closed-loop load: K concurrent clients each keep exactly one request in
// flight against one Server. Sweeping max_batch at a fixed worker count
// isolates what batch coalescing alone buys: the same K-deep offered load
// is answered as K solo forwards (max_batch=1) or as a handful of wide
// ones. The batched GEMM column-throughput headroom (DESIGN.md §6) is
// what turns wider batches into requests/s.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "dlscale/http/protocol.hpp"
#include "dlscale/http/server.hpp"
#include "dlscale/models/deeplab.hpp"
#include "dlscale/serve/model_registry.hpp"
#include "dlscale/serve/server.hpp"
#include "dlscale/tensor/planner.hpp"
#include "dlscale/train/checkpoint.hpp"
#include "dlscale/util/arena.hpp"
#include "dlscale/util/mem_stats.hpp"
#include "dlscale/util/rng.hpp"
#include "dlscale/util/table.hpp"

using namespace dlscale;

namespace {

constexpr int kClients = 16;
constexpr int kRequestsPerClient = 24;

// input_size 16 keeps the deep layers' per-sample GEMM column counts well
// under the micro-kernel's saturation width, so co-batching still widens
// real GEMMs; at 32x32 inputs a single sample already saturates them and
// batching buys little (the probe sweep behind this choice: 16x16/width16
// gives ~3x per-sample batch-8 speedup, 32x32 gives ~1x).
models::MiniDeepLabV3Plus::Config model_config() {
  return {.in_channels = 3, .num_classes = 8, .input_size = 16, .width = 64};
}

struct RunResult {
  double requests_per_s = 0.0;
  double mean_batch = 0.0;
  serve::ServerStats stats;
};

RunResult run_load(const std::string& checkpoint, int workers, int max_batch,
                   nn::Precision precision = nn::Precision::kFp32) {
  serve::ServeConfig config;
  config.model = model_config();
  config.workers = workers;
  config.max_batch = max_batch;
  // Window long enough for the closed-loop clients to pile up behind a
  // busy worker, short against a forward (~ms) so it never dominates.
  config.max_wait_us = 300;
  config.queue_capacity = kClients * 4;
  config.quantize.precision = precision;
  if (precision == nn::Precision::kInt8) {
    // Calibrate on the same distribution the clients send (randn images),
    // so static activation ranges match the benchmark load.
    util::Rng rng(9);
    const auto& m = config.model;
    config.quantize.calibration_images =
        tensor::Tensor::randn({4, m.in_channels, m.input_size, m.input_size}, rng, 1.0f);
  }
  serve::Server server(config, checkpoint);

  auto client = [&](int id) {
    util::Rng rng(static_cast<std::uint64_t>(100 + id));
    const auto& m = config.model;
    for (int i = 0; i < kRequestsPerClient; ++i) {
      tensor::Tensor image =
          tensor::Tensor::randn({1, m.in_channels, m.input_size, m.input_size}, rng, 1.0f);
      auto f = server.submit(std::move(image));
      if (f.has_value()) (void)f->get();  // one in flight per client
    }
  };

  // Warm the replicas and thread-local scratch outside the timed window.
  {
    util::Rng rng(7);
    const auto& m = config.model;
    auto f = server.submit(
        tensor::Tensor::randn({1, m.in_channels, m.input_size, m.input_size}, rng, 1.0f));
    if (f.has_value()) (void)f->get();
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) clients.emplace_back(client, c);
  for (std::thread& t : clients) t.join();
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  RunResult result;
  result.stats = server.stats();
  const auto served = static_cast<double>(result.stats.completed) - 1.0;  // minus warmup
  result.requests_per_s = served / elapsed_s;
  result.mean_batch = result.stats.mean_batch_size;
  return result;
}

/// The same closed-loop load as run_load, but through the socket
/// front-end: kClients keep-alive connections, one JSON predict in
/// flight each. The delta against run_load is the HTTP tax — framing,
/// JSON encode/decode of the image and logits, and loopback TCP.
RunResult run_http_load(const std::string& checkpoint, int workers, int max_batch,
                        nn::Precision precision) {
  serve::ServeConfig config;
  config.model = model_config();
  config.workers = workers;
  config.max_batch = max_batch;
  config.max_wait_us = 300;
  config.queue_capacity = kClients * 4;
  config.quantize.precision = precision;
  if (precision == nn::Precision::kInt8) {
    util::Rng rng(9);
    const auto& m = config.model;
    config.quantize.calibration_images =
        tensor::Tensor::randn({4, m.in_channels, m.input_size, m.input_size}, rng, 1.0f);
  }
  serve::ModelRegistry registry;
  registry.add_model("bench", std::move(config), checkpoint);
  http::HttpServer frontend(registry);
  const std::string target = "/v1/models/bench:predict";
  const auto cfg = model_config();

  auto client = [&](int id) {
    http::Connection connection(util::Socket::connect_loopback(frontend.port()));
    util::Rng rng(static_cast<std::uint64_t>(100 + id));
    for (int i = 0; i < kRequestsPerClient; ++i) {
      const tensor::Tensor image = tensor::Tensor::randn(
          {1, cfg.in_channels, cfg.input_size, cfg.input_size}, rng, 1.0f);
      http::PredictRequest predict;
      predict.shape.assign(image.shape().begin(), image.shape().end());
      predict.image.assign(image.ptr(), image.ptr() + image.numel());
      http::Request request;
      request.method = "POST";
      request.target = target;
      request.body = util::json::to_json(predict);
      if (!connection.write(request)) return;
      auto response = connection.read_response(64ull * 1024 * 1024);
      if (!response || response->status != 200) return;
    }
  };

  // Warm the connection path and the replicas outside the timed window.
  client(-1);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) clients.emplace_back(client, c);
  for (std::thread& t : clients) t.join();
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  RunResult result;
  result.stats = registry.stats("bench");
  const auto served =
      static_cast<double>(result.stats.completed) - kRequestsPerClient;  // minus warmup
  result.requests_per_s = served / elapsed_s;
  result.mean_batch = result.stats.mean_batch_size;
  return result;
}

}  // namespace

int main() {
  const auto cfg = model_config();
  const std::string checkpoint =
      (std::filesystem::temp_directory_path() / "dlscale_bench_serve_ckpt.bin").string();
  {
    util::Rng rng(1);
    models::MiniDeepLabV3Plus model(cfg, rng);
    train::save_model(model.parameters(), model.buffers(), checkpoint);
  }

  util::Table table("Serving throughput vs dynamic batch size (" + std::to_string(kClients) +
                    " closed-loop clients, input " + std::to_string(cfg.input_size) + "x" +
                    std::to_string(cfg.input_size) + ")");
  table.set_header({"workers", "max_batch", "mean batch", "req/s", "p50 ms", "p95 ms", "p99 ms",
                    "speedup"});

  for (int workers : {1, 2}) {
    double baseline = 0.0;
    for (int max_batch : {1, 4, 8, 16}) {
      const RunResult r = run_load(checkpoint, workers, max_batch);
      if (max_batch == 1) baseline = r.requests_per_s;
      table.add_row({std::to_string(workers), std::to_string(max_batch),
                     util::Table::num(r.mean_batch, 2), util::Table::num(r.requests_per_s, 1),
                     util::Table::num(r.stats.total_p50_us / 1e3, 2),
                     util::Table::num(r.stats.total_p95_us / 1e3, 2),
                     util::Table::num(r.stats.total_p99_us / 1e3, 2),
                     util::Table::num(r.requests_per_s / baseline, 2) + "x"});
      std::fprintf(stderr, "... workers=%d max_batch=%d done (%.1f req/s)\n", workers, max_batch,
                   r.requests_per_s);
    }
  }
  table.print();
  std::printf(
      "\nDynamic batching converts queueing delay into GEMM width: the same\n"
      "offered load served in wider forwards amortises im2col + weight reuse\n"
      "across co-batched images (acceptance: max_batch=8 >= 2x max_batch=1).\n\n");

  // Precision sweep at fixed workers/max_batch: the same checkpoint served
  // fp32, bf16 (weights stored narrow, widened on load) and int8 (static
  // quantization, integer GEMM). DESIGN.md §9.
  util::Table qtable("Serving throughput vs precision (workers=1, max_batch=16)");
  qtable.set_header({"precision", "mean batch", "req/s", "p50 ms", "p95 ms", "p99 ms",
                     "speedup"});
  double fp32_rps = 0.0;
  for (nn::Precision precision :
       {nn::Precision::kFp32, nn::Precision::kBf16, nn::Precision::kInt8}) {
    // Best of two runs per precision: one closed-loop pass is short enough
    // that a scheduler hiccup shifts req/s by ~10%, which would drown the
    // bf16-vs-fp32 delta.
    RunResult r = run_load(checkpoint, /*workers=*/1, /*max_batch=*/16, precision);
    const RunResult again = run_load(checkpoint, /*workers=*/1, /*max_batch=*/16, precision);
    if (again.requests_per_s > r.requests_per_s) r = again;
    if (precision == nn::Precision::kFp32) fp32_rps = r.requests_per_s;
    qtable.add_row({r.stats.precision, util::Table::num(r.mean_batch, 2),
                    util::Table::num(r.requests_per_s, 1),
                    util::Table::num(r.stats.total_p50_us / 1e3, 2),
                    util::Table::num(r.stats.total_p95_us / 1e3, 2),
                    util::Table::num(r.stats.total_p99_us / 1e3, 2),
                    util::Table::num(r.requests_per_s / fp32_rps, 2) + "x"});
    std::fprintf(stderr, "... precision=%s done (%.1f req/s)\n", r.stats.precision,
                 r.requests_per_s);
  }
  qtable.print();
  std::printf(
      "\nint8 replaces the fp32 GEMM with u8*s8 dot products (4 MACs per 16-bit\n"
      "lane) plus a per-channel dequantize epilogue; bf16 only halves weight\n"
      "storage and pays a widen per forward (acceptance: int8 >= 2x fp32 req/s\n"
      "at equal workers/max_batch).\n");

  // HTTP loopback vs in-process: the same closed-loop load through the
  // socket front-end. The gap is pure serving overhead — HTTP/1.1
  // framing, the JSON float round-trip on images and logits, loopback
  // TCP — and stays a protocol tax, not a throughput collapse, because
  // connection threads park on the same model futures either way.
  util::Table htable("HTTP loopback vs in-process (workers=1, max_batch=16, " +
                     std::to_string(kClients) + " clients)");
  htable.set_header({"path", "precision", "req/s", "p50 ms", "p99 ms", "vs in-proc"});
  for (nn::Precision precision : {nn::Precision::kFp32, nn::Precision::kInt8}) {
    RunResult inproc = run_load(checkpoint, /*workers=*/1, /*max_batch=*/16, precision);
    const RunResult inproc2 = run_load(checkpoint, /*workers=*/1, /*max_batch=*/16, precision);
    if (inproc2.requests_per_s > inproc.requests_per_s) inproc = inproc2;
    RunResult over_http = run_http_load(checkpoint, /*workers=*/1, /*max_batch=*/16, precision);
    const RunResult http2 = run_http_load(checkpoint, /*workers=*/1, /*max_batch=*/16, precision);
    if (http2.requests_per_s > over_http.requests_per_s) over_http = http2;
    htable.add_row({"in-process", inproc.stats.precision,
                    util::Table::num(inproc.requests_per_s, 1),
                    util::Table::num(inproc.stats.total_p50_us / 1e3, 2),
                    util::Table::num(inproc.stats.total_p99_us / 1e3, 2), "1.00x"});
    htable.add_row({"http", over_http.stats.precision,
                    util::Table::num(over_http.requests_per_s, 1),
                    util::Table::num(over_http.stats.total_p50_us / 1e3, 2),
                    util::Table::num(over_http.stats.total_p99_us / 1e3, 2),
                    util::Table::num(over_http.requests_per_s / inproc.requests_per_s, 2) + "x"});
    std::fprintf(stderr, "... http loopback precision=%s done (%.1f req/s vs %.1f in-proc)\n",
                 over_http.stats.precision, over_http.requests_per_s, inproc.requests_per_s);
  }
  htable.print();
  std::printf(
      "\nThe http rows pay JSON encode/decode of every image and logit plus\n"
      "loopback TCP framing; the model-side p50/p99 stay close to in-process\n"
      "because batching happens behind the queue either way.\n");

  // Activation-memory report: trace one max-width eval forward (the shape
  // a full dynamic batch serves) and pack it with the liveness planner —
  // the per-worker arena bytes serving actually touches vs the naive
  // every-Tensor-its-own-bytes sum (DESIGN.md §10).
  {
    util::Rng rng(1);
    models::MiniDeepLabV3Plus model(cfg, rng);
    util::Rng img_rng(5);
    const tensor::Tensor batch = tensor::Tensor::randn(
        {8, cfg.in_channels, cfg.input_size, cfg.input_size}, img_rng, 1.0f);
    util::Arena arena;
    arena.begin_trace();
    {
      util::ArenaScope scope(arena);
      (void)model.forward(batch, /*train=*/false);
    }
    const util::MemoryPlan plan = tensor::MemoryPlanner::pack(arena.take_trace());
    std::printf("\nActivation memory (batch-8 eval forward): naive %zu bytes, packed %zu bytes"
                " (%.1f%%); per-worker arena watermark %zu bytes\n",
                plan.naive_bytes, plan.peak_bytes,
                plan.naive_bytes == 0 ? 0.0
                                      : 100.0 * static_cast<double>(plan.peak_bytes) /
                                            static_cast<double>(plan.naive_bytes),
                arena.watermark());
  }
  std::printf("peak RSS: %.1f MiB\n",
              static_cast<double>(util::peak_rss_bytes()) / (1024.0 * 1024.0));
  std::remove(checkpoint.c_str());
  return 0;
}
