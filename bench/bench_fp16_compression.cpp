// Extension (optional feature): HOROVOD_FP16_ALLREDUCE gradient
// compression at 132 GPUs.
//
// Not a figure in this paper, but the era's standard next knob after the
// ones it tunes (and a headline feature of the same group's MVAPICH2
// work): compress gradients to half precision before the allreduce,
// halving wire bytes. The interesting reproduced structure: fp16 buys
// the most where communication is exposed (Spectrum default), and almost
// nothing where it is already hidden (tuned MVAPICH2-GDR) — compression
// is a substitute for, not a complement to, a fast library.
#include <cstdio>

#include "dlscale/perf/simulator.hpp"
#include "dlscale/util/env.hpp"
#include "dlscale/util/table.hpp"

using namespace dlscale;

int main() {
  util::Table table("Extension — fp16 gradient compression, DLv3+ @ 132 GPUs");
  table.set_header({"library", "knobs", "fp16", "img/s", "efficiency", "gain"});

  struct Row {
    const char* label;
    net::MpiProfile profile;
    hvd::Knobs knobs;
  };
  const Row rows[] = {
      {"SpectrumMPI", net::MpiProfile::spectrum_like(), hvd::Knobs::horovod_defaults()},
      {"SpectrumMPI", net::MpiProfile::spectrum_like(), hvd::Knobs::paper_tuned()},
      {"MVAPICH2-GDR", net::MpiProfile::mvapich2_gdr_like(), hvd::Knobs::horovod_defaults()},
      {"MVAPICH2-GDR", net::MpiProfile::mvapich2_gdr_like(), hvd::Knobs::paper_tuned()},
  };
  for (const Row& row : rows) {
    double baseline = 0.0;
    for (bool fp16 : {false, true}) {
      perf::ScalingConfig config;
      config.workload = models::WorkloadSpec::deeplab_v3plus(4);
      config.nodes = 22;
      config.flop_efficiency = perf::Calibration::paper_defaults().deeplab_efficiency;
      config.mpi_profile = row.profile;
      config.knobs = row.knobs;
      config.knobs.fp16_allreduce = fp16;
      config.warmup_iterations = 1;
      config.iterations = 1;
      const auto result = perf::simulate(config);
      if (!fp16) baseline = result.images_per_s;
      table.add_row({row.profile.name,
                     row.knobs.hierarchical_allreduce ? "tuned" : "default",
                     fp16 ? "on" : "off", util::Table::num(result.images_per_s, 1),
                     util::Table::pct(result.scaling_efficiency),
                     fp16 ? util::Table::num(result.images_per_s / baseline, 2) + "x" : "-"});
    }
    std::fprintf(stderr, "... %s %s done\n", row.profile.name.c_str(),
                 row.knobs.hierarchical_allreduce ? "tuned" : "default");
  }
  table.print();
  std::printf(
      "\nShape check: halving wire bytes recovers a large fraction of the exposed\n"
      "communication under the staged default library and is nearly free where the\n"
      "tuned MVAPICH2-GDR configuration already overlaps everything.\n");
  return 0;
}
