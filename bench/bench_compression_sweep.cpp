// Extension (optional feature): gradient-compression codec sweep —
// fp32 / fp16 / int8 / top-k on the allreduce wire (DESIGN.md §12).
//
// Two views, because the codecs live in two different regimes:
//
// 1. REAL PAYLOAD at 4 ranks: every DLv3+ layer gradient is an actual
//    float tensor pushed through the full runtime (negotiation, fusion,
//    encode, exchange, decode). This measures what the simulator cannot:
//    bytes on the wire per step, wall-clock pack/unpack cost, and the
//    virtual step time including the codec's exchange pattern.
//
// 2. TIMING-ONLY WORLD SWEEP: the allgather-style exchange int8/top-k
//    use moves (W-1) x blob per rank, so compressed wire volume GROWS
//    with world size while the fp32 ring stays ~2 x bytes. The sweep
//    shows the honest crossover — compression wins small worlds on
//    bytes, and the advantage narrows as W grows (the fp16 codec keeps
//    the reduction-friendly ring and scales like fp32).
//
// The fp16 rows reproduce the original bench_fp16_compression structure:
// halving wire bytes matters where communication is exposed (Spectrum
// default) and is nearly free where the tuned MVAPICH2-GDR config
// already hides it.
#include <cstdio>
#include <string>
#include <vector>

#include "dlscale/hvd/horovod.hpp"
#include "dlscale/models/workload.hpp"
#include "dlscale/perf/simulator.hpp"
#include "dlscale/util/rng.hpp"
#include "dlscale/util/table.hpp"

using namespace dlscale;

namespace {

struct CodecResult {
  std::uint64_t wire_bytes = 0;
  double pack_ms = 0.0;
  double unpack_ms = 0.0;
  double step_s = 0.0;  ///< virtual time of the exchange
};

hvd::Knobs codec_knobs(hvd::CompressionAlgo algo, float topk_ratio) {
  hvd::Knobs knobs = hvd::Knobs::paper_tuned();
  knobs.cycle_time_s = 1e-4;
  knobs.fp16_allreduce = false;
  knobs.compression = algo;
  knobs.topk_ratio = topk_ratio;
  return knobs;
}

/// One full gradient exchange of every DLv3+ layer, real floats, at
/// `ranks` ranks in a timed single-node world.
CodecResult run_real_payload(int ranks, hvd::CompressionAlgo algo, float topk_ratio) {
  const auto workload = models::WorkloadSpec::deeplab_v3plus(4);
  CodecResult out;
  mpi::WorldOptions options;
  options.topology = net::Topology::single_node(ranks);
  options.profile = net::MpiProfile::mvapich2_gdr_like();
  options.timing = true;
  mpi::run_world(options, [&](mpi::Communicator& comm) {
    hvd::HorovodRuntime runtime(comm, codec_knobs(algo, topk_ratio));
    // Per-rank gradients: deterministic, distinct per rank, realistic
    // dynamic range.
    util::Rng rng(1234 + static_cast<std::uint64_t>(comm.rank()));
    std::vector<std::vector<float>> grads;
    grads.reserve(workload.layers.size());
    for (const auto& layer : workload.layers) {
      auto& grad = grads.emplace_back(layer.param_bytes / sizeof(float));
      for (auto& x : grad) x = static_cast<float>(rng.uniform(-0.05, 0.05));
    }
    // Warmup step (primes the response cache and EF residuals), then the
    // measured step.
    for (std::size_t i = 0; i < grads.size(); ++i) {
      runtime.submit({workload.layers[i].name, grads[i], 0, comm.now()});
    }
    runtime.synchronize();
    const double t0 = comm.now();
    runtime.reset_stats();
    for (std::size_t i = 0; i < grads.size(); ++i) {
      runtime.submit({workload.layers[i].name, grads[i], 0, comm.now()});
    }
    runtime.synchronize();
    if (comm.rank() == 0) {
      const auto& stats = runtime.stats();
      out.wire_bytes = stats.bytes_on_wire;
      out.pack_ms = stats.compress_pack_s * 1e3;
      out.unpack_ms = stats.compress_unpack_s * 1e3;
      out.step_s = comm.now() - t0;
    }
  });
  return out;
}

/// Timing-only exchange of the fused DLv3+ gradient at `gpus` ranks.
double run_timing_only(int gpus, hvd::CompressionAlgo algo, float topk_ratio) {
  const auto workload = models::WorkloadSpec::deeplab_v3plus(4);
  double elapsed = 0.0;
  mpi::WorldOptions options;
  options.topology = gpus <= 6 ? net::Topology::single_node(gpus)
                               : net::Topology::summit(gpus / 6);
  options.profile = net::MpiProfile::mvapich2_gdr_like();
  options.timing = true;
  mpi::run_world(options, [&](mpi::Communicator& comm) {
    hvd::HorovodRuntime runtime(comm, codec_knobs(algo, topk_ratio));
    runtime.submit({"grads", {}, workload.total_param_bytes(), comm.now()});
    runtime.synchronize();
    if (comm.rank() == 0) elapsed = comm.now();
  });
  return elapsed;
}

}  // namespace

int main() {
  const auto workload = models::WorkloadSpec::deeplab_v3plus(4);
  const double fp32_bytes = static_cast<double>(workload.total_param_bytes());
  std::printf("DLv3+ gradient: %.1f MiB fp32 across %zu layers\n\n", fp32_bytes / (1 << 20),
              workload.layers.size());

  struct Codec {
    const char* label;
    hvd::CompressionAlgo algo;
    float topk_ratio;
  };
  const Codec codecs[] = {
      {"fp32", hvd::CompressionAlgo::kNone, 0.01f},
      {"fp16", hvd::CompressionAlgo::kFp16, 0.01f},
      {"int8", hvd::CompressionAlgo::kInt8, 0.01f},
      {"topk 1%", hvd::CompressionAlgo::kTopK, 0.01f},
  };

  // View 1: real payload at 4 ranks.
  util::Table real("Real-payload codec sweep — DLv3+ gradients @ 4 ranks");
  real.set_header({"codec", "wire/step", "reduction", "pack (ms)", "unpack (ms)",
                   "step (virt ms)", "speedup"});
  double fp32_step = 0.0;
  for (const Codec& codec : codecs) {
    const CodecResult result = run_real_payload(4, codec.algo, codec.topk_ratio);
    if (codec.algo == hvd::CompressionAlgo::kNone) fp32_step = result.step_s;
    const double reduction =
        fp32_bytes / static_cast<double>(result.wire_bytes ? result.wire_bytes : 1);
    real.add_row({codec.label,
                  util::Table::num(static_cast<double>(result.wire_bytes) / (1 << 20), 2) +
                      " MiB",
                  util::Table::num(reduction, 1) + "x",
                  util::Table::num(result.pack_ms, 2), util::Table::num(result.unpack_ms, 2),
                  util::Table::num(result.step_s * 1e3, 2),
                  codec.algo == hvd::CompressionAlgo::kNone
                      ? "-"
                      : util::Table::num(fp32_step / result.step_s, 2) + "x"});
    std::fprintf(stderr, "... real payload %s done\n", codec.label);
  }
  real.print();

  // View 2: where the allgather exchange stops paying.
  util::Table sweep("Virtual exchange time vs world size (ms, timing-only)");
  sweep.set_header({"codec", "4 GPUs", "36 GPUs", "132 GPUs"});
  for (const Codec& codec : codecs) {
    std::vector<std::string> row{codec.label};
    for (int gpus : {4, 36, 132}) {
      row.push_back(util::Table::num(run_timing_only(gpus, codec.algo, codec.topk_ratio) * 1e3,
                                     2));
    }
    sweep.add_row(row);
    std::fprintf(stderr, "... world sweep %s done\n", codec.label);
  }
  sweep.print();

  // View 3: the original fp16 table — compression vs library quality at
  // the paper's 132-GPU scale (simulated end-to-end training step).
  util::Table fp16("fp16 compression x library, DLv3+ @ 132 GPUs (simulated)");
  fp16.set_header({"library", "knobs", "fp16", "img/s", "efficiency", "gain"});
  struct Row {
    net::MpiProfile profile;
    hvd::Knobs knobs;
  };
  const Row rows[] = {
      {net::MpiProfile::spectrum_like(), hvd::Knobs::horovod_defaults()},
      {net::MpiProfile::spectrum_like(), hvd::Knobs::paper_tuned()},
      {net::MpiProfile::mvapich2_gdr_like(), hvd::Knobs::horovod_defaults()},
      {net::MpiProfile::mvapich2_gdr_like(), hvd::Knobs::paper_tuned()},
  };
  for (const Row& row : rows) {
    double baseline = 0.0;
    for (bool on : {false, true}) {
      perf::ScalingConfig config;
      config.workload = workload;
      config.nodes = 22;
      config.flop_efficiency = perf::Calibration::paper_defaults().deeplab_efficiency;
      config.mpi_profile = row.profile;
      config.knobs = row.knobs;
      config.knobs.fp16_allreduce = on;
      config.warmup_iterations = 1;
      config.iterations = 1;
      const auto result = perf::simulate(config);
      if (!on) baseline = result.images_per_s;
      fp16.add_row({row.profile.name, row.knobs.hierarchical_allreduce ? "tuned" : "default",
                    on ? "on" : "off", util::Table::num(result.images_per_s, 1),
                    util::Table::pct(result.scaling_efficiency),
                    on ? util::Table::num(result.images_per_s / baseline, 2) + "x" : "-"});
    }
    std::fprintf(stderr, "... fp16 x %s %s done\n", row.profile.name.c_str(),
                 row.knobs.hierarchical_allreduce ? "tuned" : "default");
  }
  fp16.print();

  std::printf(
      "\nShape check: int8 cuts wire bytes ~4x and top-k@1%% >10x at small worlds,\n"
      "where the allgather exchange is cheap; the advantage narrows as the world\n"
      "grows because gathered compressed blobs scale with W while the fp32/fp16\n"
      "rings stay flat. fp16 keeps the ring and so is the safe large-world codec;\n"
      "compression substitutes for — not compounds with — a fast MPI library.\n");
  return 0;
}
