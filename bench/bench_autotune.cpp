// Online autotuning vs exhaustive static sweep (extension of E5).
//
// Ground truth first: every (fusion threshold x cycle time x hierarchy)
// combination simulated statically on the E9-style cluster. Then one
// autotuned run starting from Horovod defaults over the same space —
// reporting the knobs it converged to, the throughput it reached as a
// fraction of the best static cell, and how many iterations of tuning
// that took versus the exhaustive sweep's budget.
#include <cstdio>

#include "dlscale/perf/simulator.hpp"
#include "dlscale/util/env.hpp"
#include "dlscale/util/table.hpp"

using namespace dlscale;

namespace {

constexpr int kNodes = 4;  // 24 GPUs

perf::ScalingConfig base_config(hvd::Knobs knobs) {
  perf::ScalingConfig config;
  config.workload = models::WorkloadSpec::deeplab_v3plus(4);
  config.nodes = kNodes;
  config.flop_efficiency = perf::Calibration::paper_defaults().deeplab_efficiency;
  config.mpi_profile = net::MpiProfile::mvapich2_gdr_like();
  config.knobs = knobs;
  config.warmup_iterations = 1;
  config.iterations = 2;
  return config;
}

}  // namespace

int main() {
  hvd::TuningSpace space;
  space.fusion_thresholds = {1 << 20, 8 << 20, 64 << 20};
  space.cycle_times_s = {3.5e-3, 10e-3, 25e-3};
  space.hierarchical = {false, true};

  util::Table table("Static knob sweep, DLv3+, 24 GPUs, MVAPICH2-GDR");
  table.set_header({"fusion threshold", "cycle", "hierarchical", "img/s"});
  double best_static = 0.0;
  hvd::Knobs best_knobs;
  for (std::size_t fusion : space.fusion_thresholds) {
    for (double cycle : space.cycle_times_s) {
      for (bool hier : space.hierarchical) {
        hvd::Knobs knobs = hvd::Knobs::horovod_defaults();
        knobs.fusion_threshold = fusion;
        knobs.cycle_time_s = cycle;
        knobs.hierarchical_allreduce = hier;
        const auto result = perf::simulate(base_config(knobs));
        if (result.images_per_s > best_static) {
          best_static = result.images_per_s;
          best_knobs = knobs;
        }
        table.add_row({util::format_bytes(fusion), util::Table::num(cycle * 1e3, 1) + " ms",
                       hier ? "on" : "off", util::Table::num(result.images_per_s, 1)});
      }
    }
    std::fprintf(stderr, "... fusion %s done\n", util::format_bytes(fusion).c_str());
  }
  table.print();
  std::printf("\nBest static cell: fusion %s, cycle %.1f ms, hierarchical %s -> %.1f img/s\n",
              util::format_bytes(best_knobs.fusion_threshold).c_str(),
              best_knobs.cycle_time_s * 1e3, best_knobs.hierarchical_allreduce ? "on" : "off",
              best_static);

  // The online tuner, same space, one training run.
  auto config = base_config(hvd::Knobs::horovod_defaults());
  config.autotune.enabled = true;
  config.autotune.window_steps = 2;
  config.autotune.space = space;
  const auto tuned = perf::simulate(config);

  const int sweep_budget = static_cast<int>(space.combinations()) *
                           (config.warmup_iterations + config.iterations);
  std::printf(
      "\nOnline autotune (coordinate descent from Horovod defaults):\n"
      "  converged knobs:   fusion %s, cycle %.1f ms, hierarchical %s\n"
      "  post-freeze:       %.1f img/s (%.1f%% of best static)\n"
      "  tuning iterations: %d (exhaustive sweep costs %d simulated iterations)\n",
      util::format_bytes(tuned.tuned_knobs.fusion_threshold).c_str(),
      tuned.tuned_knobs.cycle_time_s * 1e3, tuned.tuned_knobs.hierarchical_allreduce ? "on" : "off",
      tuned.images_per_s, 100.0 * tuned.images_per_s / best_static, tuned.tuning_iterations,
      sweep_budget);

  std::printf(
      "\nShape check: the tuner explores one coordinate at a time during training\n"
      "and freezes on the best window, reaching >=95%% of the exhaustive sweep's\n"
      "best cell at a fraction of its iteration budget.\n");
  return 0;
}
