// End-to-end train-step benchmark (google-benchmark): the full Trainer
// path — forward, streamed backward through the gradient-ready sink, comm
// hook, SGD update — so trainer-level regressions show up next to the
// kernel microbenchmarks. Serial (NoComm) isolates compute; the
// distributed variant adds the Horovod negotiation/fusion machinery over
// a 2-rank simmpi world.
#include <benchmark/benchmark.h>

#include "dlscale/train/trainer.hpp"

namespace dt = dlscale::train;
namespace dm = dlscale::mpi;

namespace {

dt::TrainConfig bench_config(int width) {
  dt::TrainConfig config;
  config.model = {.in_channels = 3, .num_classes = 4, .input_size = 16, .width = width};
  config.dataset = {.image_size = 16, .num_classes = 4, .max_shapes = 2, .noise = 0.1f,
                    .seed = 99};
  config.train_samples = 64;
  config.eval_samples = 8;
  config.batch_per_rank = 2;
  config.epochs = 1;
  config.knobs.cycle_time_s = 1e-4;
  return config;
}

void BM_TrainStepSerial(benchmark::State& state) {
  const auto config = bench_config(static_cast<int>(state.range(0)));
  dt::NoComm hook;
  dt::Trainer trainer(config, hook);
  const dlscale::data::SyntheticShapes dataset(config.dataset);
  const dlscale::data::Sample batch = dataset.make_batch({0, 1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(trainer.train_step(batch, 0.05));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrainStepSerial)->Arg(4)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_TrainEpochDistributed(benchmark::State& state) {
  // Whole epochs (simmpi worlds are scoped to run_world, so persistent
  // per-iteration trainers are not an option here): 2 ranks, shard of 32
  // samples each, negotiation + fusion + metric reduction included.
  const auto config = bench_config(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    dm::run_world(2, [&](dm::Communicator& comm) {
      benchmark::DoNotOptimize(dt::train_distributed(comm, config));
    });
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrainEpochDistributed)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace
