// End-to-end train-step benchmark (google-benchmark): the full Trainer
// path — forward, streamed backward through the gradient-ready sink, comm
// hook, SGD update — so trainer-level regressions show up next to the
// kernel microbenchmarks. Serial (NoComm) isolates compute; the
// distributed variant adds the Horovod negotiation/fusion machinery over
// a 2-rank simmpi world.
//
// Custom main (no benchmark_main): prints the memory-planner report first
// — packed arena bytes vs the naive every-Tensor-its-own-bytes sum per
// model width (DESIGN.md §10) — and peak RSS after the benches run.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "dlscale/train/trainer.hpp"
#include "dlscale/util/mem_stats.hpp"

namespace dt = dlscale::train;
namespace dm = dlscale::mpi;

namespace {

dt::TrainConfig bench_config(int width) {
  dt::TrainConfig config;
  config.model = {.in_channels = 3, .num_classes = 4, .input_size = 16, .width = width};
  config.dataset = {.image_size = 16, .num_classes = 4, .max_shapes = 2, .noise = 0.1f,
                    .seed = 99};
  config.train_samples = 64;
  config.eval_samples = 8;
  config.batch_per_rank = 2;
  config.epochs = 1;
  config.knobs.cycle_time_s = 1e-4;
  return config;
}

void BM_TrainStepSerial(benchmark::State& state) {
  const auto config = bench_config(static_cast<int>(state.range(0)));
  dt::NoComm hook;
  dt::Trainer trainer(config, hook);
  const dlscale::data::SyntheticShapes dataset(config.dataset);
  const dlscale::data::Sample batch = dataset.make_batch({0, 1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(trainer.train_step(batch, 0.05));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrainStepSerial)->Arg(4)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_TrainEpochDistributed(benchmark::State& state) {
  // Whole epochs (simmpi worlds are scoped to run_world, so persistent
  // per-iteration trainers are not an option here): 2 ranks, shard of 32
  // samples each, negotiation + fusion + metric reduction included.
  const auto config = bench_config(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    dm::run_world(2, [&](dm::Communicator& comm) {
      benchmark::DoNotOptimize(dt::train_distributed(comm, config));
    });
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrainEpochDistributed)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

/// One traced step per model width: what the liveness planner packs the
/// step's activation footprint down to versus naive per-Tensor storage.
void print_memory_plan_report() {
  std::printf("Activation memory plan (one train step, batch 2)\n");
  std::printf("%-8s %14s %14s %8s\n", "width", "naive_bytes", "packed_bytes", "ratio");
  for (int width : {4, 8, 16}) {
    const auto config = bench_config(width);
    dt::NoComm hook;
    dt::Trainer trainer(config, hook);
    const dlscale::data::SyntheticShapes dataset(config.dataset);
    trainer.train_step(dataset.make_batch({0, 1}), 0.05);
    const dlscale::util::MemoryPlan& plan = trainer.step_arena().plan();
    std::printf("%-8d %14zu %14zu %7.1f%%\n", width, plan.naive_bytes, plan.peak_bytes,
                plan.naive_bytes == 0
                    ? 0.0
                    : 100.0 * static_cast<double>(plan.peak_bytes) /
                          static_cast<double>(plan.naive_bytes));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  print_memory_plan_report();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::printf("\npeak RSS: %.1f MiB\n",
              static_cast<double>(dlscale::util::peak_rss_bytes()) / (1024.0 * 1024.0));
  return 0;
}
