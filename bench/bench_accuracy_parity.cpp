// E6 (paper Fig/Table: accuracy).
//
// "We achieved a mIOU accuracy of 80.8% for distributed training, which
//  is on par with published accuracy for this model."
//
// The paper's claim is accuracy PARITY: gradient-averaged data-parallel
// training matches equivalent single-process training. We reproduce that
// property end-to-end with the real mini DeepLab-v3+ on the synthetic
// shape-segmentation dataset: serial large-batch vs 2-rank vs 4-rank
// Horovod training, same total samples, mIOU per epoch. (Absolute mIOU
// depends on the dataset; parity across world sizes is the reproduced
// result. See EXPERIMENTS.md for the substitution note.)
#include <cstdio>

#include "dlscale/train/trainer.hpp"
#include "dlscale/util/table.hpp"

using namespace dlscale;

namespace {

train::TrainConfig make_config() {
  train::TrainConfig config;
  config.model = {.in_channels = 3, .num_classes = 6, .input_size = 24, .width = 8};
  config.dataset = {.image_size = 24, .num_classes = 6, .max_shapes = 3, .noise = 0.12f,
                    .seed = 2020};
  config.train_samples = 96;
  config.eval_samples = 48;
  config.batch_per_rank = 4;  // divided by world size so the GLOBAL batch stays 8
  config.epochs = 10;
  config.schedule = {0.08, 0.9, 0};
  config.knobs.cycle_time_s = 1e-4;
  config.seed = 7;
  return config;
}

}  // namespace

int main() {
  util::Table table("E6 — Accuracy parity: serial vs Horovod data-parallel training");
  table.set_header({"configuration", "global batch", "steps", "final loss", "final mIOU",
                    "final pixel acc"});

  // Serial reference: single process, global batch 8.
  auto serial_config = make_config();
  serial_config.batch_per_rank = 8;
  const auto serial = train::train_serial(serial_config, 1);
  table.add_row({"serial (1 process)", "8", util::Table::num(static_cast<long long>(serial.steps)),
                 util::Table::num(serial.epochs.back().train_loss, 4),
                 util::Table::pct(serial.final_miou()),
                 util::Table::pct(serial.epochs.back().eval_pixel_accuracy)});
  std::fprintf(stderr, "... serial done (mIOU %.3f)\n", serial.final_miou());

  train::TrainReport four_rank_report;
  for (int world : {2, 4}) {
    auto config = make_config();
    config.batch_per_rank = 8 / world;
    train::TrainReport report;
    mpi::WorldOptions options;
    options.topology = net::Topology::single_node(world);
    options.profile = net::MpiProfile::mvapich2_gdr_like();
    options.timing = false;
    mpi::run_world(options, [&](mpi::Communicator& comm) {
      auto result = train::train_distributed(comm, config);
      if (comm.rank() == 0) report = std::move(result);
    });
    table.add_row({std::to_string(world) + " ranks (Horovod)", "8",
                   util::Table::num(static_cast<long long>(report.steps)),
                   util::Table::num(report.epochs.back().train_loss, 4),
                   util::Table::pct(report.final_miou()),
                   util::Table::pct(report.epochs.back().eval_pixel_accuracy)});
    std::fprintf(stderr, "... %d ranks done (mIOU %.3f)\n", world, report.final_miou());
    if (world == 4) four_rank_report = std::move(report);
  }
  table.print();

  std::printf("\n== Learning curve (4-rank distributed) ==\n");
  {
    util::Table curve;
    curve.set_header({"epoch", "train loss", "eval mIOU", "eval pixel acc"});
    for (const auto& epoch : four_rank_report.epochs) {
      curve.add_row({util::Table::num(static_cast<long long>(epoch.epoch)),
                     util::Table::num(epoch.train_loss, 4), util::Table::pct(epoch.eval_miou),
                     util::Table::pct(epoch.eval_pixel_accuracy)});
    }
    curve.print();
  }

  std::printf(
      "\nShape check: all world sizes converge into the same mIOU band (paper: distributed\n"
      "mIOU 80.8%%, on par with the published single-node accuracy) and the learning\n"
      "curve rises to a plateau as the loss falls.\n");
  return 0;
}
