#!/bin/sh
# Runs every paper-reproduction bench in experiment order and tees the
# output; used to produce bench_output.txt for EXPERIMENTS.md.
set -e
BUILD="${1:-build}"
for b in bench_single_gpu bench_allreduce_latency bench_scaling bench_tuning_sweep \
         bench_accuracy_parity bench_hierarchical bench_gdr_path bench_fusion_stats bench_resnet_scaling bench_fp16_compression \
         bench_kernels; do
  echo "==================================================================="
  echo "== $b"
  echo "==================================================================="
  "$BUILD/bench/$b"
  echo
done
