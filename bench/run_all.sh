#!/bin/sh
# Runs every paper-reproduction bench in experiment order and tees the
# output; used to produce bench_output.txt for EXPERIMENTS.md.
#
# Build the tree with -DCMAKE_BUILD_TYPE=Release first; kernel numbers
# from an unoptimized build are meaningless. DLSCALE_NUM_THREADS controls
# the tensor-kernel pool (bench_kernels also sweeps it explicitly).
set -e
BUILD="${1:-build}"

if [ -f "$BUILD/CMakeCache.txt" ]; then
  build_type=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD/CMakeCache.txt")
  case "$build_type" in
    Release|RelWithDebInfo) ;;
    *)
      echo "WARNING: $BUILD was configured with CMAKE_BUILD_TYPE='$build_type'." >&2
      echo "WARNING: configure with -DCMAKE_BUILD_TYPE=Release before trusting bench numbers." >&2
      ;;
  esac
fi

echo "SIMD dispatch: $("$BUILD/bench/bench_kernels" --print-simd-path)"
echo

for b in bench_single_gpu bench_allreduce_latency bench_scaling bench_tuning_sweep \
         bench_accuracy_parity bench_hierarchical bench_gdr_path bench_fusion_stats bench_resnet_scaling bench_compression_sweep \
         bench_autotune bench_elastic bench_serve \
         bench_kernels bench_train_step; do
  echo "==================================================================="
  echo "== $b"
  echo "==================================================================="
  "$BUILD/bench/$b"
  echo
done
