// E2 (paper Fig: osu_allreduce-style microbenchmark).
//
// GPU-buffer MPI_Allreduce latency vs message size for the Spectrum-like
// and MVAPICH2-GDR-like libraries at 24 / 48 / 132 GPUs, using each
// library's own algorithm selection — the communication-level fact behind
// every training-level difference in the paper.
#include <cstdio>
#include <vector>

#include "dlscale/mpi/comm.hpp"
#include "dlscale/util/env.hpp"
#include "dlscale/util/table.hpp"

using namespace dlscale;

namespace {

double allreduce_latency(const net::MpiProfile& profile, int nodes, std::size_t bytes) {
  mpi::WorldOptions options;
  options.topology = net::Topology::summit(nodes);
  options.profile = profile;
  options.timing = true;
  double elapsed = 0.0;
  mpi::run_world(options, [&](mpi::Communicator& comm) {
    // A couple of repetitions; report the steady-state mean.
    comm.barrier();
    const double t0 = comm.now();
    constexpr int kReps = 3;
    for (int rep = 0; rep < kReps; ++rep) {
      comm.allreduce_sim(bytes, mpi::MemSpace::kDevice);
    }
    comm.barrier();
    if (comm.rank() == 0) elapsed = (comm.now() - t0) / kReps;
  });
  return elapsed;
}

}  // namespace

int main() {
  const auto spectrum = net::MpiProfile::spectrum_like();
  const auto mvapich = net::MpiProfile::mvapich2_gdr_like();
  const std::size_t sizes[] = {4,       1 << 10,  16 << 10, 256 << 10,
                               1 << 20, 8 << 20,  64 << 20, 256 << 20};

  for (int nodes : {4, 8, 22}) {
    util::Table table("E2 — osu_allreduce (GPU buffers), " + std::to_string(nodes * 6) +
                      " GPUs (" + std::to_string(nodes) + " nodes)");
    table.set_header({"message size", "SpectrumMPI (us)", "MVAPICH2-GDR (us)", "speedup"});
    for (std::size_t bytes : sizes) {
      const double t_spectrum = allreduce_latency(spectrum, nodes, bytes);
      const double t_mvapich = allreduce_latency(mvapich, nodes, bytes);
      table.add_row({util::format_bytes(bytes), util::Table::num(t_spectrum * 1e6, 1),
                     util::Table::num(t_mvapich * 1e6, 1),
                     util::Table::num(t_spectrum / t_mvapich, 1) + "x"});
    }
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Shape check: MVAPICH2-GDR wins at every size; the gap widens with message size\n"
      "as Spectrum's host-staged pipeline and non-topology-aware GPU collectives bite\n"
      "(paper Fig. osu_allreduce comparison).\n");
  return 0;
}
