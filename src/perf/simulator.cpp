#include "dlscale/perf/simulator.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <stdexcept>

#include "dlscale/net/topology.hpp"
#include "dlscale/util/rng.hpp"

namespace dlscale::perf {

Calibration Calibration::paper_defaults() {
  // Fitted against the paper's single-V100 anchors (see bench_single_gpu
  // and tests/perf): DLv3+'s atrous/separable kernels sustain a far lower
  // fraction of peak than ResNet-50's dense 3x3 convolutions — which is
  // exactly why one V100 manages only 6.7 img/s on segmentation vs 300
  // img/s on classification.
  return Calibration{0.2372, 0.5452};
}

IterationProfile profile_iteration(const models::WorkloadSpec& workload,
                                   const gpu::ComputeModel& gpu) {
  IterationProfile profile;
  // Forward pass: layers in order.
  for (const auto& layer : workload.layers) {
    profile.fwd_s += gpu.kernel_time(layer.fwd_flops, layer.activation_bytes);
  }
  // Backward pass: reverse layer order; a layer's gradient tensor is ready
  // when its backward kernel retires.
  double t = profile.fwd_s;
  for (auto it = workload.layers.rbegin(); it != workload.layers.rend(); ++it) {
    t += gpu.kernel_time(it->bwd_flops, 2.0 * it->activation_bytes);
    profile.grad_names.push_back(it->name);
    profile.grad_bytes.push_back(it->param_bytes);
    profile.grad_ready_s.push_back(t);
  }
  profile.bwd_s = t - profile.fwd_s;
  // Optimizer: SGD momentum reads grad + weight + velocity, writes weight
  // + velocity -> ~5 passes over parameter memory.
  const double param_bytes = static_cast<double>(workload.total_param_bytes());
  profile.optimizer_s = gpu.kernel_time(2.0 * param_bytes / 4.0, 5.0 * param_bytes);
  return profile;
}

double single_gpu_throughput(const models::WorkloadSpec& workload, double flop_efficiency) {
  const gpu::ComputeModel gpu(gpu::DeviceSpec::v100_summit(), flop_efficiency);
  const IterationProfile profile = profile_iteration(workload, gpu);
  return static_cast<double>(workload.batch_per_gpu) / profile.compute_total_s();
}

ScalingResult simulate(const ScalingConfig& config) {
  if (config.iterations < 1) throw std::invalid_argument("simulate: iterations must be >= 1");
  const gpu::ComputeModel gpu(gpu::DeviceSpec::v100_summit(), config.flop_efficiency);
  const IterationProfile profile = profile_iteration(config.workload, gpu);

  mpi::WorldOptions options;
  options.topology = net::Topology::summit(config.nodes);
  options.profile = config.mpi_profile;
  options.timing = true;
  const int gpus = options.topology.world_size();
  switch (config.scenario) {
    case ScenarioMode::kPreemption:
      options.faults.kills = {{config.scenario_rank, config.preempt_at_iteration}};
      break;
    case ScenarioMode::kNodeFlap:
      options.faults.flaky_rank = config.scenario_rank;
      options.faults.drop_prob = config.flap_drop_prob;
      options.faults.window_from_s = config.flap_from_s;
      options.faults.window_until_s = config.flap_until_s;
      options.faults.seed = config.scenario_seed;
      break;
    case ScenarioMode::kStraggler:  // pure compute-side: no fault plan
    case ScenarioMode::kNone:
      break;
  }

  double mean_iteration = 0.0;
  hvd::RuntimeStats stats;
  hvd::Knobs tuned_knobs = config.knobs;
  int tuning_iterations = 0;
  int final_gpus = gpus;
  int failures = 0;
  int recovery_iterations = 0;
  double recovery_virtual_s = 0.0;

  mpi::run_world(options, [&](mpi::Communicator& world) {
    // Local copy so a preemption can swap in the shrunken communicator;
    // the runtime lives in an optional for the same reason.
    mpi::Communicator comm = world;
    std::optional<hvd::HorovodRuntime> runtime(std::in_place, comm, config.knobs, gpu);
    std::optional<hvd::Autotuner> tuner;
    util::Rng jitter_rng =
        util::Rng(config.jitter_seed).child(static_cast<std::uint64_t>(comm.rank()));

    // Progress is tracked as counters that can be ROLLED BACK. Survivors
    // do not detect a failure at the same attempt: a revoked communicator
    // raises from every operation once the victim is dead, so a rank that
    // happened to finish attempt k just before the death loses k+1, while
    // a slower peer loses k itself. Left alone, the diverged loop counters
    // make survivors run different numbers of collectives on the rebuilt
    // communicator — a guaranteed deadlock. After each shrink the
    // survivors agree on the minimum completed-attempt count and everyone
    // rewinds to it (recover() below).
    enum class Phase : std::uint8_t { kWarmup, kTuning, kMeasured, kDone };
    Phase phase = Phase::kWarmup;
    int warm_done = 0;
    int tuned_for = 0;
    std::vector<double> samples;  // measured iteration times, in order
    std::vector<Phase> done_log;  // phase of every completed attempt
    int my_failures = 0;
    int my_recovery_iterations = 0;
    double my_recovery_virtual_s = 0.0;

    auto run_iteration = [&]() -> double {
      // Each attempt is one FaultPlan tick: a kPreemption kill fires here.
      comm.fault_tick();
      comm.barrier();
      const double t0 = comm.now();
      // This rank's compute speed this iteration (clock/ECC/input noise).
      double scale = 1.0;
      if (config.compute_jitter > 0.0) {
        scale = std::max(0.5, 1.0 + config.compute_jitter * jitter_rng.normal());
      }
      if (config.scenario == ScenarioMode::kStraggler && comm.rank() == config.scenario_rank) {
        scale *= config.straggler_factor;
      }
      // Register every gradient at its backprop-order ready time; the
      // Horovod cycles overlap negotiation and allreduce with the
      // remaining backward compute exactly as the background thread does.
      for (std::size_t i = 0; i < profile.grad_names.size(); ++i) {
        runtime->submit({profile.grad_names[i], {}, profile.grad_bytes[i],
                         t0 + scale * profile.grad_ready_s[i]});
      }
      runtime->synchronize();
      // The optimizer waits for both streams: backward compute and the
      // last averaged gradient.
      comm.clock().bump_to(t0 + scale * (profile.fwd_s + profile.bwd_s));
      comm.compute(profile.optimizer_s);
      comm.barrier();
      return comm.now() - t0;
    };

    auto recompute_phase = [&] {
      if (warm_done < config.warmup_iterations) {
        phase = Phase::kWarmup;
      } else if (tuner && !tuner->frozen() && tuned_for < config.max_tuning_iterations) {
        phase = Phase::kTuning;
      } else if (static_cast<int>(samples.size()) < config.iterations) {
        phase = Phase::kMeasured;
      } else {
        phase = Phase::kDone;
      }
    };

    // Shrink, rebuild the runtime over the survivors (carrying the current
    // knobs), and rewind to an agreed resume point. The victim itself
    // never gets here — its RankKilled unwinds to run_world.
    auto recover = [&] {
      comm = comm.shrink();
      const hvd::Knobs carried = runtime->knobs();
      runtime.emplace(comm, carried, gpu);
      // Agree on the resume point BEFORE any tuner collective: the tuner
      // may not exist on every survivor yet (a fast rank can be one
      // attempt — and one phase transition — ahead).
      std::int64_t resume = static_cast<std::int64_t>(done_log.size());
      const auto views = comm.gather_blobs(
          std::as_bytes(std::span<const std::int64_t>(&resume, 1)), 0);
      if (comm.rank() == 0) {
        for (const std::vector<std::byte>& blob : views) {
          std::int64_t theirs = 0;
          if (blob.size() != sizeof theirs) {
            throw std::runtime_error("simulate: malformed progress view");
          }
          std::memcpy(&theirs, blob.data(), sizeof theirs);
          resume = std::min(resume, theirs);
        }
      }
      const auto decision =
          comm.bcast_blob(std::as_bytes(std::span<const std::int64_t>(&resume, 1)), 0);
      std::memcpy(&resume, decision.data(), sizeof resume);
      while (static_cast<std::int64_t>(done_log.size()) > resume) {
        switch (done_log.back()) {
          case Phase::kWarmup: --warm_done; break;
          case Phase::kTuning: --tuned_for; break;
          case Phase::kMeasured: samples.pop_back(); break;
          default: break;
        }
        done_log.pop_back();
        ++my_recovery_iterations;  // this attempt will be re-run
      }
      recompute_phase();
      // A rank rolled back across the warmup->tuning boundary destroys
      // its tuner so every survivor re-creates one at the same transition.
      if (phase == Phase::kWarmup) tuner.reset();
      if (tuner) {
        tuner->rebind(*runtime);
        tuner->on_world_change();  // collective: resyncs knobs from rank 0
      }
    };

    while (true) {
      const double attempt_start = comm.now();
      try {
        if (phase == Phase::kDone) {
          // Completion fence: a rank must not leave while a peer can still
          // need it for the shrink rendezvous. A kill during the final
          // attempt makes this barrier raise, pulling the finished ranks
          // into the recovery; nobody can pass it otherwise, because the
          // victim (which dies at a fault tick) never enters it.
          comm.barrier();
          break;
        }
        const double took = run_iteration();
        switch (phase) {
          case Phase::kWarmup:
            done_log.push_back(Phase::kWarmup);
            if (++warm_done >= config.warmup_iterations) {
              if (config.autotune.enabled) {
                // Online tuning: explore until the policy freezes. The
                // Autotuner's broadcast decisions keep frozen() — and the
                // tuning phase's trip count — identical everywhere.
                tuner.emplace(*runtime, config.autotune);
                phase = Phase::kTuning;
              } else {
                runtime->reset_stats();
                phase = Phase::kMeasured;
              }
            }
            break;
          case Phase::kTuning:
            tuner->step_end();  // collective at window boundaries
            done_log.push_back(Phase::kTuning);
            ++tuned_for;
            if (tuner->frozen() || tuned_for >= config.max_tuning_iterations) {
              tuner->freeze();  // no-op when already converged
              runtime->reset_stats();
              phase = Phase::kMeasured;
            }
            break;
          case Phase::kMeasured:
            samples.push_back(took);
            done_log.push_back(Phase::kMeasured);
            if (static_cast<int>(samples.size()) >= config.iterations) phase = Phase::kDone;
            break;
          default:
            break;
        }
      } catch (const mpi::RankFailed&) {
        ++my_failures;
        ++my_recovery_iterations;
        recover();
        my_recovery_virtual_s += comm.now() - attempt_start;
      }
    }

    if (comm.rank() == 0) {
      double total = 0.0;
      for (const double s : samples) total += s;
      mean_iteration = samples.empty() ? 0.0 : total / static_cast<double>(samples.size());
      stats = runtime->stats();
      tuned_knobs = runtime->knobs();
      tuning_iterations = tuned_for;
      final_gpus = comm.size();
      failures = my_failures;
      recovery_iterations = my_recovery_iterations;
      recovery_virtual_s = my_recovery_virtual_s;
    }
  });

  ScalingResult result;
  result.gpus = gpus;
  result.final_gpus = final_gpus;
  result.failures = failures;
  result.recovery_iterations = recovery_iterations;
  result.recovery_virtual_s = recovery_virtual_s;
  result.iteration_s = mean_iteration;
  result.per_gpu_images_s = static_cast<double>(config.workload.batch_per_gpu) / mean_iteration;
  // Aggregate throughput counts the machines still standing at the end.
  result.images_per_s = result.per_gpu_images_s * final_gpus;
  result.scaling_efficiency =
      result.per_gpu_images_s / single_gpu_throughput(config.workload, config.flop_efficiency);
  result.comm_overhead_s = mean_iteration - profile.compute_total_s();
  result.hvd_stats = stats;
  result.autotuned = config.autotune.enabled;
  result.tuned_knobs = tuned_knobs;
  result.tuning_iterations = tuning_iterations;
  return result;
}

}  // namespace dlscale::perf
