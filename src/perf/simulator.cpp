#include "dlscale/perf/simulator.hpp"

#include <algorithm>
#include <stdexcept>

#include "dlscale/net/topology.hpp"
#include "dlscale/util/rng.hpp"
#include "dlscale/util/stats.hpp"

namespace dlscale::perf {

Calibration Calibration::paper_defaults() {
  // Fitted against the paper's single-V100 anchors (see bench_single_gpu
  // and tests/perf): DLv3+'s atrous/separable kernels sustain a far lower
  // fraction of peak than ResNet-50's dense 3x3 convolutions — which is
  // exactly why one V100 manages only 6.7 img/s on segmentation vs 300
  // img/s on classification.
  return Calibration{0.2372, 0.5452};
}

IterationProfile profile_iteration(const models::WorkloadSpec& workload,
                                   const gpu::ComputeModel& gpu) {
  IterationProfile profile;
  // Forward pass: layers in order.
  for (const auto& layer : workload.layers) {
    profile.fwd_s += gpu.kernel_time(layer.fwd_flops, layer.activation_bytes);
  }
  // Backward pass: reverse layer order; a layer's gradient tensor is ready
  // when its backward kernel retires.
  double t = profile.fwd_s;
  for (auto it = workload.layers.rbegin(); it != workload.layers.rend(); ++it) {
    t += gpu.kernel_time(it->bwd_flops, 2.0 * it->activation_bytes);
    profile.grad_names.push_back(it->name);
    profile.grad_bytes.push_back(it->param_bytes);
    profile.grad_ready_s.push_back(t);
  }
  profile.bwd_s = t - profile.fwd_s;
  // Optimizer: SGD momentum reads grad + weight + velocity, writes weight
  // + velocity -> ~5 passes over parameter memory.
  const double param_bytes = static_cast<double>(workload.total_param_bytes());
  profile.optimizer_s = gpu.kernel_time(2.0 * param_bytes / 4.0, 5.0 * param_bytes);
  return profile;
}

double single_gpu_throughput(const models::WorkloadSpec& workload, double flop_efficiency) {
  const gpu::ComputeModel gpu(gpu::DeviceSpec::v100_summit(), flop_efficiency);
  const IterationProfile profile = profile_iteration(workload, gpu);
  return static_cast<double>(workload.batch_per_gpu) / profile.compute_total_s();
}

ScalingResult simulate(const ScalingConfig& config) {
  if (config.iterations < 1) throw std::invalid_argument("simulate: iterations must be >= 1");
  const gpu::ComputeModel gpu(gpu::DeviceSpec::v100_summit(), config.flop_efficiency);
  const IterationProfile profile = profile_iteration(config.workload, gpu);

  mpi::WorldOptions options;
  options.topology = net::Topology::summit(config.nodes);
  options.profile = config.mpi_profile;
  options.timing = true;
  const int gpus = options.topology.world_size();

  double mean_iteration = 0.0;
  hvd::RuntimeStats stats;
  hvd::Knobs tuned_knobs = config.knobs;
  int tuning_iterations = 0;

  mpi::run_world(options, [&](mpi::Communicator& comm) {
    hvd::HorovodRuntime runtime(comm, config.knobs, gpu);
    util::Rng jitter_rng =
        util::Rng(config.jitter_seed).child(static_cast<std::uint64_t>(comm.rank()));
    util::RunningStats iteration_times;
    auto run_iteration = [&](bool measured) {
      comm.barrier();
      const double t0 = comm.now();
      // This rank's compute speed this iteration (clock/ECC/input noise).
      double scale = 1.0;
      if (config.compute_jitter > 0.0) {
        scale = std::max(0.5, 1.0 + config.compute_jitter * jitter_rng.normal());
      }
      // Register every gradient at its backprop-order ready time; the
      // Horovod cycles overlap negotiation and allreduce with the
      // remaining backward compute exactly as the background thread does.
      for (std::size_t i = 0; i < profile.grad_names.size(); ++i) {
        runtime.submit({profile.grad_names[i], {}, profile.grad_bytes[i],
                        t0 + scale * profile.grad_ready_s[i]});
      }
      runtime.synchronize();
      // The optimizer waits for both streams: backward compute and the
      // last averaged gradient.
      comm.clock().bump_to(t0 + scale * (profile.fwd_s + profile.bwd_s));
      comm.compute(profile.optimizer_s);
      comm.barrier();
      if (measured) iteration_times.add(comm.now() - t0);
    };

    for (int iter = 0; iter < config.warmup_iterations; ++iter) run_iteration(false);

    // Online tuning phase: explore until the policy freezes. Every rank
    // runs the same loop; the Autotuner's broadcast decisions keep the
    // frozen() flag — and therefore this loop's trip count — identical
    // everywhere.
    int tuned_for = 0;
    if (config.autotune.enabled) {
      hvd::Autotuner tuner(runtime, config.autotune);
      while (!tuner.frozen() && tuned_for < config.max_tuning_iterations) {
        run_iteration(false);
        tuner.step_end();
        ++tuned_for;
      }
      tuner.freeze();  // no-op when already converged
    }

    runtime.reset_stats();
    for (int iter = 0; iter < config.iterations; ++iter) run_iteration(true);
    if (comm.rank() == 0) {
      mean_iteration = iteration_times.mean();
      stats = runtime.stats();
      tuned_knobs = runtime.knobs();
      tuning_iterations = tuned_for;
    }
  });

  ScalingResult result;
  result.gpus = gpus;
  result.iteration_s = mean_iteration;
  result.per_gpu_images_s = static_cast<double>(config.workload.batch_per_gpu) / mean_iteration;
  result.images_per_s = result.per_gpu_images_s * gpus;
  result.scaling_efficiency =
      result.per_gpu_images_s / single_gpu_throughput(config.workload, config.flop_efficiency);
  result.comm_overhead_s = mean_iteration - profile.compute_total_s();
  result.hvd_stats = stats;
  result.autotuned = config.autotune.enabled;
  result.tuned_knobs = tuned_knobs;
  result.tuning_iterations = tuning_iterations;
  return result;
}

}  // namespace dlscale::perf
