#include "dlscale/serve/batcher.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace dlscale::serve {

DynamicBatcher::DynamicBatcher(RequestQueue& queue, int max_batch,
                               std::chrono::microseconds max_wait)
    : queue_(queue), max_batch_(std::max(1, max_batch)), max_wait_(max_wait) {}

Batch DynamicBatcher::next_batch() {
  Batch batch;
  auto first = queue_.pop();
  if (!first) return batch;  // closed and drained
  // The straggler window is anchored at the FIRST request's admission
  // time, not at now(): if this request already sat in the queue longer
  // than max_wait while workers were busy, the batch forms immediately.
  const auto deadline = first->enqueued_at + max_wait_;
  batch.requests.push_back(std::move(*first));
  while (batch.size() < max_batch_) {
    auto next = queue_.pop_until(deadline);
    if (!next) break;  // window expired or queue closed
    batch.requests.push_back(std::move(*next));
  }
  batch.images = stack_images(batch.requests);
  return batch;
}

tensor::Tensor DynamicBatcher::stack_images(const std::vector<Request>& requests) {
  if (requests.empty()) return {};
  const tensor::Tensor& head = requests.front().image;
  const int channels = head.dim(1), height = head.dim(2), width = head.dim(3);
  tensor::Tensor stacked(
      {static_cast<int>(requests.size()), channels, height, width});
  const std::size_t sample_floats = head.numel();
  float* dst = stacked.ptr();
  for (const Request& r : requests) {
    if (r.image.numel() != sample_floats) {
      throw std::invalid_argument("DynamicBatcher: mixed image shapes in one batch");
    }
    std::memcpy(dst, r.image.ptr(), sample_floats * sizeof(float));
    dst += sample_floats;
  }
  return stacked;
}

}  // namespace dlscale::serve
