#include "dlscale/serve/model_registry.hpp"

#include <stdexcept>

namespace dlscale::serve {

namespace {

std::string known_list(const std::vector<std::string>& known) {
  if (known.empty()) return "none registered";
  std::string out;
  for (const std::string& name : known) {
    if (!out.empty()) out += ", ";
    out += "\"" + name + "\"";
  }
  return out;
}

}  // namespace

UnknownModelError::UnknownModelError(std::string model, std::vector<std::string> known)
    : std::invalid_argument("unknown model \"" + model + "\" (known: " + known_list(known) + ")"),
      model_(std::move(model)),
      known_(std::move(known)) {}

ModelRegistry::~ModelRegistry() { shutdown(); }

Server& ModelRegistry::add_model(const std::string& name, ServeConfig config,
                                 const std::string& checkpoint_path) {
  if (name.empty()) throw std::invalid_argument("model name must be non-empty");
  {
    std::lock_guard lock(mutex_);
    for (const auto& [existing, server] : models_) {
      if (existing == name) {
        throw std::invalid_argument("model \"" + name + "\" is already registered");
      }
    }
  }
  // Build OUTSIDE the lock: checkpoint load + calibration is the slow
  // part, and other models must keep serving meanwhile. A racing
  // add_model of the same name is resolved below.
  config.name = name;
  auto server = std::make_shared<Server>(std::move(config), checkpoint_path);
  std::lock_guard lock(mutex_);
  for (const auto& [existing, existing_server] : models_) {
    if (existing == name) {
      throw std::invalid_argument("model \"" + name + "\" is already registered");
    }
  }
  models_.emplace_back(name, std::move(server));
  return *models_.back().second;
}

std::shared_ptr<Server> ModelRegistry::find(const std::string& name) const {
  std::lock_guard lock(mutex_);
  for (const auto& [existing, server] : models_) {
    if (existing == name) return server;
  }
  return nullptr;
}

Server& ModelRegistry::at(const std::string& name) const {
  auto server = find(name);
  if (server == nullptr) throw UnknownModelError(name, names());
  return *server;
}

std::vector<std::string> ModelRegistry::names() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> out;
  out.reserve(models_.size());
  for (const auto& [name, server] : models_) out.push_back(name);
  return out;
}

std::size_t ModelRegistry::size() const {
  std::lock_guard lock(mutex_);
  return models_.size();
}

void ModelRegistry::reload(const std::string& name, const std::string& checkpoint_path) {
  at(name).reload(checkpoint_path);
}

void ModelRegistry::reload(const std::string& name, const std::string& checkpoint_path,
                           QuantizeSpec quantize) {
  at(name).reload(checkpoint_path, std::move(quantize));
}

ServerStats ModelRegistry::stats(const std::string& name) const { return at(name).stats(); }

std::vector<std::pair<std::string, ServerStats>> ModelRegistry::stats_all() const {
  // Snapshot the map, then collect stats unlocked: Server::stats takes
  // the server's own mutex and must not nest inside ours.
  std::vector<std::pair<std::string, std::shared_ptr<Server>>> snapshot;
  {
    std::lock_guard lock(mutex_);
    snapshot = models_;
  }
  std::vector<std::pair<std::string, ServerStats>> out;
  out.reserve(snapshot.size());
  for (const auto& [name, server] : snapshot) out.emplace_back(name, server->stats());
  return out;
}

void ModelRegistry::shutdown_model(const std::string& name) { at(name).shutdown(); }

void ModelRegistry::shutdown() {
  std::vector<std::pair<std::string, std::shared_ptr<Server>>> snapshot;
  {
    std::lock_guard lock(mutex_);
    snapshot = models_;
  }
  for (const auto& [name, server] : snapshot) server->shutdown();
}

}  // namespace dlscale::serve
