#include "dlscale/serve/server.hpp"

#include <cstring>
#include <stdexcept>
#include <utility>

#include "dlscale/serve/runner.hpp"
#include "dlscale/tensor/ops.hpp"

namespace dlscale::serve {

namespace {

std::string shape_text(const tensor::Shape& shape) {
  std::string out = "(";
  for (const int* d = shape.begin(); d != shape.end(); ++d) {
    if (d != shape.begin()) out += ",";
    out += std::to_string(*d);
  }
  out += ")";
  return out;
}

}  // namespace

ShapeError::ShapeError(std::string model, tensor::Shape expected, tensor::Shape got)
    : std::invalid_argument("model \"" + model + "\": expected image shape " +
                            shape_text(expected) + ", got " + shape_text(got)),
      model_(std::move(model)),
      expected_(expected),
      got_(got) {}

Server::Server(ServeConfig config, const std::string& checkpoint_path)
    : config_(config),
      registry_(config.model, config.workers < 1 ? 1 : config.workers, checkpoint_path,
                config.quantize),
      queue_(config.queue_capacity),
      batcher_(queue_, config.max_batch, std::chrono::microseconds(config.max_wait_us)) {
  config_.workers = registry_.replica_count();
  workers_.reserve(static_cast<std::size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

Server::~Server() { shutdown(); }

std::optional<std::future<Response>> Server::submit(tensor::Tensor image, RejectReason* why) {
  if (why != nullptr) *why = RejectReason::kNone;
  const tensor::Shape original_shape = image.shape();
  if (image.ndim() == 3) {
    image = image.reshaped({1, image.dim(0), image.dim(1), image.dim(2)});
  }
  const auto& m = config_.model;
  if (image.ndim() != 4 || image.dim(0) != 1 || image.dim(1) != m.in_channels ||
      image.dim(2) != m.input_size || image.dim(3) != m.input_size) {
    // Admission-time rejection with the structured pieces a client can
    // act on; the worker forward never sees a misshapen image.
    throw ShapeError(config_.name, {1, m.in_channels, m.input_size, m.input_size},
                     original_shape);
  }
  Request request;
  request.image = std::move(image);
  request.enqueued_at = Clock::now();
  std::future<Response> future = request.promise.get_future();
  switch (queue_.try_push(std::move(request))) {
    case PushResult::kFull: {
      std::lock_guard lock(stats_mutex_);
      ++rejected_full_;
      if (why != nullptr) *why = RejectReason::kQueueFull;
      return std::nullopt;
    }
    case PushResult::kClosed: {
      std::lock_guard lock(stats_mutex_);
      ++rejected_closed_;
      if (why != nullptr) *why = RejectReason::kClosed;
      return std::nullopt;
    }
    case PushResult::kAccepted:
      break;
  }
  std::lock_guard lock(stats_mutex_);
  ++accepted_;
  return future;
}

void Server::reload(const std::string& checkpoint_path) {
  registry_.reload(checkpoint_path);  // throws on bad file, old set intact
  std::lock_guard lock(stats_mutex_);
  ++reloads_;
}

void Server::reload(const std::string& checkpoint_path, QuantizeSpec quantize) {
  registry_.reload(checkpoint_path, std::move(quantize));
  std::lock_guard lock(stats_mutex_);
  ++reloads_;
}

void Server::worker_loop(int worker_id) {
  for (;;) {
    Batch batch = batcher_.next_batch();
    if (batch.empty()) return;  // queue closed and drained
    run_batch(std::move(batch), worker_id);
  }
}

void Server::run_batch(Batch&& batch, int worker_id) {
  const auto formed_at = Clock::now();
  // Pin the current replica generation for the whole batch. A concurrent
  // reload swaps the registry pointer but this shared_ptr keeps the old
  // weights alive until the forward below retires — drain by refcount.
  const std::shared_ptr<ReplicaSet> set = registry_.acquire();
  models::MiniDeepLabV3Plus& model = *set->replicas[static_cast<std::size_t>(worker_id)];

  // Per-worker runner: one arena reset per batch, so the forward's
  // activations reuse the same bytes every batch (zero steady-state heap
  // traffic — see serve/runner.hpp). Outputs are borrowed and copied into
  // the owning Response tensors below before the next batch runs.
  thread_local InferenceRunner runner;
  const tensor::Tensor* logits_ptr = nullptr;
  try {
    logits_ptr = &runner.run(model, batch.images);
  } catch (...) {
    for (Request& r : batch.requests) r.promise.set_exception(std::current_exception());
    return;
  }
  const tensor::Tensor& logits = *logits_ptr;
  const std::vector<int>& labels_scratch = runner.labels();

  const int classes = logits.dim(1);
  const int plane = logits.dim(2) * logits.dim(3);
  const std::size_t sample_floats = static_cast<std::size_t>(classes) * plane;
  const auto done_at = Clock::now();
  const double queue_us_base =
      std::chrono::duration<double, std::micro>(formed_at.time_since_epoch()).count();
  const double done_us_base =
      std::chrono::duration<double, std::micro>(done_at.time_since_epoch()).count();

  std::vector<Response> responses;
  responses.reserve(static_cast<std::size_t>(batch.size()));
  for (int n = 0; n < batch.size(); ++n) {
    Request& r = batch.requests[static_cast<std::size_t>(n)];
    Response response;
    response.logits = tensor::Tensor({1, classes, logits.dim(2), logits.dim(3)});
    std::memcpy(response.logits.ptr(), logits.ptr() + static_cast<std::size_t>(n) * sample_floats,
                sample_floats * sizeof(float));
    response.labels.assign(labels_scratch.begin() + static_cast<std::ptrdiff_t>(n) * plane,
                           labels_scratch.begin() + static_cast<std::ptrdiff_t>(n + 1) * plane);
    response.batch_size = batch.size();
    response.model_version = set->version;
    response.precision = set->precision;
    const double enq_us =
        std::chrono::duration<double, std::micro>(r.enqueued_at.time_since_epoch()).count();
    response.queue_us = queue_us_base - enq_us;
    response.total_us = done_us_base - enq_us;
    responses.push_back(std::move(response));
  }
  // Record stats BEFORE fulfilling the promises: a client that has seen
  // its response must also see stats().completed cover it.
  {
    std::lock_guard lock(stats_mutex_);
    ++batches_;
    completed_ += static_cast<std::uint64_t>(batch.size());
    if (set->precision == nn::Precision::kFp32) {
      fp32_requests_ += static_cast<std::uint64_t>(batch.size());
    } else {
      quantized_requests_ += static_cast<std::uint64_t>(batch.size());
    }
    for (const Response& resp : responses) {
      queue_latency_us_.add(resp.queue_us);
      total_latency_us_.add(resp.total_us);
    }
  }
  for (int n = 0; n < batch.size(); ++n) {
    batch.requests[static_cast<std::size_t>(n)].promise.set_value(
        std::move(responses[static_cast<std::size_t>(n)]));
  }
}

ServerStats Server::stats() const {
  ServerStats s;
  s.queue_depth = queue_.depth();
  s.model_version = registry_.version();
  s.precision = nn::precision_name(registry_.precision());
  std::lock_guard lock(stats_mutex_);
  s.accepted = accepted_;
  s.rejected_full = rejected_full_;
  s.rejected_closed = rejected_closed_;
  s.rejected = rejected_full_ + rejected_closed_;  // compatibility sum
  s.completed = completed_;
  s.batches = batches_;
  s.reloads = reloads_;
  s.fp32_requests = fp32_requests_;
  s.quantized_requests = quantized_requests_;
  s.mean_batch_size =
      batches_ == 0 ? 0.0 : static_cast<double>(completed_) / static_cast<double>(batches_);
  s.queue_p50_us = queue_latency_us_.percentile(50);
  s.queue_p95_us = queue_latency_us_.percentile(95);
  s.queue_p99_us = queue_latency_us_.percentile(99);
  s.total_p50_us = total_latency_us_.percentile(50);
  s.total_p95_us = total_latency_us_.percentile(95);
  s.total_p99_us = total_latency_us_.percentile(99);
  s.total_mean_us = total_latency_us_.mean();
  s.total_max_us = total_latency_us_.max();
  return s;
}

void Server::shutdown() {
  {
    std::lock_guard lock(stats_mutex_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  queue_.close();  // admissions now fail; workers drain the backlog
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

}  // namespace dlscale::serve
