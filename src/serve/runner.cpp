#include "dlscale/serve/runner.hpp"

#include "dlscale/tensor/ops.hpp"

namespace dlscale::serve {

const tensor::Tensor& InferenceRunner::run(models::MiniDeepLabV3Plus& model,
                                           const tensor::Tensor& images) {
  // Drop last batch's borrow before recycling its bytes; a borrowed
  // tensor outliving the reset would dangle.
  logits_ = tensor::Tensor();
  arena_.reset();
  util::ArenaScope scope(arena_);
  logits_ = model.forward(images, /*train=*/false);
  tensor::argmax_channels(logits_, labels_);
  return logits_;
}

}  // namespace dlscale::serve
