#include "dlscale/serve/registry.hpp"

#include <cstddef>
#include <utility>

#include "dlscale/train/checkpoint.hpp"
#include "dlscale/util/rng.hpp"

namespace dlscale::serve {

namespace {

/// Deterministic uniform [0,1) calibration batch matching the model's
/// input shape — the fallback when the caller supplies no images. Uniform
/// noise is range-representative for the synthetic dataset's [0,1] pixel
/// space, and every layer still sees its own weight-shaped activation
/// distribution during the forwards.
tensor::Tensor synthetic_calibration_batch(const models::MiniDeepLabV3Plus::Config& config,
                                           int batch, std::uint64_t seed) {
  if (batch < 1) batch = 1;
  util::Rng rng(seed);
  tensor::Tensor images({batch, config.in_channels, config.input_size, config.input_size});
  float* p = images.ptr();
  const std::size_t n = static_cast<std::size_t>(images.numel());
  for (std::size_t i = 0; i < n; ++i) p[i] = static_cast<float>(rng.uniform());
  return images;
}

}  // namespace

ReplicaRegistry::ReplicaRegistry(models::MiniDeepLabV3Plus::Config config, int replica_count,
                             const std::string& path, QuantizeSpec quantize)
    : config_(config),
      replica_count_(replica_count < 1 ? 1 : replica_count),
      quantize_(std::move(quantize)) {
  current_ = build_loaded_set(path, /*version=*/1);
}

std::shared_ptr<ReplicaSet> ReplicaRegistry::build_loaded_set(const std::string& path,
                                                            int version) const {
  // Snapshot the policy up front: the slow load below runs unlocked, and
  // a concurrent reload(path, spec) may replace quantize_ meanwhile.
  QuantizeSpec quantize;
  {
    std::lock_guard lock(mutex_);
    quantize = quantize_;
  }
  auto set = std::make_shared<ReplicaSet>();
  set->version = version;
  set->replicas.reserve(static_cast<std::size_t>(replica_count_));
  for (int i = 0; i < replica_count_; ++i) {
    // Seed is irrelevant: every weight and buffer is overwritten below.
    util::Rng rng(1);
    set->replicas.push_back(std::make_unique<models::MiniDeepLabV3Plus>(config_, rng));
  }
  // Parse the checkpoint once (replica 0), then clone tensors into the
  // remaining replicas — parameters() order is deterministic across
  // instances, so index-wise copy is exact.
  auto& primary = *set->replicas.front();
  train::load_model(primary.parameters(), primary.buffers(), path);
  const auto src_params = primary.parameters();
  const auto src_bufs = primary.buffers();
  for (int i = 1; i < replica_count_; ++i) {
    const auto dst_params = set->replicas[static_cast<std::size_t>(i)]->parameters();
    const auto dst_bufs = set->replicas[static_cast<std::size_t>(i)]->buffers();
    for (std::size_t j = 0; j < src_params.size(); ++j) {
      dst_params[j]->value = src_params[j]->value;
    }
    for (std::size_t j = 0; j < src_bufs.size(); ++j) {
      *dst_bufs[j].tensor = *src_bufs[j].tensor;
    }
  }
  // Quantize the standby set before it is ever visible to workers. Any
  // throw here (uncalibrated layer, bad spec) propagates with the old
  // serving generation untouched — same strong guarantee as a bad file.
  if (quantize.precision == nn::Precision::kInt8) {
    nn::CalibrationTable table(quantize.calibration);
    {
      const tensor::Tensor calib =
          quantize.calibration_images.empty()
              ? synthetic_calibration_batch(config_, quantize.calibration_batch,
                                            quantize.calibration_seed)
              : quantize.calibration_images;
      nn::CalibrationSession session(table);
      (void)primary.forward(calib, /*train=*/false);
    }
    // Replicas carry identical weights, so the primary's activation
    // ranges are exact for all of them.
    for (auto& replica : set->replicas) {
      replica->convert_precision(nn::Precision::kInt8, &table);
    }
  } else if (quantize.precision == nn::Precision::kBf16) {
    for (auto& replica : set->replicas) {
      replica->convert_precision(nn::Precision::kBf16);
    }
  }
  set->precision = quantize.precision;
  return set;
}

void ReplicaRegistry::reload(const std::string& path) {
  // Standby-then-swap: all the throwing work happens before the swap, so
  // a corrupt checkpoint leaves the serving generation untouched.
  int next_version = 0;
  {
    std::lock_guard lock(mutex_);
    next_version = current_->version + 1;
  }
  auto standby = build_loaded_set(path, next_version);
  std::lock_guard lock(mutex_);
  current_ = std::move(standby);
  // Workers holding the old shared_ptr finish their in-flight batches on
  // the superseded weights; the old set frees itself when the last batch
  // completes. No drain barrier needed.
}

void ReplicaRegistry::reload(const std::string& path, QuantizeSpec quantize) {
  {
    std::lock_guard lock(mutex_);
    quantize_ = std::move(quantize);
  }
  // Concurrent reloads are last-writer-wins on the swap; build_loaded_set
  // snapshots the policy under the lock, so there is no torn read.
  reload(path);
}

std::shared_ptr<ReplicaSet> ReplicaRegistry::acquire() const {
  std::lock_guard lock(mutex_);
  return current_;
}

int ReplicaRegistry::version() const {
  std::lock_guard lock(mutex_);
  return current_->version;
}

nn::Precision ReplicaRegistry::precision() const {
  std::lock_guard lock(mutex_);
  return current_->precision;
}

}  // namespace dlscale::serve
