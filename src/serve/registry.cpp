#include "dlscale/serve/registry.hpp"

#include "dlscale/train/checkpoint.hpp"
#include "dlscale/util/rng.hpp"

namespace dlscale::serve {

ModelRegistry::ModelRegistry(models::MiniDeepLabV3Plus::Config config, int replica_count,
                             const std::string& path)
    : config_(config), replica_count_(replica_count < 1 ? 1 : replica_count) {
  current_ = build_loaded_set(path, /*version=*/1);
}

std::shared_ptr<ReplicaSet> ModelRegistry::build_loaded_set(const std::string& path,
                                                            int version) const {
  auto set = std::make_shared<ReplicaSet>();
  set->version = version;
  set->replicas.reserve(static_cast<std::size_t>(replica_count_));
  for (int i = 0; i < replica_count_; ++i) {
    // Seed is irrelevant: every weight and buffer is overwritten below.
    util::Rng rng(1);
    set->replicas.push_back(std::make_unique<models::MiniDeepLabV3Plus>(config_, rng));
  }
  // Parse the checkpoint once (replica 0), then clone tensors into the
  // remaining replicas — parameters() order is deterministic across
  // instances, so index-wise copy is exact.
  auto& primary = *set->replicas.front();
  train::load_model(primary.parameters(), primary.buffers(), path);
  const auto src_params = primary.parameters();
  const auto src_bufs = primary.buffers();
  for (int i = 1; i < replica_count_; ++i) {
    const auto dst_params = set->replicas[static_cast<std::size_t>(i)]->parameters();
    const auto dst_bufs = set->replicas[static_cast<std::size_t>(i)]->buffers();
    for (std::size_t j = 0; j < src_params.size(); ++j) {
      dst_params[j]->value = src_params[j]->value;
    }
    for (std::size_t j = 0; j < src_bufs.size(); ++j) {
      *dst_bufs[j].tensor = *src_bufs[j].tensor;
    }
  }
  return set;
}

void ModelRegistry::reload(const std::string& path) {
  // Standby-then-swap: all the throwing work happens before the swap, so
  // a corrupt checkpoint leaves the serving generation untouched.
  int next_version = 0;
  {
    std::lock_guard lock(mutex_);
    next_version = current_->version + 1;
  }
  auto standby = build_loaded_set(path, next_version);
  std::lock_guard lock(mutex_);
  current_ = std::move(standby);
  // Workers holding the old shared_ptr finish their in-flight batches on
  // the superseded weights; the old set frees itself when the last batch
  // completes. No drain barrier needed.
}

std::shared_ptr<ReplicaSet> ModelRegistry::acquire() const {
  std::lock_guard lock(mutex_);
  return current_;
}

int ModelRegistry::version() const {
  std::lock_guard lock(mutex_);
  return current_->version;
}

}  // namespace dlscale::serve
