#include "dlscale/serve/queue.hpp"

#include <utility>

namespace dlscale::serve {

RequestQueue::RequestQueue(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

PushResult RequestQueue::try_push(Request&& request) {
  {
    std::lock_guard lock(mutex_);
    if (closed_) return PushResult::kClosed;
    if (items_.size() >= capacity_) return PushResult::kFull;
    items_.push_back(std::move(request));
  }
  nonempty_.notify_one();
  return PushResult::kAccepted;
}

std::optional<Request> RequestQueue::pop() {
  std::unique_lock lock(mutex_);
  nonempty_.wait(lock, [this] { return closed_ || !items_.empty(); });
  if (items_.empty()) return std::nullopt;  // closed and drained
  Request request = std::move(items_.front());
  items_.pop_front();
  return request;
}

std::optional<Request> RequestQueue::pop_until(Clock::time_point deadline) {
  std::unique_lock lock(mutex_);
  if (!nonempty_.wait_until(lock, deadline, [this] { return closed_ || !items_.empty(); })) {
    return std::nullopt;  // timed out
  }
  if (items_.empty()) return std::nullopt;  // closed and drained
  Request request = std::move(items_.front());
  items_.pop_front();
  return request;
}

void RequestQueue::close() {
  {
    std::lock_guard lock(mutex_);
    closed_ = true;
  }
  nonempty_.notify_all();
}

std::size_t RequestQueue::depth() const {
  std::lock_guard lock(mutex_);
  return items_.size();
}

bool RequestQueue::closed() const {
  std::lock_guard lock(mutex_);
  return closed_;
}

}  // namespace dlscale::serve
