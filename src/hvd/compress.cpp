#include "dlscale/hvd/compress.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "dlscale/tensor/microkernel.hpp"

namespace dlscale::hvd {

namespace {

// Per-chunk int8 wire header. Dequantization is v̂ = offset + q * scale
// (offset = -zero_point * scale), so a degenerate chunk (max == min,
// including a constant chunk) encodes exactly as scale = 0, offset = the
// constant — no division by a zero range anywhere.
struct Int8Header {
  float scale = 0.0f;
  float offset = 0.0f;
};

template <typename T>
void put(std::vector<std::byte>& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* raw = reinterpret_cast<const std::byte*>(&value);
  out.insert(out.end(), raw, raw + sizeof(T));
}

template <typename T>
T get(std::span<const std::byte> in, std::size_t& pos) {
  T value{};
  if (pos + sizeof(T) > in.size()) {
    throw std::runtime_error("hvd compress: truncated wire blob");
  }
  std::memcpy(&value, in.data() + pos, sizeof(T));
  pos += sizeof(T);
  return value;
}

}  // namespace

const char* to_string(CompressionAlgo algo) noexcept {
  switch (algo) {
    case CompressionAlgo::kFp16: return "fp16";
    case CompressionAlgo::kInt8: return "int8";
    case CompressionAlgo::kTopK: return "topk";
    case CompressionAlgo::kNone: break;
  }
  return "none";
}

std::optional<CompressionAlgo> parse_compression(std::string_view text) {
  std::string lowered;
  lowered.reserve(text.size());
  for (char c : text) {
    lowered.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lowered == "none" || lowered == "fp32" || lowered == "off") {
    return CompressionAlgo::kNone;
  }
  if (lowered == "fp16" || lowered == "half") return CompressionAlgo::kFp16;
  if (lowered == "int8" || lowered == "u8") return CompressionAlgo::kInt8;
  if (lowered == "topk" || lowered == "top-k" || lowered == "top_k") {
    return CompressionAlgo::kTopK;
  }
  return std::nullopt;
}

std::size_t GradientCompressor::topk_k(std::size_t n, float ratio) {
  if (n == 0) return 0;
  const double k = std::ceil(static_cast<double>(ratio) * static_cast<double>(n));
  return std::clamp<std::size_t>(static_cast<std::size_t>(k), 1, n);
}

std::size_t GradientCompressor::int8_wire_bytes(std::span<const std::size_t> counts) {
  std::size_t bytes = 0;
  for (std::size_t n : counts) bytes += sizeof(Int8Header) + n;
  return bytes;
}

std::size_t GradientCompressor::topk_wire_bytes(std::span<const std::size_t> counts,
                                                float ratio) {
  std::size_t bytes = 0;
  for (std::size_t n : counts) {
    bytes += sizeof(std::uint32_t) +
             topk_k(n, ratio) * (sizeof(std::uint32_t) + sizeof(float));
  }
  return bytes;
}

std::vector<float>& GradientCompressor::residual_for(const std::string& name,
                                                     std::size_t n) {
  std::vector<float>& residual = residuals_[name];
  // A size change means the tensor was re-registered with a different
  // shape (fresh model after restore/rebuild): stale error is meaningless.
  if (residual.size() != n) residual.assign(n, 0.0f);
  return residual;
}

std::span<const std::byte> GradientCompressor::encode(CompressionAlgo algo,
                                                      std::span<const Chunk> chunks,
                                                      float topk_ratio, bool error_feedback) {
  wire_.clear();
  switch (algo) {
    case CompressionAlgo::kInt8: encode_int8(chunks, error_feedback); break;
    case CompressionAlgo::kTopK: encode_topk(chunks, topk_ratio, error_feedback); break;
    case CompressionAlgo::kNone:
    case CompressionAlgo::kFp16:
      throw std::logic_error("hvd compress: encode is for int8/topk only");
  }
  return wire_;
}

void GradientCompressor::encode_int8(std::span<const Chunk> chunks, bool error_feedback) {
  for (const Chunk& chunk : chunks) {
    const std::size_t n = chunk.data.size();
    // Accumulate gradient + residual (EF-SGD: compress what we owe, not
    // just this step's gradient).
    const float* src = chunk.data.data();
    std::vector<float>* residual = nullptr;
    if (error_feedback) {
      residual = &residual_for(*chunk.name, n);
      acc_.resize(n);
      const float* res = residual->data();
      for (std::size_t i = 0; i < n; ++i) acc_[i] = chunk.data[i] + res[i];
      src = acc_.data();
    }
    // Chunk range. NaNs fail both comparisons and are ignored here; the
    // quantizer maps them to q = 0 and the residual absorbs the error.
    float lo = std::numeric_limits<float>::infinity();
    float hi = -std::numeric_limits<float>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      const float v = src[i];
      if (v < lo) lo = v;
      if (v > hi) hi = v;
    }
    if (!(hi >= lo)) lo = hi = 0.0f;  // all-NaN chunk

    Int8Header header;
    float inv_scale = 0.0f;
    std::int32_t zero_point = 0;
    const float range = hi - lo;
    if (range > 0.0f && std::isfinite(range)) {
      header.scale = range / 255.0f;
      inv_scale = 255.0f / range;
      // Ideal zero point maps lo -> 0. Clamp the int64 rounding result
      // before narrowing: a tiny range far from zero can push it outside
      // i32, and quantize_u8's wrapping add would then scramble codes.
      const double zp = std::llrint(-static_cast<double>(lo) * inv_scale);
      zero_point = static_cast<std::int32_t>(
          std::clamp<double>(zp, std::numeric_limits<std::int32_t>::min(),
                             std::numeric_limits<std::int32_t>::max()));
      header.offset = -static_cast<float>(zero_point) * header.scale;
    } else {
      // Degenerate chunk: every element equals lo. scale = 0 makes the
      // payload irrelevant and the offset reconstructs the value exactly.
      header.scale = 0.0f;
      header.offset = lo;
    }
    put(wire_, header);

    const std::size_t payload_at = wire_.size();
    wire_.resize(payload_at + n);
    auto* q = reinterpret_cast<std::uint8_t*>(wire_.data() + payload_at);
    tensor::micro::quantize_u8(src, q, static_cast<std::int64_t>(n), inv_scale, zero_point);

    if (error_feedback) {
      // residual = acc - dequant(own code): exactly the error this rank's
      // contribution carries, re-injected on the next step.
      float* res = residual->data();
      for (std::size_t i = 0; i < n; ++i) {
        res[i] = src[i] - (header.offset + static_cast<float>(q[i]) * header.scale);
      }
    }
  }
}

void GradientCompressor::encode_topk(std::span<const Chunk> chunks, float topk_ratio,
                                     bool error_feedback) {
  for (const Chunk& chunk : chunks) {
    const std::size_t n = chunk.data.size();
    const float* src = chunk.data.data();
    std::vector<float>* residual = nullptr;
    if (error_feedback) {
      residual = &residual_for(*chunk.name, n);
      acc_.resize(n);
      const float* res = residual->data();
      for (std::size_t i = 0; i < n; ++i) acc_[i] = chunk.data[i] + res[i];
      src = acc_.data();
    }

    const std::size_t k = topk_k(n, topk_ratio);
    // Selection keys: |v|, with NaN promoted to +inf so (a) the
    // comparator stays a strict weak order and (b) a NaN gradient is
    // surfaced (sent on the wire) instead of silently parked forever in
    // the residual — matching what an uncompressed allreduce would do.
    mag_scratch_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const float v = src[i];
      mag_scratch_[i] = std::isnan(v) ? std::numeric_limits<float>::infinity()
                                      : std::fabs(v);
    }
    index_scratch_.resize(n);
    std::iota(index_scratch_.begin(), index_scratch_.end(), 0u);
    const auto by_magnitude = [this](std::uint32_t a, std::uint32_t b) {
      const float ma = mag_scratch_[a];
      const float mb = mag_scratch_[b];
      if (ma != mb) return ma > mb;
      return a < b;  // deterministic tie-break
    };
    if (k < n) {
      std::nth_element(index_scratch_.begin(),
                       index_scratch_.begin() + static_cast<std::ptrdiff_t>(k),
                       index_scratch_.end(), by_magnitude);
    }
    // Ascending index order on the wire: deterministic layout regardless
    // of nth_element's internal ordering, sequential decode access.
    std::sort(index_scratch_.begin(), index_scratch_.begin() + static_cast<std::ptrdiff_t>(k));

    put<std::uint32_t>(wire_, static_cast<std::uint32_t>(k));
    for (std::size_t j = 0; j < k; ++j) {
      const std::uint32_t index = index_scratch_[j];
      put<std::uint32_t>(wire_, index);
      put<float>(wire_, src[index]);  // exact fp32: selected values are lossless
    }

    if (error_feedback) {
      // Unselected mass is the residual; selected entries were sent
      // exactly, so they owe nothing.
      residual->assign(src, src + n);
      float* res = residual->data();
      for (std::size_t j = 0; j < k; ++j) res[index_scratch_[j]] = 0.0f;
    }
  }
}

void GradientCompressor::decode_average(CompressionAlgo algo, std::span<const Chunk> chunks,
                                        std::span<const std::byte> gathered, int world,
                                        float topk_ratio) {
  (void)topk_ratio;  // k is on the wire; the ratio only shapes encode
  if (world <= 0) throw std::invalid_argument("hvd compress: world must be positive");
  if (gathered.size() % static_cast<std::size_t>(world) != 0) {
    throw std::invalid_argument("hvd compress: gathered size not divisible by world");
  }
  const std::size_t blob_bytes = gathered.size() / static_cast<std::size_t>(world);

  for (const Chunk& chunk : chunks) {
    std::fill(chunk.data.begin(), chunk.data.end(), 0.0f);
  }
  // Rank-major accumulation: every rank sums contributions in the same
  // order (0..world-1), so the averaged floats are bitwise identical on
  // all replicas.
  for (int rank = 0; rank < world; ++rank) {
    const auto blob = gathered.subspan(static_cast<std::size_t>(rank) * blob_bytes, blob_bytes);
    std::size_t pos = 0;
    for (const Chunk& chunk : chunks) {
      float* out = chunk.data.data();
      const std::size_t n = chunk.data.size();
      if (algo == CompressionAlgo::kInt8) {
        const auto header = get<Int8Header>(blob, pos);
        if (pos + n > blob.size()) {
          throw std::runtime_error("hvd compress: truncated int8 payload");
        }
        const auto* q = reinterpret_cast<const std::uint8_t*>(blob.data() + pos);
        pos += n;
        for (std::size_t i = 0; i < n; ++i) {
          out[i] += header.offset + static_cast<float>(q[i]) * header.scale;
        }
      } else if (algo == CompressionAlgo::kTopK) {
        const auto k = get<std::uint32_t>(blob, pos);
        for (std::uint32_t j = 0; j < k; ++j) {
          const auto index = get<std::uint32_t>(blob, pos);
          const auto value = get<float>(blob, pos);
          if (index >= n) throw std::runtime_error("hvd compress: top-k index out of range");
          out[index] += value;
        }
      } else {
        throw std::logic_error("hvd compress: decode is for int8/topk only");
      }
    }
    if (pos != blob.size()) {
      throw std::runtime_error("hvd compress: trailing bytes in wire blob");
    }
  }
  const float inv_world = 1.0f / static_cast<float>(world);
  for (const Chunk& chunk : chunks) {
    for (float& x : chunk.data) x *= inv_world;
  }
}

}  // namespace dlscale::hvd
