#include "dlscale/hvd/autotune.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "dlscale/util/logging.hpp"

namespace dlscale::hvd {

namespace {

constexpr int kAxes = 4;  // fusion threshold, cycle time, hierarchical, compression

// Fixed-layout wire encoding of the window decision (rank 0 -> world).
// Manual pack/unpack keeps the protocol independent of struct layout.
struct DecisionWire {
  template <typename T>
  static void put(std::vector<std::byte>& out, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* raw = reinterpret_cast<const std::byte*>(&value);
    out.insert(out.end(), raw, raw + sizeof(T));
  }
  template <typename T>
  static T get(std::span<const std::byte> in, std::size_t& pos) {
    T value{};
    if (pos + sizeof(T) > in.size()) throw std::runtime_error("autotune: truncated decision");
    std::memcpy(&value, in.data() + pos, sizeof(T));
    pos += sizeof(T);
    return value;
  }
};

std::vector<std::byte> encode_decision(bool frozen, const Knobs& knobs) {
  std::vector<std::byte> out;
  DecisionWire::put<std::uint8_t>(out, frozen ? 1 : 0);
  DecisionWire::put<std::uint64_t>(out, knobs.fusion_threshold);
  DecisionWire::put<double>(out, knobs.cycle_time_s);
  DecisionWire::put<std::uint8_t>(out, knobs.hierarchical_allreduce ? 1 : 0);
  DecisionWire::put<std::uint8_t>(out, knobs.response_cache ? 1 : 0);
  DecisionWire::put<std::uint8_t>(out, knobs.algo.has_value() ? 1 : 0);
  DecisionWire::put<std::uint8_t>(out,
                                  static_cast<std::uint8_t>(knobs.algo.value_or(mpi::AllreduceAlgo::kRing)));
  DecisionWire::put<std::uint64_t>(out, knobs.stall_warning_cycles);
  DecisionWire::put<std::uint8_t>(out, knobs.fp16_allreduce ? 1 : 0);
  DecisionWire::put<std::uint8_t>(out, knobs.timeline ? 1 : 0);
  DecisionWire::put<std::uint8_t>(out, static_cast<std::uint8_t>(knobs.compression));
  DecisionWire::put<float>(out, knobs.topk_ratio);
  DecisionWire::put<std::uint8_t>(out, knobs.error_feedback ? 1 : 0);
  return out;
}

std::pair<bool, Knobs> decode_decision(std::span<const std::byte> blob) {
  std::size_t pos = 0;
  const bool frozen = DecisionWire::get<std::uint8_t>(blob, pos) != 0;
  Knobs knobs;
  knobs.fusion_threshold = DecisionWire::get<std::uint64_t>(blob, pos);
  knobs.cycle_time_s = DecisionWire::get<double>(blob, pos);
  knobs.hierarchical_allreduce = DecisionWire::get<std::uint8_t>(blob, pos) != 0;
  knobs.response_cache = DecisionWire::get<std::uint8_t>(blob, pos) != 0;
  const bool has_algo = DecisionWire::get<std::uint8_t>(blob, pos) != 0;
  const auto algo = static_cast<mpi::AllreduceAlgo>(DecisionWire::get<std::uint8_t>(blob, pos));
  knobs.algo = has_algo ? std::optional<mpi::AllreduceAlgo>(algo) : std::nullopt;
  knobs.stall_warning_cycles = DecisionWire::get<std::uint64_t>(blob, pos);
  knobs.fp16_allreduce = DecisionWire::get<std::uint8_t>(blob, pos) != 0;
  knobs.timeline = DecisionWire::get<std::uint8_t>(blob, pos) != 0;
  knobs.compression = static_cast<CompressionAlgo>(DecisionWire::get<std::uint8_t>(blob, pos));
  knobs.topk_ratio = DecisionWire::get<float>(blob, pos);
  knobs.error_feedback = DecisionWire::get<std::uint8_t>(blob, pos) != 0;
  return {frozen, knobs};
}

}  // namespace

// ---- CoordinateDescentPolicy ----

CoordinateDescentPolicy::CoordinateDescentPolicy(Knobs base, TuningSpace space,
                                                 double min_relative_gain, int max_passes)
    : space_(std::move(space)),
      best_(base),
      min_gain_(min_relative_gain),
      max_passes_(std::max(1, max_passes)) {}

std::size_t CoordinateDescentPolicy::axis_size(int axis) const {
  switch (axis) {
    case 0: return space_.fusion_thresholds.size();
    case 1: return space_.cycle_times_s.size();
    case 2: return space_.hierarchical.size();
    default: return space_.compressions.size();  // empty -> axis skipped
  }
}

Knobs CoordinateDescentPolicy::with_candidate(int axis, std::size_t index) const {
  Knobs knobs = best_;  // other coordinates stay at the incumbent
  switch (axis) {
    case 0: knobs.fusion_threshold = space_.fusion_thresholds[index]; break;
    case 1: knobs.cycle_time_s = space_.cycle_times_s[index]; break;
    case 2: knobs.hierarchical_allreduce = space_.hierarchical[index]; break;
    default:
      // A codec candidate fully determines the wire format: clear the
      // legacy fp16 flag so kNone really means uncompressed (otherwise
      // effective_compression() would fall back to fp16).
      knobs.compression = space_.compressions[index];
      knobs.fp16_allreduce = false;
      break;
  }
  return knobs;
}

bool CoordinateDescentPolicy::matches_best(int axis, std::size_t index) const {
  switch (axis) {
    case 0: return space_.fusion_thresholds[index] == best_.fusion_threshold;
    case 1: return space_.cycle_times_s[index] == best_.cycle_time_s;
    case 2: return space_.hierarchical[index] == best_.hierarchical_allreduce;
    default: return space_.compressions[index] == best_.effective_compression();
  }
}

std::optional<Knobs> CoordinateDescentPolicy::propose() {
  if (done_) return std::nullopt;
  if (!baseline_measured_) return best_;  // first window scores the incumbent
  while (true) {
    if (axis_ >= kAxes) {
      if (!pass_improved_ || pass_ + 1 >= max_passes_) {
        done_ = true;
        return std::nullopt;
      }
      ++pass_;
      axis_ = 0;
      candidate_ = 0;
      pass_improved_ = false;
    }
    if (candidate_ >= axis_size(axis_)) {
      ++axis_;
      candidate_ = 0;
      continue;
    }
    const std::size_t index = candidate_++;
    if (matches_best(axis_, index)) continue;  // incumbent value: already scored
    return with_candidate(axis_, index);
  }
}

void CoordinateDescentPolicy::observe(const WindowMeasurement& measurement) {
  if (!baseline_measured_) {
    baseline_measured_ = true;
    best_score_ = measurement.score;
    return;
  }
  if (measurement.score < best_score_ * (1.0 - min_gain_)) {
    best_ = measurement.knobs;
    best_score_ = measurement.score;
    pass_improved_ = true;
  }
}

// ---- GridSearchPolicy ----

GridSearchPolicy::GridSearchPolicy(Knobs base, TuningSpace space)
    : space_(std::move(space)), base_(base), best_(base) {}

std::optional<Knobs> GridSearchPolicy::propose() {
  if (next_ >= space_.combinations()) return std::nullopt;
  const std::size_t cycles = space_.cycle_times_s.size();
  const std::size_t hiers = space_.hierarchical.size();
  const std::size_t comps = std::max<std::size_t>(1, space_.compressions.size());
  std::size_t index = next_++;
  Knobs knobs = base_;
  if (!space_.compressions.empty()) {
    knobs.compression = space_.compressions[index % comps];
    knobs.fp16_allreduce = false;  // the candidate IS the codec (see with_candidate)
  }
  index /= comps;
  knobs.hierarchical_allreduce = space_.hierarchical[index % hiers];
  index /= hiers;
  knobs.cycle_time_s = space_.cycle_times_s[index % cycles];
  index /= cycles;
  knobs.fusion_threshold = space_.fusion_thresholds[index];
  return knobs;
}

void GridSearchPolicy::observe(const WindowMeasurement& measurement) {
  if (!any_observed_ || measurement.score < best_score_) {
    any_observed_ = true;
    best_ = measurement.knobs;
    best_score_ = measurement.score;
  }
}

// ---- Autotuner ----

Autotuner::Autotuner(HorovodRuntime& runtime, AutotuneOptions options,
                     std::unique_ptr<TuningPolicy> policy)
    : runtime_(&runtime), options_(options), policy_(std::move(policy)),
      active_(runtime.knobs()) {
  options_.window_steps = std::max(1, options_.window_steps);
  options_.warmup_windows = std::max(1, options_.warmup_windows);
  options_.max_windows = std::max(options_.warmup_windows + 1, options_.max_windows);
  if (!policy_ && runtime_->comm().rank() == 0) {
    policy_ = std::make_unique<CoordinateDescentPolicy>(active_, options_.space,
                                                        options_.min_relative_gain);
  }
  begin_window();
}

void Autotuner::begin_window() {
  steps_in_window_ = 0;
  window_start_time_ = runtime_->comm().now();
  window_start_stats_ = runtime_->stats();
}

void Autotuner::on_world_change() {
  mpi::Communicator& comm = runtime_->comm();
  if (comm.rank() == 0 && !policy_) {
    // The policy owner died with the old rank 0. Restart the search from
    // the incumbent knobs; already-frozen state (resynced below) still
    // wins, so a frozen tuner never resumes exploring.
    policy_ = std::make_unique<CoordinateDescentPolicy>(active_, options_.space,
                                                        options_.min_relative_gain);
  }
  // A failure can interrupt a window-finishing broadcast after some ranks
  // already applied the decision: survivors may disagree on the active
  // knobs or even on frozen-ness, and mismatched fusion/hierarchical
  // settings across ranks would wedge the rebuilt runtime's collectives.
  // Re-broadcast rank 0's {frozen, knobs} so every survivor converges on
  // one authoritative state before training resumes.
  std::vector<std::byte> decision;
  if (comm.rank() == 0) decision = encode_decision(frozen_, active_);
  decision = comm.bcast_blob(decision, 0);
  const auto [frozen, knobs] = decode_decision(decision);
  frozen_ = frozen;
  active_ = knobs;
  runtime_->set_knobs(active_);
  // Restart the measurement window from the new runtime's counters and
  // the (possibly discontinuous) post-recovery clock.
  begin_window();
}

void Autotuner::step_end() {
  if (frozen_) return;
  if (++steps_in_window_ < options_.window_steps) return;
  finish_window(/*force_freeze=*/false);
}

void Autotuner::freeze() {
  if (frozen_) return;
  finish_window(/*force_freeze=*/true);
}

double Autotuner::surrogate_step_cost(const RuntimeStats& delta, int steps) {
  // Deterministic cost surrogate for functional (timing-off) worlds:
  // every collective launch pays a kernel/coordination alpha, wire and
  // control bytes a bandwidth beta, every negotiation round a coordinator
  // round-trip (rounds served from the response cache cost half of one).
  // The wire term prices bytes_on_wire — the POST-codec payload — so a
  // compression candidate's smaller blobs score as the win they are.
  constexpr double kLaunchAlphaS = 25e-6;
  constexpr double kCycleAlphaS = 10e-6;
  constexpr double kWireSecondsPerByte = 1.0 / 12.5e9;   // EDR-class fabric
  constexpr double kControlSecondsPerByte = 1.0 / 1e9;   // coordinator path
  const double cycle_cost =
      (static_cast<double>(delta.cycles) - 0.5 * static_cast<double>(delta.cache_hit_cycles)) *
      kCycleAlphaS;
  const double cost = static_cast<double>(delta.fused_batches) * kLaunchAlphaS + cycle_cost +
                      static_cast<double>(delta.bytes_on_wire) * kWireSecondsPerByte +
                      static_cast<double>(delta.control_bytes) * kControlSecondsPerByte;
  return cost / std::max(1, steps);
}

double Autotuner::score_window(double window_s, const RuntimeStats& delta, int steps) const {
  if (runtime_->comm().timing_enabled()) {
    return window_s / std::max(1, steps);
  }
  return surrogate_step_cost(delta, steps);
}

void Autotuner::finish_window(bool force_freeze) {
  mpi::Communicator& comm = runtime_->comm();
  const double window_s = comm.now() - window_start_time_;
  const RuntimeStats delta = runtime_->stats() - window_start_stats_;

  // Rank 0 scores the window, consults the policy, and decides; the
  // decision blob makes every rank stage identical knobs regardless of
  // clock skew or who saw which ready times.
  std::vector<std::byte> decision;
  if (comm.rank() == 0) {
    bool freeze_now = force_freeze;
    Knobs next = active_;
    // Window index `windows_completed_` ran under a policy proposal iff
    // it is past the warmup prefix; only those windows are scored.
    const bool scored = windows_completed_ >= options_.warmup_windows;
    if (scored && steps_in_window_ > 0) {
      WindowMeasurement measurement;
      measurement.knobs = active_;
      measurement.window_time_s = window_s;
      measurement.steps = steps_in_window_;
      measurement.stats = delta;
      measurement.score = score_window(window_s, delta, steps_in_window_);
      policy_->observe(measurement);
      history_.push_back(measurement);
    }
    if (windows_completed_ + 1 >= options_.max_windows) freeze_now = true;
    if (!freeze_now && windows_completed_ + 1 >= options_.warmup_windows) {
      const std::optional<Knobs> proposal = policy_->propose();
      if (proposal) {
        next = *proposal;
      } else {
        freeze_now = true;  // policy converged
      }
    }
    if (freeze_now) next = policy_->best();
    decision = encode_decision(freeze_now, next);
    if (freeze_now) {
      DLSCALE_DEBUG("autotune: frozen after " << windows_completed_ + 1 << " windows on fusion "
                                              << next.fusion_threshold << "B cycle "
                                              << next.cycle_time_s * 1e3 << "ms hierarchical "
                                              << (next.hierarchical_allreduce ? "on" : "off")
                                              << " codec "
                                              << to_string(next.effective_compression()));
    }
  }
  decision = comm.bcast_blob(decision, 0);
  const auto [frozen, knobs] = decode_decision(decision);
  frozen_ = frozen;
  active_ = knobs;
  runtime_->set_knobs(active_);
  ++windows_completed_;
  begin_window();
}

}  // namespace dlscale::hvd
