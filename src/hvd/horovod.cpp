#include "dlscale/hvd/horovod.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include <ostream>

#include "dlscale/util/env.hpp"
#include "dlscale/util/fp16.hpp"
#include "dlscale/util/logging.hpp"

namespace dlscale::hvd {

namespace {

constexpr std::size_t kCacheSlots = 4096;
constexpr std::size_t kCacheWords = kCacheSlots / 64;


/// Byte-stream writer/reader for the negotiation payloads.
struct Writer {
  std::vector<std::byte> out;
  template <typename T>
  void put(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* raw = reinterpret_cast<const std::byte*>(&value);
    out.insert(out.end(), raw, raw + sizeof(T));
  }
  void put_name(const std::string& name) {
    put<std::uint16_t>(static_cast<std::uint16_t>(name.size()));
    const auto* raw = reinterpret_cast<const std::byte*>(name.data());
    out.insert(out.end(), raw, raw + name.size());
  }
};

struct Reader {
  std::span<const std::byte> in;
  std::size_t pos = 0;
  template <typename T>
  T get() {
    T value{};
    if (pos + sizeof(T) > in.size()) throw std::runtime_error("hvd: truncated payload");
    std::memcpy(&value, in.data() + pos, sizeof(T));
    pos += sizeof(T);
    return value;
  }
  std::string get_name() {
    const auto len = get<std::uint16_t>();
    if (pos + len > in.size()) throw std::runtime_error("hvd: truncated name");
    std::string name(reinterpret_cast<const char*>(in.data() + pos), len);
    pos += len;
    return name;
  }
};

}  // namespace

Knobs Knobs::from_env() { return from_env(Knobs{}); }

namespace {

std::optional<mpi::AllreduceAlgo> parse_allreduce_algo(std::string_view text) {
  std::string lowered;
  lowered.reserve(text.size());
  for (char c : text) {
    lowered.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lowered == "ring") return mpi::AllreduceAlgo::kRing;
  if (lowered == "rabenseifner") return mpi::AllreduceAlgo::kRabenseifner;
  if (lowered == "recursive_doubling" || lowered == "recursive-doubling" || lowered == "rd") {
    return mpi::AllreduceAlgo::kRecursiveDoubling;
  }
  return std::nullopt;
}

}  // namespace

Knobs Knobs::from_env(Knobs defaults) {
  Knobs knobs = defaults;
  knobs.fp16_allreduce = util::env_bool("HOROVOD_FP16_ALLREDUCE", defaults.fp16_allreduce);
  knobs.fusion_threshold =
      util::env_bytes("HOROVOD_FUSION_THRESHOLD", defaults.fusion_threshold);
  // Horovod expresses cycle time in milliseconds.
  knobs.cycle_time_s =
      util::env_double("HOROVOD_CYCLE_TIME", defaults.cycle_time_s * 1e3) * 1e-3;
  knobs.hierarchical_allreduce =
      util::env_bool("HOROVOD_HIERARCHICAL_ALLREDUCE", defaults.hierarchical_allreduce);
  const auto cache_capacity = util::env_int("HOROVOD_CACHE_CAPACITY", -1);
  if (cache_capacity == 0) {
    knobs.response_cache = false;
  } else if (cache_capacity > 0) {
    knobs.response_cache = true;
  }
  knobs.stall_warning_cycles = static_cast<std::uint64_t>(std::max<std::int64_t>(
      0, util::env_int("HOROVOD_STALL_CHECK",
                       static_cast<std::int64_t>(defaults.stall_warning_cycles))));
  // Horovod treats HOROVOD_TIMELINE as an output path; any non-empty
  // value turns tracing on here (write_timeline picks the stream).
  const auto timeline = util::env_string("HOROVOD_TIMELINE");
  knobs.timeline = timeline ? !timeline->empty() : defaults.timeline;
  // Force one collective algorithm regardless of message size; "auto"
  // keeps the size-based MpiProfile selection. An unknown name is a hard
  // error: silently falling back would run a whole job under the wrong
  // collective and invalidate its numbers.
  if (const auto algo_name = util::env_string("DLSCALE_ALLREDUCE_ALGO")) {
    knobs.algo = parse_allreduce_algo(*algo_name);
    std::string lowered;
    for (char c : *algo_name) {
      lowered.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
    if (!knobs.algo && !lowered.empty() && lowered != "auto") {
      throw std::invalid_argument(
          "DLSCALE_ALLREDUCE_ALGO: unknown algorithm '" + *algo_name +
          "' (valid: ring|rabenseifner|recursive_doubling|auto)");
    }
  }
  // Gradient wire codec (DESIGN.md §12) — same strictness.
  if (const auto codec_name = util::env_string("DLSCALE_GRAD_COMPRESSION")) {
    if (!codec_name->empty()) {
      const auto codec = parse_compression(*codec_name);
      if (!codec) {
        throw std::invalid_argument("DLSCALE_GRAD_COMPRESSION: unknown codec '" + *codec_name +
                                    "' (valid: none|fp16|int8|topk)");
      }
      knobs.compression = *codec;
    }
  }
  const double topk_ratio =
      util::env_double("DLSCALE_TOPK_RATIO", static_cast<double>(defaults.topk_ratio));
  if (!(topk_ratio > 0.0 && topk_ratio <= 1.0)) {
    throw std::invalid_argument("DLSCALE_TOPK_RATIO: " + std::to_string(topk_ratio) +
                                " out of range (valid: (0, 1])");
  }
  knobs.topk_ratio = static_cast<float>(topk_ratio);
  knobs.error_feedback = util::env_bool("DLSCALE_ERROR_FEEDBACK", defaults.error_feedback);
  return knobs;
}

Knobs Knobs::paper_tuned() {
  Knobs knobs;
  knobs.fusion_threshold = 64 << 20;
  knobs.cycle_time_s = 3.5e-3;
  knobs.hierarchical_allreduce = true;
  knobs.response_cache = true;
  return knobs;
}

HorovodRuntime::HorovodRuntime(mpi::Communicator& comm, Knobs knobs, gpu::ComputeModel copy_model)
    : comm_(comm), knobs_(knobs), copy_model_(std::move(copy_model)) {
  if (knobs_.fusion_threshold == 0) knobs_.fusion_threshold = 1;  // per-tensor launches
  if (knobs_.timeline) timeline_enabled_ = true;
}

void HorovodRuntime::submit(TensorRequest request) {
  if (request.name.empty()) throw std::invalid_argument("hvd::submit: tensor needs a name");
  if (request.bytes == 0) request.bytes = request.data.size_bytes();
  if (request.bytes == 0) throw std::invalid_argument("hvd::submit: zero-size tensor");
  if (pending_.contains(request.name)) {
    throw std::logic_error("hvd::submit: tensor '" + request.name +
                           "' already pending (synchronize before resubmitting)");
  }
  // Copy the key before moving the request: argument evaluation order is
  // unspecified and the Pending construction moves request.name out.
  std::string key = request.name;
  submit_order_.push_back(key);
  pending_.emplace(std::move(key), Pending{std::move(request), false});
}

std::vector<std::string> HorovodRuntime::collect_ready(double cycle_start) {
  std::vector<std::string> fresh;
  for (const std::string& name : submit_order_) {
    auto it = pending_.find(name);
    if (it == pending_.end()) continue;
    Pending& entry = it->second;
    if (entry.announced || entry.request.ready_at > cycle_start) continue;
    if (knobs_.response_cache && cache_ids_.contains(name)) continue;  // bitvector path
    entry.announced = true;
    fresh.push_back(name);
  }
  return fresh;
}

void HorovodRuntime::note_cached(const std::string& name) {
  if (!knobs_.response_cache) return;
  if (cache_ids_.contains(name) || cache_names_.size() >= kCacheSlots) return;
  cache_ids_.emplace(name, static_cast<std::uint32_t>(cache_names_.size()));
  cache_names_.push_back(name);
}

bool HorovodRuntime::cycle() {
  // Apply a staged set_knobs at the cycle boundary: the whole round —
  // report, response, fusion batching, collectives — runs under one knob
  // set. All ranks stage the same values at the same submit/synchronize
  // point, so every rank flips on the same cycle.
  if (pending_knobs_) {
    knobs_ = *pending_knobs_;
    if (knobs_.fusion_threshold == 0) knobs_.fusion_threshold = 1;
    if (knobs_.timeline) timeline_enabled_ = true;
    pending_knobs_.reset();
  }
  ++stats_.cycles;
  // The background loop sleeps the remainder of the cycle period measured
  // from the PREVIOUS cycle's start (Horovod's RunLoopOnce semantics): a
  // round whose execution outlasts the period starts the next round
  // immediately.
  const double effective_cycle = std::max(knobs_.cycle_time_s, 1e-6);
  const double cycle_start = std::max(comm_.now(), last_cycle_start_ + effective_cycle);
  comm_.clock().bump_to(cycle_start);
  last_cycle_start_ = cycle_start;

  // ---- build this rank's report ----
  const std::vector<std::string> fresh = collect_ready(cycle_start);
  std::uint64_t bits[kCacheWords] = {};
  if (knobs_.response_cache) {
    for (const auto& [name, entry] : pending_) {
      if (entry.request.ready_at > cycle_start) continue;
      auto it = cache_ids_.find(name);
      if (it == cache_ids_.end()) continue;
      bits[it->second / 64] |= std::uint64_t{1} << (it->second % 64);
    }
  }
  Writer report;
  report.put<std::uint32_t>(static_cast<std::uint32_t>(fresh.size()));
  report.put<std::uint32_t>(static_cast<std::uint32_t>(pending_.size()));
  for (std::size_t w = 0; w < kCacheWords; ++w) report.put<std::uint64_t>(bits[w]);
  for (const std::string& name : fresh) report.put_name(name);
  stats_.control_bytes += report.out.size();

  // ---- coordinator (rank 0) combines reports ----
  const double negotiation_start = comm_.now();
  const auto reports = comm_.gather_blobs(report.out, 0);
  Writer response;
  if (comm_.rank() == 0) {
    std::uint64_t combined_bits[kCacheWords];
    std::fill(std::begin(combined_bits), std::end(combined_bits), ~std::uint64_t{0});
    bool any_fresh = false;
    std::uint32_t max_pending = 0;
    for (const auto& blob : reports) {
      Reader reader{blob};
      const auto fresh_count = reader.get<std::uint32_t>();
      const auto pending_count = reader.get<std::uint32_t>();
      max_pending = std::max(max_pending, pending_count);
      for (std::size_t w = 0; w < kCacheWords; ++w) combined_bits[w] &= reader.get<std::uint64_t>();
      any_fresh = any_fresh || fresh_count > 0;
      for (std::uint32_t i = 0; i < fresh_count; ++i) {
        const std::string name = reader.get_name();
        ReadyState& state = ready_counts_[name];
        if (state.count == 0) state.first_seen_cycle = stats_.cycles;
        if (++state.count == comm_.size()) {
          response_order_.push_back(name);
          ready_counts_.erase(name);
        }
      }
    }
    // Stall check (HOROVOD_STALL_CHECK): a tensor announced by some ranks
    // but not all for many cycles usually means diverged control flow.
    if (knobs_.stall_warning_cycles > 0) {
      for (auto& [name, state] : ready_counts_) {
        if (!state.stall_warned &&
            stats_.cycles - state.first_seen_cycle >= knobs_.stall_warning_cycles) {
          state.stall_warned = true;
          ++stats_.stall_warnings;
          DLSCALE_WARN("hvd stall check: tensor '"
                       << name << "' ready on " << state.count << "/" << comm_.size()
                       << " ranks for " << (stats_.cycles - state.first_seen_cycle)
                       << " cycles");
        }
      }
    }
    // Cached responses: slots ready on every rank, in slot order.
    std::vector<std::uint32_t> cached_ready;
    for (std::uint32_t slot = 0; slot < cache_names_.size(); ++slot) {
      if (combined_bits[slot / 64] & (std::uint64_t{1} << (slot % 64))) cached_ready.push_back(slot);
    }
    const auto total_responses =
        static_cast<std::uint32_t>(cached_ready.size() + response_order_.size());
    const bool keep_going = max_pending > total_responses;
    if (!any_fresh && total_responses > 0) ++stats_.cache_hit_cycles;

    response.put<std::uint8_t>(keep_going ? 1 : 0);
    response.put<std::uint32_t>(static_cast<std::uint32_t>(cached_ready.size()));
    for (std::uint32_t slot : cached_ready) response.put<std::uint32_t>(slot);
    response.put<std::uint32_t>(static_cast<std::uint32_t>(response_order_.size()));
    for (const std::string& name : response_order_) response.put_name(name);
    response_order_.clear();
  }
  const auto response_blob = comm_.bcast_blob(response.out, 0);
  stats_.control_bytes += response_blob.size();
  if (timeline_enabled_) {
    timeline_.push_back({negotiation_start, comm_.now(),
                         "cycle " + std::to_string(stats_.cycles), "negotiation"});
  }

  // ---- every rank decodes and executes the same response list ----
  Reader reader{response_blob};
  const bool keep_going = reader.get<std::uint8_t>() != 0;
  std::vector<std::string> ordered;
  const auto cached_count = reader.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < cached_count; ++i) {
    ordered.push_back(cache_names_.at(reader.get<std::uint32_t>()));
  }
  const auto fresh_count = reader.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < fresh_count; ++i) {
    const std::string name = reader.get_name();
    note_cached(name);
    ordered.push_back(name);
  }
  stats_.tensors_negotiated += ordered.size();

  // Greedy fusion up to the threshold; an oversized tensor goes alone.
  std::vector<std::string> batch;
  std::size_t batch_bytes = 0;
  auto flush = [&] {
    if (batch.empty()) return;
    execute_batch(batch);
    batch.clear();
    batch_bytes = 0;
  };
  for (const std::string& name : ordered) {
    const auto it = pending_.find(name);
    if (it == pending_.end()) {
      throw std::logic_error("hvd: response for unknown tensor '" + name + "'");
    }
    const std::size_t bytes = it->second.request.bytes;
    if (!batch.empty() && batch_bytes + bytes > knobs_.fusion_threshold) flush();
    batch.push_back(name);
    batch_bytes += bytes;
    if (batch_bytes >= knobs_.fusion_threshold) flush();
  }
  flush();

  return keep_going;
}

namespace {

void half_sum(std::byte* acc_raw, const std::byte* in_raw, std::size_t n) {
  auto* acc = reinterpret_cast<std::uint16_t*>(acc_raw);
  const auto* in = reinterpret_cast<const std::uint16_t*>(in_raw);
  util::halves_add_inplace(acc, in, n);
}

}  // namespace

void HorovodRuntime::execute_batch(const std::vector<std::string>& names) {
  ++stats_.fused_batches;
  const double exec_start = comm_.now();
  std::size_t total_bytes = 0;
  bool has_data = false;
  for (const std::string& name : names) {
    const Pending& entry = pending_.at(name);
    total_bytes += entry.request.bytes;
    has_data = has_data || !entry.request.data.empty();
  }
  stats_.bytes_reduced += total_bytes;
  const auto world = static_cast<float>(comm_.size());
  const CompressionAlgo codec = knobs_.effective_compression();
  const bool allgather_codec =
      codec == CompressionAlgo::kInt8 || codec == CompressionAlgo::kTopK;

  if (!has_data) {
    // Timing-only: price the fusion-buffer pack/unpack copies (the
    // codec conversions ride the same copy kernels) and run a
    // payload-free collective over the compressed wire size.
    std::size_t wire_bytes = total_bytes;
    if (codec == CompressionAlgo::kFp16) {
      wire_bytes = total_bytes / 2;
    } else if (allgather_codec) {
      std::vector<std::size_t> counts;
      counts.reserve(names.size());
      for (const std::string& name : names) {
        counts.push_back(pending_.at(name).request.bytes / sizeof(float));
      }
      wire_bytes = codec == CompressionAlgo::kInt8
                       ? GradientCompressor::int8_wire_bytes(counts)
                       : GradientCompressor::topk_wire_bytes(counts, knobs_.topk_ratio);
    }
    stats_.bytes_on_wire += wire_bytes;
    if (names.size() > 1 && comm_.timing_enabled()) {
      comm_.compute(2.0 * copy_model_.copy_time(total_bytes, gpu::CopyKind::kDeviceToDevice));
    }
    if (allgather_codec) {
      // Encode/decode sweeps over the full fp32 payload...
      if (comm_.timing_enabled()) {
        comm_.compute(2.0 * copy_model_.copy_time(total_bytes, gpu::CopyKind::kDeviceToDevice));
      }
      // ...then an allgather of one wire-sized blob per rank. A ring
      // allgather moves (W-1)*B bytes per rank; a ring allreduce of
      // W*B/2 moves the same volume, so that is how the payload-free
      // engine prices it (always flat and ring: the blob exchange has no
      // reduction to split hierarchically).
      comm_.allreduce_sim(wire_bytes * static_cast<std::size_t>(comm_.size()) / 2,
                          mpi::MemSpace::kDevice, mpi::AllreduceAlgo::kRing);
    } else if (knobs_.hierarchical_allreduce) {
      comm_.hierarchical_allreduce_sim(wire_bytes, mpi::MemSpace::kDevice, knobs_.algo);
    } else {
      comm_.allreduce_sim(wire_bytes, mpi::MemSpace::kDevice, knobs_.algo);
    }
  } else if (allgather_codec) {
    // int8 / top-k: compressed blobs are not reducible on the wire
    // (affine codes have per-rank scales, sparse sets differ), so the
    // exchange is allgather + local dequantize-and-average. Error
    // feedback happens inside encode (residual in, compression error
    // out); decode averages all ranks' contributions in rank order.
    std::vector<GradientCompressor::Chunk> chunks;
    chunks.reserve(names.size());
    for (const std::string& name : names) {
      chunks.push_back({&name, pending_.at(name).request.data});
    }
    const auto pack_start = std::chrono::steady_clock::now();
    const auto wire =
        compressor_.encode(codec, chunks, knobs_.topk_ratio, knobs_.error_feedback);
    stats_.compress_pack_s += std::chrono::duration<double>(
        std::chrono::steady_clock::now() - pack_start).count();
    stats_.bytes_on_wire += wire.size();
    if (comm_.timing_enabled()) {
      comm_.compute(copy_model_.copy_time(total_bytes, gpu::CopyKind::kDeviceToDevice));
    }
    gathered_.resize(wire.size() * static_cast<std::size_t>(comm_.size()));
    comm_.allgather(wire, gathered_, mpi::MemSpace::kDevice);
    const auto unpack_start = std::chrono::steady_clock::now();
    compressor_.decode_average(codec, chunks, gathered_, comm_.size(), knobs_.topk_ratio);
    stats_.compress_unpack_s += std::chrono::duration<double>(
        std::chrono::steady_clock::now() - unpack_start).count();
    if (comm_.timing_enabled()) {
      comm_.compute(copy_model_.copy_time(total_bytes, gpu::CopyKind::kDeviceToDevice));
    }
  } else if (codec == CompressionAlgo::kFp16) {
    // Compressed path: pack fp32 -> fp16 into the fusion buffer, allreduce
    // halves with a half-sum reducer, expand-and-average back.
    const std::size_t elements = total_bytes / sizeof(float);
    stats_.bytes_on_wire += elements * 2;
    if (fusion_buffer_.size_bytes() < elements * 2) fusion_buffer_.resize(elements * 2);
    auto halves = fusion_buffer_.as<std::uint16_t>();
    const auto pack_start = std::chrono::steady_clock::now();
    std::size_t offset = 0;
    for (const std::string& name : names) {
      const auto data = pending_.at(name).request.data;
      util::floats_to_halves(data.data(), halves.data() + offset, data.size());
      offset += data.size();
    }
    stats_.compress_pack_s += std::chrono::duration<double>(
        std::chrono::steady_clock::now() - pack_start).count();
    if (comm_.timing_enabled()) {
      comm_.compute(copy_model_.copy_time(total_bytes, gpu::CopyKind::kDeviceToDevice));
    }
    static const mpi::Communicator::Reducer kHalfSum{2, &half_sum};
    if (knobs_.hierarchical_allreduce) {
      // Hierarchical path goes through the same custom reducer via the
      // flat engine on each level; use flat allreduce for fp16 (the real
      // implementation does the same: compression before MPI).
      comm_.allreduce_custom(reinterpret_cast<std::byte*>(halves.data()), 2, offset, kHalfSum,
                             mpi::MemSpace::kDevice, knobs_.algo);
    } else {
      comm_.allreduce_custom(reinterpret_cast<std::byte*>(halves.data()), 2, offset, kHalfSum,
                             mpi::MemSpace::kDevice, knobs_.algo);
    }
    const auto unpack_start = std::chrono::steady_clock::now();
    offset = 0;
    for (const std::string& name : names) {
      const auto data = pending_.at(name).request.data;
      util::halves_to_floats_div(halves.data() + offset, data.data(),
                                 data.size(), world);
      offset += data.size();
    }
    stats_.compress_unpack_s += std::chrono::duration<double>(
        std::chrono::steady_clock::now() - unpack_start).count();
    if (comm_.timing_enabled()) {
      comm_.compute(copy_model_.copy_time(total_bytes, gpu::CopyKind::kDeviceToDevice));
    }
  } else if (names.size() == 1) {
    // Single tensor: reduce in place (Horovod skips the fusion buffer).
    stats_.bytes_on_wire += total_bytes;
    Pending& entry = pending_.at(names.front());
    if (knobs_.hierarchical_allreduce) {
      comm_.hierarchical_allreduce(entry.request.data, mpi::ReduceOp::kSum,
                                   mpi::MemSpace::kDevice, knobs_.algo);
    } else {
      comm_.allreduce(entry.request.data, mpi::ReduceOp::kSum, mpi::MemSpace::kDevice,
                      knobs_.algo);
    }
    for (float& x : entry.request.data) x /= world;
  } else {
    // Pack -> one allreduce -> unpack-and-average.
    stats_.bytes_on_wire += total_bytes;
    if (fusion_buffer_.size_bytes() < total_bytes) fusion_buffer_.resize(total_bytes);
    auto buffer = fusion_buffer_.as<float>();
    std::size_t offset = 0;
    for (const std::string& name : names) {
      const Pending& entry = pending_.at(name);
      std::copy(entry.request.data.begin(), entry.request.data.end(), buffer.begin() + offset);
      offset += entry.request.data.size();
    }
    if (comm_.timing_enabled()) {
      comm_.compute(copy_model_.copy_time(total_bytes, gpu::CopyKind::kDeviceToDevice));
    }
    auto fused = buffer.subspan(0, offset);
    if (knobs_.hierarchical_allreduce) {
      comm_.hierarchical_allreduce(fused, mpi::ReduceOp::kSum, mpi::MemSpace::kDevice,
                                   knobs_.algo);
    } else {
      comm_.allreduce(fused, mpi::ReduceOp::kSum, mpi::MemSpace::kDevice, knobs_.algo);
    }
    offset = 0;
    for (const std::string& name : names) {
      Pending& entry = pending_.at(name);
      for (float& x : entry.request.data) x = buffer[offset++] / world;
    }
    if (comm_.timing_enabled()) {
      comm_.compute(copy_model_.copy_time(total_bytes, gpu::CopyKind::kDeviceToDevice));
    }
  }

  if (timeline_enabled_) {
    timeline_.push_back({exec_start, comm_.now(),
                         names.size() == 1 ? names.front()
                                           : names.front() + " (+" +
                                                 std::to_string(names.size() - 1) + " fused)",
                         "allreduce"});
  }
  for (const std::string& name : names) {
    pending_.erase(name);
    std::erase(submit_order_, name);
  }
}

void HorovodRuntime::broadcast(std::span<float> data, int root) {
  comm_.bcast(std::as_writable_bytes(data), root, mpi::MemSpace::kDevice);
}

void HorovodRuntime::write_timeline(std::ostream& out) const {
  out << "[";
  bool first = true;
  for (const TimelineEvent& event : timeline_) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"name\": \"" << event.name << "\", \"cat\": \"" << event.phase
        << "\", \"ph\": \"X\", \"ts\": " << event.start_s * 1e6
        << ", \"dur\": " << (event.end_s - event.start_s) * 1e6
        << ", \"pid\": 0, \"tid\": " << comm_.rank() << "}";
  }
  out << "\n]\n";
}

void HorovodRuntime::synchronize() {
  // Safety valve against mismatched submissions across ranks (the
  // negotiation would otherwise spin forever). Overridable for tests and
  // debugging via DLSCALE_HVD_MAX_CYCLES.
  static const std::uint64_t max_cycles = static_cast<std::uint64_t>(
      util::env_int("DLSCALE_HVD_MAX_CYCLES", 1'000'000));
  std::uint64_t local_cycles = 0;
  bool keep_going = true;
  while (keep_going) {
    if (++local_cycles > max_cycles) {
      throw std::runtime_error(
          "hvd::synchronize: negotiation did not converge (mismatched submissions across "
          "ranks?)");
    }
    keep_going = cycle();
  }
  if (!pending_.empty()) {
    throw std::logic_error("hvd::synchronize: finished with tensors still pending");
  }
}

}  // namespace dlscale::hvd
