#include "dlscale/nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>

#include "dlscale/tensor/microkernel.hpp"
#include "dlscale/util/thread_pool.hpp"

namespace dlscale::nn {

double PolySchedule::lr_at(long iter) const {
  if (max_iters <= 0) return base_lr;
  const double progress = std::min(1.0, static_cast<double>(iter) / static_cast<double>(max_iters));
  return base_lr * std::pow(1.0 - progress, power);
}

SgdMomentum::SgdMomentum(std::vector<Parameter*> params, Config config)
    : params_(std::move(params)), config_(config) {
  velocity_.reserve(params_.size());
  for (Parameter* p : params_) {
    if (p == nullptr) throw std::invalid_argument("SgdMomentum: null parameter");
    // Constructing an optimizer declares training intent: materialise the
    // lazy gradient accumulators now so step()/grad_norm() can assume
    // they exist. Inference-only models never reach this point.
    p->ensure_grad();
    velocity_.emplace_back(p->value.shape());
  }
}

double SgdMomentum::grad_norm() const {
  double sum_sq = 0.0;
  for (const Parameter* p : params_) {
    for (float g : p->grad.data()) sum_sq += static_cast<double>(g) * g;
  }
  return std::sqrt(sum_sq);
}

void SgdMomentum::step(double lr) {
  // Global-norm gradient clipping (applied once, before any update).
  double clip_scale = 1.0;
  if (config_.clip_grad_norm > 0.0) {
    const double norm = grad_norm();
    if (norm > config_.clip_grad_norm) clip_scale = config_.clip_grad_norm / norm;
  }
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    Tensor& v = velocity_[i];
    auto value = p.value.data();
    auto grad = p.grad.data();
    auto vel = v.data();
    const auto wd = static_cast<float>(config_.weight_decay);
    const auto mu = static_cast<float>(config_.momentum);
    const auto eta = static_cast<float>(lr);
    const auto cs = static_cast<float>(clip_scale);
    // Elementwise, so safe to fan out over the kernel thread pool; the
    // per-chunk sweep dispatches to the SIMD micro-kernel layer.
    util::parallel_for(0, static_cast<std::int64_t>(value.size()), 1 << 15,
                       [&](std::int64_t j0, std::int64_t j1) {
                         tensor::micro::sgd_momentum_update(
                             value.data() + j0, vel.data() + j0,
                             grad.data() + j0, cs, wd, mu, eta, j1 - j0);
                       });
  }
}

void SgdMomentum::zero_grad() {
  for (Parameter* p : params_) p->zero_grad();
}

std::size_t SgdMomentum::total_parameters() const noexcept {
  std::size_t total = 0;
  for (const Parameter* p : params_) total += p->numel();
  return total;
}

}  // namespace dlscale::nn
