#include "dlscale/nn/quantized.hpp"

#include <stdexcept>

#include "dlscale/nn/layers.hpp"

namespace dlscale::nn {

const char* precision_name(Precision p) noexcept {
  switch (p) {
    case Precision::kBf16:
      return "bf16";
    case Precision::kInt8:
      return "int8";
    case Precision::kFp32:
      break;
  }
  return "fp32";
}

// ---- CalibrationTable -----------------------------------------------------

CalibrationTable::CalibrationTable(CalibrationConfig config)
    : config_(config) {
  if (config_.observer == ObserverKind::kPercentile) {
    // Validate eagerly — the PercentileObserver constructor throws on a
    // bad percentile, and it is better to fail at table construction
    // than mid-calibration.
    tensor::quant::PercentileObserver probe(config_.percentile);
    (void)probe;
  }
}

void CalibrationTable::record(const std::string& name, const float* values,
                              std::size_t n) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = slots_.find(name);
  if (it == slots_.end()) {
    it = slots_.emplace(name, Slot(config_.percentile)).first;
  }
  if (config_.observer == ObserverKind::kMinMax) {
    it->second.minmax.observe(values, n);
  } else {
    it->second.percentile.observe(values, n);
  }
}

bool CalibrationTable::has(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return slots_.count(name) != 0;
}

tensor::quant::QuantParams CalibrationTable::qparams(
    const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = slots_.find(name);
  if (it == slots_.end()) {
    throw std::invalid_argument(
        "CalibrationTable: no activation range recorded for layer '" + name +
        "' — run eval forwards under a CalibrationSession first");
  }
  const tensor::quant::Range range =
      config_.observer == ObserverKind::kMinMax
          ? it->second.minmax.range()
          : it->second.percentile.range();
  return tensor::quant::choose_qparams_u8(range);
}

std::size_t CalibrationTable::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return slots_.size();
}

// ---- CalibrationSession ---------------------------------------------------

namespace {
CalibrationTable* g_active_table = nullptr;
}  // namespace

CalibrationSession::CalibrationSession(CalibrationTable& table)
    : previous_(g_active_table) {
  g_active_table = &table;
}

CalibrationSession::~CalibrationSession() { g_active_table = previous_; }

CalibrationTable* CalibrationSession::active() noexcept {
  return g_active_table;
}

// ---- conversion traversal -------------------------------------------------

void convert_layer_tree(Layer& root, Precision target,
                        const CalibrationTable* table) {
  if (target == Precision::kFp32) return;
  if (auto* conv = dynamic_cast<Conv2d*>(&root)) {
    if (target == Precision::kInt8) {
      if (table == nullptr) {
        throw std::invalid_argument(
            "convert_layer_tree: int8 conversion requires a calibration "
            "table (layer '" +
            conv->name() + "')");
      }
      conv->convert_to_int8(*table);
    } else {
      conv->convert_to_bf16();
    }
    return;
  }
  if (auto* dw = dynamic_cast<DepthwiseConv2d*>(&root)) {
    dw->convert_to_bf16();
    return;
  }
  for (Layer* child : root.children()) {
    convert_layer_tree(*child, target, table);
  }
}

}  // namespace dlscale::nn
