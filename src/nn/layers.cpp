#include "dlscale/nn/layers.hpp"

#include <cmath>
#include <stdexcept>

#include "dlscale/util/bf16.hpp"

namespace dlscale::nn {

namespace {

constexpr double kBytesPerFloat = 4.0;

double bytes_of(const Tensor& t) { return kBytesPerFloat * static_cast<double>(t.numel()); }

// Roofline inputs for a backward pass: grad-input plus grad-weight cost
// roughly twice the forward arithmetic, over twice the activation
// traffic (read grad_out + cached input, write grad_in + param grads).
void report_backward_cost(GradSink* sink, double fwd_flops, double activation_bytes) {
  if (sink != nullptr) sink->backward_cost(2.0 * fwd_flops, 2.0 * activation_bytes);
}

// Notify finalized parameter gradients in REVERSE parameters() order so a
// whole-model backward emits the exact reverse of parameters(). Skips
// notification when sink is null.
void notify_reversed(GradSink* sink, const std::vector<Parameter*>& params) {
  if (sink == nullptr) return;
  for (auto it = params.rbegin(); it != params.rend(); ++it) sink->grad_ready(**it);
}

std::size_t tensor_bytes(const Tensor& t) { return t.numel() * sizeof(float); }

}  // namespace

// ---- Conv2d ----

Conv2d::Conv2d(std::string layer_name, int in_channels, int out_channels, int kernel,
               Conv2dSpec spec, bool bias, util::Rng& rng)
    : name_(std::move(layer_name)),
      spec_(spec),
      has_bias_(bias),
      weight_(name_ + ".weight", Tensor::he_init({out_channels, in_channels, kernel, kernel}, rng)),
      bias_(name_ + ".bias", Tensor::zeros({out_channels})) {}

Tensor Conv2d::forward(const Tensor& input, bool train) {
  if (precision_ != Precision::kFp32) {
    if (train) {
      throw std::logic_error(name_ + ": converted to " +
                             precision_name(precision_) +
                             ", inference-only");
    }
    if (precision_ == Precision::kInt8) {
      return tensor::quant::quantized_conv2d(
          input, qweight_, has_bias_ ? &bias_.value : nullptr, spec_,
          weight_shape_[2], weight_shape_[3], act_params_);
    }
    // bf16: widen into a transient fp32 tensor and run the fp32 kernel.
    // Weights at rest stay half-size — the transient exists only for the
    // duration of this forward, one layer at a time.
    Tensor wide(weight_shape_);
    util::bf16s_to_floats(bf16_weight_.data(), wide.ptr(), bf16_weight_.size());
    return tensor::conv2d(input, wide, has_bias_ ? &bias_.value : nullptr, spec_);
  }
  if (train) {
    cached_input_ = input;
  } else if (CalibrationTable* table = CalibrationSession::active()) {
    table->record(name_, input.ptr(), input.numel());
  }
  return tensor::conv2d(input, weight_.value, has_bias_ ? &bias_.value : nullptr, spec_);
}

void Conv2d::convert_to_int8(const CalibrationTable& table) {
  if (precision_ != Precision::kFp32) {
    throw std::logic_error(name_ + ": already converted to " +
                           precision_name(precision_));
  }
  // Resolve the calibrated range first: a missing-layer throw must leave
  // the layer untouched (the registry's strong reload guarantee).
  const tensor::quant::QuantParams act = table.qparams(name_);
  const tensor::Shape& shape = weight_.value.shape();
  const int out_c = shape[0];
  const int kdim = shape[1] * shape[2] * shape[3];
  qweight_ =
      tensor::quant::QuantizedMatrix::from_rows(weight_.value.ptr(), out_c, kdim);
  act_params_ = act;
  weight_shape_ = shape;
  weight_.value = Tensor();
  weight_.grad = Tensor();
  cached_input_ = Tensor();
  precision_ = Precision::kInt8;
}

void Conv2d::convert_to_bf16() {
  if (precision_ != Precision::kFp32) {
    throw std::logic_error(name_ + ": already converted to " +
                           precision_name(precision_));
  }
  weight_shape_ = weight_.value.shape();
  bf16_weight_.resize(weight_.value.numel());
  util::floats_to_bf16s(weight_.value.ptr(), bf16_weight_.data(),
                        bf16_weight_.size());
  weight_.value = Tensor();
  weight_.grad = Tensor();
  cached_input_ = Tensor();
  precision_ = Precision::kBf16;
}

Tensor Conv2d::do_backward(const Tensor& grad_out, GradSink* sink) {
  if (cached_input_.empty()) throw std::logic_error(name_ + ": backward before forward(train)");
  weight_.ensure_grad();
  if (has_bias_) bias_.ensure_grad();
  Tensor grad_in = tensor::conv2d_backward(cached_input_, weight_.value, grad_out, spec_,
                                           weight_.grad, has_bias_ ? &bias_.grad : nullptr);
  const double macs_per_output = static_cast<double>(weight_.value.dim(1)) *
                                 weight_.value.dim(2) * weight_.value.dim(3);
  report_backward_cost(sink, 2.0 * static_cast<double>(grad_out.numel()) * macs_per_output,
                       bytes_of(cached_input_) + bytes_of(grad_out));
  if (sink != nullptr) notify_reversed(sink, parameters());
  return grad_in;
}

std::vector<Parameter*> Conv2d::parameters() {
  if (has_bias_) return {&weight_, &bias_};
  return {&weight_};
}

std::size_t Conv2d::cache_bytes() const { return tensor_bytes(cached_input_); }

// ---- BatchNorm2d ----

BatchNorm2d::BatchNorm2d(std::string layer_name, int channels, float momentum, float eps)
    : name_(std::move(layer_name)),
      momentum_(momentum),
      eps_(eps),
      gamma_(name_ + ".gamma", Tensor::full({channels}, 1.0f)),
      beta_(name_ + ".beta", Tensor::zeros({channels})),
      running_mean_(Tensor::zeros({channels})),
      running_var_(Tensor::full({channels}, 1.0f)) {}

Tensor BatchNorm2d::forward(const Tensor& input, bool train) {
  return tensor::batchnorm2d(input, gamma_.value, beta_.value, running_mean_, running_var_, train,
                             momentum_, eps_, train ? &cache_ : nullptr);
}

Tensor BatchNorm2d::do_backward(const Tensor& grad_out, GradSink* sink) {
  if (cache_.x_hat.empty()) throw std::logic_error(name_ + ": backward before forward(train)");
  gamma_.ensure_grad();
  beta_.ensure_grad();
  Tensor grad_in = tensor::batchnorm2d_backward(grad_out, cache_, gamma_.value, gamma_.grad,
                                                beta_.grad);
  report_backward_cost(sink, 8.0 * static_cast<double>(grad_out.numel()),
                       2.0 * bytes_of(grad_out));
  if (sink != nullptr) notify_reversed(sink, parameters());
  return grad_in;
}

std::vector<Parameter*> BatchNorm2d::parameters() { return {&gamma_, &beta_}; }

std::vector<NamedTensor> BatchNorm2d::buffers() {
  return {{name_ + ".running_mean", &running_mean_}, {name_ + ".running_var", &running_var_}};
}

std::size_t BatchNorm2d::cache_bytes() const {
  return tensor_bytes(cache_.x_hat) +
         (cache_.mean.size() + cache_.inv_std.size()) * sizeof(float);
}

// ---- ReLU ----

Tensor ReLU::forward(const Tensor& input, bool train) {
  if (train) cached_input_ = input;
  return tensor::relu(input);
}

Tensor ReLU::do_backward(const Tensor& grad_out, GradSink* sink) {
  Tensor grad_in = tensor::relu_backward(cached_input_, grad_out);
  report_backward_cost(sink, static_cast<double>(grad_out.numel()), 2.0 * bytes_of(grad_out));
  return grad_in;
}

std::size_t ReLU::cache_bytes() const { return tensor_bytes(cached_input_); }

// ---- MaxPool2d ----

Tensor MaxPool2d::forward(const Tensor& input, bool train) {
  // Eval skips both the input copy and the argmax recording — backward
  // state is dead weight on the serving path.
  if (!train) return tensor::maxpool2d(input, kernel_, stride_);
  cached_input_ = input;
  return tensor::maxpool2d(input, kernel_, stride_, argmax_);
}

Tensor MaxPool2d::do_backward(const Tensor& grad_out, GradSink* sink) {
  Tensor grad_in = tensor::maxpool2d_backward(cached_input_, grad_out, kernel_, stride_, argmax_);
  report_backward_cost(sink, static_cast<double>(grad_out.numel()),
                       bytes_of(cached_input_) + bytes_of(grad_out));
  return grad_in;
}

std::size_t MaxPool2d::cache_bytes() const {
  return tensor_bytes(cached_input_) + argmax_.size() * sizeof(int);
}

// ---- BilinearResize ----

Tensor BilinearResize::forward(const Tensor& input, bool train) {
  if (train) cached_input_ = input;
  return tensor::bilinear_resize(input, out_h_, out_w_);
}

Tensor BilinearResize::do_backward(const Tensor& grad_out, GradSink* sink) {
  Tensor grad_in = tensor::bilinear_resize_backward(cached_input_, grad_out);
  report_backward_cost(sink, 8.0 * static_cast<double>(grad_out.numel()),
                       bytes_of(cached_input_) + bytes_of(grad_out));
  return grad_in;
}

std::size_t BilinearResize::cache_bytes() const { return tensor_bytes(cached_input_); }

// ---- DepthwiseConv2d ----

DepthwiseConv2d::DepthwiseConv2d(std::string layer_name, int channels, int kernel,
                                 Conv2dSpec spec, util::Rng& rng)
    : name_(std::move(layer_name)),
      spec_(spec),
      weight_(name_ + ".weight", [&] {
        // He init with fan_in = kernel^2 (one input channel per filter).
        const float stddev = std::sqrt(2.0f / static_cast<float>(kernel * kernel));
        return Tensor::randn({channels, 1, kernel, kernel}, rng, stddev);
      }()) {}

Tensor DepthwiseConv2d::forward(const Tensor& input, bool train) {
  if (precision_ == Precision::kBf16) {
    if (train) {
      throw std::logic_error(name_ + ": converted to bf16, inference-only");
    }
    Tensor wide(weight_shape_);
    util::bf16s_to_floats(bf16_weight_.data(), wide.ptr(), bf16_weight_.size());
    return tensor::depthwise_conv2d(input, wide, spec_);
  }
  if (train) cached_input_ = input;
  return tensor::depthwise_conv2d(input, weight_.value, spec_);
}

void DepthwiseConv2d::convert_to_bf16() {
  if (precision_ != Precision::kFp32) {
    throw std::logic_error(name_ + ": already converted to " +
                           precision_name(precision_));
  }
  weight_shape_ = weight_.value.shape();
  bf16_weight_.resize(weight_.value.numel());
  util::floats_to_bf16s(weight_.value.ptr(), bf16_weight_.data(),
                        bf16_weight_.size());
  weight_.value = Tensor();
  weight_.grad = Tensor();
  cached_input_ = Tensor();
  precision_ = Precision::kBf16;
}

Tensor DepthwiseConv2d::do_backward(const Tensor& grad_out, GradSink* sink) {
  if (cached_input_.empty()) throw std::logic_error(name_ + ": backward before forward(train)");
  weight_.ensure_grad();
  Tensor grad_in = tensor::depthwise_conv2d_backward(cached_input_, weight_.value, grad_out,
                                                     spec_, weight_.grad);
  const double macs_per_output = static_cast<double>(weight_.value.dim(2)) * weight_.value.dim(3);
  report_backward_cost(sink, 2.0 * static_cast<double>(grad_out.numel()) * macs_per_output,
                       bytes_of(cached_input_) + bytes_of(grad_out));
  if (sink != nullptr) notify_reversed(sink, parameters());
  return grad_in;
}

std::vector<Parameter*> DepthwiseConv2d::parameters() { return {&weight_}; }

std::size_t DepthwiseConv2d::cache_bytes() const { return tensor_bytes(cached_input_); }

// ---- SeparableConvBnRelu ----

SeparableConvBnRelu::SeparableConvBnRelu(std::string layer_name, int in_channels,
                                         int out_channels, Conv2dSpec depthwise_spec,
                                         util::Rng& rng)
    : name_(std::move(layer_name)),
      depthwise_(name_ + ".dw", in_channels, 3, depthwise_spec, rng),
      bn_dw_(name_ + ".dw_bn", in_channels),
      pointwise_(name_ + ".pw", in_channels, out_channels, 1, Conv2dSpec{1, 0, 1},
                 /*bias=*/false, rng),
      bn_pw_(name_ + ".pw_bn", out_channels),
      relu_(name_ + ".relu") {}

Tensor SeparableConvBnRelu::forward(const Tensor& input, bool train) {
  Tensor x = depthwise_.forward(input, train);
  x = bn_dw_.forward(x, train);
  x = pointwise_.forward(x, train);
  x = bn_pw_.forward(x, train);
  return relu_.forward(x, train);
}

Tensor SeparableConvBnRelu::do_backward(const Tensor& grad_out, GradSink* sink) {
  Tensor g = relu_.backward(grad_out, sink);
  g = bn_pw_.backward(g, sink);
  g = pointwise_.backward(g, sink);
  g = bn_dw_.backward(g, sink);
  return depthwise_.backward(g, sink);
}

std::vector<Parameter*> SeparableConvBnRelu::parameters() {
  std::vector<Parameter*> params = depthwise_.parameters();
  for (Parameter* p : bn_dw_.parameters()) params.push_back(p);
  for (Parameter* p : pointwise_.parameters()) params.push_back(p);
  for (Parameter* p : bn_pw_.parameters()) params.push_back(p);
  return params;
}

std::vector<NamedTensor> SeparableConvBnRelu::buffers() {
  std::vector<NamedTensor> bufs = bn_dw_.buffers();
  for (NamedTensor b : bn_pw_.buffers()) bufs.push_back(b);
  return bufs;
}

std::size_t SeparableConvBnRelu::cache_bytes() const {
  return depthwise_.cache_bytes() + bn_dw_.cache_bytes() + pointwise_.cache_bytes() +
         bn_pw_.cache_bytes() + relu_.cache_bytes();
}

// ---- ConvBnRelu ----

ConvBnRelu::ConvBnRelu(std::string layer_name, int in_channels, int out_channels, int kernel,
                       Conv2dSpec spec, util::Rng& rng)
    : name_(std::move(layer_name)),
      conv_(name_ + ".conv", in_channels, out_channels, kernel, spec, /*bias=*/false, rng),
      bn_(name_ + ".bn", out_channels),
      relu_(name_ + ".relu") {}

Tensor ConvBnRelu::forward(const Tensor& input, bool train) {
  return relu_.forward(bn_.forward(conv_.forward(input, train), train), train);
}

Tensor ConvBnRelu::do_backward(const Tensor& grad_out, GradSink* sink) {
  return conv_.backward(bn_.backward(relu_.backward(grad_out, sink), sink), sink);
}

std::vector<Parameter*> ConvBnRelu::parameters() {
  std::vector<Parameter*> params = conv_.parameters();
  for (Parameter* p : bn_.parameters()) params.push_back(p);
  return params;
}

std::vector<NamedTensor> ConvBnRelu::buffers() { return bn_.buffers(); }

std::size_t ConvBnRelu::cache_bytes() const {
  return conv_.cache_bytes() + bn_.cache_bytes() + relu_.cache_bytes();
}

// ---- Sequential ----

Tensor Sequential::forward(const Tensor& input, bool train) {
  Tensor x = input;
  for (auto& layer : layers_) x = layer->forward(x, train);
  return x;
}

Tensor Sequential::do_backward(const Tensor& grad_out, GradSink* sink) {
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) g = (*it)->backward(g, sink);
  return g;
}

std::vector<Parameter*> Sequential::parameters() {
  std::vector<Parameter*> params;
  for (auto& layer : layers_) {
    for (Parameter* p : layer->parameters()) params.push_back(p);
  }
  return params;
}

std::vector<NamedTensor> Sequential::buffers() {
  std::vector<NamedTensor> bufs;
  for (auto& layer : layers_) {
    for (NamedTensor b : layer->buffers()) bufs.push_back(b);
  }
  return bufs;
}

std::size_t Sequential::cache_bytes() const {
  std::size_t total = 0;
  for (const auto& layer : layers_) total += layer->cache_bytes();
  return total;
}

}  // namespace dlscale::nn
