#include "dlscale/gpu/device.hpp"

#include <algorithm>
#include <stdexcept>

namespace dlscale::gpu {

DeviceSpec DeviceSpec::v100_summit() {
  DeviceSpec spec;
  spec.name = "V100-SXM3-16GB (Summit AC922)";
  spec.peak_fp32_flops = 15.7e12;
  spec.mem_bandwidth_Bps = 900e9;
  spec.kernel_launch_s = 4e-6;
  // CPU<->GPU on AC922 runs over NVLink2 (3 bricks, 50 GB/s/dir nominal);
  // sustained copy bandwidth lands well above PCIe3 systems.
  spec.h2d_bandwidth_Bps = 42e9;
  spec.d2h_bandwidth_Bps = 42e9;
  spec.d2d_bandwidth_Bps = 720e9;
  spec.copy_latency_s = 8e-6;
  spec.memory_bytes = std::size_t{16} << 30;
  return spec;
}

ComputeModel::ComputeModel(DeviceSpec spec, double flop_efficiency)
    : spec_(std::move(spec)), flop_efficiency_(flop_efficiency) {
  if (flop_efficiency <= 0.0 || flop_efficiency > 1.0) {
    throw std::invalid_argument("ComputeModel: flop_efficiency must be in (0, 1]");
  }
}

double ComputeModel::kernel_time(double flops, double bytes_touched) const noexcept {
  const double compute_s = flops / (flop_efficiency_ * spec_.peak_fp32_flops);
  const double memory_s = bytes_touched / spec_.mem_bandwidth_Bps;
  return spec_.kernel_launch_s + std::max(compute_s, memory_s);
}

double ComputeModel::copy_time(std::size_t bytes, CopyKind kind) const noexcept {
  double bandwidth = spec_.d2d_bandwidth_Bps;
  switch (kind) {
    case CopyKind::kHostToDevice: bandwidth = spec_.h2d_bandwidth_Bps; break;
    case CopyKind::kDeviceToHost: bandwidth = spec_.d2h_bandwidth_Bps; break;
    case CopyKind::kDeviceToDevice: bandwidth = spec_.d2d_bandwidth_Bps; break;
  }
  return spec_.copy_latency_s + static_cast<double>(bytes) / bandwidth;
}

}  // namespace dlscale::gpu
