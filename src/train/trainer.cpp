#include "dlscale/train/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dlscale/tensor/ops.hpp"
#include "dlscale/tensor/planner.hpp"
#include "dlscale/train/checkpoint.hpp"
#include "dlscale/util/logging.hpp"

namespace dlscale::train {

namespace {

constexpr int kIgnoreLabel = 255;

models::MiniDeepLabV3Plus make_model(const TrainConfig& config, int rank) {
  // With broadcast enabled, replicas may start from different seeds;
  // rank 0's weights are distributed by broadcast_parameters below.
  util::Rng init_rng(config.broadcast_initial_state
                         ? config.seed + static_cast<std::uint64_t>(rank)
                         : config.seed);
  return models::MiniDeepLabV3Plus(config.model, init_rng);
}

}  // namespace

std::pair<double, double> evaluate(models::MiniDeepLabV3Plus& model,
                                   const data::SyntheticShapes& dataset,
                                   std::uint64_t first_index, std::uint64_t count,
                                   int batch_size) {
  data::ConfusionMatrix confusion(dataset.config().num_classes);
  std::vector<std::uint64_t> indices;
  std::vector<int> pred;  // reused across batches to avoid per-batch allocation
  util::Arena arena;      // eval activations, reset per batch
  for (std::uint64_t i = 0; i < count; ++i) {
    indices.push_back(first_index + i);
    if (static_cast<int>(indices.size()) == batch_size || i + 1 == count) {
      const data::Sample batch = dataset.make_batch(indices);
      arena.reset();
      util::ArenaScope scope(arena);
      const tensor::Tensor logits = model.forward(batch.image, /*train=*/false);
      tensor::argmax_channels(logits, pred);
      confusion.update(pred, batch.labels, kIgnoreLabel);
      indices.clear();
    }
  }
  return {confusion.miou(), confusion.pixel_accuracy()};
}

// ---- HorovodHook ----

HorovodHook::HorovodHook(mpi::Communicator& comm, const TrainConfig& config)
    : comm_(&comm),
      runtime_(std::in_place, comm, config.knobs),
      stream_(gpu::ComputeModel(gpu::DeviceSpec::v100_summit(), config.virtual_flop_efficiency),
              [this](nn::Parameter& p, double ready_at) { on_gradient(p, ready_at); }) {}

int HorovodHook::rank() const { return comm_->rank(); }

int HorovodHook::size() const { return comm_->size(); }

void HorovodHook::broadcast_parameters(const std::vector<nn::Parameter*>& params) {
  for (nn::Parameter* p : params) runtime_->broadcast(p->value.data(), 0);
}

nn::GradSink* HorovodHook::on_step_begin() {
  // Each step is one FaultPlan tick: an injected step-kill for this rank
  // fires here, at the same well-defined point on every rank.
  comm_->fault_tick();
  stream_.begin_step(comm_->now());
  return &stream_;
}

void HorovodHook::on_gradient(nn::Parameter& param, double ready_at) {
  runtime_->submit({param.name, param.grad.data(), param.grad.data().size_bytes(), ready_at});
}

void HorovodHook::on_step_end() { runtime_->synchronize(); }

void HorovodHook::allreduce_sum(std::span<double> values) {
  comm_->allreduce(values, mpi::ReduceOp::kSum, mpi::MemSpace::kHost);
}

void HorovodHook::allreduce_sum(std::span<std::int64_t> values) {
  comm_->allreduce(values, mpi::ReduceOp::kSum, mpi::MemSpace::kHost);
}

hvd::RuntimeStats HorovodHook::stats() const { return runtime_->stats(); }

void HorovodHook::rebind(mpi::Communicator& comm) {
  // Copy the knobs out BEFORE emplace destroys the old runtime (emplace's
  // argument would otherwise read from a dead object). The fresh runtime
  // starts with an empty GradientCompressor: error-feedback residuals are
  // per-rank state scaled to the old world and do not carry across.
  const hvd::Knobs carried = runtime_->knobs();
  comm_ = &comm;
  runtime_.emplace(comm, carried);
}

void HorovodHook::on_world_change(const WorldInfo&) {
  runtime_->compressor().reset_residuals();
}

// ---- Trainer ----

Trainer::Trainer(const TrainConfig& config, CommHook& hook)
    : config_(config),
      hook_(hook),
      model_(make_model(config, hook.rank())),
      optimizer_(model_.parameters(), config.optimizer),
      dataset_(config.dataset),
      sampler_(config.train_samples, hook.size(), hook.rank(), config.seed ^ 0x5DEECE66Dull),
      schedule_(config.schedule),
      steps_per_epoch_(static_cast<long>(sampler_.shard_size() /
                                         static_cast<std::uint64_t>(config.batch_per_rank))),
      progress_(tensor::Tensor::zeros({2})) {
  if (steps_per_epoch_ == 0) {
    throw std::invalid_argument("Trainer: per-rank shard smaller than batch");
  }
  if (schedule_.max_iters <= 0) schedule_.max_iters = steps_per_epoch_ * config.epochs;
  if (config_.broadcast_initial_state) {
    hook_.broadcast_parameters(model_.parameters());
  }
  report_.parameter_count = model_.parameter_count();
}

float Trainer::step_body(const data::Sample& batch) {
  const tensor::Tensor logits = model_.forward(batch.image, /*train=*/true);
  tensor::Tensor grad;
  const float loss = tensor::softmax_cross_entropy(logits, batch.labels, kIgnoreLabel, grad);
  // Backward streams each finalized gradient into the hook's sink the
  // moment it is ready; on_step_end drains the negotiation/fusion cycles.
  model_.backward(grad, hook_.on_step_begin());
  hook_.on_step_end();
  return loss;
}

float Trainer::train_step(const data::Sample& batch, double lr) {
  // zero_grad outside the arena scope: parameter gradients (and the
  // optimizer's velocity) are heap-persistent across steps, so the traced
  // allocation sequence matches every replayed step exactly.
  optimizer_.zero_grad();
  float loss;
  if (config_.memory == MemoryMode::kOwning) {
    loss = step_body(batch);
  } else {
    const bool retrace =
        config_.memory == MemoryMode::kPlanned &&
        (!step_arena_.planned() || !(batch.image.shape() == traced_shape_));
    if (retrace) {
      // Trace this step's Tensor liveness, then pack and install the
      // plan: every later step with this input shape replays preassigned
      // offsets in one block — no heap, no bump-chain growth.
      if (step_arena_.planned()) step_arena_.clear_plan();
      step_arena_.begin_trace();
      {
        util::ArenaScope scope(step_arena_);
        loss = step_body(batch);
      }
      step_arena_.set_plan(tensor::MemoryPlanner::pack(step_arena_.take_trace()));
      traced_shape_ = batch.image.shape();
    } else {
      step_arena_.reset();
      util::ArenaScope scope(step_arena_);
      loss = step_body(batch);
    }
  }
  optimizer_.step(lr);
  ++global_step_;
  return loss;
}

EpochReport Trainer::train_epoch() {
  const int epoch = next_epoch_++;
  const hvd::RuntimeStats epoch_start_stats = hook_.stats();
  const auto indices = sampler_.epoch_indices(static_cast<std::uint64_t>(epoch));
  double loss_sum = 0.0;
  for (long step = 0; step < steps_per_epoch_; ++step) {
    const std::vector<std::uint64_t> batch_ids(
        indices.begin() + static_cast<std::ptrdiff_t>(step * config_.batch_per_rank),
        indices.begin() + static_cast<std::ptrdiff_t>((step + 1) * config_.batch_per_rank));
    data::Sample batch = dataset_.make_batch(batch_ids);
    if (config_.augment) {
      util::Rng aug_rng = util::Rng(config_.seed ^ 0xA46A371Full)
                              .child(static_cast<std::uint64_t>(hook_.rank()))
                              .child(static_cast<std::uint64_t>(global_step_));
      data::augment(batch, aug_rng);
    }
    loss_sum += train_step(batch, schedule_.lr_at(global_step_));
  }

  // Reduce train loss across ranks.
  std::vector<double> loss_acc{loss_sum, static_cast<double>(steps_per_epoch_)};
  hook_.allreduce_sum(std::span<double>(loss_acc));

  // Distributed evaluation: each rank scores a strided slice of the
  // held-out set, then confusion counts are summed.
  data::ConfusionMatrix confusion(config_.dataset.num_classes);
  {
    std::vector<std::uint64_t> mine;
    for (std::uint64_t i = static_cast<std::uint64_t>(hook_.rank()); i < config_.eval_samples;
         i += static_cast<std::uint64_t>(hook_.size())) {
      mine.push_back(config_.train_samples + i);
    }
    std::vector<std::uint64_t> batch_ids;
    std::vector<int> pred;  // reused across batches to avoid per-batch allocation
    for (std::size_t i = 0; i < mine.size(); ++i) {
      batch_ids.push_back(mine[i]);
      if (static_cast<int>(batch_ids.size()) == config_.batch_per_rank || i + 1 == mine.size()) {
        const data::Sample batch = dataset_.make_batch(batch_ids);
        // Eval forwards go through the dedicated bump arena (never the
        // planned step arena — eval batch shapes vary with the shard).
        eval_arena_.reset();
        util::ArenaScope scope(eval_arena_);
        const tensor::Tensor logits = model_.forward(batch.image, /*train=*/false);
        tensor::argmax_channels(logits, pred);
        confusion.update(pred, batch.labels, kIgnoreLabel);
        batch_ids.clear();
      }
    }
    std::vector<std::int64_t> counts(confusion.counts().begin(), confusion.counts().end());
    hook_.allreduce_sum(std::span<std::int64_t>(counts));
    std::copy(counts.begin(), counts.end(), confusion.counts().begin());
  }

  EpochReport epoch_report;
  epoch_report.epoch = epoch;
  epoch_report.train_loss = loss_acc[0] / loss_acc[1];
  epoch_report.eval_miou = confusion.miou();
  epoch_report.eval_pixel_accuracy = confusion.pixel_accuracy();
  epoch_report.comm_stats = hook_.stats() - epoch_start_stats;
  report_.epochs.push_back(epoch_report);
  DLSCALE_DEBUG("epoch " << epoch << " loss " << epoch_report.train_loss << " mIOU "
                         << epoch_report.eval_miou);
  return epoch_report;
}

TrainReport Trainer::run() {
  while (next_epoch_ < config_.epochs) train_epoch();
  report_.steps = global_step_;
  report_.hvd_stats = hook_.stats();
  return report_;
}

std::vector<nn::NamedTensor> Trainer::state_tensors() {
  std::vector<nn::NamedTensor> tensors;
  for (nn::Parameter* p : model_.parameters()) tensors.push_back({p->name, &p->value});
  for (const nn::NamedTensor& b : model_.buffers()) tensors.push_back(b);
  const std::vector<nn::Parameter*>& params = optimizer_.parameters();
  std::vector<tensor::Tensor>& velocity = optimizer_.velocity();
  for (std::size_t i = 0; i < velocity.size(); ++i) {
    tensors.push_back({"opt.velocity." + params[i]->name, &velocity[i]});
  }
  tensors.push_back({"trainer.progress", &progress_});
  return tensors;
}

void Trainer::save_state(const std::string& path) {
  progress_.data()[0] = static_cast<float>(global_step_);
  progress_.data()[1] = static_cast<float>(next_epoch_);
  save_tensors(state_tensors(), path);
}

void Trainer::load_state(const std::string& path) {
  load_tensors(state_tensors(), path);
  global_step_ = std::lround(progress_.data()[0]);
  next_epoch_ = static_cast<int>(std::lround(progress_.data()[1]));
}

// ---- Entry points ----

TrainReport train_distributed(mpi::Communicator& comm, const TrainConfig& config) {
  HorovodHook hook(comm, config);
  if (config.autotune.enabled) {
    hvd::Autotuner tuner(hook.runtime(), config.autotune);
    AutotuneHook tuned(hook, tuner);
    Trainer trainer(config, tuned);
    return trainer.run();
  }
  Trainer trainer(config, hook);
  return trainer.run();
}

TrainReport train_serial(const TrainConfig& config, int equivalent_world) {
  TrainConfig serial = config;
  serial.batch_per_rank = config.batch_per_rank * equivalent_world;
  NoComm hook;
  Trainer trainer(serial, hook);
  return trainer.run();
}

}  // namespace dlscale::train
