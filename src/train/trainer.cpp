#include "dlscale/train/trainer.hpp"

#include <cmath>
#include <stdexcept>

#include "dlscale/tensor/ops.hpp"
#include "dlscale/util/logging.hpp"

namespace dlscale::train {

namespace {

constexpr int kIgnoreLabel = 255;

/// One optimisation step on a batch; returns the loss. `average_grads`
/// runs between backward and the optimizer step (distributed ranks hook
/// the Horovod synchronize here; serial training passes a no-op).
float train_step(models::MiniDeepLabV3Plus& model, nn::SgdMomentum& optimizer,
                 const data::Sample& batch, double lr,
                 const std::function<void(std::vector<nn::Parameter*>&)>& average_grads) {
  optimizer.zero_grad();
  const tensor::Tensor logits = model.forward(batch.image, /*train=*/true);
  tensor::Tensor grad;
  const float loss = tensor::softmax_cross_entropy(logits, batch.labels, kIgnoreLabel, grad);
  model.backward(grad);
  auto params = model.parameters();
  average_grads(params);
  optimizer.step(lr);
  return loss;
}

}  // namespace

std::pair<double, double> evaluate(models::MiniDeepLabV3Plus& model,
                                   const data::SyntheticShapes& dataset,
                                   std::uint64_t first_index, std::uint64_t count,
                                   int batch_size) {
  data::ConfusionMatrix confusion(dataset.config().num_classes);
  std::vector<std::uint64_t> indices;
  for (std::uint64_t i = 0; i < count; ++i) {
    indices.push_back(first_index + i);
    if (static_cast<int>(indices.size()) == batch_size || i + 1 == count) {
      const data::Sample batch = dataset.make_batch(indices);
      const tensor::Tensor logits = model.forward(batch.image, /*train=*/false);
      confusion.update(tensor::argmax_channels(logits), batch.labels, kIgnoreLabel);
      indices.clear();
    }
  }
  return {confusion.miou(), confusion.pixel_accuracy()};
}

TrainReport train_distributed(mpi::Communicator& comm, const TrainConfig& config) {
  // With broadcast enabled, replicas may start from different seeds;
  // rank 0's weights are distributed below (hvd.broadcast_parameters).
  util::Rng init_rng(config.broadcast_initial_state
                         ? config.seed + static_cast<std::uint64_t>(comm.rank())
                         : config.seed);
  models::MiniDeepLabV3Plus model(config.model, init_rng);
  nn::SgdMomentum optimizer(model.parameters(), config.optimizer);
  const data::SyntheticShapes dataset(config.dataset);
  const data::DistributedSampler sampler(config.train_samples, comm.size(), comm.rank(),
                                         config.seed ^ 0x5DEECE66Dull);
  hvd::HorovodRuntime runtime(comm, config.knobs);
  if (config.broadcast_initial_state) {
    for (nn::Parameter* p : model.parameters()) runtime.broadcast(p->value.data(), 0);
  }

  const auto steps_per_epoch =
      static_cast<long>(sampler.shard_size() / static_cast<std::uint64_t>(config.batch_per_rank));
  if (steps_per_epoch == 0) {
    throw std::invalid_argument("train_distributed: shard smaller than batch");
  }
  nn::PolySchedule schedule = config.schedule;
  if (schedule.max_iters <= 0) schedule.max_iters = steps_per_epoch * config.epochs;

  TrainReport report;
  report.parameter_count = model.parameter_count();

  long global_step = 0;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    const auto indices = sampler.epoch_indices(static_cast<std::uint64_t>(epoch));
    double loss_sum = 0.0;
    for (long step = 0; step < steps_per_epoch; ++step) {
      const std::vector<std::uint64_t> batch_ids(
          indices.begin() + static_cast<std::ptrdiff_t>(step * config.batch_per_rank),
          indices.begin() + static_cast<std::ptrdiff_t>((step + 1) * config.batch_per_rank));
      data::Sample batch = dataset.make_batch(batch_ids);
      if (config.augment) {
        util::Rng aug_rng = util::Rng(config.seed ^ 0xA46A371Full)
                                .child(static_cast<std::uint64_t>(comm.rank()))
                                .child(static_cast<std::uint64_t>(global_step));
        data::augment(batch, aug_rng);
      }
      const double lr = schedule.lr_at(global_step);
      loss_sum += train_step(model, optimizer, batch, lr, [&](std::vector<nn::Parameter*>& params) {
        for (nn::Parameter* p : params) {
          runtime.submit({p->name, p->grad.data(), 0, comm.now()});
        }
        runtime.synchronize();
      });
      ++global_step;
    }

    // Reduce train loss across ranks.
    std::vector<double> loss_acc{loss_sum, static_cast<double>(steps_per_epoch)};
    comm.allreduce(std::span<double>(loss_acc), mpi::ReduceOp::kSum, mpi::MemSpace::kHost);

    // Distributed evaluation: each rank scores a strided slice of the
    // held-out set, then confusion counts are summed.
    data::ConfusionMatrix confusion(config.dataset.num_classes);
    {
      std::vector<std::uint64_t> mine;
      for (std::uint64_t i = comm.rank(); i < config.eval_samples;
           i += static_cast<std::uint64_t>(comm.size())) {
        mine.push_back(config.train_samples + i);
      }
      std::vector<std::uint64_t> batch_ids;
      for (std::size_t i = 0; i < mine.size(); ++i) {
        batch_ids.push_back(mine[i]);
        if (static_cast<int>(batch_ids.size()) == config.batch_per_rank || i + 1 == mine.size()) {
          const data::Sample batch = dataset.make_batch(batch_ids);
          const tensor::Tensor logits = model.forward(batch.image, /*train=*/false);
          confusion.update(tensor::argmax_channels(logits), batch.labels, kIgnoreLabel);
          batch_ids.clear();
        }
      }
      std::vector<std::int64_t> counts(confusion.counts().begin(), confusion.counts().end());
      comm.allreduce(std::span<std::int64_t>(counts), mpi::ReduceOp::kSum, mpi::MemSpace::kHost);
      std::copy(counts.begin(), counts.end(), confusion.counts().begin());
    }

    EpochReport epoch_report;
    epoch_report.epoch = epoch;
    epoch_report.train_loss = loss_acc[0] / loss_acc[1];
    epoch_report.eval_miou = confusion.miou();
    epoch_report.eval_pixel_accuracy = confusion.pixel_accuracy();
    report.epochs.push_back(epoch_report);
    DLSCALE_DEBUG("epoch " << epoch << " loss " << epoch_report.train_loss << " mIOU "
                           << epoch_report.eval_miou);
  }
  report.steps = global_step;
  report.hvd_stats = runtime.stats();
  return report;
}

TrainReport train_serial(const TrainConfig& config, int equivalent_world) {
  util::Rng init_rng(config.seed);
  models::MiniDeepLabV3Plus model(config.model, init_rng);
  nn::SgdMomentum optimizer(model.parameters(), config.optimizer);
  const data::SyntheticShapes dataset(config.dataset);
  const data::DistributedSampler sampler(config.train_samples, 1, 0,
                                         config.seed ^ 0x5DEECE66Dull);

  const int global_batch = config.batch_per_rank * equivalent_world;
  const auto steps_per_epoch =
      static_cast<long>(config.train_samples / static_cast<std::uint64_t>(global_batch));
  if (steps_per_epoch == 0) {
    throw std::invalid_argument("train_serial: dataset smaller than global batch");
  }
  nn::PolySchedule schedule = config.schedule;
  if (schedule.max_iters <= 0) schedule.max_iters = steps_per_epoch * config.epochs;

  TrainReport report;
  report.parameter_count = model.parameter_count();
  auto no_comm = [](std::vector<nn::Parameter*>&) {};

  long global_step = 0;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    const auto indices = sampler.epoch_indices(static_cast<std::uint64_t>(epoch));
    double loss_sum = 0.0;
    for (long step = 0; step < steps_per_epoch; ++step) {
      const std::vector<std::uint64_t> batch_ids(
          indices.begin() + static_cast<std::ptrdiff_t>(step * global_batch),
          indices.begin() + static_cast<std::ptrdiff_t>((step + 1) * global_batch));
      data::Sample batch = dataset.make_batch(batch_ids);
      if (config.augment) {
        util::Rng aug_rng = util::Rng(config.seed ^ 0xA46A371Full)
                                .child(0)
                                .child(static_cast<std::uint64_t>(global_step));
        data::augment(batch, aug_rng);
      }
      loss_sum += train_step(model, optimizer, batch, schedule.lr_at(global_step), no_comm);
      ++global_step;
    }
    const auto [miou, accuracy] =
        evaluate(model, dataset, config.train_samples, config.eval_samples, global_batch);
    report.epochs.push_back(
        {epoch, loss_sum / static_cast<double>(steps_per_epoch), miou, accuracy});
  }
  report.steps = global_step;
  return report;
}

}  // namespace dlscale::train
