#include "dlscale/train/checkpoint.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace dlscale::train {

namespace {

constexpr std::uint32_t kMagic = 0x444C5343;  // "DLSC"

template <typename T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("checkpoint: truncated file");
  return value;
}

std::vector<nn::NamedTensor> as_named(const std::vector<nn::Parameter*>& params) {
  std::vector<nn::NamedTensor> tensors;
  tensors.reserve(params.size());
  for (nn::Parameter* p : params) tensors.push_back({p->name, &p->value});
  return tensors;
}

}  // namespace

void save_tensors(const std::vector<nn::NamedTensor>& tensors, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("checkpoint: cannot open '" + path + "' for writing");
  write_pod(out, kMagic);
  write_pod(out, static_cast<std::uint32_t>(tensors.size()));
  for (const nn::NamedTensor& t : tensors) {
    write_pod(out, static_cast<std::uint32_t>(t.name.size()));
    out.write(t.name.data(), static_cast<std::streamsize>(t.name.size()));
    write_pod(out, static_cast<std::uint32_t>(t.tensor->shape().size()));
    for (int d : t.tensor->shape()) write_pod(out, static_cast<std::int32_t>(d));
    out.write(reinterpret_cast<const char*>(t.tensor->ptr()),
              static_cast<std::streamsize>(t.tensor->numel() * sizeof(float)));
  }
  if (!out) throw std::runtime_error("checkpoint: write failed for '" + path + "'");
}

void load_tensors(const std::vector<nn::NamedTensor>& tensors, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("checkpoint: cannot open '" + path + "'");
  if (read_pod<std::uint32_t>(in) != kMagic) {
    throw std::runtime_error("checkpoint: bad magic in '" + path + "'");
  }
  const auto count = read_pod<std::uint32_t>(in);
  if (count != tensors.size()) {
    throw std::runtime_error("checkpoint: parameter count mismatch (file has " +
                             std::to_string(count) + ", model has " +
                             std::to_string(tensors.size()) + ")");
  }
  for (const nn::NamedTensor& t : tensors) {
    const auto name_len = read_pod<std::uint32_t>(in);
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    if (name != t.name) {
      throw std::runtime_error("checkpoint: expected parameter '" + t.name + "', found '" +
                               name + "'");
    }
    const auto ndim = read_pod<std::uint32_t>(in);
    std::vector<int> shape(ndim);
    for (auto& d : shape) d = read_pod<std::int32_t>(in);
    if (shape != t.tensor->shape()) {
      throw std::runtime_error("checkpoint: shape mismatch for '" + name + "'");
    }
    in.read(reinterpret_cast<char*>(t.tensor->ptr()),
            static_cast<std::streamsize>(t.tensor->numel() * sizeof(float)));
    if (!in) throw std::runtime_error("checkpoint: truncated data for '" + name + "'");
  }
}

void save_checkpoint(const std::vector<nn::Parameter*>& params, const std::string& path) {
  save_tensors(as_named(params), path);
}

void load_checkpoint(const std::vector<nn::Parameter*>& params, const std::string& path) {
  load_tensors(as_named(params), path);
}

}  // namespace dlscale::train
