#include "dlscale/train/checkpoint.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace dlscale::train {

namespace {

constexpr std::uint32_t kMagic = 0x444C5343;  // "DLSC"

template <typename T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("checkpoint: truncated file");
  return value;
}

}  // namespace

void save_checkpoint(const std::vector<nn::Parameter*>& params, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("checkpoint: cannot open '" + path + "' for writing");
  write_pod(out, kMagic);
  write_pod(out, static_cast<std::uint32_t>(params.size()));
  for (const nn::Parameter* p : params) {
    write_pod(out, static_cast<std::uint32_t>(p->name.size()));
    out.write(p->name.data(), static_cast<std::streamsize>(p->name.size()));
    write_pod(out, static_cast<std::uint32_t>(p->value.shape().size()));
    for (int d : p->value.shape()) write_pod(out, static_cast<std::int32_t>(d));
    out.write(reinterpret_cast<const char*>(p->value.ptr()),
              static_cast<std::streamsize>(p->value.numel() * sizeof(float)));
  }
  if (!out) throw std::runtime_error("checkpoint: write failed for '" + path + "'");
}

void load_checkpoint(const std::vector<nn::Parameter*>& params, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("checkpoint: cannot open '" + path + "'");
  if (read_pod<std::uint32_t>(in) != kMagic) {
    throw std::runtime_error("checkpoint: bad magic in '" + path + "'");
  }
  const auto count = read_pod<std::uint32_t>(in);
  if (count != params.size()) {
    throw std::runtime_error("checkpoint: parameter count mismatch (file has " +
                             std::to_string(count) + ", model has " +
                             std::to_string(params.size()) + ")");
  }
  for (nn::Parameter* p : params) {
    const auto name_len = read_pod<std::uint32_t>(in);
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    if (name != p->name) {
      throw std::runtime_error("checkpoint: expected parameter '" + p->name + "', found '" +
                               name + "'");
    }
    const auto ndim = read_pod<std::uint32_t>(in);
    std::vector<int> shape(ndim);
    for (auto& d : shape) d = read_pod<std::int32_t>(in);
    if (shape != p->value.shape()) {
      throw std::runtime_error("checkpoint: shape mismatch for '" + name + "'");
    }
    in.read(reinterpret_cast<char*>(p->value.ptr()),
            static_cast<std::streamsize>(p->value.numel() * sizeof(float)));
    if (!in) throw std::runtime_error("checkpoint: truncated data for '" + name + "'");
  }
}

}  // namespace dlscale::train
