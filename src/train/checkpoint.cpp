#include "dlscale/train/checkpoint.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace dlscale::train {

namespace {

constexpr std::uint32_t kMagic = 0x444C5343;  // "DLSC"

template <typename T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& in, const std::string& what) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("checkpoint: truncated file while reading " + what);
  return value;
}

// Anything past this is certainly a corrupt length field, not a real name.
constexpr std::uint32_t kMaxNameLen = 4096;
constexpr std::uint32_t kMaxNdim = 8;

std::string shape_str(const std::vector<int>& shape) {
  std::string s = "(";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i != 0) s += ",";
    s += std::to_string(shape[i]);
  }
  return s + ")";
}

std::vector<nn::NamedTensor> as_named(const std::vector<nn::Parameter*>& params) {
  std::vector<nn::NamedTensor> tensors;
  tensors.reserve(params.size());
  for (nn::Parameter* p : params) tensors.push_back({p->name, &p->value});
  return tensors;
}

std::vector<nn::NamedTensor> model_state(const std::vector<nn::Parameter*>& params,
                                         const std::vector<nn::NamedTensor>& buffers) {
  std::vector<nn::NamedTensor> tensors = as_named(params);
  tensors.insert(tensors.end(), buffers.begin(), buffers.end());
  return tensors;
}

}  // namespace

void save_tensors(const std::vector<nn::NamedTensor>& tensors, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("checkpoint: cannot open '" + path + "' for writing");
  write_pod(out, kMagic);
  write_pod(out, static_cast<std::uint32_t>(tensors.size()));
  for (const nn::NamedTensor& t : tensors) {
    write_pod(out, static_cast<std::uint32_t>(t.name.size()));
    out.write(t.name.data(), static_cast<std::streamsize>(t.name.size()));
    write_pod(out, static_cast<std::uint32_t>(t.tensor->shape().size()));
    for (int d : t.tensor->shape()) write_pod(out, static_cast<std::int32_t>(d));
    out.write(reinterpret_cast<const char*>(t.tensor->ptr()),
              static_cast<std::streamsize>(t.tensor->numel() * sizeof(float)));
  }
  if (!out) throw std::runtime_error("checkpoint: write failed for '" + path + "'");
}

void load_tensors(const std::vector<nn::NamedTensor>& tensors, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("checkpoint: cannot open '" + path + "'");
  if (read_pod<std::uint32_t>(in, "magic") != kMagic) {
    throw std::runtime_error("checkpoint: bad magic in '" + path + "'");
  }
  const auto count = read_pod<std::uint32_t>(in, "tensor count");
  if (count != tensors.size()) {
    throw std::runtime_error("checkpoint: parameter count mismatch (file has " +
                             std::to_string(count) + ", model has " +
                             std::to_string(tensors.size()) + ")");
  }
  // Every error below names the offending tensor so a bad checkpoint is
  // diagnosable without a hex dump — the serving hot-reload path surfaces
  // these messages verbatim while keeping the old replicas live.
  for (const nn::NamedTensor& t : tensors) {
    const auto name_len = read_pod<std::uint32_t>(in, "name length of '" + t.name + "'");
    if (name_len == 0 || name_len > kMaxNameLen) {
      throw std::runtime_error("checkpoint: corrupt name length (" + std::to_string(name_len) +
                               ") where parameter '" + t.name + "' was expected");
    }
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    if (!in) {
      throw std::runtime_error("checkpoint: truncated file while reading name of '" + t.name +
                               "'");
    }
    if (name != t.name) {
      throw std::runtime_error("checkpoint: expected parameter '" + t.name + "', found '" +
                               name + "'");
    }
    const auto ndim = read_pod<std::uint32_t>(in, "rank of '" + name + "'");
    if (ndim > kMaxNdim) {
      throw std::runtime_error("checkpoint: corrupt rank (" + std::to_string(ndim) + ") for '" +
                               name + "'");
    }
    std::vector<int> shape(ndim);
    for (auto& d : shape) d = read_pod<std::int32_t>(in, "shape of '" + name + "'");
    if (shape != t.tensor->shape()) {
      throw std::runtime_error("checkpoint: shape mismatch for '" + name + "': file has " +
                               shape_str(shape) + ", model has " + shape_str(t.tensor->shape()));
    }
    in.read(reinterpret_cast<char*>(t.tensor->ptr()),
            static_cast<std::streamsize>(t.tensor->numel() * sizeof(float)));
    if (!in) throw std::runtime_error("checkpoint: truncated data for '" + name + "'");
  }
  // A well-formed file ends exactly after the last tensor; leftover bytes
  // mean the file and the model disagree about what was saved.
  in.peek();
  if (!in.eof()) {
    throw std::runtime_error("checkpoint: trailing bytes after last tensor in '" + path + "'");
  }
}

void save_checkpoint(const std::vector<nn::Parameter*>& params, const std::string& path) {
  save_tensors(as_named(params), path);
}

void load_checkpoint(const std::vector<nn::Parameter*>& params, const std::string& path) {
  load_tensors(as_named(params), path);
}

void save_model(const std::vector<nn::Parameter*>& params,
                const std::vector<nn::NamedTensor>& buffers, const std::string& path) {
  save_tensors(model_state(params, buffers), path);
}

void load_model(const std::vector<nn::Parameter*>& params,
                const std::vector<nn::NamedTensor>& buffers, const std::string& path) {
  load_tensors(model_state(params, buffers), path);
}

}  // namespace dlscale::train
