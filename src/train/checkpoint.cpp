#include "dlscale/train/checkpoint.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "dlscale/util/bf16.hpp"

namespace dlscale::train {

namespace {

constexpr std::uint32_t kMagic = 0x444C5343;  // "DLSC"

// The word after the magic is the tensor count in v1 files. No real model
// has 2^32-1 tensors, so this value marks a versioned (v2+) header instead.
constexpr std::uint32_t kVersionSentinel = 0xFFFFFFFFu;
constexpr std::uint32_t kVersionBf16 = 2;
// Dtype codes inside a v2 header. fp32 files stay on the v1 layout, but a
// future version could carry either dtype, so the code space names both.
constexpr std::uint32_t kDtypeFp32 = 0;
constexpr std::uint32_t kDtypeBf16 = 1;

template <typename T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& in, const std::string& what) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("checkpoint: truncated file while reading " + what);
  return value;
}

// Anything past this is certainly a corrupt length field, not a real name.
constexpr std::uint32_t kMaxNameLen = 4096;
constexpr std::uint32_t kMaxNdim = 8;

template <typename ShapeLike>  // std::vector<int> or tensor::Shape
std::string shape_str(const ShapeLike& shape) {
  std::string s = "(";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i != 0) s += ",";
    s += std::to_string(shape[i]);
  }
  return s + ")";
}

std::vector<nn::NamedTensor> as_named(const std::vector<nn::Parameter*>& params) {
  std::vector<nn::NamedTensor> tensors;
  tensors.reserve(params.size());
  for (nn::Parameter* p : params) tensors.push_back({p->name, &p->value});
  return tensors;
}

std::vector<nn::NamedTensor> model_state(const std::vector<nn::Parameter*>& params,
                                         const std::vector<nn::NamedTensor>& buffers) {
  std::vector<nn::NamedTensor> tensors = as_named(params);
  tensors.insert(tensors.end(), buffers.begin(), buffers.end());
  return tensors;
}

/// Consume everything after the magic word up to (and including) the tensor
/// count, auto-detecting v1-fp32 vs v2-bf16. Unknown versions and dtypes
/// throw, naming what this build supports vs what the file claims.
struct Header {
  CheckpointFormat format;
  std::uint32_t count;
};

Header read_header(std::ifstream& in, const std::string& path) {
  const auto word = read_pod<std::uint32_t>(in, "tensor count");
  if (word != kVersionSentinel) {
    return {CheckpointFormat::kFp32, word};  // legacy v1: the word IS the count
  }
  const auto version = read_pod<std::uint32_t>(in, "format version");
  if (version != kVersionBf16) {
    throw std::runtime_error("checkpoint: unsupported format version " + std::to_string(version) +
                             " in '" + path + "' (this build reads v1 fp32 and v" +
                             std::to_string(kVersionBf16) + " bf16 files)");
  }
  const auto dtype = read_pod<std::uint32_t>(in, "storage dtype");
  if (dtype != kDtypeBf16 && dtype != kDtypeFp32) {
    throw std::runtime_error("checkpoint: unknown storage dtype " + std::to_string(dtype) +
                             " in '" + path + "' (expected " + std::to_string(kDtypeFp32) +
                             " = fp32 or " + std::to_string(kDtypeBf16) + " = bf16)");
  }
  const CheckpointFormat format =
      dtype == kDtypeBf16 ? CheckpointFormat::kBf16 : CheckpointFormat::kFp32;
  return {format, read_pod<std::uint32_t>(in, "tensor count")};
}

}  // namespace

const char* checkpoint_format_name(CheckpointFormat format) noexcept {
  return format == CheckpointFormat::kBf16 ? "bf16" : "fp32";
}

CheckpointFormat peek_checkpoint_format(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("checkpoint: cannot open '" + path + "'");
  if (read_pod<std::uint32_t>(in, "magic") != kMagic) {
    throw std::runtime_error("checkpoint: bad magic in '" + path + "'");
  }
  return read_header(in, path).format;
}

void save_tensors(const std::vector<nn::NamedTensor>& tensors, const std::string& path,
                  CheckpointFormat format) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("checkpoint: cannot open '" + path + "' for writing");
  write_pod(out, kMagic);
  if (format == CheckpointFormat::kBf16) {
    write_pod(out, kVersionSentinel);
    write_pod(out, kVersionBf16);
    write_pod(out, kDtypeBf16);
  }
  write_pod(out, static_cast<std::uint32_t>(tensors.size()));
  std::vector<std::uint16_t> narrow;
  for (const nn::NamedTensor& t : tensors) {
    write_pod(out, static_cast<std::uint32_t>(t.name.size()));
    out.write(t.name.data(), static_cast<std::streamsize>(t.name.size()));
    write_pod(out, static_cast<std::uint32_t>(t.tensor->shape().size()));
    for (int d : t.tensor->shape()) write_pod(out, static_cast<std::int32_t>(d));
    const std::size_t numel = static_cast<std::size_t>(t.tensor->numel());
    if (format == CheckpointFormat::kBf16) {
      narrow.resize(numel);
      util::floats_to_bf16s(t.tensor->ptr(), narrow.data(), numel);
      out.write(reinterpret_cast<const char*>(narrow.data()),
                static_cast<std::streamsize>(numel * sizeof(std::uint16_t)));
    } else {
      out.write(reinterpret_cast<const char*>(t.tensor->ptr()),
                static_cast<std::streamsize>(numel * sizeof(float)));
    }
  }
  if (!out) throw std::runtime_error("checkpoint: write failed for '" + path + "'");
}

void load_tensors(const std::vector<nn::NamedTensor>& tensors, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("checkpoint: cannot open '" + path + "'");
  if (read_pod<std::uint32_t>(in, "magic") != kMagic) {
    throw std::runtime_error("checkpoint: bad magic in '" + path + "'");
  }
  const Header header = read_header(in, path);
  const auto count = header.count;
  if (count != tensors.size()) {
    throw std::runtime_error("checkpoint: parameter count mismatch (file has " +
                             std::to_string(count) + ", model has " +
                             std::to_string(tensors.size()) + ")");
  }
  // Every error below names the offending tensor so a bad checkpoint is
  // diagnosable without a hex dump — the serving hot-reload path surfaces
  // these messages verbatim while keeping the old replicas live.
  for (const nn::NamedTensor& t : tensors) {
    const auto name_len = read_pod<std::uint32_t>(in, "name length of '" + t.name + "'");
    if (name_len == 0 || name_len > kMaxNameLen) {
      throw std::runtime_error("checkpoint: corrupt name length (" + std::to_string(name_len) +
                               ") where parameter '" + t.name + "' was expected");
    }
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    if (!in) {
      throw std::runtime_error("checkpoint: truncated file while reading name of '" + t.name +
                               "'");
    }
    if (name != t.name) {
      throw std::runtime_error("checkpoint: expected parameter '" + t.name + "', found '" +
                               name + "'");
    }
    const auto ndim = read_pod<std::uint32_t>(in, "rank of '" + name + "'");
    if (ndim > kMaxNdim) {
      throw std::runtime_error("checkpoint: corrupt rank (" + std::to_string(ndim) + ") for '" +
                               name + "'");
    }
    std::vector<int> shape(ndim);
    for (auto& d : shape) d = read_pod<std::int32_t>(in, "shape of '" + name + "'");
    if (shape != t.tensor->shape()) {
      throw std::runtime_error("checkpoint: shape mismatch for '" + name + "': file has " +
                               shape_str(shape) + ", model has " + shape_str(t.tensor->shape()));
    }
    const std::size_t numel = static_cast<std::size_t>(t.tensor->numel());
    if (header.format == CheckpointFormat::kBf16) {
      std::vector<std::uint16_t> narrow(numel);
      in.read(reinterpret_cast<char*>(narrow.data()),
              static_cast<std::streamsize>(numel * sizeof(std::uint16_t)));
      if (!in) throw std::runtime_error("checkpoint: truncated data for '" + name + "'");
      util::bf16s_to_floats(narrow.data(), t.tensor->ptr(), numel);
    } else {
      in.read(reinterpret_cast<char*>(t.tensor->ptr()),
              static_cast<std::streamsize>(numel * sizeof(float)));
      if (!in) throw std::runtime_error("checkpoint: truncated data for '" + name + "'");
    }
  }
  // A well-formed file ends exactly after the last tensor; leftover bytes
  // mean the file and the model disagree about what was saved.
  in.peek();
  if (!in.eof()) {
    throw std::runtime_error("checkpoint: trailing bytes after last tensor in '" + path + "'");
  }
}

void save_checkpoint(const std::vector<nn::Parameter*>& params, const std::string& path) {
  save_tensors(as_named(params), path);
}

void load_checkpoint(const std::vector<nn::Parameter*>& params, const std::string& path) {
  load_tensors(as_named(params), path);
}

void save_model(const std::vector<nn::Parameter*>& params,
                const std::vector<nn::NamedTensor>& buffers, const std::string& path,
                CheckpointFormat format) {
  save_tensors(model_state(params, buffers), path, format);
}

void load_model(const std::vector<nn::Parameter*>& params,
                const std::vector<nn::NamedTensor>& buffers, const std::string& path) {
  load_tensors(model_state(params, buffers), path);
}

}  // namespace dlscale::train
