#include "dlscale/train/elastic.hpp"

#include <chrono>
#include <cstring>
#include <filesystem>
#include <span>
#include <stdexcept>
#include <utility>

#include "dlscale/util/logging.hpp"

namespace dlscale::train {

namespace {

// One survivor's view, gathered to the coordinator during recovery.
struct SurvivorView {
  std::uint64_t world_epoch = 0;
  long global_step = 0;
  long next_epoch = 0;
  long have_checkpoint = 0;
};
static_assert(std::is_trivially_copyable_v<SurvivorView>);

// The coordinator round of the recovery protocol, run on the freshly
// shrunken communicator: rank 0 gathers every survivor's view, checks the
// survivor set is coherent (same membership epoch everywhere), decides
// whether the shared checkpoint is restorable, and broadcasts the verdict
// so all survivors take the same branch. Centralising the decision
// matters: a failure during the post-save barrier can leave survivors
// disagreeing about whether the last save completed, but the file on disk
// — checked once, by one rank — is authoritative.
bool agree_on_restore(mpi::Communicator& comm, const std::string& checkpoint_path,
                      const SurvivorView& mine) {
  const auto views =
      comm.gather_blobs(std::as_bytes(std::span<const SurvivorView>(&mine, 1)), 0);
  std::uint8_t restore = 0;
  if (comm.rank() == 0) {
    for (const std::vector<std::byte>& blob : views) {
      SurvivorView view;
      if (blob.size() != sizeof view) {
        throw std::runtime_error("elastic: malformed survivor view");
      }
      std::memcpy(&view, blob.data(), sizeof view);
      if (view.world_epoch != mine.world_epoch) {
        throw std::runtime_error("elastic: survivors disagree on world epoch");
      }
    }
    restore = (!checkpoint_path.empty() && std::filesystem::exists(checkpoint_path)) ? 1 : 0;
  }
  const std::byte decision[1] = {std::byte{restore}};
  return comm.bcast_blob(decision, 0).at(0) != std::byte{0};
}

}  // namespace

TrainConfig ElasticTrainer::rescale_for_world(const TrainConfig& config, int new_size,
                                              int reference_size, bool rescale_lr) {
  TrainConfig scaled = config;
  if (rescale_lr && reference_size > 0 && new_size != reference_size) {
    // Linear scaling rule: effective batch shrank by new/reference, so the
    // base LR shrinks by the same factor. Everything else — seeds, shard
    // layout inputs, knobs — is left for the Trainer to re-derive from the
    // new world size, which is what makes an elastic restore bitwise-equal
    // to a fresh small-world run restoring the same checkpoint.
    scaled.schedule.base_lr *=
        static_cast<double>(new_size) / static_cast<double>(reference_size);
  }
  return scaled;
}

ElasticTrainer::ElasticTrainer(mpi::Communicator& world, ElasticConfig config)
    : config_(std::move(config)), initial_size_(world.size()), comm_(world) {
  build_stack();
}

CommHook& ElasticTrainer::active_hook() {
  return tuned_ ? static_cast<CommHook&>(*tuned_) : *hook_;
}

void ElasticTrainer::build_stack() {
  active_config_ =
      rescale_for_world(config_.train, comm_.size(), initial_size_, config_.rescale_lr);
  hook_.emplace(comm_, active_config_);
  if (active_config_.autotune.enabled) {
    tuner_.emplace(hook_->runtime(), active_config_.autotune);
    tuned_.emplace(*hook_, *tuner_);
  }
  trainer_.emplace(active_config_, active_hook());
}

void ElasticTrainer::maybe_checkpoint() {
  if (config_.checkpoint_path.empty()) return;
  const int completed = trainer_->next_epoch();
  if (completed % std::max(1, config_.checkpoint_every_epochs) != 0) return;
  if (comm_.rank() == 0) trainer_->save_state(config_.checkpoint_path);
  // Nobody records the checkpoint as usable until every rank knows the
  // write finished; a failure inside this barrier is resolved by the
  // coordinator round, which trusts the file, not this flag.
  comm_.barrier();
  have_checkpoint_ = true;
}

void ElasticTrainer::recover(const mpi::RankFailed& failure) {
  const auto wall_start = std::chrono::steady_clock::now();
  RecoveryEvent event;
  event.failed_global_rank = failure.failed_global_rank;
  event.old_size = comm_.size();
  event.step_at_failure = trainer_->global_step();

  // 1. shrink: collective over the survivors; re-densified ranks.
  comm_ = comm_.shrink();
  event.new_size = comm_.size();
  event.world_epoch = comm_.world_epoch();

  // 2. agree: coordinator round on the new communicator.
  SurvivorView mine;
  mine.world_epoch = comm_.world_epoch();
  mine.global_step = trainer_->global_step();
  mine.next_epoch = trainer_->next_epoch();
  mine.have_checkpoint = have_checkpoint_ ? 1 : 0;
  const bool restore = agree_on_restore(comm_, config_.checkpoint_path, mine);

  // 3. rebuild: fresh runtime over the shrunken communicator. The tuner
  // must rebind before anything touches the old runtime's corpse.
  hook_->rebind(comm_);
  if (tuner_) tuner_->rebind(hook_->runtime());

  // 4. restore: a fresh Trainer at the new world size (fresh sampler and
  // steps_per_epoch), then the checkpoint — the exact state a clean
  // (N-1)-rank run would load. Without a checkpoint, training restarts
  // from scratch at the new size.
  active_config_ =
      rescale_for_world(config_.train, comm_.size(), initial_size_, config_.rescale_lr);
  trainer_.emplace(active_config_, active_hook());
  if (restore) trainer_->load_state(config_.checkpoint_path);
  event.restored_from_checkpoint = restore;
  event.resumed_step = trainer_->global_step();
  event.resumed_epoch = trainer_->next_epoch();
  event.steps_replayed = std::max(0L, event.step_at_failure - event.resumed_step);

  // 5. notify: every hook in the chain observes the rebuilt world.
  WorldInfo info;
  info.old_size = event.old_size;
  info.new_size = event.new_size;
  info.my_rank = comm_.rank();
  info.world_epoch = comm_.world_epoch();
  active_hook().on_world_change(info);

  event.virtual_time_s = comm_.now();
  event.wall_recovery_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  recoveries_.push_back(event);
  DLSCALE_DEBUG("elastic: recovered from rank " << event.failed_global_rank << " failure, "
                                                << event.old_size << "->" << event.new_size
                                                << " ranks, resumed at step "
                                                << event.resumed_step);
}

TrainReport ElasticTrainer::run() {
  int performed = 0;
  for (;;) {
    try {
      while (trainer_->next_epoch() < active_config_.epochs) {
        const EpochReport epoch = trainer_->train_epoch();
        epochs_[epoch.epoch] = epoch;
        maybe_checkpoint();
      }
      break;
    } catch (const mpi::RankFailed& failure) {
      if (performed++ >= config_.max_recoveries) throw;
      recover(failure);
    }
  }
  TrainReport report;
  report.epochs.reserve(epochs_.size());
  for (const auto& [epoch, entry] : epochs_) report.epochs.push_back(entry);
  report.parameter_count = trainer_->report().parameter_count;
  report.steps = trainer_->global_step();
  report.hvd_stats = active_hook().stats();
  return report;
}

}  // namespace dlscale::train
