#include "dlscale/http/protocol.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dlscale::http {

nn::Precision parse_precision(const std::string& text) {
  if (text == "fp32") return nn::Precision::kFp32;
  if (text == "bf16") return nn::Precision::kBf16;
  if (text == "int8") return nn::Precision::kInt8;
  throw std::invalid_argument("unknown precision \"" + text +
                              "\" (valid: fp32, bf16, int8)");
}

models::MiniDeepLabV3Plus::Config to_model_config(const ModelArch& arch) {
  models::MiniDeepLabV3Plus::Config config;
  config.in_channels = arch.in_channels;
  config.num_classes = arch.num_classes;
  config.input_size = arch.input_size;
  config.width = arch.width;
  config.separable_backbone = arch.separable_backbone;
  return config;
}

ModelArch to_model_arch(const models::MiniDeepLabV3Plus::Config& config) {
  ModelArch arch;
  arch.in_channels = config.in_channels;
  arch.num_classes = config.num_classes;
  arch.input_size = config.input_size;
  arch.width = config.width;
  arch.separable_backbone = config.separable_backbone;
  return arch;
}

serve::ServeConfig to_serve_config(const ModelSpec& spec) {
  serve::ServeConfig config;
  config.model = to_model_config(spec.model);
  config.name = spec.name;
  config.workers = spec.workers;
  config.max_batch = spec.max_batch;
  config.max_wait_us = spec.max_wait_us;
  config.queue_capacity = static_cast<std::size_t>(spec.queue_capacity);
  config.quantize.precision = parse_precision(spec.precision);
  return config;
}

ModelSpec to_model_spec(const serve::ServeConfig& config, const std::string& checkpoint) {
  ModelSpec spec;
  spec.name = config.name;
  spec.checkpoint = checkpoint;
  spec.workers = config.workers;
  spec.max_batch = config.max_batch;
  spec.max_wait_us = config.max_wait_us;
  spec.queue_capacity = config.queue_capacity;
  spec.precision = nn::precision_name(config.quantize.precision);
  spec.model = to_model_arch(config.model);
  return spec;
}

ServerSpec load_server_spec(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open server spec \"" + path + "\"");
  std::ostringstream text;
  text << in.rdbuf();
  return json::from_json<ServerSpec>(text.str());
}

void register_models(const ServerSpec& spec, serve::ModelRegistry& registry) {
  for (const ModelSpec& model : spec.models) {
    registry.add_model(model.name, to_serve_config(model), model.checkpoint);
  }
}

ModelStatsJson to_stats_json(const std::string& name, const serve::ServerStats& stats) {
  ModelStatsJson out;
  out.name = name;
  out.precision = stats.precision;
  out.model_version = stats.model_version;
  out.accepted = stats.accepted;
  out.rejected = stats.rejected;
  out.rejected_full = stats.rejected_full;
  out.rejected_closed = stats.rejected_closed;
  out.completed = stats.completed;
  out.batches = stats.batches;
  out.reloads = stats.reloads;
  out.queue_depth = stats.queue_depth;
  out.fp32_requests = stats.fp32_requests;
  out.quantized_requests = stats.quantized_requests;
  out.mean_batch_size = stats.mean_batch_size;
  out.queue_p50_us = stats.queue_p50_us;
  out.queue_p95_us = stats.queue_p95_us;
  out.queue_p99_us = stats.queue_p99_us;
  out.total_p50_us = stats.total_p50_us;
  out.total_p95_us = stats.total_p95_us;
  out.total_p99_us = stats.total_p99_us;
  out.total_mean_us = stats.total_mean_us;
  out.total_max_us = stats.total_max_us;
  return out;
}

}  // namespace dlscale::http
